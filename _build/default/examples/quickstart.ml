(* Quickstart: build the paper's Figure-1 instruction-prefetch net with
   the Builder API, simulate it, and read the statistics.

   Run with:  dune exec examples/quickstart.exe *)

module Net = Pnut_core.Net
module B = Net.Builder
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

let () =
  (* 1. Describe the events and their pre/post-conditions.  Six buffer
     words, fetched two-at-a-time over a shared bus; a five-cycle memory;
     a decoder that takes one cycle per instruction word. *)
  let b = B.create "prefetch_demo" in
  let bus_free = B.add_place b "Bus_free" ~initial:1 in
  let bus_busy = B.add_place b "Bus_busy" in
  let empty = B.add_place b "Empty_I_buffers" ~initial:6 ~capacity:6 in
  let full = B.add_place b "Full_I_buffers" ~capacity:6 in
  let pre_fetching = B.add_place b "pre_fetching" in
  let decoder_ready = B.add_place b "Decoder_ready" ~initial:1 in
  let decoded = B.add_place b "Decoded_instruction" in
  let _ =
    B.add_transition b "Start_prefetch"
      ~inputs:[ (bus_free, 1); (empty, 2) ]  (* two words per transaction *)
      ~outputs:[ (bus_busy, 1); (pre_fetching, 1) ]
  in
  let _ =
    B.add_transition b "End_prefetch"
      ~inputs:[ (pre_fetching, 1); (bus_busy, 1) ]
      ~outputs:[ (bus_free, 1); (full, 2) ]
      ~enabling:(Net.Const 5.0)  (* the memory access time *)
  in
  let _ =
    B.add_transition b "Decode"
      ~inputs:[ (full, 1); (decoder_ready, 1) ]
      ~outputs:[ (decoded, 1); (empty, 1) ]
      ~firing:(Net.Const 1.0)  (* one processor cycle *)
  in
  let _ =
    B.add_transition b "consume"
      ~inputs:[ (decoded, 1) ]
      ~outputs:[ (decoder_ready, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in

  (* 2. Static sanity checks before running anything. *)
  Pnut_core.Validate.assert_valid net;
  let incidence = Pnut_core.Incidence.of_net net in
  Format.printf "P-invariants of the model:@.";
  List.iter
    (fun y ->
      Format.printf "  %a = constant@."
        (Pnut_core.Incidence.pp_vector net `Place) y)
    (Pnut_core.Incidence.p_invariants incidence);

  (* 3. Simulate 10000 cycles, streaming straight into the statistics
     tool (no trace file needed). *)
  let sink, report = Stat.sink () in
  let outcome = Sim.simulate ~seed:1 ~until:10_000.0 ~sink net in
  Format.printf "@.simulated to t=%g (%d events)@.@." outcome.Sim.final_clock
    outcome.Sim.started;

  (* 4. Read the performance numbers the paper derives in Section 4.2. *)
  let r = report () in
  Format.printf "%s@." (Stat.render r);
  Format.printf "Interpretation:@.";
  Format.printf "  bus utilization      = avg tokens on Bus_busy  = %.3f@."
    (Stat.utilization r "Bus_busy");
  Format.printf "  buffer occupancy     = avg Full_I_buffers      = %.3f of 6@."
    (Stat.utilization r "Full_I_buffers");
  Format.printf "  decode rate          = Decode throughput       = %.4f instr/cycle@."
    (Stat.throughput r "Decode")
