(* Verification workflow (Section 4.4 and the [MR87] analyzer).

   The same property can be checked at three levels of assurance:
   1. tested against one simulation trace (tracertool),
   2. proven over every reachable state (first-order predicate calculus
      and branching-time temporal logic on the reachability graph),
   3. for boundedness questions, decided even for infinite state spaces
      (Karp-Miller coverability).

   This example runs all three on the pipeline model, then deliberately
   injects the modeling bug the paper warns about (a non-zero timing on a
   bus hand-off) and shows every level catching it.

   Run with:  dune exec examples/verification.exe *)

module Net = Pnut_core.Net
module Model = Pnut_pipeline.Model
module Config = Pnut_pipeline.Config
module Sim = Pnut_sim.Simulator
module Query = Pnut_tracer.Query
module Parser = Pnut_lang.Parser
module Graph = Pnut_reach.Graph
module Ctl = Pnut_reach.Ctl
module Predicate = Pnut_reach.Predicate

let one_hot = "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]"

let () =
  let net = Model.full Config.default in

  Format.printf "Level 1: testing the bus invariant on a simulation trace@.";
  let trace, _ = Sim.trace ~seed:42 ~until:5000.0 net in
  let result = Query.eval trace (Parser.parse_query one_hot) in
  Format.printf "  %-55s %a@.@." one_hot Query.pp_result result;

  Format.printf "Level 2: proving it over every reachable state@.";
  let g = Graph.build ~max_states:20_000 net in
  Format.printf "  reachable states: %d@." (Graph.num_states g);
  Format.printf "  %-55s %a@." one_hot Query.pp_result
    (Predicate.eval g (Parser.parse_query one_hot));
  let liveness =
    Ctl.AG
      (Ctl.Implies
         ( Ctl.Atom (Parser.parse_expr "Bus_busy == 1"),
           Ctl.inev (Ctl.Atom (Parser.parse_expr "Bus_free == 1")) ))
  in
  Format.printf "  AG (Bus_busy -> inev Bus_free)%36s %b@.@." "" (Ctl.check g liveness);

  Format.printf "Level 3: boundedness via coverability@.";
  (* coverability needs an inhibitor-free net: the prefetch fragment
     with its inhibitors dropped is a sound over-approximation for
     boundedness of the buffer (dropping inhibitors only adds behaviour) *)
  let open Net.Builder in
  let b = create "prefetch_over" in
  let bus_free = add_place b "Bus_free" ~initial:1 in
  let bus_busy = add_place b "Bus_busy" in
  let empty = add_place b "Empty" ~initial:6 in
  let full = add_place b "Full" in
  let fetching = add_place b "fetching" in
  let _ =
    add_transition b "start"
      ~inputs:[ (bus_free, 1); (empty, 2) ]
      ~outputs:[ (bus_busy, 1); (fetching, 1) ]
  in
  let _ =
    add_transition b "finish"
      ~inputs:[ (fetching, 1); (bus_busy, 1) ]
      ~outputs:[ (bus_free, 1); (full, 2) ]
  in
  let _ = add_transition b "decode" ~inputs:[ (full, 1) ] ~outputs:[ (empty, 1) ] in
  let over = build b in
  let cov = Pnut_reach.Coverability.build over in
  Format.printf "  %a@.@." (Pnut_reach.Coverability.pp_summary over) cov;

  Format.printf
    "Injecting the paper's modeling bug: a 1-cycle FIRING time on the@.";
  Format.printf "bus hand-off (tokens vanish mid-transfer)...@.@.";
  let buggy =
    let b = create "buggy_bus" in
    let free = add_place b "Bus_free" ~initial:1 in
    let busy = add_place b "Bus_busy" in
    let _ =
      add_transition b "grab" ~inputs:[ (free, 1) ] ~outputs:[ (busy, 1) ]
        ~firing:(Net.Const 1.0)  (* the bug: should be instantaneous *)
    in
    let _ =
      add_transition b "release" ~inputs:[ (busy, 1) ] ~outputs:[ (free, 1) ]
        ~enabling:(Net.Const 5.0)
    in
    build b
  in
  let buggy_trace, _ = Sim.trace ~seed:1 ~until:100.0 buggy in
  Format.printf "  trace test:        %-36s %a@." one_hot Query.pp_result
    (Query.eval buggy_trace (Parser.parse_query one_hot));
  (* The untimed graph fires atomically and CANNOT see this bug — the
     timed reachability graph carries in-flight firings and can: *)
  let bg = Graph.build buggy in
  Format.printf "  untimed graph:     %-36s %a   <- blind to timing!@."
    one_hot Query.pp_result
    (Predicate.eval bg (Parser.parse_query one_hot));
  let tg = Pnut_reach.Timed.build buggy in
  let violating =
    let free = Net.place_id buggy "Bus_free" in
    let busy = Net.place_id buggy "Bus_busy" in
    let rec find i =
      if i >= Pnut_reach.Timed.num_states tg then None
      else
        let s = Pnut_reach.Timed.state tg i in
        if s.Pnut_reach.Timed.ts_marking.(free)
           + s.Pnut_reach.Timed.ts_marking.(busy)
           <> 1
        then Some i
        else find (i + 1)
    in
    find 0
  in
  (match violating with
  | Some i ->
    Format.printf
      "  timed graph:       one-hot invariant                   fails \
       (state #%d, token in transit)@." i
  | None -> Format.printf "  timed graph:       unexpectedly clean@.");
  Format.printf
    "@.(The trace test and the timed graph catch the bug; the untimed@.";
  Format.printf
    "graph abstracts firings to atomic steps and misses it — choosing@.";
  Format.printf "the right analysis level matters.)@."
