(* Enabling times and timeouts: the paper notes that the enabling delay
   "is particularly convenient for modeling timeouts in communications
   protocols".

   A sender transmits over a lossy channel and retransmits on timeout;
   the timeout is an enabling time whose clock restarts whenever the
   acknowledgment wins the race — the textbook use of continuous-enabling
   semantics.  Channel transit is also modeled with enabling times so
   that completing an exchange can flush stale duplicates (tokens remain
   visible on places while "in flight", unlike firing times).

   We study how the timeout value trades recovery speed against wasted
   (duplicate) transmissions, and verify protocol invariants on traces.

   Run with:  dune exec examples/protocol_timeout.exe *)

module Net = Pnut_core.Net
module B = Net.Builder
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

(* Stop-and-wait over a channel that loses [loss] of the messages and
   delivers the rest in about [delay] time units each way. *)
let protocol ~timeout ~loss ~delay =
  let b = B.create "stop_and_wait" in
  let ready = B.add_place b "Sender_ready" ~initial:1 in
  let waiting = B.add_place b "Awaiting_ack" in
  let flushing = B.add_place b "Flushing" in
  let in_channel = B.add_place b "Msg_in_channel" in
  let at_receiver = B.add_place b "At_receiver" in
  let ack_channel = B.add_place b "Ack_in_channel" in
  let jitter lo = Net.Uniform (lo *. 0.5, lo *. 1.5) in
  let _ =
    B.add_transition b "send"
      ~inputs:[ (ready, 1) ]
      ~outputs:[ (waiting, 1); (in_channel, 1) ]
  in
  (* The channel decides a message's fate instantly (an equal-delay
     probabilistic conflict: lose vs route) and then transit is an
     enabling delay, so a message in flight stays visible on a place.
     The split matters: an instantaneous competitor always preempts an
     enabling-delayed one — the firing-vs-enabling subtlety the paper's
     Section 4.2 cautions about — so the random choice must happen
     between transitions with equal (zero) delays. *)
  let transit = B.add_place b "Msg_in_transit" in
  let _ =
    B.add_transition b "lose"
      ~inputs:[ (in_channel, 1) ]
      ~frequency:(Float.max 1e-9 loss)
  in
  let _ =
    B.add_transition b "route"
      ~inputs:[ (in_channel, 1) ]
      ~outputs:[ (transit, 1) ]
      ~frequency:(1.0 -. loss)
  in
  let _ =
    B.add_transition b "deliver"
      ~inputs:[ (transit, 1) ]
      ~outputs:[ (at_receiver, 1) ]
      ~enabling:(jitter delay)
  in
  let _ =
    B.add_transition b "acknowledge"
      ~inputs:[ (at_receiver, 1) ]
      ~outputs:[ (ack_channel, 1) ]
      ~enabling:(jitter delay)
  in
  (* receiving the ack completes the exchange and flushes duplicates *)
  let _ =
    B.add_transition b "ack_received"
      ~inputs:[ (ack_channel, 1); (waiting, 1) ]
      ~outputs:[ (flushing, 1) ]
  in
  let drain name place =
    ignore
      (B.add_transition b name
         ~inputs:[ (flushing, 1); (place, 1) ]
         ~outputs:[ (flushing, 1) ]
        : Net.transition_id)
  in
  drain "drain_msg" in_channel;
  drain "drain_transit" transit;
  drain "drain_rcv" at_receiver;
  drain "drain_ack" ack_channel;
  let _ =
    B.add_transition b "next_message"
      ~inputs:[ (flushing, 1) ]
      ~inhibitors:
        [ (in_channel, 1); (transit, 1); (at_receiver, 1); (ack_channel, 1) ]
      ~outputs:[ (ready, 1) ]
  in
  (* the timeout: if the sender stays continuously un-acked for
     [timeout], retransmit; the enabling clock restarts on each
     retransmission *)
  let _ =
    B.add_transition b "timeout_retransmit"
      ~inputs:[ (waiting, 1) ]
      ~outputs:[ (waiting, 1); (in_channel, 1) ]
      ~enabling:(Net.Const timeout)
  in
  B.build b

let run ~timeout ~loss ~delay ~seed =
  let net = protocol ~timeout ~loss ~delay in
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed ~until:100_000.0 ~sink net in
  get ()

let () =
  let loss = 0.2 and delay = 4.0 in
  Format.printf
    "Stop-and-wait, 20%% loss, ~%g one-way delay (round trip ~%g).@.@." delay
    (2.0 *. delay);
  Format.printf "  timeout   exchanges/time   transmissions/exchange@.";
  List.iter
    (fun timeout ->
      let r = run ~timeout ~loss ~delay ~seed:42 in
      let acks = (Stat.transition r "ack_received").Stat.ts_ends in
      let sends = (Stat.transition r "send").Stat.ts_ends in
      let retr = (Stat.transition r "timeout_retransmit").Stat.ts_ends in
      Format.printf "  %7g   %14.4f   %22.2f@." timeout
        (Stat.throughput r "ack_received")
        (float_of_int (sends + retr) /. float_of_int (max 1 acks)))
    [ 4.0; 8.0; 12.0; 16.0; 24.0; 40.0 ];
  Format.printf
    "@.Timeouts below the round trip retransmit messages that were not@.";
  Format.printf
    "lost (high transmissions/exchange); very long timeouts waste time@.";
  Format.printf
    "recovering from each loss (low exchange rate). Just above the@.";
  Format.printf "round trip balances both.@.@.";

  (* Verify on a trace: sender state machine is one-hot, timeouts do
     occur, and every wait ends. *)
  let net = protocol ~timeout:12.0 ~loss ~delay in
  let trace, _ = Sim.trace ~seed:9 ~until:10_000.0 net in
  List.iter
    (fun q ->
      let result = Pnut_tracer.Query.eval trace (Pnut_lang.Parser.parse_query q) in
      Format.printf "  %-68s %a@." q Pnut_tracer.Query.pp_result result)
    [
      "forall s in S [ Sender_ready(s) + Awaiting_ack(s) + Flushing(s) = 1 ]";
      "exists s in S [ timeout_retransmit(s) > 0 ]";
      "forall s in {s' in S | Flushing(s') > 0} [ inev(Sender_ready > 0) ]";
    ]
