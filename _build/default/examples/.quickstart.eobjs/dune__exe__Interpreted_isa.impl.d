examples/interpreted_isa.ml: Format Pnut_core Pnut_pipeline Pnut_sim Pnut_stat
