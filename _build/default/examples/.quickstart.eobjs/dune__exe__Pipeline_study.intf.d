examples/pipeline_study.mli:
