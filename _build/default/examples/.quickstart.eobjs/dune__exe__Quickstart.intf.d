examples/quickstart.mli:
