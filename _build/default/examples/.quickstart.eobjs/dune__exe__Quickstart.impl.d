examples/quickstart.ml: Format List Pnut_core Pnut_sim Pnut_stat
