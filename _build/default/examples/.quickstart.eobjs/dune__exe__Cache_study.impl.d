examples/cache_study.ml: Format List Pnut_lang Pnut_pipeline Pnut_sim Pnut_stat Pnut_tracer
