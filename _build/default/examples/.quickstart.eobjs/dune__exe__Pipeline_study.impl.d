examples/pipeline_study.ml: Format List Pnut_core Pnut_pipeline Pnut_sim Pnut_stat Pnut_tracer
