examples/verification.mli:
