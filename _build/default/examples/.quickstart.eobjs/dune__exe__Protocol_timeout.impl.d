examples/protocol_timeout.ml: Float Format List Pnut_core Pnut_lang Pnut_sim Pnut_stat Pnut_tracer
