examples/interpreted_isa.mli:
