examples/protocol_timeout.mli:
