examples/verification.ml: Array Format Pnut_core Pnut_lang Pnut_pipeline Pnut_reach Pnut_sim Pnut_tracer
