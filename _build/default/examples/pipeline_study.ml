(* Pipeline bottleneck study: the question from the paper's introduction
   — "memory speed and processor clock rate can have a strong yet
   difficult to predict impact on the performance of microprocessor-based
   computer systems".

   We sweep the memory access time of the full 3-stage pipeline model and
   watch the instruction rate, the bus utilization and where the time
   goes; then we look at a timing window with tracertool.

   Run with:  dune exec examples/pipeline_study.exe *)

module Config = Pnut_pipeline.Config
module Model = Pnut_pipeline.Model
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat
module Signal = Pnut_tracer.Signal
module Waveform = Pnut_tracer.Waveform

let run config ~seed =
  let net = Model.full config in
  let sink, report = Stat.sink () in
  let _ = Sim.simulate ~seed ~until:20_000.0 ~sink net in
  report ()

let () =
  Format.printf "Memory-speed sweep (paper parameters otherwise)@.@.";
  Format.printf
    "  mem cycles   instr/cycle   bus util   prefetch   op-fetch   store@.";
  List.iter
    (fun memory_cycles ->
      let r = run { Config.default with Config.memory_cycles } ~seed:42 in
      Format.printf "  %10g   %11.4f   %8.3f   %8.3f   %8.3f   %5.3f@."
        memory_cycles
        (Stat.throughput r "Issue")
        (Stat.utilization r "Bus_busy")
        (Stat.utilization r "pre_fetching")
        (Stat.utilization r "fetching")
        (Stat.utilization r "storing"))
    [ 1.0; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0 ];

  (* The intro's other variable: processor clock rate.  Speeding the
     clock by a factor f shrinks every processor-side delay (decode,
     address calculation, execution) while the memory keeps its absolute
     speed — i.e. memory gets f times slower in cycles.  Performance is
     reported in instructions per unit of real time. *)
  Format.printf "@.Clock-rate sweep (memory speed fixed in real time)@.@.";
  Format.printf "  clock x   instr/real-time   bus util@.";
  List.iter
    (fun f ->
      let scaled =
        { Config.default with
          Config.memory_cycles = Config.default.Config.memory_cycles *. f }
      in
      let r = run scaled ~seed:42 in
      (* one cycle of the scaled model = 1/f real time units *)
      Format.printf "  %7g   %15.4f   %8.3f@." f
        (Stat.throughput r "Issue" *. f)
        (Stat.utilization r "Bus_busy"))
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Format.printf
    "@.(Doubling the clock never doubles performance: the bus saturates —@.";
  Format.printf
    "the strong, hard-to-predict interaction the paper's intro motivates.)@.";

  Format.printf "@.Instruction-buffer sweep (memory = 5 cycles)@.@.";
  Format.printf "  buffer words   instr/cycle   avg full@.";
  List.iter
    (fun buffer_words ->
      let r = run { Config.default with Config.buffer_words } ~seed:42 in
      Format.printf "  %12d   %11.4f   %8.3f@." buffer_words
        (Stat.throughput r "Issue")
        (Stat.utilization r "Full_I_buffers"))
    [ 2; 4; 6; 8; 12 ];

  (* A close-up of the first 120 cycles, Figure-7 style. *)
  Format.printf "@.Timing analysis of the default configuration@.@.";
  let net = Model.full Config.default in
  let trace, _ = Sim.trace ~seed:42 ~until:200.0 net in
  let exec_sum =
    Signal.Fun
      ( "executing",
        List.fold_left
          (fun acc name -> Pnut_core.Expr.(acc + var name))
          (Pnut_core.Expr.int 0)
          (Model.exec_transition_names Config.default) )
  in
  let signals =
    [ Signal.Place "Bus_busy"; Signal.Place "pre_fetching";
      Signal.Place "fetching"; Signal.Place "storing"; exec_sum;
      Signal.Place "Empty_I_buffers" ]
  in
  print_string
    (Waveform.render ~from_time:0.0 ~to_time:120.0
       ~markers:
         [ { Waveform.m_label = "O"; m_time = 20.0 };
           { Waveform.m_label = "X"; m_time = 100.0 } ]
       trace signals)
