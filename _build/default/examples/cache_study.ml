(* Cache modeling (Section 3): "Instruction and data caches are quite
   common and can be easily modeled probabilistically, assuming some
   given hit ratio."

   We sweep hit ratios and watch the pressure come off the bus, then
   check a correctness property of the cached model with the
   reachability analyzer.

   Run with:  dune exec examples/cache_study.exe *)

module Config = Pnut_pipeline.Config
module Extensions = Pnut_pipeline.Extensions
module Model = Pnut_pipeline.Model
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

let report net ~seed =
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed ~until:20_000.0 ~sink net in
  get ()

let () =
  let base = report (Model.full Config.default) ~seed:42 in
  Format.printf "No caches: %.4f instr/cycle, bus %.3f@.@."
    (Stat.throughput base "Issue")
    (Stat.utilization base "Bus_busy");

  Format.printf "Instruction-cache sweep (no d-cache):@.";
  Format.printf "  i-hit   instr/cycle   bus util@.";
  List.iter
    (fun h ->
      let net = Extensions.with_caches ~icache_hit_ratio:h Config.default in
      let r = report net ~seed:42 in
      Format.printf "  %5.2f   %11.4f   %8.3f@." h
        (Stat.throughput r "Issue")
        (Stat.utilization r "Bus_busy"))
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99 ];

  Format.printf "@.Joint i-cache + d-cache sweep:@.";
  Format.printf "  hit    instr/cycle   bus util@.";
  List.iter
    (fun h ->
      let net =
        Extensions.with_caches ~icache_hit_ratio:h ~dcache_hit_ratio:h
          Config.default
      in
      let r = report net ~seed:42 in
      Format.printf "  %4.2f   %11.4f   %8.3f@." h
        (Stat.throughput r "Issue")
        (Stat.utilization r "Bus_busy"))
    [ 0.0; 0.5; 0.9; 0.99 ];

  (* Verification: the cached model keeps the bus discipline intact. *)
  Format.printf "@.Verifying the cached model (90%% hit ratios):@.";
  let net =
    Extensions.with_caches ~icache_hit_ratio:0.9 ~dcache_hit_ratio:0.9
      Config.default
  in
  let trace, _ = Sim.trace ~seed:7 ~until:5000.0 net in
  List.iter
    (fun q ->
      let query = Pnut_lang.Parser.parse_query q in
      let result = Pnut_tracer.Query.eval trace query in
      Format.printf "  %-58s %a@." q Pnut_tracer.Query.pp_result result)
    [
      "forall s in S [ Bus_free(s) + Bus_busy(s) = 1 ]";
      "forall s in S [ I_lookup(s) <= 1 ]";
      "exists s in S [ icache_hit(s) > 0 ]";
      "exists s in S [ dcache_hit(s) > 0 ]";
    ]
