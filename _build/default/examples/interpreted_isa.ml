(* Table-driven instruction sets (Section 3 / Figure 4).

   A modern microprocessor "may support as many as 30 addressing modes,
   each of which requires different length instructions, and places a
   different load on the bus".  Modeling each mode with its own subnet
   explodes; the interpreted net keeps the Petri net focused on bus
   contention and synchronization while tables drive the data.

   This example contrasts the two styles on identical workloads and then
   runs the 30-mode variable-length instruction set that would be
   impractical structurally.

   Run with:  dune exec examples/interpreted_isa.exe *)

module Config = Pnut_pipeline.Config
module Model = Pnut_pipeline.Model
module Interpreted = Pnut_pipeline.Interpreted
module Net = Pnut_core.Net
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

let report net ~seed =
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed ~until:20_000.0 ~sink net in
  get ()

let () =
  let structural = Model.full Config.default in
  let interpreted = Interpreted.full Config.default in
  Format.printf "Model sizes (same workload, two modeling styles):@.";
  Format.printf "  structural : %2d places, %2d transitions@."
    (Net.num_places structural)
    (Net.num_transitions structural);
  Format.printf "  interpreted: %2d places, %2d transitions@.@."
    (Net.num_places interpreted)
    (Net.num_transitions interpreted);

  let rs = report structural ~seed:42 in
  let ri = report interpreted ~seed:42 in
  Format.printf "Stationary behaviour agreement:@.";
  Format.printf "  instruction rate: %.4f (structural) vs %.4f (interpreted)@."
    (Stat.throughput rs "Issue") (Stat.throughput ri "Issue");
  Format.printf "  bus utilization : %.3f vs %.3f@.@."
    (Stat.utilization rs "Bus_busy")
    (Stat.utilization ri "Bus_busy");

  (* The 30-mode instruction set: 1-3 word encodings, 0-2 operands. *)
  let isa = Interpreted.wide_instruction_set () in
  let wide = Interpreted.full ~instruction_set:isa Config.default in
  Format.printf "30-addressing-mode instruction set:@.";
  Format.printf "  interpreted model size unchanged: %d places, %d transitions@."
    (Net.num_places wide) (Net.num_transitions wide);
  let rw = report wide ~seed:42 in
  let issues = (Stat.transition rw "Issue").Stat.ts_starts in
  let words = (Stat.transition rw "consume_word").Stat.ts_starts in
  Format.printf "  instruction rate: %.4f instr/cycle@."
    (Stat.throughput rw "Issue");
  Format.printf "  average encoding length: %.2f words@."
    (1.0 +. (float_of_int words /. float_of_int issues));
  Format.printf "  bus utilization: %.3f (vs %.3f single-word)@."
    (Stat.utilization rw "Bus_busy")
    (Stat.utilization ri "Bus_busy");

  (* The paper's Figure-4 fragment on its own. *)
  Format.printf "@.Figure-4 operand-fetch skeleton (textual form):@.@.";
  let skeleton = Interpreted.operand_fetch_skeleton Config.default in
  Format.printf "%a@." Net.pp skeleton
