(* Tests for the net structure, builder, enabledness and firing rules. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Prng = Pnut_core.Prng
module B = Net.Builder

(* A small producer/consumer net used across tests. *)
let build_simple () =
  let b = B.create "simple" in
  let src = B.add_place b "src" ~initial:3 in
  let buf = B.add_place b "buf" ~capacity:2 in
  let produce =
    B.add_transition b "produce" ~inputs:[ (src, 1) ] ~outputs:[ (buf, 1) ]
  in
  let consume =
    B.add_transition b "consume" ~inputs:[ (buf, 2) ] ~outputs:[]
  in
  (B.build b, src, buf, produce, consume)

let test_builder_lookup () =
  let net, src, buf, produce, consume = build_simple () in
  Alcotest.(check int) "places" 2 (Net.num_places net);
  Alcotest.(check int) "transitions" 2 (Net.num_transitions net);
  Alcotest.(check int) "place id by name" src (Net.place_id net "src");
  Alcotest.(check int) "buf id" buf (Net.place_id net "buf");
  Alcotest.(check int) "transition id" produce (Net.transition_id net "produce");
  Alcotest.(check int) "consume id" consume (Net.transition_id net "consume");
  Alcotest.(check bool) "find_place none" true (Net.find_place net "zzz" = None);
  Alcotest.check_raises "missing place" Not_found (fun () ->
      ignore (Net.place_id net "zzz"))

let test_initial_marking () =
  let net, src, buf, _, _ = build_simple () in
  let m = Net.initial_marking net in
  Alcotest.(check int) "src tokens" 3 (Marking.get m src);
  Alcotest.(check int) "buf tokens" 0 (Marking.get m buf)

let test_duplicate_names_rejected () =
  let b = B.create "dup" in
  let _ = B.add_place b "p" in
  Alcotest.check_raises "dup place"
    (Invalid_argument "Net.Builder.add_place: duplicate place p") (fun () ->
      ignore (B.add_place b "p"));
  let _ = B.add_transition b "t" in
  Alcotest.check_raises "dup transition"
    (Invalid_argument "Net.Builder.add_transition: duplicate transition t")
    (fun () -> ignore (B.add_transition b "t"))

let test_builder_validation () =
  let b = B.create "bad" in
  let p = B.add_place b "p" in
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Net.Builder: input arc of t has weight 0") (fun () ->
      ignore (B.add_transition b "t" ~inputs:[ (p, 0) ]));
  Alcotest.check_raises "unknown place"
    (Invalid_argument "Net.Builder: output arc of t2 names unknown place 99")
    (fun () -> ignore (B.add_transition b "t2" ~outputs:[ (99, 1) ]));
  Alcotest.check_raises "bad frequency"
    (Invalid_argument "Net.Builder.add_transition: non-positive frequency for t3")
    (fun () -> ignore (B.add_transition b "t3" ~frequency:0.0));
  Alcotest.check_raises "negative initial"
    (Invalid_argument "Net.Builder.add_place: negative initial marking for q")
    (fun () -> ignore (B.add_place b "q" ~initial:(-1)));
  Alcotest.check_raises "capacity below initial"
    (Invalid_argument "Net.Builder.add_place: capacity below initial for r")
    (fun () -> ignore (B.add_place b "r" ~initial:3 ~capacity:2))

let test_empty_net_rejected () =
  let b = B.create "empty" in
  Alcotest.check_raises "empty" (Invalid_argument "Net.Builder.build: empty net")
    (fun () -> ignore (B.build b))

let test_enabledness_weights () =
  let net, _, buf, produce, consume = build_simple () in
  let m = Net.initial_marking net in
  let env = Net.initial_env net in
  let tr_produce = Net.transition net produce in
  let tr_consume = Net.transition net consume in
  Alcotest.(check bool) "produce enabled" true (Net.enabled net m env tr_produce);
  Alcotest.(check bool) "consume needs 2" false (Net.enabled net m env tr_consume);
  Marking.set m buf 2;
  Alcotest.(check bool) "consume enabled at 2" true
    (Net.enabled net m env tr_consume)

let test_inhibitor_semantics () =
  let b = B.create "inhib" in
  let p = B.add_place b "p" ~initial:1 in
  let blocker = B.add_place b "blocker" in
  let t =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~inhibitors:[ (blocker, 2) ]
  in
  let net = B.build b in
  let m = Net.initial_marking net in
  let env = Net.initial_env net in
  let tr = Net.transition net t in
  Alcotest.(check bool) "0 < 2: enabled" true (Net.enabled net m env tr);
  Marking.set m blocker 1;
  Alcotest.(check bool) "1 < 2: still enabled" true (Net.enabled net m env tr);
  Marking.set m blocker 2;
  Alcotest.(check bool) "2 >= 2: inhibited" false (Net.enabled net m env tr)

let test_predicate_enabledness () =
  let b = B.create "pred" ~variables:[ ("go", Value.Bool false) ] in
  let p = B.add_place b "p" ~initial:1 in
  let t =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~predicate:(Expr.var "go")
  in
  let net = B.build b in
  let m = Net.initial_marking net in
  let env = Net.initial_env net in
  let tr = Net.transition net t in
  Alcotest.(check bool) "predicate false blocks" false (Net.enabled net m env tr);
  Env.set env "go" (Value.Bool true);
  Alcotest.(check bool) "predicate true allows" true (Net.enabled net m env tr)

let test_consume_produce () =
  let net, src, buf, produce, _ = build_simple () in
  let m = Net.initial_marking net in
  let tr = Net.transition net produce in
  Net.consume net m tr;
  Alcotest.(check int) "src decremented" 2 (Marking.get m src);
  Alcotest.(check int) "buf unchanged by consume" 0 (Marking.get m buf);
  Net.produce net m tr;
  Alcotest.(check int) "buf incremented" 1 (Marking.get m buf)

let test_consume_disabled_raises () =
  let net, src, _, produce, _ = build_simple () in
  let m = Net.initial_marking net in
  Marking.set m src 0;
  Alcotest.check_raises "consume disabled"
    (Invalid_argument "Net.consume: transition produce is not enabled")
    (fun () -> Net.consume net m (Net.transition net produce))

let test_sample_durations () =
  let env = Env.create () in
  let g = Prng.create 4 in
  Alcotest.(check (float 0.0)) "zero" 0.0 (Net.sample_duration env Net.Zero);
  Alcotest.(check (float 0.0)) "const" 2.5 (Net.sample_duration env (Net.Const 2.5));
  let u = Net.sample_duration ~prng:g env (Net.Uniform (1.0, 2.0)) in
  Alcotest.(check bool) "uniform in range" true (u >= 1.0 && u < 2.0);
  let e = Net.sample_duration ~prng:g env (Net.Exponential 3.0) in
  Alcotest.(check bool) "exponential non-negative" true (e >= 0.0);
  let c = Net.sample_duration ~prng:g env (Net.Choice [ (1.0, 1.0); (5.0, 1.0) ]) in
  Alcotest.(check bool) "choice picks a value" true
    (Float.equal c 1.0 || Float.equal c 5.0);
  Env.set env "n" (Value.Int 3);
  Alcotest.(check (float 0.0)) "dynamic" 6.0
    (Net.sample_duration env (Net.Dynamic Expr.(var "n" * int 2)))

let test_sample_duration_errors () =
  let env = Env.create () in
  Alcotest.check_raises "stochastic without prng"
    (Invalid_argument "Net.sample_duration: uniform requires a random stream")
    (fun () -> ignore (Net.sample_duration env (Net.Uniform (0.0, 1.0))));
  Alcotest.check_raises "negative const"
    (Invalid_argument "Net.sample_duration: negative delay") (fun () ->
      ignore (Net.sample_duration env (Net.Const (-1.0))))

let test_duration_classification () =
  Alcotest.(check bool) "const det" true (Net.duration_is_deterministic (Net.Const 1.0));
  Alcotest.(check bool) "exp stochastic" false
    (Net.duration_is_deterministic (Net.Exponential 1.0));
  Alcotest.(check bool) "degenerate uniform det" true
    (Net.duration_is_deterministic (Net.Uniform (2.0, 2.0)));
  Alcotest.(check bool) "degenerate choice det" true
    (Net.duration_is_deterministic (Net.Choice [ (3.0, 1.0); (3.0, 9.0) ]));
  Alcotest.(check bool) "spread choice stochastic" false
    (Net.duration_is_deterministic (Net.Choice [ (1.0, 1.0); (2.0, 1.0) ]));
  Alcotest.(check (option (float 0.0))) "max of choice" (Some 50.0)
    (Net.max_duration (Net.Choice [ (1.0, 0.5); (50.0, 0.05) ]));
  Alcotest.(check (option (float 0.0))) "max of exponential" None
    (Net.max_duration (Net.Exponential 1.0))

let test_pp_contains_structure () =
  let net, _, _, _, _ = build_simple () in
  let text = Format.asprintf "%a" Net.pp net in
  List.iter
    (fun needle -> Testutil.check_contains "net text" text needle)
    [ "net simple"; "place src init 3"; "transition produce"; "buf * 2" ]

let () =
  Alcotest.run "net"
    [
      ( "builder",
        [
          Alcotest.test_case "lookup" `Quick test_builder_lookup;
          Alcotest.test_case "initial marking" `Quick test_initial_marking;
          Alcotest.test_case "duplicates" `Quick test_duplicate_names_rejected;
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "empty rejected" `Quick test_empty_net_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "weighted enabling" `Quick test_enabledness_weights;
          Alcotest.test_case "inhibitors" `Quick test_inhibitor_semantics;
          Alcotest.test_case "predicates" `Quick test_predicate_enabledness;
          Alcotest.test_case "consume/produce" `Quick test_consume_produce;
          Alcotest.test_case "consume disabled" `Quick test_consume_disabled_raises;
        ] );
      ( "durations",
        [
          Alcotest.test_case "sampling" `Quick test_sample_durations;
          Alcotest.test_case "errors" `Quick test_sample_duration_errors;
          Alcotest.test_case "classification" `Quick test_duration_classification;
        ] );
      ( "printing",
        [ Alcotest.test_case "textual form" `Quick test_pp_contains_structure ] );
    ]
