(* Tests for the branching-time temporal logic checker. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Graph = Pnut_reach.Graph
module Ctl = Pnut_reach.Ctl

let atom s = Ctl.Atom (Pnut_lang.Parser.parse_expr s)

(* A fork: s0 -> s1 (left) or s2 (right); s1 cycles back to s0, s2 is
   terminal.
   places: start, left, right. *)
let fork_net () =
  let b = B.create "fork" in
  let start = B.add_place b "start" ~initial:1 in
  let left = B.add_place b "left" in
  let right = B.add_place b "right" in
  let _ = B.add_transition b "go_left" ~inputs:[ (start, 1) ] ~outputs:[ (left, 1) ] in
  let _ = B.add_transition b "go_right" ~inputs:[ (start, 1) ] ~outputs:[ (right, 1) ] in
  let _ = B.add_transition b "back" ~inputs:[ (left, 1) ] ~outputs:[ (start, 1) ] in
  B.build b

let fork_graph () = Graph.build (fork_net ())

let test_atoms_and_connectives () =
  let g = fork_graph () in
  Alcotest.(check bool) "initial start" true (Ctl.check g (atom "start == 1"));
  Alcotest.(check bool) "not right" true (Ctl.check g (Ctl.Not (atom "right == 1")));
  Alcotest.(check bool) "and" true
    (Ctl.check g (Ctl.And (atom "start == 1", atom "left == 0")));
  Alcotest.(check bool) "or" true
    (Ctl.check g (Ctl.Or (atom "right == 1", atom "start == 1")));
  Alcotest.(check bool) "implies" true
    (Ctl.check g (Ctl.Implies (atom "right == 1", atom "start == 0")));
  Alcotest.(check bool) "true" true (Ctl.check g Ctl.True);
  Alcotest.(check bool) "false" false (Ctl.check g Ctl.False)

let test_ex_ax () =
  let g = fork_graph () in
  (* from s0, some successor has left, some has right; not all have left *)
  Alcotest.(check bool) "EX left" true (Ctl.check g (Ctl.EX (atom "left == 1")));
  Alcotest.(check bool) "EX right" true (Ctl.check g (Ctl.EX (atom "right == 1")));
  Alcotest.(check bool) "AX left fails" false
    (Ctl.check g (Ctl.AX (atom "left == 1")));
  Alcotest.(check bool) "AX (left or right)" true
    (Ctl.check g (Ctl.AX (Ctl.Or (atom "left == 1", atom "right == 1"))))

let test_ef_af () =
  let g = fork_graph () in
  Alcotest.(check bool) "EF right" true (Ctl.check g (Ctl.EF (atom "right == 1")));
  (* the left loop can avoid 'right' forever *)
  Alcotest.(check bool) "AF right fails" false
    (Ctl.check g (Ctl.AF (atom "right == 1")));
  (* inev is AF *)
  Alcotest.(check bool) "inev = AF" false
    (Ctl.check g (Ctl.inev (atom "right == 1")))

let test_eg_ag () =
  let g = fork_graph () in
  (* looping left forever keeps right empty *)
  Alcotest.(check bool) "EG no-right" true
    (Ctl.check g (Ctl.EG (atom "right == 0")));
  Alcotest.(check bool) "AG no-right fails" false
    (Ctl.check g (Ctl.AG (atom "right == 0")));
  (* token conservation is a real AG invariant *)
  Alcotest.(check bool) "AG one token" true
    (Ctl.check g (Ctl.AG (atom "start + left + right == 1")))

let test_eu_au () =
  let g = fork_graph () in
  (* start/left states until right *)
  Alcotest.(check bool) "E[not-right U right]" true
    (Ctl.check g (Ctl.EU (atom "right == 0", atom "right == 1")));
  Alcotest.(check bool) "A[...U right] fails (left loop)" false
    (Ctl.check g (Ctl.AU (atom "right == 0", atom "right == 1")))

let test_deadlock_self_loop_semantics () =
  (* terminal state: AG/EG over the implicit self-loop *)
  let b = B.create "line" in
  let a = B.add_place b "a" ~initial:1 in
  let z = B.add_place b "z" in
  let _ = B.add_transition b "t" ~inputs:[ (a, 1) ] ~outputs:[ (z, 1) ] in
  let g = Graph.build (B.build b) in
  (* every path inevitably reaches (and stays in) z *)
  Alcotest.(check bool) "AF z" true (Ctl.check g (Ctl.AF (atom "z == 1")));
  Alcotest.(check bool) "EG eventually-stuck" true
    (Ctl.check g (Ctl.EF (Ctl.EG (atom "z == 1"))));
  (* AX at the deadlock state refers to itself *)
  let truth = Ctl.sat g (Ctl.AX (atom "z == 1")) in
  Alcotest.(check bool) "AX at terminal state" true truth.(1)

let test_counterexample () =
  let g = fork_graph () in
  (match Ctl.counterexample g (atom "start == 1") with
  | Some i -> Alcotest.(check bool) "non-initial state" true (i > 0)
  | None -> Alcotest.fail "expected a counterexample");
  Alcotest.(check (option int)) "invariant has none" None
    (Ctl.counterexample g (atom "start + left + right == 1"))

let test_truncated_graph_rejected () =
  let b = B.create "unbounded" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ] in
  let g = Graph.build ~max_states:5 (B.build b) in
  Alcotest.check_raises "truncated rejected"
    (Invalid_argument "Ctl.check: reachability graph was truncated") (fun () ->
      ignore (Ctl.check g Ctl.True))

let test_unknown_atom_identifier () =
  let g = fork_graph () in
  (match Ctl.check g (atom "ghost == 1") with
  | _ -> Alcotest.fail "expected Ctl_error"
  | exception Ctl.Ctl_error msg ->
    Testutil.check_contains "message" msg "unknown identifier ghost")

let test_non_boolean_atom () =
  let g = fork_graph () in
  (match Ctl.check g (atom "start + 1") with
  | _ -> Alcotest.fail "expected Ctl_error"
  | exception Ctl.Ctl_error msg ->
    Testutil.check_contains "message" msg "not boolean")

let test_pipeline_properties () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let g = Graph.build ~max_states:20000 net in
  let check f = Ctl.check g f in
  Alcotest.(check bool) "AG bus one-hot" true
    (check (Ctl.AG (atom "Bus_free + Bus_busy == 1")));
  Alcotest.(check bool) "AG buffer conservation" true
    (check
       (Ctl.AG (atom "Full_I_buffers + Empty_I_buffers + 2 * pre_fetching == 6")));
  (* from any state, the bus can become free again *)
  Alcotest.(check bool) "AG EF bus free" true
    (check (Ctl.AG (Ctl.EF (atom "Bus_free == 1"))));
  (* the paper's inev on the branching semantics: whenever busy, the bus
     is inevitably freed *)
  Alcotest.(check bool) "AG (busy -> inev free)" true
    (check
       (Ctl.AG (Ctl.Implies (atom "Bus_busy == 1", Ctl.inev (atom "Bus_free == 1")))))

let () =
  Alcotest.run "ctl"
    [
      ( "operators",
        [
          Alcotest.test_case "atoms/connectives" `Quick test_atoms_and_connectives;
          Alcotest.test_case "EX/AX" `Quick test_ex_ax;
          Alcotest.test_case "EF/AF" `Quick test_ef_af;
          Alcotest.test_case "EG/AG" `Quick test_eg_ag;
          Alcotest.test_case "EU/AU" `Quick test_eu_au;
          Alcotest.test_case "deadlock self-loop" `Quick
            test_deadlock_self_loop_semantics;
        ] );
      ( "interface",
        [
          Alcotest.test_case "counterexample" `Quick test_counterexample;
          Alcotest.test_case "truncated rejected" `Quick test_truncated_graph_rejected;
          Alcotest.test_case "unknown identifier" `Quick test_unknown_atom_identifier;
          Alcotest.test_case "non-boolean" `Quick test_non_boolean_atom;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "paper properties" `Slow test_pipeline_properties ] );
    ]
