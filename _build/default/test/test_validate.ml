(* Tests for the static model checker. *)

module Net = Pnut_core.Net
module Validate = Pnut_core.Validate
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder

let messages diags = List.map (fun d -> d.Validate.message) diags

let has_message diags fragment =
  List.exists
    (fun d -> Testutil.contains d.Validate.message fragment)
    diags

let test_clean_net () =
  let b = B.create "clean" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ] in
  let _ = B.add_transition b "u" ~inputs:[ (q, 1) ] ~outputs:[ (p, 1) ] in
  let net = B.build b in
  Alcotest.(check (list string)) "no diagnostics" [] (messages (Validate.check net));
  Validate.assert_valid net

let test_unguarded_transition () =
  let b = B.create "wild" in
  let p = B.add_place b "p" in
  let _ = B.add_transition b "spawn" ~outputs:[ (p, 1) ] in
  let _ = B.add_transition b "drain" ~inputs:[ (p, 1) ] in
  let net = B.build b in
  let diags = Validate.check net in
  Alcotest.(check bool) "always-enabled warning" true
    (has_message diags "always");
  (* warnings do not fail assert_valid *)
  Validate.assert_valid net

let test_dead_input_place () =
  let b = B.create "dead" in
  let p = B.add_place b "never_fed" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] in
  let net = B.build b in
  Alcotest.(check bool) "dead consumers flagged" true
    (has_message (Validate.check net) "never marked")

let test_write_only_place () =
  let b = B.create "wo" in
  let src = B.add_place b "src" ~initial:1 in
  let sink_p = B.add_place b "sink" in
  let _ = B.add_transition b "t" ~inputs:[ (src, 1) ] ~outputs:[ (sink_p, 1) ] in
  let net = B.build b in
  Alcotest.(check bool) "write-only flagged" true
    (has_message (Validate.check net) "never read")

let test_isolated_place () =
  let b = B.create "iso" in
  let _ = B.add_place b "lonely" in
  let p = B.add_place b "p" ~initial:1 in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let net = B.build b in
  Alcotest.(check bool) "isolated flagged" true
    (has_message (Validate.check net) "not connected")

let test_unbound_variable_in_predicate () =
  let b = B.create "unbound" in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~predicate:(Expr.var "ghost")
  in
  let net = B.build b in
  let diags = Validate.check net in
  Alcotest.(check bool) "unbound var is an error" true
    (Validate.errors diags <> []);
  Alcotest.(check bool) "names the variable" true
    (has_message diags "unbound variable ghost");
  Alcotest.check_raises "assert_valid raises"
    (Validate.Invalid_model
       "error: t: predicate refers to unbound variable ghost") (fun () ->
      Validate.assert_valid net)

let test_unbound_table_in_action () =
  let b = B.create "tbl" ~variables:[ ("n", Value.Int 0) ] in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "t" ~inputs:[ (p, 1) ]
      ~action:[ Expr.Table_assign ("ghost", Expr.int 0, Expr.var "n") ]
  in
  let net = B.build b in
  Alcotest.(check bool) "unbound table flagged" true
    (has_message (Validate.check net) "unbound table ghost")

let test_bad_durations () =
  let b = B.create "durations" in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "bad_uniform" ~inputs:[ (p, 1) ]
      ~firing:(Net.Uniform (5.0, 1.0))
  in
  let _ =
    B.add_transition b "bad_exp" ~inputs:[ (p, 1) ]
      ~enabling:(Net.Exponential 0.0)
  in
  let _ =
    B.add_transition b "bad_choice" ~inputs:[ (p, 1) ]
      ~firing:(Net.Choice [ (1.0, 0.0) ])
  in
  let net = B.build b in
  let diags = Validate.check net in
  Alcotest.(check bool) "uniform range" true (has_message diags "invalid uniform");
  Alcotest.(check bool) "exponential mean" true
    (has_message diags "non-positive exponential mean");
  Alcotest.(check bool) "choice weight" true (has_message diags "not positive")

let test_errors_sorted_first () =
  let b = B.create "mixed" in
  let p = B.add_place b "lonely" in
  let q = B.add_place b "q" ~initial:1 in
  let _ =
    B.add_transition b "t" ~inputs:[ (q, 1) ] ~predicate:(Expr.var "ghost")
  in
  ignore p;
  let net = B.build b in
  match Validate.check net with
  | first :: _ ->
    Alcotest.(check bool) "error first" true (first.Validate.severity = Validate.Error)
  | [] -> Alcotest.fail "expected diagnostics"

let test_pipeline_model_is_clean () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let diags = Validate.check net in
  Alcotest.(check (list string)) "no errors" [] (messages (Validate.errors diags));
  Alcotest.(check (list string)) "no warnings" []
    (messages (Validate.warnings diags))

let () =
  Alcotest.run "validate"
    [
      ( "checks",
        [
          Alcotest.test_case "clean net" `Quick test_clean_net;
          Alcotest.test_case "always-enabled" `Quick test_unguarded_transition;
          Alcotest.test_case "dead input" `Quick test_dead_input_place;
          Alcotest.test_case "write-only" `Quick test_write_only_place;
          Alcotest.test_case "isolated" `Quick test_isolated_place;
          Alcotest.test_case "unbound predicate var" `Quick
            test_unbound_variable_in_predicate;
          Alcotest.test_case "unbound action table" `Quick
            test_unbound_table_in_action;
          Alcotest.test_case "bad durations" `Quick test_bad_durations;
          Alcotest.test_case "errors first" `Quick test_errors_sorted_first;
          Alcotest.test_case "pipeline model clean" `Quick
            test_pipeline_model_is_clean;
        ] );
    ]
