(* Tests for the trace verification queries (Section 4.4). *)

module Trace = Pnut_trace.Trace
module Query = Pnut_tracer.Query
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value

let header =
  {
    Trace.h_net = "q";
    h_places = [| "busy"; "free" |];
    h_transitions = [| "work" |];
    h_initial = [| 0; 1 |];
    h_variables = [ ("n", Value.Int 0) ];
  }

let delta time kind marking env =
  {
    Trace.d_time = time;
    d_kind = kind;
    d_transition = 0;
    d_firing = 0;
    d_marking = marking;
    d_env = env;
  }

(* states: #0 free, #1 busy, #2 free, #3 busy (ends busy; n counts) *)
let tr =
  Trace.make header
    [
      delta 1.0 Trace.Fire_start [ (0, 1); (1, -1) ] [ ("n", Value.Int 1) ];
      delta 2.0 Trace.Fire_end [ (0, -1); (1, 1) ] [];
      delta 3.0 Trace.Fire_start [ (0, 1); (1, -1) ] [ ("n", Value.Int 2) ];
    ]
    5.0

let atom s = Query.Atom (Pnut_lang.Parser.parse_expr s)

let eval q = Query.eval tr q

let test_forall_invariant_holds () =
  let q = Query.Forall (Query.whole, atom "busy + free == 1") in
  Alcotest.(check bool) "one-hot invariant" true (Query.holds (eval q))

let test_forall_counterexample_index () =
  let q = Query.Forall (Query.whole, atom "free == 1") in
  match eval q with
  | Query.Fails (Some 1) -> ()
  | r ->
    Alcotest.failf "expected failure at state 1, got %s"
      (Format.asprintf "%a" Query.pp_result r)

let test_exists_witness () =
  let q = Query.Exists (Query.whole, atom "n == 2") in
  match eval q with
  | Query.Holds (Some 3) -> ()
  | r -> Alcotest.failf "expected witness 3, got %s" (Format.asprintf "%a" Query.pp_result r)

let test_exists_fails () =
  let q = Query.Exists (Query.whole, atom "n == 99") in
  Alcotest.(check bool) "no witness" false (Query.holds (eval q))

let test_domain_exclusion () =
  (* free == 1 holds at #0 and #2; excluding both leaves only busy states *)
  let d = { Query.except = [ 0; 2 ]; such_that = None } in
  let q = Query.Exists (d, atom "free == 1") in
  Alcotest.(check bool) "excluded" false (Query.holds (eval q));
  let q2 = Query.Forall (d, atom "busy == 1") in
  Alcotest.(check bool) "remaining all busy" true (Query.holds (eval q2))

let test_domain_filter () =
  (* over busy states only, n >= 1 *)
  let d = { Query.except = []; such_that = Some (atom "busy == 1") } in
  let q = Query.Forall (d, atom "n >= 1") in
  Alcotest.(check bool) "filtered forall" true (Query.holds (eval q))

let test_vacuous_forall () =
  let d = { Query.except = []; such_that = Some (atom "n == 99") } in
  match eval (Query.Forall (d, atom "true")) with
  | Query.Vacuous -> ()
  | r -> Alcotest.failf "expected vacuous, got %s" (Format.asprintf "%a" Query.pp_result r)

let test_inev () =
  (* from every busy state, eventually free: fails because the trace
     ends busy *)
  let d = { Query.except = []; such_that = Some (atom "busy == 1") } in
  let q = Query.Forall (d, Query.Inev (atom "free == 1")) in
  Alcotest.(check bool) "last busy state never freed" false (Query.holds (eval q));
  (* but from state #1 specifically it does hold: restrict via except *)
  let d13 = { Query.except = [ 3 ]; such_that = Some (atom "busy == 1") } in
  let q2 = Query.Forall (d13, Query.Inev (atom "free == 1")) in
  Alcotest.(check bool) "earlier busy states freed" true (Query.holds (eval q2))

let test_inev_includes_present () =
  (* inev is reflexive: a state satisfying the target satisfies inev *)
  let q = Query.Forall (Query.whole, Query.Inev (atom "busy == 1")) in
  Alcotest.(check bool) "eventually busy from everywhere" true
    (Query.holds (eval q))

let test_alw () =
  (* from state #2 on, n >= 1 always *)
  let d = { Query.except = [ 0; 1 ]; such_that = None } in
  let q = Query.Forall (d, Query.Alw (atom "n >= 1")) in
  Alcotest.(check bool) "henceforth" true (Query.holds (eval q));
  let q2 = Query.Forall (Query.whole, Query.Alw (atom "n >= 1")) in
  Alcotest.(check bool) "fails from #0" false (Query.holds (eval q2))

let test_connectives () =
  let f =
    Query.And
      ( Query.Or (atom "busy == 1", atom "free == 1"),
        Query.Not (Query.And (atom "busy == 1", atom "free == 1")) )
  in
  Alcotest.(check bool) "xor via and/or/not" true
    (Query.holds (eval (Query.Forall (Query.whole, f))));
  let imp = Query.Implies (atom "n >= 2", atom "busy == 1") in
  Alcotest.(check bool) "implication" true
    (Query.holds (eval (Query.Forall (Query.whole, imp))))

let test_eval_formula_single_state () =
  Alcotest.(check bool) "at #0" true
    (Query.eval_formula tr (atom "free == 1") 0);
  Alcotest.(check bool) "at #1" false
    (Query.eval_formula tr (atom "free == 1") 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Query.eval_formula: state index out of range")
    (fun () -> ignore (Query.eval_formula tr (atom "true") 99))

let test_unknown_identifier () =
  (match eval (Query.Forall (Query.whole, atom "ghost > 0")) with
  | _ -> Alcotest.fail "expected Query_error"
  | exception Query.Query_error msg ->
    Testutil.check_contains "message" msg "unknown identifier ghost")

let test_non_boolean_atom () =
  (match eval (Query.Forall (Query.whole, atom "busy + 1")) with
  | _ -> Alcotest.fail "expected Query_error"
  | exception Query.Query_error msg ->
    Testutil.check_contains "message" msg "not boolean")

let test_transition_activity_in_query () =
  (* 'work' is in flight at states #1 and #3 *)
  let q = Query.Exists (Query.whole, atom "work > 0") in
  (match eval q with
  | Query.Holds (Some 1) -> ()
  | r -> Alcotest.failf "expected witness 1, got %s" (Format.asprintf "%a" Query.pp_result r))

(* paper's queries verbatim against a real pipeline run *)
let test_paper_queries_on_pipeline () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let trace, _ = Pnut_sim.Simulator.trace ~seed:42 ~until:2000.0 net in
  let run q = Query.holds (Query.eval trace (Pnut_lang.Parser.parse_query q)) in
  Alcotest.(check bool) "bus one-hot" true
    (run "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]");
  Alcotest.(check bool) "buffer empty after start" true
    (run "exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]");
  Alcotest.(check bool) "decoder one-hot with pipeline stages" true
    (run
       "forall s in S [ Decoder_ready(s) + Decoded_instruction(s) + \
        T2_addr_calc(s) + T3_addr_calc(s) + T2_operands_outstanding(s) + \
        T3_operands_outstanding(s) + ready_to_issue_instruction(s) + \
        Decode(s) + calc_eaddr_1(s) + calc_eaddr_2(s) <= 1 ]")

let () =
  Alcotest.run "query"
    [
      ( "quantifiers",
        [
          Alcotest.test_case "forall holds" `Quick test_forall_invariant_holds;
          Alcotest.test_case "forall counterexample" `Quick
            test_forall_counterexample_index;
          Alcotest.test_case "exists witness" `Quick test_exists_witness;
          Alcotest.test_case "exists fails" `Quick test_exists_fails;
          Alcotest.test_case "domain exclusion" `Quick test_domain_exclusion;
          Alcotest.test_case "domain filter" `Quick test_domain_filter;
          Alcotest.test_case "vacuous forall" `Quick test_vacuous_forall;
        ] );
      ( "temporal",
        [
          Alcotest.test_case "inev" `Quick test_inev;
          Alcotest.test_case "inev reflexive" `Quick test_inev_includes_present;
          Alcotest.test_case "alw" `Quick test_alw;
        ] );
      ( "formulas",
        [
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "single state" `Quick test_eval_formula_single_state;
          Alcotest.test_case "unknown identifier" `Quick test_unknown_identifier;
          Alcotest.test_case "non-boolean atom" `Quick test_non_boolean_atom;
          Alcotest.test_case "transition activity" `Quick
            test_transition_activity_in_query;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "paper queries" `Quick test_paper_queries_on_pipeline ]
      );
    ]
