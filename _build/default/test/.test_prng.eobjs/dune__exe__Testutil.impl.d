test/testutil.ml: Alcotest Float Printf String
