test/test_integration.ml: Alcotest Array Format List Pnut_anim Pnut_core Pnut_lang Pnut_pipeline Pnut_reach Pnut_sim Pnut_stat Pnut_trace Pnut_tracer Printf String Testutil
