test/test_properties.ml: Alcotest Array Float Fun Hashtbl List Pnut_anim Pnut_core Pnut_reach Pnut_sim Pnut_stat Pnut_trace Pnut_tracer Printf QCheck2 QCheck_alcotest String
