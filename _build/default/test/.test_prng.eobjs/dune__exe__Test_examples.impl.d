test/test_examples.ml: Alcotest Filename List Printf String Sys Testutil
