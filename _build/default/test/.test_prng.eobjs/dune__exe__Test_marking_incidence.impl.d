test/test_marking_incidence.ml: Alcotest Array Format Hashtbl List Pnut_core Pnut_pipeline Pnut_sim Pnut_trace QCheck2 QCheck_alcotest String
