test/test_timed.ml: Alcotest Array Float Format Fun List Pnut_core Pnut_pipeline Pnut_reach Pnut_sim Pnut_stat Pnut_trace Printf Testutil
