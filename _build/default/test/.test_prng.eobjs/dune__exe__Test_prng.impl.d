test/test_prng.ml: Alcotest Array Float Fun Hashtbl Int64 List Pnut_core QCheck2 QCheck_alcotest
