test/test_branching.mli:
