test/test_pipeline.ml: Alcotest Float List Option Pnut_core Pnut_pipeline Pnut_sim Pnut_stat Printf Testutil
