test/test_net.ml: Alcotest Float Format List Pnut_core Testutil
