test/test_stat.ml: Alcotest Array List Pnut_core Pnut_pipeline Pnut_sim Pnut_stat Pnut_trace QCheck2 QCheck_alcotest String Testutil
