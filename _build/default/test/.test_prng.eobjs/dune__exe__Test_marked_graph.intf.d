test/test_marked_graph.mli:
