test/test_explorer_predicate_batch.ml: Alcotest Array Filename Float Format Pnut_core Pnut_lang Pnut_pipeline Pnut_reach Pnut_sim Pnut_stat Pnut_trace Pnut_tracer String Sys Testutil
