test/test_replication_export.ml: Alcotest Format List Pnut_core Pnut_pipeline Pnut_reach Pnut_stat Testutil
