test/test_timed.mli:
