test/test_replication_export.mli:
