test/test_event_queue.ml: Alcotest Float Fun List Pnut_sim QCheck2 QCheck_alcotest
