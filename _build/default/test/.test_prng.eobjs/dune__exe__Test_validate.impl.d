test/test_validate.ml: Alcotest List Pnut_core Pnut_pipeline Testutil
