test/test_branching.ml: Alcotest Float List Option Pnut_core Pnut_lang Pnut_pipeline Pnut_sim Pnut_stat Pnut_tracer Printf
