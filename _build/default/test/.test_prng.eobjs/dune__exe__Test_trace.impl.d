test/test_trace.ml: Alcotest Array Buffer Float List Pnut_core Pnut_pipeline Pnut_sim Pnut_trace Printf QCheck2 QCheck_alcotest String Testutil
