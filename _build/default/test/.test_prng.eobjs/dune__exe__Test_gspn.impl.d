test/test_gspn.ml: Alcotest Float List Pnut_analytic Pnut_core Pnut_pipeline Pnut_sim Pnut_stat Printf Testutil
