test/test_value_expr.mli:
