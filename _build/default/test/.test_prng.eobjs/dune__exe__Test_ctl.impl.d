test/test_ctl.ml: Alcotest Array Pnut_core Pnut_lang Pnut_pipeline Pnut_reach Testutil
