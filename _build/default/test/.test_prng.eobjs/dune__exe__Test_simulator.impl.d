test/test_simulator.ml: Alcotest Array Float List Pnut_core Pnut_pipeline Pnut_sim Pnut_stat Pnut_trace Printf String Testutil
