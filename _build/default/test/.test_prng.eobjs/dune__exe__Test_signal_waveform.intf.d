test/test_signal_waveform.mli:
