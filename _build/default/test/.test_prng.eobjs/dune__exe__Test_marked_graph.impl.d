test/test_marked_graph.ml: Alcotest List Pnut_analytic Pnut_core Pnut_reach Pnut_sim Pnut_stat Printf String Testutil
