test/test_lang.ml: Alcotest Array Format List Pnut_core Pnut_lang Pnut_pipeline Pnut_sim Pnut_trace Pnut_tracer Printf QCheck2 QCheck_alcotest Testutil
