test/test_serial.ml: Alcotest Float List Pnut_core Pnut_lang Pnut_pipeline Pnut_sim Pnut_stat Pnut_tracer Printf Testutil
