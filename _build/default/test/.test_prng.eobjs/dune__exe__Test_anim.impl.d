test/test_anim.ml: Alcotest Filename List Pnut_anim Pnut_core Pnut_pipeline Pnut_sim Pnut_trace Sys Testutil
