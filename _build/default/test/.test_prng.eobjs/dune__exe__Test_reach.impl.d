test/test_reach.ml: Alcotest Array Format List Pnut_core Pnut_pipeline Pnut_reach QCheck2 QCheck_alcotest Testutil
