test/test_value_expr.ml: Alcotest Pnut_core QCheck2 QCheck_alcotest
