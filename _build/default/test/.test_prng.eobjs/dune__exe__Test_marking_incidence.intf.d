test/test_marking_incidence.mli:
