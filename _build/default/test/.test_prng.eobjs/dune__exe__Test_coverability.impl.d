test/test_coverability.ml: Alcotest Array Format List Pnut_core Pnut_pipeline Pnut_reach Testutil
