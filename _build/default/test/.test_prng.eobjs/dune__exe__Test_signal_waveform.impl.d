test/test_signal_waveform.ml: Alcotest List Pnut_core Pnut_pipeline Pnut_sim Pnut_trace Pnut_tracer String Testutil
