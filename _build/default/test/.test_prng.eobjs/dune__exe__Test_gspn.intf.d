test/test_gspn.mli:
