test/test_query.ml: Alcotest Format Pnut_core Pnut_lang Pnut_pipeline Pnut_sim Pnut_trace Pnut_tracer Testutil
