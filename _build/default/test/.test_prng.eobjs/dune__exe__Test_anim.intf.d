test/test_anim.mli:
