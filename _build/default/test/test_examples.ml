(* Smoke tests for the example executables: each one must run cleanly
   and produce the landmarks of its narrative — guarding the documented
   entry points against bit-rot. *)

let example name = Printf.sprintf "../examples/%s.exe" name

let run name =
  let out_file =
    Filename.concat (Filename.get_temp_dir_name ()) ("pnut_example_" ^ name)
  in
  let cmd =
    Printf.sprintf "%s > %s 2>&1" (Filename.quote (example name))
      (Filename.quote out_file)
  in
  let code = Sys.command cmd in
  let ic = open_in out_file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (code, text)

let check name landmarks =
  let code, out = run name in
  Alcotest.(check int) (name ^ " exit code") 0 code;
  Alcotest.(check bool) (name ^ " nonempty") true (String.length out > 100);
  List.iter (fun needle -> Testutil.check_contains name out needle) landmarks

let test_quickstart () =
  check "quickstart"
    [ "P-invariants"; "Bus_free + Bus_busy"; "RUN STATISTICS";
      "bus utilization" ]

let test_pipeline_study () =
  check "pipeline_study"
    [ "Memory-speed sweep"; "Clock-rate sweep"; "Instruction-buffer sweep";
      "Bus_busy" ]

let test_interpreted_isa () =
  check "interpreted_isa"
    [ "Model sizes"; "30-addressing-mode"; "net operand_fetch";
      "number_of_operands_needed" ]

let test_cache_study () =
  check "cache_study"
    [ "Instruction-cache sweep"; "Joint i-cache + d-cache";
      "forall s in S [ Bus_free(s) + Bus_busy(s) = 1 ]" ]

let test_protocol_timeout () =
  check "protocol_timeout"
    [ "Stop-and-wait"; "transmissions/exchange"; "timeout_retransmit" ]

let test_verification () =
  check "verification"
    [ "Level 1"; "Level 2"; "Level 3"; "blind to timing";
      "fails (counterexample state" ]

let () =
  if not (Sys.file_exists (example "quickstart")) then begin
    print_endline "example binaries not found; skipping";
    exit 0
  end;
  Alcotest.run "examples"
    [
      ( "smoke",
        [
          Alcotest.test_case "quickstart" `Quick test_quickstart;
          Alcotest.test_case "pipeline_study" `Slow test_pipeline_study;
          Alcotest.test_case "interpreted_isa" `Slow test_interpreted_isa;
          Alcotest.test_case "cache_study" `Slow test_cache_study;
          Alcotest.test_case "protocol_timeout" `Slow test_protocol_timeout;
          Alcotest.test_case "verification" `Slow test_verification;
        ] );
    ]
