(* Tests for the non-pipelined baseline machine. *)

module Net = Pnut_core.Net
module Config = Pnut_pipeline.Config
module Serial = Pnut_pipeline.Serial
module Model = Pnut_pipeline.Model
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

let default = Config.default

let stats ?(seed = 42) ?(until = 50_000.0) net =
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed ~until ~sink net in
  get ()

let test_validates () =
  let net = Serial.full default in
  Alcotest.(check (list string)) "no errors" []
    (List.map
       (fun d -> d.Pnut_core.Validate.message)
       (Pnut_core.Validate.errors (Pnut_core.Validate.check net)))

let test_analytic_expectation () =
  (* paper parameters: 5 + 1 + (0.2*7 + 0.1*14) + 4.6 + 1 = 14.4 *)
  Testutil.check_close "expected cycles" 14.4
    (Serial.expected_cycles_per_instruction default)

let test_simulated_rate_matches_analytic () =
  (* the 50-cycle instruction class dominates the variance of the mean,
     so average over a long run; SD of the per-instruction mean is then
     ~0.4% of the analytic value *)
  let r = stats ~until:500_000.0 (Serial.full default) in
  let rate = Stat.throughput r "Decode" in
  let expected = 1.0 /. Serial.expected_cycles_per_instruction default in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.4f vs analytic %.4f" rate expected)
    true
    (Float.abs (rate -. expected) /. expected < 0.02)

let test_one_instruction_at_a_time () =
  let net = Serial.full default in
  let trace, _ = Sim.trace ~seed:3 ~until:5000.0 net in
  let q =
    Pnut_lang.Parser.parse_query
      "forall s in S [ Idle(s) + Fetching_instruction(s) + Decoding(s) + \
       Typed(s) + T2_addr_calc(s) + T3_addr_calc(s) + Operand_gate(s) + \
       Ready_to_execute(s) + Exec_done(s) + Store_wait(s) + storing(s) <= 1 ]"
  in
  Alcotest.(check bool) "single instruction in flight" true
    (Pnut_tracer.Query.holds (Pnut_tracer.Query.eval trace q))

let test_pipelining_speedup () =
  let serial_rate = Stat.throughput (stats (Serial.full default)) "Decode" in
  let pipelined_rate = Stat.throughput (stats (Model.full default)) "Issue" in
  let speedup = pipelined_rate /. serial_rate in
  (* the paper-parameter pipeline runs ~1.5-1.8x the serial machine *)
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f in [1.3, 2.2]" speedup)
    true
    (speedup > 1.3 && speedup < 2.2)

let test_speedup_grows_with_memory_latency () =
  (* pipelining hides memory latency: the slower the memory, the more
     there is to overlap, so the speedup over the serial machine GROWS
     with the access time (until both saturate on the bus) *)
  let speedup memory_cycles =
    let c = { default with Config.memory_cycles } in
    Stat.throughput (stats (Model.full c)) "Issue"
    /. Stat.throughput (stats (Serial.full c)) "Decode"
  in
  let fast = speedup 1.0 in
  let slow = speedup 20.0 in
  Alcotest.(check bool)
    (Printf.sprintf "latency hiding: %.2f (mem=1) < %.2f (mem=20)" fast slow)
    true
    (fast < slow)

let test_bus_never_contended () =
  (* internal consistency against the REALIZED workload of the same run:
     the single instruction owns the bus, so Bus_busy must equal exactly
     (ifetch + operand fetches + stores) * memory_cycles * rate *)
  let r = stats (Serial.full default) in
  let count name = float_of_int (Stat.transition r name).Stat.ts_ends in
  let bus_transactions =
    count "end_ifetch" +. count "end_fetch" +. count "end_store"
  in
  Testutil.check_close ~tolerance:0.002 "bus utilization consistent"
    (bus_transactions *. default.Config.memory_cycles /. r.Stat.length)
    (Stat.utilization r "Bus_busy")

let () =
  Alcotest.run "serial"
    [
      ( "baseline",
        [
          Alcotest.test_case "validates" `Quick test_validates;
          Alcotest.test_case "analytic cycles" `Quick test_analytic_expectation;
          Alcotest.test_case "rate matches analytic" `Slow
            test_simulated_rate_matches_analytic;
          Alcotest.test_case "serial execution" `Quick
            test_one_instruction_at_a_time;
          Alcotest.test_case "pipelining speedup" `Slow test_pipelining_speedup;
          Alcotest.test_case "speedup vs memory" `Slow
            test_speedup_grows_with_memory_latency;
          Alcotest.test_case "bus utilization" `Slow test_bus_never_contended;
        ] );
    ]
