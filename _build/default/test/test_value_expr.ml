(* Tests for runtime values, environments, and the expression language
   (predicates/actions of the interpreted-net extension). *)

module Value = Pnut_core.Value
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Prng = Pnut_core.Prng

let value = Alcotest.testable Value.pp Value.equal

let eval ?env ?prng text_expr =
  let env = match env with Some e -> e | None -> Env.create () in
  Expr.eval ?prng env text_expr

(* -- Value -- *)

let test_value_equal () =
  Alcotest.(check bool) "int/float promote" true
    (Value.equal (Value.Int 1) (Value.Float 1.0));
  Alcotest.(check bool) "bool vs int" false
    (Value.equal (Value.Bool true) (Value.Int 1));
  Alcotest.(check bool) "bools" true
    (Value.equal (Value.Bool false) (Value.Bool false))

let test_value_coerce () =
  Alcotest.(check int) "float to int truncates" 3 (Value.to_int (Value.Float 3.7));
  Alcotest.(check (float 0.0)) "int to float" 5.0 (Value.to_float (Value.Int 5));
  Alcotest.check_raises "bool to float"
    (Value.Type_error "expected number, got bool") (fun () ->
      ignore (Value.to_float (Value.Bool true)))

let test_value_compare () =
  Alcotest.(check bool) "1 < 2.5" true
    (Value.compare_num (Value.Int 1) (Value.Float 2.5) < 0);
  Alcotest.check_raises "bool order" (Value.Type_error "cannot order boolean values")
    (fun () -> ignore (Value.compare_num (Value.Bool true) (Value.Int 1)))

(* -- Env -- *)

let test_env_basics () =
  let env = Env.of_bindings [ ("x", Value.Int 1) ] in
  Alcotest.check value "get" (Value.Int 1) (Env.get env "x");
  Env.set env "x" (Value.Int 2);
  Alcotest.check value "set" (Value.Int 2) (Env.get env "x");
  Alcotest.(check bool) "mem" true (Env.mem env "x");
  Alcotest.check_raises "unbound" (Env.Unbound "y") (fun () ->
      ignore (Env.get env "y"))

let test_env_tables () =
  let env =
    Env.of_bindings ~tables:[ ("t", [| Value.Int 10; Value.Int 20 |]) ] []
  in
  Alcotest.check value "table get" (Value.Int 20) (Env.table_get env "t" 1);
  Env.table_set env "t" 0 (Value.Int 99);
  Alcotest.check value "table set" (Value.Int 99) (Env.table_get env "t" 0);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Env.table_get: index 5 out of bounds for t[2]")
    (fun () -> ignore (Env.table_get env "t" 5))

let test_env_copy_deep () =
  let env =
    Env.of_bindings ~tables:[ ("t", [| Value.Int 1 |]) ] [ ("x", Value.Int 1) ]
  in
  let copy = Env.copy env in
  Env.set env "x" (Value.Int 2);
  Env.table_set env "t" 0 (Value.Int 2);
  Alcotest.check value "scalar isolated" (Value.Int 1) (Env.get copy "x");
  Alcotest.check value "table isolated" (Value.Int 1) (Env.table_get copy "t" 0)

let test_env_snapshot_equal () =
  let a = Env.of_bindings [ ("x", Value.Int 1); ("y", Value.Bool true) ] in
  let b = Env.of_bindings [ ("y", Value.Bool true); ("x", Value.Int 1) ] in
  Alcotest.(check bool) "order-insensitive" true (Env.equal a b);
  Env.set b "x" (Value.Int 2);
  Alcotest.(check bool) "value-sensitive" false (Env.equal a b)

let test_env_duplicate () =
  Alcotest.check_raises "duplicate var"
    (Invalid_argument "Env.of_bindings: duplicate variable x") (fun () ->
      ignore (Env.of_bindings [ ("x", Value.Int 1); ("x", Value.Int 2) ]))

(* -- Expr evaluation -- *)

let test_arith () =
  Alcotest.check value "int add" (Value.Int 7) (eval Expr.(int 3 + int 4));
  Alcotest.check value "promote" (Value.Float 4.5) (eval Expr.(int 4 + float 0.5));
  Alcotest.check value "int div" (Value.Int 2) (eval Expr.(int 7 / int 3));
  Alcotest.check value "mod" (Value.Int 1) (eval (Expr.Binop (Expr.Mod, Expr.int 7, Expr.int 3)));
  Alcotest.check value "neg" (Value.Int (-5)) (eval (Expr.Unop (Expr.Neg, Expr.int 5)))

let test_division_by_zero () =
  Alcotest.check_raises "div0" (Expr.Eval_error "integer division by zero")
    (fun () -> ignore (eval Expr.(int 1 / int 0)));
  Alcotest.check_raises "mod0" (Expr.Eval_error "modulo by zero") (fun () ->
      ignore (eval (Expr.Binop (Expr.Mod, Expr.int 1, Expr.int 0))))

let test_comparisons () =
  Alcotest.check value "lt" (Value.Bool true) (eval Expr.(int 1 < int 2));
  Alcotest.check value "ge" (Value.Bool false) (eval Expr.(int 1 >= int 2));
  Alcotest.check value "eq across types" (Value.Bool true)
    (eval Expr.(int 2 = float 2.0));
  Alcotest.check value "ne" (Value.Bool true) (eval Expr.(int 2 <> int 3))

let test_boolean_short_circuit () =
  (* the right operand would raise if evaluated *)
  let diverges = Expr.(int 1 / int 0 > int 0) in
  Alcotest.check value "and shortcuts" (Value.Bool false)
    (eval Expr.(bool false && diverges));
  Alcotest.check value "or shortcuts" (Value.Bool true)
    (eval Expr.(bool true || diverges))

let test_if () =
  Alcotest.check value "then" (Value.Int 1)
    (eval (Expr.If (Expr.bool true, Expr.int 1, Expr.int 2)));
  Alcotest.check value "else" (Value.Int 2)
    (eval (Expr.If (Expr.bool false, Expr.int 1, Expr.int 2)))

let test_vars_and_tables () =
  let env =
    Env.of_bindings
      ~tables:[ ("operands", [| Value.Int 0; Value.Int 1; Value.Int 2 |]) ]
      [ ("type_", Value.Int 2) ]
  in
  Alcotest.check value "var" (Value.Int 2) (eval ~env (Expr.var "type_"));
  Alcotest.check value "table lookup" (Value.Int 2)
    (eval ~env (Expr.index "operands" (Expr.var "type_")));
  Alcotest.check_raises "unbound var" (Expr.Eval_error "unbound variable nope")
    (fun () -> ignore (eval ~env (Expr.var "nope")))

let test_builtins () =
  Alcotest.check value "min" (Value.Int 2)
    (eval (Expr.Call ("min", [ Expr.int 5; Expr.int 2 ])));
  Alcotest.check value "max" (Value.Float 5.0)
    (eval (Expr.Call ("max", [ Expr.float 5.0; Expr.int 2 ])));
  Alcotest.check value "abs" (Value.Int 3)
    (eval (Expr.Call ("abs", [ Expr.int (-3) ])));
  Alcotest.check value "floor" (Value.Float 2.0)
    (eval (Expr.Call ("floor", [ Expr.float 2.9 ])));
  Alcotest.check value "ceil" (Value.Float 3.0)
    (eval (Expr.Call ("ceil", [ Expr.float 2.1 ])));
  Alcotest.check value "int cast" (Value.Int 2)
    (eval (Expr.Call ("int", [ Expr.float 2.9 ])));
  Alcotest.check_raises "unknown function"
    (Expr.Eval_error "unknown function mystery") (fun () ->
      ignore (eval (Expr.Call ("mystery", []))))

let test_irand () =
  let g = Prng.create 99 in
  for _ = 1 to 200 do
    match eval ~prng:g (Expr.irand (Expr.int 1) (Expr.int 3)) with
    | Value.Int v -> Alcotest.(check bool) "in [1,3]" true (v >= 1 && v <= 3)
    | Value.Float _ | Value.Bool _ -> Alcotest.fail "irand must return an int"
  done;
  Alcotest.check_raises "irand needs a stream"
    (Expr.Eval_error "irand used in a context without a random stream")
    (fun () -> ignore (eval (Expr.irand (Expr.int 1) (Expr.int 3))))

let test_statements () =
  let env =
    Env.of_bindings ~tables:[ ("t", [| Value.Int 0; Value.Int 0 |]) ]
      [ ("n", Value.Int 3) ]
  in
  Expr.run_stmts env
    [
      Expr.Assign ("n", Expr.(var "n" - int 1));
      Expr.Table_assign ("t", Expr.int 1, Expr.var "n");
    ];
  Alcotest.check value "assignment" (Value.Int 2) (Env.get env "n");
  Alcotest.check value "table assignment" (Value.Int 2) (Env.table_get env "t" 1)

let test_variables_listing () =
  let e = Expr.(var "b" + index "tbl" (var "a") + Expr.Call ("min", [ var "a"; int 1 ])) in
  Alcotest.(check (list string)) "free variables" [ "a"; "b" ] (Expr.variables e)

let test_is_deterministic () =
  Alcotest.(check bool) "pure" true Expr.(is_deterministic (var "x" + int 1));
  Alcotest.(check bool) "irand" false
    (Expr.is_deterministic (Expr.irand (Expr.int 0) (Expr.int 1)));
  Alcotest.(check bool) "irand nested" false
    Expr.(is_deterministic (int 1 + Expr.irand (int 0) (int 1)))

let test_pp_roundtrip_manual () =
  (* pretty-printed syntax must re-parse to an equivalent expression;
     full round-trip testing lives in test_lang, here we check shapes *)
  let s = Expr.to_string Expr.(var "a" + var "b" * int 2) in
  Alcotest.(check string) "precedence preserved" "a + b * 2" s;
  let s2 = Expr.to_string Expr.((var "a" + var "b") * int 2) in
  Alcotest.(check string) "parens forced" "(a + b) * 2" s2

(* property: pretty-print of random expressions always re-parses (no
   crashes and structural equality after normalization) — exercised via
   evaluation equivalence on integer-valued expressions *)
let gen_expr =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof [ map Expr.int (int_range (-20) 20); return (Expr.var "x") ]
           else
             let sub = self (n / 2) in
             oneof
               [
                 map Expr.int (int_range (-20) 20);
                 return (Expr.var "x");
                 map2 (fun a b -> Expr.(a + b)) sub sub;
                 map2 (fun a b -> Expr.(a - b)) sub sub;
                 map2 (fun a b -> Expr.(a * b)) sub sub;
                 map (fun a -> Expr.Unop (Expr.Neg, a)) sub;
               ]))

let prop_eval_total =
  QCheck2.Test.make ~name:"integer expressions evaluate" ~count:200 gen_expr
    (fun e ->
      let env = Env.of_bindings [ ("x", Value.Int 3) ] in
      match Expr.eval env e with
      | Value.Int _ -> true
      | Value.Float _ | Value.Bool _ -> false)

let prop_neg_involution =
  QCheck2.Test.make ~name:"double negation" ~count:200 gen_expr (fun e ->
      let env = Env.of_bindings [ ("x", Value.Int 3) ] in
      let v1 = Expr.eval env e in
      let v2 = Expr.eval env (Expr.Unop (Expr.Neg, Expr.Unop (Expr.Neg, e))) in
      Value.equal v1 v2)

let () =
  Alcotest.run "value-expr"
    [
      ( "value",
        [
          Alcotest.test_case "equality" `Quick test_value_equal;
          Alcotest.test_case "coercion" `Quick test_value_coerce;
          Alcotest.test_case "comparison" `Quick test_value_compare;
        ] );
      ( "env",
        [
          Alcotest.test_case "basics" `Quick test_env_basics;
          Alcotest.test_case "tables" `Quick test_env_tables;
          Alcotest.test_case "deep copy" `Quick test_env_copy_deep;
          Alcotest.test_case "snapshot equality" `Quick test_env_snapshot_equal;
          Alcotest.test_case "duplicates rejected" `Quick test_env_duplicate;
        ] );
      ( "expr",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "short circuit" `Quick test_boolean_short_circuit;
          Alcotest.test_case "conditional" `Quick test_if;
          Alcotest.test_case "vars and tables" `Quick test_vars_and_tables;
          Alcotest.test_case "builtins" `Quick test_builtins;
          Alcotest.test_case "irand" `Quick test_irand;
          Alcotest.test_case "statements" `Quick test_statements;
          Alcotest.test_case "free variables" `Quick test_variables_listing;
          Alcotest.test_case "determinism check" `Quick test_is_deterministic;
          Alcotest.test_case "printing" `Quick test_pp_roundtrip_manual;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_eval_total;
          QCheck_alcotest.to_alcotest prop_neg_involution;
        ] );
    ]
