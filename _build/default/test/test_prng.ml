(* Unit and property tests for the SplitMix64 generator. *)

module Prng = Pnut_core.Prng

let test_determinism () =
  let a = Prng.create 42 in
  let b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 in
  let b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Prng.create 7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  (* consuming from a must not affect b *)
  let _ = Prng.bits64 a in
  let _ = Prng.bits64 a in
  let va' = Prng.bits64 a in
  let vb' = Prng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" false
    (Int64.equal va' vb')

let test_split_independent () =
  let parent = Prng.create 3 in
  let child = Prng.split parent in
  let xs = List.init 50 (fun _ -> Prng.bits64 parent) in
  let ys = List.init 50 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let g = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_invalid () =
  let g = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_range_inclusive () =
  let g = Prng.create 5 in
  let seen = Array.make 3 false in
  for _ = 1 to 300 do
    let v = Prng.int_range g 4 6 in
    Alcotest.(check bool) "in [4,6]" true (v >= 4 && v <= 6);
    seen.(v - 4) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_int_range_singleton () =
  let g = Prng.create 5 in
  Alcotest.(check int) "degenerate range" 9 (Prng.int_range g 9 9)

let test_float_bounds () =
  let g = Prng.create 13 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_uniform_mean () =
  let g = Prng.create 17 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.uniform g 10.0 20.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 15" true (Float.abs (mean -. 15.0) < 0.2)

let test_exponential_mean () =
  let g = Prng.create 19 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.exponential g 4.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.0) < 0.15)

let test_choose_weighted_ratio () =
  let g = Prng.create 23 in
  let n = 30_000 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to n do
    let v = Prng.choose_weighted g [ ("a", 7.0); ("b", 2.0); ("c", 1.0) ] in
    Hashtbl.replace counts v (1 + try Hashtbl.find counts v with Not_found -> 0)
  done;
  let freq k = float_of_int (try Hashtbl.find counts k with Not_found -> 0) /. float_of_int n in
  Alcotest.(check bool) "a near 0.7" true (Float.abs (freq "a" -. 0.7) < 0.02);
  Alcotest.(check bool) "b near 0.2" true (Float.abs (freq "b" -. 0.2) < 0.02);
  Alcotest.(check bool) "c near 0.1" true (Float.abs (freq "c" -. 0.1) < 0.02)

let test_choose_weighted_single () =
  let g = Prng.create 1 in
  Alcotest.(check string) "singleton" "only"
    (Prng.choose_weighted g [ ("only", 0.5) ])

let test_choose_weighted_errors () =
  let g = Prng.create 1 in
  Alcotest.check_raises "empty list"
    (Invalid_argument "Prng.choose_weighted: non-positive total weight")
    (fun () -> ignore (Prng.choose_weighted g []));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Prng.choose_weighted: negative weight") (fun () ->
      ignore (Prng.choose_weighted g [ ("x", -1.0); ("y", 2.0) ]))

(* property: Prng.int is within bounds and rejection sampling terminates *)
let prop_int_in_bounds =
  QCheck2.Test.make ~name:"Prng.int stays in bounds"
    QCheck2.Gen.(pair int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_uniform_in_bounds =
  QCheck2.Test.make ~name:"Prng.uniform stays in bounds"
    QCheck2.Gen.(triple int (float_bound_inclusive 1000.0) (float_bound_inclusive 1000.0))
    (fun (seed, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let g = Prng.create seed in
      let v = Prng.uniform g lo hi in
      v >= lo && (v < hi || Float.equal lo hi))

let () =
  Alcotest.run "prng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int_range inclusive" `Quick test_int_range_inclusive;
          Alcotest.test_case "int_range singleton" `Quick test_int_range_singleton;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "uniform mean" `Slow test_uniform_mean;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "weighted choice ratios" `Slow test_choose_weighted_ratio;
          Alcotest.test_case "weighted choice singleton" `Quick test_choose_weighted_single;
          Alcotest.test_case "weighted choice errors" `Quick test_choose_weighted_errors;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_uniform_in_bounds;
        ] );
    ]
