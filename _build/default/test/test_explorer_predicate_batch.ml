(* Tests for the interactive explorer, the first-order graph queries and
   the batch-means analysis. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Sim = Pnut_sim.Simulator
module Explorer = Pnut_sim.Explorer
module Graph = Pnut_reach.Graph
module Predicate = Pnut_reach.Predicate
module Query = Pnut_tracer.Query
module Batch = Pnut_stat.Batch
module Trace = Pnut_trace.Trace

(* -- explorer -- *)

let bus_net () =
  let b = B.create "bus" in
  let free = B.add_place b "free" ~initial:1 in
  let busy = B.add_place b "busy" in
  let _ = B.add_transition b "grab" ~inputs:[ (free, 1) ] ~outputs:[ (busy, 1) ] in
  let _ =
    B.add_transition b "release" ~inputs:[ (busy, 1) ] ~outputs:[ (free, 1) ]
      ~enabling:(Net.Const 2.0)
  in
  B.build b

let explore commands =
  let script = String.concat "\n" commands ^ "\n" in
  let in_path = Filename.temp_file "pnut_explore" ".in" in
  let out_path = Filename.temp_file "pnut_explore" ".out" in
  let oc = open_out in_path in
  output_string oc script;
  close_out oc;
  let ic = open_in in_path in
  let out = open_out out_path in
  Explorer.run ~seed:1 (bus_net ()) ic out;
  close_in ic;
  close_out out;
  let ic2 = open_in out_path in
  let text = really_input_string ic2 (in_channel_length ic2) in
  close_in ic2;
  Sys.remove in_path;
  Sys.remove out_path;
  text

let test_explorer_show_enabled () =
  let out = explore [ "show"; "enabled"; "quit" ] in
  Testutil.check_contains "banner" out "exploring bus";
  Testutil.check_contains "clock" out "clock: 0";
  Testutil.check_contains "marking" out "free";
  Testutil.check_contains "fireable" out "fireable: grab"

let test_explorer_manual_firing () =
  let out = explore [ "fire grab"; "show"; "enabled"; "quit" ] in
  Testutil.check_contains "fired" out "fired grab at t=0";
  Testutil.check_contains "token moved" out "busy";
  (* release needs 2 time units of enabling: not fireable yet *)
  Testutil.check_contains "nothing yet" out "nothing fireable at t=0"

let test_explorer_step_and_run () =
  let out = explore [ "fire grab"; "step"; "step"; "quit" ] in
  Testutil.check_contains "advance" out "time advances to 2";
  Testutil.check_contains "release fires" out "fired release at t=2";
  let out2 = explore [ "run 10"; "show"; "quit" ] in
  Testutil.check_contains "ran" out2 "ran to t=10";
  Testutil.check_contains "alive" out2 "still alive"

let test_explorer_reset_and_errors () =
  let out =
    explore
      [ "fire grab"; "reset"; "enabled"; "fire release"; "fire ghost";
        "run -3"; "run x"; "nonsense"; "quit" ]
  in
  Testutil.check_contains "reset message" out "reset to the initial state";
  Testutil.check_contains "fireable after reset" out "fireable: grab";
  Testutil.check_contains "not fireable error" out "release is not fireable";
  Testutil.check_contains "unknown transition" out "no transition named ghost";
  Testutil.check_contains "bad duration" out "positive duration";
  Testutil.check_contains "bad number" out "expects a number";
  Testutil.check_contains "unknown command" out "unknown command"

let test_explorer_back_and_history () =
  let out =
    explore
      [ "back"; "fire grab"; "run 5"; "history"; "back"; "show"; "history";
        "back"; "enabled"; "quit" ]
  in
  (* nothing to undo initially *)
  Testutil.check_contains "empty undo" out "nothing to undo";
  (* history lists the two mutations in order *)
  Testutil.check_contains "history fire" out "1  fire grab";
  Testutil.check_contains "history run" out "2  run 5";
  (* first back undoes 'run 5': clock returns to 0 with grab fired *)
  Testutil.check_contains "undid run" out "undid \"run 5\"; back at t=0";
  Testutil.check_contains "busy after replay" out "busy";
  (* second back undoes the fire: grab fireable again *)
  Testutil.check_contains "undid fire" out "undid \"fire grab\"";
  Testutil.check_contains "back to start" out "fireable: grab"

let test_explorer_dead_net () =
  let out = explore [ "fire grab"; "run 100"; "quit" ] in
  (* the bus cycles forever; to see death use a one-shot net instead *)
  ignore out;
  let oneshot =
    let b = B.create "oneshot" in
    let p = B.add_place b "p" ~initial:1 in
    let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] in
    B.build b
  in
  let in_path = Filename.temp_file "pnut_explore" ".in" in
  let oc = open_out in_path in
  output_string oc "run 5\nstep\nquit\n";
  close_out oc;
  let ic = open_in in_path in
  let buf_path = Filename.temp_file "pnut_explore" ".out" in
  let out_ch = open_out buf_path in
  Explorer.run oneshot ic out_ch;
  close_in ic;
  close_out out_ch;
  let ic2 = open_in buf_path in
  let text = really_input_string ic2 (in_channel_length ic2) in
  close_in ic2;
  Sys.remove in_path;
  Sys.remove buf_path;
  Testutil.check_contains "death reported" text "net died";
  Testutil.check_contains "quiescent step" text "dead"

(* -- first-order queries over reachability graphs -- *)

let parse = Pnut_lang.Parser.parse_query

let test_predicate_proof () =
  let g = Graph.build (bus_net ()) in
  Alcotest.(check bool) "one-hot proven over all states" true
    (Predicate.holds g (parse "forall s in S [ free(s) + busy(s) = 1 ]"));
  Alcotest.(check bool) "busy reachable" true
    (Predicate.holds g (parse "exists s in (S - {#0}) [ busy(s) = 1 ]"));
  Alcotest.(check bool) "false claim refuted" false
    (Predicate.holds g (parse "forall s in S [ free(s) = 1 ]"))

let test_predicate_temporal_is_branching () =
  let g = Graph.build (bus_net ()) in
  (* from every busy state the bus is inevitably freed: a PROOF here *)
  Alcotest.(check bool) "AF via inev" true
    (Predicate.holds g
       (parse "forall s in {s' in S | busy(s') > 0} [ inev(free > 0) ]"));
  (* alw = AG: free-or-busy always *)
  Alcotest.(check bool) "AG via alw" true
    (Predicate.holds g (parse "forall s in S [ alw(free + busy = 1) ]"))

let test_predicate_counterexample_index () =
  let g = Graph.build (bus_net ()) in
  match Predicate.eval g (parse "forall s in S [ free(s) = 1 ]") with
  | Query.Fails (Some i) ->
    let s = Graph.state g i in
    Alcotest.(check int) "counterexample is the busy state" 1
      s.Graph.s_marking.(1)
  | r ->
    Alcotest.failf "expected a counterexample, got %s"
      (Format.asprintf "%a" Query.pp_result r)

let test_predicate_truncated_rejected () =
  let b = B.create "pump" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ] in
  let g = Graph.build ~max_states:5 (B.build b) in
  Alcotest.check_raises "truncated"
    (Invalid_argument "Reach.Predicate.eval: reachability graph was truncated")
    (fun () -> ignore (Predicate.eval g (parse "forall s in S [ p(s) = 1 ]")))

let test_predicate_on_pipeline () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let g = Graph.build ~max_states:20_000 net in
  Alcotest.(check bool) "bus one-hot proven" true
    (Predicate.holds g (parse "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]"));
  Alcotest.(check bool) "buffer bound proven" true
    (Predicate.holds g (parse "forall s in S [ Full_I_buffers(s) <= 6 ]"));
  (* the trace-level question 'did exec_type_5 happen in this run' becomes
     'CAN the buffer drain' at the graph level *)
  Alcotest.(check bool) "buffer can drain" true
    (Predicate.holds g (parse "exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]"))

(* -- batch means -- *)

let batch_trace () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  fst (Sim.trace ~seed:42 ~until:10_000.0 net)

let test_batch_place_utilization () =
  let trace = batch_trace () in
  let e = Batch.place_utilization ~warmup:1000.0 ~batches:9 trace "Bus_busy" in
  Alcotest.(check int) "9 batches" 9 e.Pnut_stat.Replication.runs;
  Alcotest.(check bool)
    (Format.asprintf "estimate sane: %a" Pnut_stat.Replication.pp e)
    true
    (e.Pnut_stat.Replication.mean > 0.5 && e.Pnut_stat.Replication.mean < 0.7);
  (* batch means must agree with the global time average over the same
     window to well under the CI width *)
  let full = Pnut_stat.Stat.of_trace trace in
  let global = Pnut_stat.Stat.utilization full "Bus_busy" in
  Alcotest.(check bool) "near global average" true
    (Float.abs (e.Pnut_stat.Replication.mean -. global) < 0.05)

let test_batch_throughput () =
  let trace = batch_trace () in
  let e = Batch.transition_throughput ~warmup:500.0 ~batches:10 trace "Issue" in
  Alcotest.(check bool)
    (Format.asprintf "throughput sane: %a" Pnut_stat.Replication.pp e)
    true
    (e.Pnut_stat.Replication.mean > 0.09 && e.Pnut_stat.Replication.mean < 0.15)

let test_batch_exact_on_constant_signal () =
  (* a place holding a constant 3 tokens: every batch mean is exactly 3 *)
  let header =
    {
      Trace.h_net = "const";
      h_places = [| "p" |];
      h_transitions = [| "t" |];
      h_initial = [| 3 |];
      h_variables = [];
    }
  in
  let trace = Trace.make header [] 100.0 in
  let e = Batch.place_utilization ~batches:4 trace "p" in
  Testutil.check_close "mean exactly 3" 3.0 e.Pnut_stat.Replication.mean;
  Testutil.check_close "no variance" 0.0 e.Pnut_stat.Replication.stddev

let test_batch_step_change () =
  (* p is 0 until t=50, then 2 until t=100; with 2 batches the means are
     0 and 2 *)
  let header =
    {
      Trace.h_net = "step";
      h_places = [| "p" |];
      h_transitions = [| "t" |];
      h_initial = [| 0 |];
      h_variables = [];
    }
  in
  let d =
    {
      Trace.d_time = 50.0;
      d_kind = Trace.Fire_end;
      d_transition = 0;
      d_firing = 0;
      d_marking = [ (0, 2) ];
      d_env = [];
    }
  in
  let trace = Trace.make header [ d ] 100.0 in
  let e = Batch.place_utilization ~batches:2 trace "p" in
  Testutil.check_close "mean 1" 1.0 e.Pnut_stat.Replication.mean;
  (* sample stddev of {0, 2} = sqrt 2 *)
  Testutil.check_close "stddev" (sqrt 2.0) e.Pnut_stat.Replication.stddev

let test_batch_validation () =
  let trace = batch_trace () in
  Alcotest.check_raises "one batch"
    (Invalid_argument "Batch: need at least 2 batches") (fun () ->
      ignore (Batch.place_utilization ~batches:1 trace "Bus_busy"));
  Alcotest.check_raises "warmup too long"
    (Invalid_argument "Batch: warm-up leaves no observation window")
    (fun () ->
      ignore (Batch.place_utilization ~warmup:1e9 trace "Bus_busy"));
  Alcotest.check_raises "unknown place" Not_found (fun () ->
      ignore (Batch.place_utilization trace "ghost"))

let () =
  Alcotest.run "explorer-predicate-batch"
    [
      ( "explorer",
        [
          Alcotest.test_case "show/enabled" `Quick test_explorer_show_enabled;
          Alcotest.test_case "manual firing" `Quick test_explorer_manual_firing;
          Alcotest.test_case "step and run" `Quick test_explorer_step_and_run;
          Alcotest.test_case "reset and errors" `Quick test_explorer_reset_and_errors;
          Alcotest.test_case "back and history" `Quick
            test_explorer_back_and_history;
          Alcotest.test_case "dead net" `Quick test_explorer_dead_net;
        ] );
      ( "predicate",
        [
          Alcotest.test_case "proofs" `Quick test_predicate_proof;
          Alcotest.test_case "temporal operators" `Quick
            test_predicate_temporal_is_branching;
          Alcotest.test_case "counterexample" `Quick
            test_predicate_counterexample_index;
          Alcotest.test_case "truncated rejected" `Quick
            test_predicate_truncated_rejected;
          Alcotest.test_case "pipeline proofs" `Slow test_predicate_on_pipeline;
        ] );
      ( "batch",
        [
          Alcotest.test_case "place utilization" `Quick test_batch_place_utilization;
          Alcotest.test_case "throughput" `Quick test_batch_throughput;
          Alcotest.test_case "constant signal" `Quick
            test_batch_exact_on_constant_signal;
          Alcotest.test_case "step change" `Quick test_batch_step_change;
          Alcotest.test_case "validation" `Quick test_batch_validation;
        ] );
    ]
