(* Tests for replication statistics (confidence intervals) and the
   Graphviz exports. *)

module Replication = Pnut_stat.Replication
module Stat = Pnut_stat.Stat
module Net = Pnut_core.Net
module B = Net.Builder

(* -- replication -- *)

let test_of_samples_basic () =
  let e = Replication.of_samples [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check int) "runs" 5 e.Replication.runs;
  Testutil.check_close "mean" 3.0 e.Replication.mean;
  (* sample stddev of 1..5 = sqrt(2.5) *)
  Testutil.check_close ~tolerance:1e-9 "stddev" (sqrt 2.5) e.Replication.stddev;
  (* t(0.975, df=4) = 2.776 *)
  Testutil.check_close ~tolerance:1e-9 "half width"
    (2.776 *. sqrt 2.5 /. sqrt 5.0)
    e.Replication.half_width

let test_confidence_levels () =
  let samples = [ 10.0; 12.0; 11.0; 13.0; 9.0; 11.5 ] in
  let e90 = Replication.of_samples ~confidence:0.90 samples in
  let e95 = Replication.of_samples ~confidence:0.95 samples in
  let e99 = Replication.of_samples ~confidence:0.99 samples in
  Alcotest.(check bool) "nested intervals" true
    (e90.Replication.half_width < e95.Replication.half_width
    && e95.Replication.half_width < e99.Replication.half_width);
  Alcotest.check_raises "unsupported level"
    (Invalid_argument "Replication: supported confidence levels are 0.90, 0.95, 0.99")
    (fun () -> ignore (Replication.of_samples ~confidence:0.42 samples))

let test_interval_and_contains () =
  let e = Replication.of_samples [ 4.0; 6.0 ] in
  let lo, hi = Replication.interval e in
  Testutil.check_close "centered" 5.0 ((lo +. hi) /. 2.0);
  Alcotest.(check bool) "contains mean" true (Replication.contains e 5.0);
  Alcotest.(check bool) "excludes far value" false (Replication.contains e 100.0)

let test_too_few_samples () =
  Alcotest.check_raises "one sample"
    (Invalid_argument "Replication.of_samples: need at least two samples")
    (fun () -> ignore (Replication.of_samples [ 1.0 ]))

let test_identical_samples () =
  let e = Replication.of_samples [ 7.0; 7.0; 7.0 ] in
  Testutil.check_close "zero variance" 0.0 e.Replication.stddev;
  Testutil.check_close "zero width" 0.0 e.Replication.half_width

let test_replicate_pipeline () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let e =
    Replication.replicate ~seed:3 ~runs:5 ~until:2000.0 net (fun r ->
        Stat.utilization r "Bus_busy")
  in
  Alcotest.(check int) "five runs" 5 e.Replication.runs;
  (* the interval lands around the known utilization and is informative *)
  Alcotest.(check bool)
    (Format.asprintf "interval sane: %a" Replication.pp e)
    true
    (e.Replication.mean > 0.5 && e.Replication.mean < 0.75
    && e.Replication.half_width > 0.0 && e.Replication.half_width < 0.1);
  (* independent streams: nonzero spread *)
  Alcotest.(check bool) "spread" true (e.Replication.stddev > 0.0)

let test_pp_format () =
  let e = Replication.of_samples [ 1.0; 2.0 ] in
  let text = Format.asprintf "%a" Replication.pp e in
  Testutil.check_contains "format" text "95% CI, 2 runs";
  Testutil.check_contains "format" text "±"

(* -- DOT exports -- *)

let small_net () =
  let b = B.create "dot_demo" in
  let p = B.add_place b "p" ~initial:2 in
  let q = B.add_place b "q" in
  let blocker = B.add_place b "blocker" in
  let _ =
    B.add_transition b "move"
      ~inputs:[ (p, 2) ]
      ~inhibitors:[ (blocker, 1) ]
      ~outputs:[ (q, 1) ]
      ~firing:(Net.Const 3.0)
  in
  B.build b

let test_net_dot () =
  let text = Pnut_core.Dot.net (small_net ()) in
  List.iter
    (fun needle -> Testutil.check_contains "dot" text needle)
    [
      "digraph \"dot_demo\"";
      "\"p_p\" [shape=circle";
      "\"t_move\" [shape=box";
      "firing 3";
      "label=\"2\"";          (* arc weight *)
      "arrowhead=odot";       (* inhibitor styling *)
      "}";
    ]

let test_graph_dot () =
  let net = small_net () in
  let g = Pnut_reach.Graph.build net in
  let text = Pnut_reach.Export.graph_dot g in
  List.iter
    (fun needle -> Testutil.check_contains "graph dot" text needle)
    [ "digraph reachability"; "peripheries=2"; "move"; "2.p" ];
  (* the final state is a deadlock: shaded *)
  Testutil.check_contains "deadlock shading" text "lightpink"

let test_coverability_dot () =
  let b = B.create "pump" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ] in
  let net = B.build b in
  let g = Pnut_reach.Coverability.build net in
  let text = Pnut_reach.Export.coverability_dot net g in
  Testutil.check_contains "omega highlighted" text "ω";
  Testutil.check_contains "khaki fill" text "khaki";
  Testutil.check_contains "edges drawn" text "->"

let () =
  Alcotest.run "replication-export"
    [
      ( "replication",
        [
          Alcotest.test_case "basic estimate" `Quick test_of_samples_basic;
          Alcotest.test_case "confidence levels" `Quick test_confidence_levels;
          Alcotest.test_case "interval/contains" `Quick test_interval_and_contains;
          Alcotest.test_case "too few samples" `Quick test_too_few_samples;
          Alcotest.test_case "identical samples" `Quick test_identical_samples;
          Alcotest.test_case "pipeline replications" `Slow test_replicate_pipeline;
          Alcotest.test_case "formatting" `Quick test_pp_format;
        ] );
      ( "dot",
        [
          Alcotest.test_case "net export" `Quick test_net_dot;
          Alcotest.test_case "reachability export" `Quick test_graph_dot;
          Alcotest.test_case "coverability export" `Quick test_coverability_dot;
        ] );
    ]
