(* Tests for the lexer and the model / expression / query parsers. *)

module Lexer = Pnut_lang.Lexer
module Parser = Pnut_lang.Parser
module Net = Pnut_core.Net
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Query = Pnut_tracer.Query
module Signal = Pnut_tracer.Signal

(* -- lexer -- *)

let toks text = List.map (fun t -> t.Lexer.tok) (Lexer.tokenize text)

let test_lexer_basic () =
  Alcotest.(check bool) "idents and keywords" true
    (toks "net foo place p"
    = [ Lexer.Kw_net; Lexer.Ident "foo"; Lexer.Kw_place; Lexer.Ident "p"; Lexer.Eof ])

let test_lexer_numbers () =
  Alcotest.(check bool) "ints and floats" true
    (toks "42 3.5 1e3 2.5e-2"
    = [ Lexer.Int_lit 42; Lexer.Float_lit 3.5; Lexer.Float_lit 1000.0;
        Lexer.Float_lit 0.025; Lexer.Eof ])

let test_lexer_operators () =
  Alcotest.(check bool) "comparison tokens" true
    (toks "= == != < <= > >= ->"
    = [ Lexer.Eq; Lexer.Eq_eq; Lexer.Bang_eq; Lexer.Lt; Lexer.Le; Lexer.Gt;
        Lexer.Ge; Lexer.Arrow; Lexer.Eof ])

let test_lexer_comments () =
  Alcotest.(check bool) "comment skipped" true
    (toks "place p // trailing comment\nplace q"
    = [ Lexer.Kw_place; Lexer.Ident "p"; Lexer.Kw_place; Lexer.Ident "q"; Lexer.Eof ])

let test_lexer_hash_stateref () =
  Alcotest.(check bool) "hash is a token" true
    (toks "#0" = [ Lexer.Hash; Lexer.Int_lit 0; Lexer.Eof ])

let test_lexer_positions () =
  let located = Lexer.tokenize "place\n  foo" in
  match located with
  | [ p; f; _eof ] ->
    Alcotest.(check int) "line 1" 1 p.Lexer.line;
    Alcotest.(check int) "line 2" 2 f.Lexer.line;
    Alcotest.(check int) "col 3" 3 f.Lexer.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_errors () =
  (match Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error (1, 3, msg) ->
    Testutil.check_contains "message" msg "unexpected character");
  match Lexer.tokenize "a ! b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Lexer.Lex_error (_, _, msg) ->
    Testutil.check_contains "message" msg "did you mean"

(* -- expressions -- *)

let eval_int text env_pairs =
  let env = Pnut_core.Env.of_bindings env_pairs in
  Expr.eval_int env (Parser.parse_expr text)

let test_expr_precedence () =
  Alcotest.(check int) "mul binds tighter" 7 (eval_int "1 + 2 * 3" []);
  Alcotest.(check int) "parens" 9 (eval_int "(1 + 2) * 3" []);
  Alcotest.(check int) "unary minus" (-5) (eval_int "-2 - 3" []);
  Alcotest.(check int) "mod" 2 (eval_int "17 % 5" [])

let test_expr_boolean_structure () =
  let env = Pnut_core.Env.of_bindings [ ("a", Value.Int 1); ("b", Value.Int 2) ] in
  let check text expected =
    Alcotest.(check bool) text expected
      (Expr.eval_bool env (Parser.parse_expr text))
  in
  check "a < b and b < 3" true;
  check "a > b or b == 2" true;
  check "not (a == 1)" false;
  check "a == 1 and b == 2 or a == 9" true;
  (* 'and' binds tighter than 'or' *)
  check "a == 9 or a == 1 and b == 2" true

let test_expr_if_and_calls () =
  Alcotest.(check int) "if-then-else" 10
    (eval_int "if 1 < 2 then 10 else 20" []);
  Alcotest.(check int) "nested call" 4 (eval_int "max(min(4, 9), 2)" [])

let test_expr_table_syntax () =
  let env =
    Pnut_core.Env.of_bindings
      ~tables:[ ("t", [| Value.Int 5; Value.Int 7 |]) ]
      [ ("i", Value.Int 1) ]
  in
  Alcotest.(check int) "indexing" 7
    (Expr.eval_int env (Parser.parse_expr "t[i]"))

let test_expr_print_parse_roundtrip () =
  let cases =
    [ "a + b * 2"; "(a + b) * 2"; "not (a == 1) and b < 3"; "t[i + 1] - 4";
      "if a > 0 then a else -a"; "min(a, b) + max(1, 2)" ]
  in
  List.iter
    (fun text ->
      let once = Parser.parse_expr text in
      let again = Parser.parse_expr (Expr.to_string once) in
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %s" text)
        true (once = again))
    cases

let test_expr_parse_errors () =
  let expect text fragment =
    match Parser.parse_expr text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception Parser.Parse_error (_, _, msg) ->
      Testutil.check_contains "message" msg fragment
  in
  expect "1 +" "expected an expression";
  expect "(1" "expected ')'";
  expect "if 1 then 2" "expected 'else'";
  expect "1 2" "expected end of input"

(* -- model language -- *)

let pipeline_text =
  {|
// the paper's Figure-1 prefetch model, textual form
net prefetch
place Bus_free init 1
place Bus_busy
place Empty_I_buffers init 6 capacity 6
place Full_I_buffers
place pre_fetching
place Operand_fetch_pending
place Decoder_ready init 1
place Decoded_instruction

transition Start_prefetch
  in Bus_free, Empty_I_buffers * 2
  inhibit Operand_fetch_pending
  out Bus_busy, pre_fetching

transition End_prefetch
  in pre_fetching, Bus_busy
  out Bus_free, Full_I_buffers * 2
  enabling 5

transition Decode
  in Full_I_buffers, Decoder_ready
  out Decoded_instruction, Empty_I_buffers
  firing 1

transition consume
  in Decoded_instruction
  out Decoder_ready
|}

let test_parse_model () =
  let net = Parser.parse_net pipeline_text in
  Alcotest.(check string) "name" "prefetch" (Net.name net);
  Alcotest.(check int) "places" 8 (Net.num_places net);
  Alcotest.(check int) "transitions" 4 (Net.num_transitions net);
  let sp = Net.transition net (Net.transition_id net "Start_prefetch") in
  Alcotest.(check int) "two inputs" 2 (List.length sp.Net.t_inputs);
  Alcotest.(check int) "one inhibitor" 1 (List.length sp.Net.t_inhibitors);
  let weight =
    List.assoc (Net.place_id net "Empty_I_buffers")
      (List.map (fun a -> (a.Net.a_place, a.Net.a_weight)) sp.Net.t_inputs)
  in
  Alcotest.(check int) "arc weight 2" 2 weight;
  let ep = Net.transition net (Net.transition_id net "End_prefetch") in
  Alcotest.(check bool) "enabling 5" true (ep.Net.t_enabling = Net.Const 5.0);
  let buf = Net.place net (Net.place_id net "Empty_I_buffers") in
  Alcotest.(check (option int)) "capacity" (Some 6) buf.Net.p_capacity

let test_parse_model_interpreted () =
  let text =
    {|
net interp
var n = 0
table operands = [0, 1, 2]
place work init 1
transition fetch
  in work
  out work
  predicate n > 0
  action n = n - 1
  firing expr(2 * n)
transition pick
  in work
  out work
  frequency 0.5
  action n = operands[2]
|}
  in
  let net = Parser.parse_net text in
  Alcotest.(check bool) "variable" true
    (List.assoc "n" (Net.variables net) = Value.Int 0);
  Alcotest.(check int) "table size" 3
    (Array.length (List.assoc "operands" (Net.tables net)));
  let fetch = Net.transition net (Net.transition_id net "fetch") in
  Alcotest.(check bool) "predicate present" true (fetch.Net.t_predicate <> None);
  Alcotest.(check int) "one action" 1 (List.length fetch.Net.t_action);
  (match fetch.Net.t_firing with
  | Net.Dynamic _ -> ()
  | _ -> Alcotest.fail "expected dynamic firing");
  let pick = Net.transition net (Net.transition_id net "pick") in
  Alcotest.(check (float 0.0)) "frequency" 0.5 pick.Net.t_frequency

let test_parse_durations () =
  let text =
    {|
net durs
place p init 1
transition a
  in p
  out p
  firing uniform(1, 2)
transition b
  in p
  out p
  enabling exponential(3)
transition c
  in p
  out p
  firing choice(1:0.5, 2:0.3, 5:0.2)
|}
  in
  let net = Parser.parse_net text in
  let dur name pick =
    let t = Net.transition net (Net.transition_id net name) in
    pick t
  in
  Alcotest.(check bool) "uniform" true
    (dur "a" (fun t -> t.Net.t_firing) = Net.Uniform (1.0, 2.0));
  Alcotest.(check bool) "exponential" true
    (dur "b" (fun t -> t.Net.t_enabling) = Net.Exponential 3.0);
  Alcotest.(check bool) "choice" true
    (dur "c" (fun t -> t.Net.t_firing)
    = Net.Choice [ (1.0, 0.5); (2.0, 0.3); (5.0, 0.2) ])

let test_model_roundtrip_through_pp () =
  (* every built-in model prints and re-parses to an identical structure *)
  let check_roundtrip net =
    let text = Format.asprintf "%a" Net.pp net in
    let back = Parser.parse_net text in
    Alcotest.(check int) "places" (Net.num_places net) (Net.num_places back);
    Alcotest.(check int) "transitions" (Net.num_transitions net)
      (Net.num_transitions back);
    (* and the round-tripped net prints identically (canonical form) *)
    Alcotest.(check string) "canonical text" text
      (Format.asprintf "%a" Net.pp back)
  in
  check_roundtrip (Pnut_pipeline.Model.full Pnut_pipeline.Config.default);
  check_roundtrip (Pnut_pipeline.Model.prefetch_only Pnut_pipeline.Config.default);
  (* the interpreted model exercises vars, tables, predicates, actions
     and dynamic durations through the printer and parser *)
  check_roundtrip (Pnut_pipeline.Interpreted.full Pnut_pipeline.Config.default)

let test_model_parse_errors () =
  let expect text fragment =
    match Parser.parse_net text with
    | _ -> Alcotest.failf "expected parse error"
    | exception Parser.Parse_error (_, _, msg) ->
      Testutil.check_contains "message" msg fragment
  in
  expect "place p" "expected 'net'";
  expect "net x transition t in nowhere" "unknown place nowhere";
  expect "net x place p place p" "duplicate place";
  expect "net x place p init -1" "expected an integer";
  expect "net x junk" "expected 'place', 'transition'"

let test_behavioural_equivalence_after_roundtrip () =
  (* same seed, same horizon: the reparsed model produces the same trace *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let text = Format.asprintf "%a" Net.pp net in
  let net2 = Parser.parse_net text in
  let t1, _ = Pnut_sim.Simulator.trace ~seed:9 ~until:500.0 net in
  let t2, _ = Pnut_sim.Simulator.trace ~seed:9 ~until:500.0 net2 in
  Alcotest.(check string) "identical behaviour"
    (Pnut_trace.Codec.to_string t1)
    (Pnut_trace.Codec.to_string t2)

(* -- queries -- *)

let test_parse_query_forms () =
  (match Parser.parse_query "forall s in S [ p(s) + q(s) = 1 ]" with
  | Query.Forall (d, Query.Atom _) ->
    Alcotest.(check bool) "whole domain" true (d = Query.whole)
  | _ -> Alcotest.fail "unexpected shape");
  (match Parser.parse_query "exists s in (S - {#0, #3}) [ p(s) > 0 ]" with
  | Query.Exists (d, _) ->
    Alcotest.(check (list int)) "exclusions" [ 0; 3 ] d.Query.except
  | _ -> Alcotest.fail "unexpected shape");
  match Parser.parse_query "forall s in {s' in S | busy(s') > 0} [ inev(s, free > 0, true) ]" with
  | Query.Forall ({ Query.such_that = Some _; _ }, Query.Inev _) -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_query_state_application_stripped () =
  (* p(s) and bare p must evaluate identically *)
  let header =
    {
      Pnut_trace.Trace.h_net = "x";
      h_places = [| "p" |];
      h_transitions = [| "t" |];
      h_initial = [| 1 |];
      h_variables = [];
    }
  in
  let tr = Pnut_trace.Trace.make header [] 1.0 in
  let q1 = Parser.parse_query "forall s in S [ p(s) = 1 ]" in
  let q2 = Parser.parse_query "forall s in S [ p = 1 ]" in
  Alcotest.(check bool) "applied form" true (Query.holds (Query.eval tr q1));
  Alcotest.(check bool) "bare form" true (Query.holds (Query.eval tr q2))

let test_query_connectives_and_alw () =
  match Parser.parse_query "forall s in S [ p > 0 and alw(q = 0) or not (r = 2) ]" with
  | Query.Forall (_, Query.Or (Query.And (Query.Atom _, Query.Alw _), Query.Not _)) -> ()
  | _ -> Alcotest.fail "connective structure wrong"

let test_query_implication () =
  (* -> is only meaningful at the formula level via or/not, but the
     lexer accepts it; ensure a parse error is clean if unsupported *)
  match Parser.parse_query "forall s in S [ p = 1 ]" with
  | Query.Forall _ -> ()
  | _ -> Alcotest.fail "basic query broken"

let test_query_parse_errors () =
  let expect text fragment =
    match Parser.parse_query text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception Parser.Parse_error (_, _, msg) ->
      Testutil.check_contains "message" msg fragment
  in
  expect "p > 0" "expected 'forall' or 'exists'";
  expect "forall s in X [ p ]" "expected a state domain";
  expect "forall s in S p > 0" "expected '['";
  expect "forall s in S [ inev(p > 0, q > 0) ]" "inev expects one formula"

(* -- signals -- *)

let test_parse_signal_forms () =
  (match Parser.parse_signal "Bus_busy" with
  | Signal.Fun ("Bus_busy", Expr.Var "Bus_busy") -> ()
  | _ -> Alcotest.fail "bare name");
  match Parser.parse_signal "total = a + b" with
  | Signal.Fun ("total", Expr.Binop (Expr.Add, Expr.Var "a", Expr.Var "b")) -> ()
  | _ -> Alcotest.fail "named function"

(* property: random expressions over the full grammar print and re-parse
   to the identical AST *)
let gen_full_expr =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [
                 map Expr.int (int_range (-9) 99);
                 map Expr.float (map (fun i -> float_of_int i /. 4.0) (int_range 1 40));
                 return (Expr.var "x");
                 return (Expr.var "y");
                 return (Expr.bool true);
                 return (Expr.index "tbl" (Expr.int 0));
               ]
           else
             let sub = self (n / 2) in
             let bin op = map2 (fun a b -> Expr.Binop (op, a, b)) sub sub in
             oneof
               [
                 bin Expr.Add; bin Expr.Sub; bin Expr.Mul; bin Expr.Div;
                 bin Expr.Mod; bin Expr.Eq; bin Expr.Ne; bin Expr.Lt;
                 bin Expr.Le; bin Expr.Gt; bin Expr.Ge; bin Expr.And;
                 bin Expr.Or;
                 map (fun a -> Expr.Unop (Expr.Neg, a)) sub;
                 map (fun a -> Expr.Unop (Expr.Not, a)) sub;
                 map3 (fun a b c -> Expr.If (a, b, c)) sub sub sub;
                 map2 (fun a b -> Expr.Call ("min", [ a; b ])) sub sub;
                 map (fun a -> Expr.index "tbl" a) sub;
               ]))

(* printing a random AST and reparsing yields the parser's normal form
   (e.g. a negative literal becomes Neg-of-literal); printing THAT and
   reparsing must then be the identity — the normal form is stable *)
let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"printer/parser normal form is stable" ~count:300
    gen_full_expr (fun e ->
      match Parser.parse_expr (Expr.to_string e) with
      | exception Parser.Parse_error _ -> false
      | normal -> (
        match Parser.parse_expr (Expr.to_string normal) with
        | normal' -> normal = normal'
        | exception Parser.Parse_error _ -> false))

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "state refs" `Quick test_lexer_hash_stateref;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "expr",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "booleans" `Quick test_expr_boolean_structure;
          Alcotest.test_case "if and calls" `Quick test_expr_if_and_calls;
          Alcotest.test_case "tables" `Quick test_expr_table_syntax;
          Alcotest.test_case "print/parse round-trip" `Quick
            test_expr_print_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_expr_parse_errors;
        ] );
      ( "model",
        [
          Alcotest.test_case "figure 1 text" `Quick test_parse_model;
          Alcotest.test_case "interpreted nets" `Quick test_parse_model_interpreted;
          Alcotest.test_case "durations" `Quick test_parse_durations;
          Alcotest.test_case "pp round-trip" `Quick test_model_roundtrip_through_pp;
          Alcotest.test_case "errors" `Quick test_model_parse_errors;
          Alcotest.test_case "behavioural equivalence" `Quick
            test_behavioural_equivalence_after_roundtrip;
        ] );
      ( "query",
        [
          Alcotest.test_case "forms" `Quick test_parse_query_forms;
          Alcotest.test_case "state application" `Quick
            test_query_state_application_stripped;
          Alcotest.test_case "connectives" `Quick test_query_connectives_and_alw;
          Alcotest.test_case "implication" `Quick test_query_implication;
          Alcotest.test_case "errors" `Quick test_query_parse_errors;
        ] );
      ( "signal",
        [ Alcotest.test_case "forms" `Quick test_parse_signal_forms ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ] );
    ]
