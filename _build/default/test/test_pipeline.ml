(* Tests for the pipelined-processor models: structure, invariants, the
   Figure-5 statistics shape, and the Section-3 extensions. *)

module Net = Pnut_core.Net
module Config = Pnut_pipeline.Config
module Model = Pnut_pipeline.Model
module Interpreted = Pnut_pipeline.Interpreted
module Extensions = Pnut_pipeline.Extensions
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

let default = Config.default

let stats ?(seed = 42) ?(until = 10000.0) net =
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed ~until ~sink net in
  get ()

(* -- configuration -- *)

let test_config_validation () =
  Config.validate default;
  let bad = { default with Config.buffer_words = 0 } in
  Alcotest.check_raises "zero buffer"
    (Invalid_argument "Pipeline.Config: buffer_words must be positive")
    (fun () -> Config.validate bad);
  let bad2 = { default with Config.store_prob = 1.5 } in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Pipeline.Config: store_prob must be a probability")
    (fun () -> Config.validate bad2);
  let bad3 = { default with Config.prefetch_words = 9 } in
  Alcotest.check_raises "prefetch wider than buffer"
    (Invalid_argument "Pipeline.Config: prefetch_words cannot exceed buffer_words")
    (fun () -> Config.validate bad3)

let test_config_expectations () =
  (* the paper's numbers: E[exec] = 4.6 cycles, E[operands] = 0.4,
     bus demand = 2.5 + 2 + 1 = 5.5 cycles per instruction *)
  Testutil.check_close "exec cycles" 4.6 (Config.expected_exec_cycles default);
  Testutil.check_close "operands" 0.4 (Config.expected_operands default);
  Testutil.check_close "bus demand" 5.5
    (Config.expected_bus_cycles_per_instruction default)

(* -- structural model -- *)

let test_full_structure () =
  let net = Model.full default in
  Alcotest.(check string) "name" "pipeline3" (Net.name net);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Option.is_some (Net.find_place net name)))
    [ "Full_I_buffers"; "Empty_I_buffers"; "pre_fetching"; "fetching";
      "storing"; "Bus_busy"; "Bus_free"; "Decoder_ready"; "Execution_unit";
      "ready_to_issue_instruction" ];
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Option.is_some (Net.find_transition net name)))
    ([ "Start_prefetch"; "End_prefetch"; "Decode"; "Type_1"; "Type_2";
       "Type_3"; "Issue" ]
    @ Model.exec_transition_names default)

let test_prefetch_arcs () =
  let net = Model.full default in
  let sp = Net.transition net (Net.transition_id net "Start_prefetch") in
  Alcotest.(check int) "prefetch inhibitors" 2 (List.length sp.Net.t_inhibitors);
  let empty_id = Net.place_id net "Empty_I_buffers" in
  let weight =
    List.assoc empty_id
      (List.map (fun a -> (a.Net.a_place, a.Net.a_weight)) sp.Net.t_inputs)
  in
  Alcotest.(check int) "two words per prefetch" 2 weight

let test_exec_profile_transitions () =
  Alcotest.(check (list string)) "five exec transitions"
    [ "exec_type_1"; "exec_type_2"; "exec_type_3"; "exec_type_4"; "exec_type_5" ]
    (Model.exec_transition_names default);
  let short = { default with Config.exec_profile = [ (1.0, 1.0) ] } in
  Alcotest.(check (list string)) "profile-driven" [ "exec_type_1" ]
    (Model.exec_transition_names short)

let test_store_prob_edges () =
  let none = Model.full { default with Config.store_prob = 0.0 } in
  Alcotest.(check bool) "no store_result" true
    (Net.find_transition none "store_result" = None);
  let always = Model.full { default with Config.store_prob = 1.0 } in
  Alcotest.(check bool) "no no_store" true
    (Net.find_transition always "no_store" = None);
  Alcotest.(check bool) "store path present" true
    (Option.is_some (Net.find_transition always "store_result"))

(* -- Figure 5 shape (paper values, generous tolerances: the PRNG and
      minor model details differ, the shape must not) -- *)

let test_figure5_shape () =
  let r = stats (Model.full default) in
  let issue = Stat.throughput r "Issue" in
  (* paper: 0.1238 instructions per cycle *)
  Alcotest.(check bool)
    (Printf.sprintf "issue rate %.4f in [0.09, 0.15]" issue)
    true
    (issue > 0.09 && issue < 0.15);
  (* paper: bus utilization 0.6582 *)
  let bus = Stat.utilization r "Bus_busy" in
  Alcotest.(check bool)
    (Printf.sprintf "bus utilization %.3f in [0.5, 0.75]" bus)
    true (bus > 0.5 && bus < 0.75);
  (* the bus breakdown ordering: prefetch > operand fetch > store *)
  let pf = Stat.utilization r "pre_fetching" in
  let ft = Stat.utilization r "fetching" in
  let st = Stat.utilization r "storing" in
  Alcotest.(check bool) "prefetch > fetch" true (pf > ft);
  Alcotest.(check bool) "fetch > store" true (ft > st);
  Testutil.check_close ~tolerance:1e-6 "breakdown sums" bus (pf +. ft +. st);
  (* paper: buffers nearly full on average (4.62 of 6) *)
  let full_buf = Stat.utilization r "Full_I_buffers" in
  Alcotest.(check bool)
    (Printf.sprintf "buffers %.2f in [3.5, 5.5]" full_buf)
    true
    (full_buf > 3.5 && full_buf < 5.5);
  (* paper: decoder almost never idle (0.0014), execution unit idle ~0.27 *)
  Alcotest.(check bool) "decoder busy" true (Stat.utilization r "Decoder_ready" < 0.05);
  let eu = Stat.utilization r "Execution_unit" in
  Alcotest.(check bool)
    (Printf.sprintf "execution unit idle %.3f in [0.15, 0.40]" eu)
    true (eu > 0.15 && eu < 0.40)

let test_figure5_shape_robust_to_seed () =
  (* the headline reproduction must not be a seed lottery: the Issue
     rate stays in the paper's band across unrelated seeds *)
  List.iter
    (fun seed ->
      let r = stats ~seed (Model.full default) in
      let issue = Stat.throughput r "Issue" in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: issue %.4f in band" seed issue)
        true
        (issue > 0.09 && issue < 0.15))
    [ 1; 7; 1234 ]

let test_figure5_instruction_mix () =
  let r = stats (Model.full default) in
  let count name = float_of_int (Stat.transition r name).Stat.ts_starts in
  let t1 = count "Type_1" and t2 = count "Type_2" and t3 = count "Type_3" in
  let total = t1 +. t2 +. t3 in
  Alcotest.(check bool) "type 1 near 70%" true (Float.abs ((t1 /. total) -. 0.7) < 0.03);
  Alcotest.(check bool) "type 2 near 20%" true (Float.abs ((t2 /. total) -. 0.2) < 0.03);
  Alcotest.(check bool) "type 3 near 10%" true (Float.abs ((t3 /. total) -. 0.1) < 0.03);
  let issues = float_of_int (Stat.transition r "Issue").Stat.ts_starts in
  List.iter2
    (fun name expected ->
      let share = count name /. issues in
      Alcotest.(check bool)
        (Printf.sprintf "%s share %.3f near %.2f" name share expected)
        true
        (Float.abs (share -. expected) < 0.04))
    (Model.exec_transition_names default)
    [ 0.5; 0.3; 0.1; 0.05; 0.05 ]

let test_figure5_conservation_identities () =
  let r = stats (Model.full default) in
  (* every exec transition: avg concurrency = throughput * firing time
     (Little's law for a single station) *)
  List.iter2
    (fun name cycles ->
      let t = Stat.transition r name in
      Testutil.check_close ~tolerance:0.01
        (Printf.sprintf "%s concurrency = rate * time" name)
        (t.Stat.ts_throughput *. cycles)
        t.Stat.ts_avg)
    (Model.exec_transition_names default)
    (List.map fst default.Config.exec_profile);
  Testutil.check_close ~tolerance:1e-6 "bus one-hot average" 1.0
    (Stat.utilization r "Bus_free" +. Stat.utilization r "Bus_busy")

let test_prefetch_only_model () =
  let net = Model.prefetch_only default in
  let r = stats ~until:2000.0 net in
  let rate = Stat.throughput r "Decode" in
  Alcotest.(check bool)
    (Printf.sprintf "decode rate %.3f in (0.2, 0.45)" rate)
    true
    (rate > 0.2 && rate < 0.45);
  Alcotest.(check bool) "prefetch active" true
    (Stat.utilization r "pre_fetching" > 0.3)

(* -- memory-speed sensitivity (the paper's motivating question) -- *)

let test_memory_speed_monotonicity () =
  let rate memory_cycles =
    let net = Model.full { default with Config.memory_cycles } in
    Stat.throughput (stats ~until:5000.0 net) "Issue"
  in
  let fast = rate 1.0 in
  let normal = rate 5.0 in
  let slow = rate 15.0 in
  Alcotest.(check bool)
    (Printf.sprintf "faster memory helps: %.4f > %.4f > %.4f" fast normal slow)
    true
    (fast > normal && normal > slow)

let test_buffer_size_effect () =
  let rate buffer_words =
    let net = Model.full { default with Config.buffer_words } in
    Stat.throughput (stats ~until:5000.0 net) "Issue"
  in
  let tiny = rate 2 in
  let normal = rate 6 in
  let large = rate 12 in
  Alcotest.(check bool)
    (Printf.sprintf "buffer starvation: %.4f <= %.4f" tiny normal)
    true (tiny <= normal +. 0.005);
  Alcotest.(check bool)
    (Printf.sprintf "diminishing returns: |%.4f - %.4f| small" large normal)
    true
    (Float.abs (large -. normal) < 0.02)

(* -- interpreted model (Figure 4 / Section 3) -- *)

let test_interpreted_structure () =
  let net = Interpreted.full default in
  Alcotest.(check bool) "single execute" true
    (Option.is_some (Net.find_transition net "execute"));
  Alcotest.(check bool) "no exec_type_1" true
    (Net.find_transition net "exec_type_1" = None);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Option.is_some (Net.find_transition net name)))
    [ "fetch_operand"; "end_fetch"; "operand_fetching_done"; "Decode" ];
  Alcotest.(check bool) "operands table" true
    (List.mem_assoc "operands" (Net.tables net))

let test_interpreted_matches_structural () =
  (* differential oracle: same workload parameters, two modeling styles;
     stationary throughput and bus utilization must agree within a few
     percent *)
  let rs = stats ~seed:11 (Model.full default) in
  let ri = stats ~seed:11 (Interpreted.full default) in
  let issue_s = Stat.throughput rs "Issue" in
  let issue_i = Stat.throughput ri "Issue" in
  Alcotest.(check bool)
    (Printf.sprintf "issue rates agree: %.4f vs %.4f" issue_s issue_i)
    true
    (Float.abs (issue_s -. issue_i) /. issue_s < 0.12);
  let bus_s = Stat.utilization rs "Bus_busy" in
  let bus_i = Stat.utilization ri "Bus_busy" in
  Alcotest.(check bool)
    (Printf.sprintf "bus agrees: %.3f vs %.3f" bus_s bus_i)
    true
    (Float.abs (bus_s -. bus_i) < 0.08)

let test_interpreted_operand_counts () =
  (* fetch_operand fires once per memory operand: ~0.4 per instruction *)
  let r = stats ~seed:4 (Interpreted.full default) in
  let fetches = float_of_int (Stat.transition r "fetch_operand").Stat.ts_starts in
  let issues = float_of_int (Stat.transition r "Issue").Stat.ts_starts in
  let per_instr = fetches /. issues in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f operands per instruction near 0.4" per_instr)
    true
    (Float.abs (per_instr -. 0.4) < 0.05)

let test_wide_instruction_set_runs () =
  let isa = Interpreted.wide_instruction_set () in
  Alcotest.(check int) "30 classes" 30 (List.length isa);
  let net = Interpreted.full ~instruction_set:isa default in
  let r = stats ~seed:3 ~until:5000.0 net in
  let issues = (Stat.transition r "Issue").Stat.ts_starts in
  Alcotest.(check bool) "progress" true (issues > 100);
  let extra = (Stat.transition r "consume_word").Stat.ts_starts in
  Alcotest.(check bool) "extra words consumed" true (extra > 0)

let test_exec_memory_traffic () =
  (* an ISA where every instruction performs exactly 2 memory accesses
     during execution: exec_mem_access fires twice per issue and loads
     the bus *)
  let isa =
    [
      { Interpreted.ic_operands = 0; ic_extra_words = 0; ic_exec_mem_ops = 2;
        ic_weight = 1.0 };
    ]
  in
  let with_mem = Interpreted.full ~instruction_set:isa default in
  let without =
    Interpreted.full
      ~instruction_set:
        [ { Interpreted.ic_operands = 0; ic_extra_words = 0;
            ic_exec_mem_ops = 0; ic_weight = 1.0 } ]
      default
  in
  let rm = stats ~seed:5 ~until:5000.0 with_mem in
  let r0 = stats ~seed:5 ~until:5000.0 without in
  let issues = (Stat.transition rm "Issue").Stat.ts_starts in
  let accesses = (Stat.transition rm "exec_mem_access").Stat.ts_starts in
  let per_instr = float_of_int accesses /. float_of_int issues in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f accesses per instruction near 2" per_instr)
    true
    (Float.abs (per_instr -. 2.0) < 0.1);
  Alcotest.(check bool) "memory traffic slows the pipeline" true
    (Stat.throughput rm "Issue" < Stat.throughput r0 "Issue");
  Alcotest.(check bool) "and loads the bus" true
    (Stat.utilization rm "Bus_busy" > Stat.utilization r0 "Bus_busy");
  (* exec memory traffic shows in its own bus-breakdown place *)
  Alcotest.(check bool) "exec_accessing visible" true
    (Stat.utilization rm "exec_accessing" > 0.05)

let test_operand_fetch_skeleton () =
  let net = Interpreted.operand_fetch_skeleton default in
  let r = stats ~seed:8 ~until:3000.0 net in
  let fetches = float_of_int (Stat.transition r "fetch_operand").Stat.ts_starts in
  let decodes = float_of_int (Stat.transition r "Decode").Stat.ts_starts in
  Alcotest.(check bool) "runs" true (decodes > 100.0);
  Alcotest.(check bool)
    (Printf.sprintf "%.3f fetches per decode near 0.4" (fetches /. decodes))
    true
    (Float.abs ((fetches /. decodes) -. 0.4) < 0.05)

(* -- caches (Section 3) -- *)

let test_cache_improves_throughput () =
  let rate net = Stat.throughput (stats ~until:5000.0 net) "Issue" in
  let base = rate (Model.full default) in
  let cached =
    rate (Extensions.with_caches ~icache_hit_ratio:0.9 ~dcache_hit_ratio:0.9 default)
  in
  Alcotest.(check bool)
    (Printf.sprintf "caches help: %.4f > %.4f" cached base)
    true (cached > base)

let test_cache_reduces_bus_load () =
  let bus net = Stat.utilization (stats ~until:5000.0 net) "Bus_busy" in
  let base = bus (Extensions.with_caches ~icache_hit_ratio:0.0 default) in
  let cached = bus (Extensions.with_caches ~icache_hit_ratio:0.95 default) in
  Alcotest.(check bool)
    (Printf.sprintf "bus load drops: %.3f < %.3f" cached base)
    true (cached < base)

let test_cache_hit_ratio_monotone () =
  let rate h =
    Stat.throughput
      (stats ~until:5000.0
         (Extensions.with_caches ~icache_hit_ratio:h ~dcache_hit_ratio:h default))
      "Issue"
  in
  let lo = rate 0.1 and mid = rate 0.5 and hi = rate 0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone-ish: %.4f <= %.4f <= %.4f" lo mid hi)
    true
    (lo <= mid +. 0.01 && mid <= hi +. 0.01)

let test_cache_validation () =
  Alcotest.check_raises "ratio out of range"
    (Invalid_argument "Extensions.with_caches: icache_hit_ratio out of [0,1]")
    (fun () -> ignore (Extensions.with_caches ~icache_hit_ratio:1.5 default))

let () =
  Alcotest.run "pipeline"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "analytic expectations" `Quick test_config_expectations;
        ] );
      ( "structure",
        [
          Alcotest.test_case "full model" `Quick test_full_structure;
          Alcotest.test_case "prefetch arcs" `Quick test_prefetch_arcs;
          Alcotest.test_case "exec profile" `Quick test_exec_profile_transitions;
          Alcotest.test_case "store probability edges" `Quick test_store_prob_edges;
        ] );
      ( "figure5",
        [
          Alcotest.test_case "shape" `Slow test_figure5_shape;
          Alcotest.test_case "seed robustness" `Slow
            test_figure5_shape_robust_to_seed;
          Alcotest.test_case "instruction mix" `Slow test_figure5_instruction_mix;
          Alcotest.test_case "conservation identities" `Slow
            test_figure5_conservation_identities;
          Alcotest.test_case "prefetch-only model" `Quick test_prefetch_only_model;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "memory speed" `Slow test_memory_speed_monotonicity;
          Alcotest.test_case "buffer size" `Slow test_buffer_size_effect;
        ] );
      ( "interpreted",
        [
          Alcotest.test_case "structure" `Quick test_interpreted_structure;
          Alcotest.test_case "matches structural model" `Slow
            test_interpreted_matches_structural;
          Alcotest.test_case "operand counts" `Slow test_interpreted_operand_counts;
          Alcotest.test_case "wide instruction set" `Slow
            test_wide_instruction_set_runs;
          Alcotest.test_case "exec memory traffic" `Slow
            test_exec_memory_traffic;
          Alcotest.test_case "figure-4 skeleton" `Quick test_operand_fetch_skeleton;
        ] );
      ( "caches",
        [
          Alcotest.test_case "throughput" `Slow test_cache_improves_throughput;
          Alcotest.test_case "bus load" `Slow test_cache_reduces_bus_load;
          Alcotest.test_case "hit-ratio monotone" `Slow test_cache_hit_ratio_monotone;
          Alcotest.test_case "validation" `Quick test_cache_validation;
        ] );
    ]
