(* Tests for the branching-pipeline extension (flush-on-branch). *)

module Net = Pnut_core.Net
module Config = Pnut_pipeline.Config
module Model = Pnut_pipeline.Model
module Branching = Pnut_pipeline.Branching
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat
module Query = Pnut_tracer.Query

let default = Config.default

let stats ?(seed = 42) ?(until = 10_000.0) net =
  let sink, get = Stat.sink () in
  let outcome = Sim.simulate ~seed ~until ~sink net in
  Alcotest.(check bool) "run survives to the horizon" true
    (outcome.Sim.stop = Sim.Horizon);
  get ()

let test_validation () =
  Alcotest.check_raises "bad ratio"
    (Invalid_argument "Branching.full: branch_ratio must be in [0, 1)")
    (fun () -> ignore (Branching.full ~branch_ratio:1.0 default));
  let net = Branching.full default in
  Alcotest.(check (list string)) "model clean" []
    (List.map
       (fun d -> d.Pnut_core.Validate.message)
       (Pnut_core.Validate.check net))

let test_zero_ratio_matches_baseline () =
  (* with no branches, the model behaves like the plain pipeline *)
  let branchy = Branching.full ~branch_ratio:0.0 default in
  Alcotest.(check bool) "no branch transition" true
    (Net.find_transition branchy "branch_taken" = None);
  let rb = stats branchy in
  let rp = stats (Model.full default) in
  let ib = Stat.throughput rb "Issue" in
  let ip = Stat.throughput rp "Issue" in
  Alcotest.(check bool)
    (Printf.sprintf "throughputs close: %.4f vs %.4f" ib ip)
    true
    (Float.abs (ib -. ip) /. ip < 0.05)

let test_branches_fire_and_flush () =
  let net = Branching.full ~branch_ratio:0.2 default in
  let r = stats net in
  let issues = (Stat.transition r "Issue").Stat.ts_starts in
  let branches = (Stat.transition r "branch_taken").Stat.ts_starts in
  let share = float_of_int branches /. float_of_int issues in
  Alcotest.(check bool)
    (Printf.sprintf "branch share %.3f near 0.2" share)
    true
    (Float.abs (share -. 0.2) < 0.03);
  (* every branch completes its flush *)
  Alcotest.(check bool) "flushes complete" true
    (abs ((Stat.transition r "flush_done").Stat.ts_ends - branches) <= 1);
  (* flushed words exist: prefetched work gets thrown away *)
  Alcotest.(check bool) "words squashed" true
    ((Stat.transition r "flush_buffer_word").Stat.ts_starts > 0)

let test_branches_hurt_throughput () =
  let rate ratio = Stat.throughput (stats (Branching.full ~branch_ratio:ratio default)) "Issue" in
  let none = rate 0.0 in
  let some = rate 0.15 in
  let many = rate 0.4 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.4f > %.4f > %.4f" none some many)
    true
    (none > some && some > many)

let test_deep_buffer_hurts_with_branches () =
  (* the signature interaction: without branches deeper buffers never
     hurt; with frequent branches the wasted prefetch traffic costs
     bus bandwidth, so the benefit inverts or vanishes *)
  let rate ~buffer_words ~ratio =
    Stat.throughput
      (stats ~until:20_000.0
         (Branching.full ~branch_ratio:ratio { default with Config.buffer_words }))
      "Issue"
  in
  let no_branch_gain = rate ~buffer_words:12 ~ratio:0.0 -. rate ~buffer_words:2 ~ratio:0.0 in
  let branch_gain = rate ~buffer_words:12 ~ratio:0.3 -. rate ~buffer_words:2 ~ratio:0.3 in
  Alcotest.(check bool)
    (Printf.sprintf "buffer gain shrinks under branches: %.4f -> %.4f"
       no_branch_gain branch_gain)
    true
    (branch_gain < no_branch_gain +. 0.002)

let test_invariants_under_flush () =
  let net = Branching.full ~branch_ratio:0.25 default in
  let trace, _ = Sim.trace ~seed:9 ~until:5000.0 net in
  let holds q =
    Query.holds (Query.eval trace (Pnut_lang.Parser.parse_query q))
  in
  Alcotest.(check bool) "bus one-hot survives flushes" true
    (holds "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]");
  Alcotest.(check bool) "flushing is one-hot" true
    (holds "forall s in S [ Flushing(s) <= 1 ]");
  Alcotest.(check bool) "buffer conservation" true
    (holds
       "forall s in S [ Full_I_buffers(s) + Empty_I_buffers(s) + 2 * \
        pre_fetching(s) + Decode(s) <= 6 ]");
  Alcotest.(check bool) "no prefetch while flushing" true
    (holds "forall s in S [ Flushing(s) = 0 or Start_prefetch(s) = 0 ]")

let test_flush_transition_names () =
  let net = Branching.full ~branch_ratio:0.1 default in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Option.is_some (Net.find_transition net name)))
    Branching.flush_transitions

let () =
  Alcotest.run "branching"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "zero ratio baseline" `Slow
            test_zero_ratio_matches_baseline;
          Alcotest.test_case "flush machinery" `Quick test_flush_transition_names;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "branches fire and flush" `Slow
            test_branches_fire_and_flush;
          Alcotest.test_case "branches hurt" `Slow test_branches_hurt_throughput;
          Alcotest.test_case "deep buffers vs branches" `Slow
            test_deep_buffer_hurts_with_branches;
          Alcotest.test_case "invariants under flush" `Slow
            test_invariants_under_flush;
        ] );
    ]
