(* Tests for the textual animator. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Trace = Pnut_trace.Trace
module Anim = Pnut_anim.Animator
module Sim = Pnut_sim.Simulator

let small_net () =
  let b = B.create "anim" in
  let p = B.add_place b "input" ~initial:2 in
  let q = B.add_place b "output" in
  let _ =
    B.add_transition b "move" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~firing:(Net.Const 1.0)
  in
  B.build b

let test_render_state () =
  let net = small_net () in
  let text = Anim.render_state net (Net.initial_marking net) in
  Testutil.check_contains "state" text "input";
  Testutil.check_contains "state" text "output";
  Testutil.check_contains "gauge" text "oo";
  Testutil.check_contains "count" text "[ 2]"

let test_render_state_restricted () =
  let net = small_net () in
  let text = Anim.render_state ~places:[ "output" ] net (Net.initial_marking net) in
  Testutil.check_contains "kept" text "output";
  Alcotest.(check bool) "input hidden" false (Testutil.contains text "input")

let test_frames_phases () =
  let net = small_net () in
  let trace, _ = Sim.trace ~until:10.0 net in
  let frames = Anim.frames net trace in
  (* each delta yields two frames (pre and post) *)
  Alcotest.(check int) "two frames per delta"
    (2 * Trace.length trace)
    (List.length frames);
  (match frames with
  | first :: second :: _ ->
    Alcotest.(check bool) "starts with consume" true
      (first.Anim.f_phase = Anim.Consume);
    Alcotest.(check bool) "then transit" true (second.Anim.f_phase = Anim.Transit);
    Testutil.check_contains "caption" first.Anim.f_caption "move";
    Testutil.check_contains "arrow" first.Anim.f_text "==> [ move ]"
  | _ -> Alcotest.fail "expected frames");
  (* the last frame of a completed firing shows the produce phase *)
  let last = List.nth frames (List.length frames - 1) in
  Alcotest.(check bool) "ends with produce" true (last.Anim.f_phase = Anim.Produce);
  Testutil.check_contains "deposit arrow" last.Anim.f_text "==> ( output )"

let test_frames_token_flow_markers () =
  let net = small_net () in
  let trace, _ = Sim.trace ~max_events:1 net in
  let frames = Anim.frames net trace in
  (* the consume frame highlights the source place *)
  match frames with
  | consume :: _ -> Testutil.check_contains "out marker" consume.Anim.f_text "<-"
  | [] -> Alcotest.fail "no frames"

let test_frames_reject_foreign_trace () =
  let net = small_net () in
  let other =
    let b = B.create "other" in
    let p = B.add_place b "different" ~initial:1 in
    let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] in
    B.build b
  in
  let trace, _ = Sim.trace ~until:5.0 other in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Animator: trace does not match the net") (fun () ->
      ignore (Anim.frames net trace))

let test_play_writes_frames () =
  let net = small_net () in
  let trace, _ = Sim.trace ~max_events:2 net in
  let frames = Anim.frames net trace in
  let path = Filename.temp_file "pnut_anim" ".txt" in
  let oc = open_out path in
  Anim.play oc frames;
  close_out oc;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Testutil.check_contains "playback" contents "move";
  Testutil.check_contains "frame separator" contents "---"

let test_pipeline_animation_smoke () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let trace, _ = Sim.trace ~seed:5 ~max_events:20 net in
  let frames =
    Anim.frames ~places:[ "Bus_free"; "Bus_busy"; "Empty_I_buffers" ] net trace
  in
  Alcotest.(check bool) "frames produced" true (List.length frames > 10);
  List.iter
    (fun f ->
      Alcotest.(check bool) "time monotone" true (f.Anim.f_time >= 0.0);
      Testutil.check_contains "panel restricted" f.Anim.f_text "Bus_free")
    frames

let () =
  Alcotest.run "anim"
    [
      ( "render",
        [
          Alcotest.test_case "state panel" `Quick test_render_state;
          Alcotest.test_case "restricted panel" `Quick test_render_state_restricted;
        ] );
      ( "frames",
        [
          Alcotest.test_case "phases" `Quick test_frames_phases;
          Alcotest.test_case "token flow markers" `Quick
            test_frames_token_flow_markers;
          Alcotest.test_case "foreign trace rejected" `Quick
            test_frames_reject_foreign_trace;
          Alcotest.test_case "playback" `Quick test_play_writes_frames;
          Alcotest.test_case "pipeline smoke" `Quick test_pipeline_animation_smoke;
        ] );
    ]
