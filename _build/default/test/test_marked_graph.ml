(* Tests for the Ramamoorthy-Ho marked-graph cycle-time analysis,
   cross-validated against the timed steady-cycle walker and the
   simulator. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Mg = Pnut_analytic.Marked_graph
module Timed = Pnut_reach.Timed

(* A ring of [n] stages with given delays and one token on the first
   place; stage i moves the token onward after delays.(i). *)
let ring delays tokens0 =
  let n = List.length delays in
  let b = B.create "ring" in
  let places =
    List.init n (fun i ->
        B.add_place b (Printf.sprintf "p%d" i)
          ~initial:(if i = 0 then tokens0 else 0))
  in
  List.iteri
    (fun i d ->
      let src = List.nth places i in
      let dst = List.nth places ((i + 1) mod n) in
      ignore
        (B.add_transition b
           (Printf.sprintf "s%d" i)
           ~inputs:[ (src, 1) ]
           ~outputs:[ (dst, 1) ]
           ~firing:(Net.Const d)
          : Net.transition_id))
    delays;
  B.build b

let cycle_value = function
  | Mg.Cycle_time t -> t
  | Mg.Deadlock -> Alcotest.fail "unexpected deadlock"
  | Mg.Unbounded_rate -> Alcotest.fail "unexpected unbounded rate"

let test_single_ring () =
  let net = ring [ 2.0; 3.0 ] 1 in
  Testutil.check_close ~tolerance:1e-6 "cycle = 5" 5.0
    (cycle_value (Mg.cycle_time net))

let test_tokens_divide_cycle () =
  (* two tokens circulating: each one completes the circuit in 5, so the
     rate doubles and the effective cycle time halves *)
  let net = ring [ 2.0; 3.0 ] 2 in
  Testutil.check_close ~tolerance:1e-6 "cycle = 2.5" 2.5
    (cycle_value (Mg.cycle_time net))

let test_critical_circuit_dominates () =
  (* two independent rings sharing no structure; the slower one is
     critical *)
  let b = B.create "two_rings" in
  let add_ring tag d1 d2 =
    let p1 = B.add_place b (tag ^ "_p1") ~initial:1 in
    let p2 = B.add_place b (tag ^ "_p2") in
    ignore
      (B.add_transition b (tag ^ "_a") ~inputs:[ (p1, 1) ] ~outputs:[ (p2, 1) ]
         ~firing:(Net.Const d1)
        : Net.transition_id);
    ignore
      (B.add_transition b (tag ^ "_b") ~inputs:[ (p2, 1) ] ~outputs:[ (p1, 1) ]
         ~firing:(Net.Const d2)
        : Net.transition_id)
  in
  add_ring "fast" 1.0 1.0;
  add_ring "slow" 4.0 6.0;
  let net = B.build b in
  Testutil.check_close ~tolerance:1e-6 "slow ring dominates" 10.0
    (cycle_value (Mg.cycle_time net));
  match Mg.critical_circuit net with
  | Some (circuit, rho) ->
    Testutil.check_close ~tolerance:1e-6 "ratio" 10.0 rho;
    let names =
      List.map (fun t -> (Net.transition net t).Net.t_name) circuit
    in
    Alcotest.(check bool) "critical circuit is the slow ring" true
      (List.for_all (fun n -> String.length n >= 4 && String.sub n 0 4 = "slow") names)
  | None -> Alcotest.fail "expected a critical circuit"

let test_deadlock_detected () =
  (* a circuit with no tokens can never fire *)
  let net = ring [ 1.0; 1.0 ] 0 in
  Alcotest.(check bool) "deadlock" true (Mg.cycle_time net = Mg.Deadlock)

let test_acyclic_unbounded () =
  let b = B.create "line" in
  let p1 = B.add_place b "p1" ~initial:1 in
  let p2 = B.add_place b "p2" in
  let _ =
    B.add_transition b "t" ~inputs:[ (p1, 1) ] ~outputs:[ (p2, 1) ]
      ~firing:(Net.Const 1.0)
  in
  (* p2 needs a consumer for the marked-graph property *)
  let p3 = B.add_place b "p3" in
  let _ =
    B.add_transition b "u" ~inputs:[ (p2, 1) ] ~outputs:[ (p3, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let p4 = B.add_place b "p4" ~initial:1 in
  ignore p4;
  (* p3 and p4 unconsumed/unproduced would break MG structure; drop them
     by consuming p3 into p4's producer... simplest: close p3 -> sink
     transition -> p4 unused is a violation, so instead check the raw
     two-stage line with dangling p3: *)
  match B.build b with
  | net -> (
    match Mg.is_marked_graph net with
    | Error reason ->
      Testutil.check_contains "violation names p3/p4" reason "producer"
    | Ok () -> Alcotest.fail "dangling places should violate MG structure")

let test_structure_checks () =
  (* weighted arc *)
  let b = B.create "w" in
  let p = B.add_place b "p" ~initial:2 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 2) ] ~outputs:[ (q, 1) ] in
  let _ = B.add_transition b "u" ~inputs:[ (q, 1) ] ~outputs:[ (p, 1) ] in
  let net = B.build b in
  (match Mg.is_marked_graph net with
  | Error reason -> Testutil.check_contains "weight" reason "weight 2"
  | Ok () -> Alcotest.fail "expected weight violation");
  (* branching place (a conflict) *)
  let b2 = B.create "branch" in
  let p = B.add_place b2 "p" ~initial:1 in
  let q1 = B.add_place b2 "q1" in
  let q2 = B.add_place b2 "q2" in
  let _ = B.add_transition b2 "t1" ~inputs:[ (p, 1) ] ~outputs:[ (q1, 1) ] in
  let _ = B.add_transition b2 "t2" ~inputs:[ (p, 1) ] ~outputs:[ (q2, 1) ] in
  let _ = B.add_transition b2 "back1" ~inputs:[ (q1, 1) ] ~outputs:[ (p, 1) ] in
  let _ = B.add_transition b2 "back2" ~inputs:[ (q2, 1) ] ~outputs:[ (p, 1) ] in
  let net2 = B.build b2 in
  match Mg.is_marked_graph net2 with
  | Error reason -> Testutil.check_contains "branching" reason "consumer"
  | Ok () -> Alcotest.fail "expected branching violation"

let test_mean_delays_used () =
  (* a uniform(2,4) delay has mean 3: same cycle time as Const 3 *)
  let det = ring [ 3.0; 2.0 ] 1 in
  let stochastic =
    let b = B.create "sto" in
    let p0 = B.add_place b "p0" ~initial:1 in
    let p1 = B.add_place b "p1" in
    let _ =
      B.add_transition b "s0" ~inputs:[ (p0, 1) ] ~outputs:[ (p1, 1) ]
        ~firing:(Net.Uniform (2.0, 4.0))
    in
    let _ =
      B.add_transition b "s1" ~inputs:[ (p1, 1) ] ~outputs:[ (p0, 1) ]
        ~enabling:(Net.Choice [ (1.0, 1.0); (3.0, 1.0) ])
    in
    B.build b
  in
  Testutil.check_close ~tolerance:1e-6 "same mean cycle"
    (cycle_value (Mg.cycle_time det))
    (cycle_value (Mg.cycle_time stochastic))

let test_agrees_with_steady_cycle () =
  let net = ring [ 1.5; 2.5; 4.0 ] 1 in
  let analytic = cycle_value (Mg.cycle_time net) in
  match Timed.steady_cycle net with
  | Some c ->
    Testutil.check_close ~tolerance:1e-6 "RH80 = timed walker" analytic
      c.Timed.cy_period
  | None -> Alcotest.fail "expected a steady cycle"

let test_agrees_with_simulation () =
  let net = ring [ 2.0; 1.0; 3.0 ] 2 in
  let analytic = cycle_value (Mg.cycle_time net) in
  let sink, get = Pnut_stat.Stat.sink () in
  let _ = Pnut_sim.Simulator.simulate ~until:50_000.0 ~sink net in
  let rate = Pnut_stat.Stat.throughput (get ()) "s0" in
  Testutil.check_close ~tolerance:0.001 "throughput = 1 / cycle time"
    (1.0 /. analytic) rate

let () =
  Alcotest.run "marked-graph"
    [
      ( "cycle time",
        [
          Alcotest.test_case "single ring" `Quick test_single_ring;
          Alcotest.test_case "tokens divide" `Quick test_tokens_divide_cycle;
          Alcotest.test_case "critical circuit" `Quick
            test_critical_circuit_dominates;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detected;
          Alcotest.test_case "structure violations" `Quick test_structure_checks;
          Alcotest.test_case "dangling places" `Quick test_acyclic_unbounded;
          Alcotest.test_case "mean delays" `Quick test_mean_delays_used;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "vs steady cycle" `Quick test_agrees_with_steady_cycle;
          Alcotest.test_case "vs simulation" `Slow test_agrees_with_simulation;
        ] );
    ]
