(* Tests for tracertool signals (probe extraction) and the waveform
   renderer. *)

module Trace = Pnut_trace.Trace
module Signal = Pnut_tracer.Signal
module Waveform = Pnut_tracer.Waveform
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value

let header =
  {
    Trace.h_net = "sig";
    h_places = [| "p"; "q" |];
    h_transitions = [| "t" |];
    h_initial = [| 1; 0 |];
    h_variables = [ ("level", Value.Int 5) ];
  }

let delta time kind marking env =
  {
    Trace.d_time = time;
    d_kind = kind;
    d_transition = 0;
    d_firing = 0;
    d_marking = marking;
    d_env = env;
  }

(* p: 1 on [0,2), 0 on [2,6), 3 on [6,10]
   t: in flight on [2,6)
   level: 5 then 9 from t=6 *)
let tr =
  Trace.make header
    [
      delta 2.0 Trace.Fire_start [ (0, -1) ] [];
      delta 6.0 Trace.Fire_end [ (0, 3); (1, 1) ] [ ("level", Value.Int 9) ];
    ]
    10.0

let series_of signal =
  match Signal.sample tr [ signal ] with
  | [ (_, s) ] -> s
  | _ -> Alcotest.fail "expected one series"

let test_place_signal () =
  let s = series_of (Signal.Place "p") in
  Alcotest.(check (array (float 0.0))) "breakpoint times" [| 0.0; 2.0; 6.0 |]
    s.Signal.times;
  Alcotest.(check (array (float 0.0))) "values" [| 1.0; 0.0; 3.0 |] s.Signal.values;
  Alcotest.(check (float 0.0)) "t_end" 10.0 s.Signal.t_end

let test_transition_signal () =
  let s = series_of (Signal.Transition "t") in
  Alcotest.(check (float 0.0)) "before" 0.0 (Signal.value_at s 1.0);
  Alcotest.(check (float 0.0)) "during" 1.0 (Signal.value_at s 4.0);
  Alcotest.(check (float 0.0)) "after" 0.0 (Signal.value_at s 8.0)

let test_var_signal () =
  let s = series_of (Signal.Var "level") in
  Alcotest.(check (float 0.0)) "initial" 5.0 (Signal.value_at s 0.0);
  Alcotest.(check (float 0.0)) "updated" 9.0 (Signal.value_at s 7.0)

let test_fun_signal () =
  (* sum of a place and a transition activity, the paper's user-defined
     function use case *)
  let f = Signal.Fun ("combo", Expr.(var "p" + var "t" * int 10)) in
  let s = series_of f in
  Alcotest.(check (float 0.0)) "at 0: p=1,t=0" 1.0 (Signal.value_at s 0.0);
  Alcotest.(check (float 0.0)) "at 4: p=0,t=1" 10.0 (Signal.value_at s 4.0);
  Alcotest.(check (float 0.0)) "at 8: p=3,t=0" 3.0 (Signal.value_at s 8.0)

let test_fun_resolution_order () =
  (* a variable shadowed by no place/transition resolves as a variable *)
  let s = series_of (Signal.Fun ("lvl", Expr.var "level")) in
  Alcotest.(check (float 0.0)) "var resolved" 5.0 (Signal.value_at s 0.0)

let test_unknown_signal () =
  Alcotest.check_raises "unknown" (Signal.Unknown_signal "ghost") (fun () ->
      ignore (Signal.sample tr [ Signal.Place "ghost" ]))

let test_value_at_interpolation_boundaries () =
  let s = series_of (Signal.Place "p") in
  Alcotest.(check (float 0.0)) "exactly at breakpoint" 0.0 (Signal.value_at s 2.0);
  Alcotest.(check (float 0.0)) "just before" 1.0 (Signal.value_at s 1.999);
  Alcotest.(check (float 0.0)) "past the end" 3.0 (Signal.value_at s 99.0)

let test_single_pass_multiple_signals () =
  let sampled =
    Signal.sample tr [ Signal.Place "p"; Signal.Place "q"; Signal.Transition "t" ]
  in
  Alcotest.(check int) "three series" 3 (List.length sampled);
  let labels = List.map (fun (sg, _) -> Signal.label sg) sampled in
  Alcotest.(check (list string)) "labels in order" [ "p"; "q"; "t" ] labels

let test_to_csv () =
  let text = Signal.to_csv tr [ Signal.Place "p"; Signal.Transition "t" ] in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check string) "header" "time,p,t" (List.hd lines);
  (* breakpoints at 0, 2, 6 plus the final time 10 *)
  Alcotest.(check int) "rows" 5 (List.length lines);
  Alcotest.(check bool) "t=2 row shows p=0, t=1" true
    (List.mem "2,0,1" lines);
  Alcotest.(check bool) "t=6 row shows p=3, t=0" true
    (List.mem "6,3,0" lines);
  Alcotest.(check bool) "final row at 10" true (List.mem "10,3,0" lines)

(* -- waveform rendering -- *)

let render ?(markers = []) signals =
  Waveform.render
    ~style:{ Waveform.default_style with width = 20 }
    ~markers tr signals

let test_waveform_binary_row () =
  let text = render [ Signal.Place "q" ] in
  (* q is 0 then 1 from t=6 (60% across): low then high *)
  Testutil.check_contains "waveform" text "q";
  Testutil.check_contains "low run" text "____";
  Testutil.check_contains "high run" text "####"

let test_waveform_counting_row () =
  let text = render [ Signal.Place "p" ] in
  (* p is 1 / 0 / 3: digits because values exceed 1 *)
  Testutil.check_contains "digit 1" text "1";
  Testutil.check_contains "digit 0" text "0";
  Testutil.check_contains "digit 3" text "3"

let test_waveform_pulse_visible () =
  (* a one-instant pulse at t=2 must not vanish: column max is plotted *)
  let pulse_tr =
    Trace.make header
      [
        delta 2.0 Trace.Fire_start [ (1, 1) ] [];
        delta 2.0 Trace.Fire_end [ (1, -1) ] [];
      ]
      10.0
  in
  let text =
    Waveform.render
      ~style:{ Waveform.default_style with width = 20 }
      pulse_tr
      [ Signal.Place "q" ]
  in
  Testutil.check_contains "pulse shows" text "#"

let test_waveform_markers () =
  let markers =
    [ { Waveform.m_label = "O"; m_time = 2.0 }; { m_label = "X"; m_time = 8.0 } ]
  in
  let text = render ~markers [ Signal.Place "q" ] in
  Testutil.check_contains "marker O" text "O";
  Testutil.check_contains "marker X" text "X";
  Testutil.check_contains "interval readout" text "O <-> X : 6"

let test_marker_interval () =
  let a = { Waveform.m_label = "a"; m_time = 3.0 } in
  let b = { Waveform.m_label = "b"; m_time = 7.5 } in
  Alcotest.(check (float 0.0)) "interval" 4.5 (Waveform.interval a b);
  Alcotest.(check (float 0.0)) "symmetric" 4.5 (Waveform.interval b a)

let test_waveform_window () =
  let text =
    Waveform.render
      ~style:{ Waveform.default_style with width = 10 }
      ~from_time:6.0 ~to_time:10.0 tr [ Signal.Place "q" ]
  in
  (* q is high for the whole window *)
  Testutil.check_contains "all high" text "##########"

let test_waveform_empty_window_rejected () =
  Alcotest.check_raises "empty window"
    (Invalid_argument "Waveform.render: empty time window") (fun () ->
      ignore
        (Waveform.render ~from_time:5.0 ~to_time:5.0 tr [ Signal.Place "p" ]))

let test_waveform_scale_line () =
  let text = render [ Signal.Place "p" ] in
  Testutil.check_contains "time axis" text "time";
  Testutil.check_contains "origin tick" text "0"

let test_figure7_shape () =
  (* the Figure-7 display: bus, its three-way breakdown, the execution
     transitions, a summed user function, and the buffer level *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let trace, _ = Pnut_sim.Simulator.trace ~seed:11 ~until:200.0 net in
  let exec_sum =
    Signal.Fun
      ( "all_exec",
        List.fold_left
          (fun acc name -> Expr.(acc + var name))
          (Expr.int 0)
          (Pnut_pipeline.Model.exec_transition_names Pnut_pipeline.Config.default)
      )
  in
  let signals =
    [ Signal.Place "Bus_busy"; Signal.Place "pre_fetching";
      Signal.Place "fetching"; Signal.Place "storing"; exec_sum;
      Signal.Place "Empty_I_buffers" ]
  in
  let text = Waveform.render ~from_time:0.0 ~to_time:150.0 trace signals in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check bool) "at least 6 signal rows + axis" true
    (List.length lines >= 8);
  Testutil.check_contains "bus row" text "Bus_busy";
  Testutil.check_contains "function row" text "all_exec"

let () =
  Alcotest.run "signal-waveform"
    [
      ( "signals",
        [
          Alcotest.test_case "place" `Quick test_place_signal;
          Alcotest.test_case "transition" `Quick test_transition_signal;
          Alcotest.test_case "variable" `Quick test_var_signal;
          Alcotest.test_case "user function" `Quick test_fun_signal;
          Alcotest.test_case "resolution order" `Quick test_fun_resolution_order;
          Alcotest.test_case "unknown" `Quick test_unknown_signal;
          Alcotest.test_case "value_at boundaries" `Quick
            test_value_at_interpolation_boundaries;
          Alcotest.test_case "multi-signal pass" `Quick
            test_single_pass_multiple_signals;
          Alcotest.test_case "csv export" `Quick test_to_csv;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "binary row" `Quick test_waveform_binary_row;
          Alcotest.test_case "counting row" `Quick test_waveform_counting_row;
          Alcotest.test_case "pulse visible" `Quick test_waveform_pulse_visible;
          Alcotest.test_case "markers" `Quick test_waveform_markers;
          Alcotest.test_case "marker interval" `Quick test_marker_interval;
          Alcotest.test_case "window" `Quick test_waveform_window;
          Alcotest.test_case "empty window" `Quick test_waveform_empty_window_rejected;
          Alcotest.test_case "scale line" `Quick test_waveform_scale_line;
          Alcotest.test_case "figure 7 shape" `Quick test_figure7_shape;
        ] );
    ]
