(* Tests for the future-event list (binary heap with FIFO tie-breaking). *)

module Q = Pnut_sim.Event_queue

let drain q =
  let rec go acc =
    match Q.pop q with
    | Some (t, v) -> go ((t, v) :: acc)
    | None -> List.rev acc
  in
  go []

let test_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "is_empty" true (Q.is_empty q);
  Alcotest.(check int) "length" 0 (Q.length q);
  Alcotest.(check bool) "peek none" true (Q.peek_time q = None);
  Alcotest.(check bool) "pop none" true (Q.pop q = None)

let test_ordering () =
  let q = Q.create () in
  List.iter (fun (t, v) -> Q.push q t v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check int) "length" 3 (Q.length q);
  Alcotest.(check (option (float 0.0))) "peek min" (Some 1.0) (Q.peek_time q);
  Alcotest.(check (list (pair (float 0.0) string)))
    "sorted"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (drain q)

let test_fifo_ties () =
  let q = Q.create () in
  List.iteri (fun i v -> Q.push q 5.0 (i, v)) [ "x"; "y"; "z" ];
  Q.push q 1.0 (99, "first");
  let order = List.map snd (drain q) in
  Alcotest.(check (list (pair int string)))
    "insertion order among equals"
    [ (99, "first"); (0, "x"); (1, "y"); (2, "z") ]
    order

let test_interleaved_push_pop () =
  let q = Q.create () in
  Q.push q 2.0 "b";
  Q.push q 1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Q.pop q);
  Q.push q 0.5 "pre";
  Alcotest.(check (option (pair (float 0.0) string))) "pop pre" (Some (0.5, "pre")) (Q.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Q.pop q);
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_growth () =
  let q = Q.create () in
  for i = 999 downto 0 do
    Q.push q (float_of_int i) i
  done;
  Alcotest.(check int) "length 1000" 1000 (Q.length q);
  let popped = drain q in
  Alcotest.(check int) "all popped" 1000 (List.length popped);
  let sorted = List.for_all2 (fun (t, _) i -> Float.equal t (float_of_int i)) popped (List.init 1000 Fun.id) in
  Alcotest.(check bool) "ascending" true sorted

let test_clear () =
  let q = Q.create () in
  Q.push q 1.0 "x";
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q);
  Q.push q 2.0 "y";
  Alcotest.(check (option (pair (float 0.0) string))) "usable after clear"
    (Some (2.0, "y")) (Q.pop q)

(* property: popping a random push sequence yields times in ascending
   order, and equal times preserve insertion order *)
let prop_heap_order =
  QCheck2.Test.make ~name:"heap pops in (time, insertion) order" ~count:200
    QCheck2.Gen.(list (int_range 0 20))
    (fun times ->
      let q = Q.create () in
      List.iteri (fun i t -> Q.push q (float_of_int t) i) times;
      let popped = drain q in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (Float.equal t1 t2 && i1 < i2)) && ordered rest
        | [ _ ] | [] -> true
      in
      List.length popped = List.length times && ordered popped)

let () =
  Alcotest.run "event-queue"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_heap_order ]);
    ]
