(* End-to-end integration: textual model -> parse -> validate ->
   simulate -> trace codec -> filter -> stat / tracertool / queries /
   reachability, exercising the P-NUT tool pipeline as a whole. *)

module Net = Pnut_core.Net
module Parser = Pnut_lang.Parser
module Sim = Pnut_sim.Simulator
module Trace = Pnut_trace.Trace
module Codec = Pnut_trace.Codec
module Filter = Pnut_trace.Filter
module Stat = Pnut_stat.Stat
module Query = Pnut_tracer.Query
module Signal = Pnut_tracer.Signal
module Waveform = Pnut_tracer.Waveform

(* A complete textual model of a tiny 2-stage pipeline with a shared
   bus, written in the model language (not built via the API). *)
let model_text =
  {|
net mini
place Bus_free init 1
place Bus_busy
place Empty init 4 capacity 4
place Full
place fetching
place Work_ready init 1
place Executing

transition start_fetch
  in Bus_free, Empty * 2
  out Bus_busy, fetching

transition end_fetch
  in fetching, Bus_busy
  out Bus_free, Full * 2
  enabling 4

transition start_work
  in Full, Work_ready
  out Executing, Empty
  firing 1

transition end_work
  in Executing
  out Work_ready
  firing choice(1:0.6, 3:0.4)
|}

let simulate_text ?(seed = 21) ?(until = 1000.0) text =
  let net = Parser.parse_net text in
  Pnut_core.Validate.assert_valid net;
  let trace, outcome = Sim.trace ~seed ~until net in
  (net, trace, outcome)

let test_text_to_stats () =
  let _, trace, outcome = simulate_text model_text in
  Alcotest.(check bool) "reached horizon" true (outcome.Sim.stop = Sim.Horizon);
  let r = Stat.of_trace trace in
  let work_rate = Stat.throughput r "end_work" in
  (* stage service = 1 + E[exec] = 1 + 1.8 = 2.8 cycles; fetch supplies
     2 words per >=4 cycles, so the bottleneck is fetch at 0.5/cycle,
     work at <= 1/2.8 *)
  Alcotest.(check bool)
    (Printf.sprintf "work rate %.3f in (0.2, 0.45)" work_rate)
    true
    (work_rate > 0.2 && work_rate < 0.45);
  Testutil.check_close ~tolerance:1e-6 "bus one-hot" 1.0
    (Stat.utilization r "Bus_free" +. Stat.utilization r "Bus_busy")

let test_trace_file_round_trip_preserves_analysis () =
  let _, trace, _ = simulate_text model_text in
  let text = Codec.to_string trace in
  let reloaded = Codec.parse text in
  let r1 = Stat.of_trace trace in
  let r2 = Stat.of_trace reloaded in
  Alcotest.(check string) "same report" (Stat.render r1) (Stat.render r2)

let test_filter_then_stat () =
  let _, trace, _ = simulate_text model_text in
  let spec = Filter.make_spec ~places:[ "Bus_busy" ] ~transitions:[ "end_work" ] () in
  let filtered = Filter.apply spec trace in
  let r_full = Stat.of_trace trace in
  let r_small = Stat.of_trace filtered in
  (* the filtered trace gives the same answers for what it kept *)
  Testutil.check_close ~tolerance:1e-9 "utilization preserved"
    (Stat.utilization r_full "Bus_busy")
    (Stat.utilization r_small "Bus_busy");
  Testutil.check_close ~tolerance:1e-9 "throughput preserved"
    (Stat.throughput r_full "end_work")
    (Stat.throughput r_small "end_work")

let test_queries_on_text_model () =
  let _, trace, _ = simulate_text model_text in
  let run q = Query.eval trace (Parser.parse_query q) in
  Alcotest.(check bool) "bus one-hot" true
    (Query.holds (run "forall s in S [ Bus_free(s) + Bus_busy(s) = 1 ]"));
  Alcotest.(check bool) "buffer conservation" true
    (Query.holds
       (run "forall s in S [ Full(s) + Empty(s) + 2 * fetching(s) + \
             start_work(s) <= 4 ]"));
  Alcotest.(check bool) "work happens" true
    (Query.holds (run "exists s in S [ Executing(s) > 0 ]"));
  (* "bus inevitably freed" can spuriously fail on a linear trace when
     the horizon cuts a bus transaction in half, so evaluate it on the
     trace truncated at the last bus-free state (the paper itself notes
     the check concerns "this particular simulation run") *)
  let free_id =
    let h = Trace.header trace in
    let rec find i = if h.Trace.h_places.(i) = "Bus_free" then i else find (i + 1) in
    find 0
  in
  let deltas = Trace.deltas trace in
  let last_free = ref 0 in
  Array.iteri
    (fun i _ ->
      if (Trace.marking_after trace (i + 1)).(free_id) = 1 then last_free := i + 1)
    deltas;
  let truncated =
    Trace.make (Trace.header trace)
      (Array.to_list (Array.sub deltas 0 !last_free))
      (Trace.final_time trace)
  in
  Alcotest.(check bool) "bus inevitably freed" true
    (Query.holds
       (Query.eval truncated
          (Parser.parse_query
             "forall s in {s' in S | Bus_busy(s') > 0} [ inev(Bus_free > 0) ]")))

let test_waveform_on_text_model () =
  let _, trace, _ = simulate_text model_text in
  let signals =
    List.map Parser.parse_signal
      [ "Bus_busy"; "fetching"; "pressure = Full + 2 * fetching" ]
  in
  let text = Waveform.render ~from_time:0.0 ~to_time:100.0 trace signals in
  Testutil.check_contains "signal row" text "pressure";
  Alcotest.(check bool) "nonempty plot" true (String.length text > 100)

let test_reachability_on_text_model () =
  let net = Parser.parse_net model_text in
  let g = Pnut_reach.Graph.build ~max_states:10000 net in
  Alcotest.(check bool) "complete" true (Pnut_reach.Graph.complete g);
  Alcotest.(check (list int)) "no deadlock" [] (Pnut_reach.Graph.deadlocks g);
  let ok =
    Pnut_reach.Ctl.check g
      (Pnut_reach.Ctl.AG (Pnut_reach.Ctl.Atom (Parser.parse_expr "Bus_free + Bus_busy == 1")))
  in
  Alcotest.(check bool) "CTL bus invariant" true ok

let test_invariants_on_text_model () =
  let net = Parser.parse_net model_text in
  let inc = Pnut_core.Incidence.of_net net in
  let invs = Pnut_core.Incidence.p_invariants inc in
  Alcotest.(check bool) "invariants found" true (invs <> []);
  List.iter
    (fun y ->
      Alcotest.(check bool) "conserved" true (Pnut_core.Incidence.conserved inc y))
    invs

let test_streaming_pipeline_no_storage () =
  (* simulator plugged straight into filter into stat, no stored trace,
     exactly the paper's "output directly plugged into the input of
     analysis tools" *)
  let net = Parser.parse_net model_text in
  let stat_sink, get = Stat.sink () in
  let spec = Filter.make_spec ~places:[ "Bus_busy" ] ~transitions:[] () in
  let chained = Filter.sink spec stat_sink in
  let _ = Sim.simulate ~seed:21 ~until:1000.0 ~sink:chained net in
  let r = get () in
  (* compare with the stored-trace path *)
  let _, trace, _ = simulate_text model_text in
  Testutil.check_close ~tolerance:1e-9 "streaming equals stored"
    (Stat.utilization (Stat.of_trace trace) "Bus_busy")
    (Stat.utilization r "Bus_busy")

let test_full_pipeline_textual_round_trip_end_to_end () =
  (* the flagship model: print to text, reparse, simulate, analyze *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let text = Format.asprintf "%a" Net.pp net in
  let net2 = Parser.parse_net text in
  let trace, _ = Sim.trace ~seed:42 ~until:3000.0 net2 in
  let r = Stat.of_trace trace in
  let issue = Stat.throughput r "Issue" in
  Alcotest.(check bool)
    (Printf.sprintf "reparsed model works: issue %.4f" issue)
    true
    (issue > 0.08 && issue < 0.16);
  (* animation consumes the same trace *)
  let prefix =
    Trace.make (Trace.header trace)
      (Array.to_list (Array.sub (Trace.deltas trace) 0 10))
      50.0
  in
  let frames = Pnut_anim.Animator.frames net2 prefix in
  Alcotest.(check int) "animation frames" 20 (List.length frames)

let test_interpreted_model_full_toolchain () =
  (* the interpreted model exercises predicates/actions through every
     tool: simulate, serialize (env deltas included), query over a
     variable, waveform over a variable *)
  let net = Pnut_pipeline.Interpreted.full Pnut_pipeline.Config.default in
  let trace, _ = Sim.trace ~seed:7 ~until:2000.0 net in
  let reloaded = Codec.parse (Codec.to_string trace) in
  Alcotest.(check int) "codec keeps env deltas"
    (Trace.length trace) (Trace.length reloaded);
  let q =
    Parser.parse_query
      "forall s in S [ number_of_operands_needed >= 0 and \
       number_of_operands_needed <= 2 ]"
  in
  Alcotest.(check bool) "operand counter in range" true
    (Query.holds (Query.eval reloaded q));
  let signals = [ Signal.Var "number_of_operands_needed" ] in
  let text = Waveform.render ~from_time:0.0 ~to_time:100.0 reloaded signals in
  Testutil.check_contains "variable plotted" text "number_of_operands_needed"

let () =
  Alcotest.run "integration"
    [
      ( "toolchain",
        [
          Alcotest.test_case "text to stats" `Quick test_text_to_stats;
          Alcotest.test_case "trace file round trip" `Quick
            test_trace_file_round_trip_preserves_analysis;
          Alcotest.test_case "filter then stat" `Quick test_filter_then_stat;
          Alcotest.test_case "queries" `Quick test_queries_on_text_model;
          Alcotest.test_case "waveform" `Quick test_waveform_on_text_model;
          Alcotest.test_case "reachability" `Quick test_reachability_on_text_model;
          Alcotest.test_case "invariants" `Quick test_invariants_on_text_model;
          Alcotest.test_case "streaming pipeline" `Quick
            test_streaming_pipeline_no_storage;
        ] );
      ( "flagship",
        [
          Alcotest.test_case "full pipeline round trip" `Slow
            test_full_pipeline_textual_round_trip_end_to_end;
          Alcotest.test_case "interpreted toolchain" `Slow
            test_interpreted_model_full_toolchain;
        ] );
    ]
