(* Shared helpers for the test suites. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what needle)
    true (contains haystack needle)

(* Is |actual - expected| within tolerance? *)
let close ?(tolerance = 1e-9) expected actual =
  Float.abs (expected -. actual) <= tolerance

let check_close what ?tolerance expected actual =
  if not (close ?tolerance expected actual) then
    Alcotest.failf "%s: expected %g, got %g" what expected actual
