(** Control transfers: a pipeline whose branches flush the prefetch
    buffer.

    The paper's Section 3 sketches how "more complex models can be
    described nearly as tersely"; the most consequential omission from
    the Section-2 model of real 1980s microprocessors is control flow.
    This variant adds it: a configurable fraction of instructions are
    taken branches; when one executes, every prefetched word and every
    wrong-path instruction in stage 2 is squashed, and prefetching
    restarts at the target.

    Structure added on top of {!Model.full}'s three stages:
    - execution completion competes between [branch_taken] (frequency =
      branch ratio) and the normal paths;
    - [branch_taken] puts the machine into a [Flushing] mode: drain
      transitions discard [Full_I_buffers] words and any decoded /
      ready-to-issue wrong-path instruction, one token at a time and
      instantaneously;
    - [flush_done] (inhibited until everything is drained) restores
      [Execution_unit] and lets prefetching resume; prefetch is inhibited
      while flushing.

    This reproduces the textbook interaction: with frequent branches a
    {e deeper} instruction buffer wastes bus bandwidth on words that get
    thrown away — the opposite of the no-branch conclusion of ablation
    A3.  Ablation A8 in the bench quantifies it. *)

val full : ?branch_ratio:float -> Config.t -> Pnut_core.Net.t
(** [branch_ratio] (default 0.15) is the fraction of instructions that
    are taken branches; 0 yields a net behaviourally equivalent to
    {!Model.full} (the flush machinery is present but dead).  Raises
    [Invalid_argument] if the ratio is outside [0, 1). *)

val flush_transitions : string list
(** Names of the squash transitions, for filtering and statistics:
    [flush_buffer_word; flush_decoded; flush_ready; flush_done]. *)
