(** Table-driven (interpreted) pipeline models — Section 3 and Figure 4.

    "Rather than using a separate subnet for each addressing mode it is
    possible to construct a table-driven model of the instruction set.
    One transition in the net can randomly select the instruction type
    ... and the remaining parts of the net use the instruction type to
    remove additional words from the instruction buffer, and to calculate
    firing times, enabling times and the number of times to iterate
    through loops.  The Petri net itself would be used to model what
    Petri nets model best: the contention for the bus and the
    synchronization between different portions of the pipeline."

    The interpreted model replaces the per-type subnets of Figure 2 and
    the five execution transitions of Figure 3 with single transitions
    whose predicates, actions and dynamic durations consult tables:

    - [Decode] runs the paper's action
      [type = irand(1, max_type); number_of_operands_needed = operands[type]],
    - the operand-fetch loop is the Figure-4 skeleton: [fetch_operand]
      (predicate [number_of_operands_needed > 0]) contends for the bus,
      [end_fetch] decrements the counter, [operand_fetching_done]
      (predicate [= 0]) issues,
    - execution is one transition with a table-driven dynamic firing
      time, followed by a table-driven loop of execution-time memory
      accesses contending for the bus ([exec_mem_access] /
      [end_exec_mem], counter [exec_mem_ops_left]).

    With the default [instruction_set] the stationary behaviour matches
    the structural model of {!Model.full} (same mix, same delays), which
    the test suite exploits as a differential oracle. *)

type instruction_class = {
  ic_operands : int;       (** memory operands to fetch *)
  ic_extra_words : int;    (** instruction words beyond the first *)
  ic_exec_mem_ops : int;
      (** additional memory reads/writes issued {e during execution}
          (Section 3: "Execution delays can be calculated based on
          instruction type as can the number of required reads/writes
          from/to memory") *)
  ic_weight : float;       (** relative frequency *)
}

type instruction_set = instruction_class list

val default_instruction_set : Config.t -> instruction_set
(** Three classes reproducing the paper's 70-20-10 mix, single-word. *)

val wide_instruction_set : unit -> instruction_set
(** A 30-class instruction set (the paper's "as many as 30 addressing
    modes"), with 1-3 word encodings and 0-2 operands — the case where
    per-type subnets would blow up but the interpreted model stays the
    same size. *)

val full : ?instruction_set:instruction_set -> Config.t -> Pnut_core.Net.t
(** The complete interpreted 3-stage pipeline.  Variable-length
    instructions consume their extra buffer words one per cycle during
    decode, driven by the [words] table. *)

val operand_fetch_skeleton : Config.t -> Pnut_core.Net.t
(** Exactly the Figure-4 fragment: decode, the fetch-operand loop and
    the done transition, closed with an instruction source — useful for
    unit tests and the Figure-4 bench. *)
