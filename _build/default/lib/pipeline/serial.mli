(** The non-pipelined baseline processor.

    The paper's premise is that "the use of pipelining to speed up
    instruction fetching, decoding and execution has become more
    prevalent"; the implicit baseline is a serial machine that processes
    one instruction at a time with {e no} overlap: fetch the word over
    the bus, decode, calculate addresses and fetch operands, execute,
    store — then start the next instruction.

    The model reuses {!Config}: the same memory, decode,
    address-calculation and execution timings, the same instruction mix
    and store probability, so the pipelined/serial comparison isolates
    exactly the architectural change.  Ablation A9 in the bench
    quantifies the speedup (which {e grows} with memory latency — the
    pipeline's whole point is hiding it — until both machines saturate
    the bus). *)

val full : Config.t -> Pnut_core.Net.t
(** One-instruction-at-a-time machine.  Places of interest: [Bus_free] /
    [Bus_busy] (same one-hot discipline) and the CPU-state markers
    ([Idle], [Fetching_instruction], [Decoding], ...); the instruction
    rate is the throughput of [Decode] (exactly one per instruction). *)

val expected_cycles_per_instruction : Config.t -> float
(** Analytic mean cycle count of the serial machine (no contention — the
    single instruction owns the bus): fetch + decode + mix-weighted
    address/operand work + mean execution + store share.  The simulated
    rate must match its inverse exactly. *)
