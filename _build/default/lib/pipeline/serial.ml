module Net = Pnut_core.Net
module B = Net.Builder

(* One instruction at a time: a single token walks
   Idle -> fetch -> Decoding -> (type split) -> address calc ->
   operand fetches -> Executing -> (store?) -> Idle.
   The bus is kept one-hot so the utilization reading stays comparable
   with the pipelined model. *)
let full (c : Config.t) =
  Config.validate c;
  let m1, m2, m3 = c.Config.mix in
  let b = B.create "serial" in
  let bus_free = B.add_place b "Bus_free" ~initial:1 ~capacity:1 in
  let bus_busy = B.add_place b "Bus_busy" ~capacity:1 in
  let idle = B.add_place b "Idle" ~initial:1 ~capacity:1 in
  let fetching_instr = B.add_place b "Fetching_instruction" ~capacity:1 in
  let decoding = B.add_place b "Decoding" ~capacity:1 in
  let t2_addr = B.add_place b "T2_addr_calc" ~capacity:1 in
  let t3_addr = B.add_place b "T3_addr_calc" ~capacity:1 in
  let operand_wait = B.add_place b "Operands_to_fetch" ~capacity:2 in
  let fetching_op = B.add_place b "fetching" ~capacity:1 in
  let op_gate = B.add_place b "Operand_gate" ~capacity:1 in
  let ready_exec = B.add_place b "Ready_to_execute" ~capacity:1 in
  let exec_done = B.add_place b "Exec_done" ~capacity:1 in
  ignore
    (B.add_transition b "start_ifetch"
       ~inputs:[ (idle, 1); (bus_free, 1) ]
       ~outputs:[ (bus_busy, 1); (fetching_instr, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "end_ifetch"
       ~inputs:[ (fetching_instr, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1); (decoding, 1) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
      : Net.transition_id);
  (* decode takes one cycle and resolves the instruction type *)
  let typed = B.add_place b "Typed" ~capacity:1 in
  ignore
    (B.add_transition b "Decode"
       ~inputs:[ (decoding, 1) ]
       ~outputs:[ (typed, 1) ]
       ~firing:(Net.Const c.Config.decode_cycles)
      : Net.transition_id);
  ignore
    (B.add_transition b "Type_1"
       ~inputs:[ (typed, 1) ]
       ~outputs:[ (ready_exec, 1) ]
       ~frequency:m1
      : Net.transition_id);
  ignore
    (B.add_transition b "Type_2"
       ~inputs:[ (typed, 1) ]
       ~outputs:[ (t2_addr, 1) ]
       ~frequency:m2
      : Net.transition_id);
  ignore
    (B.add_transition b "Type_3"
       ~inputs:[ (typed, 1) ]
       ~outputs:[ (t3_addr, 1) ]
       ~frequency:m3
      : Net.transition_id);
  ignore
    (B.add_transition b "calc_eaddr_1"
       ~inputs:[ (t2_addr, 1) ]
       ~outputs:[ (operand_wait, 1); (op_gate, 1) ]
       ~firing:(Net.Const c.Config.eaddr_cycles)
      : Net.transition_id);
  ignore
    (B.add_transition b "calc_eaddr_2"
       ~inputs:[ (t3_addr, 1) ]
       ~outputs:[ (operand_wait, 2); (op_gate, 1) ]
       ~firing:(Net.Const (2.0 *. c.Config.eaddr_cycles))
      : Net.transition_id);
  ignore
    (B.add_transition b "start_fetch"
       ~inputs:[ (operand_wait, 1); (bus_free, 1) ]
       ~outputs:[ (bus_busy, 1); (fetching_op, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "end_fetch"
       ~inputs:[ (fetching_op, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1) ]
      ~enabling:(Net.Const c.Config.memory_cycles)
      : Net.transition_id);
  (* the gate closes when every operand fetch is done *)
  ignore
    (B.add_transition b "operands_ready"
       ~inputs:[ (op_gate, 1) ]
       ~inhibitors:[ (operand_wait, 1); (fetching_op, 1) ]
       ~outputs:[ (ready_exec, 1) ]
      : Net.transition_id);
  List.iteri
    (fun i (cycles, freq) ->
      ignore
        (B.add_transition b
           (Printf.sprintf "exec_type_%d" (i + 1))
           ~inputs:[ (ready_exec, 1) ]
           ~outputs:[ (exec_done, 1) ]
           ~firing:(Net.Const cycles) ~frequency:freq
          : Net.transition_id))
    c.Config.exec_profile;
  let storing = B.add_place b "storing" ~capacity:1 in
  let store_wait = B.add_place b "Store_wait" ~capacity:1 in
  if c.Config.store_prob > 0.0 then begin
    ignore
      (B.add_transition b "store_result"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (store_wait, 1) ]
         ~frequency:c.Config.store_prob
        : Net.transition_id);
    ignore
      (B.add_transition b "start_store"
         ~inputs:[ (store_wait, 1); (bus_free, 1) ]
         ~outputs:[ (bus_busy, 1); (storing, 1) ]
        : Net.transition_id);
    ignore
      (B.add_transition b "end_store"
         ~inputs:[ (storing, 1); (bus_busy, 1) ]
         ~outputs:[ (bus_free, 1); (idle, 1) ]
         ~enabling:(Net.Const c.Config.memory_cycles)
        : Net.transition_id)
  end;
  if c.Config.store_prob < 1.0 then
    ignore
      (B.add_transition b "instruction_done"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (idle, 1) ]
         ~frequency:(1.0 -. c.Config.store_prob)
        : Net.transition_id);
  B.build b

let expected_cycles_per_instruction (c : Config.t) =
  let m1, m2, m3 = c.Config.mix in
  let total = m1 +. m2 +. m3 in
  let p2 = m2 /. total and p3 = m3 /. total in
  let operand_work =
    (p2 *. (c.Config.eaddr_cycles +. c.Config.memory_cycles))
    +. (p3 *. ((2.0 *. c.Config.eaddr_cycles) +. (2.0 *. c.Config.memory_cycles)))
  in
  c.Config.memory_cycles (* instruction fetch *)
  +. c.Config.decode_cycles
  +. operand_work
  +. Config.expected_exec_cycles c
  +. (c.Config.store_prob *. c.Config.memory_cycles)
