(** Parameters of the paper's example pipelined microprocessor
    (Section 2).  [default] is exactly the configuration evaluated in the
    paper's Figure 5. *)

type t = {
  buffer_words : int;
      (** instruction-buffer size in 16-bit words (paper: 6) *)
  prefetch_words : int;
      (** words fetched per prefetch transaction (paper: 2) *)
  memory_cycles : float;
      (** processor cycles per memory access (paper: 5) *)
  decode_cycles : float;
      (** cycles to decode one instruction (paper: 1) *)
  eaddr_cycles : float;
      (** address-calculation cycles per memory operand (paper: 2) *)
  mix : float * float * float;
      (** relative frequencies of zero / one / two memory-operand
          instructions (paper: 70-20-10) *)
  store_prob : float;
      (** probability an instruction stores a result (paper: 0.2) *)
  exec_profile : (float * float) list;
      (** (execution cycles, relative frequency) pairs
          (paper: 1-2-5-10-50 at .5-.3-.1-.05-.05) *)
}

val default : t

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical parameters (non-positive
    buffer, out-of-range probability, empty execution profile, ...). *)

val expected_exec_cycles : t -> float
(** Mean execution time under the profile (paper default: 4.6). *)

val expected_operands : t -> float
(** Mean number of memory operands per instruction (paper default: 0.4). *)

val expected_bus_cycles_per_instruction : t -> float
(** Mean bus demand per instruction: prefetch share + operand fetches +
    result stores (paper default: 5.5).  Useful as an analytic
    cross-check of simulated bus utilization. *)
