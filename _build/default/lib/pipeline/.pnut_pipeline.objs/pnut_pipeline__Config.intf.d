lib/pipeline/config.mli:
