lib/pipeline/interpreted.ml: Array Config Float List Pnut_core
