lib/pipeline/model.ml: Config List Option Pnut_core Printf
