lib/pipeline/extensions.ml: Config Model Pnut_core Printf
