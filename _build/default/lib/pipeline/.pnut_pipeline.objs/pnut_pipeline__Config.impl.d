lib/pipeline/config.ml: List
