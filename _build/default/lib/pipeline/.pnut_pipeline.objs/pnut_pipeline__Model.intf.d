lib/pipeline/model.mli: Config Pnut_core
