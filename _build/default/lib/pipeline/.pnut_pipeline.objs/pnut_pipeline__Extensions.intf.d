lib/pipeline/extensions.mli: Config Pnut_core
