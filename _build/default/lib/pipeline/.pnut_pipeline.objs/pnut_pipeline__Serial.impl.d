lib/pipeline/serial.ml: Config List Pnut_core Printf
