lib/pipeline/interpreted.mli: Config Pnut_core
