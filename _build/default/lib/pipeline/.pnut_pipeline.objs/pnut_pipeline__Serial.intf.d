lib/pipeline/serial.mli: Config Pnut_core
