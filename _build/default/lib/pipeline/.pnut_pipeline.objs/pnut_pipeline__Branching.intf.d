lib/pipeline/branching.mli: Config Pnut_core
