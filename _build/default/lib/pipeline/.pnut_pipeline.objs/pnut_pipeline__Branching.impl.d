lib/pipeline/branching.ml: Config List Model Pnut_core Printf
