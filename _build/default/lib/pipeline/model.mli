(** The paper's pipelined-processor models (Figures 1-3).

    Place and transition names follow the paper's figures and the Figure-5
    statistics report: [Bus_free]/[Bus_busy], [Empty_I_buffers]/
    [Full_I_buffers], [pre_fetching], [fetching], [storing],
    [Decoder_ready], [Decoded_instruction], [ready_to_issue_instruction],
    [Issued_instruction], [Execution_unit], transitions [Start_prefetch],
    [End_prefetch], [Decode], [Type_1..3], [calc_eaddr_1..2], [Issue],
    [exec_type_1..n], [store_result]/[no_store], ...

    Structure (3-stage pipeline, Section 2):
    - {b Stage 1} (Figure 1): [Start_prefetch] grabs the bus when there is
      room for a full prefetch transaction and neither operand fetches nor
      result stores are pending (inhibitor arcs); [End_prefetch] models the
      memory access with an {e enabling} delay and refills the buffer.
    - {b Stage 2} (Figure 2): [Decode] (firing time = one cycle) consumes a
      buffer word while holding the [Decoder_ready] resource; the
      instruction mix is modeled by the competing frequencies of
      [Type_1..3]; effective-address calculation is a firing time of
      2 cycles per memory operand; operand fetches contend for the bus.
    - {b Stage 3} (Figure 3): [Issue] moves a ready instruction into the
      execution unit and releases the decoder; execution delays are the
      competing [exec_type_i] transitions; a result store (probability
      0.2) contends for the bus before the unit is released.

    The bus is one-hot by construction ([Bus_free] + [Bus_busy] = 1, a
    P-invariant), and every transition moving tokens between the two is
    instantaneous, as Section 4.2 requires for utilization readings. *)

val full : Config.t -> Pnut_core.Net.t
(** The complete 3-stage pipeline model of Section 2. *)

val prefetch_only : ?consumer_cycles:float -> Config.t -> Pnut_core.Net.t
(** The Figure-1 net alone, closed with a simple decoder that consumes
    instructions at a fixed rate ([consumer_cycles] per word, default the
    decode time) and immediately recycles [Decoder_ready]. *)

val exec_transition_names : Config.t -> string list
(** [exec_type_1 .. exec_type_n] for the configured profile, in order. *)

(** {2 Analytic cross-checks} *)

val bus_breakdown_places : string list
(** The places whose average markings decompose bus utilization:
    [pre_fetching; fetching; storing]. *)

(**/**)

(** Building blocks shared with derived models (e.g. the cache
    extensions); not part of the stable API. *)
module Internal : sig
  type shared = {
    bus_free : Pnut_core.Net.place_id;
    bus_busy : Pnut_core.Net.place_id;
    empty_buffers : Pnut_core.Net.place_id;
    full_buffers : Pnut_core.Net.place_id;
    pre_fetching : Pnut_core.Net.place_id;
    fetching : Pnut_core.Net.place_id;
    storing : Pnut_core.Net.place_id;
    operand_fetch_pending : Pnut_core.Net.place_id;
    result_store_pending : Pnut_core.Net.place_id;
    decoder_ready : Pnut_core.Net.place_id;
    decoded_instruction : Pnut_core.Net.place_id;
    ready_to_issue : Pnut_core.Net.place_id;
  }

  val add_shared : Pnut_core.Net.Builder.t -> Config.t -> shared
  val add_prefetch : Pnut_core.Net.Builder.t -> Config.t -> shared -> unit
  val add_decode : Pnut_core.Net.Builder.t -> Config.t -> shared -> unit

  val add_decoder :
    ?fetch_path:
      (Pnut_core.Net.Builder.t -> Config.t -> shared ->
       operand_done:Pnut_core.Net.place_id -> unit) ->
    Pnut_core.Net.Builder.t -> Config.t -> shared -> unit

  val add_execution : Pnut_core.Net.Builder.t -> Config.t -> shared -> unit
end
