module Net = Pnut_core.Net
module B = Net.Builder
module I = Model.Internal

(* Instruction-cache front end replacing the plain prefetch: a single
   prefetch unit probes the cache; hits deliver buffer words in
   [cache_cycles] without the bus, misses fall back to the Figure-1 bus
   transaction. *)
let add_cached_prefetch b (c : Config.t) (s : I.shared) ~hit_ratio ~cache_cycles
    ~extra_inhibitors =
  let w = c.Config.prefetch_words in
  let unit_free = B.add_place b "Prefetch_unit" ~initial:1 ~capacity:1 in
  let lookup = B.add_place b "I_lookup" ~capacity:1 in
  let wait_bus = B.add_place b "I_wait_bus" ~capacity:1 in
  ignore
    (B.add_transition b "probe_icache"
       ~inputs:[ (s.I.empty_buffers, w); (unit_free, 1) ]
       ~inhibitors:
         ([ (s.I.operand_fetch_pending, 1); (s.I.result_store_pending, 1) ]
         @ extra_inhibitors)
       ~outputs:[ (lookup, 1) ]
      : Net.transition_id);
  if hit_ratio > 0.0 then
    ignore
      (B.add_transition b "icache_hit"
         ~inputs:[ (lookup, 1) ]
         ~outputs:[ (s.I.full_buffers, w); (unit_free, 1) ]
         ~firing:(Net.Const cache_cycles) ~frequency:hit_ratio
        : Net.transition_id);
  if hit_ratio < 1.0 then begin
    ignore
      (B.add_transition b "icache_miss"
         ~inputs:[ (lookup, 1) ]
         ~outputs:[ (wait_bus, 1) ]
         ~frequency:(1.0 -. hit_ratio)
        : Net.transition_id);
    ignore
      (B.add_transition b "Start_prefetch"
         ~inputs:[ (wait_bus, 1); (s.I.bus_free, 1) ]
         ~outputs:[ (s.I.bus_busy, 1); (s.I.pre_fetching, 1) ]
        : Net.transition_id);
    ignore
      (B.add_transition b "End_prefetch"
         ~inputs:[ (s.I.pre_fetching, 1); (s.I.bus_busy, 1) ]
         ~outputs:[ (s.I.bus_free, 1); (s.I.full_buffers, w); (unit_free, 1) ]
         ~enabling:(Net.Const c.Config.memory_cycles)
        : Net.transition_id)
  end

let with_caches ?(icache_hit_ratio = 0.0) ?(dcache_hit_ratio = 0.0)
    ?(cache_cycles = 1.0) (c : Config.t) =
  Config.validate c;
  let check name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Extensions.with_caches: %s out of [0,1]" name)
  in
  check "icache_hit_ratio" icache_hit_ratio;
  check "dcache_hit_ratio" dcache_hit_ratio;
  if cache_cycles < 0.0 then
    invalid_arg "Extensions.with_caches: negative cache_cycles";
  let b = B.create "pipeline3c" in
  let s = I.add_shared b c in
  (* data-cache lookup places exist up front so the prefetch inhibitors
     can reference them *)
  let d_lookup = B.add_place b "D_lookup" ~capacity:2 in
  let d_wait = B.add_place b "D_wait_bus" ~capacity:2 in
  add_cached_prefetch b c s ~hit_ratio:icache_hit_ratio ~cache_cycles
    ~extra_inhibitors:[ (d_lookup, 1); (d_wait, 1) ];
  I.add_decode b c s;
  let dcache_fetch_path b (c : Config.t) (s : I.shared) ~operand_done =
    ignore
      (B.add_transition b "probe_dcache"
         ~inputs:[ (s.I.operand_fetch_pending, 1) ]
         ~outputs:[ (d_lookup, 1) ]
        : Net.transition_id);
    if dcache_hit_ratio > 0.0 then
      ignore
        (B.add_transition b "dcache_hit"
           ~inputs:[ (d_lookup, 1) ]
           ~outputs:[ (operand_done, 1) ]
           ~firing:(Net.Const cache_cycles) ~frequency:dcache_hit_ratio
          : Net.transition_id);
    if dcache_hit_ratio < 1.0 then begin
      ignore
        (B.add_transition b "dcache_miss"
           ~inputs:[ (d_lookup, 1) ]
           ~outputs:[ (d_wait, 1) ]
           ~frequency:(1.0 -. dcache_hit_ratio)
          : Net.transition_id);
      ignore
        (B.add_transition b "start_fetch"
           ~inputs:[ (d_wait, 1); (s.I.bus_free, 1) ]
           ~outputs:[ (s.I.bus_busy, 1); (s.I.fetching, 1) ]
          : Net.transition_id);
      ignore
        (B.add_transition b "end_fetch"
           ~inputs:[ (s.I.fetching, 1); (s.I.bus_busy, 1) ]
           ~outputs:[ (s.I.bus_free, 1); (operand_done, 1) ]
           ~enabling:(Net.Const c.Config.memory_cycles)
          : Net.transition_id)
    end
  in
  I.add_decoder ~fetch_path:dcache_fetch_path b c s;
  I.add_execution b c s;
  B.build b
