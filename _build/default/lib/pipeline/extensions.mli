(** Section-3 extensions: instruction and data caches.

    "Instruction and data caches are quite common and can be easily
    modeled probabilistically, assuming some given hit ratio."

    {!with_caches} derives the structural 3-stage pipeline of {!Model}
    with probabilistic caches in front of the bus:
    - instruction prefetch first probes the i-cache ([icache_hit] /
      [icache_miss] competing with frequencies [h : 1-h]); a hit delivers
      the words in one cycle without touching the bus, a miss performs
      the usual bus transaction;
    - operand fetches probe the d-cache the same way; result stores are
      write-through and always use the bus.

    With hit ratios of 0 the model degenerates to the cacheless pipeline
    (modulo the extra 1-cycle cache probe on the miss path being absent —
    misses go straight to the bus wait). *)

val with_caches :
  ?icache_hit_ratio:float ->
  ?dcache_hit_ratio:float ->
  ?cache_cycles:float ->
  Config.t -> Pnut_core.Net.t
(** Hit ratios in [0, 1] (default 0 = no cache benefit); [cache_cycles]
    is the hit service time (default 1 cycle).  Raises
    [Invalid_argument] on out-of-range ratios. *)
