module Net = Pnut_core.Net
module B = Pnut_core.Net.Builder

(* Shared infrastructure places used by all three pipeline stages. *)
type shared = {
  bus_free : Net.place_id;
  bus_busy : Net.place_id;
  empty_buffers : Net.place_id;
  full_buffers : Net.place_id;
  pre_fetching : Net.place_id;
  fetching : Net.place_id;
  storing : Net.place_id;
  operand_fetch_pending : Net.place_id;
  result_store_pending : Net.place_id;
  decoder_ready : Net.place_id;
  decoded_instruction : Net.place_id;
  ready_to_issue : Net.place_id;
}

let add_shared b (c : Config.t) =
  {
    bus_free = B.add_place b "Bus_free" ~initial:1 ~capacity:1;
    bus_busy = B.add_place b "Bus_busy" ~capacity:1;
    empty_buffers =
      B.add_place b "Empty_I_buffers" ~initial:c.Config.buffer_words
        ~capacity:c.Config.buffer_words;
    full_buffers = B.add_place b "Full_I_buffers" ~capacity:c.Config.buffer_words;
    pre_fetching = B.add_place b "pre_fetching" ~capacity:1;
    fetching = B.add_place b "fetching" ~capacity:1;
    storing = B.add_place b "storing" ~capacity:1;
    operand_fetch_pending = B.add_place b "Operand_fetch_pending";
    result_store_pending = B.add_place b "Result_store_pending";
    decoder_ready = B.add_place b "Decoder_ready" ~initial:1 ~capacity:1;
    decoded_instruction = B.add_place b "Decoded_instruction" ~capacity:1;
    ready_to_issue = B.add_place b "ready_to_issue_instruction" ~capacity:1;
  }

(* Figure 1: instruction pre-fetching.  Pre-fetch grabs the bus only when
   a full transaction fits in the buffer and no operand fetch or result
   store is pending (inhibitor arcs, the dark bubbles of the figure). *)
let add_prefetch b (c : Config.t) s =
  let w = c.Config.prefetch_words in
  let (_ : Net.transition_id) =
    B.add_transition b "Start_prefetch"
      ~inputs:[ (s.bus_free, 1); (s.empty_buffers, w) ]
      ~inhibitors:[ (s.operand_fetch_pending, 1); (s.result_store_pending, 1) ]
      ~outputs:[ (s.bus_busy, 1); (s.pre_fetching, 1) ]
  in
  let (_ : Net.transition_id) =
    B.add_transition b "End_prefetch"
      ~inputs:[ (s.pre_fetching, 1); (s.bus_busy, 1) ]
      ~outputs:[ (s.bus_free, 1); (s.full_buffers, w) ]
      ~enabling:(Net.Const c.Config.memory_cycles)
  in
  ()

(* The decode transition: one buffer word, one processor cycle, holds the
   stage-2 resource until the instruction is issued. *)
let add_decode b (c : Config.t) s =
  let (_ : Net.transition_id) =
    B.add_transition b "Decode"
      ~inputs:[ (s.full_buffers, 1); (s.decoder_ready, 1) ]
      ~outputs:[ (s.decoded_instruction, 1); (s.empty_buffers, 1) ]
      ~firing:(Net.Const c.Config.decode_cycles)
  in
  ()

(* Figure 2: instruction typing, effective-address calculation and operand
   fetching.  The instruction mix is carried by the firing frequencies of
   the competing Type_n transitions.  Operand fetches load the bus through
   the shared fetching chain; at most one instruction is in stage 2 at a
   time (Decoder_ready), so the completion joins can simply count
   Operand_done tokens. *)
(* The default stage-2 operand fetch path: contend for the bus, hold it
   for one memory access per operand.  Cache extensions substitute their
   own path (probe, then bus only on a miss). *)
let default_fetch_path b (c : Config.t) s ~operand_done =
  ignore
    (B.add_transition b "start_fetch"
       ~inputs:[ (s.operand_fetch_pending, 1); (s.bus_free, 1) ]
       ~outputs:[ (s.bus_busy, 1); (s.fetching, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "end_fetch"
       ~inputs:[ (s.fetching, 1); (s.bus_busy, 1) ]
       ~outputs:[ (s.bus_free, 1); (operand_done, 1) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
      : Net.transition_id)

let add_decoder ?(fetch_path = default_fetch_path) b (c : Config.t) s =
  let m1, m2, m3 = c.Config.mix in
  let t2_wait = B.add_place b "T2_operands_outstanding" in
  let t3_wait = B.add_place b "T3_operands_outstanding" in
  let t2_addr = B.add_place b "T2_addr_calc" in
  let t3_addr = B.add_place b "T3_addr_calc" in
  let operand_done = B.add_place b "Operand_done" in
  ignore
    (B.add_transition b "Type_1"
       ~inputs:[ (s.decoded_instruction, 1) ]
       ~outputs:[ (s.ready_to_issue, 1) ]
       ~frequency:m1
      : Net.transition_id);
  ignore
    (B.add_transition b "Type_2"
       ~inputs:[ (s.decoded_instruction, 1) ]
       ~outputs:[ (t2_addr, 1) ]
       ~frequency:m2
      : Net.transition_id);
  ignore
    (B.add_transition b "Type_3"
       ~inputs:[ (s.decoded_instruction, 1) ]
       ~outputs:[ (t3_addr, 1) ]
       ~frequency:m3
      : Net.transition_id);
  ignore
    (B.add_transition b "calc_eaddr_1"
       ~inputs:[ (t2_addr, 1) ]
       ~outputs:[ (s.operand_fetch_pending, 1); (t2_wait, 1) ]
       ~firing:(Net.Const c.Config.eaddr_cycles)
      : Net.transition_id);
  ignore
    (B.add_transition b "calc_eaddr_2"
       ~inputs:[ (t3_addr, 1) ]
       ~outputs:[ (s.operand_fetch_pending, 2); (t3_wait, 1) ]
       ~firing:(Net.Const (2.0 *. c.Config.eaddr_cycles))
      : Net.transition_id);
  fetch_path b c s ~operand_done;
  ignore
    (B.add_transition b "operands_ready_1"
       ~inputs:[ (operand_done, 1); (t2_wait, 1) ]
       ~outputs:[ (s.ready_to_issue, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "operands_ready_2"
       ~inputs:[ (operand_done, 2); (t3_wait, 1) ]
       ~outputs:[ (s.ready_to_issue, 1) ]
      : Net.transition_id)

let exec_transition_names (c : Config.t) =
  List.mapi (fun i _ -> Printf.sprintf "exec_type_%d" (i + 1)) c.Config.exec_profile

(* Figure 3: issue, execution and result storing.  Execution delays are
   the five competing transitions with appropriate firing frequencies and
   firing times; the bus contention caused by result stores is explicit. *)
let add_execution b (c : Config.t) s =
  let execution_unit = B.add_place b "Execution_unit" ~initial:1 ~capacity:1 in
  let issued = B.add_place b "Issued_instruction" ~capacity:1 in
  let exec_done = B.add_place b "Exec_done" ~capacity:1 in
  ignore
    (B.add_transition b "Issue"
       ~inputs:[ (s.ready_to_issue, 1); (execution_unit, 1) ]
       ~outputs:[ (issued, 1); (s.decoder_ready, 1) ]
      : Net.transition_id);
  List.iteri
    (fun i (cycles, freq) ->
      ignore
        (B.add_transition b
           (Printf.sprintf "exec_type_%d" (i + 1))
           ~inputs:[ (issued, 1) ]
           ~outputs:[ (exec_done, 1) ]
           ~firing:(Net.Const cycles) ~frequency:freq
          : Net.transition_id))
    c.Config.exec_profile;
  let p_store = c.Config.store_prob in
  if p_store > 0.0 then begin
    ignore
      (B.add_transition b "store_result"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (s.result_store_pending, 1) ]
         ~frequency:p_store
        : Net.transition_id);
    ignore
      (B.add_transition b "start_store"
         ~inputs:[ (s.result_store_pending, 1); (s.bus_free, 1) ]
         ~outputs:[ (s.bus_busy, 1); (s.storing, 1) ]
        : Net.transition_id);
    ignore
      (B.add_transition b "end_store"
         ~inputs:[ (s.storing, 1); (s.bus_busy, 1) ]
         ~outputs:[ (s.bus_free, 1); (execution_unit, 1) ]
         ~enabling:(Net.Const c.Config.memory_cycles)
        : Net.transition_id)
  end;
  if p_store < 1.0 then
    ignore
      (B.add_transition b "no_store"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (execution_unit, 1) ]
         ~frequency:(1.0 -. p_store)
        : Net.transition_id)

let full c =
  Config.validate c;
  let b = B.create "pipeline3" in
  let s = add_shared b c in
  add_prefetch b c s;
  add_decode b c s;
  add_decoder b c s;
  add_execution b c s;
  B.build b

let prefetch_only ?consumer_cycles c =
  Config.validate c;
  let service =
    Option.value consumer_cycles ~default:c.Config.decode_cycles
  in
  let b = B.create "prefetch" in
  let s = add_shared b c in
  add_prefetch b c s;
  add_decode b c s;
  (* Close the net: consume decoded instructions immediately and recycle
     the decoder, so Figure 1 can run standalone. *)
  ignore
    (B.add_transition b "consume"
       ~inputs:[ (s.decoded_instruction, 1) ]
       ~outputs:[ (s.decoder_ready, 1) ]
       ~firing:(Net.Const service)
      : Net.transition_id);
  B.build b

let bus_breakdown_places = [ "pre_fetching"; "fetching"; "storing" ]

module Internal = struct
  type nonrec shared = shared = {
    bus_free : Net.place_id;
    bus_busy : Net.place_id;
    empty_buffers : Net.place_id;
    full_buffers : Net.place_id;
    pre_fetching : Net.place_id;
    fetching : Net.place_id;
    storing : Net.place_id;
    operand_fetch_pending : Net.place_id;
    result_store_pending : Net.place_id;
    decoder_ready : Net.place_id;
    decoded_instruction : Net.place_id;
    ready_to_issue : Net.place_id;
  }

  let add_shared = add_shared
  let add_prefetch = add_prefetch
  let add_decode = add_decode
  let add_decoder = add_decoder
  let add_execution = add_execution
end
