type t = {
  buffer_words : int;
  prefetch_words : int;
  memory_cycles : float;
  decode_cycles : float;
  eaddr_cycles : float;
  mix : float * float * float;
  store_prob : float;
  exec_profile : (float * float) list;
}

let default =
  {
    buffer_words = 6;
    prefetch_words = 2;
    memory_cycles = 5.0;
    decode_cycles = 1.0;
    eaddr_cycles = 2.0;
    mix = (70.0, 20.0, 10.0);
    store_prob = 0.2;
    exec_profile = [ (1.0, 0.5); (2.0, 0.3); (5.0, 0.1); (10.0, 0.05); (50.0, 0.05) ];
  }

let validate c =
  let fail msg = invalid_arg ("Pipeline.Config: " ^ msg) in
  if c.buffer_words <= 0 then fail "buffer_words must be positive";
  if c.prefetch_words <= 0 then fail "prefetch_words must be positive";
  if c.prefetch_words > c.buffer_words then
    fail "prefetch_words cannot exceed buffer_words";
  if c.memory_cycles < 0.0 then fail "memory_cycles must be non-negative";
  if c.decode_cycles < 0.0 then fail "decode_cycles must be non-negative";
  if c.eaddr_cycles < 0.0 then fail "eaddr_cycles must be non-negative";
  let m1, m2, m3 = c.mix in
  if m1 < 0.0 || m2 < 0.0 || m3 < 0.0 then fail "mix weights must be non-negative";
  if m1 +. m2 +. m3 <= 0.0 then fail "mix weights must not all be zero";
  if c.store_prob < 0.0 || c.store_prob > 1.0 then
    fail "store_prob must be a probability";
  if c.exec_profile = [] then fail "exec_profile must not be empty";
  List.iter
    (fun (cyc, w) ->
      if cyc < 0.0 then fail "execution cycles must be non-negative";
      if w <= 0.0 then fail "execution frequencies must be positive")
    c.exec_profile

let mix_probabilities c =
  let m1, m2, m3 = c.mix in
  let total = m1 +. m2 +. m3 in
  (m1 /. total, m2 /. total, m3 /. total)

let expected_exec_cycles c =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 c.exec_profile in
  List.fold_left (fun acc (cyc, w) -> acc +. (cyc *. w /. total)) 0.0 c.exec_profile

let expected_operands c =
  let _, p2, p3 = mix_probabilities c in
  p2 +. (2.0 *. p3)

let expected_bus_cycles_per_instruction c =
  let prefetch = c.memory_cycles /. float_of_int c.prefetch_words in
  let operand_fetch = expected_operands c *. c.memory_cycles in
  let store = c.store_prob *. c.memory_cycles in
  prefetch +. operand_fetch +. store
