module Net = Pnut_core.Net
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder

type instruction_class = {
  ic_operands : int;
  ic_extra_words : int;
  ic_exec_mem_ops : int;
  ic_weight : float;
}

type instruction_set = instruction_class list

let default_instruction_set (c : Config.t) =
  let m1, m2, m3 = c.Config.mix in
  [
    { ic_operands = 0; ic_extra_words = 0; ic_exec_mem_ops = 0; ic_weight = m1 };
    { ic_operands = 1; ic_extra_words = 0; ic_exec_mem_ops = 0; ic_weight = m2 };
    { ic_operands = 2; ic_extra_words = 0; ic_exec_mem_ops = 0; ic_weight = m3 };
  ]

let wide_instruction_set () =
  (* 30 addressing modes: operand count and encoding length grow with the
     mode index, frequency decays so simple modes dominate. *)
  List.init 30 (fun i ->
      {
        ic_operands = i mod 3;
        ic_extra_words = i / 10;  (* 1-3 words total *)
        ic_exec_mem_ops = (if i mod 7 = 0 then 1 else 0) + (i / 20);
        ic_weight = 30.0 /. float_of_int (i + 1);
      })

(* Quantize relative weights into a selection table of [resolution]
   entries; irand over the table approximates the distribution to
   1/resolution. *)
let selection_table ?(resolution = 1000) weights =
  let total = List.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Interpreted: weights must be positive";
  let n = List.length weights in
  let table = Array.make resolution (Value.Int (n - 1)) in
  let filled = ref 0 in
  List.iteri
    (fun i w ->
      let count =
        if i = n - 1 then resolution - !filled
        else
          int_of_float
            (Float.round (float_of_int resolution *. w /. total))
      in
      for k = !filled to min (resolution - 1) (!filled + count - 1) do
        table.(k) <- Value.Int i
      done;
      filled := min resolution (!filled + count))
    weights;
  table

(* Execution-delay table from the (cycles, weight) profile. *)
let exec_table ?(resolution = 1000) profile =
  let weights = List.map snd profile in
  let classes = selection_table ~resolution weights in
  let cycles = Array.of_list (List.map fst profile) in
  Array.map
    (fun v ->
      match v with
      | Value.Int i -> Value.Float cycles.(i)
      | Value.Float _ | Value.Bool _ -> assert false)
    classes

let resolution = 1000

(* Shared skeleton pieces.  [bus] gives the Bus_free/Bus_busy pair and
   the operand-fetch loop contends for it exactly as in Figure 4. *)
let add_fetch_loop b (c : Config.t) ~bus_free ~bus_busy ~op_loop ~ready =
  let fetching = B.add_place b "fetching" ~capacity:1 in
  let eaddr = B.add_place b "Eaddr_calc" ~capacity:1 in
  ignore
    (B.add_transition b "calc_eaddr"
       ~inputs:[ (eaddr, 1) ]
       ~outputs:[ (op_loop, 1) ]
       ~firing:
         (Net.Dynamic Expr.(float c.Config.eaddr_cycles * var "number_of_operands_needed"))
      : Net.transition_id);
  ignore
    (B.add_transition b "fetch_operand"
       ~inputs:[ (op_loop, 1); (bus_free, 1) ]
       ~outputs:[ (bus_busy, 1); (fetching, 1) ]
       ~predicate:Expr.(var "number_of_operands_needed" > int 0)
      : Net.transition_id);
  ignore
    (B.add_transition b "end_fetch"
       ~inputs:[ (fetching, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1); (op_loop, 1) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
       ~action:
         [ Expr.Assign
             ("number_of_operands_needed",
              Expr.(var "number_of_operands_needed" - int 1)) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "operand_fetching_done"
       ~inputs:[ (op_loop, 1) ]
       ~outputs:[ (ready, 1) ]
       ~predicate:Expr.(var "number_of_operands_needed" = int 0)
      : Net.transition_id);
  eaddr

(* Class selection at decode; the operand counter is NOT set here — in
   the full model it is latched by words_done, so that prefetching stays
   possible while a long instruction's extra words are still being
   consumed (setting it at decode would inhibit the very prefetches
   needed to supply those words: deadlock). *)
let decode_action =
  [
    Expr.Assign ("instr_class", Expr.index "pick" (Expr.irand (Expr.int 0) (Expr.int (resolution - 1))));
    Expr.Assign ("extra_words", Expr.index "words" (Expr.var "instr_class"));
  ]

let latch_operands_action =
  [ Expr.Assign
      ("number_of_operands_needed", Expr.index "operands" (Expr.var "instr_class")) ]

let common_tables isa =
  [
    ("pick", selection_table ~resolution (List.map (fun ic -> ic.ic_weight) isa));
    ("operands", Array.of_list (List.map (fun ic -> Value.Int ic.ic_operands) isa));
    ("words", Array.of_list (List.map (fun ic -> Value.Int ic.ic_extra_words) isa));
    ("mem_ops", Array.of_list (List.map (fun ic -> Value.Int ic.ic_exec_mem_ops) isa));
  ]

let common_variables =
  [
    ("instr_class", Value.Int 0);
    ("number_of_operands_needed", Value.Int 0);
    ("extra_words", Value.Int 0);
    ("exec_delay", Value.Float 0.0);
    ("exec_mem_ops_left", Value.Int 0);
    ("store_flag", Value.Bool false);
  ]

let full ?instruction_set (c : Config.t) =
  Config.validate c;
  let isa =
    match instruction_set with
    | Some set -> set
    | None -> default_instruction_set c
  in
  if isa = [] then invalid_arg "Interpreted.full: empty instruction set";
  let store_threshold =
    int_of_float (Float.round (c.Config.store_prob *. float_of_int resolution))
  in
  let tables =
    common_tables isa
    @ [ ("exec_cycles", exec_table ~resolution c.Config.exec_profile) ]
  in
  let b = B.create "pipeline3i" ~variables:common_variables ~tables in
  let bus_free = B.add_place b "Bus_free" ~initial:1 ~capacity:1 in
  let bus_busy = B.add_place b "Bus_busy" ~capacity:1 in
  let empty = B.add_place b "Empty_I_buffers" ~initial:c.Config.buffer_words in
  let full_b = B.add_place b "Full_I_buffers" in
  let pre_fetching = B.add_place b "pre_fetching" ~capacity:1 in
  let storing = B.add_place b "storing" ~capacity:1 in
  let result_store_pending = B.add_place b "Result_store_pending" in
  let decoder_ready = B.add_place b "Decoder_ready" ~initial:1 ~capacity:1 in
  let word_loop = B.add_place b "Word_consume" ~capacity:1 in
  let op_loop = B.add_place b "Op_loop" ~capacity:1 in
  let ready = B.add_place b "ready_to_issue_instruction" ~capacity:1 in
  let issued = B.add_place b "Issued_instruction" ~capacity:1 in
  let exec_done = B.add_place b "Exec_done" ~capacity:1 in
  let execution_unit = B.add_place b "Execution_unit" ~initial:1 ~capacity:1 in
  (* stage 1: prefetch; operand-waiting inhibition is the predicate on
     the operand counter (a predicate replacing Figure 1's inhibitor) *)
  ignore
    (B.add_transition b "Start_prefetch"
       ~inputs:[ (bus_free, 1); (empty, c.Config.prefetch_words) ]
       ~inhibitors:[ (result_store_pending, 1) ]
       ~outputs:[ (bus_busy, 1); (pre_fetching, 1) ]
       ~predicate:
         Expr.(
           var "number_of_operands_needed" = int 0
           && var "exec_mem_ops_left" = int 0)
      : Net.transition_id);
  ignore
    (B.add_transition b "End_prefetch"
       ~inputs:[ (pre_fetching, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1); (full_b, c.Config.prefetch_words) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
      : Net.transition_id);
  (* stage 2: decode (selecting the class), consume extra words, then the
     Figure-4 operand loop *)
  ignore
    (B.add_transition b "Decode"
       ~inputs:[ (full_b, 1); (decoder_ready, 1) ]
       ~outputs:[ (word_loop, 1); (empty, 1) ]
       ~firing:(Net.Const c.Config.decode_cycles)
       ~action:decode_action
      : Net.transition_id);
  ignore
    (B.add_transition b "consume_word"
       ~inputs:[ (word_loop, 1); (full_b, 1) ]
       ~outputs:[ (word_loop, 1); (empty, 1) ]
       ~firing:(Net.Const 1.0)
       ~predicate:Expr.(var "extra_words" > int 0)
       ~action:[ Expr.Assign ("extra_words", Expr.(var "extra_words" - int 1)) ]
      : Net.transition_id);
  let eaddr =
    add_fetch_loop b c ~bus_free ~bus_busy ~op_loop ~ready
  in
  ignore
    (B.add_transition b "words_done"
       ~inputs:[ (word_loop, 1) ]
       ~outputs:[ (eaddr, 1) ]
       ~predicate:Expr.(var "extra_words" = int 0)
       ~action:latch_operands_action
      : Net.transition_id);
  (* stage 3: issue latches the execution delay and the store decision;
     one execute transition replaces Figure 3's five *)
  ignore
    (B.add_transition b "Issue"
       ~inputs:[ (ready, 1); (execution_unit, 1) ]
       ~outputs:[ (issued, 1); (decoder_ready, 1) ]
       ~action:
         [
           Expr.Assign
             ("exec_delay",
              Expr.index "exec_cycles"
                (Expr.irand (Expr.int 0) (Expr.int (resolution - 1))));
           Expr.Assign
             ("store_flag",
              Expr.(
                irand (int 1) (int resolution) <= int store_threshold));
         ]
      : Net.transition_id);
  (* execution-time memory traffic (Section 3's last extension): the
     compute phase latches how many reads/writes this class performs;
     each one then contends for the bus like any other transaction *)
  let exec_mem_loop = B.add_place b "Exec_mem_loop" ~capacity:1 in
  let exec_accessing = B.add_place b "exec_accessing" ~capacity:1 in
  ignore
    (B.add_transition b "execute"
       ~inputs:[ (issued, 1) ]
       ~outputs:[ (exec_mem_loop, 1) ]
       ~firing:(Net.Dynamic (Expr.var "exec_delay"))
       ~action:
         [ Expr.Assign
             ("exec_mem_ops_left", Expr.index "mem_ops" (Expr.var "instr_class")) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "exec_mem_access"
       ~inputs:[ (exec_mem_loop, 1); (bus_free, 1) ]
       ~outputs:[ (bus_busy, 1); (exec_accessing, 1) ]
       ~predicate:Expr.(var "exec_mem_ops_left" > int 0)
      : Net.transition_id);
  ignore
    (B.add_transition b "end_exec_mem"
       ~inputs:[ (exec_accessing, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1); (exec_mem_loop, 1) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
       ~action:
         [ Expr.Assign
             ("exec_mem_ops_left", Expr.(var "exec_mem_ops_left" - int 1)) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "exec_complete"
       ~inputs:[ (exec_mem_loop, 1) ]
       ~outputs:[ (exec_done, 1) ]
       ~predicate:Expr.(var "exec_mem_ops_left" = int 0)
      : Net.transition_id);
  ignore
    (B.add_transition b "store_result"
       ~inputs:[ (exec_done, 1) ]
       ~outputs:[ (result_store_pending, 1) ]
       ~predicate:(Expr.var "store_flag")
      : Net.transition_id);
  ignore
    (B.add_transition b "no_store"
       ~inputs:[ (exec_done, 1) ]
       ~outputs:[ (execution_unit, 1) ]
       ~predicate:(Expr.not_ (Expr.var "store_flag"))
      : Net.transition_id);
  ignore
    (B.add_transition b "start_store"
       ~inputs:[ (result_store_pending, 1); (bus_free, 1) ]
       ~outputs:[ (bus_busy, 1); (storing, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "end_store"
       ~inputs:[ (storing, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1); (execution_unit, 1) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
      : Net.transition_id);
  B.build b

let operand_fetch_skeleton (c : Config.t) =
  Config.validate c;
  let isa = default_instruction_set c in
  let b =
    B.create "operand_fetch" ~variables:common_variables ~tables:(common_tables isa)
  in
  let bus_free = B.add_place b "Bus_free" ~initial:1 ~capacity:1 in
  let bus_busy = B.add_place b "Bus_busy" ~capacity:1 in
  let decoder_ready = B.add_place b "Decoder_ready" ~initial:1 ~capacity:1 in
  let op_loop = B.add_place b "Op_loop" ~capacity:1 in
  let ready = B.add_place b "ready_to_issue" ~capacity:1 in
  ignore
    (B.add_transition b "Decode"
       ~inputs:[ (decoder_ready, 1) ]
       ~outputs:[ (op_loop, 1) ]
       ~firing:(Net.Const c.Config.decode_cycles)
       ~action:(decode_action @ latch_operands_action)
      : Net.transition_id);
  let fetching = B.add_place b "fetching" ~capacity:1 in
  ignore
    (B.add_transition b "fetch_operand"
       ~inputs:[ (op_loop, 1); (bus_free, 1) ]
       ~outputs:[ (bus_busy, 1); (fetching, 1) ]
       ~predicate:Expr.(var "number_of_operands_needed" > int 0)
      : Net.transition_id);
  ignore
    (B.add_transition b "end_fetch"
       ~inputs:[ (fetching, 1); (bus_busy, 1) ]
       ~outputs:[ (bus_free, 1); (op_loop, 1) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
       ~action:
         [ Expr.Assign
             ("number_of_operands_needed",
              Expr.(var "number_of_operands_needed" - int 1)) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "operand_fetching_done"
       ~inputs:[ (op_loop, 1) ]
       ~outputs:[ (ready, 1) ]
       ~predicate:Expr.(var "number_of_operands_needed" = int 0)
      : Net.transition_id);
  ignore
    (B.add_transition b "Issue"
       ~inputs:[ (ready, 1) ]
       ~outputs:[ (decoder_ready, 1) ]
      : Net.transition_id);
  B.build b
