module Net = Pnut_core.Net
module B = Net.Builder
module I = Model.Internal

let flush_transitions =
  [ "flush_buffer_word"; "flush_decoded"; "flush_ready"; "flush_done" ]

(* Stage 3 with a branch path: execution completion competes between
   taken-branch (flush) and the normal store/no-store exits. *)
let add_branching_execution b (c : Config.t) (s : I.shared) ~branch_ratio
    ~flushing =
  let execution_unit = B.add_place b "Execution_unit" ~initial:1 ~capacity:1 in
  let issued = B.add_place b "Issued_instruction" ~capacity:1 in
  let exec_done = B.add_place b "Exec_done" ~capacity:1 in
  ignore
    (B.add_transition b "Issue"
       ~inputs:[ (s.I.ready_to_issue, 1); (execution_unit, 1) ]
       ~outputs:[ (issued, 1); (s.I.decoder_ready, 1) ]
      : Net.transition_id);
  List.iteri
    (fun i (cycles, freq) ->
      ignore
        (B.add_transition b
           (Printf.sprintf "exec_type_%d" (i + 1))
           ~inputs:[ (issued, 1) ]
           ~outputs:[ (exec_done, 1) ]
           ~firing:(Net.Const cycles) ~frequency:freq
          : Net.transition_id))
    c.Config.exec_profile;
  let p_store = (1.0 -. branch_ratio) *. c.Config.store_prob in
  let p_plain = (1.0 -. branch_ratio) *. (1.0 -. c.Config.store_prob) in
  if branch_ratio > 0.0 then
    ignore
      (B.add_transition b "branch_taken"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (flushing, 1) ]
         ~frequency:branch_ratio
        : Net.transition_id);
  if p_store > 0.0 then begin
    ignore
      (B.add_transition b "store_result"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (s.I.result_store_pending, 1) ]
         ~frequency:p_store
        : Net.transition_id);
    ignore
      (B.add_transition b "start_store"
         ~inputs:[ (s.I.result_store_pending, 1); (s.I.bus_free, 1) ]
         ~outputs:[ (s.I.bus_busy, 1); (s.I.storing, 1) ]
        : Net.transition_id);
    ignore
      (B.add_transition b "end_store"
         ~inputs:[ (s.I.storing, 1); (s.I.bus_busy, 1) ]
         ~outputs:[ (s.I.bus_free, 1); (execution_unit, 1) ]
         ~enabling:(Net.Const c.Config.memory_cycles)
        : Net.transition_id)
  end;
  if p_plain > 0.0 then
    ignore
      (B.add_transition b "no_store"
         ~inputs:[ (exec_done, 1) ]
         ~outputs:[ (execution_unit, 1) ]
         ~frequency:p_plain
        : Net.transition_id);
  execution_unit

(* The squash machinery: while Flushing is marked, prefetched words and
   wrong-path stage-2 results are discarded one token at a time; the
   branch completes (returning the execution unit) only once everything
   visible has drained, the prefetch in flight has landed (and been
   drained), and stage 2 is idle again. *)
let add_flush b (s : I.shared) ~flushing ~execution_unit =
  ignore
    (B.add_transition b "flush_buffer_word"
       ~inputs:[ (flushing, 1); (s.I.full_buffers, 1) ]
       ~outputs:[ (flushing, 1); (s.I.empty_buffers, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "flush_decoded"
       ~inputs:[ (flushing, 1); (s.I.decoded_instruction, 1) ]
       ~outputs:[ (flushing, 1); (s.I.decoder_ready, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "flush_ready"
       ~inputs:[ (flushing, 1); (s.I.ready_to_issue, 1) ]
       ~outputs:[ (flushing, 1); (s.I.decoder_ready, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "flush_done"
       ~inputs:[ (flushing, 1); (s.I.decoder_ready, 1) ]
       ~outputs:[ (s.I.decoder_ready, 1); (execution_unit, 1) ]
       ~inhibitors:
         [ (s.I.full_buffers, 1); (s.I.decoded_instruction, 1);
           (s.I.ready_to_issue, 1); (s.I.pre_fetching, 1) ]
      : Net.transition_id)

let full ?(branch_ratio = 0.15) (c : Config.t) =
  Config.validate c;
  if branch_ratio < 0.0 || branch_ratio >= 1.0 then
    invalid_arg "Branching.full: branch_ratio must be in [0, 1)";
  let b = B.create "pipeline3b" in
  let s = I.add_shared b c in
  let flushing = B.add_place b "Flushing" ~capacity:1 in
  (* prefetching must not chase the wrong path while flushing *)
  let w = c.Config.prefetch_words in
  let prefetch_inhibitors =
    [ (s.I.operand_fetch_pending, 1); (s.I.result_store_pending, 1) ]
    @ (if branch_ratio > 0.0 then [ (flushing, 1) ] else [])
  in
  ignore
    (B.add_transition b "Start_prefetch"
       ~inputs:[ (s.I.bus_free, 1); (s.I.empty_buffers, w) ]
       ~inhibitors:prefetch_inhibitors
       ~outputs:[ (s.I.bus_busy, 1); (s.I.pre_fetching, 1) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "End_prefetch"
       ~inputs:[ (s.I.pre_fetching, 1); (s.I.bus_busy, 1) ]
       ~outputs:[ (s.I.bus_free, 1); (s.I.full_buffers, w) ]
       ~enabling:(Net.Const c.Config.memory_cycles)
      : Net.transition_id);
  I.add_decode b c s;
  I.add_decoder b c s;
  let execution_unit =
    add_branching_execution b c s ~branch_ratio ~flushing
  in
  if branch_ratio > 0.0 then add_flush b s ~flushing ~execution_unit;
  B.build b
