(** Marked-graph cycle-time analysis (Ramamoorthy & Ho [RH80], cited by
    the paper).

    For decision-free nets — {e marked graphs}, where every place has
    exactly one producer and one consumer, all arc weights are 1 and
    there are no inhibitors or predicates — the steady-state cycle time
    has a closed characterization:

    {v cycle time = max over directed circuits C of  D(C) / M(C) v}

    where [D(C)] sums the (mean) transition delays around the circuit and
    [M(C)] the initial tokens on its places.  Every transition of a
    strongly connected marked graph then fires exactly once per cycle, so
    the throughput of each transition is [1 / cycle time] — an analytical
    performance bound with no state-space construction at all.

    The critical ratio is computed by parametric binary search with
    Bellman-Ford positive-cycle detection (maximum ratio cycle).

    Transition delay is the {e mean} of enabling + firing durations, so
    the result is exact for deterministic nets and a first-order
    approximation for stochastic ones. *)

type verdict =
  | Cycle_time of float
      (** the critical ratio; throughput of every transition (in a
          strongly connected net) is its inverse *)
  | Deadlock
      (** some circuit carries no tokens: the net (partially) dies *)
  | Unbounded_rate
      (** no circuit constrains the net (acyclic or token-rich):
          transitions are not rate-limited by the structure *)

val is_marked_graph : Pnut_core.Net.t -> (unit, string) result
(** [Error reason] names the first violation (branching place, weighted
    arc, inhibitor, predicate/action, non-constant delay shape). *)

val cycle_time : Pnut_core.Net.t -> verdict
(** Raises [Invalid_argument] (with the reason) if the net is not a
    marked graph with mean-able delays. *)

val critical_circuit : Pnut_core.Net.t -> (int list * float) option
(** The transitions of a circuit attaining the critical ratio, with the
    ratio; [None] when {!cycle_time} is not [Cycle_time _]. *)
