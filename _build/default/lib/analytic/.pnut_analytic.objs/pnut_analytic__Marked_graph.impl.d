lib/analytic/marked_graph.ml: Array Float List Pnut_core Printf
