lib/analytic/marked_graph.mli: Pnut_core
