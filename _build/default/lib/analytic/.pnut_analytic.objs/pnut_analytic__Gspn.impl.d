lib/analytic/gspn.ml: Array Float Hashtbl List Pnut_core Printf Queue
