lib/analytic/gspn.mli: Pnut_core
