module Net = Pnut_core.Net

type verdict =
  | Cycle_time of float
  | Deadlock
  | Unbounded_rate

let mean_duration tr what = function
  | Net.Zero -> 0.0
  | Net.Const d -> d
  | Net.Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Net.Exponential mean -> mean
  | Net.Choice items ->
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
    List.fold_left (fun acc (v, w) -> acc +. (v *. w /. total)) 0.0 items
  | Net.Dynamic _ ->
    invalid_arg
      (Printf.sprintf
         "Marked_graph: transition %s has a dynamic %s time (no static mean)"
         tr.Net.t_name what)

let is_marked_graph net =
  let np = Net.num_places net in
  let producers = Array.make np 0 in
  let consumers = Array.make np 0 in
  let violation = ref None in
  let note msg = if !violation = None then violation := Some msg in
  Array.iter
    (fun tr ->
      if tr.Net.t_inhibitors <> [] then
        note (Printf.sprintf "transition %s has inhibitor arcs" tr.Net.t_name);
      if tr.Net.t_predicate <> None then
        note (Printf.sprintf "transition %s has a predicate" tr.Net.t_name);
      if tr.Net.t_action <> [] then
        note (Printf.sprintf "transition %s has an action" tr.Net.t_name);
      List.iter
        (fun { Net.a_place; a_weight } ->
          if a_weight <> 1 then
            note
              (Printf.sprintf "arc %s -> %s has weight %d"
                 (Net.place net a_place).Net.p_name tr.Net.t_name a_weight);
          consumers.(a_place) <- consumers.(a_place) + 1)
        tr.Net.t_inputs;
      List.iter
        (fun { Net.a_place; a_weight } ->
          if a_weight <> 1 then
            note
              (Printf.sprintf "arc %s -> %s has weight %d" tr.Net.t_name
                 (Net.place net a_place).Net.p_name a_weight);
          producers.(a_place) <- producers.(a_place) + 1)
        tr.Net.t_outputs)
    (Net.transitions net);
  Array.iteri
    (fun p _ ->
      if producers.(p) <> 1 || consumers.(p) <> 1 then
        note
          (Printf.sprintf
             "place %s has %d producer(s) and %d consumer(s) (need exactly 1 \
              of each)"
             (Net.place net p).Net.p_name producers.(p) consumers.(p)))
    (Array.make np ());
  match !violation with
  | Some msg -> Error msg
  | None -> Ok ()

(* Edge list of the transition graph: one edge per place, from its
   producer to its consumer, carrying the consumer's mean delay and the
   place's initial tokens. *)
let edges net =
  let np = Net.num_places net in
  let producer = Array.make np (-1) in
  let consumer = Array.make np (-1) in
  Array.iter
    (fun tr ->
      List.iter
        (fun { Net.a_place; _ } -> consumer.(a_place) <- tr.Net.t_id)
        tr.Net.t_inputs;
      List.iter
        (fun { Net.a_place; _ } -> producer.(a_place) <- tr.Net.t_id)
        tr.Net.t_outputs)
    (Net.transitions net);
  let delay = Array.make (Net.num_transitions net) 0.0 in
  Array.iter
    (fun tr ->
      delay.(tr.Net.t_id) <-
        mean_duration tr "enabling" tr.Net.t_enabling
        +. mean_duration tr "firing" tr.Net.t_firing)
    (Net.transitions net);
  let m0 = Pnut_core.Marking.to_array (Net.initial_marking net) in
  List.init np (fun p -> p)
  |> List.filter (fun p -> producer.(p) >= 0 && consumer.(p) >= 0)
  |> List.map (fun p -> (producer.(p), consumer.(p), delay.(consumer.(p)), m0.(p)))

(* Longest-path Bellman-Ford over weights (delay - lambda * tokens):
   detects whether some circuit has positive weight; optionally returns a
   node on such a circuit via the predecessor chain. *)
let positive_cycle nt edge_list lambda =
  let dist = Array.make nt 0.0 in
  let pred = Array.make nt (-1) in
  let improved = ref (-1) in
  for _ = 1 to nt do
    improved := -1;
    List.iter
      (fun (u, v, d, m) ->
        let w = d -. (lambda *. float_of_int m) in
        if dist.(u) +. w > dist.(v) +. 1e-12 then begin
          dist.(v) <- dist.(u) +. w;
          pred.(v) <- u;
          improved := v
        end)
      edge_list
  done;
  if !improved < 0 then None
  else begin
    (* walk back nt steps to land inside the cycle *)
    let v = ref !improved in
    for _ = 1 to nt do
      v := pred.(!v)
    done;
    Some (!v, pred)
  end

(* Zero-token circuits mean transitions that can never fire. *)
let has_tokenless_cycle nt edge_list =
  let adjacency = Array.make nt [] in
  List.iter
    (fun (u, v, _, m) -> if m = 0 then adjacency.(u) <- v :: adjacency.(u))
    edge_list;
  let color = Array.make nt 0 in
  let rec dfs v =
    color.(v) <- 1;
    let hit =
      List.exists
        (fun w ->
          if color.(w) = 1 then true
          else if color.(w) = 0 then dfs w
          else false)
        adjacency.(v)
    in
    if not hit then color.(v) <- 2;
    hit
  in
  let rec any v = v < nt && ((color.(v) = 0 && dfs v) || any (v + 1)) in
  any 0

let has_any_cycle nt edge_list =
  let adjacency = Array.make nt [] in
  List.iter (fun (u, v, _, _) -> adjacency.(u) <- v :: adjacency.(u)) edge_list;
  let color = Array.make nt 0 in
  let rec dfs v =
    color.(v) <- 1;
    let hit =
      List.exists
        (fun w ->
          if color.(w) = 1 then true
          else if color.(w) = 0 then dfs w
          else false)
        adjacency.(v)
    in
    if not hit then color.(v) <- 2;
    hit
  in
  let rec any v = v < nt && ((color.(v) = 0 && dfs v) || any (v + 1)) in
  any 0

let prepare net =
  (match is_marked_graph net with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Marked_graph: " ^ msg));
  (Net.num_transitions net, edges net)

let cycle_time net =
  let nt, edge_list = prepare net in
  if not (has_any_cycle nt edge_list) then Unbounded_rate
  else if has_tokenless_cycle nt edge_list then Deadlock
  else begin
    let hi0 =
      1.0 +. List.fold_left (fun acc (_, _, d, _) -> acc +. d) 0.0 edge_list
    in
    let rec search lo hi k =
      if k = 0 then hi
      else
        let mid = (lo +. hi) /. 2.0 in
        match positive_cycle nt edge_list mid with
        | Some _ -> search mid hi (k - 1)   (* mid below the critical ratio *)
        | None -> search lo mid (k - 1)
    in
    Cycle_time (search 0.0 hi0 100)
  end

let critical_circuit net =
  let nt, edge_list = prepare net in
  if not (has_any_cycle nt edge_list) || has_tokenless_cycle nt edge_list then
    None
  else begin
    match cycle_time net with
    | Deadlock | Unbounded_rate -> None
    | Cycle_time rho ->
      (* slightly below the ratio a positive cycle exists; extract it *)
      let lambda = rho -. Float.max 1e-9 (rho *. 1e-9) in
      (match positive_cycle nt edge_list lambda with
      | None -> None
      | Some (start, pred) ->
        let rec collect v acc =
          if List.mem v acc then
            (* rotate so the cycle starts at its first repeat *)
            let rec drop = function
              | w :: rest when w <> v -> drop rest
              | l -> l
            in
            List.rev (drop (List.rev acc))
          else collect pred.(v) (v :: acc)
        in
        Some (collect start [], rho))
  end
