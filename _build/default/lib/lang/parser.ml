module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Net = Pnut_core.Net
module Query = Pnut_tracer.Query
module Signal = Pnut_tracer.Signal

exception Parse_error of int * int * string

(* Mutable token cursor. *)
type cursor = {
  mutable toks : Lexer.located list;
}

let peek c =
  match c.toks with
  | t :: _ -> t
  | [] -> { Lexer.tok = Lexer.Eof; line = 0; col = 0 }

let peek2 c =
  match c.toks with
  | _ :: t :: _ -> Some t.Lexer.tok
  | _ -> None

let advance c =
  match c.toks with
  | _ :: rest -> c.toks <- rest
  | [] -> ()

let error_at (t : Lexer.located) fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (t.Lexer.line, t.Lexer.col, msg))) fmt

let expect c tok =
  let t = peek c in
  if t.Lexer.tok = tok then advance c
  else
    error_at t "expected %s, found %s" (Lexer.describe tok)
      (Lexer.describe t.Lexer.tok)

let expect_ident c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Ident name ->
    advance c;
    name
  | other -> error_at t "expected an identifier, found %s" (Lexer.describe other)

let expect_int c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Int_lit v ->
    advance c;
    v
  | other -> error_at t "expected an integer, found %s" (Lexer.describe other)

let expect_number c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Int_lit v ->
    advance c;
    float_of_int v
  | Lexer.Float_lit v ->
    advance c;
    v
  | Lexer.Minus -> (
    advance c;
    let t2 = peek c in
    match t2.Lexer.tok with
    | Lexer.Int_lit v -> advance c; -.float_of_int v
    | Lexer.Float_lit v -> advance c; -.v
    | other -> error_at t2 "expected a number after '-', found %s" (Lexer.describe other))
  | other -> error_at t "expected a number, found %s" (Lexer.describe other)

(* -- expressions -- *)

let rec parse_or c =
  let lhs = parse_and c in
  if (peek c).Lexer.tok = Lexer.Kw_or then begin
    advance c;
    Expr.Binop (Expr.Or, lhs, parse_or c)
  end
  else lhs

and parse_and c =
  let lhs = parse_cmp c in
  if (peek c).Lexer.tok = Lexer.Kw_and then begin
    advance c;
    Expr.Binop (Expr.And, lhs, parse_and c)
  end
  else lhs

and parse_cmp c =
  let lhs = parse_add c in
  let op =
    match (peek c).Lexer.tok with
    | Lexer.Eq_eq | Lexer.Eq -> Some Expr.Eq
    | Lexer.Bang_eq -> Some Expr.Ne
    | Lexer.Lt -> Some Expr.Lt
    | Lexer.Le -> Some Expr.Le
    | Lexer.Gt -> Some Expr.Gt
    | Lexer.Ge -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance c;
    Expr.Binop (op, lhs, parse_add c)

and parse_add c =
  let rec go lhs =
    match (peek c).Lexer.tok with
    | Lexer.Plus ->
      advance c;
      go (Expr.Binop (Expr.Add, lhs, parse_mul c))
    | Lexer.Minus ->
      advance c;
      go (Expr.Binop (Expr.Sub, lhs, parse_mul c))
    | _ -> lhs
  in
  go (parse_mul c)

and parse_mul c =
  let rec go lhs =
    match (peek c).Lexer.tok with
    | Lexer.Star ->
      advance c;
      go (Expr.Binop (Expr.Mul, lhs, parse_unary c))
    | Lexer.Slash ->
      advance c;
      go (Expr.Binop (Expr.Div, lhs, parse_unary c))
    | Lexer.Percent ->
      advance c;
      go (Expr.Binop (Expr.Mod, lhs, parse_unary c))
    | _ -> lhs
  in
  go (parse_unary c)

and parse_unary c =
  match (peek c).Lexer.tok with
  | Lexer.Minus ->
    advance c;
    Expr.Unop (Expr.Neg, parse_unary c)
  | Lexer.Kw_not ->
    advance c;
    Expr.Unop (Expr.Not, parse_unary c)
  | _ -> parse_atom c

and parse_atom c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Int_lit v ->
    advance c;
    Expr.Const (Value.Int v)
  | Lexer.Float_lit v ->
    advance c;
    Expr.Const (Value.Float v)
  | Lexer.Kw_true ->
    advance c;
    Expr.Const (Value.Bool true)
  | Lexer.Kw_false ->
    advance c;
    Expr.Const (Value.Bool false)
  | Lexer.Lparen ->
    advance c;
    let e = parse_or c in
    expect c Lexer.Rparen;
    e
  | Lexer.Kw_if ->
    advance c;
    let cond = parse_or c in
    expect c Lexer.Kw_then;
    let th = parse_or c in
    expect c Lexer.Kw_else;
    let el = parse_or c in
    Expr.If (cond, th, el)
  (* inev/alw appear inside query formulas; at the expression level they
     are parsed as calls and lifted to temporal operators afterwards *)
  | Lexer.Kw_inev ->
    advance c;
    expect c Lexer.Lparen;
    let args = parse_args c in
    expect c Lexer.Rparen;
    Expr.Call ("inev", args)
  | Lexer.Kw_alw ->
    advance c;
    expect c Lexer.Lparen;
    let args = parse_args c in
    expect c Lexer.Rparen;
    Expr.Call ("alw", args)
  | Lexer.Ident name -> (
    advance c;
    match (peek c).Lexer.tok with
    | Lexer.Lparen ->
      advance c;
      let args = parse_args c in
      expect c Lexer.Rparen;
      Expr.Call (name, args)
    | Lexer.Lbracket ->
      advance c;
      let e = parse_or c in
      expect c Lexer.Rbracket;
      Expr.Index (name, e)
    | _ -> Expr.Var name)
  | other -> error_at t "expected an expression, found %s" (Lexer.describe other)

and parse_args c =
  if (peek c).Lexer.tok = Lexer.Rparen then []
  else
    let rec go acc =
      let e = parse_or c in
      if (peek c).Lexer.tok = Lexer.Comma then begin
        advance c;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

let parse_expr_cursor = parse_or

(* -- model language -- *)

type clause =
  | C_in of (string * int) list
  | C_out of (string * int) list
  | C_inhibit of (string * int) list
  | C_firing of Net.duration
  | C_enabling of Net.duration
  | C_frequency of float
  | C_predicate of Expr.t
  | C_action of Expr.stmt

type item =
  | I_var of string * Value.t
  | I_table of string * Value.t array
  | I_place of string * int * int option * Lexer.located
  | I_transition of string * clause list * Lexer.located

let parse_arcs c =
  let rec go acc =
    let name = expect_ident c in
    let weight =
      if (peek c).Lexer.tok = Lexer.Star then begin
        advance c;
        expect_int c
      end
      else 1
    in
    let acc = (name, weight) :: acc in
    if (peek c).Lexer.tok = Lexer.Comma then begin
      advance c;
      go acc
    end
    else List.rev acc
  in
  go []

let parse_duration c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Int_lit _ | Lexer.Float_lit _ | Lexer.Minus ->
    let v = expect_number c in
    if Float.equal v 0.0 then Net.Zero else Net.Const v
  | Lexer.Kw_uniform ->
    advance c;
    expect c Lexer.Lparen;
    let lo = expect_number c in
    expect c Lexer.Comma;
    let hi = expect_number c in
    expect c Lexer.Rparen;
    Net.Uniform (lo, hi)
  | Lexer.Kw_exponential ->
    advance c;
    expect c Lexer.Lparen;
    let mean = expect_number c in
    expect c Lexer.Rparen;
    Net.Exponential mean
  | Lexer.Kw_choice ->
    advance c;
    expect c Lexer.Lparen;
    let rec go acc =
      let v = expect_number c in
      expect c Lexer.Colon;
      let w = expect_number c in
      let acc = (v, w) :: acc in
      if (peek c).Lexer.tok = Lexer.Comma then begin
        advance c;
        go acc
      end
      else List.rev acc
    in
    let items = go [] in
    expect c Lexer.Rparen;
    Net.Choice items
  | Lexer.Kw_expr ->
    advance c;
    expect c Lexer.Lparen;
    let e = parse_expr_cursor c in
    expect c Lexer.Rparen;
    Net.Dynamic e
  | other -> error_at t "expected a duration, found %s" (Lexer.describe other)

let parse_value c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Kw_true ->
    advance c;
    Value.Bool true
  | Lexer.Kw_false ->
    advance c;
    Value.Bool false
  | Lexer.Int_lit v ->
    advance c;
    Value.Int v
  | Lexer.Float_lit v ->
    advance c;
    Value.Float v
  | Lexer.Minus -> (
    advance c;
    let t2 = peek c in
    match t2.Lexer.tok with
    | Lexer.Int_lit v -> advance c; Value.Int (-v)
    | Lexer.Float_lit v -> advance c; Value.Float (-.v)
    | other -> error_at t2 "expected a number after '-', found %s" (Lexer.describe other))
  | other -> error_at t "expected a value, found %s" (Lexer.describe other)

let parse_action_stmt c =
  let name = expect_ident c in
  if (peek c).Lexer.tok = Lexer.Lbracket then begin
    advance c;
    let idx = parse_expr_cursor c in
    expect c Lexer.Rbracket;
    expect c Lexer.Eq;
    let e = parse_expr_cursor c in
    Expr.Table_assign (name, idx, e)
  end
  else begin
    expect c Lexer.Eq;
    let e = parse_expr_cursor c in
    Expr.Assign (name, e)
  end

let parse_clause c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Kw_in ->
    advance c;
    Some (C_in (parse_arcs c))
  | Lexer.Kw_out ->
    advance c;
    Some (C_out (parse_arcs c))
  | Lexer.Kw_inhibit ->
    advance c;
    Some (C_inhibit (parse_arcs c))
  | Lexer.Kw_firing ->
    advance c;
    Some (C_firing (parse_duration c))
  | Lexer.Kw_enabling ->
    advance c;
    Some (C_enabling (parse_duration c))
  | Lexer.Kw_frequency ->
    advance c;
    Some (C_frequency (expect_number c))
  | Lexer.Kw_predicate ->
    advance c;
    Some (C_predicate (parse_expr_cursor c))
  | Lexer.Kw_action ->
    advance c;
    Some (C_action (parse_action_stmt c))
  | _ -> None

let parse_item c =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Kw_var ->
    advance c;
    let name = expect_ident c in
    expect c Lexer.Eq;
    Some (I_var (name, parse_value c))
  | Lexer.Kw_table ->
    advance c;
    let name = expect_ident c in
    expect c Lexer.Eq;
    expect c Lexer.Lbracket;
    let rec go acc =
      let v = parse_value c in
      if (peek c).Lexer.tok = Lexer.Comma then begin
        advance c;
        go (v :: acc)
      end
      else List.rev (v :: acc)
    in
    let values = go [] in
    expect c Lexer.Rbracket;
    Some (I_table (name, Array.of_list values))
  | Lexer.Kw_place ->
    advance c;
    let where = peek c in
    let name = expect_ident c in
    let initial =
      if (peek c).Lexer.tok = Lexer.Kw_init then begin
        advance c;
        expect_int c
      end
      else 0
    in
    let capacity =
      if (peek c).Lexer.tok = Lexer.Kw_capacity then begin
        advance c;
        Some (expect_int c)
      end
      else None
    in
    Some (I_place (name, initial, capacity, where))
  | Lexer.Kw_transition ->
    advance c;
    let where = peek c in
    let name = expect_ident c in
    let rec clauses acc =
      match parse_clause c with
      | Some cl -> clauses (cl :: acc)
      | None -> List.rev acc
    in
    Some (I_transition (name, clauses [], where))
  | _ -> None

let elaborate name items =
  let builder = Net.Builder.create name in
  (* pass 1: variables, tables, places *)
  let place_ids = Hashtbl.create 16 in
  List.iter
    (fun item ->
      match item with
      | I_var (n, v) -> Net.Builder.set_variable builder n v
      | I_table (n, arr) -> Net.Builder.set_table builder n arr
      | I_place (n, initial, capacity, where) ->
        let id =
          try
            match capacity with
            | Some cap -> Net.Builder.add_place builder n ~initial ~capacity:cap
            | None -> Net.Builder.add_place builder n ~initial
          with Invalid_argument msg -> error_at where "%s" msg
        in
        Hashtbl.replace place_ids n id
      | I_transition _ -> ())
    items;
  (* pass 2: transitions *)
  let resolve_arcs where arcs =
    List.map
      (fun (n, w) ->
        match Hashtbl.find_opt place_ids n with
        | Some id -> (id, w)
        | None -> error_at where "unknown place %s" n)
      arcs
  in
  List.iter
    (fun item ->
      match item with
      | I_var _ | I_table _ | I_place _ -> ()
      | I_transition (n, clauses, where) ->
        let inputs = ref [] in
        let outputs = ref [] in
        let inhibitors = ref [] in
        let firing = ref Net.Zero in
        let enabling = ref Net.Zero in
        let frequency = ref 1.0 in
        let predicate = ref None in
        let action = ref [] in
        List.iter
          (fun cl ->
            match cl with
            | C_in arcs -> inputs := !inputs @ resolve_arcs where arcs
            | C_out arcs -> outputs := !outputs @ resolve_arcs where arcs
            | C_inhibit arcs -> inhibitors := !inhibitors @ resolve_arcs where arcs
            | C_firing d -> firing := d
            | C_enabling d -> enabling := d
            | C_frequency f -> frequency := f
            | C_predicate p -> predicate := Some p
            | C_action s -> action := !action @ [ s ])
          clauses;
        let add () =
          match !predicate with
          | Some p ->
            Net.Builder.add_transition builder n ~inputs:!inputs
              ~outputs:!outputs ~inhibitors:!inhibitors ~firing:!firing
              ~enabling:!enabling ~frequency:!frequency ~predicate:p
              ~action:!action
          | None ->
            Net.Builder.add_transition builder n ~inputs:!inputs
              ~outputs:!outputs ~inhibitors:!inhibitors ~firing:!firing
              ~enabling:!enabling ~frequency:!frequency ~action:!action
        in
        (try ignore (add () : Net.transition_id)
         with Invalid_argument msg -> error_at where "%s" msg))
    items;
  try Net.Builder.build builder
  with Invalid_argument msg -> raise (Parse_error (1, 1, msg))

let with_cursor text f =
  let toks =
    try Lexer.tokenize text
    with Lexer.Lex_error (line, col, msg) -> raise (Parse_error (line, col, msg))
  in
  let c = { toks } in
  let result = f c in
  expect c Lexer.Eof;
  result

let parse_net text =
  with_cursor text (fun c ->
      expect c Lexer.Kw_net;
      let name = expect_ident c in
      let rec items acc =
        match parse_item c with
        | Some item -> items (item :: acc)
        | None -> List.rev acc
      in
      let parsed = items [] in
      (let t = peek c in
       if t.Lexer.tok <> Lexer.Eof then
         error_at t "expected 'place', 'transition', 'var', 'table' or end of \
                     input, found %s"
           (Lexer.describe t.Lexer.tok));
      elaborate name parsed)

let parse_expr text = with_cursor text parse_expr_cursor

(* -- query language -- *)

(* Lift a parsed expression into a query formula: top-level boolean
   connectives become formula nodes, inev/alw calls become temporal
   operators, everything else an atom.  [state_vars] are bound state
   variables: applications like Bus_busy(s) unwrap to Bus_busy, and
   stray references to the state variable inside inev (the paper's
   3-argument form) are dropped. *)
let rec formula_of_expr state_vars (e : Expr.t) : Query.formula =
  let is_state_var = function
    | Expr.Var v -> List.mem v state_vars
    | _ -> false
  in
  let strip = strip_state_apps state_vars in
  match e with
  | Expr.Binop (Expr.And, a, b) ->
    Query.And (formula_of_expr state_vars a, formula_of_expr state_vars b)
  | Expr.Binop (Expr.Or, a, b) ->
    Query.Or (formula_of_expr state_vars a, formula_of_expr state_vars b)
  | Expr.Unop (Expr.Not, a) -> Query.Not (formula_of_expr state_vars a)
  | Expr.Call ("inev", args) -> (
    let args = List.filter (fun a -> not (is_state_var a)) args in
    let args =
      List.filter (function Expr.Const (Value.Bool true) -> false | _ -> true) args
    in
    match args with
    | [ f ] -> Query.Inev (formula_of_expr state_vars f)
    | _ -> failwith "inev expects one formula argument")
  | Expr.Call ("alw", args) -> (
    let args = List.filter (fun a -> not (is_state_var a)) args in
    let args =
      List.filter (function Expr.Const (Value.Bool true) -> false | _ -> true) args
    in
    match args with
    | [ f ] -> Query.Alw (formula_of_expr state_vars f)
    | _ -> failwith "alw expects one formula argument")
  | other -> Query.Atom (strip other)

(* Rewrite Bus_busy(s) -> Bus_busy throughout an expression. *)
and strip_state_apps state_vars (e : Expr.t) : Expr.t =
  let go = strip_state_apps state_vars in
  match e with
  | Expr.Call (name, [ Expr.Var v ]) when List.mem v state_vars -> Expr.Var name
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Index (t, i) -> Expr.Index (t, go i)
  | Expr.Unop (op, a) -> Expr.Unop (op, go a)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
  | Expr.If (a, b, c) -> Expr.If (go a, go b, go c)
  | Expr.Call (f, args) -> Expr.Call (f, List.map go args)

(* domain := base ('-' '{' #int (',' #int)* '}')?
   base   := S | ident | '(' domain ')' | '{' ident 'in' S '|' formula '}' *)
let rec parse_domain c state_var =
  let t = peek c in
  match t.Lexer.tok with
  | Lexer.Lparen ->
    advance c;
    let d, vars = parse_domain c state_var in
    expect c Lexer.Rparen;
    parse_domain_suffix c (d, vars)
  | Lexer.Ident "S" ->
    advance c;
    parse_domain_suffix c (Query.whole, [ state_var ])
  | Lexer.Lbrace ->
    advance c;
    let inner_var = expect_ident c in
    expect c Lexer.Kw_in;
    let t2 = peek c in
    (match t2.Lexer.tok with
    | Lexer.Ident "S" -> advance c
    | other -> error_at t2 "expected S, found %s" (Lexer.describe other));
    expect c Lexer.Bar;
    let filter_expr = parse_expr_cursor c in
    expect c Lexer.Rbrace;
    let vars = [ state_var; inner_var ] in
    let filter =
      try formula_of_expr vars filter_expr
      with Failure msg -> error_at t "%s" msg
    in
    parse_domain_suffix c
      ({ Query.except = []; such_that = Some filter }, vars)
  | other -> error_at t "expected a state domain, found %s" (Lexer.describe other)

and parse_domain_suffix c (d, vars) =
  if (peek c).Lexer.tok = Lexer.Minus then begin
    advance c;
    expect c Lexer.Lbrace;
    let rec refs acc =
      expect c Lexer.Hash;
      let i = expect_int c in
      if (peek c).Lexer.tok = Lexer.Comma then begin
        advance c;
        refs (i :: acc)
      end
      else List.rev (i :: acc)
    in
    let excluded = refs [] in
    expect c Lexer.Rbrace;
    ({ d with Query.except = d.Query.except @ excluded }, vars)
  end
  else (d, vars)

let parse_query text =
  with_cursor text (fun c ->
      let t = peek c in
      let quantifier =
        match t.Lexer.tok with
        | Lexer.Kw_forall -> advance c; `Forall
        | Lexer.Kw_exists -> advance c; `Exists
        | other ->
          error_at t "expected 'forall' or 'exists', found %s"
            (Lexer.describe other)
      in
      let state_var = expect_ident c in
      expect c Lexer.Kw_in;
      let domain, vars = parse_domain c state_var in
      expect c Lexer.Lbracket;
      let body = parse_expr_cursor c in
      expect c Lexer.Rbracket;
      let formula =
        try formula_of_expr vars body
        with Failure msg -> error_at t "%s" msg
      in
      match quantifier with
      | `Forall -> Query.Forall (domain, formula)
      | `Exists -> Query.Exists (domain, formula))

let parse_signal text =
  with_cursor text (fun c ->
      let t = peek c in
      match t.Lexer.tok, peek2 c with
      | Lexer.Ident name, Some Lexer.Eq ->
        advance c;
        advance c;
        let e = parse_expr_cursor c in
        Signal.Fun (name, e)
      | Lexer.Ident name, (Some Lexer.Eof | None) ->
        advance c;
        Signal.Fun (name, Expr.Var name)
      | _ ->
        let e = parse_expr_cursor c in
        Signal.Fun ("signal", e))
