(** Tokenizer shared by the model language, the expression language and
    the query language. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  (* model keywords *)
  | Kw_net | Kw_var | Kw_table | Kw_place | Kw_transition
  | Kw_in | Kw_out | Kw_inhibit
  | Kw_firing | Kw_enabling | Kw_frequency | Kw_predicate | Kw_action
  | Kw_init | Kw_capacity
  | Kw_uniform | Kw_exponential | Kw_choice | Kw_expr
  (* expression keywords *)
  | Kw_if | Kw_then | Kw_else | Kw_and | Kw_or | Kw_not
  | Kw_true | Kw_false
  (* query keywords *)
  | Kw_forall | Kw_exists | Kw_inev | Kw_alw
  (* punctuation and operators *)
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Comma | Colon | Bar | Hash
  | Star | Plus | Minus | Slash | Percent
  | Eq          (** [=] *)
  | Eq_eq       (** [==] *)
  | Bang_eq     (** [!=] *)
  | Lt | Le | Gt | Ge
  | Arrow       (** [->], implication in queries *)
  | Eof

type located = {
  tok : token;
  line : int;
  col : int;
}

val tokenize : string -> located list
(** Raises [Lex_error (line, col, message)].  Comments run from [//] to
    end of line ([#] introduces a state reference in queries, not a
    comment).  Identifiers are [\[A-Za-z_\]\[A-Za-z0-9_'\]*]; keywords
    are reserved. *)

val describe : token -> string
(** Human-readable token name for error messages. *)

exception Lex_error of int * int * string
