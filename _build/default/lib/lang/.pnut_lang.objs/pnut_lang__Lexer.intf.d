lib/lang/lexer.mli:
