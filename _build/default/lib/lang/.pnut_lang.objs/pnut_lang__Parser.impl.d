lib/lang/parser.ml: Array Float Hashtbl Lexer List Pnut_core Pnut_tracer Printf
