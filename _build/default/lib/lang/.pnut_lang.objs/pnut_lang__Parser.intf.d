lib/lang/parser.mli: Pnut_core Pnut_tracer
