(** Parsers for the textual model language, the expression language and
    the verification query language.

    {2 Model language}

    The paper notes that the complete pipeline model is "roughly 25 lines"
    in textual form.  The concrete syntax (one keyword-introduced clause
    per aspect; newlines are not significant):
    {v
    net pipeline
    var n = 0
    table operands = [0, 1, 2]
    place Bus_free init 1
    place Empty_I_buffers init 6 capacity 6
    transition Start_prefetch
      in Bus_free, Empty_I_buffers * 2
      inhibit Operand_fetch_pending
      out Bus_busy, pre_fetching
      frequency 2
    transition End_prefetch
      in pre_fetching, Bus_busy
      out Bus_free, Full_I_buffers * 2
      enabling 5
    transition Decode
      in Full_I_buffers, Decoder_ready
      out Decoded_instruction
      firing 1
      predicate n > 0
      action n = n - 1
    v}
    Durations are a number, [uniform(a, b)], [exponential(mean)],
    [choice(v:w, v:w, ...)] or [expr(e)].  Comments run from [//] to end
    of line.  [Pnut_core.Net.pp] prints this syntax, so nets round-trip.

    {2 Query language}

    The paper's Section 4.4 queries parse directly (with [_] for [-] in
    names, and the bound state variable applied as in [Bus_busy(s)] being
    optional):
    {v
    forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]
    exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]
    exists s in S [ exec_type_5(s) > 0 ]
    forall s in {s' in S | Bus_busy(s')} [ inev(s, Bus_free, true) ]
    v}
    [inev(f)] and [alw(f)] are the temporal operators; inside [inev]/[alw]
    the state arguments of the paper's 3-argument form are accepted and
    ignored.  [=] and [==] both denote equality; [->] is implication. *)

val parse_net : string -> Pnut_core.Net.t
(** Parse and elaborate a model.  Raises {!Parse_error}. *)

val parse_expr : string -> Pnut_core.Expr.t

val parse_query : string -> Pnut_tracer.Query.t

val parse_signal : string -> Pnut_tracer.Signal.t
(** A signal spec for tracertool: either a bare name (resolved against
    places, then transitions, then variables when sampled) or
    [name = expr] defining a named function of other signals. *)

exception Parse_error of int * int * string
(** (line, column, message). *)
