type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Kw_net | Kw_var | Kw_table | Kw_place | Kw_transition
  | Kw_in | Kw_out | Kw_inhibit
  | Kw_firing | Kw_enabling | Kw_frequency | Kw_predicate | Kw_action
  | Kw_init | Kw_capacity
  | Kw_uniform | Kw_exponential | Kw_choice | Kw_expr
  | Kw_if | Kw_then | Kw_else | Kw_and | Kw_or | Kw_not
  | Kw_true | Kw_false
  | Kw_forall | Kw_exists | Kw_inev | Kw_alw
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Comma | Colon | Bar | Hash
  | Star | Plus | Minus | Slash | Percent
  | Eq
  | Eq_eq
  | Bang_eq
  | Lt | Le | Gt | Ge
  | Arrow
  | Eof

type located = {
  tok : token;
  line : int;
  col : int;
}

exception Lex_error of int * int * string

let keywords =
  [
    ("net", Kw_net); ("var", Kw_var); ("table", Kw_table); ("place", Kw_place);
    ("transition", Kw_transition); ("in", Kw_in); ("out", Kw_out);
    ("inhibit", Kw_inhibit); ("firing", Kw_firing); ("enabling", Kw_enabling);
    ("frequency", Kw_frequency); ("predicate", Kw_predicate);
    ("action", Kw_action); ("init", Kw_init); ("capacity", Kw_capacity);
    ("uniform", Kw_uniform); ("exponential", Kw_exponential);
    ("choice", Kw_choice); ("expr", Kw_expr); ("if", Kw_if); ("then", Kw_then);
    ("else", Kw_else); ("and", Kw_and); ("or", Kw_or); ("not", Kw_not);
    ("true", Kw_true); ("false", Kw_false); ("forall", Kw_forall);
    ("exists", Kw_exists); ("inev", Kw_inev); ("alw", Kw_alw);
  ]

let describe = function
  | Ident s -> Printf.sprintf "identifier %s" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Float_lit f -> Printf.sprintf "number %g" f
  | Kw_net -> "'net'" | Kw_var -> "'var'" | Kw_table -> "'table'"
  | Kw_place -> "'place'" | Kw_transition -> "'transition'"
  | Kw_in -> "'in'" | Kw_out -> "'out'" | Kw_inhibit -> "'inhibit'"
  | Kw_firing -> "'firing'" | Kw_enabling -> "'enabling'"
  | Kw_frequency -> "'frequency'" | Kw_predicate -> "'predicate'"
  | Kw_action -> "'action'" | Kw_init -> "'init'" | Kw_capacity -> "'capacity'"
  | Kw_uniform -> "'uniform'" | Kw_exponential -> "'exponential'"
  | Kw_choice -> "'choice'" | Kw_expr -> "'expr'"
  | Kw_if -> "'if'" | Kw_then -> "'then'" | Kw_else -> "'else'"
  | Kw_and -> "'and'" | Kw_or -> "'or'" | Kw_not -> "'not'"
  | Kw_true -> "'true'" | Kw_false -> "'false'"
  | Kw_forall -> "'forall'" | Kw_exists -> "'exists'"
  | Kw_inev -> "'inev'" | Kw_alw -> "'alw'"
  | Lparen -> "'('" | Rparen -> "')'"
  | Lbracket -> "'['" | Rbracket -> "']'"
  | Lbrace -> "'{'" | Rbrace -> "'}'"
  | Comma -> "','" | Colon -> "':'" | Bar -> "'|'" | Hash -> "'#'"
  | Star -> "'*'" | Plus -> "'+'" | Minus -> "'-'"
  | Slash -> "'/'" | Percent -> "'%'"
  | Eq -> "'='" | Eq_eq -> "'=='" | Bang_eq -> "'!='"
  | Lt -> "'<'" | Le -> "'<='" | Gt -> "'>'" | Ge -> "'>='"
  | Arrow -> "'->'"
  | Eof -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize text =
  let n = String.length text in
  let line = ref 1 in
  let bol = ref 0 in
  let out = ref [] in
  let emit pos tok = out := { tok; line = !line; col = pos - !bol + 1 } :: !out in
  let error pos msg = raise (Lex_error (!line, pos - !bol + 1, msg)) in
  let rec go i =
    if i >= n then emit i Eof
    else
      let c = text.[i] in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
        incr line;
        bol := i + 1;
        go (i + 1)
      | '/' when i + 1 < n && text.[i + 1] = '/' ->
        let rec skip j = if j < n && text.[j] <> '\n' then skip (j + 1) else j in
        go (skip i)
      | '(' -> emit i Lparen; go (i + 1)
      | ')' -> emit i Rparen; go (i + 1)
      | '[' -> emit i Lbracket; go (i + 1)
      | ']' -> emit i Rbracket; go (i + 1)
      | '{' -> emit i Lbrace; go (i + 1)
      | '}' -> emit i Rbrace; go (i + 1)
      | ',' -> emit i Comma; go (i + 1)
      | ':' -> emit i Colon; go (i + 1)
      | '|' -> emit i Bar; go (i + 1)
      | '#' -> emit i Hash; go (i + 1)
      | '*' -> emit i Star; go (i + 1)
      | '+' -> emit i Plus; go (i + 1)
      | '/' -> emit i Slash; go (i + 1)
      | '%' -> emit i Percent; go (i + 1)
      | '-' when i + 1 < n && text.[i + 1] = '>' -> emit i Arrow; go (i + 2)
      | '-' -> emit i Minus; go (i + 1)
      | '=' when i + 1 < n && text.[i + 1] = '=' -> emit i Eq_eq; go (i + 2)
      | '=' -> emit i Eq; go (i + 1)
      | '!' when i + 1 < n && text.[i + 1] = '=' -> emit i Bang_eq; go (i + 2)
      | '!' -> error i "unexpected '!' (did you mean '!='?)"
      | '<' when i + 1 < n && text.[i + 1] = '=' -> emit i Le; go (i + 2)
      | '<' -> emit i Lt; go (i + 1)
      | '>' when i + 1 < n && text.[i + 1] = '=' -> emit i Ge; go (i + 2)
      | '>' -> emit i Gt; go (i + 1)
      | c when is_digit c ->
        let rec scan j seen_dot seen_exp =
          if j >= n then j
          else
            let d = text.[j] in
            if is_digit d then scan (j + 1) seen_dot seen_exp
            else if d = '.' && not seen_dot && not seen_exp then
              scan (j + 1) true seen_exp
            else if (d = 'e' || d = 'E') && not seen_exp && j + 1 < n
                    && (is_digit text.[j + 1]
                       || ((text.[j + 1] = '+' || text.[j + 1] = '-')
                          && j + 2 < n && is_digit text.[j + 2]))
            then
              let j = if is_digit text.[j + 1] then j + 2 else j + 3 in
              scan j seen_dot true
            else j
        in
        let stop = scan i false false in
        let lexeme = String.sub text i (stop - i) in
        (match int_of_string_opt lexeme with
        | Some v -> emit i (Int_lit v)
        | None -> (
          match float_of_string_opt lexeme with
          | Some v -> emit i (Float_lit v)
          | None -> error i ("bad number " ^ lexeme)));
        go stop
      | c when is_ident_start c ->
        let rec scan j = if j < n && is_ident_char text.[j] then scan (j + 1) else j in
        let stop = scan i in
        let lexeme = String.sub text i (stop - i) in
        (match List.assoc_opt lexeme keywords with
        | Some kw -> emit i kw
        | None -> emit i (Ident lexeme));
        go stop
      | c -> error i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !out
