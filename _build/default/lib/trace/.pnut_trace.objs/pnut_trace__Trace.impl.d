lib/trace/trace.ml: Array Float Hashtbl List Pnut_core String
