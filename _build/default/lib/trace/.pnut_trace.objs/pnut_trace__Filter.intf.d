lib/trace/filter.mli: Trace
