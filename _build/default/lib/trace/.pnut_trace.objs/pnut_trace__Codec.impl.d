lib/trace/codec.ml: Array Buffer List Pnut_core Printf String Trace
