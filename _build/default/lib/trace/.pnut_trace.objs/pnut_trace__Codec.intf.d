lib/trace/codec.mli: Buffer Trace
