lib/trace/filter.ml: Array List Trace
