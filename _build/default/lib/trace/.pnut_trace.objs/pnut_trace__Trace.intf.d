lib/trace/trace.mli: Pnut_core
