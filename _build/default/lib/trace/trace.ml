type event_kind =
  | Fire_start
  | Fire_end

type delta = {
  d_time : float;
  d_kind : event_kind;
  d_transition : int;
  d_firing : int;
  d_marking : (int * int) list;
  d_env : (string * Pnut_core.Value.t) list;
}

type header = {
  h_net : string;
  h_places : string array;
  h_transitions : string array;
  h_initial : int array;
  h_variables : (string * Pnut_core.Value.t) list;
}

let header_of_net net =
  let module Net = Pnut_core.Net in
  {
    h_net = Net.name net;
    h_places = Array.map (fun p -> p.Net.p_name) (Net.places net);
    h_transitions = Array.map (fun t -> t.Net.t_name) (Net.transitions net);
    h_initial = Pnut_core.Marking.to_array (Net.initial_marking net);
    h_variables = Net.variables net;
  }

type sink = {
  on_header : header -> unit;
  on_delta : delta -> unit;
  on_finish : float -> unit;
}

let null_sink =
  { on_header = (fun _ -> ()); on_delta = (fun _ -> ()); on_finish = (fun _ -> ()) }

let tee sinks =
  {
    on_header = (fun h -> List.iter (fun s -> s.on_header h) sinks);
    on_delta = (fun d -> List.iter (fun s -> s.on_delta d) sinks);
    on_finish = (fun t -> List.iter (fun s -> s.on_finish t) sinks);
  }

type t = {
  header : header;
  deltas : delta array;
  final_time : float;
}

let header tr = tr.header
let deltas tr = tr.deltas
let final_time tr = tr.final_time
let length tr = Array.length tr.deltas

let make header deltas final_time =
  { header; deltas = Array.of_list deltas; final_time }

let collector () =
  let hdr = ref None in
  let acc = ref [] in
  let fin = ref None in
  let sink =
    {
      on_header = (fun h -> hdr := Some h);
      on_delta = (fun d -> acc := d :: !acc);
      on_finish = (fun t -> fin := Some t);
    }
  in
  let get () =
    match !hdr, !fin with
    | Some h, Some t ->
      { header = h; deltas = Array.of_list (List.rev !acc); final_time = t }
    | None, _ -> invalid_arg "Trace.collector: no header received"
    | _, None -> invalid_arg "Trace.collector: trace not finished"
  in
  (sink, get)

let replay tr sink =
  sink.on_header tr.header;
  Array.iter sink.on_delta tr.deltas;
  sink.on_finish tr.final_time

let apply_marking marking changes =
  List.iter (fun (p, dm) -> marking.(p) <- marking.(p) + dm) changes

let states tr =
  let n = Array.length tr.deltas in
  let result = Array.make (n + 1) (0.0, [||]) in
  let current = Array.copy tr.header.h_initial in
  let t0 = if n = 0 then 0.0 else Float.min 0.0 tr.deltas.(0).d_time in
  result.(0) <- (t0, Array.copy current);
  Array.iteri
    (fun i d ->
      apply_marking current d.d_marking;
      result.(i + 1) <- (d.d_time, Array.copy current))
    tr.deltas;
  result

let marking_after tr i =
  if i < 0 || i > Array.length tr.deltas then
    invalid_arg "Trace.marking_after: index out of range";
  let current = Array.copy tr.header.h_initial in
  for k = 0 to i - 1 do
    apply_marking current tr.deltas.(k).d_marking
  done;
  current

let state_at tr time =
  let current = Array.copy tr.header.h_initial in
  (try
     Array.iter
       (fun d ->
         if d.d_time > time then raise Exit;
         apply_marking current d.d_marking)
       tr.deltas
   with Exit -> ());
  current

let env_after tr i =
  if i < 0 || i > Array.length tr.deltas then
    invalid_arg "Trace.env_after: index out of range";
  let table = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace table k v) tr.header.h_variables;
  for k = 0 to i - 1 do
    List.iter (fun (nm, v) -> Hashtbl.replace table nm v) tr.deltas.(k).d_env
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let in_flight_after tr i =
  if i < 0 || i > Array.length tr.deltas then
    invalid_arg "Trace.in_flight_after: index out of range";
  let counts = Array.make (Array.length tr.header.h_transitions) 0 in
  for k = 0 to i - 1 do
    let d = tr.deltas.(k) in
    match d.d_kind with
    | Fire_start -> counts.(d.d_transition) <- counts.(d.d_transition) + 1
    | Fire_end -> counts.(d.d_transition) <- counts.(d.d_transition) - 1
  done;
  counts
