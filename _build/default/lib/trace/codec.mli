(** Textual trace serialization.

    Line-oriented, human-inspectable, and producer-agnostic: the format
    references places and transitions by id with a name table in the
    header, so any simulation tool (the paper names SIMSCRIPT) can emit it.

    Grammar (one record per line):
    {v
    %pnut-trace 1
    net <name>
    place <id> <name> <initial-tokens>
    transition <id> <name>
    var <name> <value>
    begin
    @ <time> S|E <transition-id> <firing-id> [; <place>:<delta> ...] [; <var>=<value> ...]
    end <final-time>
    v}
    Floats are written in round-trippable precision. *)

val write : Buffer.t -> Trace.t -> unit

val to_string : Trace.t -> string

val write_channel : out_channel -> Trace.t -> unit

val writer_sink : Buffer.t -> Trace.sink
(** Streaming writer: serializes records as they arrive. *)

val channel_sink : out_channel -> Trace.sink

val parse : string -> Trace.t
(** Raises [Parse_error (line, message)] on malformed input. *)

val read_channel : in_channel -> Trace.t

exception Parse_error of int * string
