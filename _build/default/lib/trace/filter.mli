(** The trace filtering tool.

    "Usually only a handful of places and transitions are of interest in
    performing a particular analysis. The P-NUT system therefore provides
    a filtering tool from which significantly smaller traces can be
    obtained."

    A filter keeps a subset of places and transitions.  Kept places and
    transitions are {e renumbered} contiguously; the header's name tables
    shrink accordingly.  A delta survives if its transition is kept or if
    it still changes a kept place or variable (so place signals remain
    exact); such orphaned deltas are attributed to a reserved
    pseudo-transition ["_filtered"] appended to the transition table.
    Marking changes to dropped places are erased.  Variable updates are
    kept or dropped wholesale via [keep_vars]. *)

type spec = {
  keep_places : string list option;
      (** [None] keeps all; names absent from the trace are ignored *)
  keep_transitions : string list option;
  keep_vars : bool;
}

val all : spec
(** Keeps everything (identity filter). *)

val make_spec :
  ?places:string list -> ?transitions:string list -> ?vars:bool -> unit -> spec

val sink : spec -> Trace.sink -> Trace.sink
(** [sink spec downstream] filters a stream on the fly. *)

val apply : spec -> Trace.t -> Trace.t
