(** Simulation traces.

    Following the paper, a trace is "the description of the initial state
    of the system, followed by a series of state deltas describing how the
    state of the system changes over time".  The simulator knows nothing
    about analysis; it emits a trace, and analysis tools consume traces.

    Two consumption styles are supported, mirroring P-NUT:
    - {b streaming}: the simulator output is "plugged" into an analysis
      tool through a {!sink}, avoiding large intermediate files;
    - {b stored}: an in-memory {!t} (or its textual serialization, see
      {!Codec}) that can be replayed into any sink.

    The textual format is deliberately independent of the Petri-net tooling
    so that traces "can be easily generated from SIMSCRIPT simulations as
    well as any other simulation language" — any producer emitting the
    documented format interoperates. *)

type event_kind =
  | Fire_start  (** a transition began firing: input tokens consumed *)
  | Fire_end    (** a transition completed: output tokens produced *)

type delta = {
  d_time : float;
  d_kind : event_kind;
  d_transition : int;               (** transition id *)
  d_firing : int;                   (** firing-instance id, pairs start/end *)
  d_marking : (int * int) list;     (** (place id, token delta) *)
  d_env : (string * Pnut_core.Value.t) list;
      (** variable updates applied by the event's action *)
}

(** Static description heading every trace. *)
type header = {
  h_net : string;                      (** net name *)
  h_places : string array;             (** index = place id *)
  h_transitions : string array;        (** index = transition id *)
  h_initial : int array;               (** initial marking *)
  h_variables : (string * Pnut_core.Value.t) list;  (** initial bindings *)
}

val header_of_net : Pnut_core.Net.t -> header

(** Streaming consumer. *)
type sink = {
  on_header : header -> unit;
  on_delta : delta -> unit;
  on_finish : float -> unit;  (** called once with the final clock value *)
}

val null_sink : sink

val tee : sink list -> sink
(** Broadcasts to several sinks in order. *)

(** {2 Stored traces} *)

type t

val header : t -> header
val deltas : t -> delta array
val final_time : t -> float
val length : t -> int

val make : header -> delta list -> float -> t

val collector : unit -> sink * (unit -> t)
(** [collector ()] returns a sink and a function producing the stored
    trace once [on_finish] has been seen. The function raises
    [Invalid_argument] if the trace is incomplete. *)

val replay : t -> sink -> unit

val states : t -> (float * int array) array
(** State sequence: entry 0 is the initial state at the initial time;
    entry [i+1] is the marking after delta [i], stamped with its time.
    Each array is fresh. *)

val state_at : t -> float -> int array
(** Marking in effect at the given time (last delta at or before it). *)

val marking_after : t -> int -> int array
(** [marking_after tr i] is the marking after applying deltas [0..i-1];
    [marking_after tr 0] is the initial marking. *)

val env_after : t -> int -> (string * Pnut_core.Value.t) list
(** Variable bindings after applying deltas [0..i-1], sorted by name. *)

val in_flight_after : t -> int -> int array
(** Per-transition count of firings started but not yet ended after
    deltas [0..i-1] (the "concurrent firings" signal of the paper's
    statistics and tracer displays). *)
