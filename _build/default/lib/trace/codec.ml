exception Parse_error of int * string

let float_str f =
  (* Shortest representation that round-trips a double. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let value_str v =
  match v with
  | Pnut_core.Value.Int i -> Printf.sprintf "i%d" i
  | Pnut_core.Value.Float f -> Printf.sprintf "f%s" (float_str f)
  | Pnut_core.Value.Bool b -> if b then "btrue" else "bfalse"

let value_of_string line_no s =
  let fail msg = raise (Parse_error (line_no, msg)) in
  if String.length s < 2 then fail ("bad value: " ^ s)
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> (
      match int_of_string_opt body with
      | Some i -> Pnut_core.Value.Int i
      | None -> fail ("bad int value: " ^ s))
    | 'f' -> (
      match float_of_string_opt body with
      | Some f -> Pnut_core.Value.Float f
      | None -> fail ("bad float value: " ^ s))
    | 'b' -> (
      match body with
      | "true" -> Pnut_core.Value.Bool true
      | "false" -> Pnut_core.Value.Bool false
      | _ -> fail ("bad bool value: " ^ s))
    | _ -> fail ("bad value tag: " ^ s)

let emit_header out (h : Trace.header) =
  out "%pnut-trace 1\n";
  out (Printf.sprintf "net %s\n" h.Trace.h_net);
  Array.iteri
    (fun i name ->
      out (Printf.sprintf "place %d %s %d\n" i name h.Trace.h_initial.(i)))
    h.Trace.h_places;
  Array.iteri
    (fun i name -> out (Printf.sprintf "transition %d %s\n" i name))
    h.Trace.h_transitions;
  List.iter
    (fun (name, v) -> out (Printf.sprintf "var %s %s\n" name (value_str v)))
    h.Trace.h_variables;
  out "begin\n"

let emit_delta out (d : Trace.delta) =
  let kind = match d.Trace.d_kind with Trace.Fire_start -> "S" | Trace.Fire_end -> "E" in
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "@ %s %s %d %d" (float_str d.Trace.d_time) kind
       d.Trace.d_transition d.Trace.d_firing);
  if d.Trace.d_marking <> [] then begin
    Buffer.add_string buf " ;";
    List.iter
      (fun (p, dm) -> Buffer.add_string buf (Printf.sprintf " %d:%d" p dm))
      d.Trace.d_marking
  end;
  if d.Trace.d_env <> [] then begin
    Buffer.add_string buf " ;";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=%s" name (value_str v)))
      d.Trace.d_env
  end;
  Buffer.add_char buf '\n';
  out (Buffer.contents buf)

let emit_finish out time = out (Printf.sprintf "end %s\n" (float_str time))

let sink_of_out out =
  {
    Trace.on_header = emit_header out;
    on_delta = emit_delta out;
    on_finish = emit_finish out;
  }

let writer_sink buf = sink_of_out (Buffer.add_string buf)
let channel_sink oc = sink_of_out (output_string oc)

let write buf tr = Trace.replay tr (writer_sink buf)

let to_string tr =
  let buf = Buffer.create 4096 in
  write buf tr;
  Buffer.contents buf

let write_channel oc tr = Trace.replay tr (channel_sink oc)

(* -- parsing -- *)

type parse_state = {
  mutable net : string option;
  mutable places : (int * string * int) list;  (* reversed *)
  mutable transitions : (int * string) list;   (* reversed *)
  mutable vars : (string * Pnut_core.Value.t) list;  (* reversed *)
  mutable deltas : Trace.delta list;           (* reversed *)
  mutable final : float option;
  mutable in_body : bool;
}

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_int line_no s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Parse_error (line_no, "expected integer, got " ^ s))

let parse_float line_no s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Parse_error (line_no, "expected float, got " ^ s))

(* "@ time kind tid fid ; p:d p:d ; v=x v=x" -- the two ';' sections are
   optional but ordered: a section containing ':' entries is marking, '='
   entries env. *)
let parse_delta line_no rest =
  let sections =
    String.split_on_char ';' rest |> List.map String.trim
  in
  match sections with
  | [] -> raise (Parse_error (line_no, "empty delta"))
  | head :: extra ->
    let time, kind, tid, fid =
      match split_ws head with
      | [ t; k; tr; f ] ->
        let kind =
          match k with
          | "S" -> Trace.Fire_start
          | "E" -> Trace.Fire_end
          | _ -> raise (Parse_error (line_no, "bad event kind " ^ k))
        in
        (parse_float line_no t, kind, parse_int line_no tr, parse_int line_no f)
      | _ -> raise (Parse_error (line_no, "bad delta header: " ^ head))
    in
    let marking = ref [] in
    let env = ref [] in
    let parse_entry tok =
      match String.index_opt tok ':' with
      | Some i ->
        let p = parse_int line_no (String.sub tok 0 i) in
        let d =
          parse_int line_no (String.sub tok (i + 1) (String.length tok - i - 1))
        in
        marking := (p, d) :: !marking
      | None -> (
        match String.index_opt tok '=' with
        | Some i ->
          let name = String.sub tok 0 i in
          let v =
            value_of_string line_no
              (String.sub tok (i + 1) (String.length tok - i - 1))
          in
          env := (name, v) :: !env
        | None -> raise (Parse_error (line_no, "bad delta entry " ^ tok)))
    in
    List.iter (fun sec -> List.iter parse_entry (split_ws sec)) extra;
    {
      Trace.d_time = time;
      d_kind = kind;
      d_transition = tid;
      d_firing = fid;
      d_marking = List.rev !marking;
      d_env = List.rev !env;
    }

let feed_line st line_no line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else if not st.in_body then begin
    match split_ws line with
    | [ "%pnut-trace"; "1" ] -> ()
    | "%pnut-trace" :: v :: _ ->
      raise (Parse_error (line_no, "unsupported trace version " ^ v))
    | [ "net"; name ] -> st.net <- Some name
    | [ "place"; id; name; init ] ->
      st.places <- (parse_int line_no id, name, parse_int line_no init) :: st.places
    | [ "transition"; id; name ] ->
      st.transitions <- (parse_int line_no id, name) :: st.transitions
    | [ "var"; name; v ] ->
      st.vars <- (name, value_of_string line_no v) :: st.vars
    | [ "begin" ] -> st.in_body <- true
    | _ -> raise (Parse_error (line_no, "unexpected header line: " ^ line))
  end
  else if String.length line >= 1 && line.[0] = '@' then
    let rest = String.sub line 1 (String.length line - 1) in
    st.deltas <- parse_delta line_no rest :: st.deltas
  else
    match split_ws line with
    | [ "end"; t ] -> st.final <- Some (parse_float line_no t)
    | _ -> raise (Parse_error (line_no, "unexpected body line: " ^ line))

let finish st =
  let net =
    match st.net with
    | Some n -> n
    | None -> raise (Parse_error (0, "missing net line"))
  in
  let final =
    match st.final with
    | Some t -> t
    | None -> raise (Parse_error (0, "missing end line"))
  in
  let order l = List.sort (fun (a, _, _) (b, _, _) -> compare a b) l in
  let places = order (List.rev_map (fun (i, n, v) -> (i, n, v)) st.places) in
  let check_ids what l =
    List.iteri
      (fun expect (got, _, _) ->
        if expect <> got then
          raise (Parse_error (0, Printf.sprintf "%s ids not contiguous" what)))
      l
  in
  check_ids "place" places;
  let transitions =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.rev st.transitions)
  in
  List.iteri
    (fun expect (got, _) ->
      if expect <> got then raise (Parse_error (0, "transition ids not contiguous")))
    transitions;
  let header =
    {
      Trace.h_net = net;
      h_places = Array.of_list (List.map (fun (_, n, _) -> n) places);
      h_transitions = Array.of_list (List.map snd transitions);
      h_initial = Array.of_list (List.map (fun (_, _, v) -> v) places);
      h_variables = List.rev st.vars;
    }
  in
  Trace.make header (List.rev st.deltas) final

let fresh_state () =
  {
    net = None;
    places = [];
    transitions = [];
    vars = [];
    deltas = [];
    final = None;
    in_body = false;
  }

let parse text =
  let st = fresh_state () in
  let lines = String.split_on_char '\n' text in
  List.iteri (fun i line -> feed_line st (i + 1) line) lines;
  finish st

let read_channel ic =
  let st = fresh_state () in
  let rec go line_no =
    match input_line ic with
    | line ->
      feed_line st line_no line;
      go (line_no + 1)
    | exception End_of_file -> ()
  in
  go 1;
  finish st
