lib/anim/animator.ml: Array List Option Pnut_core Pnut_trace Printf String Unix
