lib/anim/animator.mli: Pnut_core Pnut_trace
