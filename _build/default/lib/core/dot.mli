(** Graphviz export of nets.

    The original P-NUT offered graphical editing of nets (Figures 1-4 are
    screenshots of it); this headless reproduction exports the standard
    graphical notation instead: places as circles (hexagons in P-NUT) with
    their initial tokens, transitions as boxes annotated with their
    timing, inhibitor arcs with dot arrowheads, arc weights as edge
    labels. *)

val net : Net.t -> string
(** A complete [digraph] ready for [dot -Tsvg]. *)
