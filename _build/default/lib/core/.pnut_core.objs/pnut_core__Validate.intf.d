lib/core/validate.mli: Format Net
