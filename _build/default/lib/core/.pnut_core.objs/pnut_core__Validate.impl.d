lib/core/validate.ml: Array Expr Format List Net Printf String
