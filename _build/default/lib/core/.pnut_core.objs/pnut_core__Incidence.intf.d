lib/core/incidence.mli: Format Net
