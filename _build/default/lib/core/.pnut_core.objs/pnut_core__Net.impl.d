lib/core/net.ml: Array Env Expr Float Format Hashtbl List Marking Option Printf Prng Value
