lib/core/expr.ml: Env Float Format List Printf Prng Stdlib String Value
