lib/core/prng.mli:
