lib/core/env.mli: Value
