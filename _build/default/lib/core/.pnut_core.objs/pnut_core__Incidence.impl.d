lib/core/incidence.ml: Array Format List Net Printf String
