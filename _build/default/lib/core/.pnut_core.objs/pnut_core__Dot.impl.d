lib/core/dot.ml: Array Buffer Float Format List Net Printf String
