lib/core/expr.mli: Env Format Prng Value
