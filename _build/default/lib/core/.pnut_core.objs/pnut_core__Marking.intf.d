lib/core/marking.mli: Format
