lib/core/env.ml: Array Buffer Hashtbl List Printf String Value
