lib/core/dot.mli: Net
