lib/core/marking.ml: Array Buffer Format Hashtbl Printf Stdlib
