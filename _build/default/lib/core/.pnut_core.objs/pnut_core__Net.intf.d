lib/core/net.mli: Env Expr Format Marking Prng Value
