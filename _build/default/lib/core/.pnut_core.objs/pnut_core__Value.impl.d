lib/core/value.ml: Float Format Printf
