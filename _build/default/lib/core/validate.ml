type severity =
  | Error
  | Warning

type diagnostic = {
  severity : severity;
  subject : string;
  message : string;
}

exception Invalid_model of string

let diag severity subject fmt =
  Printf.ksprintf (fun message -> { severity; subject; message }) fmt

(* Variables available to expressions: model variables plus none implicit. *)
let unbound_names net expr =
  let bound = List.map fst (Net.variables net) in
  List.filter (fun v -> not (List.mem v bound)) (Expr.variables expr)

let rec expr_tables acc = function
  | Expr.Const _ | Expr.Var _ -> acc
  | Expr.Index (tbl, e) -> expr_tables (tbl :: acc) e
  | Expr.Unop (_, e) -> expr_tables acc e
  | Expr.Binop (_, a, b) -> expr_tables (expr_tables acc a) b
  | Expr.If (a, b, c) -> expr_tables (expr_tables (expr_tables acc a) b) c
  | Expr.Call (_, args) -> List.fold_left expr_tables acc args

let unbound_tables net expr =
  let bound = List.map fst (Net.tables net) in
  expr_tables [] expr
  |> List.sort_uniq String.compare
  |> List.filter (fun t -> not (List.mem t bound))

let check_expr net subject what expr =
  let vars =
    List.map
      (fun v -> diag Error subject "%s refers to unbound variable %s" what v)
      (unbound_names net expr)
  in
  let tbls =
    List.map
      (fun t -> diag Error subject "%s refers to unbound table %s" what t)
      (unbound_tables net expr)
  in
  vars @ tbls

let check_stmt net subject s =
  match s with
  | Expr.Assign (_, e) -> check_expr net subject "action" e
  | Expr.Table_assign (tbl, i, e) ->
    let known = List.map fst (Net.tables net) in
    let head =
      if List.mem tbl known then []
      else [ diag Error subject "action writes unbound table %s" tbl ]
    in
    head @ check_expr net subject "action" i @ check_expr net subject "action" e

let check_duration net subject what = function
  | Net.Zero | Net.Const _ -> []
  | Net.Uniform (lo, hi) ->
    if lo < 0.0 || hi < lo then
      [ diag Error subject "%s has an invalid uniform range [%g,%g]" what lo hi ]
    else []
  | Net.Exponential mean ->
    if mean <= 0.0 then
      [ diag Error subject "%s has non-positive exponential mean %g" what mean ]
    else []
  | Net.Choice items ->
    if items = [] then [ diag Error subject "%s has an empty choice" what ]
    else
      List.concat_map
        (fun (v, w) ->
          let bad_v =
            if v < 0.0 then
              [ diag Error subject "%s choice value %g is negative" what v ]
            else []
          in
          let bad_w =
            if w <= 0.0 then
              [ diag Error subject "%s choice weight %g is not positive" what w ]
            else []
          in
          bad_v @ bad_w)
        items
  | Net.Dynamic e -> check_expr net subject what e

let check_transition net t =
  let subject = t.Net.t_name in
  let no_brake =
    if t.Net.t_inputs = [] && t.Net.t_inhibitors = []
       && t.Net.t_predicate = None
    then
      [ diag Warning subject
          "transition has no input, inhibitor or predicate: it is always \
           enabled" ]
    else []
  in
  let timing =
    check_duration net subject "firing time" t.Net.t_firing
    @ check_duration net subject "enabling time" t.Net.t_enabling
  in
  let predicate =
    match t.Net.t_predicate with
    | None -> []
    | Some p -> check_expr net subject "predicate" p
  in
  let action = List.concat_map (check_stmt net subject) t.Net.t_action in
  no_brake @ timing @ predicate @ action

let check_places net =
  let np = Net.num_places net in
  let written = Array.make np false in
  let read = Array.make np false in
  let note field arcs =
    List.iter (fun { Net.a_place; _ } -> field.(a_place) <- true) arcs
  in
  Array.iter
    (fun t ->
      note written t.Net.t_outputs;
      note read t.Net.t_inputs;
      note read t.Net.t_inhibitors)
    (Net.transitions net);
  Array.to_list (Net.places net)
  |> List.concat_map (fun p ->
         let subject = p.Net.p_name in
         let dead_source =
           if (not written.(p.Net.p_id)) && p.Net.p_initial = 0
              && read.(p.Net.p_id)
           then
             [ diag Warning subject
                 "place is read but never marked: consumers are dead" ]
           else []
         in
         let write_only =
           if (not read.(p.Net.p_id)) && written.(p.Net.p_id) then
             [ diag Warning subject "place is written but never read" ]
           else []
         in
         let isolated =
           if (not read.(p.Net.p_id)) && not written.(p.Net.p_id) then
             [ diag Warning subject "place is not connected to any transition" ]
           else []
         in
         dead_source @ write_only @ isolated)

let check net =
  let diags =
    check_places net
    @ List.concat_map (check_transition net) (Array.to_list (Net.transitions net))
  in
  let order d = match d.severity with Error -> 0 | Warning -> 1 in
  List.stable_sort (fun a b -> compare (order a) (order b)) diags

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)

let pp_diagnostic ppf d =
  let tag = match d.severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "%s: %s: %s" tag d.subject d.message

let assert_valid net =
  match errors (check net) with
  | [] -> ()
  | errs ->
    let msg =
      String.concat "\n"
        (List.map (fun d -> Format.asprintf "%a" pp_diagnostic d) errs)
    in
    raise (Invalid_model msg)
