let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let duration_label prefix = function
  | Net.Zero -> ""
  | d -> Format.asprintf "\\n%s %a" prefix Net.pp_duration d

let net n =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph \"%s\" {\n" (escape (Net.name n));
  out "  rankdir=LR;\n";
  out "  node [fontname=\"Helvetica\"];\n";
  Array.iter
    (fun p ->
      let tokens =
        if p.Net.p_initial = 0 then ""
        else Printf.sprintf "\\n%d" p.Net.p_initial
      in
      out "  \"p_%s\" [shape=circle label=\"%s%s\"];\n" (escape p.Net.p_name)
        (escape p.Net.p_name) tokens)
    (Net.places n);
  Array.iter
    (fun tr ->
      let timing =
        duration_label "firing" tr.Net.t_firing
        ^ duration_label "enabling" tr.Net.t_enabling
      in
      let freq =
        if Float.equal tr.Net.t_frequency 1.0 then ""
        else Printf.sprintf "\\nfreq %g" tr.Net.t_frequency
      in
      out "  \"t_%s\" [shape=box style=filled fillcolor=lightgrey label=\"%s%s%s\"];\n"
        (escape tr.Net.t_name) (escape tr.Net.t_name) timing freq)
    (Net.transitions n);
  let edge src dst weight attrs =
    let label = if weight = 1 then "" else Printf.sprintf " label=\"%d\"" weight in
    out "  %s -> %s [%s%s];\n" src dst attrs label
  in
  Array.iter
    (fun tr ->
      let t_node = Printf.sprintf "\"t_%s\"" (escape tr.Net.t_name) in
      List.iter
        (fun { Net.a_place; a_weight } ->
          let p = (Net.place n a_place).Net.p_name in
          edge (Printf.sprintf "\"p_%s\"" (escape p)) t_node a_weight "")
        tr.Net.t_inputs;
      List.iter
        (fun { Net.a_place; a_weight } ->
          let p = (Net.place n a_place).Net.p_name in
          edge t_node (Printf.sprintf "\"p_%s\"" (escape p)) a_weight "")
        tr.Net.t_outputs;
      List.iter
        (fun { Net.a_place; a_weight } ->
          let p = (Net.place n a_place).Net.p_name in
          edge
            (Printf.sprintf "\"p_%s\"" (escape p))
            t_node a_weight "arrowhead=odot color=red")
        tr.Net.t_inhibitors)
    (Net.transitions n);
  out "}\n";
  Buffer.contents buf
