(** Structural validation and sanity diagnostics for nets.

    The paper's Section 4.4 motivates catching modeling bugs (e.g. "a
    non-zero timing in a transition" breaking a mutual-exclusion pair)
    before trusting performance numbers.  These checks are static; dynamic
    verification lives in [Pnut_tracer] and [Pnut_reach]. *)

type severity =
  | Error    (** the net cannot behave meaningfully *)
  | Warning  (** suspicious, frequently a modeling mistake *)

type diagnostic = {
  severity : severity;
  subject : string;  (** place or transition name, or "net" *)
  message : string;
}

val check : Net.t -> diagnostic list
(** All diagnostics, errors first.  Checks include:
    - transitions with no input and no inhibitor arcs (fire forever at
      time zero unless timed),
    - zero-delay transitions whose inputs are all initially marked
      self-loops (instantaneous livelock candidates),
    - places never written by any transition and not initially marked
      feeding inputs (dead inputs),
    - places never read (write-only; often a model typo),
    - dynamic durations referring to unbound variables,
    - predicates/actions referring to unbound variables or tables,
    - capacity declarations violated by the initial marking. *)

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val assert_valid : Net.t -> unit
(** Raises [Invalid_model] carrying the rendered errors if [check]
    reports any [Error]. *)

exception Invalid_model of string
