(** The P-NUT simulation engine.

    "The P-NUT simulator is a simple simulation engine which pushes tokens
    around a Timed Petri Net. [...] The simulator simply generates a
    trace."  Analysis is left to downstream tools consuming the trace
    through a {!Pnut_trace.Trace.sink}.

    {2 Semantics}

    - A transition is {e enabled} when every input place holds at least
      the arc weight, every inhibitor place holds fewer tokens than the
      arc weight, and its predicate (if any) evaluates to true.
    - {e Enabling time}: when a transition becomes enabled its enabling
      delay is sampled; it becomes {e fireable} after remaining
      continuously enabled for that long.  Disabling or firing resets the
      clock (restart policy, single enabling clock per transition).
    - {e Firing time}: at fire-start the input tokens are consumed
      (a [Fire_start] delta); at fire-end, after the sampled firing
      duration, output tokens are produced and the action runs (a
      [Fire_end] delta).  During firing, tokens are on neither side, as in
      the paper.  Zero firing time produces both deltas at the same
      instant.  A transition may accumulate several in-flight firings.
    - {e Conflicts} among simultaneously fireable transitions are resolved
      probabilistically: each is chosen with probability proportional to
      its relative firing frequency among the currently fireable set,
      recomputed after every firing (the dynamic semantics of [WPS86]).
    - Actions may assign scalars ([x = e]) and table slots
      ([tbl[i] = e]); both are recorded in the trace ([tbl[i]] appears as
      a variable named ["tbl[3]"]).

    A per-instant firing cap (default [10_000]) turns zero-delay livelocks
    into a [Sim_error] instead of a hang. *)

type t
(** Simulation state: net, marking, environment, clock, future events. *)

val create :
  ?seed:int ->
  ?prng:Pnut_core.Prng.t ->
  ?sink:Pnut_trace.Trace.sink ->
  ?max_instant_firings:int ->
  ?check_capacities:bool ->
  Pnut_core.Net.t -> t
(** Builds the initial state and emits the trace header to [sink].
    [prng] overrides [seed] (default seed 1).  With [check_capacities]
    (default false), exceeding a place's declared capacity raises
    [Sim_error] naming the place and the culprit transition — capacity
    declarations are otherwise documentation checked only by static and
    reachability analyses. *)

val net : t -> Pnut_core.Net.t
val clock : t -> float
val marking : t -> Pnut_core.Marking.t
(** A copy of the current marking. *)

val tokens : t -> string -> int
(** Current token count of a place by name. Raises [Not_found]. *)

val env : t -> Pnut_core.Env.t
(** The live environment (mutating it affects the run). *)

val in_flight : t -> int array
(** Current number of unfinished firings per transition id. *)

val events_started : t -> int
val events_finished : t -> int

(** One micro-step of the engine. *)
type step_result =
  | Fired of Pnut_core.Net.transition_id
      (** a firing started (and, for zero firing time, also ended) *)
  | Completed of Pnut_core.Net.transition_id
      (** an in-flight firing ended *)
  | Advanced of float  (** clock moved to the given time; nothing fired *)
  | Quiescent
      (** no enabled transition and no pending event: the net is dead *)

val step : t -> step_result

val fireable_transitions : t -> Pnut_core.Net.transition_id list
(** Transitions that could start firing at the current instant (enabled
    with their enabling delay elapsed). *)

val fire_transition : t -> Pnut_core.Net.transition_id -> unit
(** Manually resolve the current conflict: start firing this specific
    transition instead of drawing one probabilistically (interactive
    state-space exploration).  Raises [Invalid_argument] if it is not
    currently fireable. *)

(** Why a run stopped. *)
type stop_reason =
  | Horizon     (** the [until] time was reached *)
  | Dead        (** quiescence: deadlock or terminated net *)
  | Event_limit (** [max_events] firings started *)

type outcome = {
  stop : stop_reason;
  final_clock : float;
  started : int;
  finished : int;
}

val run : ?until:float -> ?max_events:int -> t -> outcome
(** Runs until the horizon, the event limit, or quiescence; emits
    [on_finish] to the sink.  When the horizon is hit, the final clock is
    exactly [until] (in-flight events beyond it stay unprocessed).  At
    least one of [until] and [max_events] must be given. *)

val simulate :
  ?seed:int ->
  ?prng:Pnut_core.Prng.t ->
  ?max_instant_firings:int ->
  ?until:float ->
  ?max_events:int ->
  ?sink:Pnut_trace.Trace.sink ->
  Pnut_core.Net.t -> outcome
(** [create] + [run] in one call. *)

val trace :
  ?seed:int ->
  ?until:float ->
  ?max_events:int ->
  Pnut_core.Net.t -> Pnut_trace.Trace.t * outcome
(** Convenience: simulate into an in-memory trace. *)

val replications :
  ?seed:int ->
  runs:int ->
  ?until:float ->
  ?max_events:int ->
  Pnut_core.Net.t ->
  (int -> Pnut_trace.Trace.sink) -> outcome list
(** Independent replications: run [runs] experiments with split random
    streams; the callback provides a sink per run index (the paper's
    "one or more simulation experiments"). *)

exception Sim_error of string
