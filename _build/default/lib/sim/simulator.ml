module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Prng = Pnut_core.Prng
module Trace = Pnut_trace.Trace

exception Sim_error of string

let sim_error fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

type pending = {
  pe_transition : Net.transition_id;
  pe_firing : int;
}

type t = {
  net : Net.t;
  prng : Prng.t;
  sink : Trace.sink;
  max_instant_firings : int;
  check_capacities : bool;
  marking : Marking.t;
  env : Env.t;
  mutable clock : float;
  queue : pending Event_queue.t;
  (* enabling bookkeeping *)
  deadline : float option array;  (* per transition: time it may fire *)
  in_flight : int array;
  (* incremental-refresh indexes: which transitions read each place
     (input or inhibitor arcs), and which carry predicates (affected by
     any environment change) *)
  readers : Net.transition_id list array;  (* per place, ascending *)
  predicated : Net.transition_id list;     (* ascending *)
  mutable next_firing_id : int;
  mutable started : int;
  mutable finished : int;
  mutable instant_firings : int;  (* firings at the current clock value *)
  mutable finished_emitted : bool;
}

let net st = st.net
let clock st = st.clock
let marking st = Marking.copy st.marking
let env st = st.env
let in_flight st = Array.copy st.in_flight
let events_started st = st.started
let events_finished st = st.finished

let tokens st name = Marking.get st.marking (Net.place_id st.net name)

(* Re-evaluate enabledness and maintain enabling deadlines for one
   transition: newly enabled transitions sample their enabling delay,
   newly disabled ones lose their deadline, continuously enabled ones
   keep it. *)
let refresh_one st tr =
  let id = tr.Net.t_id in
  let is_enabled = Net.enabled st.net st.marking st.env tr in
  match st.deadline.(id), is_enabled with
  | Some _, true -> ()
  | Some _, false -> st.deadline.(id) <- None
  | None, false -> ()
  | None, true ->
    let d = Net.sample_duration ~prng:st.prng st.env tr.Net.t_enabling in
    st.deadline.(id) <- Some (st.clock +. d)

let refresh_enabling st =
  Array.iter (refresh_one st) (Net.transitions st.net)

(* Incremental refresh after a firing touched only [places] (and, when
   [env_changed], the model variables): only transitions reading a
   touched place or carrying a predicate can change enabledness.
   Processed in ascending id order — the same order as the full scan —
   so the random enabling-delay draws are identical to a full refresh
   and traces are bit-for-bit reproducible either way. *)
let refresh_after st ~places ~env_changed =
  let affected = Array.make (Net.num_transitions st.net) false in
  List.iter
    (fun p -> List.iter (fun tid -> affected.(tid) <- true) st.readers.(p))
    places;
  if env_changed then
    List.iter (fun tid -> affected.(tid) <- true) st.predicated;
  Array.iteri
    (fun tid hit -> if hit then refresh_one st (Net.transition st.net tid))
    affected

let create ?(seed = 1) ?prng ?(sink = Trace.null_sink)
    ?(max_instant_firings = 10_000) ?(check_capacities = false) net =
  let prng = match prng with Some g -> g | None -> Prng.create seed in
  let st =
    {
      net;
      prng;
      sink;
      max_instant_firings;
      check_capacities;
      marking = Net.initial_marking net;
      env = Net.initial_env net;
      clock = 0.0;
      queue = Event_queue.create ();
      deadline = Array.make (Net.num_transitions net) None;
      in_flight = Array.make (Net.num_transitions net) 0;
      readers =
        (let idx = Array.make (Net.num_places net) [] in
         (* build in descending id order so each list ends up ascending *)
         for i = Net.num_transitions net - 1 downto 0 do
           let tr = Net.transition net i in
           let note { Net.a_place; _ } =
             match idx.(a_place) with
             | hd :: _ when hd = i -> ()
             | l -> idx.(a_place) <- i :: l
           in
           List.iter note tr.Net.t_inputs;
           List.iter note tr.Net.t_inhibitors
         done;
         idx);
      predicated =
        Array.to_list (Net.transitions net)
        |> List.filter_map (fun tr ->
               if tr.Net.t_predicate <> None then Some tr.Net.t_id else None);
      next_firing_id = 0;
      started = 0;
      finished = 0;
      instant_firings = 0;
      finished_emitted = false;
    }
  in
  sink.Trace.on_header (Trace.header_of_net net);
  refresh_enabling st;
  st

(* Transitions that are enabled and whose enabling deadline has passed. *)
let fireable st =
  let acc = ref [] in
  Array.iter
    (fun tr ->
      match st.deadline.(tr.Net.t_id) with
      | Some d when d <= st.clock -> acc := tr :: !acc
      | Some _ | None -> ())
    (Net.transitions st.net);
  List.rev !acc

(* Run an action, recording every assignment for the trace delta.  Table
   writes are recorded under the pseudo-variable name "tbl[i]". *)
let run_action st stmts =
  let changes = ref [] in
  let record name v = changes := (name, v) :: !changes in
  let run = function
    | Expr.Assign (name, e) ->
      let v = Expr.eval ~prng:st.prng st.env e in
      Env.set st.env name v;
      record name v
    | Expr.Table_assign (tbl, ie, e) -> (
      let i = Expr.eval_int ~prng:st.prng st.env ie in
      let v = Expr.eval ~prng:st.prng st.env e in
      try
        Env.table_set st.env tbl i v;
        record (Printf.sprintf "%s[%d]" tbl i) v
      with
      | Env.Unbound name -> sim_error "action writes unbound table %s" name
      | Invalid_argument msg -> sim_error "%s" msg)
  in
  List.iter run stmts;
  List.rev !changes

let emit_delta st kind tr firing marking_changes env_changes =
  st.sink.Trace.on_delta
    {
      Trace.d_time = st.clock;
      d_kind = kind;
      d_transition = tr.Net.t_id;
      d_firing = firing;
      d_marking = marking_changes;
      d_env = env_changes;
    }

(* Merge (place, delta) lists, summing deltas per place and dropping
   zero entries (self-loops). *)
let merge_changes a b =
  let tbl = Hashtbl.create 8 in
  let add (p, d) =
    Hashtbl.replace tbl p (d + try Hashtbl.find tbl p with Not_found -> 0)
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun p d acc -> if d = 0 then acc else (p, d) :: acc) tbl []
  |> List.sort compare

(* Capacity declarations are documentation by default; with
   [check_capacities] the simulator turns an overflow into a loud
   modeling-bug report at the moment it happens. *)
let enforce_capacities st tr =
  if st.check_capacities then
    List.iter
      (fun { Net.a_place; _ } ->
        let p = Net.place st.net a_place in
        match p.Net.p_capacity with
        | Some cap when Marking.get st.marking a_place > cap ->
          sim_error
            "capacity violation: place %s holds %d tokens (capacity %d) \
             after %s fired at t=%g"
            p.Net.p_name
            (Marking.get st.marking a_place)
            cap tr.Net.t_name st.clock
        | Some _ | None -> ())
      tr.Net.t_outputs

let complete_firing ?(extra_changes = []) st tr firing =
  Net.produce st.net st.marking tr;
  enforce_capacities st tr;
  let env_changes = run_action st tr.Net.t_action in
  let produced =
    List.map (fun { Net.a_place; a_weight } -> (a_place, a_weight)) tr.Net.t_outputs
  in
  st.in_flight.(tr.Net.t_id) <- st.in_flight.(tr.Net.t_id) - 1;
  st.finished <- st.finished + 1;
  emit_delta st Trace.Fire_end tr firing (merge_changes extra_changes produced)
    env_changes;
  refresh_after st
    ~places:(List.map (fun a -> a.Net.a_place) tr.Net.t_outputs)
    ~env_changed:(tr.Net.t_action <> [])

(* Starting a firing consumes the input tokens.  For a positive firing
   time this is observable (tokens are on neither side while the
   transition fires) so the Fire_start delta reports the consumption; a
   zero firing time is atomic in the paper's semantics, so the Fire_start
   delta is empty and the paired Fire_end delta carries the net marking
   change — no intermediate trace state ever violates invariants such as
   Bus_free + Bus_busy = 1. *)
let start_firing st tr =
  Net.consume st.net st.marking tr;
  let firing = st.next_firing_id in
  st.next_firing_id <- st.next_firing_id + 1;
  st.started <- st.started + 1;
  st.in_flight.(tr.Net.t_id) <- st.in_flight.(tr.Net.t_id) + 1;
  let consumed =
    List.map
      (fun { Net.a_place; a_weight } -> (a_place, -a_weight))
      tr.Net.t_inputs
  in
  (* The fired transition's own enabling clock restarts. *)
  st.deadline.(tr.Net.t_id) <- None;
  let consumed_places = List.map (fun a -> a.Net.a_place) tr.Net.t_inputs in
  let duration = Net.sample_duration ~prng:st.prng st.env tr.Net.t_firing in
  if duration <= 0.0 then begin
    emit_delta st Trace.Fire_start tr firing [] [];
    refresh_after st ~places:consumed_places ~env_changed:false;
    complete_firing ~extra_changes:consumed st tr firing
  end
  else begin
    emit_delta st Trace.Fire_start tr firing consumed [];
    Event_queue.push st.queue (st.clock +. duration)
      { pe_transition = tr.Net.t_id; pe_firing = firing };
    refresh_after st ~places:consumed_places ~env_changed:false
  end;
  tr.Net.t_id

type step_result =
  | Fired of Net.transition_id
  | Completed of Net.transition_id
  | Advanced of float
  | Quiescent

(* Earliest instant at which something can happen after the current one:
   the next scheduled fire-end or the earliest pending enabling deadline. *)
let next_instant st =
  let candidates = ref [] in
  (match Event_queue.peek_time st.queue with
  | Some t -> candidates := t :: !candidates
  | None -> ());
  Array.iter
    (fun deadline ->
      match deadline with
      | Some d when d > st.clock -> candidates := d :: !candidates
      | Some _ | None -> ())
    st.deadline;
  match !candidates with
  | [] -> None
  | first :: rest -> Some (List.fold_left Float.min first rest)

let step st =
  match fireable st with
  | _ :: _ as ready ->
    if st.instant_firings >= st.max_instant_firings then
      sim_error
        "livelock: more than %d firings at time %g (zero-delay loop?)"
        st.max_instant_firings st.clock;
    st.instant_firings <- st.instant_firings + 1;
    let weighted = List.map (fun tr -> (tr, tr.Net.t_frequency)) ready in
    let chosen = Prng.choose_weighted st.prng weighted in
    Fired (start_firing st chosen)
  | [] -> (
    match Event_queue.pop st.queue with
    | Some (time, pe) when Float.equal time st.clock ->
      let tr = Net.transition st.net pe.pe_transition in
      complete_firing st tr pe.pe_firing;
      Completed pe.pe_transition
    | Some (time, pe) ->
      (* strictly in the future: advance the clock first, re-queue *)
      Event_queue.push st.queue time pe;
      (match next_instant st with
      | Some t ->
        assert (t > st.clock);
        st.clock <- t;
        st.instant_firings <- 0;
        Advanced t
      | None -> assert false)
    | None -> (
      match next_instant st with
      | Some t when t > st.clock ->
        st.clock <- t;
        st.instant_firings <- 0;
        Advanced t
      | Some _ ->
        (* a deadline at the current instant with nothing fireable cannot
           happen: fireable covers deadlines <= clock *)
        assert false
      | None -> Quiescent))

let fireable_transitions st = List.map (fun tr -> tr.Net.t_id) (fireable st)

let fire_transition st tid =
  let ready = fireable st in
  match List.find_opt (fun tr -> tr.Net.t_id = tid) ready with
  | Some tr -> ignore (start_firing st tr : Net.transition_id)
  | None ->
    invalid_arg
      (Printf.sprintf "Simulator.fire_transition: %s is not fireable now"
         (Net.transition st.net tid).Net.t_name)

type stop_reason =
  | Horizon
  | Dead
  | Event_limit

type outcome = {
  stop : stop_reason;
  final_clock : float;
  started : int;
  finished : int;
}

let finish st final_clock =
  if not st.finished_emitted then begin
    st.finished_emitted <- true;
    st.sink.Trace.on_finish final_clock
  end

let run ?until ?max_events (st : t) =
  if until = None && max_events = None then
    invalid_arg "Simulator.run: needs a horizon or an event limit";
  let horizon = Option.value until ~default:infinity in
  let limit = Option.value max_events ~default:max_int in
  let rec loop () =
    if st.started >= limit then begin
      finish st st.clock;
      { stop = Event_limit; final_clock = st.clock; started = st.started;
        finished = st.finished }
    end
    else
      (* Peek whether the next instant would overshoot the horizon. *)
      match fireable st with
      | _ :: _ ->
        ignore (step st);
        loop ()
      | [] -> (
        match next_instant st with
        | Some t when t > horizon ->
          st.clock <- horizon;
          finish st horizon;
          { stop = Horizon; final_clock = horizon; started = st.started;
            finished = st.finished }
        | Some _ ->
          ignore (step st);
          loop ()
        | None ->
          let final =
            if Float.is_finite horizon then horizon else st.clock
          in
          st.clock <- final;
          finish st final;
          { stop = Dead; final_clock = final; started = st.started;
            finished = st.finished })
  in
  loop ()

let simulate ?seed ?prng ?max_instant_firings ?until ?max_events ?sink net =
  let st = create ?seed ?prng ?sink ?max_instant_firings net in
  run ?until ?max_events st

let trace ?seed ?until ?max_events net =
  let sink, get = Trace.collector () in
  let outcome = simulate ?seed ?until ?max_events ~sink net in
  (get (), outcome)

let replications ?(seed = 1) ~runs ?until ?max_events net make_sink =
  if runs <= 0 then invalid_arg "Simulator.replications: runs must be positive";
  let master = Prng.create seed in
  List.init runs (fun i ->
      let prng = Prng.split master in
      simulate ~prng ?until ?max_events ~sink:(make_sink i) net)
