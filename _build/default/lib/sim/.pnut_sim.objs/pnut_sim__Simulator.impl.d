lib/sim/simulator.ml: Array Event_queue Float Hashtbl List Option Pnut_core Pnut_trace Printf
