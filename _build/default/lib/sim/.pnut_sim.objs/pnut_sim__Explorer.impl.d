lib/sim/explorer.ml: Array List Pnut_core Printf Simulator String
