lib/sim/simulator.mli: Pnut_core Pnut_trace
