lib/sim/explorer.mli: Pnut_core
