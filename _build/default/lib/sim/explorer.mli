(** Interactive state-space exploration.

    A command REPL over a live simulation, after the interactive
    state-space analysis style of [MR87]: inspect the state, see what is
    enabled, resolve conflicts by hand (or let the engine draw), advance
    time, and replay from the start.  Driven through channels so the CLI
    can attach a terminal and tests can attach pipes.

    Commands (one per line; [#] comments and blank lines ignored):
    {v
    show              clock, marking and variables
    enabled           fireable transitions now, and pending enabling clocks
    fire NAME         fire a specific fireable transition
    step              one engine micro-step (random conflict resolution)
    run T             simulate for T more time units
    back              undo the last state-changing command (deterministic
                      replay from the initial state, so arbitrarily deep)
    history           the state-changing commands so far
    reset             back to the initial state (same seed)
    help              command summary
    quit              leave the explorer
    v} *)

val run :
  ?seed:int -> Pnut_core.Net.t -> in_channel -> out_channel -> unit
(** Reads commands until [quit] or end of input; never raises on bad
    commands (they are reported to the output channel). *)
