lib/reach/ctl.mli: Graph Pnut_core
