lib/reach/coverability.ml: Array Buffer Format Hashtbl List Pnut_core Printf String
