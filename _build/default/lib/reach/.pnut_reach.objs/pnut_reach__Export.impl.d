lib/reach/export.ml: Array Buffer Coverability Graph List Pnut_core Printf String
