lib/reach/export.mli: Coverability Graph Pnut_core
