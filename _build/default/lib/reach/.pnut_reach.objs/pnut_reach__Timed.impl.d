lib/reach/timed.ml: Array Buffer Float Format Hashtbl List Pnut_core Printf Queue Set
