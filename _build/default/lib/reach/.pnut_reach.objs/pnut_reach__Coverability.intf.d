lib/reach/coverability.mli: Format Pnut_core
