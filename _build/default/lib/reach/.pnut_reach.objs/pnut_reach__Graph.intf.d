lib/reach/graph.mli: Format Pnut_core
