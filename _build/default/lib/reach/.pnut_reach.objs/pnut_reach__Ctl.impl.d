lib/reach/ctl.ml: Array Graph List Pnut_core Printf
