lib/reach/graph.ml: Array Format Hashtbl List Pnut_core Queue String
