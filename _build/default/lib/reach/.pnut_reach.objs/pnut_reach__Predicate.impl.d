lib/reach/predicate.ml: Array Ctl Graph List Pnut_tracer
