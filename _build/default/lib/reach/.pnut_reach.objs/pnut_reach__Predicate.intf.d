lib/reach/predicate.mli: Graph Pnut_tracer
