lib/reach/timed.mli: Format Pnut_core
