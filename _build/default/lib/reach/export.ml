module Net = Pnut_core.Net

let marking_label net marking =
  let parts = ref [] in
  Array.iteri
    (fun p count ->
      if count > 0 then begin
        let name = (Net.place net p).Net.p_name in
        parts :=
          (if count = 1 then name else Printf.sprintf "%d.%s" count name)
          :: !parts
      end)
    marking;
  match List.rev !parts with
  | [] -> "(empty)"
  | l -> String.concat "\\n" l

let graph_dot g =
  let net = Graph.net g in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph reachability {\n  node [fontname=\"Helvetica\" shape=ellipse];\n";
  for i = 0 to Graph.num_states g - 1 do
    let s = Graph.state g i in
    let attrs =
      if i = Graph.initial g then " peripheries=2"
      else if Graph.successors g i = [] then " style=filled fillcolor=lightpink"
      else ""
    in
    out "  s%d [label=\"#%d\\n%s\"%s];\n" i i
      (marking_label net s.Graph.s_marking)
      attrs
  done;
  List.iter
    (fun e ->
      out "  s%d -> s%d [label=\"%s\"];\n" e.Graph.e_from e.Graph.e_to
        (Net.transition net e.Graph.e_transition).Net.t_name)
    (Graph.edges g);
  out "}\n";
  Buffer.contents buf

let coverability_dot net g =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph coverability {\n  node [fontname=\"Helvetica\" shape=ellipse];\n";
  for i = 0 to Coverability.num_nodes g - 1 do
    let nd = Coverability.node g i in
    let parts = ref [] in
    let has_omega = ref false in
    Array.iteri
      (fun p t ->
        let name = (Net.place net p).Net.p_name in
        match t with
        | Coverability.Omega ->
          has_omega := true;
          parts := (name ^ ":ω") :: !parts
        | Coverability.Finite c when c > 0 ->
          parts := Printf.sprintf "%s:%d" name c :: !parts
        | Coverability.Finite _ -> ())
      nd.Coverability.n_marking;
    let label =
      match List.rev !parts with [] -> "(empty)" | l -> String.concat "\\n" l
    in
    let attrs =
      if !has_omega then " style=filled fillcolor=khaki" else ""
    in
    out "  n%d [label=\"%s\"%s];\n" i label attrs
  done;
  List.iter
    (fun e ->
      out "  n%d -> n%d [label=\"%s\"];\n" e.Coverability.e_from
        e.Coverability.e_to
        (Net.transition net e.Coverability.e_transition).Net.t_name)
    (Coverability.edges g);
  out "}\n";
  Buffer.contents buf
