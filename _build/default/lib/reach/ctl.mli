(** Branching-time temporal logic over reachability graphs.

    This is the verification side of the P-NUT reachability graph
    analyzer [MR87]: "users enter high-level specification of the
    expected behavior of a system in first-order predicate calculus and
    in branching time temporal logic. The analyzer then determines if all
    possible behaviors of the system meet the high level specification."

    Atoms are boolean expressions over place names (token counts) and
    model variables.  Deadlock states are completed with an implicit
    self-loop so that path quantifiers range over infinite paths
    (a terminated system stays in its final state forever).

    The paper's [inev(s, f, true)] is {!AF}[ f]. *)

type formula =
  | True
  | False
  | Atom of Pnut_core.Expr.t  (** boolean over places / variables *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | EX of formula             (** some successor *)
  | AX of formula             (** all successors *)
  | EF of formula             (** some path eventually *)
  | AF of formula             (** all paths eventually — [inev] *)
  | EG of formula             (** some path always *)
  | AG of formula             (** all paths always — invariance *)
  | EU of formula * formula   (** E[f U g] *)
  | AU of formula * formula   (** A[f U g] *)

val inev : formula -> formula
(** Alias for {!AF}. *)

val sat : Graph.t -> formula -> bool array
(** Truth value of the formula at every state. *)

val check : Graph.t -> formula -> bool
(** Does the formula hold in the initial state?  Raises
    [Invalid_argument] if the graph is truncated (a capped graph cannot
    certify branching-time properties). *)

val counterexample : Graph.t -> formula -> int option
(** First state (BFS order) where the formula fails, if any. *)

exception Ctl_error of string
