(** Graphviz export of reachability structures. *)

val graph_dot : Graph.t -> string
(** Untimed reachability graph: states labelled with their markings
    (non-empty places only), edges with transition names; the initial
    state is doubly circled, deadlocks are shaded. *)

val coverability_dot : Pnut_core.Net.t -> Coverability.t -> string
(** Coverability nodes with [ω] entries highlighted. *)
