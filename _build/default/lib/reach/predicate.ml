module Query = Pnut_tracer.Query

let rec to_ctl (f : Query.formula) : Ctl.formula =
  match f with
  | Query.Atom e -> Ctl.Atom e
  | Query.Not g -> Ctl.Not (to_ctl g)
  | Query.And (a, b) -> Ctl.And (to_ctl a, to_ctl b)
  | Query.Or (a, b) -> Ctl.Or (to_ctl a, to_ctl b)
  | Query.Implies (a, b) -> Ctl.Implies (to_ctl a, to_ctl b)
  | Query.Inev g -> Ctl.AF (to_ctl g)
  | Query.Alw g -> Ctl.AG (to_ctl g)

let sat g f =
  try Ctl.sat g (to_ctl f)
  with Ctl.Ctl_error msg -> raise (Query.Query_error msg)

let eval g query =
  if not (Graph.complete g) then
    invalid_arg "Reach.Predicate.eval: reachability graph was truncated";
  let n = Graph.num_states g in
  let domain_member (d : Query.domain) =
    let filter =
      match d.Query.such_that with
      | Some f -> sat g f
      | None -> Array.make n true
    in
    fun i -> filter.(i) && not (List.mem i d.Query.except)
  in
  match query with
  | Query.Forall (d, f) ->
    let member = domain_member d in
    let truth = sat g f in
    let rec go i saw_any =
      if i >= n then if saw_any then Query.Holds None else Query.Vacuous
      else if member i then
        if truth.(i) then go (i + 1) true else Query.Fails (Some i)
      else go (i + 1) saw_any
    in
    go 0 false
  | Query.Exists (d, f) ->
    let member = domain_member d in
    let truth = sat g f in
    let rec go i =
      if i >= n then Query.Fails None
      else if member i && truth.(i) then Query.Holds (Some i)
      else go (i + 1)
    in
    go 0

let holds g query = Query.holds (eval g query)
