module Net = Pnut_core.Net
module Expr = Pnut_core.Expr
module Env = Pnut_core.Env
module Value = Pnut_core.Value

exception Ctl_error of string

type formula =
  | True
  | False
  | Atom of Expr.t
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | EX of formula
  | AX of formula
  | EF of formula
  | AF of formula
  | EG of formula
  | AG of formula
  | EU of formula * formula
  | AU of formula * formula

let inev f = AF f

(* Successor state indices, with an implicit self-loop at deadlocks. *)
let successor_ids g i =
  match Graph.successors g i with
  | [] -> [ i ]
  | l -> List.map (fun e -> e.Graph.e_to) l

let predecessor_ids g i =
  let explicit = List.map (fun e -> e.Graph.e_from) (Graph.predecessors g i) in
  if Graph.successors g i = [] then i :: explicit else explicit

let eval_atom g e =
  let net = Graph.net g in
  let n = Graph.num_states g in
  let out = Array.make n false in
  let scratch = Env.create () in
  let free = Expr.variables e in
  for i = 0 to n - 1 do
    let s = Graph.state g i in
    let bind name =
      match Net.find_place net name with
      | Some p -> Env.set scratch name (Value.Int s.Graph.s_marking.(p.Net.p_id))
      | None -> (
        match List.assoc_opt name s.Graph.s_env with
        | Some v -> Env.set scratch name v
        | None ->
          raise
            (Ctl_error
               (Printf.sprintf "unknown identifier %s (no place or variable)"
                  name)))
    in
    List.iter bind free;
    match Expr.eval scratch e with
    | Value.Bool b -> out.(i) <- b
    | (Value.Int _ | Value.Float _) as v ->
      raise
        (Ctl_error
           (Printf.sprintf "atom %s is not boolean (got %s)" (Expr.to_string e)
              (Value.to_string v)))
    | exception Expr.Eval_error msg -> raise (Ctl_error msg)
  done;
  out

(* E[f U g]: least fixpoint, backward from g-states through f-states. *)
let eu g f_set g_set =
  let n = Graph.num_states g in
  let out = Array.make n false in
  let stack = ref [] in
  for i = 0 to n - 1 do
    if g_set.(i) then begin
      out.(i) <- true;
      stack := i :: !stack
    end
  done;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      List.iter
        (fun p ->
          if (not out.(p)) && f_set.(p) then begin
            out.(p) <- true;
            stack := p :: !stack
          end)
        (predecessor_ids g i)
  done;
  out

(* A[f U g]: least fixpoint — g holds, or f holds and all successors are
   already in the set.  Iterate until stable. *)
let au g f_set g_set =
  let n = Graph.num_states g in
  let out = Array.copy g_set in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if (not out.(i)) && f_set.(i)
         && List.for_all (fun j -> out.(j)) (successor_ids g i)
      then begin
        out.(i) <- true;
        changed := true
      end
    done
  done;
  out

(* EG f: greatest fixpoint — f holds and some successor stays in the set. *)
let eg g f_set =
  let n = Graph.num_states g in
  let out = Array.copy f_set in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if out.(i) && not (List.exists (fun j -> out.(j)) (successor_ids g i))
      then begin
        out.(i) <- false;
        changed := true
      end
    done
  done;
  out

let rec sat g f =
  let n = Graph.num_states g in
  match f with
  | True -> Array.make n true
  | False -> Array.make n false
  | Atom e -> eval_atom g e
  | Not f -> Array.map not (sat g f)
  | And (a, b) ->
    let ra = sat g a and rb = sat g b in
    Array.mapi (fun i v -> v && rb.(i)) ra
  | Or (a, b) ->
    let ra = sat g a and rb = sat g b in
    Array.mapi (fun i v -> v || rb.(i)) ra
  | Implies (a, b) ->
    let ra = sat g a and rb = sat g b in
    Array.mapi (fun i v -> (not v) || rb.(i)) ra
  | EX f ->
    let rf = sat g f in
    Array.init n (fun i -> List.exists (fun j -> rf.(j)) (successor_ids g i))
  | AX f ->
    let rf = sat g f in
    Array.init n (fun i -> List.for_all (fun j -> rf.(j)) (successor_ids g i))
  | EF f -> eu g (Array.make n true) (sat g f)
  | AF f -> au g (Array.make n true) (sat g f)
  | EG f -> eg g (sat g f)
  | AG f -> Array.map not (eu g (Array.make n true) (Array.map not (sat g f)))
  | EU (a, b) -> eu g (sat g a) (sat g b)
  | AU (a, b) -> au g (sat g a) (sat g b)

let check g f =
  if not (Graph.complete g) then
    invalid_arg "Ctl.check: reachability graph was truncated";
  (sat g f).(Graph.initial g)

let counterexample g f =
  let truth = sat g f in
  let n = Graph.num_states g in
  let rec go i = if i >= n then None else if not truth.(i) then Some i else go (i + 1) in
  go 0
