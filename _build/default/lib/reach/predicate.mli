(** First-order predicate calculus over reachability graphs.

    The [MR87] analyzer lets users state expected behaviour "in
    first-order predicate calculus and in branching time temporal logic".
    {!Ctl} is the temporal half; this module is the first-order half:
    quantification over the {e reachable state set} instead of a trace.
    The same query syntax applies ([Pnut_lang.Parser.parse_query]), with
    [S] now meaning all reachable states, [#0] the initial state, and
    [inev]/[alw] interpreted as the branching-time [AF]/[AG].

    Unlike trace checking this is a {e proof} over all behaviours
    (provided the graph is complete). *)

val eval : Graph.t -> Pnut_tracer.Query.t -> Pnut_tracer.Query.result
(** Identifiers resolve to place token counts, then model variables.
    Transition activity (concurrent firings) does not exist in atomic
    interleaving semantics; referring to a transition name raises
    [Pnut_tracer.Query.Query_error].  Raises [Invalid_argument] if the
    graph is truncated. *)

val holds : Graph.t -> Pnut_tracer.Query.t -> bool
