(** ASCII logic-analyzer rendering (the Figure-7 display).

    Signals are plotted as character rows over a time window.  Binary
    signals render as waveforms ([_] low, [#] high by default); wider-range
    signals render their sampled value as a digit ([0]-[9], [*] beyond).
    Markers (named time positions) draw a column and report the time
    distance between pairs, which is how tracertool "assists the user in
    timing these events". *)

type style = {
  width : int;        (** plot columns (excluding labels); default 72 *)
  low : char;         (** binary low; default '_' *)
  high : char;        (** binary high; default '#' *)
  show_scale : bool;  (** print a time axis below; default true *)
}

val default_style : style

type marker = {
  m_label : string;
  m_time : float;
}

val render :
  ?style:style ->
  ?from_time:float ->
  ?to_time:float ->
  ?markers:marker list ->
  Pnut_trace.Trace.t ->
  Signal.t list ->
  string
(** Plot the signals over [from_time, to_time] (defaulting to the whole
    trace).  Each column shows the {e maximum} value attained in its time
    slice, so short pulses remain visible. *)

val interval : marker -> marker -> float
(** Time distance between two markers (the "O <-> X" readout of
    Figure 7). *)
