(** Signals: time series extracted from a trace.

    Tracertool is "a software logic state analyzer": the user places
    probes on places and transitions and may define arbitrary functions of
    them.  A {!t} names such a probe; {!sample} turns it into a
    piecewise-constant series of (time, value) breakpoints. *)

type t =
  | Place of string
      (** token count of a place over time *)
  | Transition of string
      (** number of concurrent firings of a transition over time *)
  | Var of string
      (** value of a model variable over time (numeric) *)
  | Fun of string * Pnut_core.Expr.t
      (** named user-defined function; free variables resolve to place
          token counts, then transition activities, then model
          variables *)

val label : t -> string

type series = {
  times : float array;
      (** breakpoint times, non-decreasing; several breakpoints may share
          a time when the signal changed more than once at one instant
          (zero-width pulses) *)
  values : float array;  (** value from [times.(i)] (inclusive) onwards *)
  t_end : float;         (** end of the observation window *)
}

val value_at : series -> float -> float
(** Value in effect at a given time (the last breakpoint at or before
    it; before the first breakpoint, the first value). *)

val sample : Pnut_trace.Trace.t -> t list -> (t * series) list
(** Extracts all requested signals in one pass over the trace.
    Raises [Unknown_signal] if a name matches no place, transition or
    variable. *)

val to_csv : Pnut_trace.Trace.t -> t list -> string
(** The sampled signals as CSV for external plotting: a [time] column
    followed by one column per signal, one row per instant where any
    signal changes (last value per instant), plus a closing row at the
    trace's final time. *)

exception Unknown_signal of string
