module Trace = Pnut_trace.Trace
module Expr = Pnut_core.Expr
module Env = Pnut_core.Env
module Value = Pnut_core.Value

exception Query_error of string

type formula =
  | Atom of Expr.t
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Inev of formula
  | Alw of formula

type domain = {
  except : int list;
  such_that : formula option;
}

let whole = { except = []; such_that = None }

type t =
  | Forall of domain * formula
  | Exists of domain * formula

type result =
  | Holds of int option
  | Fails of int option
  | Vacuous

let holds = function
  | Holds _ | Vacuous -> true
  | Fails _ -> false

let rec atoms acc = function
  | Atom e -> e :: acc
  | Not f | Inev f | Alw f -> atoms acc f
  | And (a, b) | Or (a, b) | Implies (a, b) -> atoms (atoms acc a) b

let formula_atoms f = atoms [] f

(* Evaluate every atom at every state of the trace in one forward pass.
   Returns a lookup: atom index -> bool array over states 0..n. *)
let atom_matrix trace atom_list =
  let h = Trace.header trace in
  let deltas = Trace.deltas trace in
  let n_states = Array.length deltas + 1 in
  let marking = Array.copy h.Trace.h_initial in
  let in_flight = Array.make (Array.length h.Trace.h_transitions) 0 in
  let env = Env.of_bindings h.Trace.h_variables in
  let find names name =
    let len = Array.length names in
    let rec go i =
      if i >= len then None else if names.(i) = name then Some i else go (i + 1)
    in
    go 0
  in
  (* Free variables of all atoms, each bound to a live reader. *)
  let readers = Hashtbl.create 16 in
  let resolve name =
    if Hashtbl.mem readers name then ()
    else
      let reader =
        match find h.Trace.h_places name with
        | Some p -> fun () -> Value.Int marking.(p)
        | None -> (
          match find h.Trace.h_transitions name with
          | Some t -> fun () -> Value.Int in_flight.(t)
          | None ->
            if Env.mem env name then fun () -> Env.get env name
            else
              raise
                (Query_error
                   (Printf.sprintf
                      "unknown identifier %s (no such place, transition or \
                       variable)"
                      name)))
      in
      Hashtbl.replace readers name reader
  in
  List.iter (fun e -> List.iter resolve (Expr.variables e)) atom_list;
  let scratch = Env.create () in
  let eval_atom e =
    Hashtbl.iter (fun name reader -> Env.set scratch name (reader ())) readers;
    match Expr.eval scratch e with
    | Value.Bool b -> b
    | (Value.Int _ | Value.Float _) as v ->
      raise
        (Query_error
           (Printf.sprintf "formula atom %s is not boolean (got %s)"
              (Expr.to_string e) (Value.to_string v)))
    | exception Expr.Eval_error msg -> raise (Query_error msg)
  in
  let matrix =
    Array.of_list (List.map (fun _ -> Array.make n_states false) atom_list)
  in
  let record state =
    List.iteri (fun ai e -> matrix.(ai).(state) <- eval_atom e) atom_list
  in
  record 0;
  Array.iteri
    (fun i (d : Trace.delta) ->
      List.iter (fun (p, dm) -> marking.(p) <- marking.(p) + dm) d.Trace.d_marking;
      (match d.Trace.d_kind with
      | Trace.Fire_start ->
        in_flight.(d.Trace.d_transition) <- in_flight.(d.Trace.d_transition) + 1
      | Trace.Fire_end ->
        in_flight.(d.Trace.d_transition) <- in_flight.(d.Trace.d_transition) - 1);
      List.iter (fun (name, v) -> Env.set env name v) d.Trace.d_env;
      record (i + 1))
    deltas;
  matrix

(* A context mapping each atom (by physical position in the collected
   list) to its row. *)
let rec eval_rows atom_list matrix f : bool array =
  let row_of_atom e =
    let rec go i = function
      | [] -> assert false
      | e' :: rest -> if e' == e then matrix.(i) else go (i + 1) rest
    in
    go 0 atom_list
  in
  match f with
  | Atom e -> row_of_atom e
  | Not g -> Array.map not (eval_rows atom_list matrix g)
  | And (a, b) ->
    let ra = eval_rows atom_list matrix a and rb = eval_rows atom_list matrix b in
    Array.mapi (fun i v -> v && rb.(i)) ra
  | Or (a, b) ->
    let ra = eval_rows atom_list matrix a and rb = eval_rows atom_list matrix b in
    Array.mapi (fun i v -> v || rb.(i)) ra
  | Implies (a, b) ->
    let ra = eval_rows atom_list matrix a and rb = eval_rows atom_list matrix b in
    Array.mapi (fun i v -> (not v) || rb.(i)) ra
  | Inev g ->
    let rg = eval_rows atom_list matrix g in
    let n = Array.length rg in
    let out = Array.make n false in
    let future = ref false in
    for i = n - 1 downto 0 do
      future := !future || rg.(i);
      out.(i) <- !future
    done;
    out
  | Alw g ->
    let rg = eval_rows atom_list matrix g in
    let n = Array.length rg in
    let out = Array.make n true in
    let future = ref true in
    for i = n - 1 downto 0 do
      future := !future && rg.(i);
      out.(i) <- !future
    done;
    out

let query_formulas = function
  | Forall (d, f) | Exists (d, f) -> (
    match d.such_that with
    | Some g -> [ g; f ]
    | None -> [ f ])

let eval trace q =
  let formulas = query_formulas q in
  let atom_list = List.concat_map formula_atoms formulas in
  let matrix = atom_matrix trace atom_list in
  let rows f = eval_rows atom_list matrix f in
  let n_states = Array.length (Trace.deltas trace) + 1 in
  let in_domain d =
    let filter =
      match d.such_that with
      | Some g -> rows g
      | None -> Array.make n_states true
    in
    fun i -> filter.(i) && not (List.mem i d.except)
  in
  match q with
  | Forall (d, f) ->
    let member = in_domain d in
    let truth = rows f in
    let rec go i saw_any =
      if i >= n_states then if saw_any then Holds None else Vacuous
      else if member i then
        if truth.(i) then go (i + 1) true else Fails (Some i)
      else go (i + 1) saw_any
    in
    go 0 false
  | Exists (d, f) ->
    let member = in_domain d in
    let truth = rows f in
    let rec go i =
      if i >= n_states then Fails None
      else if member i && truth.(i) then Holds (Some i)
      else go (i + 1)
    in
    go 0

let eval_formula trace f state =
  let n_states = Array.length (Trace.deltas trace) + 1 in
  if state < 0 || state >= n_states then
    invalid_arg "Query.eval_formula: state index out of range";
  let atom_list = formula_atoms f in
  let matrix = atom_matrix trace atom_list in
  (eval_rows atom_list matrix f).(state)

let pp_result ppf = function
  | Holds None -> Format.pp_print_string ppf "holds"
  | Holds (Some i) -> Format.fprintf ppf "holds (witness state #%d)" i
  | Fails None -> Format.pp_print_string ppf "fails (no witness)"
  | Fails (Some i) -> Format.fprintf ppf "fails (counterexample state #%d)" i
  | Vacuous -> Format.pp_print_string ppf "vacuously holds (empty domain)"
