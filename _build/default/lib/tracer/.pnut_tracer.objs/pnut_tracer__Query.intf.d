lib/tracer/query.mli: Format Pnut_core Pnut_trace
