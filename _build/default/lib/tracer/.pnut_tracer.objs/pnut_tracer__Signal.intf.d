lib/tracer/signal.mli: Pnut_core Pnut_trace
