lib/tracer/waveform.mli: Pnut_trace Signal
