lib/tracer/signal.ml: Array Buffer Float List Pnut_core Pnut_trace Printf
