lib/tracer/waveform.ml: Array Buffer Bytes Char Float List Option Pnut_trace Printf Signal String
