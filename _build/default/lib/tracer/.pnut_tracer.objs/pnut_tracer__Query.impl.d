lib/tracer/query.ml: Array Format Hashtbl List Pnut_core Pnut_trace Printf
