(** Trace verification queries (Section 4.4).

    Tracertool "tests (rather than proves) the correctness of a simulation
    trace": the expected behaviour is written in first-order predicate
    calculus over the trace's states, extended with the temporal operators
    of the reachability-graph analyzer [MR87].  The paper's examples all
    express directly:

    - [forall s in S \[ Bus_busy(s) + Bus_free(s) = 1 \]]
    - [exists s in (S - {#0}) \[ Empty_I_buffers(s) = 6 \]]
    - [exists s in S \[ exec_type_5(s) > 0 \]]
    - [forall s in {s' in S | Bus_busy(s')} \[ inev(s, Bus_free, true) \]]

    A {!formula} is evaluated at a state; a {!t} quantifies a formula over
    a domain of states.  In formulas, free identifiers resolve to the
    place's token count, else the transition's concurrent-firing count,
    else the model variable's value, in that order. *)

type formula =
  | Atom of Pnut_core.Expr.t  (** boolean expression over state signals *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Inev of formula
      (** from this state on (inclusive), the formula eventually holds —
          the linear-trace reading of the paper's [inev] *)
  | Alw of formula
      (** from this state on (inclusive), the formula always holds *)

(** Which states a quantifier ranges over.  [S - {#0}] is
    [{ except = \[0\]; such_that = None }]; the paper's
    [{s' in S | Bus_busy(s')}] is [{ except = \[\]; such_that = Some f }]. *)
type domain = {
  except : int list;          (** state indices removed, [#0] = initial *)
  such_that : formula option; (** filter formula *)
}

val whole : domain

type t =
  | Forall of domain * formula
  | Exists of domain * formula

type result =
  | Holds of int option
      (** satisfied; for [Exists], the witness state index *)
  | Fails of int option
      (** violated; for [Forall], the first counterexample state index *)
  | Vacuous
      (** a [Forall] over an empty domain *)

val holds : result -> bool
(** [Holds _] and [Vacuous] count as success. *)

val eval : Pnut_trace.Trace.t -> t -> result

val eval_formula : Pnut_trace.Trace.t -> formula -> int -> bool
(** Evaluate a formula at one state index (0 = initial state).
    Raises [Invalid_argument] on an out-of-range index and
    [Query_error] on unresolvable identifiers or type errors. *)

val pp_result : Format.formatter -> result -> unit

exception Query_error of string
