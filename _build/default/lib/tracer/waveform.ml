type style = {
  width : int;
  low : char;
  high : char;
  show_scale : bool;
}

let default_style = { width = 72; low = '_'; high = '#'; show_scale = true }

type marker = {
  m_label : string;
  m_time : float;
}

let interval a b = Float.abs (b.m_time -. a.m_time)

(* Maximum signal value within [t0, t1): breakpoints inside the slice and
   the value in effect at the start. *)
let max_in_slice (s : Signal.series) t0 t1 =
  let v = ref (Signal.value_at s t0) in
  Array.iteri
    (fun i t ->
      if t >= t0 && t < t1 then v := Float.max !v s.Signal.values.(i))
    s.Signal.times;
  !v

let is_binary (s : Signal.series) =
  Array.for_all (fun v -> Float.equal v 0.0 || Float.equal v 1.0) s.Signal.values

let cell style binary v =
  if binary then (if v >= 0.5 then style.high else style.low)
  else begin
    let n = int_of_float (Float.round v) in
    if n < 0 then '-'
    else if n <= 9 then Char.chr (Char.code '0' + n)
    else '*'
  end

let render ?(style = default_style) ?from_time ?to_time ?(markers = []) trace
    signals =
  let sampled = Signal.sample trace signals in
  let t1 =
    Option.value to_time ~default:(Pnut_trace.Trace.final_time trace)
  in
  let t0 = Option.value from_time ~default:0.0 in
  if t1 <= t0 then invalid_arg "Waveform.render: empty time window";
  let width = max 8 style.width in
  let dt = (t1 -. t0) /. float_of_int width in
  let label_width =
    List.fold_left
      (fun acc (sg, _) -> max acc (String.length (Signal.label sg)))
      0 sampled
    |> max 4
  in
  let buf = Buffer.create 4096 in
  let pad s =
    let s = if String.length s > label_width then String.sub s 0 label_width else s in
    s ^ String.make (label_width - String.length s) ' ' ^ " |"
  in
  let marker_column m =
    let c = int_of_float ((m.m_time -. t0) /. dt) in
    if c >= 0 && c < width then Some c else None
  in
  (* marker header line *)
  if markers <> [] then begin
    let line = Bytes.make width ' ' in
    List.iter
      (fun m ->
        match marker_column m with
        | Some c ->
          let lbl = m.m_label in
          let len = min (String.length lbl) (width - c) in
          Bytes.blit_string lbl 0 line c len
        | None -> ())
      markers;
    Buffer.add_string buf (pad "");
    Buffer.add_string buf (Bytes.to_string line);
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun (sg, series) ->
      let binary = is_binary series in
      Buffer.add_string buf (pad (Signal.label sg));
      for col = 0 to width - 1 do
        let c0 = t0 +. (float_of_int col *. dt) in
        let v = max_in_slice series c0 (c0 +. dt) in
        let ch = cell style binary v in
        let ch =
          if
            List.exists
              (fun m ->
                match marker_column m with
                | Some mc -> mc = col
                | None -> false)
              markers
            && ch = style.low
          then '|'
          else ch
        in
        Buffer.add_char buf ch
      done;
      Buffer.add_char buf '\n')
    sampled;
  if style.show_scale then begin
    Buffer.add_string buf (pad "");
    let line = Bytes.make width '-' in
    let n_ticks = 6 in
    Buffer.add_string buf (Bytes.to_string line);
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad "time");
    let scale = Bytes.make width ' ' in
    for k = 0 to n_ticks - 1 do
      let col = k * (width - 1) / (n_ticks - 1) in
      let t = t0 +. (float_of_int col *. dt) in
      let lbl = Printf.sprintf "%g" t in
      let col = min col (width - String.length lbl) in
      Bytes.blit_string lbl 0 scale col (String.length lbl)
    done;
    Buffer.add_string buf (Bytes.to_string scale);
    Buffer.add_char buf '\n'
  end;
  (* marker interval readouts, pairwise in order *)
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      Buffer.add_string buf
        (Printf.sprintf "%s <-> %s : %g\n" a.m_label b.m_label (interval a b));
      pairs rest
    | [ _ ] | [] -> ()
  in
  pairs (List.sort (fun a b -> Float.compare a.m_time b.m_time) markers);
  Buffer.contents buf
