module Trace = Pnut_trace.Trace
module Expr = Pnut_core.Expr
module Env = Pnut_core.Env
module Value = Pnut_core.Value

exception Unknown_signal of string

type t =
  | Place of string
  | Transition of string
  | Var of string
  | Fun of string * Expr.t

let label = function
  | Place name | Transition name | Var name | Fun (name, _) -> name

type series = {
  times : float array;
  values : float array;
  t_end : float;
}

let value_at s time =
  let n = Array.length s.times in
  if n = 0 then 0.0
  else begin
    (* binary search: greatest i with times.(i) <= time *)
    let rec go lo hi =
      (* invariant: times.(lo) <= time < times.(hi) (hi may be n) *)
      if hi - lo <= 1 then s.values.(lo)
      else
        let mid = (lo + hi) / 2 in
        if s.times.(mid) <= time then go mid hi else go lo mid
    in
    if time < s.times.(0) then s.values.(0) else go 0 n
  end

(* Index of a name in a name table. *)
let find_index names name =
  let n = Array.length names in
  let rec go i = if i >= n then None else if names.(i) = name then Some i else go (i + 1) in
  go 0

type probe = {
  signal : t;
  compute : unit -> float;  (* reads the live cursor state *)
  mutable times_rev : float list;
  mutable values_rev : float list;
  mutable last : float;
  mutable started : bool;
}

let sample trace signals =
  let h = Trace.header trace in
  let marking = Array.copy h.Trace.h_initial in
  let in_flight = Array.make (Array.length h.Trace.h_transitions) 0 in
  let env = Env.of_bindings h.Trace.h_variables in
  let resolve name =
    match find_index h.Trace.h_places name with
    | Some p -> Some (fun () -> float_of_int marking.(p))
    | None -> (
      match find_index h.Trace.h_transitions name with
      | Some t -> Some (fun () -> float_of_int in_flight.(t))
      | None ->
        if Env.mem env name then
          Some (fun () -> Value.to_float (Env.get env name))
        else None)
  in
  let compute_of_signal = function
    | Place name -> (
      match find_index h.Trace.h_places name with
      | Some p -> fun () -> float_of_int marking.(p)
      | None -> raise (Unknown_signal name))
    | Transition name -> (
      match find_index h.Trace.h_transitions name with
      | Some t -> fun () -> float_of_int in_flight.(t)
      | None -> raise (Unknown_signal name))
    | Var name ->
      if Env.mem env name then fun () -> Value.to_float (Env.get env name)
      else raise (Unknown_signal name)
    | Fun (_, expr) ->
      (* Bind every free variable of the expression to a live reader. *)
      let readers =
        List.map
          (fun v ->
            match resolve v with
            | Some f -> (v, f)
            | None -> raise (Unknown_signal v))
          (Expr.variables expr)
      in
      fun () ->
        let scratch = Env.create () in
        List.iter (fun (v, f) -> Env.set scratch v (Value.Float (f ()))) readers;
        Expr.eval_float scratch expr
  in
  let probes =
    List.map
      (fun s ->
        {
          signal = s;
          compute = compute_of_signal s;
          times_rev = [];
          values_rev = [];
          last = 0.0;
          started = false;
        })
      signals
  in
  (* Every value change is recorded, including several at the same
     instant: intermediate breakpoints keep zero-width pulses visible to
     the waveform renderer, and [value_at] resolves a repeated time to
     the last value recorded at it. *)
  let record time p =
    let v = p.compute () in
    if (not p.started) || not (Float.equal v p.last) then begin
      p.times_rev <- time :: p.times_rev;
      p.values_rev <- v :: p.values_rev;
      p.last <- v;
      p.started <- true
    end
  in
  List.iter (record 0.0) probes;
  Array.iter
    (fun (d : Trace.delta) ->
      List.iter
        (fun (pl, dm) -> marking.(pl) <- marking.(pl) + dm)
        d.Trace.d_marking;
      (match d.Trace.d_kind with
      | Trace.Fire_start ->
        in_flight.(d.Trace.d_transition) <- in_flight.(d.Trace.d_transition) + 1
      | Trace.Fire_end ->
        in_flight.(d.Trace.d_transition) <- in_flight.(d.Trace.d_transition) - 1);
      List.iter (fun (name, v) -> Env.set env name v) d.Trace.d_env;
      List.iter (record d.Trace.d_time) probes)
    (Trace.deltas trace);
  let t_end = Trace.final_time trace in
  List.map
    (fun p ->
      ( p.signal,
        {
          times = Array.of_list (List.rev p.times_rev);
          values = Array.of_list (List.rev p.values_rev);
          t_end;
        } ))
    probes

let to_csv trace signals =
  let sampled = sample trace signals in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  List.iter
    (fun (sg, _) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (label sg))
    sampled;
  Buffer.add_char buf '\n';
  (* union of breakpoint times, deduplicated *)
  let times =
    List.concat_map (fun (_, s) -> Array.to_list s.times) sampled
    @ [ Trace.final_time trace ]
    |> List.sort_uniq Float.compare
  in
  List.iter
    (fun t ->
      Buffer.add_string buf (Printf.sprintf "%.12g" t);
      List.iter
        (fun (_, s) ->
          Buffer.add_string buf (Printf.sprintf ",%.12g" (value_at s t)))
        sampled;
      Buffer.add_char buf '\n')
    times;
  Buffer.contents buf
