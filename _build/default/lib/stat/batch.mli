(** Batch-means output analysis of a single long run.

    The alternative to independent replications: drop a warm-up prefix,
    split the remaining observation window into equal batches, compute
    the statistic per batch and treat the batch means as (approximately
    independent) samples for a confidence interval.  Standard discrete-
    event simulation methodology applied to P-NUT traces. *)

val place_utilization :
  ?warmup:float ->
  ?batches:int ->
  ?confidence:float ->
  Pnut_trace.Trace.t -> string -> Replication.estimate
(** Time-weighted mean token count of the place per batch.  [warmup]
    (default 0) is excluded; [batches] defaults to 10.  Raises
    [Not_found] for an unknown place and [Invalid_argument] when the
    observation window is empty or has fewer than 2 batches. *)

val transition_throughput :
  ?warmup:float ->
  ?batches:int ->
  ?confidence:float ->
  Pnut_trace.Trace.t -> string -> Replication.estimate
(** Completed firings per unit time of the transition per batch. *)
