lib/stat/replication.mli: Format Pnut_core Stat
