lib/stat/stat.mli: Format Pnut_trace
