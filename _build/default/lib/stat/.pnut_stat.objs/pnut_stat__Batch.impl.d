lib/stat/batch.ml: Array Float List Pnut_trace Replication
