lib/stat/batch.mli: Pnut_trace Replication
