lib/stat/replication.ml: Array Float Format List Pnut_core Pnut_sim Stat
