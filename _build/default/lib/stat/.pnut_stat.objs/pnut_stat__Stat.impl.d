lib/stat/stat.ml: Array Buffer Float Format List Pnut_trace Printf String
