module Trace = Pnut_trace.Trace

let find_index names name =
  let n = Array.length names in
  let rec go i =
    if i >= n then raise Not_found
    else if names.(i) = name then i
    else go (i + 1)
  in
  go 0

let windows ~warmup ~batches trace =
  let t_end = Trace.final_time trace in
  if batches < 2 then invalid_arg "Batch: need at least 2 batches";
  if warmup < 0.0 || warmup >= t_end then
    invalid_arg "Batch: warm-up leaves no observation window";
  let width = (t_end -. warmup) /. float_of_int batches in
  (warmup, width)

(* Integrate a place's token count over each batch window in one sweep. *)
let place_utilization ?(warmup = 0.0) ?(batches = 10) ?confidence trace name =
  let h = Trace.header trace in
  let p = find_index h.Trace.h_places name in
  let start, width = windows ~warmup ~batches trace in
  let sums = Array.make batches 0.0 in
  let batch_of t =
    let b = int_of_float ((t -. start) /. width) in
    if b < 0 then -1 else min b (batches - 1)
  in
  (* accumulate value * overlap for a constant segment [t0, t1) *)
  let accumulate value t0 t1 =
    if t1 > start && value <> 0 then begin
      let t0 = Float.max t0 start in
      let b0 = max 0 (batch_of t0) in
      let b1 = batch_of (t1 -. 1e-12) in
      for b = b0 to b1 do
        let lo = start +. (float_of_int b *. width) in
        let hi = lo +. width in
        let overlap = Float.min hi t1 -. Float.max lo t0 in
        if overlap > 0.0 then
          sums.(b) <- sums.(b) +. (float_of_int value *. overlap)
      done
    end
  in
  let current = ref h.Trace.h_initial.(p) in
  let since = ref 0.0 in
  Array.iter
    (fun (d : Trace.delta) ->
      match List.assoc_opt p d.Trace.d_marking with
      | None -> ()
      | Some dm ->
        accumulate !current !since d.Trace.d_time;
        current := !current + dm;
        since := d.Trace.d_time)
    (Trace.deltas trace);
  accumulate !current !since (Trace.final_time trace);
  Replication.of_samples ?confidence
    (Array.to_list (Array.map (fun s -> s /. width) sums))

let transition_throughput ?(warmup = 0.0) ?(batches = 10) ?confidence trace name =
  let h = Trace.header trace in
  let t = find_index h.Trace.h_transitions name in
  let start, width = windows ~warmup ~batches trace in
  let counts = Array.make batches 0 in
  Array.iter
    (fun (d : Trace.delta) ->
      if d.Trace.d_kind = Trace.Fire_end && d.Trace.d_transition = t
         && d.Trace.d_time >= start
      then begin
        let b =
          min (batches - 1)
            (int_of_float ((d.Trace.d_time -. start) /. width))
        in
        counts.(b) <- counts.(b) + 1
      end)
    (Trace.deltas trace);
  Replication.of_samples ?confidence
    (Array.to_list (Array.map (fun c -> float_of_int c /. width) counts))
