(* The reproduction harness: regenerates every figure of the paper's
   evaluation (Figures 1-7 of "The Use of Petri Nets for Modeling
   Pipelined Processors", plus the Section 4.4 verification queries),
   then runs the ablations called out in DESIGN.md and a set of Bechamel
   engine microbenchmarks.

   Absolute counts cannot match the paper bit-for-bit (its PRNG and seeds
   are unspecified); EXPERIMENTS.md records the shape comparison this
   harness prints. *)

module Net = Pnut_core.Net
module Config = Pnut_pipeline.Config
module Model = Pnut_pipeline.Model
module Interpreted = Pnut_pipeline.Interpreted
module Extensions = Pnut_pipeline.Extensions
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat
module Trace = Pnut_trace.Trace
module Signal = Pnut_tracer.Signal
module Waveform = Pnut_tracer.Waveform
module Query = Pnut_tracer.Query
module Parser = Pnut_lang.Parser

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n"
    (String.make 74 '=') title (String.make 74 '=')

let default = Config.default

let stats ?(seed = 42) ?(until = 10_000.0) net =
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed ~until ~sink net in
  get ()

(* The reference run shared by Figures 5-7: the paper's parameters,
   10000 cycles. *)
let reference_trace = lazy (fst (Sim.trace ~seed:42 ~until:10_000.0 (Model.full default)))
let reference_stats = lazy (Stat.of_trace (Lazy.force reference_trace))

(* -- Figures 1-4: the models themselves -- *)

let figure_1_to_3 () =
  section "Figures 1-3: the 3-stage pipeline model (textual form)";
  let net = Model.full default in
  Format.printf "%a@." Net.pp net;
  let diags = Pnut_core.Validate.check net in
  Printf.printf "validate: %d diagnostics\n" (List.length diags);
  let inc = Pnut_core.Incidence.of_net net in
  Printf.printf "P-invariants (structural correctness of the figures):\n";
  List.iter
    (fun y ->
      Format.printf "  %a = constant@." (Pnut_core.Incidence.pp_vector net `Place) y)
    (Pnut_core.Incidence.p_invariants inc);
  let g = Pnut_reach.Graph.build ~max_states:20_000 net in
  Format.printf "%a@." Pnut_reach.Graph.pp_summary g

let figure_4 () =
  section "Figure 4: interpreted net for operand fetching";
  let net = Interpreted.operand_fetch_skeleton default in
  (* print without the bulky selection table *)
  Array.iter
    (fun tr ->
      Format.printf "transition %s" tr.Net.t_name;
      (match tr.Net.t_predicate with
      | Some p -> Format.printf "  predicate %a" Pnut_core.Expr.pp p
      | None -> ());
      List.iter
        (fun s -> Format.printf "  action %a" Pnut_core.Expr.pp_stmt s)
        tr.Net.t_action;
      Format.printf "@.")
    (Net.transitions net);
  let r = stats ~seed:8 ~until:5000.0 net in
  Printf.printf
    "\nskeleton run: %.3f fetches per decoded instruction (expected ~0.4)\n"
    (float_of_int (Stat.transition r "fetch_operand").Stat.ts_starts
    /. float_of_int (Stat.transition r "Decode").Stat.ts_starts)

(* -- Figure 5: the statistics report -- *)

(* Paper values from the Figure-5 report (10000 cycles). *)
let paper_event_stats =
  [
    (* name, avg concurrent firings, throughput *)
    ("Issue", 0.0, 0.1238);
    ("exec_type_1", 0.0618, 0.0618);
    ("exec_type_2", 0.0752, 0.0376);
    ("exec_type_3", 0.0631, 0.0126);
    ("exec_type_4", 0.059, 0.0059);
    ("exec_type_5", 0.29, 0.0058);
  ]

let paper_place_stats =
  [
    ("Full_I_buffers", 4.621);
    ("Empty_I_buffers", 0.7576);
    ("pre_fetching", 0.3107);
    ("fetching", 0.2275);
    ("storing", 0.12);
    ("Bus_busy", 0.6582);
    ("Decoder_ready", 0.0014);
    ("Execution_unit", 0.2739);
    ("ready_to_issue_instruction", 0.5022);
  ]

let figure_5 () =
  section "Figure 5: performance statistics report (10000 cycles, seed 42)";
  let r = Lazy.force reference_stats in
  print_string (Stat.render r);
  Printf.printf "\nPaper-vs-measured comparison (shape):\n";
  Printf.printf "  %-28s %10s %10s %8s\n" "metric" "paper" "measured" "ratio";
  let row name paper measured =
    Printf.printf "  %-28s %10.4f %10.4f %8.2f\n" name paper measured
      (if paper = 0.0 then Float.nan else measured /. paper)
  in
  List.iter
    (fun (name, _, paper_thr) ->
      row (name ^ " throughput") paper_thr (Stat.throughput r name))
    paper_event_stats;
  List.iter
    (fun (name, paper_avg) ->
      row (name ^ " avg tokens") paper_avg (Stat.utilization r name))
    paper_place_stats;
  (* the derived readings of Section 4.2 *)
  Printf.printf "\nSection 4.2 readings:\n";
  Printf.printf "  instruction processing rate = Issue throughput = %.4f/cycle\n"
    (Stat.throughput r "Issue");
  Printf.printf "  bus utilization             = avg(Bus_busy)    = %.4f\n"
    (Stat.utilization r "Bus_busy");
  Printf.printf "  bus breakdown: prefetch %.4f + operand %.4f + store %.4f = %.4f\n"
    (Stat.utilization r "pre_fetching")
    (Stat.utilization r "fetching")
    (Stat.utilization r "storing")
    (Stat.utilization r "pre_fetching"
    +. Stat.utilization r "fetching"
    +. Stat.utilization r "storing")

(* -- Figure 6: animation -- *)

let figure_6 () =
  section "Figure 6: animation of the pipeline model (first events)";
  let net = Model.full default in
  let trace, _ = Sim.trace ~seed:42 ~max_events:4 net in
  let frames =
    Pnut_anim.Animator.frames
      ~places:
        [ "Bus_free"; "Bus_busy"; "Empty_I_buffers"; "Full_I_buffers";
          "pre_fetching"; "Decoder_ready" ]
      net trace
  in
  List.iteri
    (fun i f ->
      if i < 6 then begin
        print_string f.Pnut_anim.Animator.f_text;
        print_endline "----------------------------------------"
      end)
    frames;
  Printf.printf "(%d frames total)\n" (List.length frames)

(* -- Figure 7: tracertool -- *)

let figure_7 () =
  section "Figure 7: timing analysis using tracertool (cycles 0-150)";
  let trace = Lazy.force reference_trace in
  let exec_sum =
    Signal.Fun
      ( "all_exec",
        List.fold_left
          (fun acc name -> Pnut_core.Expr.(acc + var name))
          (Pnut_core.Expr.int 0)
          (Model.exec_transition_names default) )
  in
  let signals =
    [ Signal.Place "Bus_busy"; Signal.Place "pre_fetching";
      Signal.Place "fetching"; Signal.Place "storing";
      Signal.Transition "exec_type_1"; Signal.Transition "exec_type_2";
      Signal.Transition "exec_type_3"; Signal.Transition "exec_type_4";
      Signal.Transition "exec_type_5"; exec_sum;
      Signal.Place "Empty_I_buffers" ]
  in
  print_string
    (Waveform.render ~from_time:0.0 ~to_time:150.0
       ~markers:
         [ { Waveform.m_label = "O"; m_time = 54.0 };
           { Waveform.m_label = "X"; m_time = 94.0 } ]
       trace signals)

(* -- Section 4.4: verification queries -- *)

let section_4_4 () =
  section "Section 4.4: trace verification queries";
  let trace = Lazy.force reference_trace in
  List.iter
    (fun q ->
      let result = Query.eval trace (Parser.parse_query q) in
      Format.printf "  %-72s %a@." q Query.pp_result result)
    [
      "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]";
      "exists s in (S - {#0}) [ Empty_I_buffers(s) = 6 ]";
      "exists s in S [ exec_type_5(s) > 0 ]";
      "forall s in {s' in S | Bus_busy(s') > 0} [ inev(s, Bus_free > 0, true) ]";
    ];
  (* and the branching-time version on the reachability graph *)
  let net = Model.full default in
  let g = Pnut_reach.Graph.build ~max_states:20_000 net in
  let inev_free =
    Pnut_reach.Ctl.AG
      (Pnut_reach.Ctl.Implies
         ( Pnut_reach.Ctl.Atom (Parser.parse_expr "Bus_busy == 1"),
           Pnut_reach.Ctl.inev (Pnut_reach.Ctl.Atom (Parser.parse_expr "Bus_free == 1")) ))
  in
  Printf.printf "  reachability analyzer: AG (Bus_busy -> inev Bus_free) = %b (proof)\n"
    (Pnut_reach.Ctl.check g inev_free)

(* -- Ablation A1: firing vs enabling time -- *)

module B = Net.Builder

(* Rebuild a net with every enabling delay turned into a firing delay. *)
let enabling_to_firing net =
  let b =
    B.create (Net.name net ^ "_firing") ~variables:(Net.variables net)
      ~tables:(Net.tables net)
  in
  Array.iter
    (fun p ->
      ignore
        (match p.Net.p_capacity with
        | Some c ->
          B.add_place b p.Net.p_name ~initial:p.Net.p_initial ~capacity:c
        | None -> B.add_place b p.Net.p_name ~initial:p.Net.p_initial
          : Net.place_id))
    (Net.places net);
  Array.iter
    (fun tr ->
      let arcs l = List.map (fun a -> (a.Net.a_place, a.Net.a_weight)) l in
      let firing, enabling =
        match tr.Net.t_enabling with
        | Net.Zero -> (tr.Net.t_firing, Net.Zero)
        | d -> (d, Net.Zero)  (* swap: the delay becomes a firing time *)
      in
      ignore
        (match tr.Net.t_predicate with
        | Some p ->
          B.add_transition b tr.Net.t_name ~inputs:(arcs tr.Net.t_inputs)
            ~inhibitors:(arcs tr.Net.t_inhibitors)
            ~outputs:(arcs tr.Net.t_outputs) ~firing ~enabling
            ~frequency:tr.Net.t_frequency ~predicate:p ~action:tr.Net.t_action
        | None ->
          B.add_transition b tr.Net.t_name ~inputs:(arcs tr.Net.t_inputs)
            ~inhibitors:(arcs tr.Net.t_inhibitors)
            ~outputs:(arcs tr.Net.t_outputs) ~firing ~enabling
            ~frequency:tr.Net.t_frequency ~action:tr.Net.t_action
          : Net.transition_id))
    (Net.transitions net);
  B.build b

let ablation_firing_vs_enabling () =
  section "Ablation A1: firing time vs enabling time (Section 4.2 subtlety)";
  let enabling_model = Model.full default in
  let firing_model = enabling_to_firing enabling_model in
  let re = stats ~seed:42 enabling_model in
  let rf = stats ~seed:42 firing_model in
  Printf.printf
    "Memory delays as ENABLING times (tokens stay visible during access):\n";
  Printf.printf "  Issue throughput %.4f, Bus_busy reading %.4f\n"
    (Stat.throughput re "Issue") (Stat.utilization re "Bus_busy");
  Printf.printf
    "Memory delays as FIRING times (tokens vanish during access):\n";
  Printf.printf "  Issue throughput %.4f, Bus_busy reading %.4f  <- misreads!\n"
    (Stat.throughput rf "Issue") (Stat.utilization rf "Bus_busy");
  Printf.printf
    "\nThe throughputs stay in the same regime (the delays are identical)\n\
     but the firing-time version breaks the Bus_free+Bus_busy=1 discipline,\n\
     so the place average no longer reads as utilization — the paper's\n\
     reason for requiring instantaneous bus hand-offs.\n";
  let trace, _ = Sim.trace ~seed:1 ~until:1000.0 firing_model in
  let q = Parser.parse_query "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]" in
  Format.printf "  one-hot query on the firing-time variant: %a@."
    Query.pp_result (Query.eval trace q)

(* -- Ablation A2: memory speed -- *)

let ablation_memory_speed () =
  section "Ablation A2: memory speed vs performance (intro motivation)";
  Printf.printf "  %10s %12s %10s %10s\n" "mem cycles" "instr/cycle" "bus util" "buf avg";
  List.iter
    (fun memory_cycles ->
      let r = stats ~until:20_000.0 (Model.full { default with Config.memory_cycles }) in
      Printf.printf "  %10g %12.4f %10.3f %10.3f\n" memory_cycles
        (Stat.throughput r "Issue")
        (Stat.utilization r "Bus_busy")
        (Stat.utilization r "Full_I_buffers"))
    [ 1.0; 2.0; 3.0; 5.0; 8.0; 12.0; 20.0 ]

(* -- Ablation A3: buffer size -- *)

let ablation_buffer_size () =
  section "Ablation A3: instruction-buffer size";
  Printf.printf "  %6s %12s %12s\n" "words" "instr/cycle" "decoder idle";
  List.iter
    (fun buffer_words ->
      let r = stats ~until:20_000.0 (Model.full { default with Config.buffer_words }) in
      Printf.printf "  %6d %12.4f %12.4f\n" buffer_words
        (Stat.throughput r "Issue")
        (Stat.utilization r "Decoder_ready"))
    [ 2; 4; 6; 8; 12 ]

(* -- Ablation A4: caches -- *)

let ablation_cache () =
  section "Ablation A4: cache hit ratios (Section 3)";
  Printf.printf "  %6s %12s %10s\n" "hit" "instr/cycle" "bus util";
  List.iter
    (fun h ->
      let net =
        Extensions.with_caches ~icache_hit_ratio:h ~dcache_hit_ratio:h default
      in
      let r = stats ~until:20_000.0 net in
      Printf.printf "  %6.2f %12.4f %10.3f\n" h
        (Stat.throughput r "Issue")
        (Stat.utilization r "Bus_busy"))
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99 ]

(* -- Ablation A5: instruction mix -- *)

let ablation_instruction_mix () =
  section "Ablation A5: instruction-mix sensitivity";
  Printf.printf "  %16s %12s %10s\n" "mix (0/1/2 ops)" "instr/cycle" "bus util";
  List.iter
    (fun ((m1, m2, m3) as mix) ->
      let r = stats ~until:20_000.0 (Model.full { default with Config.mix }) in
      Printf.printf "  %6.0f/%3.0f/%3.0f %12.4f %10.3f\n" m1 m2 m3
        (Stat.throughput r "Issue")
        (Stat.utilization r "Bus_busy"))
    [ (100.0, 0.0001, 0.0001); (70.0, 20.0, 10.0); (50.0, 30.0, 20.0);
      (20.0, 40.0, 40.0) ]

(* -- Ablation A6: structural vs interpreted model -- *)

let ablation_interpreted () =
  section "Ablation A6: structural vs table-driven model (Section 3)";
  let rs = stats ~until:20_000.0 (Model.full default) in
  let ri = stats ~until:20_000.0 (Interpreted.full default) in
  Printf.printf "  %-14s %8s %8s %12s %10s\n" "model" "places" "trans" "instr/cycle" "bus util";
  let row name net r =
    Printf.printf "  %-14s %8d %8d %12.4f %10.3f\n" name (Net.num_places net)
      (Net.num_transitions net) (Stat.throughput r "Issue")
      (Stat.utilization r "Bus_busy")
  in
  row "structural" (Model.full default) rs;
  row "interpreted" (Interpreted.full default) ri;
  let wide = Interpreted.full ~instruction_set:(Interpreted.wide_instruction_set ()) default in
  let rw = stats ~until:20_000.0 wide in
  row "30-mode ISA" wide rw

(* -- Ablation A8: branches and flush-on-branch -- *)

let ablation_branches () =
  section "Ablation A8: taken branches flushing the prefetch buffer";
  Printf.printf
    "Control transfers squash the prefetched words (Section 3's 'more\n\
     complex processors' direction). Branch-ratio sweep at buffer = 6:\n\n";
  Printf.printf "  %8s %12s %14s %10s\n" "branches" "instr/cycle"
    "words flushed" "bus util";
  List.iter
    (fun ratio ->
      let net = Pnut_pipeline.Branching.full ~branch_ratio:ratio default in
      let r = stats ~until:20_000.0 net in
      let flushed =
        if ratio > 0.0 then
          (Stat.transition r "flush_buffer_word").Stat.ts_starts
        else 0
      in
      Printf.printf "  %8g %12.4f %14d %10.3f\n" ratio
        (Stat.throughput r "Issue") flushed
        (Stat.utilization r "Bus_busy"))
    [ 0.0; 0.05; 0.15; 0.3; 0.5 ];
  Printf.printf
    "\nBuffer depth vs branch frequency (instr/cycle): without branches a\n\
     deeper buffer can only help (A3); with branches the prefetched words\n\
     are wasted work and the gain inverts:\n\n";
  Printf.printf "  %10s %10s %10s %10s\n" "buffer" "b=0" "b=0.15" "b=0.4";
  List.iter
    (fun buffer_words ->
      let rate ratio =
        let net =
          Pnut_pipeline.Branching.full ~branch_ratio:ratio
            { default with Config.buffer_words }
        in
        Stat.throughput (stats ~until:20_000.0 net) "Issue"
      in
      Printf.printf "  %10d %10.4f %10.4f %10.4f\n" buffer_words (rate 0.0)
        (rate 0.15) (rate 0.4))
    [ 2; 4; 6; 12 ]

(* -- Ablation A9: pipelined vs non-pipelined -- *)

let ablation_serial () =
  section "Ablation A9: pipelining speedup over the serial baseline";
  Printf.printf
    "The paper's premise is that pipelining speeds up fetch/decode/execute;\n\
     the counterfactual is a machine doing one instruction at a time with\n\
     the same timings. Analytic serial cost with the paper's parameters:\n\
     %.1f cycles/instruction.\n\n"
    (Pnut_pipeline.Serial.expected_cycles_per_instruction default);
  Printf.printf "  %10s %12s %12s %9s\n" "mem cycles" "pipelined" "serial" "speedup";
  List.iter
    (fun memory_cycles ->
      let c = { default with Config.memory_cycles } in
      let p = Stat.throughput (stats ~until:50_000.0 (Model.full c)) "Issue" in
      let s =
        Stat.throughput (stats ~until:50_000.0 (Pnut_pipeline.Serial.full c)) "Decode"
      in
      Printf.printf "  %10g %12.4f %12.4f %9.2f\n" memory_cycles p s (p /. s))
    [ 1.0; 2.0; 5.0; 10.0; 20.0 ];
  Printf.printf
    "\nThe speedup grows with memory latency — overlap hides it — toward\n\
     the bus-bound asymptote (serial demand 1.6m vs pipelined 1.1m cycles\n\
     of bus per instruction => ~1.45 in the limit).\n"

(* -- Ablation A7: analytical vs simulation evaluation -- *)

let ablation_analytic () =
  section "Ablation A7: analytical (CTMC) vs simulation evaluation";
  Printf.printf
    "The paper's conclusion mentions P-NUT tools for analytical (as\n\
     opposed to simulation) performance evaluation. The exponential\n\
     variant of the full pipeline (all deterministic delays replaced by\n\
     exponentials of the same mean) is a GSPN; its CTMC is solved exactly\n\
     and compared to a 300k-cycle simulation, and to the deterministic\n\
     model (showing how much the timing distribution matters):\n\n";
  let det = Model.full default in
  let exp_net = Pnut_analytic.Gspn.exponential_variant det in
  let a = Pnut_analytic.Gspn.analyze ~max_states:5000 exp_net in
  let sim_exp = stats ~until:300_000.0 exp_net in
  let sim_det = Lazy.force reference_stats in
  Printf.printf "  %-26s %12s %12s %12s\n" "metric" "exp analytic" "exp simulated"
    "det simulated";
  let row name analytic simulated det_v =
    Printf.printf "  %-26s %12.4f %12.4f %12.4f\n" name analytic simulated det_v
  in
  row "Issue throughput"
    (Pnut_analytic.Gspn.throughput a exp_net "Issue")
    (Stat.throughput sim_exp "Issue")
    (Stat.throughput sim_det "Issue");
  row "Bus utilization"
    (Pnut_analytic.Gspn.place_mean a exp_net "Bus_busy")
    (Stat.utilization sim_exp "Bus_busy")
    (Stat.utilization sim_det "Bus_busy");
  row "Full buffers"
    (Pnut_analytic.Gspn.place_mean a exp_net "Full_I_buffers")
    (Stat.utilization sim_exp "Full_I_buffers")
    (Stat.utilization sim_det "Full_I_buffers");
  Printf.printf
    "\n  (%d tangible + %d vanishing markings; the analytic and simulated\n\
    \  exponential columns agree to stochastic noise, validating both.\n\
    \  The deterministic column differs for a real semantic reason: the\n\
    \  five competing exec_type transitions select by FREQUENCY when\n\
    \  instant-enabled, but exponential delays make them RACE, biasing\n\
    \  the class mix toward fast instructions — a classic preselection-\n\
    \  vs-race subtlety of timed-net semantics.)\n"
    a.Pnut_analytic.Gspn.tangible_states a.Pnut_analytic.Gspn.vanishing_states;
  (* replication CIs quantify the simulation noise *)
  let ci =
    Pnut_stat.Replication.replicate ~seed:5 ~runs:8 ~until:10_000.0 exp_net
      (fun r -> Stat.throughput r "Issue")
  in
  Format.printf "  simulated Issue throughput over 8 runs: %a@."
    Pnut_stat.Replication.pp ci

(* -- Bechamel microbenchmarks -- *)

let bechamel_micro () =
  section "Engine microbenchmarks (Bechamel)";
  let open Bechamel in
  let net = Model.full default in
  let small = Model.prefetch_only default in
  let trace_text =
    lazy (Pnut_trace.Codec.to_string (fst (Sim.trace ~seed:1 ~until:500.0 net)))
  in
  let stored_trace = lazy (fst (Sim.trace ~seed:1 ~until:500.0 net)) in
  let tests =
    Test.make_grouped ~name:"pnut"
      [
        Test.make ~name:"simulate-1k-cycles"
          (Staged.stage (fun () ->
               ignore (Sim.simulate ~seed:7 ~until:1000.0 net)));
        Test.make ~name:"reachability-prefetch"
          (Staged.stage (fun () ->
               ignore (Pnut_reach.Graph.build ~max_states:10_000 small)));
        Test.make ~name:"trace-parse"
          (Staged.stage (fun () ->
               ignore (Pnut_trace.Codec.parse (Lazy.force trace_text))));
        Test.make ~name:"stat-pass"
          (Staged.stage (fun () ->
               ignore (Stat.of_trace (Lazy.force stored_trace))));
        Test.make ~name:"invariants"
          (Staged.stage (fun () ->
               ignore (Pnut_core.Incidence.p_invariants (Pnut_core.Incidence.of_net net))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (t :: _) -> Printf.printf "  %-32s %12.0f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows)

(* -- final self-check: the reproduction claims, asserted -- *)

let shape_verdicts () =
  section "Shape verdicts (the claims EXPERIMENTS.md records)";
  let failures = ref 0 in
  let check name ok detail =
    if not ok then incr failures;
    Printf.printf "  [%s] %-52s %s\n" (if ok then "PASS" else "FAIL") name detail
  in
  let r = Lazy.force reference_stats in
  let issue = Stat.throughput r "Issue" in
  check "Issue rate in the paper's band" (issue > 0.09 && issue < 0.15)
    (Printf.sprintf "%.4f vs paper 0.1238" issue);
  let bus = Stat.utilization r "Bus_busy" in
  check "bus utilization band" (bus > 0.5 && bus < 0.75)
    (Printf.sprintf "%.3f vs paper 0.658" bus);
  let pf = Stat.utilization r "pre_fetching" in
  let ft = Stat.utilization r "fetching" in
  let st = Stat.utilization r "storing" in
  check "bus breakdown ordering (prefetch > fetch > store)" (pf > ft && ft > st)
    (Printf.sprintf "%.3f / %.3f / %.3f" pf ft st);
  check "breakdown sums to utilization"
    (Float.abs (pf +. ft +. st -. bus) < 1e-6)
    (Printf.sprintf "sum %.4f" (pf +. ft +. st));
  check "buffers nearly full"
    (Stat.utilization r "Full_I_buffers" > 3.5)
    (Printf.sprintf "%.2f vs paper 4.62" (Stat.utilization r "Full_I_buffers"));
  check "decoder essentially never idle"
    (Stat.utilization r "Decoder_ready" < 0.05)
    (Printf.sprintf "%.4f vs paper 0.0014" (Stat.utilization r "Decoder_ready"));
  (* monotone sensitivities *)
  let rate mem =
    Stat.throughput (stats ~until:10_000.0 (Model.full { default with Config.memory_cycles = mem })) "Issue"
  in
  check "throughput falls with memory latency" (rate 1.0 > rate 5.0 && rate 5.0 > rate 20.0)
    (Printf.sprintf "%.4f > %.4f > %.4f" (rate 1.0) (rate 5.0) (rate 20.0));
  let cached h =
    Stat.throughput
      (stats ~until:10_000.0
         (Extensions.with_caches ~icache_hit_ratio:h ~dcache_hit_ratio:h default))
      "Issue"
  in
  check "caches help" (cached 0.9 > cached 0.0)
    (Printf.sprintf "%.4f (h=0.9) vs %.4f (h=0)" (cached 0.9) (cached 0.0));
  (* the verification queries *)
  let trace = Lazy.force reference_trace in
  let holds q = Query.holds (Query.eval trace (Parser.parse_query q)) in
  check "bus one-hot query holds"
    (holds "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]") "";
  check "type-5 instruction occurred"
    (holds "exists s in S [ exec_type_5(s) > 0 ]") "";
  (* baseline *)
  let serial =
    Stat.throughput (stats ~until:50_000.0 (Pnut_pipeline.Serial.full default)) "Decode"
  in
  check "pipelining speedup > 1.3" (issue /. serial > 1.3)
    (Printf.sprintf "%.2fx over the serial baseline" (issue /. serial));
  Printf.printf "\n%s\n"
    (if !failures = 0 then "All shape verdicts PASS."
     else Printf.sprintf "%d shape verdict(s) FAILED." !failures)

(* -- Machine-readable parallel benchmarks (--bench-json) -- *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Best-of-[n] wall time: sub-10ms constructions are at the mercy of
   scheduling noise in a single shot, and the committed baseline the
   regression gate reads back must be reproducible. *)
let best_of n f =
  let v, s0 = wall f in
  let best = ref s0 in
  for _ = 2 to n do
    let _, s = wall f in
    if s < !best then best := s
  done;
  (v, !best)

(* The pre-hashconsing reachability construction: states keyed by
   [Marking.to_key m ^ "|" ^ Env.snapshot env] strings.  Kept here (and
   only here) as the baseline the structural keys are measured
   against. *)
let legacy_string_key_build ?(max_states = 100_000) net =
  let key m env =
    Pnut_core.Marking.to_key m ^ "|" ^ Pnut_core.Env.snapshot env
  in
  let index = Hashtbl.create 1024 in
  let n = ref 0 in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  Hashtbl.replace index (key m0 env0) !n;
  incr n;
  let q = Queue.create () in
  Queue.add (m0, env0) q;
  while not (Queue.is_empty q) do
    let m, env = Queue.pop q in
    Array.iter
      (fun tr ->
        if Net.enabled net m env tr then begin
          let m' = Pnut_core.Marking.copy m in
          let env' = Pnut_core.Env.copy env in
          Net.consume net m' tr;
          Net.produce net m' tr;
          Pnut_core.Expr.run_stmts env' tr.Net.t_action;
          let k = key m' env' in
          if (not (Hashtbl.mem index k)) && !n < max_states then begin
            Hashtbl.replace index k !n;
            incr n;
            Queue.add (m', env') q
          end
        end)
      (Net.transitions net)
  done;
  !n

(* The pre-kernel reachability construction, frozen in full: layered
   BFS over interpreted [Net.enabled] / [Net.consume] / [Net.produce]
   with an environment copy per successor, hashconsed structural keys,
   per-source edge accumulation in a hashtable, and the final
   successor/predecessor arrays.  Kept here (and only here) as the
   baseline the compiled-kernel builder is measured against. *)
let interpreted_expand_build ?(max_states = 100_000) net =
  let module SK = Pnut_reach.Statekey in
  let module Marking = Pnut_core.Marking in
  let module Env = Pnut_core.Env in
  let expand marking env =
    let out = ref [] in
    Array.iter
      (fun tr ->
        if Net.enabled net marking env tr then begin
          let m' = Marking.copy marking in
          let env' = Env.copy env in
          Net.consume net m' tr;
          Net.produce net m' tr;
          Pnut_core.Expr.run_stmts env' tr.Net.t_action;
          out := (tr.Net.t_id, SK.make m' env', m', env') :: !out
        end)
      (Net.transitions net);
    List.rev !out
  in
  let index = SK.Tbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let succ_acc = Hashtbl.create 1024 in
  let intern k =
    match SK.Tbl.find_opt index k with
    | Some i -> Some (i, false)
    | None ->
      if !n_states >= max_states then None
      else begin
        let i = !n_states in
        incr n_states;
        SK.Tbl.replace index k i;
        states := (i, k.SK.k_marking, k.SK.k_bindings) :: !states;
        Some (i, true)
      end
  in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  ignore (intern (SK.make m0 env0));
  let frontier = ref [ (0, m0, env0) ] in
  while !frontier <> [] do
    let layer = Array.of_list !frontier in
    let expanded = Array.map (fun (_, m, e) -> expand m e) layer in
    let next = ref [] in
    Array.iteri
      (fun x succs ->
        let i, _, _ = layer.(x) in
        List.iter
          (fun (tid, k, m', env') ->
            match intern k with
            | None -> ()
            | Some (j, fresh) ->
              Hashtbl.replace succ_acc i
                ((i, tid, j)
                :: (try Hashtbl.find succ_acc i with Not_found -> []));
              if fresh then next := (j, m', env') :: !next)
          succs)
      expanded;
    frontier := List.rev !next
  done;
  let n = !n_states in
  let succ = Array.make (max n 1) [] in
  Hashtbl.iter (fun i l -> succ.(i) <- List.rev l) succ_acc;
  let pred = Array.make (max n 1) [] in
  Array.iter
    (fun l -> List.iter (fun (_, _, j) -> pred.(j) <- j :: pred.(j)) l)
    succ;
  ignore (Sys.opaque_identity (succ, pred, !states));
  n

(* Extract [<section>.<field>] from a committed BENCH_*.json without a
   JSON dependency: find the section key, then the first occurrence of
   the field after it.  Returns [None] when the file or key is missing —
   the caller treats that as "no baseline to compare". *)
let baseline_metric file ~section ~field =
  match
    (try
       let ic = open_in file in
       let len = in_channel_length ic in
       let s = really_input_string ic len in
       close_in ic;
       Some s
     with Sys_error _ -> None)
  with
  | None -> None
  | Some s ->
    let index_sub sub start =
      let n = String.length s and m = String.length sub in
      let rec go i =
        if i + m > n then None
        else if String.sub s i m = sub then Some i
        else go (i + 1)
      in
      go start
    in
    let needle = Printf.sprintf "\"%s\":" field in
    Option.bind (index_sub (Printf.sprintf "\"%s\"" section) 0) (fun i ->
        Option.bind (index_sub needle i) (fun j ->
            let k = ref (j + String.length needle) in
            while !k < String.length s && s.[!k] = ' ' do incr k done;
            let start = !k in
            while
              !k < String.length s
              && (match s.[!k] with
                 | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
                 | _ -> false)
            do
              incr k
            done;
            float_of_string_opt (String.sub s start (!k - start))))

let bench_json ~quick ~file ?baseline () =
  (* Read the committed baselines before anything is written: CI points
     [~baseline] at the same path it regenerates. *)
  let baseline_sim_rate =
    Option.bind baseline
      (baseline_metric ~section:"sim" ~field:"events_per_sec")
  in
  let baseline_reach_rate =
    Option.bind baseline
      (baseline_metric ~section:"reach" ~field:"states_per_sec")
  in
  let baseline_timed_rate =
    Option.bind baseline
      (baseline_metric ~section:"timed" ~field:"states_per_sec")
  in
  let cores = Domain.recommended_domain_count () in
  let job_counts = [ 1; 2; 4 ] in
  let b = Buffer.create 4096 in
  (* replicate sweep *)
  let rep_runs = if quick then 16 else 64 in
  let rep_until = if quick then 1_000.0 else 2_000.0 in
  let net = Model.full default in
  let read r = Stat.throughput r "Issue" in
  let rep =
    List.map
      (fun jobs ->
        let e, s =
          wall (fun () ->
              Pnut_stat.Replication.replicate ~seed:7 ~jobs ~runs:rep_runs
                ~until:rep_until net read)
        in
        (jobs, e, s))
      job_counts
  in
  let _, e1, rep_serial_s = List.hd rep in
  let rep_identical = List.for_all (fun (_, e, _) -> e = e1) rep in
  (* Parked worker domains join every stop-the-world minor GC, which
     taxes the serial allocation-heavy measurements that follow — ~2x
     on a single-core box.  Retire the pool after each parallel block
     so the serial sections measure a serial process. *)
  Pnut_exec.Pool.quiesce ();
  (* reachability: the compiled kernel expansion against the frozen
     interpreted expansion (same hashconsed keys) and the older
     string-key construction, on the Figure 1-3 pipeline and the
     branching model, plus the worker-domain sweep *)
  let reach_cap = if quick then 10_000 else 20_000 in
  let reach_reps = if quick then 3 else 5 in
  let legacy_states, legacy_s =
    best_of reach_reps (fun () -> legacy_string_key_build ~max_states:reach_cap net)
  in
  let interp_states, interp_s =
    best_of reach_reps (fun () -> interpreted_expand_build ~max_states:reach_cap net)
  in
  let reach_models =
    List.map
      (fun (name, m) ->
        let g, s =
          best_of reach_reps (fun () ->
              Pnut_reach.Graph.build ~max_states:reach_cap ~jobs:1 m)
        in
        (name, Pnut_reach.Graph.num_states g, s))
      [ ("pipeline", net);
        ("branching", Pnut_pipeline.Branching.full default) ]
  in
  let _, kernel_states, kernel_s =
    match reach_models with r :: _ -> r | [] -> assert false
  in
  let reach =
    List.map
      (fun jobs ->
        let g, s =
          wall (fun () ->
              Pnut_reach.Graph.build ~max_states:reach_cap ~jobs net)
        in
        (jobs, Pnut_reach.Graph.num_states g, s))
      job_counts
  in
  let _, hc_states, hc_serial_s = List.hd reach in
  Pnut_exec.Pool.quiesce ();
  (* PR 7: the compact arena store against the boxed store.  The model
     is a 9-place token ring (states = C(N+8,8): N=17 gives 1,081,575,
     N=10 the quick run's 43,758) — big enough that per-state boxing
     and hashtable nodes dominate the boxed build.  The ring conserves
     its tokens, so every place bound is known to the codec and a state
     packs into a single word. *)
  let ring_tokens = if quick then 10 else 17 in
  let ring =
    let rb = Net.Builder.create "ring9" in
    let ps =
      Array.init 9 (fun i ->
          Net.Builder.add_place rb
            (Printf.sprintf "r%d" i)
            ~initial:(if i = 0 then ring_tokens else 0))
    in
    for i = 0 to 8 do
      ignore
        (Net.Builder.add_transition rb
           (Printf.sprintf "rt%d" i)
           ~inputs:[ (ps.(i), 1) ]
           ~outputs:[ (ps.((i + 1) mod 9), 1) ]
          : Net.transition_id)
    done;
    Net.Builder.build rb
  in
  let ring_cap = 2_000_000 in
  let packed_reps = 3 in
  let ring_boxed_g, ring_boxed_s =
    best_of packed_reps (fun () ->
        Pnut_reach.Graph.build ~max_states:ring_cap ~jobs:1 ring)
  in
  let ring_packed_g, ring_packed_s =
    best_of packed_reps (fun () ->
        Pnut_reach.Graph.build ~max_states:ring_cap ~jobs:1 ~packed:true ring)
  in
  let ring_states = Pnut_reach.Graph.num_states ring_packed_g in
  let ring_edges = Pnut_reach.Graph.num_edges ring_packed_g in
  (* PR 8: the sharded packed build across worker counts.  Identity is
     absolute — the merge renumbers into serial FIFO order, so the
     arena, intern index and CSR arrays must be byte-identical to the
     jobs=1 build for every worker count; speedup is advisory below
     4 cores and gated above. *)
  let ring_packed_jobs =
    List.map
      (fun jobs ->
        if jobs = 1 then (1, ring_packed_g, ring_packed_s)
        else
          let g, s =
            best_of packed_reps (fun () ->
                Pnut_reach.Graph.build ~max_states:ring_cap ~jobs ~packed:true
                  ring)
          in
          (jobs, g, s))
      job_counts
  in
  let sharded_identical =
    let base = Pnut_reach.Graph.packed_arrays ring_packed_g in
    List.for_all
      (fun (_, g, _) -> Pnut_reach.Graph.packed_arrays g = base)
      ring_packed_jobs
  in
  Pnut_exec.Pool.quiesce ();
  let packed_bytes_per_state =
    match Pnut_reach.Graph.packed_bytes_per_state ring_packed_g with
    | Some x -> x
    | None -> Float.nan
  in
  (* bit-identity of the two representations on the Figure 1-3 models:
     every state (marking and environment), every successor and
     predecessor list in order, truncation flag *)
  let edge_triples es =
    List.map
      (fun (e : Pnut_reach.Graph.edge) ->
        (e.Pnut_reach.Graph.e_from, e.Pnut_reach.Graph.e_transition,
         e.Pnut_reach.Graph.e_to))
      es
  in
  let graphs_identical a b =
    Pnut_reach.Graph.complete a = Pnut_reach.Graph.complete b
    && Pnut_reach.Graph.num_states a = Pnut_reach.Graph.num_states b
    && Pnut_reach.Graph.num_edges a = Pnut_reach.Graph.num_edges b
    &&
    let n = Pnut_reach.Graph.num_states a in
    let ok = ref true in
    for i = 0 to n - 1 do
      let sa = Pnut_reach.Graph.state a i
      and sb = Pnut_reach.Graph.state b i in
      if
        sa.Pnut_reach.Graph.s_marking <> sb.Pnut_reach.Graph.s_marking
        || sa.Pnut_reach.Graph.s_env <> sb.Pnut_reach.Graph.s_env
        || edge_triples (Pnut_reach.Graph.successors a i)
           <> edge_triples (Pnut_reach.Graph.successors b i)
        || edge_triples (Pnut_reach.Graph.predecessors a i)
           <> edge_triples (Pnut_reach.Graph.predecessors b i)
      then ok := false
    done;
    !ok
  in
  let packed_identical =
    List.for_all
      (fun m ->
        graphs_identical
          (Pnut_reach.Graph.build ~max_states:reach_cap ~jobs:1 m)
          (Pnut_reach.Graph.build ~max_states:reach_cap ~jobs:1 ~packed:true m))
      [ net; Pnut_pipeline.Branching.full default ]
    && (if quick then graphs_identical ring_boxed_g ring_packed_g
        else
          (* at 10^6 states the full deep compare costs more than the
             builds; counts and truncation are checked, the per-state
             deep identity rides the quick run and the test suite *)
          Pnut_reach.Graph.num_states ring_boxed_g = ring_states
          && Pnut_reach.Graph.num_edges ring_boxed_g = ring_edges
          && Pnut_reach.Graph.complete ring_boxed_g
             = Pnut_reach.Graph.complete ring_packed_g)
  in
  (* PR 9: stubborn-set reduction on indep6x4 — six independent 4-stage
     pipelines, the pure interleaving explosion (5^6 = 15625 full
     states).  Both the deadlock-set identity and the >= 5x reduction
     are deterministic state counts, gated absolutely in quick and full
     runs alike; the timings ride along as advisory data. *)
  let indep = Pnut_pipeline.Indep.net ~pipelines:6 ~stages:4 in
  let por_cap = 200_000 in
  let por_full_g, por_full_s =
    best_of packed_reps (fun () ->
        Pnut_reach.Graph.build ~max_states:por_cap ~jobs:1 ~packed:true indep)
  in
  let por_red_g, por_red_s =
    best_of packed_reps (fun () ->
        Pnut_reach.Graph.build ~max_states:por_cap ~jobs:1 ~packed:true
          ~por:true indep)
  in
  let por_full_states = Pnut_reach.Graph.num_states por_full_g in
  let por_red_states = Pnut_reach.Graph.num_states por_red_g in
  let deadlock_markings g =
    List.sort compare
      (List.map
         (fun i ->
           (Pnut_reach.Graph.state g i).Pnut_reach.Graph.s_marking)
         (Pnut_reach.Graph.deadlocks g))
  in
  let por_deadlocks_identical =
    deadlock_markings por_full_g = deadlock_markings por_red_g
    && (* the boxed builders must agree with each other too *)
    deadlock_markings (Pnut_reach.Graph.build ~max_states:por_cap ~jobs:1 indep)
    = deadlock_markings
        (Pnut_reach.Graph.build ~max_states:por_cap ~jobs:1 ~por:true indep)
  in
  let por_jobs_identical =
    let base = Pnut_reach.Graph.packed_arrays por_red_g in
    List.for_all
      (fun jobs ->
        jobs = 1
        || Pnut_reach.Graph.packed_arrays
             (Pnut_reach.Graph.build ~max_states:por_cap ~jobs ~packed:true
                ~por:true indep)
           = base)
      job_counts
  in
  Pnut_exec.Pool.quiesce ();
  let por_reduction =
    float_of_int por_full_states /. float_of_int (max 1 por_red_states)
  in
  (* PR 10: the timed state-class graph against the frozen explicit
     expansion on the Figure 1-3 pipeline with a 10-cycle memory — the
     longer the deterministic delays, the more distinct clock
     valuations the explicit expansion enumerates per marking, and the
     more the interval-domain classes collapse.  Both graphs must agree
     on the reachable-marking and deadlock-marking sets (that is the
     whole correctness contract), the class count must be >= 5x
     smaller, and the packed class arrays must be byte-identical for
     every worker count. *)
  let timed_net = Model.full { default with memory_cycles = 10.0 } in
  let timed_cap = 200_000 in
  let timed_class_g, timed_class_s =
    best_of packed_reps (fun () ->
        Pnut_reach.Timed.build ~max_states:timed_cap ~jobs:1 ~packed:true
          timed_net)
  in
  let timed_explicit_g, timed_explicit_s =
    best_of packed_reps (fun () ->
        Pnut_reach.Timed_explicit.build ~max_states:timed_cap timed_net)
  in
  let timed_classes = Pnut_reach.Timed.num_states timed_class_g in
  let timed_vectors = Pnut_reach.Timed.num_vectors timed_class_g in
  let timed_explicit_states =
    Pnut_reach.Timed_explicit.num_states timed_explicit_g
  in
  let timed_reduction =
    float_of_int timed_explicit_states /. float_of_int (max 1 timed_classes)
  in
  let timed_markings_identical =
    List.sort_uniq compare
      (List.init timed_classes (fun i ->
           (Pnut_reach.Timed.state timed_class_g i)
             .Pnut_reach.Timed.ts_marking))
    = List.sort_uniq compare
        (List.init timed_explicit_states (fun i ->
             (Pnut_reach.Timed_explicit.state timed_explicit_g i)
               .Pnut_reach.Timed_explicit.ts_marking))
  in
  let timed_deadlocks_identical =
    List.sort_uniq compare
      (List.map
         (fun i ->
           (Pnut_reach.Timed.state timed_class_g i)
             .Pnut_reach.Timed.ts_marking)
         (Pnut_reach.Timed.deadlocks timed_class_g))
    = List.sort_uniq compare
        (List.map
           (fun i ->
             (Pnut_reach.Timed_explicit.state timed_explicit_g i)
               .Pnut_reach.Timed_explicit.ts_marking)
           (Pnut_reach.Timed_explicit.deadlocks timed_explicit_g))
  in
  let timed_jobs_identical =
    let base =
      ( Pnut_reach.Timed.packed_arrays timed_class_g,
        Pnut_reach.Timed.domain_arrays timed_class_g )
    in
    List.for_all
      (fun jobs ->
        jobs = 1
        ||
        let g =
          Pnut_reach.Timed.build ~max_states:timed_cap ~jobs ~packed:true
            timed_net
        in
        ( Pnut_reach.Timed.packed_arrays g,
          Pnut_reach.Timed.domain_arrays g )
        = base)
      job_counts
  in
  Pnut_exec.Pool.quiesce ();
  let timed_bytes_per_state =
    match Pnut_reach.Timed.packed_bytes_per_state timed_class_g with
    | Some x -> x
    | None -> Float.nan
  in
  (* raw simulation events/sec (single stream; the per-run engine),
     measured against the frozen pre-optimization engine on the same
     model and seed, and swept across every built-in model — locality
     differs (the serial model fires one transition at a time, the
     pipeline keeps five stages busy), so one model alone would hide
     regressions *)
  (* Always the full horizon, even under [--quick]: the whole sweep
     costs tens of milliseconds, and the CI regression gate compares
     a quick run against the committed full-run baseline — the two must
     measure the same thing. *)
  let sim_until = 10_000.0 in
  let outcome, sim_s =
    wall (fun () -> Sim.simulate ~seed:42 ~until:sim_until net)
  in
  let events = outcome.Sim.started in
  let ref_outcome, ref_s =
    wall (fun () -> Pnut_sim.Reference.simulate ~seed:42 ~until:sim_until net)
  in
  let ref_events = ref_outcome.Sim.started in
  (* supervision overhead: the same Figure-5 model under a generous
     budget (never trips, but arms the 256-step monitor poll) against
     the unbudgeted engine.  A 10x horizon and best-of keep the ratio
     out of scheduler noise: the 10k-cycle run lasts ~2.5 ms, where a
     single preemption swamps a sub-3% comparison. *)
  let budget_reps = if quick then 7 else 11 in
  let budget_until = 10.0 *. sim_until in
  let generous_budget =
    Pnut_exec.Budget.make ~wall_s:3600.0 ~heap_mb:65536 ()
  in
  let run_plain () = Sim.simulate ~seed:42 ~until:budget_until net in
  let run_budgeted () =
    let st = Sim.create ~seed:42 net in
    Sim.run ~until:budget_until ~budget:generous_budget st
  in
  (* Interleave the pair so slow drift (thermal, noisy neighbours) hits
     both sides equally; the per-side minimum is the cleanest shot. *)
  let plain_outcome, plain_s0 = wall run_plain in
  let budgeted_outcome, budgeted_s0 = wall run_budgeted in
  let plain_s = ref plain_s0 and budgeted_s = ref budgeted_s0 in
  for _ = 2 to budget_reps do
    let _, p = wall run_plain in
    if p < !plain_s then plain_s := p;
    let _, g = wall run_budgeted in
    if g < !budgeted_s then budgeted_s := g
  done;
  let plain_s = !plain_s and budgeted_s = !budgeted_s in
  let budget_identical =
    budgeted_outcome.Sim.started = plain_outcome.Sim.started
    && budgeted_outcome.Sim.final_clock = plain_outcome.Sim.final_clock
  in
  let budget_overhead_ratio =
    if budgeted_s > 0.0 then plain_s /. budgeted_s else 0.0
  in
  let sim_sweep =
    List.map
      (fun (name, m) ->
        let o, s = wall (fun () -> Sim.simulate ~seed:42 ~until:sim_until m) in
        (name, o.Sim.started, s))
      [ ("pipeline", net);
        ("prefetch", Model.prefetch_only default);
        ("interpreted_isa", Interpreted.full default);
        ("branching", Pnut_pipeline.Branching.full default);
        ("serial", Pnut_pipeline.Serial.full default) ]
  in
  (* codec throughput: text vs binary on the Figure-5 reference trace *)
  let codec_until = if quick then 2_000.0 else 10_000.0 in
  let codec_trace = fst (Sim.trace ~seed:42 ~until:codec_until net) in
  let codec_events = Trace.length codec_trace in
  let reps = if quick then 3 else 10 in
  let per_rep f =
    let (), s = wall (fun () -> for _ = 1 to reps do ignore (f ()) done) in
    s /. float_of_int reps
  in
  let text = Pnut_trace.Codec.to_string codec_trace in
  let bin = Pnut_trace.Binary.to_string codec_trace in
  let text_enc_s = per_rep (fun () -> Pnut_trace.Codec.to_string codec_trace) in
  let bin_enc_s = per_rep (fun () -> Pnut_trace.Binary.to_string codec_trace) in
  let text_dec_s = per_rep (fun () -> Pnut_trace.Codec.parse text) in
  let bin_dec_s = per_rep (fun () -> Pnut_trace.Binary.parse bin) in
  (* peak-RSS proxy: live words a stat pass must hold over the same
     stored trace.  The streaming pass retains only the accumulator;
     the materializing pass additionally retains the whole Trace.t. *)
  let trace_file = Filename.temp_file "pnut_bench" ".trace" in
  let oc = open_out_bin trace_file in
  output_string oc text;
  close_out oc;
  let retained f =
    Gc.compact ();
    let before = (Gc.stat ()).Gc.live_words in
    let minor0 = Gc.minor_words () in
    let keep = f () in
    Gc.compact ();
    let after = (Gc.stat ()).Gc.live_words in
    let alloc_mb = (Gc.minor_words () -. minor0) *. 8.0 /. 1e6 in
    ignore (Sys.opaque_identity keep);
    (after - before, alloc_mb)
  in
  let with_trace_file f =
    let ic = open_in_bin trace_file in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)
  in
  let streaming_heap, streaming_alloc_mb =
    retained (fun () ->
        with_trace_file (fun ic ->
            let sink, get = Stat.sink () in
            Pnut_trace.Codec.stream_channel ic sink;
            get ()))
  in
  let materialized_heap, materialized_alloc_mb =
    retained (fun () ->
        with_trace_file (fun ic ->
            let tr = Pnut_trace.Codec.read_channel ic in
            (tr, Stat.of_trace tr)))
  in
  Sys.remove trace_file;
  (* emit *)
  let rate count s = if s > 0.0 then float_of_int count /. s else 0.0 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"bench\": \"pr10\",\n";
  Printf.bprintf b "  \"model\": \"pipeline (Model.full default)\",\n";
  Printf.bprintf b "  \"cores\": %d,\n" cores;
  Printf.bprintf b "  \"quick\": %b,\n" quick;
  Printf.bprintf b "  \"replicate\": {\n";
  Printf.bprintf b "    \"runs\": %d,\n" rep_runs;
  Printf.bprintf b "    \"until\": %g,\n" rep_until;
  Printf.bprintf b "    \"identical_across_jobs\": %b,\n" rep_identical;
  Printf.bprintf b "    \"sweep\": [\n";
  List.iteri
    (fun i (jobs, _, s) ->
      let speedup = if s > 0.0 then rep_serial_s /. s else 0.0 in
      Printf.bprintf b
        "      { \"jobs\": %d, \"seconds\": %.6f, \"speedup\": %.3f, \
         \"parallel_efficiency\": %.3f }%s\n"
        jobs s speedup
        (speedup /. float_of_int jobs)
        (if i = List.length rep - 1 then "" else ","))
    rep;
  Printf.bprintf b "    ]\n  },\n";
  Printf.bprintf b "  \"reach\": {\n";
  (* headline first: the serial kernel build on the Figure 1-3 pipeline,
     which is what the regression gate reads back *)
  Printf.bprintf b "    \"states_per_sec\": %.0f,\n" (rate kernel_states kernel_s);
  Printf.bprintf b "    \"max_states\": %d,\n" reach_cap;
  Printf.bprintf b
    "    \"kernel\": { \"states\": %d, \"seconds\": %.6f },\n"
    kernel_states kernel_s;
  Printf.bprintf b
    "    \"interpreted\": { \"states\": %d, \"seconds\": %.6f, \
     \"states_per_sec\": %.0f },\n"
    interp_states interp_s (rate interp_states interp_s);
  Printf.bprintf b "    \"speedup_vs_interpreted\": %.3f,\n"
    (if kernel_s > 0.0 then interp_s /. kernel_s else 0.0);
  Printf.bprintf b "    \"kernel_at_least_1_5x_interpreted\": %b,\n"
    (interp_s >= 1.5 *. kernel_s);
  Printf.bprintf b
    "    \"legacy_string_keys\": { \"states\": %d, \"seconds\": %.6f, \
     \"states_per_sec\": %.0f },\n"
    legacy_states legacy_s (rate legacy_states legacy_s);
  Printf.bprintf b "    \"models\": [\n";
  List.iteri
    (fun i (name, states, s) ->
      Printf.bprintf b
        "      { \"model\": %S, \"states\": %d, \"seconds\": %.6f, \
         \"states_per_sec\": %.0f }%s\n"
        name states s (rate states s)
        (if i = List.length reach_models - 1 then "" else ","))
    reach_models;
  Printf.bprintf b "    ],\n";
  Printf.bprintf b "    \"jobs_sweep\": [\n";
  List.iteri
    (fun i (jobs, states, s) ->
      let speedup = if s > 0.0 then hc_serial_s /. s else 0.0 in
      Printf.bprintf b
        "      { \"jobs\": %d, \"states\": %d, \"seconds\": %.6f, \
         \"states_per_sec\": %.0f, \"speedup_vs_legacy\": %.3f, \
         \"parallel_efficiency\": %.3f }%s\n"
        jobs states s (rate states s)
        (if s > 0.0 then legacy_s /. s else 0.0)
        (speedup /. float_of_int jobs)
        (if i = List.length reach - 1 then "" else ","))
    reach;
  Printf.bprintf b "    ],\n";
  Printf.bprintf b
    "    \"hashconsed_serial_faster_than_legacy\": %b,\n" (hc_serial_s < legacy_s);
  Printf.bprintf b "    \"packed\": {\n";
  Printf.bprintf b
    "      \"model\": \"ring9\", \"tokens\": %d, \"states\": %d, \
     \"edges\": %d,\n"
    ring_tokens ring_states ring_edges;
  Printf.bprintf b
    "      \"boxed\": { \"seconds\": %.6f, \"states_per_sec\": %.0f },\n"
    ring_boxed_s (rate ring_states ring_boxed_s);
  Printf.bprintf b
    "      \"seconds\": %.6f, \"states_per_sec\": %.0f,\n" ring_packed_s
    (rate ring_states ring_packed_s);
  Printf.bprintf b "      \"speedup_vs_boxed\": %.3f,\n"
    (if ring_packed_s > 0.0 then ring_boxed_s /. ring_packed_s else 0.0);
  Printf.bprintf b "      \"speedup_at_least_1_5x\": %b,\n"
    (ring_boxed_s >= 1.5 *. ring_packed_s);
  Printf.bprintf b "      \"jobs_sweep\": [\n";
  List.iteri
    (fun i (jobs, g, s) ->
      let speedup = if s > 0.0 then ring_packed_s /. s else 0.0 in
      Printf.bprintf b
        "        { \"jobs\": %d, \"seconds\": %.6f, \"states_per_sec\": \
         %.0f, \"speedup\": %.3f, \"parallel_efficiency\": %.3f }%s\n"
        jobs s
        (rate (Pnut_reach.Graph.num_states g) s)
        speedup
        (speedup /. float_of_int jobs)
        (if i = List.length ring_packed_jobs - 1 then "" else ","))
    ring_packed_jobs;
  Printf.bprintf b "      ],\n";
  Printf.bprintf b "      \"identical_across_jobs\": %b,\n" sharded_identical;
  Printf.bprintf b "      \"bytes_per_state\": %.2f,\n" packed_bytes_per_state;
  Printf.bprintf b "      \"bytes_per_state_at_most_32\": %b,\n"
    (packed_bytes_per_state <= 32.0);
  Printf.bprintf b "      \"identical_on_figures\": %b\n" packed_identical;
  Printf.bprintf b "    },\n";
  Printf.bprintf b "    \"por\": {\n";
  Printf.bprintf b "      \"model\": \"indep6x4\",\n";
  Printf.bprintf b
    "      \"full\": { \"states\": %d, \"seconds\": %.6f },\n"
    por_full_states por_full_s;
  Printf.bprintf b
    "      \"reduced\": { \"states\": %d, \"seconds\": %.6f },\n"
    por_red_states por_red_s;
  Printf.bprintf b "      \"reduction\": %.1f,\n" por_reduction;
  Printf.bprintf b "      \"reduction_at_least_5x\": %b,\n"
    (por_full_states >= 5 * por_red_states);
  Printf.bprintf b "      \"deadlock_sets_identical\": %b,\n"
    por_deadlocks_identical;
  Printf.bprintf b "      \"identical_across_jobs\": %b\n" por_jobs_identical;
  Printf.bprintf b "    },\n";
  (* [states_per_sec] stays the first field after the "timed" key: the
     regression gate reads it back with the same text scan used for
     the sim and reach headlines *)
  Printf.bprintf b "    \"timed\": {\n";
  Printf.bprintf b "      \"states_per_sec\": %.0f,\n"
    (rate timed_classes timed_class_s);
  Printf.bprintf b
    "      \"model\": \"pipeline (Model.full, memory_cycles=10)\",\n";
  Printf.bprintf b
    "      \"classes\": %d, \"vectors\": %d, \"seconds\": %.6f,\n"
    timed_classes timed_vectors timed_class_s;
  Printf.bprintf b
    "      \"explicit\": { \"states\": %d, \"seconds\": %.6f, \
     \"states_per_sec\": %.0f },\n"
    timed_explicit_states timed_explicit_s
    (rate timed_explicit_states timed_explicit_s);
  Printf.bprintf b "      \"reduction_vs_explicit\": %.2f,\n" timed_reduction;
  Printf.bprintf b "      \"reduction_at_least_5x\": %b,\n"
    (timed_explicit_states >= 5 * timed_classes);
  Printf.bprintf b "      \"marking_sets_identical\": %b,\n"
    timed_markings_identical;
  Printf.bprintf b "      \"deadlock_sets_identical\": %b,\n"
    timed_deadlocks_identical;
  Printf.bprintf b "      \"bytes_per_state\": %.2f,\n" timed_bytes_per_state;
  Printf.bprintf b "      \"identical_across_jobs\": %b\n"
    timed_jobs_identical;
  Printf.bprintf b "    }\n";
  Printf.bprintf b "  },\n";
  Printf.bprintf b "  \"sim\": {\n";
  Printf.bprintf b
    "    \"until\": %g, \"events\": %d, \"seconds\": %.6f, \
     \"events_per_sec\": %.0f,\n"
    sim_until events sim_s (rate events sim_s);
  Printf.bprintf b
    "    \"reference_engine\": { \"events\": %d, \"seconds\": %.6f, \
     \"events_per_sec\": %.0f },\n"
    ref_events ref_s (rate ref_events ref_s);
  Printf.bprintf b "    \"speedup_vs_reference\": %.3f,\n"
    (if sim_s > 0.0 then ref_s /. sim_s else 0.0);
  Printf.bprintf b "    \"traces_identical\": %b,\n" (events = ref_events);
  Printf.bprintf b
    "    \"budget_overhead\": { \"until\": %g, \"plain_seconds\": %.6f, \
     \"budgeted_seconds\": %.6f, \"budgeted_events_per_sec\": %.0f, \
     \"events_per_sec_ratio\": %.4f, \"outcome_identical\": %b },\n"
    budget_until plain_s budgeted_s
    (rate budgeted_outcome.Sim.started budgeted_s)
    budget_overhead_ratio budget_identical;
  Printf.bprintf b "    \"sweep\": [\n";
  List.iteri
    (fun i (name, ev, s) ->
      Printf.bprintf b
        "      { \"model\": %S, \"events\": %d, \"seconds\": %.6f, \
         \"events_per_sec\": %.0f }%s\n"
        name ev s (rate ev s)
        (if i = List.length sim_sweep - 1 then "" else ","))
    sim_sweep;
  Printf.bprintf b "    ]\n  },\n";
  Printf.bprintf b "  \"codec\": {\n";
  Printf.bprintf b "    \"until\": %g,\n" codec_until;
  Printf.bprintf b "    \"deltas\": %d,\n" codec_events;
  Printf.bprintf b
    "    \"text\": { \"bytes\": %d, \"encode_seconds\": %.6f, \
     \"decode_seconds\": %.6f, \"decode_deltas_per_sec\": %.0f },\n"
    (String.length text) text_enc_s text_dec_s (rate codec_events text_dec_s);
  Printf.bprintf b
    "    \"binary\": { \"bytes\": %d, \"encode_seconds\": %.6f, \
     \"decode_seconds\": %.6f, \"decode_deltas_per_sec\": %.0f },\n"
    (String.length bin) bin_enc_s bin_dec_s (rate codec_events bin_dec_s);
  Printf.bprintf b "    \"size_ratio\": %.3f,\n"
    (float_of_int (String.length text) /. float_of_int (String.length bin));
  Printf.bprintf b "    \"decode_speedup\": %.3f,\n" (text_dec_s /. bin_dec_s);
  Printf.bprintf b "    \"encode_speedup\": %.3f,\n" (text_enc_s /. bin_enc_s);
  Printf.bprintf b "    \"binary_at_least_5x_smaller\": %b,\n"
    (5 * String.length bin <= String.length text);
  Printf.bprintf b "    \"binary_decodes_faster\": %b,\n"
    (bin_dec_s < text_dec_s);
  Printf.bprintf b
    "    \"streaming_stat\": { \"retained_live_words\": %d, \
     \"minor_alloc_mb\": %.2f },\n"
    streaming_heap streaming_alloc_mb;
  Printf.bprintf b
    "    \"materialized_stat\": { \"retained_live_words\": %d, \
     \"minor_alloc_mb\": %.2f }\n"
    materialized_heap materialized_alloc_mb;
  Printf.bprintf b "  }\n";
  Printf.bprintf b "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s (cores=%d, reach %d vs %d states, identical=%b)\n"
    file cores legacy_states hc_states rep_identical;
  let gate name current = function
    | None -> true
    | Some base ->
      let floor = 0.7 *. base in
      if current < floor then begin
        Printf.eprintf
          "bench: FAIL %s %.0f is more than 30%% below the committed \
           baseline %.0f (floor %.0f)\n"
          name current base floor;
        false
      end
      else begin
        Printf.printf "bench: %s %.0f vs baseline %.0f: ok\n" name current
          base;
        true
      end
  in
  (* the packed store's acceptance thresholds: bit-identity always;
     the bytes/state and speedup floors only on the full-size ring (the
     quick run's 43k states can't amortize fixed costs and would make
     the CI verdict flaky) *)
  let packed_ok =
    if not packed_identical then begin
      Printf.eprintf
        "bench: FAIL reach.packed graphs differ from the boxed builder\n";
      false
    end
    else if not sharded_identical then begin
      Printf.eprintf
        "bench: FAIL reach.packed sharded arenas differ across --jobs\n";
      false
    end
    else if
      (not quick)
      && not
           (packed_bytes_per_state <= 32.0
           && ring_boxed_s >= 1.5 *. ring_packed_s)
    then begin
      Printf.eprintf
        "bench: FAIL reach.packed %.2f bytes/state (<=32 required), \
         speedup %.2fx (>=1.5 required)\n"
        packed_bytes_per_state
        (if ring_packed_s > 0.0 then ring_boxed_s /. ring_packed_s else 0.0);
      false
    end
    else begin
      Printf.printf
        "bench: reach.packed %d states, %.2f bytes/state, %.2fx vs boxed, \
         identical=%b: ok\n"
        ring_states packed_bytes_per_state
        (if ring_packed_s > 0.0 then ring_boxed_s /. ring_packed_s else 0.0)
        packed_identical;
      true
    end
  in
  (* the stubborn-set acceptance thresholds are deterministic state
     counts, so they gate unconditionally: identical deadlock marking
     sets always, >= 5x fewer states on indep6x4, and byte-identical
     reduced arenas across worker counts *)
  let por_ok =
    if not por_deadlocks_identical then begin
      Printf.eprintf
        "bench: FAIL reach.por deadlock marking sets differ between the \
         full and reduced builds\n";
      false
    end
    else if por_full_states < 5 * por_red_states then begin
      Printf.eprintf
        "bench: FAIL reach.por reduction %.1fx on indep6x4 (%d vs %d \
         states; >= 5x required)\n"
        por_reduction por_full_states por_red_states;
      false
    end
    else if not por_jobs_identical then begin
      Printf.eprintf
        "bench: FAIL reach.por reduced arenas differ across --jobs\n";
      false
    end
    else begin
      Printf.printf
        "bench: reach.por indep6x4 %d -> %d states (%.1fx), deadlock sets \
         identical: ok\n"
        por_full_states por_red_states por_reduction;
      true
    end
  in
  (* the state-class acceptance thresholds are deterministic, so they
     gate unconditionally: identical reachable-marking and
     deadlock-marking sets against the frozen explicit oracle, >= 5x
     fewer classes than explicit states on the slow-memory pipeline,
     and byte-identical packed class arrays across worker counts *)
  let timed_ok =
    if not timed_markings_identical then begin
      Printf.eprintf
        "bench: FAIL reach.timed reachable-marking sets differ between \
         the class graph and the explicit expansion\n";
      false
    end
    else if not timed_deadlocks_identical then begin
      Printf.eprintf
        "bench: FAIL reach.timed deadlock marking sets differ between \
         the class graph and the explicit expansion\n";
      false
    end
    else if timed_explicit_states < 5 * timed_classes then begin
      Printf.eprintf
        "bench: FAIL reach.timed reduction %.2fx on the slow-memory \
         pipeline (%d classes vs %d explicit states; >= 5x required)\n"
        timed_reduction timed_classes timed_explicit_states;
      false
    end
    else if not timed_jobs_identical then begin
      Printf.eprintf
        "bench: FAIL reach.timed packed class arrays differ across --jobs\n";
      false
    end
    else begin
      Printf.printf
        "bench: reach.timed %d classes vs %d explicit states (%.2fx), \
         marking and deadlock sets identical: ok\n"
        timed_classes timed_explicit_states timed_reduction;
      true
    end
  in
  let sim_ok = gate "sim.events_per_sec" (rate events sim_s) baseline_sim_rate in
  let reach_ok =
    gate "reach.states_per_sec" (rate kernel_states kernel_s)
      baseline_reach_rate
  in
  let timed_rate_ok =
    gate "reach.timed.states_per_sec" (rate timed_classes timed_class_s)
      baseline_timed_rate
  in
  (* an armed-but-untripped budget must stay within 3% of the committed
     unbudgeted events/sec baseline — the monitor poll rides the
     existing watchdog cadence, so anything slower means a check leaked
     into the hot loop.  Gating against the committed number (like the
     other gates) keeps the verdict out of same-process scheduler
     noise; the measured plain/budgeted ratio is still in the JSON. *)
  let budgeted_rate = rate budgeted_outcome.Sim.started budgeted_s in
  let budget_ok =
    match baseline_sim_rate with
    | None -> true
    | Some base ->
      let floor = 0.97 *. base in
      if budgeted_rate >= floor then begin
        Printf.printf
          "bench: sim.budget_overhead budgeted %.0f ev/s vs baseline %.0f \
           (floor %.0f): ok\n"
          budgeted_rate base floor;
        true
      end
      else begin
        Printf.eprintf
          "bench: FAIL sim.budget_overhead budgeted %.0f ev/s is more than \
           3%% below the committed baseline %.0f (floor %.0f)\n"
          budgeted_rate base floor;
        false
      end
  in
  (* the scaling gate: parallel efficiency of the sharded packed build
     at jobs=4 must hold 0.70 — but only where the hardware can show
     it.  On fewer than 4 cores (or the undersized quick ring, which
     cannot amortize cross-shard traffic) the gate is announced as
     skipped rather than silently passed, so a CI log always records
     which verdict was reached and why. *)
  let efficiency_ok =
    match List.find_opt (fun (j, _, _) -> j = 4) ring_packed_jobs with
    | Some (jobs, _, s) when cores >= 4 && not quick ->
      let speedup = if s > 0.0 then ring_packed_s /. s else 0.0 in
      let eff = speedup /. float_of_int jobs in
      if eff >= 0.7 then begin
        Printf.printf
          "bench: reach.packed jobs=4 speedup %.2fx, efficiency %.2f \
           (>=0.70): ok\n"
          speedup eff;
        true
      end
      else begin
        Printf.eprintf
          "bench: FAIL reach.packed jobs=4 parallel efficiency %.2f is \
           below 0.70 (speedup %.2fx on %d cores)\n"
          eff speedup cores;
        false
      end
    | _ ->
      Printf.printf
        "bench: reach.packed efficiency gate SKIPPED (cores=%d, quick=%b; \
         needs >=4 cores and the full-size ring)\n"
        cores quick;
      true
  in
  if
    not
      (sim_ok && reach_ok && timed_rate_ok && budget_ok && packed_ok
     && por_ok && timed_ok && efficiency_ok)
  then exit 1

let run_figures () =
  figure_1_to_3 ();
  figure_4 ();
  figure_5 ();
  figure_6 ();
  figure_7 ();
  section_4_4 ();
  ablation_firing_vs_enabling ();
  ablation_memory_speed ();
  ablation_buffer_size ();
  ablation_cache ();
  ablation_instruction_mix ();
  ablation_interpreted ();
  ablation_analytic ();
  ablation_branches ();
  ablation_serial ();
  bechamel_micro ();
  shape_verdicts ();
  print_newline ()

let () =
  let argv = Array.to_list Sys.argv in
  let rec json_file = function
    | "--bench-json" :: next :: _ when String.length next > 0 && next.[0] <> '-'
      ->
      Some next
    | "--bench-json" :: _ -> Some "BENCH_pr10.json"
    | _ :: rest -> json_file rest
    | [] -> None
  in
  let rec baseline = function
    | "--baseline" :: next :: _
      when String.length next > 0 && next.[0] <> '-' ->
      Some next
    | _ :: rest -> baseline rest
    | [] -> None
  in
  match json_file argv with
  | Some file ->
    bench_json ~quick:(List.mem "--quick" argv) ~file ?baseline:(baseline argv)
      ()
  | None -> run_figures ()
