(* The P-NUT command-line driver: simulate, analyze, filter, plot, check
   and animate Petri-net models, mirroring the original toolset's
   pipe-friendly decomposition (simulator | filter | stat/tracertool). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Exit codes, used consistently by every subcommand:
   0  success;
   1  negative analysis verdict (failing query, unbounded net, dying
      cycle, aborted simulation, fault campaign with deadlocks/errors);
   2  usage, parse or specification errors;
   3  degraded: a resource budget (--wall-limit / --heap-limit-mb, or a
      state cap reported through a supervised builder) tripped and a
      partial result was emitted.  Partial output is well-formed — a
      valid prefix of the full result — but incomplete. *)

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 2) fmt

let exit_degraded = 3

(* Budget flags, shared by every long-running subcommand.  No flags →
   no budget (zero overhead); a tripped budget degrades gracefully:
   partial output, a diagnostic on stderr, exit 3. *)
let budget_arg =
  let wall =
    Arg.(value & opt (some float) None & info [ "wall-limit" ] ~docv:"SECONDS"
           ~doc:"Resource budget: stop gracefully after SECONDS of wall \
                 clock, emit the partial result and exit 3.")
  in
  let heap =
    Arg.(value & opt (some int) None & info [ "heap-limit-mb" ] ~docv:"MB"
           ~doc:"Resource budget: stop gracefully once the major heap \
                 exceeds MB megabytes, emit the partial result and exit 3.")
  in
  let mk wall_s heap_mb =
    if wall_s = None && heap_mb = None then None
    else
      try Some (Pnut_exec.Budget.make ?wall_s ?heap_mb ())
      with Invalid_argument msg -> die "%s" msg
  in
  Term.(const mk $ wall $ heap)

(* Report a budget trip on stderr; callers exit [exit_degraded] after
   emitting whatever partial output they have. *)
let report_degraded what reason progress =
  Format.eprintf "%s degraded: %s (%a)@." what
    (Pnut_exec.Supervisor.reason_message reason)
    Pnut_exec.Supervisor.pp_progress progress

(* Parse a mini-language argument (query, signal, CTL formula), exiting
   2 with a uniform location message on failure. *)
let parse_arg what parse text =
  try parse text
  with Pnut_lang.Parser.Parse_error (_, col, msg) ->
    die "%s %S: column %d: %s" what text col msg

(* Run an analysis that reports bad input via Invalid_argument. *)
let or_die f = try f () with Invalid_argument msg -> die "%s" msg

let load_net path =
  try Pnut_lang.Parser.parse_net (read_file path)
  with Pnut_lang.Parser.Parse_error (line, col, msg) ->
    die "%s:%d:%d: %s" path line col msg

(* Trace input, shared by every consumer.  The format (text or binary)
   is auto-detected from the first byte; codec errors exit 2 with the
   source location (line for text, byte offset for binary). *)

let with_trace_in path f =
  if path = "-" then f stdin
  else
    match open_in_bin path with
    | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)
    | exception Sys_error msg -> die "%s" msg

let trace_errors path f =
  try f () with
  | Pnut_trace.Codec.Parse_error (line, msg) -> die "%s:%d: %s" path line msg
  | Pnut_trace.Binary.Parse_error (off, msg) ->
    die "%s: byte %d: %s" path off msg
  | Sys_error msg -> die "%s" msg

(* Stream a trace into a sink in O(1) memory. *)
let stream_trace path sink =
  trace_errors path (fun () ->
      with_trace_in path (fun ic -> Pnut_trace.Codec.stream_channel ic sink))

(* Materialize a trace, for the tools that need random access (tracer
   windows, check's state queries, batch means). *)
let load_trace path =
  trace_errors path (fun () -> with_trace_in path Pnut_trace.Codec.read_channel)

(* Trace output: a streaming writer sink over a channel. *)
let trace_out_channel out =
  if out = "-" then (stdout, false)
  else
    match open_out_bin out with
    | oc -> (oc, true)
    | exception Sys_error msg -> die "%s" msg

let trace_writer_sink format oc =
  match format with
  | `Text -> Pnut_trace.Codec.channel_sink oc
  | `Binary -> Pnut_trace.Binary.channel_sink oc

let close_trace_out (oc, close) = if close then close_out oc else flush oc

(* -- shared arguments -- *)

let net_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL.pn"
         ~doc:"Textual Petri-net model file.")

let trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
         ~doc:"Trace file produced by $(b,pnut sim) (or - for stdin).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
         ~doc:"Random seed for the simulation experiment.")

let jobs_arg =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (`Msg "worker count must be >= 0")
      | None -> Error (`Msg (Printf.sprintf "invalid worker count %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt jobs_conv 0 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains (0 = auto: $(b,PNUT_JOBS) or the core \
               count).  Results are identical for every value.")

let until_arg =
  Arg.(value & opt (some float) None & info [ "until" ] ~docv:"T"
         ~doc:"Simulate until the clock reaches T.")

let format_arg =
  Arg.(value
       & opt (enum [ ("text", `Text); ("binary", `Binary) ]) `Text
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Trace encoding on output: $(b,text) (line-oriented, \
                 human-readable) or $(b,binary) (compact varint records; \
                 see docs/LANGUAGE.md).  Readers auto-detect either.")

let max_events_arg =
  Arg.(value & opt (some int) None & info [ "max-events" ] ~docv:"N"
         ~doc:"Stop after N firings have started.")

(* -- pnut model -- *)

let model_cmd =
  let doc = "Emit a built-in processor model in the textual language." in
  let which =
    (* the named models plus the indep<N>x<K> generator family, which an
       enum cannot express *)
    let parse s =
      match s with
      | "pipeline" -> Ok `Pipeline
      | "prefetch" -> Ok `Prefetch
      | "interpreted" -> Ok `Interpreted
      | "branching" -> Ok `Branching
      | "serial" -> Ok `Serial
      | _ ->
        (match Pnut_pipeline.Indep.parse_name s with
        | Some (n, k) -> Ok (`Indep (n, k))
        | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "invalid model %S: expected pipeline, prefetch, \
                   interpreted, branching, serial or indep<N>x<K>"
                  s)))
    in
    let print ppf = function
      | `Pipeline -> Format.pp_print_string ppf "pipeline"
      | `Prefetch -> Format.pp_print_string ppf "prefetch"
      | `Interpreted -> Format.pp_print_string ppf "interpreted"
      | `Branching -> Format.pp_print_string ppf "branching"
      | `Serial -> Format.pp_print_string ppf "serial"
      | `Indep (n, k) -> Format.fprintf ppf "indep%dx%d" n k
    in
    Arg.(value
         & pos 0 (Arg.conv (parse, print)) `Pipeline
         & info [] ~docv:"NAME"
             ~doc:"pipeline (Figures 1-3), prefetch (Figure 1), interpreted \
                   (Figure 4 style), branching (flush-on-branch), serial, \
                   or indep<N>x<K> (N independent K-stage pipelines — a \
                   width-scalable concurrency benchmark).")
  in
  let memory =
    Arg.(value & opt float 5.0 & info [ "memory-cycles" ] ~docv:"C"
           ~doc:"Processor cycles per memory access.")
  in
  let buffers =
    Arg.(value & opt int 6 & info [ "buffer-words" ] ~docv:"W"
           ~doc:"Instruction-buffer size in words.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the model to FILE instead of stdout.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ]
           ~doc:"List the built-in models with one-line descriptions and \
                 exit.")
  in
  let run which memory buffers out list_models =
    if list_models then begin
      List.iter
        (fun (name, desc) -> Printf.printf "%-12s %s\n" name desc)
        [
          ( "pipeline",
            "the paper's full pipelined processor (Figures 1-3): prefetch, \
             decode, execute over a shared bus; deterministic delays, so \
             --timed applies" );
          ( "prefetch",
            "the instruction-prefetch unit alone (Figure 1); the smallest \
             timed model" );
          ( "interpreted",
            "Figure 4 style: interpreted arcs move opcode values through \
             variables and tables" );
          ( "branching",
            "pipeline with a taken-branch path that flushes the \
             instruction buffer" );
          ( "serial",
            "the same work with no overlap (every stage serialized) — the \
             paper's no-pipelining baseline" );
          ( "indep<N>x<K>",
            "N independent K-stage pipelines (e.g. indep4x3) — a \
             width-scalable concurrency benchmark for reachability" );
        ];
      exit 0
    end;
    let config =
      { Pnut_pipeline.Config.default with
        Pnut_pipeline.Config.memory_cycles = memory;
        buffer_words = buffers }
    in
    let net =
      match which with
      | `Pipeline -> Pnut_pipeline.Model.full config
      | `Prefetch -> Pnut_pipeline.Model.prefetch_only config
      | `Interpreted -> Pnut_pipeline.Interpreted.full config
      | `Branching -> Pnut_pipeline.Branching.full config
      | `Serial -> Pnut_pipeline.Serial.full config
      | `Indep (n, k) -> Pnut_pipeline.Indep.net ~pipelines:n ~stages:k
    in
    let text = Format.asprintf "%a" Pnut_core.Net.pp net in
    match out with
    | Some path -> write_file path text
    | None -> print_string text
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(const run $ which $ memory $ buffers $ out $ list_flag)

(* -- pnut sim -- *)

(* The operations [pnut sim] needs from a simulation engine; both
   [Simulator] (the incremental compiled engine) and [Reference] (the
   straightforward baseline) satisfy it, so the CLI can run either for
   cross-checking.  All result types are the shared [Simulator] ones. *)
module type SIM_ENGINE = sig
  type t

  val create :
    ?seed:int ->
    ?prng:Pnut_core.Prng.t ->
    ?sink:Pnut_trace.Trace.sink ->
    ?max_instant_firings:int ->
    ?check_capacities:bool ->
    ?hooks:Pnut_sim.Simulator.hooks ->
    Pnut_core.Net.t -> t

  val restore :
    ?sink:Pnut_trace.Trace.sink ->
    ?max_instant_firings:int ->
    ?check_capacities:bool ->
    ?hooks:Pnut_sim.Simulator.hooks ->
    Pnut_core.Net.t -> Pnut_sim.Checkpoint.t -> t

  val run :
    ?until:float -> ?max_events:int -> ?wall_limit_s:float ->
    ?budget:Pnut_exec.Budget.t -> ?finish:bool ->
    t -> Pnut_sim.Simulator.outcome

  val checkpoint : t -> Pnut_sim.Checkpoint.t
  val diagnose : t -> Pnut_sim.Simulator.diagnosis
end

let sim_cmd =
  let doc = "Simulate a model, writing a trace and/or statistics." in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("fast", `Fast); ("interpreted", `Interpreted) ]) `Fast
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Simulation engine: $(b,fast) (default; incremental fireable \
             set, deadline heap and compiled expressions) or \
             $(b,interpreted) (the straightforward reference engine). Both \
             produce bit-identical traces on the same seed; the reference \
             engine exists for cross-checking and differential debugging.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the simulation trace to FILE (- for stdout).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the statistical analysis report after the run.")
  in
  let runs =
    Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N"
           ~doc:"Independent experiments with split random streams; the \
                 statistics report is printed per run (run numbers 1..N). \
                 --trace applies to the first run only.")
  in
  let explain =
    Arg.(value & flag & info [ "explain-deadlock" ]
           ~doc:"When a run dies, explain per transition which input \
                 place, inhibitor or predicate blocks it.")
  in
  let save_state =
    Arg.(value & opt (some string) None & info [ "save-state" ] ~docv:"FILE"
           ~doc:"Checkpoint the engine state when the (first) run stops, \
                 so $(b,--load-state) can resume it later.")
  in
  let load_state =
    Arg.(value & opt (some string) None & info [ "load-state" ] ~docv:"FILE"
           ~doc:"Resume from a checkpoint written by $(b,--save-state) \
                 instead of starting fresh. $(b,--seed) is ignored: the \
                 random stream continues from the snapshot, so the resumed \
                 run replays exactly what the uninterrupted run would have \
                 done.")
  in
  let run path seed until max_events trace_out format stats runs explain
      budget save_state load_state engine =
    let module E =
      (val match engine with
           | `Fast -> (module Pnut_sim.Simulator : SIM_ENGINE)
           | `Interpreted -> (module Pnut_sim.Reference : SIM_ENGINE))
    in
    let net = load_net path in
    if runs < 1 then die "--runs must be at least 1";
    if load_state <> None && runs > 1 then
      die "--load-state resumes a single run; drop --runs %d" runs;
    (match Pnut_core.Validate.check net with
    | [] -> ()
    | diags ->
      List.iter
        (fun d ->
          Format.eprintf "%a@." Pnut_core.Validate.pp_diagnostic d)
        diags);
    let until = if until = None && max_events = None then Some 10000.0 else until in
    let master = Pnut_core.Prng.create seed in
    (* Trace records stream straight to the channel as the run produces
       them; the trace is never held in memory. *)
    let trace_chan = Option.map trace_out_channel trace_out in
    let trace_sink =
      Option.map (fun (oc, _) -> trace_writer_sink format oc) trace_chan
    in
    let aborted = ref false in
    let degraded = ref false in
    for run_number = 1 to runs do
      let stat_sink, stat_get = Pnut_stat.Stat.sink ~run:run_number () in
      let sinks =
        (if stats || trace_out = None then [ stat_sink ] else [])
        @
        match trace_sink with
        | Some s when run_number = 1 -> [ s ]
        | Some _ | None -> []
      in
      let sink = Pnut_trace.Trace.tee sinks in
      let st =
        match load_state with
        | Some file ->
          let ck =
            try Pnut_sim.Checkpoint.load file with
            | Pnut_sim.Checkpoint.Parse_error (line, msg) ->
              die "%s:%d: %s" file line msg
            | Sys_error msg -> die "%s" msg
          in
          (try E.restore ~sink net ck
           with Pnut_sim.Simulator.Sim_error e ->
             die "%s" (Pnut_sim.Simulator.error_message e))
        | None ->
          (* a single run uses the seed directly (same trace as the
             library API); multiple runs draw split, independent streams *)
          let prng =
            if runs = 1 then Pnut_core.Prng.create seed
            else Pnut_core.Prng.split master
          in
          E.create ~prng ~sink net
      in
      match E.run ?until ?max_events ?budget st with
      | outcome ->
        (match outcome.Pnut_sim.Simulator.stop with
        | Pnut_sim.Simulator.Budget_exhausted _ -> degraded := true
        | _ -> ());
        if stats || trace_out = None then
          print_string (Pnut_stat.Stat.render (stat_get ()));
        if runs > 1 then print_newline ();
        Printf.eprintf
          "run %d stopped: %s at t=%g (%d events started, %d finished)\n"
          run_number
          (match outcome.Pnut_sim.Simulator.stop with
          | Pnut_sim.Simulator.Horizon -> "horizon"
          | Pnut_sim.Simulator.Dead -> "dead (no enabled transition)"
          | Pnut_sim.Simulator.Event_limit -> "event limit"
          | Pnut_sim.Simulator.Budget_exhausted r ->
            Pnut_exec.Supervisor.reason_message r)
          outcome.Pnut_sim.Simulator.final_clock
          outcome.Pnut_sim.Simulator.started
          outcome.Pnut_sim.Simulator.finished;
        (match outcome.Pnut_sim.Simulator.stop with
        | Pnut_sim.Simulator.Dead when explain ->
          Format.eprintf "%a@." Pnut_sim.Simulator.pp_diagnosis (E.diagnose st)
        | _ -> ());
        (match save_state with
        | Some file when run_number = 1 ->
          Pnut_sim.Checkpoint.save file (E.checkpoint st)
        | Some _ | None -> ())
      | exception Pnut_sim.Simulator.Sim_error e ->
        Printf.eprintf "run %d aborted: %s\n" run_number
          (Pnut_sim.Simulator.error_message e);
        aborted := true
    done;
    Option.iter close_trace_out trace_chan;
    if !aborted then exit 1;
    if !degraded then exit exit_degraded
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(const run $ net_arg $ seed_arg $ until_arg $ max_events_arg
          $ trace_out $ format_arg $ stats $ runs $ explain $ budget_arg
          $ save_state $ load_state $ engine_arg)

(* -- pnut faults -- *)

let faults_cmd =
  let doc =
    "Fault-injection campaign: compare faulty runs against their \
     fault-free baselines."
  in
  let spec_file =
    Arg.(value & opt (some file) None & info [ "spec" ] ~docv:"FILE"
           ~doc:"Fault specification file (one fault per line; see \
                 docs/ROBUSTNESS.md).")
  in
  let inline_faults =
    Arg.(value & opt_all string [] & info [ "fault"; "f" ] ~docv:"SPEC"
           ~doc:"Inline fault spec, e.g. 'stuck Start_memory from 100 \
                 until 500' or 'delay-scale Start_memory factor 3'. \
                 Repeatable; combines with --spec.")
  in
  let runs =
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N"
           ~doc:"Baseline/faulty run pairs with split random streams.")
  in
  let until =
    Arg.(value & opt float 10000.0 & info [ "until" ] ~docv:"T" ~doc:"Horizon.")
  in
  let observe =
    Arg.(value & opt (some string) None & info [ "observe" ] ~docv:"T"
           ~doc:"Transition whose throughput is compared (default: the \
                 busiest transition of the first baseline run).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Machine-readable CSV output instead of the table.")
  in
  let explain =
    Arg.(value & flag & info [ "explain-deadlock" ]
           ~doc:"Print the deadlock diagnosis of every faulty run that \
                 died.")
  in
  let run path seed spec_file inline_faults runs until observe csv budget
      explain jobs =
    let net = load_net path in
    let file_specs =
      match spec_file with
      | None -> []
      | Some file -> (
        try Pnut_fault.Fault.parse (read_file file)
        with Pnut_fault.Fault.Parse_error (line, msg) ->
          die "%s:%d: %s" file line msg)
    in
    let flag_specs =
      List.concat_map
        (fun text ->
          try Pnut_fault.Fault.parse text
          with Pnut_fault.Fault.Parse_error (_, msg) ->
            die "fault %S: %s" text msg)
        inline_faults
    in
    let specs = file_specs @ flag_specs in
    if specs = [] then die "no faults given: pass --spec FILE or --fault SPEC";
    match
      Pnut_fault.Campaign.run_supervised ~seed ~runs ~until ?observe ?budget
        ~jobs net specs
    with
    | outcome ->
      let report = Pnut_exec.Supervisor.value outcome in
      print_string
        (if csv then Pnut_fault.Campaign.render_csv report
         else Pnut_fault.Campaign.render report);
      if explain then
        List.iter
          (fun r ->
            match r.Pnut_fault.Campaign.rr_diagnosis with
            | Some d ->
              Printf.printf "\nrun %d deadlock diagnosis:\n%s"
                r.Pnut_fault.Campaign.rr_run d
            | None -> ())
          report.Pnut_fault.Campaign.cr_faulty;
      (match outcome with
      | Pnut_exec.Supervisor.Degraded { reason; progress; _ } ->
        report_degraded "campaign" reason progress;
        exit exit_degraded
      | Pnut_exec.Supervisor.Complete _ -> ());
      if
        Pnut_fault.Campaign.deadlocks report > 0
        || Pnut_fault.Campaign.errors report > 0
      then exit 1
    | exception Pnut_sim.Simulator.Sim_error e ->
      die "%s" (Pnut_sim.Simulator.error_message e)
    | exception Invalid_argument msg -> die "%s" msg
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const run $ net_arg $ seed_arg $ spec_file $ inline_faults $ runs
          $ until $ observe $ csv $ budget_arg $ explain $ jobs_arg)

(* -- pnut stat -- *)

let stat_cmd =
  let doc = "Statistical analysis of a trace (the Figure-5 report)." in
  let tsv =
    Arg.(value & flag & info [ "tsv" ] ~doc:"Machine-readable TSV output.")
  in
  let run path tsv =
    let stat_sink, stat_get = Pnut_stat.Stat.sink () in
    (try stream_trace path stat_sink
     with Pnut_stat.Stat.Stat_error e ->
       die "%s: %s" path (Pnut_stat.Stat.error_message e));
    let report = stat_get () in
    print_string
      (if tsv then Pnut_stat.Stat.render_tsv report
       else Pnut_stat.Stat.render report)
  in
  Cmd.v (Cmd.info "stat" ~doc) Term.(const run $ trace_arg $ tsv)

(* -- pnut filter -- *)

let filter_cmd =
  let doc = "Reduce a trace to the places/transitions of interest." in
  let places =
    Arg.(value & opt (some (list string)) None & info [ "places" ] ~docv:"P,..."
           ~doc:"Keep only these places.")
  in
  let transitions =
    Arg.(value & opt (some (list string)) None & info [ "transitions" ]
           ~docv:"T,..." ~doc:"Keep only these transitions.")
  in
  let no_vars =
    Arg.(value & flag & info [ "no-vars" ] ~doc:"Drop variable updates.")
  in
  let out =
    Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output trace file (- for stdout).")
  in
  let run path places transitions no_vars out format =
    let spec =
      Pnut_trace.Filter.make_spec ?places ?transitions ~vars:(not no_vars) ()
    in
    (* Pure pass-through: records flow reader -> filter -> writer one at
       a time, so a filter stage adds O(1) memory to a pipeline. *)
    let chan = trace_out_channel out in
    let writer = trace_writer_sink format (fst chan) in
    stream_trace path (Pnut_trace.Filter.sink spec writer);
    close_trace_out chan
  in
  Cmd.v (Cmd.info "filter" ~doc)
    Term.(const run $ trace_arg $ places $ transitions $ no_vars $ out
          $ format_arg)

(* -- pnut tracer -- *)

let tracer_cmd =
  let doc = "Timing analysis: plot signals from a trace (Figure 7)." in
  let signals =
    Arg.(non_empty & opt_all string [] & info [ "signal"; "s" ] ~docv:"SPEC"
           ~doc:"Signal to plot: a place/transition/variable name or \
                 name=expression.")
  in
  let from_t =
    Arg.(value & opt float 0.0 & info [ "from" ] ~docv:"T" ~doc:"Window start.")
  in
  let to_t =
    Arg.(value & opt (some float) None & info [ "to" ] ~docv:"T"
           ~doc:"Window end (default: end of trace).")
  in
  let width =
    Arg.(value & opt int 72 & info [ "width" ] ~docv:"COLS" ~doc:"Plot width.")
  in
  let markers =
    Arg.(value & opt_all (pair ~sep:':' string float) []
         & info [ "marker" ] ~docv:"LABEL:TIME" ~doc:"Place a marker.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ]
           ~doc:"Emit the sampled signals as CSV instead of a waveform.")
  in
  let run path signals from_t to_t width markers csv =
    let trace = load_trace path in
    let sigs =
      List.map (parse_arg "signal" Pnut_lang.Parser.parse_signal) signals
    in
    let markers =
      List.map
        (fun (label, time) ->
          { Pnut_tracer.Waveform.m_label = label; m_time = time })
        markers
    in
    if csv then print_string (Pnut_tracer.Signal.to_csv trace sigs)
    else begin
      let style = { Pnut_tracer.Waveform.default_style with width } in
      print_string
        (Pnut_tracer.Waveform.render ~style ~from_time:from_t ?to_time:to_t
           ~markers trace sigs)
    end
  in
  Cmd.v (Cmd.info "tracer" ~doc)
    Term.(const run $ trace_arg $ signals $ from_t $ to_t $ width $ markers
          $ csv)

(* -- pnut check -- *)

let check_cmd =
  let doc = "Verify queries against a trace (Section 4.4)." in
  let queries =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"QUERY"
           ~doc:"forall/exists query, e.g. 'forall s in S [ A(s) + B(s) = 1 ]'.")
  in
  let run path queries =
    let trace = load_trace path in
    let failures = ref 0 in
    List.iter
      (fun q ->
        let query = parse_arg "query" Pnut_lang.Parser.parse_query q in
        let result = Pnut_tracer.Query.eval trace query in
        if not (Pnut_tracer.Query.holds result) then incr failures;
        Format.printf "%-60s %a@." q Pnut_tracer.Query.pp_result result)
      queries;
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ trace_arg $ queries)

(* -- pnut reach -- *)

let reach_cmd =
  let doc = "Build and analyze the reachability graph of a model." in
  let timed =
    Arg.(value & flag & info [ "timed" ]
           ~doc:"Timed reachability (deterministic delays only): builds \
                 the state-class graph — markings, deadlocks and bounds \
                 of the explicit timed expansion without its tick \
                 interpolation.")
  in
  let explicit =
    Arg.(value & flag & info [ "explicit" ]
           ~doc:"With $(b,--timed): build the explicit timed expansion \
                 (concrete clock valuations and Tick edges) instead of \
                 the state-class graph.  Orders of magnitude larger on \
                 delay-heavy models; kept as the reference semantics.")
  in
  let max_states =
    Arg.(value & opt int 100000 & info [ "max-states" ] ~docv:"N"
           ~doc:"State cap.")
  in
  let ctl =
    Arg.(value & opt_all string [] & info [ "ctl" ] ~docv:"FORMULA"
           ~doc:"Check an invariant atom under AG, e.g. 'Bus_free + Bus_busy == 1'.")
  in
  let query =
    Arg.(value & opt_all string [] & info [ "query" ] ~docv:"QUERY"
           ~doc:"Prove a forall/exists query over all reachable states \
                 (inev/alw are branching-time AF/AG), e.g. \
                 'forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]'.")
  in
  let packed =
    Arg.(value
         & opt (enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ]) `Auto
         & info [ "packed" ] ~docv:"MODE"
             ~doc:"Compact bit-packed state store: auto (on when every \
                   place has a known bound), on, or off.  Cuts memory by \
                   an order of magnitude on large graphs, and with \
                   $(b,--jobs) > 1 builds sharded across that many \
                   domains; the graph built is identical either way and \
                   for every worker count.  Covers $(b,--timed) too: \
                   state classes pack as marking fields plus an interned \
                   (environment, firing-domain) id.")
  in
  let por =
    Arg.(value
         & opt (enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ]) `Auto
         & info [ "por" ] ~docv:"MODE"
             ~doc:"Stubborn-set partial-order reduction: auto (on for \
                   deadlock/boundedness runs on plain place/transition \
                   nets; off when $(b,--ctl)/$(b,--query) needs the full \
                   graph or variables/predicates/actions make firings \
                   visible), on, or off.  Preserves the exact deadlock \
                   markings (and place bounds on terminating nets) while \
                   visiting orders of magnitude fewer states on wide \
                   concurrent nets; state and edge counts are counts of \
                   the reduced graph.")
  in
  let run path timed explicit max_states ctl query packed por jobs budget =
    let net = load_net path in
    (* On a budget trip the partial graph is still a valid prefix:
       summarize it, run the CTL/query checks on it (a failure on the
       prefix is a failure on the full graph), then exit 3. *)
    let finish_outcome outcome =
      match outcome with
      | Pnut_exec.Supervisor.Complete _ -> ()
      | Pnut_exec.Supervisor.Degraded { reason; progress; _ } ->
        report_degraded "reach" reason progress;
        exit exit_degraded
    in
    if explicit && not timed then die "--explicit only applies to --timed";
    if timed then begin
      if por = `On then
        die "--por on: partial-order reduction supports untimed \
             reachability only";
      if explicit then begin
        if packed = `On then
          die "--packed on: the explicit timed expansion is boxed only; \
               drop --explicit for the packed state-class graph";
        let outcome =
          Pnut_reach.Timed_explicit.build_supervised ~max_states ?budget net
        in
        let g = Pnut_exec.Supervisor.value outcome in
        Format.printf "%a@." Pnut_reach.Timed_explicit.pp_summary g;
        Printf.eprintf "reach: states=%d edges=%d bytes/state=-\n%!"
          (Pnut_reach.Timed_explicit.num_states g)
          (Pnut_reach.Timed_explicit.num_edges g);
        finish_outcome outcome
      end
      else begin
        let packed =
          match packed with
          | `On -> true
          | `Off -> false
          | `Auto -> Pnut_reach.Packed.bounds_known net
        in
        let outcome =
          Pnut_reach.Timed.build_supervised ~max_states ~jobs ~packed ?budget
            net
        in
        let g = Pnut_exec.Supervisor.value outcome in
        Format.printf "%a@." Pnut_reach.Timed.pp_summary g;
        let bytes_per_state =
          match Pnut_reach.Timed.packed_bytes_per_state g with
          | Some b -> Printf.sprintf "%.1f" b
          | None -> "-"
        in
        Printf.eprintf "reach: classes=%d edges=%d vectors=%d bytes/state=%s\n%!"
          (Pnut_reach.Timed.num_states g)
          (Pnut_reach.Timed.num_edges g)
          (Pnut_reach.Timed.num_vectors g)
          bytes_per_state;
        finish_outcome outcome
      end
    end
    else begin
      let packed =
        match packed with
        | `On -> true
        | `Off -> false
        | `Auto -> Pnut_reach.Packed.bounds_known net
      in
      let por =
        match por with
        | `On ->
          if ctl <> [] || query <> [] then
            die "--por on: --ctl/--query need the full interleaving graph; \
                 drop them or pass --por off";
          (match Pnut_reach.Stubborn.unsupported net with
          | Some r -> die "%s" (Pnut_reach.Stubborn.rejection_message r)
          | None -> true)
        | `Off -> false
        | `Auto ->
          ctl = [] && query = []
          && Pnut_reach.Stubborn.unsupported net = None
      in
      let outcome =
        Pnut_reach.Graph.build_supervised ~max_states ~jobs ?budget ~packed
          ~por net
      in
      let g = Pnut_exec.Supervisor.value outcome in
      Format.printf "%a@." Pnut_reach.Graph.pp_summary g;
      (* One-line machine-grepable stats on stderr.  por_reduction is the
         per-state branching reduction (token-enabled firings the full
         expansion would have taken, over edges actually recorded) — a
         lower bound on the state-count reduction, measurable without
         building the full graph; 1.0x when the reduction is off. *)
      let bytes_per_state =
        match Pnut_reach.Graph.packed_bytes_per_state g with
        | Some b -> Printf.sprintf "%.1f" b
        | None -> "-"
      in
      let por_reduction =
        if not por then 1.0
        else begin
          let kernel = Pnut_core.Kernel.of_net net in
          let trans = Pnut_core.Kernel.transitions kernel in
          let total = ref 0 in
          for i = 0 to Pnut_reach.Graph.num_states g - 1 do
            let m =
              Pnut_core.Marking.of_array
                (Pnut_reach.Graph.state g i).Pnut_reach.Graph.s_marking
            in
            Array.iter
              (fun c ->
                if Pnut_core.Kernel.token_enabled c m then incr total)
              trans
          done;
          float_of_int !total
          /. float_of_int (max 1 (Pnut_reach.Graph.num_edges g))
        end
      in
      Printf.eprintf "reach: states=%d edges=%d bytes/state=%s \
                      por_reduction=%.1fx\n%!"
        (Pnut_reach.Graph.num_states g)
        (Pnut_reach.Graph.num_edges g)
        bytes_per_state por_reduction;
      let failures = ref 0 in
      List.iter
        (fun f ->
          let e = parse_arg "formula" Pnut_lang.Parser.parse_expr f in
          let ok = Pnut_reach.Ctl.check g (Pnut_reach.Ctl.AG (Pnut_reach.Ctl.Atom e)) in
          if not ok then incr failures;
          Format.printf "AG(%s): %b@." f ok)
        ctl;
      List.iter
        (fun q ->
          let parsed = parse_arg "query" Pnut_lang.Parser.parse_query q in
          match Pnut_reach.Predicate.eval g parsed with
          | result ->
            if not (Pnut_tracer.Query.holds result) then incr failures;
            Format.printf "%-60s %a@." q Pnut_tracer.Query.pp_result result
          | exception Pnut_tracer.Query.Query_error msg ->
            die "query %S: %s" q msg)
        query;
      if !failures > 0 then exit 1;
      finish_outcome outcome
    end
  in
  Cmd.v (Cmd.info "reach" ~doc)
    Term.(const run $ net_arg $ timed $ explicit $ max_states $ ctl $ query
          $ packed $ por $ jobs_arg $ budget_arg)

(* -- pnut invariants -- *)

let invariants_cmd =
  let doc = "Compute P- and T-invariants of a model." in
  let run path =
    let net = load_net path in
    let inc = Pnut_core.Incidence.of_net net in
    Format.printf "P-invariants:@.";
    List.iter
      (fun v ->
        Format.printf "  %a@." (Pnut_core.Incidence.pp_vector net `Place) v)
      (Pnut_core.Incidence.p_invariants inc);
    Format.printf "T-invariants:@.";
    List.iter
      (fun v ->
        Format.printf "  %a@."
          (Pnut_core.Incidence.pp_vector net `Transition) v)
      (Pnut_core.Incidence.t_invariants inc)
  in
  Cmd.v (Cmd.info "invariants" ~doc) Term.(const run $ net_arg)

(* -- pnut anim -- *)

let anim_cmd =
  let doc = "Animate a simulation run of a model (Figure 6, in text)." in
  let steps =
    Arg.(value & opt int 10 & info [ "steps" ] ~docv:"N"
           ~doc:"Number of trace events to animate.")
  in
  let delay =
    Arg.(value & opt float 0.0 & info [ "delay" ] ~docv:"SECONDS"
           ~doc:"Pause between frames.")
  in
  let places =
    Arg.(value & opt (some (list string)) None & info [ "places" ]
           ~docv:"P,..." ~doc:"Restrict the state panel to these places.")
  in
  let trace_in =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"TRACE"
           ~doc:"Animate this stored trace (- for stdin) instead of \
                 running the simulator; frames are rendered as records \
                 arrive, so an unbounded piped trace animates in \
                 constant memory.")
  in
  let run path seed steps delay places trace_in =
    let net = load_net path in
    (* Frames are emitted one at a time straight from the trace sink;
       neither the trace nor the frame list is materialized. *)
    let emit f = Pnut_anim.Animator.play ~delay_s:delay stdout [ f ] in
    let sink = Pnut_anim.Animator.sink ?places net emit in
    match trace_in with
    | Some tr -> or_die (fun () -> stream_trace tr sink)
    | None ->
      ignore (Pnut_sim.Simulator.simulate ~seed ~max_events:steps ~sink net)
  in
  Cmd.v (Cmd.info "anim" ~doc)
    Term.(const run $ net_arg $ seed_arg $ steps $ delay $ places $ trace_in)

(* -- pnut validate -- *)

let validate_cmd =
  let doc = "Static checks of a model (unbound names, dead places, ...)." in
  let run path =
    let net = load_net path in
    match Pnut_core.Validate.check net with
    | [] -> print_endline "no diagnostics"
    | diags ->
      List.iter
        (fun d -> Format.printf "%a@." Pnut_core.Validate.pp_diagnostic d)
        diags;
      if Pnut_core.Validate.errors diags <> [] then exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ net_arg)

(* -- pnut analytic -- *)

let analytic_cmd =
  let doc =
    "Analytical (Markov-chain) performance evaluation of a GSPN model."
  in
  let exponentialize =
    Arg.(value & flag & info [ "exponentialize" ]
           ~doc:"First convert deterministic delays to exponential ones \
                 with the same means.")
  in
  let max_states =
    Arg.(value & opt int 2000 & info [ "max-states" ] ~docv:"N" ~doc:"State cap.")
  in
  let run path exponentialize max_states budget =
    let net = load_net path in
    let net =
      if exponentialize then
        or_die (fun () -> Pnut_analytic.Gspn.exponential_variant net)
      else net
    in
    let outcome =
      try
        or_die (fun () ->
            Pnut_analytic.Gspn.analyze_supervised ~max_states ?budget net)
      with Pnut_analytic.Gspn.Too_many_states r ->
        die "%s" (Pnut_analytic.Gspn.rejection_message r)
    in
    let r = Pnut_exec.Supervisor.value outcome in
    Printf.printf "tangible states:  %d\n" r.Pnut_analytic.Gspn.tangible_states;
    Printf.printf "vanishing states: %d\n\n" r.Pnut_analytic.Gspn.vanishing_states;
    Printf.printf "%-32s %12s\n" "place" "mean tokens";
    Array.iteri
      (fun p mean ->
        Printf.printf "%-32s %12.6f\n"
          (Pnut_core.Net.place net p).Pnut_core.Net.p_name mean)
      r.Pnut_analytic.Gspn.place_means;
    Printf.printf "\n%-32s %12s\n" "transition" "throughput";
    Array.iteri
      (fun t thr ->
        Printf.printf "%-32s %12.6f\n"
          (Pnut_core.Net.transition net t).Pnut_core.Net.t_name thr)
      r.Pnut_analytic.Gspn.throughputs;
    match outcome with
    | Pnut_exec.Supervisor.Degraded { reason; progress; _ } ->
      report_degraded "analytic" reason progress;
      exit exit_degraded
    | Pnut_exec.Supervisor.Complete _ -> ()
  in
  Cmd.v (Cmd.info "analytic" ~doc)
    Term.(const run $ net_arg $ exponentialize $ max_states $ budget_arg)

(* -- pnut coverability -- *)

let coverability_cmd =
  let doc = "Boundedness analysis via the Karp-Miller construction." in
  let max_states =
    Arg.(value & opt int 100000 & info [ "max-states" ] ~docv:"N"
           ~doc:"State cap.")
  in
  let run path max_states budget =
    let net = load_net path in
    let outcome =
      try
        or_die (fun () ->
            Pnut_reach.Coverability.build_supervised ~max_states ?budget net)
      with Pnut_reach.Coverability.Unsupported r ->
        die "%s" (Pnut_reach.Coverability.rejection_message r)
    in
    let g = Pnut_exec.Supervisor.value outcome in
    Format.printf "%a@." (Pnut_reach.Coverability.pp_summary net) g;
    (* A tripped budget means the verdict below would be drawn from an
       incomplete tree, so degradation takes precedence over it. *)
    (match outcome with
    | Pnut_exec.Supervisor.Degraded { reason; progress; _ } ->
      report_degraded "coverability" reason progress;
      exit exit_degraded
    | Pnut_exec.Supervisor.Complete _ -> ());
    if not (Pnut_reach.Coverability.is_bounded g) then exit 1
  in
  Cmd.v (Cmd.info "coverability" ~doc)
    Term.(const run $ net_arg $ max_states $ budget_arg)

(* -- pnut dot -- *)

let dot_cmd =
  let doc = "Export a model (or its reachability graph) to Graphviz." in
  let what =
    Arg.(value & opt (enum [ ("net", `Net_graph); ("reach", `Reach);
                             ("coverability", `Cov) ])
           `Net_graph
         & info [ "kind" ] ~docv:"KIND" ~doc:"net | reach | coverability.")
  in
  let max_states =
    Arg.(value & opt int 20_000 & info [ "max-states" ] ~docv:"N"
           ~doc:"State cap for the graph-building kinds.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to FILE instead of stdout.")
  in
  let run path what max_states out budget =
    let net = load_net path in
    (* Graph-building kinds run under the shared budget flags like any
       other long-running subcommand: on a trip the dot of the partial
       graph (a valid prefix) is still written, then exit 3. *)
    let degraded = ref false in
    let supervised what_name outcome =
      match outcome with
      | Pnut_exec.Supervisor.Complete g -> g
      | Pnut_exec.Supervisor.Degraded { reason; progress; partial } ->
        report_degraded what_name reason progress;
        degraded := true;
        partial
    in
    let text =
      match what with
      | `Net_graph -> Pnut_core.Dot.net net
      | `Reach ->
        Pnut_reach.Export.graph_dot
          (supervised "dot"
             (or_die (fun () ->
                  Pnut_reach.Graph.build_supervised ~max_states ?budget net)))
      | `Cov ->
        let g =
          try
            supervised "dot"
              (or_die (fun () ->
                   Pnut_reach.Coverability.build_supervised ~max_states ?budget
                     net))
          with Pnut_reach.Coverability.Unsupported r ->
            die "%s" (Pnut_reach.Coverability.rejection_message r)
        in
        Pnut_reach.Export.coverability_dot net g
    in
    (match out with
    | Some path -> write_file path text
    | None -> print_string text);
    if !degraded then exit exit_degraded
  in
  Cmd.v (Cmd.info "dot" ~doc)
    Term.(const run $ net_arg $ what $ max_states $ out $ budget_arg)

(* -- pnut replicate -- *)

let replicate_cmd =
  let doc =
    "Confidence-interval estimation over independent replications."
  in
  let runs =
    Arg.(value & opt int 10 & info [ "runs" ] ~docv:"N" ~doc:"Replications.")
  in
  let until =
    Arg.(value & opt float 10000.0 & info [ "until" ] ~docv:"T" ~doc:"Horizon.")
  in
  let place =
    Arg.(value & opt_all string [] & info [ "place" ] ~docv:"P"
           ~doc:"Report the mean token count of this place.")
  in
  let transition =
    Arg.(value & opt_all string [] & info [ "throughput" ] ~docv:"T"
           ~doc:"Report the throughput of this transition.")
  in
  let confidence =
    Arg.(value & opt float 0.95 & info [ "confidence" ] ~docv:"LEVEL"
           ~doc:"0.90, 0.95 or 0.99.")
  in
  let run path seed runs until place transition confidence jobs budget =
    let net = load_net path in
    if place = [] && transition = [] then
      die "nothing to estimate: pass --place and/or --throughput";
    let degraded = ref false in
    let estimate what read =
      match
        Pnut_stat.Replication.replicate_supervised ~seed ~confidence ~jobs
          ?budget ~runs ~until net read
      with
      | outcome ->
        let p = Pnut_exec.Supervisor.value outcome in
        (match p.Pnut_stat.Replication.pr_estimate with
        | Some e -> Format.printf "%-40s %a@." what Pnut_stat.Replication.pp e
        | None ->
          Format.printf "%-40s (no estimate: %d of %d replications done)@."
            what p.Pnut_stat.Replication.pr_completed
            p.Pnut_stat.Replication.pr_requested);
        (match outcome with
        | Pnut_exec.Supervisor.Degraded { reason; progress; _ } ->
          degraded := true;
          report_degraded what reason progress
        | Pnut_exec.Supervisor.Complete _ -> ())
      | exception Not_found -> die "unknown place/transition in %s" what
    in
    List.iter
      (fun p ->
        estimate (p ^ " mean tokens") (fun r -> Pnut_stat.Stat.utilization r p))
      place;
    List.iter
      (fun t ->
        estimate (t ^ " throughput") (fun r -> Pnut_stat.Stat.throughput r t))
      transition;
    if !degraded then exit exit_degraded
  in
  Cmd.v (Cmd.info "replicate" ~doc)
    Term.(const run $ net_arg $ seed_arg $ runs $ until $ place $ transition
          $ confidence $ jobs_arg $ budget_arg)

(* -- pnut cycle -- *)

let cycle_cmd =
  let doc =
    "Steady-state cycle analysis of a deterministic timed model [RP84]."
  in
  let max_steps =
    Arg.(value & opt int 100000 & info [ "max-steps" ] ~docv:"N"
           ~doc:"Exploration bound.")
  in
  let marked_graph =
    Arg.(value & flag & info [ "marked-graph" ]
           ~doc:"Use the Ramamoorthy-Ho maximum-ratio-cycle method \
                 (decision-free nets only) instead of the state walker.")
  in
  let run path max_steps marked_graph =
    let net = load_net path in
    if marked_graph then begin
      match Pnut_analytic.Marked_graph.cycle_time net with
      | Pnut_analytic.Marked_graph.Cycle_time t ->
        Printf.printf "cycle time: %g (throughput %g per transition)\n" t
          (1.0 /. t);
        (match Pnut_analytic.Marked_graph.critical_circuit net with
        | Some (circuit, _) ->
          Printf.printf "critical circuit: %s\n"
            (String.concat " -> "
               (List.map
                  (fun i ->
                    (Pnut_core.Net.transition net i).Pnut_core.Net.t_name)
                  circuit))
        | None -> ())
      | Pnut_analytic.Marked_graph.Deadlock ->
        Printf.printf "deadlock: a circuit carries no tokens\n";
        exit 1
      | Pnut_analytic.Marked_graph.Unbounded_rate ->
        Printf.printf "no circuit constrains the net (unbounded rate)\n"
      | exception Invalid_argument msg -> die "%s" msg
    end
    else
      match Pnut_reach.Timed.steady_cycle ~max_steps net with
      | Some c ->
        Printf.printf "transient: %g\nperiod:    %g\n\n"
          c.Pnut_reach.Timed.cy_transient c.Pnut_reach.Timed.cy_period;
        Printf.printf "%-32s %10s %12s\n" "transition" "per cycle" "throughput";
        Array.iteri
          (fun t count ->
            if count > 0 then
              Printf.printf "%-32s %10d %12.6f\n"
                (Pnut_core.Net.transition net t).Pnut_core.Net.t_name count
                (float_of_int count /. c.Pnut_reach.Timed.cy_period))
          c.Pnut_reach.Timed.cy_firings
      | None ->
        Printf.eprintf "no steady cycle found (net dies or bound too small)\n";
        exit 1
      | exception Invalid_argument msg -> die "%s" msg
  in
  Cmd.v (Cmd.info "cycle" ~doc)
    Term.(const run $ net_arg $ max_steps $ marked_graph)

(* -- pnut explore -- *)

let explore_cmd =
  let doc = "Interactive state-space exploration of a model." in
  let run path seed =
    let net = load_net path in
    Pnut_sim.Explorer.run ~seed net stdin stdout
  in
  Cmd.v (Cmd.info "explore" ~doc) Term.(const run $ net_arg $ seed_arg)

(* -- pnut batch -- *)

let batch_cmd =
  let doc = "Batch-means confidence intervals from one long trace." in
  let warmup =
    Arg.(value & opt float 0.0 & info [ "warmup" ] ~docv:"T"
           ~doc:"Discard the first T time units.")
  in
  let batches =
    Arg.(value & opt int 10 & info [ "batches" ] ~docv:"N" ~doc:"Batch count.")
  in
  let place =
    Arg.(value & opt_all string [] & info [ "place" ] ~docv:"P"
           ~doc:"Estimate this place's mean token count.")
  in
  let transition =
    Arg.(value & opt_all string [] & info [ "throughput" ] ~docv:"T"
           ~doc:"Estimate this transition's throughput.")
  in
  let run path warmup batches place transition =
    let trace = load_trace path in
    if place = [] && transition = [] then
      die "nothing to estimate: pass --place and/or --throughput";
    let report what compute =
      match compute () with
      | e -> Format.printf "%-40s %a@." what Pnut_stat.Replication.pp e
      | exception Not_found -> die "unknown name in %s" what
      | exception Invalid_argument msg -> die "%s" msg
    in
    List.iter
      (fun p ->
        report (p ^ " mean tokens") (fun () ->
            Pnut_stat.Batch.place_utilization ~warmup ~batches trace p))
      place;
    List.iter
      (fun t ->
        report (t ^ " throughput") (fun () ->
            Pnut_stat.Batch.transition_throughput ~warmup ~batches trace t))
      transition
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const run $ trace_arg $ warmup $ batches $ place $ transition)

let main =
  let doc = "P-NUT: Petri-Net Utility Tools" in
  let info = Cmd.info "pnut" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ model_cmd; sim_cmd; faults_cmd; stat_cmd; filter_cmd; tracer_cmd;
      check_cmd; reach_cmd; invariants_cmd; anim_cmd; validate_cmd;
      analytic_cmd; coverability_cmd; dot_cmd; replicate_cmd; explore_cmd;
      batch_cmd; cycle_cmd ]

let () = exit (Cmd.eval main)
