module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Kernel = Pnut_core.Kernel

type state = {
  s_index : int;
  s_marking : int array;
  s_env : (string * Value.t) list;
}

type edge = {
  e_from : int;
  e_transition : Net.transition_id;
  e_to : int;
}

type t = {
  net : Net.t;
  states : state array;
  succ : edge list array;   (* indexed by source state *)
  pred : edge list array;   (* indexed by target state *)
  complete : bool;
}

let net g = g.net
let complete g = g.complete
let num_states g = Array.length g.states
let num_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.succ
let state g i = g.states.(i)
let initial _ = 0
let successors g i = g.succ.(i)
let predecessors g i = g.pred.(i)
let edges g = List.concat (Array.to_list g.succ)

let stochastic_parts net =
  Array.to_list (Net.transitions net)
  |> List.concat_map (fun tr ->
         let pred_bad =
           match tr.Net.t_predicate with
           | Some p when not (Expr.is_deterministic p) -> [ tr.Net.t_name ]
           | Some _ | None -> []
         in
         let action_bad =
           if
             List.exists
               (fun s ->
                 match s with
                 | Expr.Assign (_, e) -> not (Expr.is_deterministic e)
                 | Expr.Table_assign (_, i, e) ->
                   not (Expr.is_deterministic i && Expr.is_deterministic e))
               tr.Net.t_action
           then [ tr.Net.t_name ]
           else []
         in
         pred_bad @ action_bad)

(* Successors of one concrete state: fire every enabled transition on
   fresh copies and snapshot the result into a hashconsed key.  The
   firing semantics come from the compiled kernel: arc-array enabling
   tests and effects, predicates and actions interpreted against the
   per-state environment.  Action-free transitions share the parent
   environment instead of copying it (the keys are structural, and
   expansions only ever read shared environments), so the common
   variable-free nets allocate nothing per successor beyond the
   marking.  Pure with respect to shared state, so frontier states can
   be expanded on worker domains. *)
let expand kernel marking env =
  let out = ref [] in
  Array.iter
    (fun (c : Kernel.ctrans) ->
      if Kernel.enabled c marking env then begin
        let m' = Marking.copy marking in
        Kernel.apply c m';
        let env' =
          if c.s_has_action then begin
            let env' = Env.copy env in
            Kernel.run_action env' c;
            env'
          end
          else env
        in
        out := (c.s_id, Statekey.make m' env', m', env') :: !out
      end)
    (Kernel.transitions kernel);
  List.rev !out

let build_supervised ?(max_states = 100_000) ?jobs
    ?(budget = Pnut_exec.Budget.none) net =
  (match stochastic_parts net with
  | [] -> ()
  | bad ->
    invalid_arg
      ("Reach.Graph.build: stochastic predicate/action on transitions: "
      ^ String.concat ", " (List.sort_uniq String.compare bad)));
  let monitor = Pnut_exec.Supervisor.start budget in
  let monitored = Pnut_exec.Supervisor.active monitor in
  let max_states =
    match Pnut_exec.Supervisor.max_states monitor with
    | Some cap -> min cap max_states
    | None -> max_states
  in
  let kernel = Kernel.of_net net in
  let jobs = Pnut_exec.Pool.resolve ?jobs () in
  let index = Statekey.Tbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let edges_rev = ref [] in   (* every edge, most recent first *)
  let truncated = ref false in
  (* wall/heap/cancellation trip — [None] until the budget fires *)
  let budget_stop = ref None in
  (* states interned but not yet expanded when a trip stopped the sweep *)
  let frontier_left = ref 0 in
  (* Intern a key, computed exactly once per explored edge.  [None]
     means the target would be a fresh state beyond the cap: the edge
     is dropped and the graph flagged incomplete (edges into
     already-interned states are still recorded at the cap). *)
  let intern k =
    match Statekey.Tbl.find_opt index k with
    | Some i -> Some (i, false)
    | None ->
      if !n_states >= max_states then begin
        truncated := true;
        None
      end
      else begin
        let i = !n_states in
        incr n_states;
        Statekey.Tbl.replace index k i;
        states :=
          { s_index = i; s_marking = k.Statekey.k_marking;
            s_env = k.Statekey.k_bindings }
          :: !states;
        Some (i, true)
      end
  in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  (match intern (Statekey.make m0 env0) with
  | Some (0, true) -> ()
  | Some _ | None -> assert false);
  (* Serial: a plain FIFO sweep — the expansion of one state interns
     its successors and records its edges inline, with no intermediate
     successor lists or layer arrays.  Parallel: breadth-first by
     layers; workers expand the frontier in parallel (the expensive
     part: enabling tests, predicate/action evaluation, structural
     hashing) and the single interning pass then walks the results in
     frontier order.  FIFO visit order equals layer-by-frontier order,
     so state numbering, edge order and truncation behaviour are
     identical for every [jobs] value. *)
  (if jobs = 1 then begin
     let q = Queue.create () in
     Queue.add (0, m0, env0) q;
     let trans = Kernel.transitions kernel in
     let pops = ref 0 in
     (* Budget checks ride the dequeue boundary every 256 states, so a
        budgeted sweep that completes interns exactly the same states in
        exactly the same order as an unbudgeted one. *)
     (try
     while not (Queue.is_empty q) do
       incr pops;
       if monitored && !pops land 255 = 0 then begin
         match Pnut_exec.Supervisor.check monitor with
         | Some r ->
           budget_stop := Some r;
           frontier_left := Queue.length q;
           raise_notrace Exit
         | None -> ()
       end;
       let i, m, env = Queue.pop q in
       Array.iter
         (fun (c : Kernel.ctrans) ->
           if Kernel.enabled c m env then begin
             let m' = Marking.copy m in
             Kernel.apply c m';
             let env' =
               if c.Kernel.s_has_action then begin
                 let env' = Env.copy env in
                 Kernel.run_action env' c;
                 env'
               end
               else env
             in
             match intern (Statekey.make m' env') with
             | None -> ()
             | Some (j, fresh) ->
               edges_rev :=
                 { e_from = i; e_transition = c.Kernel.s_id; e_to = j }
                 :: !edges_rev;
               if fresh then Queue.add (j, m', env') q
           end)
         trans
     done
     with Exit -> ())
   end
   else begin
     let frontier = ref [ (0, m0, env0) ] in
     while !frontier <> [] do
       (if monitored then
          match Pnut_exec.Supervisor.check monitor with
          | Some r ->
            budget_stop := Some r;
            frontier_left := List.length !frontier;
            frontier := []
          | None -> ());
       if !frontier <> [] then begin
       let layer = Array.of_list !frontier in
       let expanded =
         if Array.length layer < 2 then
           Array.map (fun (_, m, e) -> expand kernel m e) layer
         else
           Pnut_exec.Pool.init ~jobs (Array.length layer) (fun x ->
               let _, m, e = layer.(x) in
               expand kernel m e)
       in
       let next = ref [] in
       Array.iteri
         (fun x succs ->
           let i, _, _ = layer.(x) in
           List.iter
             (fun (tid, k, m', env') ->
               match intern k with
               | None -> ()
               | Some (j, fresh) ->
                 edges_rev :=
                   { e_from = i; e_transition = tid; e_to = j } :: !edges_rev;
                 if fresh then next := (j, m', env') :: !next)
             succs)
         expanded;
       frontier := List.rev !next
       end
     done
   end);
  let n = !n_states in
  let states_arr = Array.make n { s_index = 0; s_marking = [||]; s_env = [] } in
  List.iter (fun s -> states_arr.(s.s_index) <- s) !states;
  let succ = Array.make n [] in
  (* walking most-recent-first and prepending leaves every per-source
     list in emission order *)
  List.iter (fun e -> succ.(e.e_from) <- e :: succ.(e.e_from)) !edges_rev;
  let pred = Array.make n [] in
  Array.iter (fun l -> List.iter (fun e -> pred.(e.e_to) <- e :: pred.(e.e_to)) l) succ;
  let complete = not !truncated && !budget_stop = None in
  let g = { net; states = states_arr; succ; pred; complete } in
  match !budget_stop with
  | Some reason ->
    Pnut_exec.Supervisor.Degraded
      {
        reason;
        partial = g;
        progress =
          Pnut_exec.Supervisor.snapshot monitor ~visited:n
            ~frontier:!frontier_left;
      }
  | None ->
    if !truncated then
      Pnut_exec.Supervisor.Degraded
        {
          reason = Pnut_exec.Supervisor.States n;
          partial = g;
          progress =
            Pnut_exec.Supervisor.snapshot monitor ~visited:n ~frontier:0;
        }
    else Pnut_exec.Supervisor.Complete g

let build ?max_states ?jobs net =
  Pnut_exec.Supervisor.value (build_supervised ?max_states ?jobs net)

let find_state g marking =
  let n = num_states g in
  let rec go i =
    if i >= n then None
    else if g.states.(i).s_marking = marking then Some i
    else go (i + 1)
  in
  go 0

let deadlocks g =
  let acc = ref [] in
  for i = num_states g - 1 downto 0 do
    if g.succ.(i) = [] then acc := i :: !acc
  done;
  !acc

let bound g p =
  Array.fold_left (fun acc s -> max acc s.s_marking.(p)) 0 g.states

let is_safe g =
  Array.for_all
    (fun s -> Array.for_all (fun c -> c <= 1) s.s_marking)
    g.states

let live_transitions g =
  let seen = Array.make (Net.num_transitions g.net) false in
  Array.iter
    (fun l -> List.iter (fun e -> seen.(e.e_transition) <- true) l)
    g.succ;
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) seen;
  List.rev !acc

let dead_transitions g =
  let live = live_transitions g in
  List.init (Net.num_transitions g.net) (fun i -> i)
  |> List.filter (fun i -> not (List.mem i live))

(* States from which [targets] is reachable: backward closure. *)
let backward_closure g targets =
  let marked = Array.make (num_states g) false in
  let stack = ref targets in
  List.iter (fun i -> marked.(i) <- true) targets;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      List.iter
        (fun e ->
          if not marked.(e.e_from) then begin
            marked.(e.e_from) <- true;
            stack := e.e_from :: !stack
          end)
        g.pred.(i)
  done;
  marked

let is_reversible g =
  let can_return = backward_closure g [ 0 ] in
  Array.for_all (fun b -> b) can_return

let home_states g =
  let n = num_states g in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let reach_i = backward_closure g [ i ] in
    if Array.for_all (fun b -> b) reach_i then acc := i :: !acc
  done;
  !acc

let check_invariant g p =
  let n = num_states g in
  let rec go i =
    if i >= n then None else if not (p g.states.(i)) then Some i else go (i + 1)
  in
  go 0

let pp_summary ppf g =
  Format.fprintf ppf
    "@[<v>reachability graph of %s@,states: %d%s@,edges: %d@,deadlocks: %d@,\
     safe: %b@,reversible: %b@,dead transitions: %s@]"
    (Net.name g.net) (num_states g)
    (if g.complete then "" else " (truncated)")
    (num_edges g)
    (List.length (deadlocks g))
    (is_safe g) (is_reversible g)
    (match dead_transitions g with
    | [] -> "none"
    | l ->
      String.concat ", "
        (List.map (fun i -> (Net.transition g.net i).Net.t_name) l))
