module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Kernel = Pnut_core.Kernel

type state = {
  s_index : int;
  s_marking : int array;
  s_env : (string * Value.t) list;
}

type edge = {
  e_from : int;
  e_transition : Net.transition_id;
  e_to : int;
}

(* Two physical layouts behind one graph type.  [Boxed] is the classic
   per-state record plus edge lists — cheap to build, rich to walk.
   [Compact] keeps every state bit-packed in the {!Store} arena with
   CSR edges; accessors decode on the fly.  Both builders intern states
   in the same FIFO order and record edges at the same points, so the
   numbering, edge order and truncation behaviour are bit-identical —
   the representation is invisible to every analysis. *)
type repr =
  | Boxed of {
      states : state array;
      succ : edge list array;   (* indexed by source state *)
      pred : edge list array;   (* indexed by target state *)
    }
  | Compact of Store.t

type t = {
  net : Net.t;
  repr : repr;
  complete : bool;
  n_edges : int;  (* cached at construction; [edges] stays O(E) to list *)
}

let net g = g.net
let complete g = g.complete

let num_states g =
  match g.repr with
  | Boxed b -> Array.length b.states
  | Compact st -> Store.num_states st

let num_edges g = g.n_edges

let state g i =
  match g.repr with
  | Boxed b -> b.states.(i)
  | Compact st ->
    let codec = Store.codec st in
    let np = Packed.places (Packed.layout codec) in
    let m = Array.make np 0 in
    Store.marking_into st i m;
    {
      s_index = i;
      s_marking = m;
      s_env = Packed.extra_bindings codec (Store.extra st i);
    }

let initial _ = 0

let successors g i =
  match g.repr with
  | Boxed b -> b.succ.(i)
  | Compact st ->
    List.map
      (fun (tid, tgt) -> { e_from = i; e_transition = tid; e_to = tgt })
      (Store.successors st i)

let predecessors g j =
  match g.repr with
  | Boxed b -> b.pred.(j)
  | Compact st ->
    List.map
      (fun (src, tid) -> { e_from = src; e_transition = tid; e_to = j })
      (Store.predecessors st j)

let edges g =
  match g.repr with
  | Boxed b -> List.concat (Array.to_list b.succ)
  | Compact st ->
    let acc = ref [] in
    Store.iter_edges st (fun src tid tgt ->
        acc := { e_from = src; e_transition = tid; e_to = tgt } :: !acc);
    List.rev !acc

let packed_bytes_per_state g =
  match g.repr with
  | Boxed _ -> None
  | Compact st -> Some (Store.bytes_per_state st)

let packed_arrays g =
  match g.repr with
  | Boxed _ -> None
  | Compact st -> Some (Store.internal_arrays st)

let stochastic_parts net =
  Array.to_list (Net.transitions net)
  |> List.concat_map (fun tr ->
         let pred_bad =
           match tr.Net.t_predicate with
           | Some p when not (Expr.is_deterministic p) -> [ tr.Net.t_name ]
           | Some _ | None -> []
         in
         let action_bad =
           if
             List.exists
               (fun s ->
                 match s with
                 | Expr.Assign (_, e) -> not (Expr.is_deterministic e)
                 | Expr.Table_assign (_, i, e) ->
                   not (Expr.is_deterministic i && Expr.is_deterministic e))
               tr.Net.t_action
           then [ tr.Net.t_name ]
           else []
         in
         pred_bad @ action_bad)

(* Successors of one concrete state: fire every enabled transition on
   fresh copies and snapshot the result into a hashconsed key.  The
   firing semantics come from the compiled kernel: arc-array enabling
   tests and effects, predicates and actions interpreted against the
   per-state environment.  Action-free transitions share the parent
   environment instead of copying it (the keys are structural, and
   expansions only ever read shared environments), so the common
   variable-free nets allocate nothing per successor beyond the
   marking.  Pure with respect to shared state, so frontier states can
   be expanded on worker domains.

   With [?stubborn], only the enabled members of the state's stubborn
   set fire (the set is a deterministic function of the marking, so the
   layered parallel sweep stays order-identical to the serial one); a
   fresh scratch per call keeps the workers independent. *)
let expand ?stubborn kernel marking env =
  let out = ref [] in
  let fire (c : Kernel.ctrans) =
    let m' = Marking.copy marking in
    Kernel.apply c m';
    let env' =
      if c.Kernel.s_has_action then begin
        let env' = Env.copy env in
        Kernel.run_action env' c;
        env'
      end
      else env
    in
    out := (c.Kernel.s_id, Statekey.make m' env', m', env') :: !out
  in
  (match stubborn with
  | Some sb ->
    (* stubborn nets are predicate-free, so token-enabled = enabled *)
    let trans = Kernel.transitions kernel in
    let sc = Stubborn.scratch sb in
    Array.iter (fun tid -> fire trans.(tid)) (Stubborn.fired sb sc marking)
  | None ->
    Array.iter
      (fun (c : Kernel.ctrans) ->
        if Kernel.enabled c marking env then fire c)
      (Kernel.transitions kernel));
  List.rev !out

(* The packed sweep: a serial FIFO over state indices.  The popped
   state is decoded into a scratch array once; each enabled transition
   fires on a second scratch (blit + kernel apply — no per-edge
   allocation for variable-free nets) and interns straight into the
   arena.  Pop order is push order is interning order, so begin_source
   sees ascending sources and the CSR offsets append in one pass. *)
let build_packed ~max_states ~monitor ~monitored ~spill_threshold ~stubborn
    net kernel =
  let codec = Packed.create net in
  let store = Store.create codec ~num_transitions:(Net.num_transitions net) in
  let np = Net.num_places net in
  let env0 = Net.initial_env net in
  let id0 = Packed.intern_extra codec env0 in
  assert (id0 = 0);
  let truncated = ref false in
  let budget_stop = ref None in
  let frontier_left = ref 0 in
  let m0 = Marking.to_array (Net.initial_marking net) in
  (match Store.intern store m0 ~extra:id0 ~max_states with
  | `Added 0 -> ()
  | `Added _ | `Found _ | `Capped -> assert false);
  let parent = Array.make np 0 in
  let parent_mk = Marking.unsafe_wrap parent in
  let child = Array.make np 0 in
  let child_mk = Marking.unsafe_wrap child in
  let q = Store.Frontier.create ~threshold:spill_threshold () in
  Fun.protect
    ~finally:(fun () -> Store.Frontier.close q)
    (fun () ->
      Store.Frontier.push q 0;
      let trans = Kernel.transitions kernel in
      let sb_scratch = Option.map Stubborn.scratch stubborn in
      let pops = ref 0 in
      (* Budget checks ride the dequeue boundary every 256 states —
         the exact cadence of the boxed sweep. *)
      try
        while not (Store.Frontier.is_empty q) do
          incr pops;
          if monitored && !pops land 255 = 0 then begin
            match Pnut_exec.Supervisor.check monitor with
            | Some r ->
              budget_stop := Some r;
              frontier_left := Store.Frontier.length q;
              raise_notrace Exit
            | None -> ()
          end;
          let i = Store.Frontier.pop q in
          Store.begin_source store i;
          Store.marking_into store i parent;
          let ex = Store.extra store i in
          let env = Packed.extra_env codec ex in
          let fire (c : Kernel.ctrans) =
            Array.blit parent 0 child 0 np;
            Kernel.apply c child_mk;
            let ex' =
              if c.Kernel.s_has_action then begin
                let env' = Env.copy env in
                Kernel.run_action env' c;
                Packed.intern_extra codec env'
              end
              else ex
            in
            match Store.intern store child ~extra:ex' ~max_states with
            | `Capped -> truncated := true
            | `Found j -> Store.add_edge store ~tid:c.Kernel.s_id ~target:j
            | `Added j ->
              Store.add_edge store ~tid:c.Kernel.s_id ~target:j;
              Store.Frontier.push q j
          in
          (match stubborn, sb_scratch with
          | Some sb, Some sc ->
            Array.iter
              (fun tid -> fire trans.(tid))
              (Stubborn.fired sb sc parent_mk)
          | _ ->
            Array.iter
              (fun (c : Kernel.ctrans) ->
                if Kernel.enabled c parent_mk env then fire c)
              trans)
        done
      with Exit -> ());
  Store.finalize store;
  (store, !truncated, !budget_stop, !frontier_left)

(* -- the sharded parallel packed sweep --

   Each team member owns the states whose packed-word FNV hash lands in
   its shard (hash mod team) and interns them into a private
   {!Store.Words} table — no locks on the hot path.  Successors hashing
   into another shard are forwarded through per-ordered-pair SPSC
   channels; the consumer interns them and records its local id in a
   reply slot.  Edges are recorded shard-locally as (ref, transition)
   words, where a ref names the target either directly (owner shard +
   local id) or as a channel message index resolved through the reply
   slots.  After the team joins, a serial merge renumbers: a BFS from
   the initial state over the recorded per-state edge lists (kernel
   transition order) visits states in exactly the order the serial FIFO
   sweep interns them, replays the interning through
   {!Store.append_packed} and the edges through [begin_source]/
   [add_edge] — so the merged store's arena, index and CSR arrays are
   byte-identical to the serial builder's, for any team size.

   Termination is a single pending counter: interned-but-unexpanded
   states plus sent-but-unprocessed messages.  Expanding a state
   decrements it after any sends/interns it caused incremented it, and a
   consumed message either decrements (already known) or converts into
   the new state's pending count (net zero), so the counter can only
   reach zero when the sweep is globally done — members exit on zero.

   Two ways out of the fast path, both safe: [stop] (budget trip, polled
   by member 0 on the serial cadence) freezes expansion, un-counts each
   member's unexpanded states once, drains the in-flight messages and
   merges the expanded prefix into a valid partial graph; [abort]
   (layout overflow, state-cap hit, a stochastic action slipping
   through, or any member raising) discards everything and the caller
   rebuilds serially from scratch — widening and cap truncation thereby
   keep their exact serial semantics. *)

type chan = {
  mutable msg : int array;  (* [w] packed words per message *)
  sent : int Atomic.t;
  (* The producer's plain writes into [msg] (including a grown
     replacement array) happen before its [Atomic.set sent]; the
     consumer's [Atomic.get sent] therefore acquires them.  [replies]
     is written by the consumer only and read at merge time, after the
     team join has already synchronized everything. *)
  mutable consumed : int;  (* consumer-private *)
  mutable replies : int array;  (* consumer's local id per message *)
}

type shard = {
  tbl : Store.Words.t;
  mutable cursor : int;  (* local ids below this are expanded *)
  mutable e_off : int array;  (* per expanded local id: start into e_dat *)
  mutable e_dat : int array;  (* (ref lsl t_bits) lor transition id *)
  mutable e_n : int;
  out_count : int array;  (* messages sent so far, per destination *)
}

let bits_for v =
  let rec go w = if v lsr w = 0 then w else go (w + 1) in
  max 1 (go 0)

let build_packed_sharded ~max_states ~monitor ~monitored ~team ~stubborn net
    kernel =
  let codec = Packed.create net in
  if Packed.has_extra codec then None
  else begin
    let lay = Packed.layout codec in
    let w = Packed.words lay in
    let np = Net.num_places net in
    let id0 = Packed.intern_extra codec (Net.initial_env net) in
    assert (id0 = 0);
    let env0 = Packed.extra_env codec 0 in
    let trans = Kernel.transitions kernel in
    let nt = Net.num_transitions net in
    let t_bits = bits_for (max 0 (nt - 1)) in
    let t_mask = (1 lsl t_bits) - 1 in
    let m0 = Marking.to_array (Net.initial_marking net) in
    let key0 = Array.make w 0 in
    match Packed.encode lay key0 ~pos:0 m0 ~extra:0 with
    | exception Packed.Field_overflow _ -> None
    | () ->
      let h0 = Packed.hash lay key0 ~pos:0 in
      let s0 = h0 mod team in
      let shards =
        Array.init team (fun _ ->
            {
              tbl = Store.Words.create lay;
              cursor = 0;
              e_off = Array.make 64 0;
              e_dat = Array.make 64 0;
              e_n = 0;
              out_count = Array.make team 0;
            })
      in
      (match Store.Words.intern shards.(s0).tbl key0 ~pos:0 ~hash:h0 with
      | `Added 0 -> ()
      | `Added _ | `Found _ -> assert false);
      let chans =
        Array.init team (fun _ ->
            Array.init team (fun _ ->
                {
                  msg = Array.make (16 * w) 0;
                  sent = Atomic.make 0;
                  consumed = 0;
                  replies = [||];
                }))
      in
      let pending = Atomic.make 1 (* m0 *) in
      let total = Atomic.make 1 in
      let stop = Atomic.make false in
      let abort = Atomic.make false in
      (* member 0 is the calling domain; only it polls the monitor and
         writes the trip reason *)
      let trip = ref None in
      let member_body me =
        let sh = shards.(me) in
        let tbl = sh.tbl in
        let sb_scratch = Option.map Stubborn.scratch stubborn in
        let parent = Array.make np 0 in
        let parent_mk = Marking.unsafe_wrap parent in
        let child = Array.make np 0 in
        let child_mk = Marking.unsafe_wrap child in
        let key = Array.make w 0 in
        let pops = ref 0 in
        let spins = ref 0 in
        let draining = ref false in
        let running = ref true in
        let consume_all () =
          let progress = ref false in
          for src = 0 to team - 1 do
            if src <> me then begin
              let c = chans.(src).(me) in
              let n = Atomic.get c.sent in
              if c.consumed < n then begin
                progress := true;
                let buf = c.msg in
                if Array.length c.replies < n then begin
                  let r =
                    Array.make (max n (2 * Array.length c.replies)) 0
                  in
                  Array.blit c.replies 0 r 0 c.consumed;
                  c.replies <- r
                end;
                while c.consumed < n do
                  let k = c.consumed in
                  let pos = k * w in
                  let h = Packed.hash lay buf ~pos in
                  (match Store.Words.intern tbl buf ~pos ~hash:h with
                  | `Found lid ->
                    c.replies.(k) <- lid;
                    Atomic.decr pending
                  | `Added lid ->
                    c.replies.(k) <- lid;
                    if Atomic.fetch_and_add total 1 >= max_states then
                      Atomic.set abort true;
                    (* normally the message's pending count converts
                       into the fresh state's (net zero); a draining
                       shard will never expand it, so drop it *)
                    if !draining then Atomic.decr pending);
                  c.consumed <- k + 1
                done
              end
            end
          done;
          !progress
        in
        let expand_one lid =
          Packed.decode_into lay (Store.Words.arena tbl) ~pos:(lid * w) parent;
          if lid >= Array.length sh.e_off then begin
            let a = Array.make (2 * Array.length sh.e_off) 0 in
            Array.blit sh.e_off 0 a 0 lid;
            sh.e_off <- a
          end;
          sh.e_off.(lid) <- sh.e_n;
          let fire (c : Kernel.ctrans) =
            if c.Kernel.s_has_action then Atomic.set abort true
            else begin
              Array.blit parent 0 child 0 np;
              Kernel.apply c child_mk;
              match Packed.encode lay key ~pos:0 child ~extra:0 with
              | exception Packed.Field_overflow _ -> Atomic.set abort true
              | () ->
                let h = Packed.hash lay key ~pos:0 in
                let t_shard = h mod team in
                let ref_ =
                  if t_shard = me then begin
                    match Store.Words.intern tbl key ~pos:0 ~hash:h with
                    | `Found l -> (l * team + me) * 2
                    | `Added l ->
                      if Atomic.fetch_and_add total 1 >= max_states then
                        Atomic.set abort true;
                      Atomic.incr pending;
                      (l * team + me) * 2
                  end
                  else begin
                    let ch = chans.(me).(t_shard) in
                    let k = sh.out_count.(t_shard) in
                    if (k + 1) * w > Array.length ch.msg then begin
                      let m =
                        Array.make
                          (max ((k + 1) * w) (2 * Array.length ch.msg))
                          0
                      in
                      Array.blit ch.msg 0 m 0 (k * w);
                      ch.msg <- m
                    end;
                    Array.blit key 0 ch.msg (k * w) w;
                    sh.out_count.(t_shard) <- k + 1;
                    Atomic.incr pending;
                    Atomic.set ch.sent (k + 1);
                    ((k * team + t_shard) * 2) + 1
                  end
                in
                if sh.e_n >= Array.length sh.e_dat then begin
                  let a = Array.make (2 * Array.length sh.e_dat) 0 in
                  Array.blit sh.e_dat 0 a 0 sh.e_n;
                  sh.e_dat <- a
                end;
                sh.e_dat.(sh.e_n) <- (ref_ lsl t_bits) lor c.Kernel.s_id;
                sh.e_n <- sh.e_n + 1
            end
          in
          (* The stubborn set depends only on the decoded marking, so
             every member computes the same fired list for a given state
             and records its edges in the same ascending-tid order the
             serial sweep uses — the renumbering merge stays
             byte-identical at any team size. *)
          match stubborn, sb_scratch with
          | Some sb, Some sc ->
            Array.iter
              (fun tid -> fire trans.(tid))
              (Stubborn.fired sb sc parent_mk)
          | _ ->
            Array.iter
              (fun (c : Kernel.ctrans) ->
                if Kernel.enabled c parent_mk env0 then fire c)
              trans
        in
        while !running do
          if Atomic.get abort then running := false
          else begin
            if (not !draining) && Atomic.get stop then begin
              (* un-count the states this shard will now never expand;
                 exactly once, before any drain-mode consumption *)
              let unexp = Store.Words.length tbl - sh.cursor in
              if unexp > 0 then
                ignore (Atomic.fetch_and_add pending (-unexp) : int);
              draining := true
            end;
            let progress = ref (consume_all ()) in
            if not !draining then begin
              let batch = ref 0 in
              while
                !batch < 64
                && sh.cursor < Store.Words.length tbl
                && (not (Atomic.get abort))
                && not (Atomic.get stop)
              do
                incr pops;
                (if me = 0 && monitored && !pops land 255 = 0 then
                   match Pnut_exec.Supervisor.check monitor with
                   | Some r ->
                     trip := Some r;
                     Atomic.set stop true
                   | None -> ());
                if not (Atomic.get stop) then begin
                  let lid = sh.cursor in
                  expand_one lid;
                  sh.cursor <- lid + 1;
                  Atomic.decr pending;
                  progress := true;
                  incr batch
                end
              done
            end;
            if !progress then spins := 0
            else if Atomic.get pending = 0 then running := false
            else begin
              (* idle: the wall/heap budget must still trip even if this
                 member has nothing left to do *)
              (if me = 0 && monitored && not (Atomic.get stop) then
                 match Pnut_exec.Supervisor.check monitor with
                 | Some r ->
                   trip := Some r;
                   Atomic.set stop true
                 | None -> ());
              incr spins;
              Pnut_exec.Pool.relax !spins
            end
          end
        done
      in
      let member me =
        try member_body me
        with e ->
          (* unblock the other members before propagating, or the team
             would spin on a pending count that can no longer drop *)
          Atomic.set abort true;
          raise e
      in
      if not (Pnut_exec.Pool.run_team team member) then None
      else if Atomic.get abort then None
      else begin
        (* -- deterministic merge: renumber by BFS over recorded edges -- *)
        let store = Store.create codec ~num_transitions:nt in
        let count =
          Array.fold_left (fun a sh -> a + Store.Words.length sh.tbl) 0 shards
        in
        let gmap =
          Array.map (fun sh -> Array.make (Store.Words.length sh.tbl) (-1)) shards
        in
        let q = Array.make count 0 (* (local id * team + shard) *) in
        let qn = ref 0 in
        let push s lid =
          gmap.(s).(lid) <- !qn;
          q.(!qn) <- (lid * team) + s;
          incr qn;
          ignore
            (Store.append_packed store
               (Store.Words.arena shards.(s).tbl)
               ~pos:(lid * w)
              : int)
        in
        push s0 0;
        let g = ref 0 in
        while !g < !qn do
          let v = q.(!g) in
          let s = v mod team and lid = v / team in
          let sh = shards.(s) in
          if lid < sh.cursor then begin
            Store.begin_source store !g;
            let e_end =
              if lid + 1 < sh.cursor then sh.e_off.(lid + 1) else sh.e_n
            in
            for k = sh.e_off.(lid) to e_end - 1 do
              let word = sh.e_dat.(k) in
              let tid = word land t_mask in
              let r = word lsr t_bits in
              let t_shard, tlid =
                let v = r lsr 1 in
                if r land 1 = 0 then (v mod team, v / team)
                else
                  let t = v mod team in
                  (t, chans.(s).(t).replies.(v / team))
              in
              let gt =
                match gmap.(t_shard).(tlid) with
                | -1 ->
                  let id = !qn in
                  push t_shard tlid;
                  id
                | id -> id
              in
              Store.add_edge store ~tid ~target:gt
            done
          end;
          incr g
        done;
        Store.finalize store;
        let expanded =
          Array.fold_left (fun a sh -> a + sh.cursor) 0 shards
        in
        Some (store, false, !trip, count - expanded)
      end
  end

let build_supervised ?(max_states = 100_000) ?jobs
    ?(budget = Pnut_exec.Budget.none) ?(packed = false) ?frontier_spill
    ?(por = false) net =
  (match stochastic_parts net with
  | [] -> ()
  | bad ->
    invalid_arg
      ("Reach.Graph.build: stochastic predicate/action on transitions: "
      ^ String.concat ", " (List.sort_uniq String.compare bad)));
  let monitor = Pnut_exec.Supervisor.start budget in
  let monitored = Pnut_exec.Supervisor.active monitor in
  let max_states =
    match Pnut_exec.Supervisor.max_states monitor with
    | Some cap -> min cap max_states
    | None -> max_states
  in
  let kernel = Kernel.of_net net in
  (* Raises Stubborn.Unsupported when the net falls outside the
     reduction's fragment — callers choosing [por] must catch it or
     pre-check with Stubborn.unsupported. *)
  let stubborn = if por then Some (Stubborn.create kernel) else None in
  let finish ~repr ~truncated ~budget_stop ~frontier_left ~n ~n_edges =
    let complete = (not truncated) && budget_stop = None in
    let g = { net; repr; complete; n_edges } in
    match budget_stop with
    | Some reason ->
      Pnut_exec.Supervisor.Degraded
        {
          reason;
          partial = g;
          progress =
            Pnut_exec.Supervisor.snapshot monitor ~visited:n
              ~frontier:frontier_left;
        }
    | None ->
      if truncated then
        Pnut_exec.Supervisor.Degraded
          {
            reason = Pnut_exec.Supervisor.States n;
            partial = g;
            progress =
              Pnut_exec.Supervisor.snapshot monitor ~visited:n ~frontier:0;
          }
      else Pnut_exec.Supervisor.Complete g
  in
  if packed then begin
    let spill_threshold =
      match frontier_spill with
      | Some b -> b
      | None -> Pnut_exec.Budget.spill_threshold_bytes budget
    in
    (* Sharded first when more than one domain is available and the net
       qualifies (variable-free, initial layout fits); any abort — cap
       hit, layout overflow, pool busy — falls back to the serial sweep,
       which owns the exact truncation and widening semantics.  Either
       way the resulting store is byte-identical for every [jobs]. *)
    let sharded =
      let team = Pnut_exec.Pool.team_size ?jobs () in
      if team > 1 then
        build_packed_sharded ~max_states ~monitor ~monitored ~team ~stubborn
          net kernel
      else None
    in
    let store, truncated, budget_stop, frontier_left =
      match sharded with
      | Some r -> r
      | None ->
        build_packed ~max_states ~monitor ~monitored ~spill_threshold
          ~stubborn net kernel
    in
    finish ~repr:(Compact store) ~truncated ~budget_stop ~frontier_left
      ~n:(Store.num_states store) ~n_edges:(Store.num_edges store)
  end
  else begin
  let jobs = Pnut_exec.Pool.resolve ?jobs () in
  let index = Statekey.Tbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let edges_rev = ref [] in   (* every edge, most recent first *)
  let n_edges = ref 0 in
  let truncated = ref false in
  (* wall/heap/cancellation trip — [None] until the budget fires *)
  let budget_stop = ref None in
  (* states interned but not yet expanded when a trip stopped the sweep *)
  let frontier_left = ref 0 in
  (* Intern a key, computed exactly once per explored edge.  [None]
     means the target would be a fresh state beyond the cap: the edge
     is dropped and the graph flagged incomplete (edges into
     already-interned states are still recorded at the cap). *)
  let intern k =
    match Statekey.Tbl.find_opt index k with
    | Some i -> Some (i, false)
    | None ->
      if !n_states >= max_states then begin
        truncated := true;
        None
      end
      else begin
        let i = !n_states in
        incr n_states;
        Statekey.Tbl.replace index k i;
        states :=
          { s_index = i; s_marking = k.Statekey.k_marking;
            s_env = k.Statekey.k_bindings }
          :: !states;
        Some (i, true)
      end
  in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  (match intern (Statekey.make m0 env0) with
  | Some (0, true) -> ()
  | Some _ | None -> assert false);
  (* Serial: a plain FIFO sweep — the expansion of one state interns
     its successors and records its edges inline, with no intermediate
     successor lists or layer arrays.  Parallel: breadth-first by
     layers; workers expand the frontier in parallel (the expensive
     part: enabling tests, predicate/action evaluation, structural
     hashing) and the single interning pass then walks the results in
     frontier order.  FIFO visit order equals layer-by-frontier order,
     so state numbering, edge order and truncation behaviour are
     identical for every [jobs] value. *)
  (if jobs = 1 then begin
     let q = Queue.create () in
     Queue.add (0, m0, env0) q;
     let trans = Kernel.transitions kernel in
     let sb_scratch = Option.map Stubborn.scratch stubborn in
     let pops = ref 0 in
     (* Budget checks ride the dequeue boundary every 256 states, so a
        budgeted sweep that completes interns exactly the same states in
        exactly the same order as an unbudgeted one. *)
     (try
     while not (Queue.is_empty q) do
       incr pops;
       if monitored && !pops land 255 = 0 then begin
         match Pnut_exec.Supervisor.check monitor with
         | Some r ->
           budget_stop := Some r;
           frontier_left := Queue.length q;
           raise_notrace Exit
         | None -> ()
       end;
       let i, m, env = Queue.pop q in
       let fire (c : Kernel.ctrans) =
         let m' = Marking.copy m in
         Kernel.apply c m';
         let env' =
           if c.Kernel.s_has_action then begin
             let env' = Env.copy env in
             Kernel.run_action env' c;
             env'
           end
           else env
         in
         match intern (Statekey.make m' env') with
         | None -> ()
         | Some (j, fresh) ->
           edges_rev :=
             { e_from = i; e_transition = c.Kernel.s_id; e_to = j }
             :: !edges_rev;
           incr n_edges;
           if fresh then Queue.add (j, m', env') q
       in
       (match stubborn, sb_scratch with
       | Some sb, Some sc ->
         Array.iter (fun tid -> fire trans.(tid)) (Stubborn.fired sb sc m)
       | _ ->
         Array.iter
           (fun (c : Kernel.ctrans) ->
             if Kernel.enabled c m env then fire c)
           trans)
     done
     with Exit -> ())
   end
   else begin
     let frontier = ref [ (0, m0, env0) ] in
     while !frontier <> [] do
       (if monitored then
          match Pnut_exec.Supervisor.check monitor with
          | Some r ->
            budget_stop := Some r;
            frontier_left := List.length !frontier;
            frontier := []
          | None -> ());
       if !frontier <> [] then begin
       let layer = Array.of_list !frontier in
       let expanded =
         if Array.length layer < 2 then
           Array.map (fun (_, m, e) -> expand ?stubborn kernel m e) layer
         else
           Pnut_exec.Pool.init ~jobs (Array.length layer) (fun x ->
               let _, m, e = layer.(x) in
               expand ?stubborn kernel m e)
       in
       let next = ref [] in
       Array.iteri
         (fun x succs ->
           let i, _, _ = layer.(x) in
           List.iter
             (fun (tid, k, m', env') ->
               match intern k with
               | None -> ()
               | Some (j, fresh) ->
                 edges_rev :=
                   { e_from = i; e_transition = tid; e_to = j } :: !edges_rev;
                 incr n_edges;
                 if fresh then next := (j, m', env') :: !next)
             succs)
         expanded;
       frontier := List.rev !next
       end
     done
   end);
  let n = !n_states in
  let states_arr = Array.make n { s_index = 0; s_marking = [||]; s_env = [] } in
  List.iter (fun s -> states_arr.(s.s_index) <- s) !states;
  let succ = Array.make n [] in
  (* walking most-recent-first and prepending leaves every per-source
     list in emission order *)
  List.iter (fun e -> succ.(e.e_from) <- e :: succ.(e.e_from)) !edges_rev;
  let pred = Array.make n [] in
  Array.iter (fun l -> List.iter (fun e -> pred.(e.e_to) <- e :: pred.(e.e_to)) l) succ;
  finish ~repr:(Boxed { states = states_arr; succ; pred })
    ~truncated:!truncated ~budget_stop:!budget_stop
    ~frontier_left:!frontier_left ~n ~n_edges:!n_edges
  end

let build ?max_states ?jobs ?packed ?por net =
  Pnut_exec.Supervisor.value
    (build_supervised ?max_states ?jobs ?packed ?por net)

(* monomorphic int-array comparison — [find_state] and friends sit on
   user-facing query paths over millions of states *)
let marking_eq (a : int array) b =
  a == b
  || (Array.length a = Array.length b
     &&
     let n = Array.length a in
     let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
     go 0)

let find_state g marking =
  match g.repr with
  | Boxed b ->
    let n = Array.length b.states in
    let rec go i =
      if i >= n then None
      else if marking_eq b.states.(i).s_marking marking then Some i
      else go (i + 1)
    in
    go 0
  | Compact st ->
    let np = Net.num_places g.net in
    if Array.length marking <> np then None
    else begin
      let scratch = Array.make np 0 in
      let n = Store.num_states st in
      let rec go i =
        if i >= n then None
        else begin
          Store.marking_into st i scratch;
          if marking_eq scratch marking then Some i else go (i + 1)
        end
      in
      go 0
    end

let deadlocks g =
  let acc = ref [] in
  (match g.repr with
  | Boxed b ->
    for i = Array.length b.states - 1 downto 0 do
      if b.succ.(i) = [] then acc := i :: !acc
    done
  | Compact st ->
    for i = Store.num_states st - 1 downto 0 do
      if Store.out_degree st i = 0 then acc := i :: !acc
    done);
  !acc

let bound g p =
  match g.repr with
  | Boxed b ->
    Array.fold_left (fun acc s -> max acc s.s_marking.(p)) 0 b.states
  | Compact st ->
    let scratch = Array.make (Net.num_places g.net) 0 in
    let acc = ref 0 in
    for i = 0 to Store.num_states st - 1 do
      Store.marking_into st i scratch;
      if scratch.(p) > !acc then acc := scratch.(p)
    done;
    !acc

let is_safe g =
  match g.repr with
  | Boxed b ->
    Array.for_all
      (fun s -> Array.for_all (fun c -> c <= 1) s.s_marking)
      b.states
  | Compact st ->
    let np = Net.num_places g.net in
    let scratch = Array.make np 0 in
    let n = Store.num_states st in
    let rec go i =
      i >= n
      || (Store.marking_into st i scratch;
          Array.for_all (fun c -> c <= 1) scratch && go (i + 1))
    in
    go 0

(* One pass over the edges marks fired transitions; both liveness
   queries read the same bool array instead of the old O(T^2)
   list-membership scan. *)
let transition_fired g =
  let seen = Array.make (Net.num_transitions g.net) false in
  (match g.repr with
  | Boxed b ->
    Array.iter
      (fun l -> List.iter (fun e -> seen.(e.e_transition) <- true) l)
      b.succ
  | Compact st -> Store.iter_edges st (fun _ tid _ -> seen.(tid) <- true));
  seen

let live_transitions g =
  let seen = transition_fired g in
  let acc = ref [] in
  for i = Array.length seen - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  !acc

let dead_transitions g =
  let seen = transition_fired g in
  let acc = ref [] in
  for i = Array.length seen - 1 downto 0 do
    if not seen.(i) then acc := i :: !acc
  done;
  !acc

let iter_pred_sources g i f =
  match g.repr with
  | Boxed b -> List.iter (fun e -> f e.e_from) b.pred.(i)
  | Compact st -> Store.iter_pred_sources st i f

(* States from which [targets] is reachable: backward closure. *)
let backward_closure g targets =
  let marked = Array.make (num_states g) false in
  let stack = ref targets in
  List.iter (fun i -> marked.(i) <- true) targets;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      iter_pred_sources g i (fun src ->
          if not marked.(src) then begin
            marked.(src) <- true;
            stack := src :: !stack
          end)
  done;
  marked

let is_reversible g =
  let can_return = backward_closure g [ 0 ] in
  Array.for_all (fun b -> b) can_return

let home_states g =
  let n = num_states g in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let reach_i = backward_closure g [ i ] in
    if Array.for_all (fun b -> b) reach_i then acc := i :: !acc
  done;
  !acc

let check_invariant g p =
  let n = num_states g in
  let rec go i =
    if i >= n then None else if not (p (state g i)) then Some i else go (i + 1)
  in
  go 0

let pp_summary ppf g =
  Format.fprintf ppf
    "@[<v>reachability graph of %s@,states: %d%s@,edges: %d@,deadlocks: %d@,\
     safe: %b@,reversible: %b@,dead transitions: %s@]"
    (Net.name g.net) (num_states g)
    (if g.complete then "" else " (truncated)")
    (num_edges g)
    (List.length (deadlocks g))
    (is_safe g) (is_reversible g)
    (match dead_transitions g with
    | [] -> "none"
    | l ->
      String.concat ", "
        (List.map (fun i -> (Net.transition g.net i).Net.t_name) l))
