module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value

type state = {
  s_index : int;
  s_marking : int array;
  s_env : (string * Value.t) list;
}

type edge = {
  e_from : int;
  e_transition : Net.transition_id;
  e_to : int;
}

type t = {
  net : Net.t;
  states : state array;
  succ : edge list array;   (* indexed by source state *)
  pred : edge list array;   (* indexed by target state *)
  complete : bool;
}

let net g = g.net
let complete g = g.complete
let num_states g = Array.length g.states
let num_edges g = Array.fold_left (fun acc l -> acc + List.length l) 0 g.succ
let state g i = g.states.(i)
let initial _ = 0
let successors g i = g.succ.(i)
let predecessors g i = g.pred.(i)
let edges g = List.concat (Array.to_list g.succ)

let stochastic_parts net =
  Array.to_list (Net.transitions net)
  |> List.concat_map (fun tr ->
         let pred_bad =
           match tr.Net.t_predicate with
           | Some p when not (Expr.is_deterministic p) -> [ tr.Net.t_name ]
           | Some _ | None -> []
         in
         let action_bad =
           if
             List.exists
               (fun s ->
                 match s with
                 | Expr.Assign (_, e) -> not (Expr.is_deterministic e)
                 | Expr.Table_assign (_, i, e) ->
                   not (Expr.is_deterministic i && Expr.is_deterministic e))
               tr.Net.t_action
           then [ tr.Net.t_name ]
           else []
         in
         pred_bad @ action_bad)

(* Successors of one concrete state: fire every enabled transition on
   fresh copies and snapshot the result into a hashconsed key.  Pure
   (reads the net, touches only the copies), so frontier states can be
   expanded on worker domains. *)
let expand net marking env =
  let out = ref [] in
  Array.iter
    (fun tr ->
      if Net.enabled net marking env tr then begin
        let m' = Marking.copy marking in
        let env' = Env.copy env in
        Net.consume net m' tr;
        Net.produce net m' tr;
        Expr.run_stmts env' tr.Net.t_action;
        out := (tr.Net.t_id, Statekey.make m' env', m', env') :: !out
      end)
    (Net.transitions net);
  List.rev !out

let build ?(max_states = 100_000) ?jobs net =
  (match stochastic_parts net with
  | [] -> ()
  | bad ->
    invalid_arg
      ("Reach.Graph.build: stochastic predicate/action on transitions: "
      ^ String.concat ", " (List.sort_uniq String.compare bad)));
  let jobs = Pnut_exec.Pool.resolve ?jobs () in
  let index = Statekey.Tbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let succ_acc = Hashtbl.create 1024 in
  let truncated = ref false in
  (* Intern a key, computed exactly once per explored edge.  [None]
     means the target would be a fresh state beyond the cap: the edge
     is dropped and the graph flagged incomplete (edges into
     already-interned states are still recorded at the cap). *)
  let intern k =
    match Statekey.Tbl.find_opt index k with
    | Some i -> Some (i, false)
    | None ->
      if !n_states >= max_states then begin
        truncated := true;
        None
      end
      else begin
        let i = !n_states in
        incr n_states;
        Statekey.Tbl.replace index k i;
        states :=
          { s_index = i; s_marking = k.Statekey.k_marking;
            s_env = k.Statekey.k_bindings }
          :: !states;
        Some (i, true)
      end
  in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  (match intern (Statekey.make m0 env0) with
  | Some (0, true) -> ()
  | Some _ | None -> assert false);
  (* Breadth-first by layers.  Workers expand the frontier in parallel
     (the expensive part: enabling tests, predicate/action evaluation,
     structural hashing); the single interning pass then walks the
     results in frontier order, so state numbering, edge order and
     truncation behaviour are identical to the serial construction for
     every [jobs] value. *)
  let frontier = ref [ (0, m0, env0) ] in
  while !frontier <> [] do
    let layer = Array.of_list !frontier in
    let expanded =
      if jobs = 1 || Array.length layer < 2 then
        Array.map (fun (_, m, e) -> expand net m e) layer
      else
        Pnut_exec.Pool.init ~jobs (Array.length layer) (fun x ->
            let _, m, e = layer.(x) in
            expand net m e)
    in
    let next = ref [] in
    Array.iteri
      (fun x succs ->
        let i, _, _ = layer.(x) in
        List.iter
          (fun (tid, k, m', env') ->
            match intern k with
            | None -> ()
            | Some (j, fresh) ->
              Hashtbl.replace succ_acc i
                ({ e_from = i; e_transition = tid; e_to = j }
                :: (try Hashtbl.find succ_acc i with Not_found -> []));
              if fresh then next := (j, m', env') :: !next)
          succs)
      expanded;
    frontier := List.rev !next
  done;
  let n = !n_states in
  let states_arr = Array.make n { s_index = 0; s_marking = [||]; s_env = [] } in
  List.iter (fun s -> states_arr.(s.s_index) <- s) !states;
  let succ = Array.make n [] in
  Hashtbl.iter (fun i l -> succ.(i) <- List.rev l) succ_acc;
  let pred = Array.make n [] in
  Array.iter (fun l -> List.iter (fun e -> pred.(e.e_to) <- e :: pred.(e.e_to)) l) succ;
  { net; states = states_arr; succ; pred; complete = not !truncated }

let find_state g marking =
  let n = num_states g in
  let rec go i =
    if i >= n then None
    else if g.states.(i).s_marking = marking then Some i
    else go (i + 1)
  in
  go 0

let deadlocks g =
  let acc = ref [] in
  for i = num_states g - 1 downto 0 do
    if g.succ.(i) = [] then acc := i :: !acc
  done;
  !acc

let bound g p =
  Array.fold_left (fun acc s -> max acc s.s_marking.(p)) 0 g.states

let is_safe g =
  Array.for_all
    (fun s -> Array.for_all (fun c -> c <= 1) s.s_marking)
    g.states

let live_transitions g =
  let seen = Array.make (Net.num_transitions g.net) false in
  Array.iter
    (fun l -> List.iter (fun e -> seen.(e.e_transition) <- true) l)
    g.succ;
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) seen;
  List.rev !acc

let dead_transitions g =
  let live = live_transitions g in
  List.init (Net.num_transitions g.net) (fun i -> i)
  |> List.filter (fun i -> not (List.mem i live))

(* States from which [targets] is reachable: backward closure. *)
let backward_closure g targets =
  let marked = Array.make (num_states g) false in
  let stack = ref targets in
  List.iter (fun i -> marked.(i) <- true) targets;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      List.iter
        (fun e ->
          if not marked.(e.e_from) then begin
            marked.(e.e_from) <- true;
            stack := e.e_from :: !stack
          end)
        g.pred.(i)
  done;
  marked

let is_reversible g =
  let can_return = backward_closure g [ 0 ] in
  Array.for_all (fun b -> b) can_return

let home_states g =
  let n = num_states g in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let reach_i = backward_closure g [ i ] in
    if Array.for_all (fun b -> b) reach_i then acc := i :: !acc
  done;
  !acc

let check_invariant g p =
  let n = num_states g in
  let rec go i =
    if i >= n then None else if not (p g.states.(i)) then Some i else go (i + 1)
  in
  go 0

let pp_summary ppf g =
  Format.fprintf ppf
    "@[<v>reachability graph of %s@,states: %d%s@,edges: %d@,deadlocks: %d@,\
     safe: %b@,reversible: %b@,dead transitions: %s@]"
    (Net.name g.net) (num_states g)
    (if g.complete then "" else " (truncated)")
    (num_edges g)
    (List.length (deadlocks g))
    (is_safe g) (is_reversible g)
    (match dead_transitions g with
    | [] -> "none"
    | l ->
      String.concat ", "
        (List.map (fun i -> (Net.transition g.net i).Net.t_name) l))
