module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Incidence = Pnut_core.Incidence

(* Bit-packed state encoding: every bounded place becomes a fixed-width
   bitfield in a small run of 63-bit words, sized from
   {!Incidence.place_bounds} (declared capacities tightened by
   P-invariants).  Fields never straddle words, so encode/decode is a
   shift and a mask per place.  Everything that is not a token count —
   the environment and, for completeness, a clock rendering — is
   interned once in a side table and referenced by a small id field;
   variable-free nets get no id field at all and pay zero env bytes per
   state.

   Bounds are advisory: a declared capacity may lie, and unbounded
   places start at a guessed width.  Overflowing a field raises
   {!Field_overflow}; the store catches it, widens the layout and
   re-encodes its arena, so packing is never unsound. *)

type layout = {
  l_word : int array;   (* word holding each place's field *)
  l_shift : int array;
  l_mask : int array;   (* (1 lsl width) - 1 *)
  l_extra : (int * int * int) option;  (* (word, shift, mask) of the id field *)
  l_words : int;        (* words per state, >= 1 *)
}

exception Field_overflow of { field : int; value : int }

let places lay = Array.length lay.l_word
let words lay = lay.l_words

(* Width in bits to hold every value in 0..v; capped by callers at 62
   (the widest field a 63-bit word can carry with room to spare). *)
let bits_needed v =
  let rec go w = if v lsr w = 0 then w else go (w + 1) in
  max 1 (go 0)

let max_width = 62

let make_layout widths extra_width =
  let np = Array.length widths in
  let word = Array.make np 0 in
  let shift = Array.make np 0 in
  let mask = Array.make np 0 in
  let w = ref 0 and bit = ref 0 in
  let alloc width =
    if width > max_width then
      invalid_arg "Packed: field width exceeds 62 bits";
    if !bit + width > 63 then begin
      incr w;
      bit := 0
    end;
    let slot = (!w, !bit) in
    bit := !bit + width;
    slot
  in
  for p = 0 to np - 1 do
    let wd, sh = alloc widths.(p) in
    word.(p) <- wd;
    shift.(p) <- sh;
    mask.(p) <- (1 lsl widths.(p)) - 1
  done;
  let extra =
    match extra_width with
    | None -> None
    | Some ew ->
      let wd, sh = alloc ew in
      Some (wd, sh, (1 lsl ew) - 1)
  in
  { l_word = word; l_shift = shift; l_mask = mask; l_extra = extra;
    l_words = (if np = 0 && extra = None then 1 else !w + 1) }

type t = {
  mutable lay : layout;
  extra_index : int Statekey.Tbl.t;  (* (env, clocks) -> id *)
  mutable extra_envs : Env.t array;
  mutable extra_keys : Statekey.t array;
  mutable n_extra : int;
  zero_marking : Marking.t;  (* env-only keys: reuses Statekey equality *)
}

let layout t = t.lay
let has_extra t = t.lay.l_extra <> None

let create ?bounds ?with_extra net =
  let np = Net.num_places net in
  let bounds =
    match bounds with Some b -> b | None -> Incidence.place_bounds net
  in
  if Array.length bounds <> np then
    invalid_arg "Packed.create: bounds length does not match the net";
  let m0 = Marking.to_array (Net.initial_marking net) in
  let widths =
    Array.init np (fun p ->
        match bounds.(p) with
        | Some b -> min max_width (bits_needed (max b m0.(p)))
        | None ->
          (* no bound known: start at the initial count (at least 4
             bits) and rely on the checked widen path *)
          min max_width (max (bits_needed m0.(p)) 4))
  in
  let with_extra =
    match with_extra with
    | Some b -> b
    | None -> Net.variables net <> [] || Net.tables net <> []
  in
  let extra_width = if with_extra then Some 10 else None in
  {
    lay = make_layout widths extra_width;
    extra_index = Statekey.Tbl.create 16;
    extra_envs = [||];
    extra_keys = [||];
    n_extra = 0;
    zero_marking = Marking.create 0;
  }

let bounds_known net =
  Array.for_all Option.is_some (Incidence.place_bounds net)

(* -- side table -- *)

let intern_extra t ?(clocks = "") env =
  let k = Statekey.make ~clocks t.zero_marking env in
  match Statekey.Tbl.find_opt t.extra_index k with
  | Some id -> id
  | None ->
    let id = t.n_extra in
    if id >= Array.length t.extra_envs then begin
      let cap = max 16 (2 * Array.length t.extra_envs) in
      let envs = Array.make cap env in
      let keys = Array.make cap k in
      Array.blit t.extra_envs 0 envs 0 id;
      Array.blit t.extra_keys 0 keys 0 id;
      t.extra_envs <- envs;
      t.extra_keys <- keys
    end;
    t.extra_envs.(id) <- env;
    t.extra_keys.(id) <- k;
    Statekey.Tbl.replace t.extra_index k id;
    t.n_extra <- id + 1;
    id

let num_extra t = t.n_extra
let extra_env t id = t.extra_envs.(id)
let extra_key t id = t.extra_keys.(id)
let extra_bindings t id = (extra_key t id).Statekey.k_bindings

(* -- codec over an explicit layout (the store re-encodes with the old
      layout during a widen, so these do not read [t.lay]) -- *)

let encode lay dst ~pos marking ~extra =
  let np = Array.length lay.l_word in
  for i = 0 to lay.l_words - 1 do
    dst.(pos + i) <- 0
  done;
  for p = 0 to np - 1 do
    let v = marking.(p) in
    if v < 0 || v > lay.l_mask.(p) then
      raise (Field_overflow { field = p; value = v });
    dst.(pos + lay.l_word.(p)) <-
      dst.(pos + lay.l_word.(p)) lor (v lsl lay.l_shift.(p))
  done;
  match lay.l_extra with
  | None -> if extra <> 0 then raise (Field_overflow { field = -1; value = extra })
  | Some (w, s, m) ->
    if extra > m then raise (Field_overflow { field = -1; value = extra });
    dst.(pos + w) <- dst.(pos + w) lor (extra lsl s)

let decode_into lay src ~pos dst =
  let np = Array.length lay.l_word in
  for p = 0 to np - 1 do
    dst.(p) <- (src.(pos + lay.l_word.(p)) lsr lay.l_shift.(p)) land lay.l_mask.(p)
  done

let decode lay src ~pos =
  let dst = Array.make (Array.length lay.l_word) 0 in
  decode_into lay src ~pos dst;
  dst

let extra_of lay src ~pos =
  match lay.l_extra with
  | None -> 0
  | Some (w, s, m) -> (src.(pos + w) lsr s) land m

(* FNV-1a over the state's words with a final avalanche; equal packed
   states hash equal by construction, and no per-state hash is stored
   (the index recomputes from the arena when it grows). *)
let fnv_prime = 0x100000001b3

let hash lay src ~pos =
  let h = ref 0x3ade68b1 in
  for i = pos to pos + lay.l_words - 1 do
    h := (!h lxor src.(i)) * fnv_prime
  done;
  let h = !h lxor (!h lsr 29) in
  (h * fnv_prime) land max_int

let equal lay a ~pos b pos2 =
  let rec go i =
    i >= lay.l_words || (a.(pos + i) = b.(pos2 + i) && go (i + 1))
  in
  go 0

(* Widen the overflowing field to fit [value] and rebuild the layout;
   returns the previous layout so the caller can still decode states
   encoded under it. *)
let widen t ~field ~value =
  let old = t.lay in
  let np = Array.length old.l_mask in
  let widths = Array.init np (fun p -> bits_needed old.l_mask.(p)) in
  let extra_width =
    match old.l_extra with
    | Some (_, _, m) -> Some (bits_needed m)
    | None -> None
  in
  let extra_width =
    if field < 0 then
      Some
        (min max_width
           (max (bits_needed value)
              (match extra_width with Some w -> w + 1 | None -> 10)))
    else extra_width
  in
  if field >= 0 then begin
    let needed = bits_needed value in
    if needed > max_width then
      invalid_arg "Packed.widen: token count exceeds 62 bits";
    widths.(field) <- max (widths.(field) + 1) needed;
    widths.(field) <- min max_width widths.(field)
  end;
  t.lay <- make_layout widths extra_width;
  old
