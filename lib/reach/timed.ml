(* State-class timed reachability.

   The old builder enumerated concrete clock valuations — every residual
   combination its own state, every time advance its own Tick edge.  On
   the paper's pipeline models that explodes linearly in the delay
   constants: a 10-cycle memory stage drags thousands of interpolated
   tick states through the graph without changing a single marking.
   This builder computes {e state classes} instead, in the
   Berthomieu/Menasche tradition adapted to Razouk's two-phase firing
   rule: a class is a marking, an environment, and the multiset of
   transition ids currently in flight, together with a canonical
   firing-interval domain — the per-timer [lo, hi] envelope of every
   residual vector reaching the class.

   The facts that make the class graph exact for the analyses we run:

   - Vectors are {e shift-normalized} at creation: when no timer is at
     zero, the minimum residual is subtracted from every clock — the
     explicit builder's Tick, folded into the edge that created the
     vector.  Tick edges therefore vanish entirely; every class edge is
     a [Fire] or a [Complete].
   - The pending (enabling) timer support is a function of (marking,
     env) — the refresh rule keeps exactly the enabled transitions — so
     class identity only needs the in-flight multiset on top of the
     {!Statekey}; all vectors of a class agree on both supports and
     differ only in residual values.
   - Reachable (marking, env) pairs, the deadlock set and per-place
     bounds all coincide with the explicit expansion's (a class is dead
     iff it has no timers and nothing enabled, which is a per-class
     property, not a per-vector one).  Per-path time is the one thing
     folded away; {!min_cycle_time} recovers it with a uniform-cost
     search over normalized vectors where the edge weight is the
     normalization shift.

   The construction is layered onto the one graph stack: classes intern
   via {!Statekey}, pack into the {!Store} arena (marking fields plus
   the interned (env, in-flight) domain in the extra-id field), run
   under {!Pnut_exec.Supervisor} budgets, and shard across domains with
   the same byte-identical-for-any-jobs merge as the untimed builder.
   {!Timed_explicit} keeps the old semantics frozen as the differential
   oracle. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Value = Pnut_core.Value
module Kernel = Pnut_core.Kernel
module Duration = Pnut_core.Duration

type label =
  | Fire of Net.transition_id
  | Complete of Net.transition_id

type state = {
  ts_index : int;
  ts_marking : int array;
  ts_flight : Net.transition_id list;
  ts_pending : Net.transition_id list;
  ts_flight_iv : (float * float) list;
  ts_pending_iv : (float * float) list;
  ts_env : (string * Value.t) list;
}

type edge = {
  e_from : int;
  e_label : label;
  e_to : int;
}

(* Same two physical layouts as {!Graph}: [Boxed] keeps per-class
   records and edge lists, [Compact] is the packed arena with CSR
   edges.  The timer supports and interval envelopes live in flat side
   arrays shared by both layouts (they are small — one slot per timer
   per class — and have no packed encoding). *)
type repr =
  | Boxed of {
      markings : int array array;
      envs : Env.t array;
      succ : edge list array;
      pred : edge list array;
    }
  | Compact of Store.t

type t = {
  net : Net.t;
  repr : repr;
  complete : bool;
  n_edges : int;
  n_vectors : int;  (* residual vectors explored to close the classes *)
  sup_off : int array;  (* class -> start into sup/iv; length n+1 *)
  sup : int array;  (* 2*tid = in-flight slot, 2*tid+1 = pending slot *)
  iv_lo : float array;
  iv_hi : float array;
}

let net g = g.net
let complete g = g.complete
let num_vectors g = g.n_vectors
let num_edges g = g.n_edges

let num_states g =
  match g.repr with
  | Boxed b -> Array.length b.markings
  | Compact st -> Store.num_states st

(* Fire and Complete edges share the store's transition-id field:
   even codes fire, odd codes complete. *)
let label_of_code c = if c land 1 = 0 then Fire (c asr 1) else Complete (c asr 1)

let state g i =
  let marking, env_bindings =
    match g.repr with
    | Boxed b -> (b.markings.(i), Env.bindings b.envs.(i))
    | Compact st ->
      let codec = Store.codec st in
      let np = Packed.places (Packed.layout codec) in
      let m = Array.make np 0 in
      Store.marking_into st i m;
      (m, Packed.extra_bindings codec (Store.extra st i))
  in
  let lo = g.sup_off.(i) and hi = g.sup_off.(i + 1) in
  let flight = ref [] and pending = ref [] in
  let flight_iv = ref [] and pending_iv = ref [] in
  for k = hi - 1 downto lo do
    let s = g.sup.(k) in
    let iv = (g.iv_lo.(k), g.iv_hi.(k)) in
    if s land 1 = 0 then begin
      flight := (s asr 1) :: !flight;
      flight_iv := iv :: !flight_iv
    end
    else begin
      pending := (s asr 1) :: !pending;
      pending_iv := iv :: !pending_iv
    end
  done;
  {
    ts_index = i;
    ts_marking = marking;
    ts_flight = !flight;
    ts_pending = !pending;
    ts_flight_iv = !flight_iv;
    ts_pending_iv = !pending_iv;
    ts_env = env_bindings;
  }

let initial _ = 0

let successors g i =
  match g.repr with
  | Boxed b -> b.succ.(i)
  | Compact st ->
    List.map
      (fun (code, tgt) -> { e_from = i; e_label = label_of_code code; e_to = tgt })
      (Store.successors st i)

let predecessors g j =
  match g.repr with
  | Boxed b -> b.pred.(j)
  | Compact st ->
    List.map
      (fun (src, code) -> { e_from = src; e_label = label_of_code code; e_to = j })
      (Store.predecessors st j)

let packed_bytes_per_state g =
  match g.repr with
  | Boxed _ -> None
  | Compact st -> Some (Store.bytes_per_state st)

let packed_arrays g =
  match g.repr with
  | Boxed _ -> None
  | Compact st -> Some (Store.internal_arrays st)

let domain_arrays g = (g.sup_off, g.sup, g.iv_lo, g.iv_hi)

(* -- shared timed-semantics helpers (Razouk's two-phase rule) -- *)

let det_duration env d = Duration.det ~who:"Reach.Timed" env d

(* Recompute the pending (enabling) list after a state change: enabled
   transitions keep their old residual, newly enabled ones start at
   their full enabling delay, [restart] names transitions whose clock
   restarts regardless (the just-fired one).  Identical to the frozen
   oracle's rule — the differential suite depends on it. *)
let refresh_pending kernel marking env old_pending ~restart =
  Array.to_list (Kernel.transitions kernel)
  |> List.filter_map (fun (c : Kernel.ctrans) ->
         if Kernel.enabled c marking env then
           let residual =
             match List.assoc_opt c.s_id old_pending with
             | Some r when not (List.mem c.s_id restart) -> r
             | Some _ | None -> det_duration env c.s_tr.Net.t_enabling
           in
           Some (c.s_id, residual)
         else None)

let float_key f = Printf.sprintf "%.9g" f

(* Canonical rendering of one residual vector (both timer lists must be
   sorted) — the per-class vector-dedup key. *)
let clocks_repr in_flight pending =
  let buf = Buffer.create 32 in
  List.iter
    (fun (t, r) -> Buffer.add_string buf (Printf.sprintf "%d:%s;" t (float_key r)))
    in_flight;
  Buffer.add_char buf '|';
  List.iter
    (fun (t, r) -> Buffer.add_string buf (Printf.sprintf "%d:%s;" t (float_key r)))
    pending;
  Buffer.contents buf

(* Canonical rendering of the in-flight transition multiset (sorted) —
   the clock component of class identity, and the [clocks] string under
   which the class's domain is interned into the packed extra table. *)
let flight_repr flight =
  let buf = Buffer.create 16 in
  List.iter
    (fun (t, _) ->
      Buffer.add_string buf (string_of_int t);
      Buffer.add_char buf ';')
    flight;
  Buffer.contents buf

let sort_flight l =
  List.sort
    (fun (t1, r1) (t2, r2) ->
      match compare t1 t2 with 0 -> Float.compare r1 r2 | c -> c)
    l

(* Shift-normalize a vector: when no clock is at zero, subtract the
   minimum residual from every clock — the oracle's Tick, performed
   eagerly with the same float operations so residual values match it
   bit for bit.  Returns the shift (the Tick duration folded into the
   incoming edge); 0 when the vector was already normal. *)
let normalize flight pending =
  let has_zero = List.exists (fun (_, r) -> Float.equal r 0.0) in
  if has_zero flight || has_zero pending then (flight, pending, 0.0)
  else begin
    let residuals =
      List.map snd flight
      @ List.filter_map (fun (_, r) -> if r > 0.0 then Some r else None) pending
    in
    match residuals with
    | [] -> (flight, pending, 0.0)
    | first :: rest ->
      let d = List.fold_left Float.min first rest in
      let tick l = List.map (fun (t, r) -> (t, Float.max 0.0 (r -. d))) l in
      (tick flight, tick pending, d)
  end

(* One candidate successor vector, already sorted and normalized. *)
type cand = {
  c_code : int;
  c_marking : Marking.t;
  c_flight : (Net.transition_id * float) list;
  c_pending : (Net.transition_id * float) list;
  c_env : Env.t;
  c_shift : float;  (* normalization shift = folded Tick duration *)
}

(* All successor vectors of one vector, in the fixed completion-then-
   firing order.  Normal vectors always have a zero clock (or none at
   all), so the oracle's third branch — the explicit tick — never
   applies here; it is absorbed into [normalize].  Pure with respect to
   shared state, so shard workers can expand concurrently. *)
let successors_of kernel (marking, flight, pending, env) =
  let acc = ref [] in
  let visit code marking' flight' pending' env' =
    let flight', pending', shift =
      normalize (sort_flight flight') (sort_flight pending')
    in
    acc :=
      { c_code = code; c_marking = marking'; c_flight = flight';
        c_pending = pending'; c_env = env'; c_shift = shift }
      :: !acc
  in
  let completable = List.filter (fun (_, r) -> Float.equal r 0.0) flight in
  List.iter
    (fun (tid, _) ->
      let c = Kernel.transition kernel tid in
      let m' = Marking.copy marking in
      Kernel.produce c m';
      let env' =
        if c.Kernel.s_has_action then begin
          let env' = Env.copy env in
          Kernel.run_action env' c;
          env'
        end
        else env
      in
      let remove l =
        let rec go = function
          | [] -> []
          | (t, r) :: rest when t = tid && Float.equal r 0.0 -> rest
          | x :: rest -> x :: go rest
        in
        go l
      in
      let flight' = remove flight in
      let pending' = refresh_pending kernel m' env' pending ~restart:[] in
      visit ((2 * tid) + 1) m' flight' pending' env')
    (List.sort_uniq compare completable);
  let fireable =
    List.filter
      (fun (tid, r) ->
        Float.equal r 0.0
        && Kernel.enabled (Kernel.transition kernel tid) marking env)
      pending
  in
  List.iter
    (fun (tid, _) ->
      let c = Kernel.transition kernel tid in
      let m' = Marking.copy marking in
      Kernel.consume c m';
      let d = det_duration env c.Kernel.s_tr.Net.t_firing in
      if Float.equal d 0.0 then begin
        Kernel.produce c m';
        let env' =
          if c.Kernel.s_has_action then begin
            let env' = Env.copy env in
            Kernel.run_action env' c;
            env'
          end
          else env
        in
        let pending' = refresh_pending kernel m' env' pending ~restart:[ tid ] in
        visit (2 * tid) m' flight pending' env'
      end
      else begin
        let flight' = (tid, d) :: flight in
        let pending' = refresh_pending kernel m' env pending ~restart:[ tid ] in
        visit (2 * tid) m' flight' pending' env
      end)
    fireable;
  List.rev !acc

(* The initial vector: empty flight, full enabling delays pending,
   normalized (the oracle reaches the same point through leading
   Ticks). *)
let initial_vector kernel net =
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  let pending0 = sort_flight (refresh_pending kernel m0 env0 [] ~restart:[]) in
  let flight0, pending0, shift0 = normalize [] pending0 in
  (m0, flight0, pending0, env0, shift0)

(* Widen a class's per-slot interval envelope with one more residual
   vector (flight slots first, then pending). *)
let widen_ranges lo hi flight pending =
  let nf = List.length flight in
  List.iteri
    (fun k (_, r) ->
      if r < lo.(k) then lo.(k) <- r;
      if r > hi.(k) then hi.(k) <- r)
    flight;
  List.iteri
    (fun k (_, r) ->
      if r < lo.(nf + k) then lo.(nf + k) <- r;
      if r > hi.(nf + k) then hi.(nf + k) <- r)
    pending

(* -- class records shared by the serial builder and the sharded
      merge; [cl_edges] is in reverse emission order -- *)

type cls = {
  cl_index : int;
  cl_marking : int array;
  cl_env : Env.t;
  cl_flight : int list;  (* in-flight tid multiset, sorted *)
  cl_pending : int list;  (* enabled tids, sorted *)
  cl_flight_repr : string;
  cl_lo : float array;  (* per timer slot: flight entries, then pending *)
  cl_hi : float array;
  mutable cl_edges : (int * int) list;  (* (code, target class) *)
  cl_eseen : (int * int, unit) Hashtbl.t;
  cl_vecs : (string, unit) Hashtbl.t;  (* serial builder only *)
}

let fresh_cls ~index ~key ~env ~flight ~pending ~frepr =
  let n = List.length flight + List.length pending in
  {
    cl_index = index;
    cl_marking = key.Statekey.k_marking;
    cl_env = env;
    cl_flight = List.map fst flight;
    cl_pending = List.map fst pending;
    cl_flight_repr = frepr;
    cl_lo = Array.make n infinity;
    cl_hi = Array.make n neg_infinity;
    cl_edges = [];
    cl_eseen = Hashtbl.create 8;
    cl_vecs = Hashtbl.create 8;
  }

let add_class_edge cl code target =
  if not (Hashtbl.mem cl.cl_eseen (code, target)) then begin
    Hashtbl.add cl.cl_eseen (code, target) ();
    cl.cl_edges <- (code, target) :: cl.cl_edges
  end

(* -- serial class fixpoint: a FIFO over residual vectors; classes
      intern via Statekey, vectors dedup per class by their canonical
      rendering -- *)

let build_serial ~max_states ~monitor ~monitored kernel net =
  let index : cls Statekey.Tbl.t = Statekey.Tbl.create 1024 in
  let classes_rev = ref [] in
  let n_classes = ref 0 in
  let n_vectors = ref 0 in
  let truncated = ref false in
  let budget_stop = ref None in
  let frontier_left = ref 0 in
  let q = Queue.create () in
  (* Intern one normalized vector: find or create its class, then dedup
     the vector inside it.  [None] means the class would be fresh
     beyond the cap — the edge is dropped and the graph flagged
     incomplete, exactly like the untimed builder (edges into existing
     classes are still recorded at the cap). *)
  let intern_vec marking flight pending env =
    let frepr = flight_repr flight in
    let key = Statekey.make ~clocks:frepr marking env in
    let cl =
      match Statekey.Tbl.find_opt index key with
      | Some cl -> Some cl
      | None ->
        if !n_classes >= max_states then begin
          truncated := true;
          None
        end
        else begin
          let cl =
            fresh_cls ~index:!n_classes ~key ~env ~flight ~pending ~frepr
          in
          incr n_classes;
          Statekey.Tbl.replace index key cl;
          classes_rev := cl :: !classes_rev;
          Some cl
        end
    in
    match cl with
    | None -> None
    | Some cl ->
      let vkey = clocks_repr flight pending in
      if not (Hashtbl.mem cl.cl_vecs vkey) then begin
        Hashtbl.add cl.cl_vecs vkey ();
        incr n_vectors;
        widen_ranges cl.cl_lo cl.cl_hi flight pending;
        Queue.add (cl, marking, flight, pending, env) q
      end;
      Some cl
  in
  let m0, flight0, pending0, env0, _ = initial_vector kernel net in
  (match intern_vec m0 flight0 pending0 env0 with
  | Some cl -> assert (cl.cl_index = 0)
  | None -> assert false);
  let pops = ref 0 in
  (* Budget checks ride the dequeue boundary every 256 vectors — the
     cadence of every other builder in the stack. *)
  (try
     while not (Queue.is_empty q) do
       incr pops;
       if monitored && !pops land 255 = 0 then begin
         match Pnut_exec.Supervisor.check monitor with
         | Some r ->
           budget_stop := Some r;
           frontier_left := Queue.length q;
           raise_notrace Exit
         | None -> ()
       end;
       let cl, marking, flight, pending, env = Queue.pop q in
       List.iter
         (fun c ->
           match intern_vec c.c_marking c.c_flight c.c_pending c.c_env with
           | None -> ()
           | Some cl' -> add_class_edge cl c.c_code cl'.cl_index)
         (successors_of kernel (marking, flight, pending, env))
     done
   with Exit -> ());
  let classes = Array.make !n_classes None in
  List.iter (fun cl -> classes.(cl.cl_index) <- Some cl) !classes_rev;
  let classes = Array.map Option.get classes in
  (classes, !n_vectors, !truncated, !budget_stop, !frontier_left)

(* -- the sharded parallel class sweep --

   The same plan as the untimed {!Graph} sharded builder, lifted from
   packed markings to residual vectors.  Each team member owns the
   classes whose {!Statekey} hash lands in its shard (hash mod team)
   and interns both classes and vectors into private tables — no locks
   on the hot path, and no packing at all during discovery (a class is
   only encoded once, at merge time, so widening cannot occur
   mid-sweep).  Candidate vectors hashing into another shard travel
   through per-ordered-pair SPSC channels as plain records, published
   by an [Atomic.set] on the channel's send counter and acquired by the
   consumer's [Atomic.get].  Edges are recorded per-vector as
   (ref, code) words, where a ref names the target vector either
   directly (owner shard + local vid) or as a message index resolved
   through the consumer's reply slots.

   Termination is the untimed builder's single pending counter —
   interned-but-unexpanded vectors plus in-flight messages.  [stop]
   (budget trip, polled by member 0 on the serial cadence) drains and
   merges the expanded prefix; [abort] (class cap, busy pool, a member
   raising) discards everything and the caller rebuilds serially,
   keeping the exact serial truncation semantics.

   The merge replays the serial vector FIFO over the recorded per-vector
   edge lists: vectors are visited in exactly the order the serial
   sweep pops them, so classes are numbered in first-reference order
   and per-class edges dedup in first-emission order — the class list
   fed to the shared assembly is identical to the serial builder's, and
   the packed store that comes out is byte-identical for any team
   size. *)

type lcls = {
  l_index : int;  (* shard-local class id *)
  l_marking : int array;
  l_env : Env.t;
  l_flight : int list;
  l_pending : int list;
  l_flight_repr : string;
  l_lo : float array;
  l_hi : float array;
}

type svec = {
  v_cls : lcls;
  v_marking : Marking.t;
  v_flight : (Net.transition_id * float) list;
  v_pending : (Net.transition_id * float) list;
  v_env : Env.t;
}

type msg = {
  g_key : Statekey.t;
  g_marking : Marking.t;
  g_flight : (Net.transition_id * float) list;
  g_pending : (Net.transition_id * float) list;
  g_env : Env.t;
}

type chan = {
  mutable msg : msg array;
  sent : int Atomic.t;
  (* The producer's plain writes into [msg] (including a grown
     replacement array) happen before its [Atomic.set sent]; the
     consumer's [Atomic.get sent] acquires them.  [replies] is written
     by the consumer only and read at merge time, after the team join
     has synchronized everything. *)
  mutable consumed : int;
  mutable replies : int array;  (* consumer's local vid per message *)
}

type shard = {
  cls_tbl : lcls Statekey.Tbl.t;
  mutable n_cls : int;
  mutable vecs : svec array;
  mutable n_vecs : int;
  mutable vkeys : (string, int) Hashtbl.t array;  (* per local class *)
  mutable cursor : int;  (* local vids below this are expanded *)
  mutable e_off : int array;  (* per expanded vid: start into e_dat *)
  mutable e_dat : int array;  (* (ref lsl code_bits) lor code *)
  mutable e_n : int;
  out_count : int array;  (* messages sent so far, per destination *)
}

let bits_for v =
  let rec go w = if v lsr w = 0 then w else go (w + 1) in
  max 1 (go 0)

let build_sharded ~max_states ~monitor ~monitored ~team kernel net =
  let nt = Net.num_transitions net in
  let code_bits = bits_for (max 1 ((2 * nt) - 1)) in
  let code_mask = (1 lsl code_bits) - 1 in
  let m0, flight0, pending0, env0, _ = initial_vector kernel net in
  let frepr0 = flight_repr flight0 in
  let key0 = Statekey.make ~clocks:frepr0 m0 env0 in
  let cls0 =
    {
      l_index = 0;
      l_marking = key0.Statekey.k_marking;
      l_env = env0;
      l_flight = List.map fst flight0;
      l_pending = List.map fst pending0;
      l_flight_repr = frepr0;
      l_lo = [||];
      l_hi = [||];
    }
  in
  let dummy_vec =
    { v_cls = cls0; v_marking = m0; v_flight = []; v_pending = []; v_env = env0 }
  in
  let dummy_msg =
    { g_key = key0; g_marking = m0; g_flight = []; g_pending = []; g_env = env0 }
  in
  let shards =
    Array.init team (fun _ ->
        {
          cls_tbl = Statekey.Tbl.create 256;
          n_cls = 0;
          vecs = Array.make 64 dummy_vec;
          n_vecs = 0;
          vkeys = Array.make 64 (Hashtbl.create 0);
          cursor = 0;
          e_off = Array.make 64 0;
          e_dat = Array.make 64 0;
          e_n = 0;
          out_count = Array.make team 0;
        })
  in
  let chans =
    Array.init team (fun _ ->
        Array.init team (fun _ ->
            { msg = Array.make 16 dummy_msg; sent = Atomic.make 0;
              consumed = 0; replies = [||] }))
  in
  let pending_ct = Atomic.make 0 in
  let total = Atomic.make 0 in
  let stop = Atomic.make false in
  let abort = Atomic.make false in
  let trip = ref None in
  (* Intern one normalized vector into shard [sh] (which must own
     [key]).  Only the owning domain ever touches a shard's tables, so
     class records and interval envelopes have a single writer. *)
  let intern_local sh key marking flight pending env frepr =
    let cl =
      match Statekey.Tbl.find_opt sh.cls_tbl key with
      | Some cl -> cl
      | None ->
        if Atomic.fetch_and_add total 1 >= max_states then
          Atomic.set abort true;
        let n = List.length flight + List.length pending in
        let cl =
          {
            l_index = sh.n_cls;
            l_marking = key.Statekey.k_marking;
            l_env = env;
            l_flight = List.map fst flight;
            l_pending = List.map fst pending;
            l_flight_repr = frepr;
            l_lo = Array.make n infinity;
            l_hi = Array.make n neg_infinity;
          }
        in
        if sh.n_cls >= Array.length sh.vkeys then begin
          let a = Array.make (2 * Array.length sh.vkeys) (Hashtbl.create 0) in
          Array.blit sh.vkeys 0 a 0 sh.n_cls;
          sh.vkeys <- a
        end;
        sh.vkeys.(sh.n_cls) <- Hashtbl.create 8;
        sh.n_cls <- sh.n_cls + 1;
        Statekey.Tbl.replace sh.cls_tbl key cl;
        cl
    in
    let vk = sh.vkeys.(cl.l_index) in
    let vkey = clocks_repr flight pending in
    match Hashtbl.find_opt vk vkey with
    | Some vid -> (vid, false)
    | None ->
      let vid = sh.n_vecs in
      Hashtbl.add vk vkey vid;
      widen_ranges cl.l_lo cl.l_hi flight pending;
      if vid >= Array.length sh.vecs then begin
        let a = Array.make (2 * Array.length sh.vecs) dummy_vec in
        Array.blit sh.vecs 0 a 0 vid;
        sh.vecs <- a
      end;
      sh.vecs.(vid) <-
        { v_cls = cl; v_marking = marking; v_flight = flight;
          v_pending = pending; v_env = env };
      sh.n_vecs <- vid + 1;
      (vid, true)
  in
  let s0 = key0.Statekey.k_hash mod team in
  (match intern_local shards.(s0) key0 m0 flight0 pending0 env0 frepr0 with
  | 0, true -> ()
  | _ -> assert false);
  Atomic.set pending_ct 1;
  let member_body me =
    let sh = shards.(me) in
    let pops = ref 0 in
    let spins = ref 0 in
    let draining = ref false in
    let running = ref true in
    let consume_all () =
      let progress = ref false in
      for src = 0 to team - 1 do
        if src <> me then begin
          let c = chans.(src).(me) in
          let n = Atomic.get c.sent in
          if c.consumed < n then begin
            progress := true;
            let buf = c.msg in
            if Array.length c.replies < n then begin
              let r = Array.make (max n (2 * Array.length c.replies)) 0 in
              Array.blit c.replies 0 r 0 c.consumed;
              c.replies <- r
            end;
            while c.consumed < n do
              let k = c.consumed in
              let m = buf.(k) in
              let vid, fresh =
                intern_local sh m.g_key m.g_marking m.g_flight m.g_pending
                  m.g_env m.g_key.Statekey.k_clocks
              in
              c.replies.(k) <- vid;
              (* a known vector just drops the message's pending count;
                 a fresh one converts it into its own (net zero) unless
                 this shard is draining and will never expand it *)
              if (not fresh) || !draining then Atomic.decr pending_ct;
              c.consumed <- k + 1
            done
          end
        end
      done;
      !progress
    in
    let expand_one vid =
      let sv = sh.vecs.(vid) in
      if vid >= Array.length sh.e_off then begin
        let a = Array.make (2 * Array.length sh.e_off) 0 in
        Array.blit sh.e_off 0 a 0 vid;
        sh.e_off <- a
      end;
      sh.e_off.(vid) <- sh.e_n;
      List.iter
        (fun c ->
          let frepr = flight_repr c.c_flight in
          let key = Statekey.make ~clocks:frepr c.c_marking c.c_env in
          let t_shard = key.Statekey.k_hash mod team in
          let ref_ =
            if t_shard = me then begin
              let vid', fresh =
                intern_local sh key c.c_marking c.c_flight c.c_pending c.c_env
                  frepr
              in
              if fresh then Atomic.incr pending_ct;
              ((vid' * team) + me) * 2
            end
            else begin
              let ch = chans.(me).(t_shard) in
              let k = sh.out_count.(t_shard) in
              if k >= Array.length ch.msg then begin
                let m =
                  Array.make (max (k + 1) (2 * Array.length ch.msg)) dummy_msg
                in
                Array.blit ch.msg 0 m 0 k;
                ch.msg <- m
              end;
              ch.msg.(k) <-
                { g_key = key; g_marking = c.c_marking; g_flight = c.c_flight;
                  g_pending = c.c_pending; g_env = c.c_env };
              sh.out_count.(t_shard) <- k + 1;
              Atomic.incr pending_ct;
              Atomic.set ch.sent (k + 1);
              (((k * team) + t_shard) * 2) + 1
            end
          in
          if sh.e_n >= Array.length sh.e_dat then begin
            let a = Array.make (2 * Array.length sh.e_dat) 0 in
            Array.blit sh.e_dat 0 a 0 sh.e_n;
            sh.e_dat <- a
          end;
          sh.e_dat.(sh.e_n) <- (ref_ lsl code_bits) lor c.c_code;
          sh.e_n <- sh.e_n + 1)
        (successors_of kernel (sv.v_marking, sv.v_flight, sv.v_pending, sv.v_env))
    in
    while !running do
      if Atomic.get abort then running := false
      else begin
        if (not !draining) && Atomic.get stop then begin
          (* un-count the vectors this shard will now never expand;
             exactly once, before any drain-mode consumption *)
          let unexp = sh.n_vecs - sh.cursor in
          if unexp > 0 then
            ignore (Atomic.fetch_and_add pending_ct (-unexp) : int);
          draining := true
        end;
        let progress = ref (consume_all ()) in
        if not !draining then begin
          let batch = ref 0 in
          while
            !batch < 64
            && sh.cursor < sh.n_vecs
            && (not (Atomic.get abort))
            && not (Atomic.get stop)
          do
            incr pops;
            (if me = 0 && monitored && !pops land 255 = 0 then
               match Pnut_exec.Supervisor.check monitor with
               | Some r ->
                 trip := Some r;
                 Atomic.set stop true
               | None -> ());
            if not (Atomic.get stop) then begin
              let vid = sh.cursor in
              expand_one vid;
              sh.cursor <- vid + 1;
              Atomic.decr pending_ct;
              progress := true;
              incr batch
            end
          done
        end;
        if !progress then spins := 0
        else if Atomic.get pending_ct = 0 then running := false
        else begin
          (* idle: the wall/heap budget must still trip even if this
             member has nothing left to do *)
          (if me = 0 && monitored && not (Atomic.get stop) then
             match Pnut_exec.Supervisor.check monitor with
             | Some r ->
               trip := Some r;
               Atomic.set stop true
             | None -> ());
          incr spins;
          Pnut_exec.Pool.relax !spins
        end
      end
    done
  in
  let member me =
    try member_body me
    with e ->
      (* unblock the other members before propagating, or the team
         would spin on a pending count that can no longer drop *)
      Atomic.set abort true;
      raise e
  in
  if not (Pnut_exec.Pool.run_team team member) then None
  else if Atomic.get abort then None
  else begin
    (* -- deterministic merge: replay the serial vector FIFO over the
          recorded edges, numbering classes in first-reference order -- *)
    let total_vecs = Array.fold_left (fun a sh -> a + sh.n_vecs) 0 shards in
    let vseen =
      Array.map (fun sh -> Array.make (max 1 sh.n_vecs) false) shards
    in
    let gmap = Array.map (fun sh -> Array.make (max 1 sh.n_cls) (-1)) shards in
    let classes_rev = ref [] in
    let n_classes = ref 0 in
    let by_g = Hashtbl.create 1024 in
    let get_cl s (lc : lcls) =
      match gmap.(s).(lc.l_index) with
      | -1 ->
        let g = !n_classes in
        gmap.(s).(lc.l_index) <- g;
        incr n_classes;
        let cl =
          {
            cl_index = g;
            cl_marking = lc.l_marking;
            cl_env = lc.l_env;
            cl_flight = lc.l_flight;
            cl_pending = lc.l_pending;
            cl_flight_repr = lc.l_flight_repr;
            cl_lo = lc.l_lo;
            cl_hi = lc.l_hi;
            cl_edges = [];
            cl_eseen = Hashtbl.create 8;
            cl_vecs = Hashtbl.create 0;
          }
        in
        classes_rev := cl :: !classes_rev;
        Hashtbl.replace by_g g cl;
        cl
      | g -> Hashtbl.find by_g g
    in
    let q = Array.make (max 1 total_vecs) (0, 0) in
    let qn = ref 0 in
    let push s vid =
      vseen.(s).(vid) <- true;
      q.(!qn) <- (s, vid);
      incr qn
    in
    let cl0 = get_cl s0 shards.(s0).vecs.(0).v_cls in
    assert (cl0.cl_index = 0);
    push s0 0;
    let gp = ref 0 in
    while !gp < !qn do
      let s, vid = q.(!gp) in
      let sh = shards.(s) in
      if vid < sh.cursor then begin
        let src_cl = get_cl s sh.vecs.(vid).v_cls in
        let e_end = if vid + 1 < sh.cursor then sh.e_off.(vid + 1) else sh.e_n in
        for k = sh.e_off.(vid) to e_end - 1 do
          let word = sh.e_dat.(k) in
          let code = word land code_mask in
          let r = word lsr code_bits in
          let t_shard, t_vid =
            let v = r lsr 1 in
            if r land 1 = 0 then (v mod team, v / team)
            else
              let t = v mod team in
              (t, chans.(s).(t).replies.(v / team))
          in
          let tgt_cl = get_cl t_shard shards.(t_shard).vecs.(t_vid).v_cls in
          add_class_edge src_cl code tgt_cl.cl_index;
          if not vseen.(t_shard).(t_vid) then push t_shard t_vid
        done
      end;
      incr gp
    done;
    let classes = Array.make !n_classes None in
    List.iter (fun cl -> classes.(cl.cl_index) <- Some cl) !classes_rev;
    let classes = Array.map Option.get classes in
    let expanded = Array.fold_left (fun a sh -> a + sh.cursor) 0 shards in
    Some (classes, total_vecs, false, !trip, total_vecs - expanded)
  end

(* -- shared final assembly: the one place classes are packed.  Classes
      are appended in canonical discovery order and their (env,
      in-flight domain) snapshots are interned in class order, so the
      arena, index, CSR and side-table contents depend only on the
      class list — the serial and sharded builders produce the same
      one, hence byte-identical stores for any [jobs]. -- *)

let assemble_store net classes =
  let codec = Packed.create ~with_extra:true net in
  let nt = max 1 (Net.num_transitions net) in
  let store = Store.create codec ~num_transitions:(2 * nt) in
  Array.iter
    (fun cl ->
      let ex = Packed.intern_extra codec ~clocks:cl.cl_flight_repr cl.cl_env in
      match Store.intern store cl.cl_marking ~extra:ex ~max_states:max_int with
      | `Added _ -> ()
      | `Found _ | `Capped ->
        (* class identity is exactly (marking, env, in-flight domain) =
           (marking fields, extra id) — duplicates are impossible *)
        assert false)
    classes;
  Array.iteri
    (fun i cl ->
      Store.begin_source store i;
      List.iter
        (fun (code, j) -> Store.add_edge store ~tid:code ~target:j)
        (List.rev cl.cl_edges))
    classes;
  Store.finalize store;
  store

let assemble_domains classes =
  let n = Array.length classes in
  let sup_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    sup_off.(i + 1) <-
      sup_off.(i)
      + List.length classes.(i).cl_flight
      + List.length classes.(i).cl_pending
  done;
  let m = sup_off.(n) in
  let sup = Array.make m 0 in
  let lo = Array.make m 0.0 in
  let hi = Array.make m 0.0 in
  Array.iteri
    (fun i cl ->
      let base = sup_off.(i) in
      let k = ref 0 in
      List.iter
        (fun t ->
          sup.(base + !k) <- 2 * t;
          lo.(base + !k) <- cl.cl_lo.(!k);
          hi.(base + !k) <- cl.cl_hi.(!k);
          incr k)
        cl.cl_flight;
      List.iter
        (fun t ->
          sup.(base + !k) <- (2 * t) + 1;
          lo.(base + !k) <- cl.cl_lo.(!k);
          hi.(base + !k) <- cl.cl_hi.(!k);
          incr k)
        cl.cl_pending)
    classes;
  (sup_off, sup, lo, hi)

let assemble_boxed classes =
  let n = Array.length classes in
  let markings = Array.map (fun cl -> cl.cl_marking) classes in
  let envs = Array.map (fun cl -> cl.cl_env) classes in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i cl ->
      succ.(i) <-
        List.rev_map
          (fun (code, j) -> { e_from = i; e_label = label_of_code code; e_to = j })
          cl.cl_edges)
    classes;
  Array.iter
    (fun l -> List.iter (fun e -> pred.(e.e_to) <- e :: pred.(e.e_to)) l)
    succ;
  Boxed { markings; envs; succ; pred }

let count_edges classes =
  Array.fold_left (fun a cl -> a + List.length cl.cl_edges) 0 classes

let build_supervised ?(max_states = 50_000) ?jobs ?(packed = false)
    ?(budget = Pnut_exec.Budget.none) net =
  Duration.check_net ~who:"Reach.Timed" net;
  let monitor = Pnut_exec.Supervisor.start budget in
  let monitored = Pnut_exec.Supervisor.active monitor in
  let max_states =
    match Pnut_exec.Supervisor.max_states monitor with
    | Some cap -> min cap max_states
    | None -> max_states
  in
  let kernel = Kernel.of_net net in
  let finish ~classes ~repr ~n_vectors ~truncated ~budget_stop ~frontier_left =
    let n = Array.length classes in
    let n_edges = count_edges classes in
    let sup_off, sup, iv_lo, iv_hi = assemble_domains classes in
    let complete = (not truncated) && budget_stop = None in
    let g =
      { net; repr; complete; n_edges; n_vectors; sup_off; sup; iv_lo; iv_hi }
    in
    match budget_stop with
    | Some reason ->
      Pnut_exec.Supervisor.Degraded
        {
          reason;
          partial = g;
          progress =
            Pnut_exec.Supervisor.snapshot monitor ~visited:n
              ~frontier:frontier_left;
        }
    | None ->
      if truncated then
        Pnut_exec.Supervisor.Degraded
          {
            reason = Pnut_exec.Supervisor.States n;
            partial = g;
            progress =
              Pnut_exec.Supervisor.snapshot monitor ~visited:n ~frontier:0;
          }
      else Pnut_exec.Supervisor.Complete g
  in
  if packed then begin
    (* Sharded first when more than one domain is available; any abort
       — class cap, busy pool — falls back to the serial sweep, which
       owns the exact truncation semantics.  Either way the store is
       byte-identical for every [jobs]. *)
    let sharded =
      let team = Pnut_exec.Pool.team_size ?jobs () in
      if team > 1 then
        build_sharded ~max_states ~monitor ~monitored ~team kernel net
      else None
    in
    let classes, n_vectors, truncated, budget_stop, frontier_left =
      match sharded with
      | Some r -> r
      | None -> build_serial ~max_states ~monitor ~monitored kernel net
    in
    let store = assemble_store net classes in
    finish ~classes ~repr:(Compact store) ~n_vectors ~truncated ~budget_stop
      ~frontier_left
  end
  else begin
    let classes, n_vectors, truncated, budget_stop, frontier_left =
      build_serial ~max_states ~monitor ~monitored kernel net
    in
    finish ~classes ~repr:(assemble_boxed classes) ~n_vectors ~truncated
      ~budget_stop ~frontier_left
  end

let build ?max_states ?jobs ?packed net =
  Pnut_exec.Supervisor.value (build_supervised ?max_states ?jobs ?packed net)

let deadlocks g =
  let acc = ref [] in
  (match g.repr with
  | Boxed b ->
    for i = Array.length b.succ - 1 downto 0 do
      if b.succ.(i) = [] then acc := i :: !acc
    done
  | Compact st ->
    for i = Store.num_states st - 1 downto 0 do
      if Store.out_degree st i = 0 then acc := i :: !acc
    done);
  !acc

let max_tokens g p =
  match g.repr with
  | Boxed b -> Array.fold_left (fun acc m -> max acc m.(p)) 0 b.markings
  | Compact st ->
    let scratch = Array.make (Net.num_places g.net) 0 in
    let acc = ref 0 in
    for i = 0 to Store.num_states st - 1 do
      Store.marking_into st i scratch;
      if scratch.(p) > !acc then acc := scratch.(p)
    done;
    !acc

(* Earliest time before [tid] first starts firing: a uniform-cost
   search over normalized vectors where an edge costs its normalization
   shift (the folded Tick).  The class graph cannot answer this — it
   merges vectors reached at different times — so the search runs over
   the vector space directly. *)
let min_cycle_time ?(max_states = 50_000) net tid =
  Duration.check_net ~who:"Reach.Timed" net;
  let kernel = Kernel.of_net net in
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let vkey marking flight pending env =
    Statekey.make ~clocks:(clocks_repr flight pending) marking env
  in
  let data = Hashtbl.create 256 in
  let seq = ref 0 in
  let pq = ref Pq.empty in
  let push d vec =
    let s = !seq in
    incr seq;
    Hashtbl.replace data s vec;
    pq := Pq.add (d, s) !pq
  in
  let settled = Statekey.Tbl.create 256 in
  let m0, flight0, pending0, env0, shift0 = initial_vector kernel net in
  push shift0 (m0, flight0, pending0, env0);
  let result = ref None in
  (try
     while not (Pq.is_empty !pq) do
       let ((d, s) as top) = Pq.min_elt !pq in
       pq := Pq.remove top !pq;
       let ((marking, flight, pending, env) as vec) = Hashtbl.find data s in
       Hashtbl.remove data s;
       let key = vkey marking flight pending env in
       if not (Statekey.Tbl.mem settled key) then begin
         Statekey.Tbl.replace settled key ();
         if Statekey.Tbl.length settled > max_states then raise_notrace Exit;
         if List.exists (fun (t, r) -> t = tid && Float.equal r 0.0) pending
         then begin
           result := Some d;
           raise_notrace Exit
         end;
         List.iter
           (fun c ->
             let k' = vkey c.c_marking c.c_flight c.c_pending c.c_env in
             if not (Statekey.Tbl.mem settled k') then
               push (d +. c.c_shift)
                 (c.c_marking, c.c_flight, c.c_pending, c.c_env))
           (successors_of kernel vec)
       end
     done
   with Exit -> ());
  !result

type cycle = {
  cy_transient : float;
  cy_period : float;
  cy_firings : int array;
}

(* Deterministic walk: complete the lowest-id finished firing, else fire
   the lowest-id fireable transition, else advance time by the minimum
   residual; detect a repeated (marking, in-flight, pending) state. *)
let steady_cycle ?(max_steps = 100_000) net =
  Duration.check_net ~who:"Reach.Timed" net;
  let kernel = Kernel.of_net net in
  let nt = Net.num_transitions net in
  let counts = Array.make nt 0 in
  let seen = Statekey.Tbl.create 256 in
  let env = Net.initial_env net in
  let marking = ref (Net.initial_marking net) in
  let in_flight = ref ([] : (int * float) list) in
  let pending = ref (refresh_pending kernel !marking env [] ~restart:[]) in
  let clock = ref 0.0 in
  let result = ref None in
  let step = ref 0 in
  (try
     while !result = None && !step < max_steps do
       incr step;
       let completable =
         List.filter (fun (_, r) -> Float.equal r 0.0) !in_flight
       in
       let fireable =
         List.filter
           (fun (tid, r) ->
             Float.equal r 0.0
             && Kernel.enabled (Kernel.transition kernel tid) !marking env)
           !pending
       in
       match completable, fireable with
       | (tid, _) :: _, _ ->
         let c = Kernel.transition kernel tid in
         Kernel.produce c !marking;
         let rec remove = function
           | [] -> []
           | (t, r) :: rest when t = tid && Float.equal r 0.0 -> rest
           | x :: rest -> x :: remove rest
         in
         in_flight := remove !in_flight;
         pending := refresh_pending kernel !marking env !pending ~restart:[]
       | [], (tid, _) :: _ ->
         let c = Kernel.transition kernel tid in
         Kernel.consume c !marking;
         counts.(tid) <- counts.(tid) + 1;
         let d = det_duration env c.Kernel.s_tr.Net.t_firing in
         if d > 0.0 then in_flight := (tid, d) :: !in_flight;
         pending := refresh_pending kernel !marking env !pending ~restart:[ tid ];
         if Float.equal d 0.0 then begin
           Kernel.produce c !marking;
           pending := refresh_pending kernel !marking env !pending ~restart:[ tid ]
         end
       | [], [] -> (
         let residuals =
           List.map snd !in_flight
           @ List.filter_map
               (fun (_, r) -> if r > 0.0 then Some r else None)
               !pending
         in
         match residuals with
         | [] -> raise Exit (* dead *)
         | first :: rest ->
           (* stable instant: check for a repeat before ticking *)
           let key =
             Statekey.make
               ~clocks:
                 (clocks_repr (sort_flight !in_flight) (sort_flight !pending))
               !marking env
           in
           (match Statekey.Tbl.find_opt seen key with
           | Some (t0, counts0) ->
             result :=
               Some
                 {
                   cy_transient = t0;
                   cy_period = !clock -. t0;
                   cy_firings =
                     Array.init nt (fun i -> counts.(i) - counts0.(i));
                 }
           | None ->
             Statekey.Tbl.replace seen key (!clock, Array.copy counts);
             let d = List.fold_left Float.min first rest in
             clock := !clock +. d;
             let tick l =
               List.map (fun (t, r) -> (t, Float.max 0.0 (r -. d))) l
             in
             in_flight := tick !in_flight;
             pending := tick !pending))
     done
   with Exit -> ());
  !result

let pp_summary ppf g =
  Format.fprintf ppf
    "@[<v>timed state-class graph of %s@,states: %d%s@,edges: %d@,residual \
     vectors: %d@,timed deadlocks: %d@]"
    (Net.name g.net) (num_states g)
    (if g.complete then "" else " (truncated)")
    (num_edges g) (num_vectors g)
    (List.length (deadlocks g))
