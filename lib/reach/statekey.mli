(** Hashconsed state identity for the reachability explorers.

    A key captures a (marking, environment) pair — plus, for timed
    graphs, a pre-rendered clock component — structurally: the marking
    as an int array, the environment as its sorted scalar bindings and
    tables, everything hashed up front.  Interning a key into {!Tbl}
    maps each distinct state to a dense int id without ever building
    the old [Marking.to_key m ^ "|" ^ Env.snapshot env] strings, which
    were both slow and unsound (separator characters inside variable
    names could collide two distinct states). *)

type t = private {
  k_hash : int;
  k_marking : int array;
  k_bindings : (string * Pnut_core.Value.t) list;
  k_tables : (string * Pnut_core.Value.t array) list;
  k_clocks : string;
      (** canonical rendering of timer residuals ([""] for untimed
          graphs); kept as text so the 9-significant-digit rounding that
          merges nearly equal clock valuations is preserved *)
}

val make : ?clocks:string -> Pnut_core.Marking.t -> Pnut_core.Env.t -> t
(** Snapshot a live (marking, env) pair into a key.  Pure: copies the
    marking and environment views, so the caller may keep mutating the
    originals. *)

val equal : t -> t -> bool

val hash : t -> int

module Tbl : Hashtbl.S with type key = t
(** Hash table keyed structurally on states; the interning table of the
    graph builders. *)
