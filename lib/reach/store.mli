(** Arena-backed compact state store for the reachability builder.

    States live as {!Packed} words in one flat int array; membership is
    an open-addressing table of arena offsets (no per-state boxes, no
    stored hashes — they are recomputed from the arena on growth); and
    edges are appended in sweep order into CSR successor arrays, with
    the predecessor CSR counting-sorted lazily on first use.  The whole
    store for a variable-free bounded net is a handful of flat arrays:
    one word per state plus ~1.5 index slots. *)

type t

val create : Packed.t -> num_transitions:int -> t
(** A fresh store over [codec]'s current layout.  [num_transitions]
    sizes the transition-id bitfield packed into each edge word. *)

val codec : t -> Packed.t
val num_states : t -> int
val num_edges : t -> int

val intern :
  t -> int array -> extra:int -> max_states:int ->
  [ `Found of int | `Added of int | `Capped ]
(** Look up (or insert) the state with the given token counts and side
    table id.  [`Capped] means the state is fresh but the store already
    holds [max_states] states; nothing is inserted.  On a
    {!Packed.Field_overflow} the codec is widened and the whole arena
    re-encoded transparently, then the intern retries. *)

val append_packed : t -> int array -> pos:int -> int
(** Append a state given as already-packed words (under the codec's
    current layout) that the caller guarantees is not present, and
    return its index.  Probe, arena growth and index growth are exactly
    {!intern}'s, so replaying the serial interning order through this
    function reproduces the serial store's arrays byte for byte — the
    sharded builder's merge step relies on it. *)

val marking_into : t -> int -> int array -> unit
(** Decode state [i]'s token counts into a caller scratch array. *)

val extra : t -> int -> int
(** State [i]'s side-table id (0 for nets without an id field). *)

(** {2 Edges}

    The builder calls [begin_source i] before expanding state [i] (in
    ascending order — BFS interning order), then [add_edge] once per
    fired transition, and [finalize] after the sweep.  Skipped sources
    simply get empty ranges. *)

val begin_source : t -> int -> unit
val add_edge : t -> tid:int -> target:int -> unit
val finalize : t -> unit

val out_degree : t -> int -> int

val successors : t -> int -> (int * int) list
(** [(transition, target)] pairs of state [i], in emission order —
    exactly the boxed builder's successor order. *)

val predecessors : t -> int -> (int * int) list
(** [(source, transition)] pairs pointing at state [j], in reverse
    sweep order — exactly the boxed builder's predecessor order. *)

val iter_pred_sources : t -> int -> (int -> unit) -> unit
val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges st f] calls [f source transition target] for every edge
    in ascending-source sweep order — the boxed builder's edge order. *)

val store_words : t -> int * int
(** [(arena words, index slots)] currently allocated. *)

val internal_arrays : t -> int array * int array * int array * int array
(** [(arena, index, succ_off, succ_dat)] — the store's physical arrays,
    exposed so determinism tests and the bench identity gate can assert
    byte-for-byte equality between builders without decoding.  Read
    only; call after {!finalize}. *)

val bytes_per_state : t -> float
(** Bytes of arena plus index per stored state (call after
    {!finalize}, which trims the arena to size). *)

(** Per-shard intern table for the sharded parallel BFS: the store's
    open-addressing discipline over raw packed words under one fixed
    layout, with no edges, no side table and no cap (the sharded builder
    aborts to the serial path instead of widening).  Each table is owned
    by exactly one domain. *)
module Words : sig
  type t

  val create : Packed.layout -> t
  val length : t -> int

  val arena : t -> int array
  (** The backing array: state [i]'s words start at
      [i * Packed.words layout].  Exposed for zero-copy decoding,
      channel sends and the merge; invalidated by the next {!intern}
      (growth may replace it). *)

  val intern :
    t -> int array -> pos:int -> hash:int -> [ `Found of int | `Added of int ]
  (** Look up (or append) the packed words at [pos..]; [hash] is
      [Packed.hash] of those words, which the sharded builder has
      already computed to pick the owning shard. *)
end

(** A FIFO of state indices that spills full chunks to a temp file as
    delta varints once the buffered middle exceeds a byte threshold.
    The head and tail chunks always stay in memory.  [close] removes
    the temp file; it must be called even on abnormal exit (the builder
    uses [Fun.protect]). *)
module Frontier : sig
  type t

  val create : threshold:int -> unit -> t
  val push : t -> int -> unit
  val pop : t -> int
  val length : t -> int
  val is_empty : t -> bool

  val spilled_chunks : t -> int
  (** Number of chunks written to disk so far (tests assert > 0 when
      forcing [threshold:0]). *)

  val close : t -> unit
end
