(** Explicit timed expansion, frozen as the differential oracle for the
    state-class construction in {!Timed}.

    Enumerates concrete clock valuations: each state carries the
    marking, the residual firing times of in-flight firings, and the
    residual enabling times of enabled transitions.  Edges are
    [Fire t], [Complete t], and explicit [Tick d] time advances.  This
    is the pre-state-class semantics, kept verbatim (same pattern as
    [Pnut_sim.Reference]): the qcheck differential suite asserts that
    the class graph preserves exactly the reachable markings, deadlock
    set and place bounds this expansion computes.  Serial and boxed
    only — an oracle has no throughput requirements; use {!Timed} for
    real workloads. *)

type label =
  | Fire of Pnut_core.Net.transition_id
  | Complete of Pnut_core.Net.transition_id
  | Tick of float

type state = {
  ts_index : int;
  ts_marking : int array;
  ts_in_flight : (Pnut_core.Net.transition_id * float) list;
      (** residual firing times, sorted *)
  ts_pending : (Pnut_core.Net.transition_id * float) list;
      (** residual enabling times of enabled transitions, sorted *)
  ts_env : (string * Pnut_core.Value.t) list;
}

type edge = {
  e_from : int;
  e_label : label;
  e_to : int;
}

type t

val build : ?max_states:int -> ?horizon:float -> Pnut_core.Net.t -> t
(** [horizon] bounds accumulated time along any path (default: none);
    [max_states] defaults to 50_000.  Raises [Invalid_argument] on
    stochastic delays, predicates or actions. *)

val build_supervised :
  ?max_states:int ->
  ?horizon:float ->
  ?budget:Pnut_exec.Budget.t ->
  Pnut_core.Net.t ->
  t Pnut_exec.Supervisor.outcome
(** {!build} under a budget, polled on the dequeue boundary — kept so
    the CLI can demonstrate the explicit expansion degrading under
    budgets where the class construction completes. *)

val complete : t -> bool
val num_states : t -> int
val num_edges : t -> int
val state : t -> int -> state
val initial : t -> int
val successors : t -> int -> edge list

val deadlocks : t -> int list
(** Timed-dead states: nothing fireable, nothing in flight, nothing
    pending. *)

val earliest_times : t -> float array
(** Earliest accumulated time to reach each state (Dijkstra over Tick
    weights). *)

val min_cycle_time : t -> Pnut_core.Net.transition_id -> float option
(** Shortest accumulated time before the transition first starts firing
    on any path; [None] if it never fires. *)

val max_tokens : t -> Pnut_core.Net.place_id -> int

val pp_summary : Format.formatter -> t -> unit
