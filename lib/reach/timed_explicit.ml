(* The explicit timed expansion, frozen as the differential oracle for
   the state-class construction in {!Timed} — the same role
   Pnut_sim.Reference plays for the fast simulator.  Deliberately
   self-contained: it keeps private copies of the duration resolution,
   the pending-refresh rule and the canonical clock rendering, so a bug
   (or a "fix") in the class builder can never silently rewrite the
   reference semantics it is tested against.  Serial FIFO only; the
   layered parallel machinery the old builder carried is gone — an
   oracle has no throughput requirements. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Kernel = Pnut_core.Kernel

type label =
  | Fire of Net.transition_id
  | Complete of Net.transition_id
  | Tick of float

type state = {
  ts_index : int;
  ts_marking : int array;
  ts_in_flight : (Net.transition_id * float) list;
  ts_pending : (Net.transition_id * float) list;
  ts_env : (string * Value.t) list;
}

type edge = {
  e_from : int;
  e_label : label;
  e_to : int;
}

type t = {
  net : Net.t;
  states : state array;
  succ : edge list array;
  complete : bool;
  n_edges : int;
}

let complete g = g.complete
let num_states g = Array.length g.states
let num_edges g = g.n_edges
let state g i = g.states.(i)
let initial _ = 0
let successors g i = g.succ.(i)

let det_duration env = function
  | Net.Zero -> 0.0
  | Net.Const d -> d
  | Net.Uniform (lo, hi) when Float.equal lo hi -> lo
  | Net.Choice ((v, _) :: rest) when List.for_all (fun (v', _) -> Float.equal v v') rest
    -> v
  | Net.Dynamic e when Expr.is_deterministic e -> Expr.eval_float env e
  | Net.Uniform _ | Net.Exponential _ | Net.Choice _ | Net.Dynamic _ ->
    invalid_arg "Reach.Timed: stochastic duration in a timed reachability net"

let check_deterministic net =
  Array.iter
    (fun tr ->
      let check_dur what d =
        match d with
        | Net.Zero | Net.Const _ -> ()
        | Net.Uniform (lo, hi) when Float.equal lo hi -> ()
        | Net.Choice ((v, _) :: rest)
          when List.for_all (fun (v', _) -> Float.equal v v') rest -> ()
        | Net.Dynamic e when Expr.is_deterministic e -> ()
        | Net.Uniform _ | Net.Exponential _ | Net.Choice _ | Net.Dynamic _ ->
          invalid_arg
            (Printf.sprintf "Reach.Timed: stochastic %s time on transition %s"
               what tr.Net.t_name)
      in
      check_dur "firing" tr.Net.t_firing;
      check_dur "enabling" tr.Net.t_enabling;
      (match tr.Net.t_predicate with
      | Some p when not (Expr.is_deterministic p) ->
        invalid_arg
          ("Reach.Timed: stochastic predicate on transition " ^ tr.Net.t_name)
      | Some _ | None -> ());
      if
        List.exists
          (fun s ->
            match s with
            | Expr.Assign (_, e) -> not (Expr.is_deterministic e)
            | Expr.Table_assign (_, i, e) ->
              not (Expr.is_deterministic i && Expr.is_deterministic e))
          tr.Net.t_action
      then
        invalid_arg
          ("Reach.Timed: stochastic action on transition " ^ tr.Net.t_name))
    (Net.transitions net)

(* Recompute the pending (enabling) list after a state change: enabled
   transitions keep their old residual, newly enabled ones start at their
   full enabling delay, [restart] names transitions whose clock restarts
   regardless (the just-fired one). *)
let refresh_pending kernel marking env old_pending ~restart =
  Array.to_list (Kernel.transitions kernel)
  |> List.filter_map (fun (c : Kernel.ctrans) ->
         if Kernel.enabled c marking env then
           let residual =
             match List.assoc_opt c.s_id old_pending with
             | Some r when not (List.mem c.s_id restart) -> r
             | Some _ | None -> det_duration env c.s_tr.Net.t_enabling
           in
           Some (c.s_id, residual)
         else None)

let float_key f = Printf.sprintf "%.9g" f

(* Canonical rendering of the two timer lists (must already be sorted).
   Kept textual so residuals that agree to 9 significant digits keep
   merging; marking and environment are hashed structurally by
   {!Statekey}, never stringified. *)
let clocks_repr in_flight pending =
  let buf = Buffer.create 32 in
  List.iter
    (fun (t, r) -> Buffer.add_string buf (Printf.sprintf "%d:%s;" t (float_key r)))
    in_flight;
  Buffer.add_char buf '|';
  List.iter
    (fun (t, r) -> Buffer.add_string buf (Printf.sprintf "%d:%s;" t (float_key r)))
    pending;
  Buffer.contents buf

let sort_flight l =
  List.sort
    (fun (t1, r1) (t2, r2) ->
      match compare t1 t2 with 0 -> Float.compare r1 r2 | c -> c)
    l

type succ = {
  c_label : label;
  c_marking : Marking.t;
  c_in_flight : (Net.transition_id * float) list;  (* sorted *)
  c_pending : (Net.transition_id * float) list;  (* sorted *)
  c_env : Env.t;
  c_time : float;
  c_key : Statekey.t;
}

(* All successors of one timed state, in the fixed completion / firing /
   tick order. *)
let successors_of kernel horizon (marking, in_flight, pending, env, time) =
  let acc = ref [] in
  let visit label marking' in_flight' pending' env' time' =
    let in_flight' = sort_flight in_flight' in
    let pending' = sort_flight pending' in
    let key =
      Statekey.make ~clocks:(clocks_repr in_flight' pending') marking' env'
    in
    acc :=
      { c_label = label; c_marking = marking'; c_in_flight = in_flight';
        c_pending = pending'; c_env = env'; c_time = time'; c_key = key }
      :: !acc
  in
  (* 1. completions of in-flight firings whose residual reached zero *)
  let completable =
    List.filter (fun (_, r) -> Float.equal r 0.0) in_flight
  in
  List.iter
    (fun (tid, _) ->
      let c = Kernel.transition kernel tid in
      let m' = Marking.copy marking in
      Kernel.produce c m';
      let env' =
        if c.Kernel.s_has_action then begin
          let env' = Env.copy env in
          Kernel.run_action env' c;
          env'
        end
        else env
      in
      let remove l =
        let rec go = function
          | [] -> []
          | (t, r) :: rest when t = tid && Float.equal r 0.0 -> rest
          | x :: rest -> x :: go rest
        in
        go l
      in
      let in_flight' = remove in_flight in
      let pending' = refresh_pending kernel m' env' pending ~restart:[] in
      visit (Complete tid) m' in_flight' pending' env' time)
    (List.sort_uniq compare completable);
  (* 2. firings of fireable transitions *)
  let fireable =
    List.filter
      (fun (tid, r) ->
        Float.equal r 0.0
        && Kernel.enabled (Kernel.transition kernel tid) marking env)
      pending
  in
  List.iter
    (fun (tid, _) ->
      let c = Kernel.transition kernel tid in
      let m' = Marking.copy marking in
      Kernel.consume c m';
      let d = det_duration env c.Kernel.s_tr.Net.t_firing in
      if Float.equal d 0.0 then begin
        Kernel.produce c m';
        let env' =
          if c.Kernel.s_has_action then begin
            let env' = Env.copy env in
            Kernel.run_action env' c;
            env'
          end
          else env
        in
        let pending' = refresh_pending kernel m' env' pending ~restart:[ tid ] in
        visit (Fire tid) m' in_flight pending' env' time
      end
      else begin
        let in_flight' = (tid, d) :: in_flight in
        let pending' = refresh_pending kernel m' env pending ~restart:[ tid ] in
        visit (Fire tid) m' in_flight' pending' env time
      end)
    fireable;
  (* 3. if nothing can happen now, advance time *)
  if completable = [] && fireable = [] then begin
    let residuals =
      List.map snd in_flight
      @ List.filter_map
          (fun (_, r) -> if r > 0.0 then Some r else None)
          pending
    in
    match residuals with
    | [] -> ()  (* timed-dead state *)
    | first :: rest ->
      let d = List.fold_left Float.min first rest in
      let time' = time +. d in
      let within =
        match horizon with None -> true | Some h -> time' <= h
      in
      if within then begin
        let tick l =
          List.map (fun (t, r) -> (t, Float.max 0.0 (r -. d))) l
        in
        visit (Tick d) marking (tick in_flight) (tick pending) env time'
      end
  end;
  List.rev !acc

let build_supervised ?(max_states = 50_000) ?horizon
    ?(budget = Pnut_exec.Budget.none) net =
  check_deterministic net;
  let monitor = Pnut_exec.Supervisor.start budget in
  let monitored = Pnut_exec.Supervisor.active monitor in
  let max_states =
    match Pnut_exec.Supervisor.max_states monitor with
    | Some cap -> min cap max_states
    | None -> max_states
  in
  let budget_stop = ref None in
  let frontier_left = ref 0 in
  let kernel = Kernel.of_net net in
  let index = Statekey.Tbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let succ_acc = Hashtbl.create 1024 in
  let n_edges = ref 0 in
  let truncated = ref false in
  let intern c =
    match Statekey.Tbl.find_opt index c.c_key with
    | Some i -> (i, false)
    | None ->
      let i = !n_states in
      incr n_states;
      Statekey.Tbl.replace index c.c_key i;
      states :=
        {
          ts_index = i;
          ts_marking = c.c_key.Statekey.k_marking;
          ts_in_flight = c.c_in_flight;
          ts_pending = c.c_pending;
          ts_env = c.c_key.Statekey.k_bindings;
        }
        :: !states;
      (i, true)
  in
  let add_edge i label j =
    Hashtbl.replace succ_acc i
      ({ e_from = i; e_label = label; e_to = j }
      :: (try Hashtbl.find succ_acc i with Not_found -> []));
    incr n_edges
  in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  let pending0 = sort_flight (refresh_pending kernel m0 env0 [] ~restart:[]) in
  let c0 =
    { c_label = Tick 0.0 (* unused *); c_marking = m0; c_in_flight = [];
      c_pending = pending0; c_env = env0; c_time = 0.0;
      c_key = Statekey.make ~clocks:(clocks_repr [] pending0) m0 env0 }
  in
  let i0, _ = intern c0 in
  assert (i0 = 0);
  let q = Queue.create () in
  Queue.add (i0, (m0, [], pending0, env0, 0.0)) q;
  let pops = ref 0 in
  (try
     while not (Queue.is_empty q) do
       incr pops;
       if monitored && !pops land 255 = 0 then begin
         match Pnut_exec.Supervisor.check monitor with
         | Some r ->
           budget_stop := Some r;
           frontier_left := Queue.length q;
           raise_notrace Exit
         | None -> ()
       end;
       let i, st = Queue.pop q in
       List.iter
         (fun c ->
           let existing = Statekey.Tbl.mem index c.c_key in
           if existing || !n_states < max_states then begin
             let j, fresh = intern c in
             add_edge i c.c_label j;
             if fresh then
               Queue.add
                 (j, (c.c_marking, c.c_in_flight, c.c_pending, c.c_env, c.c_time))
                 q
           end
           else truncated := true)
         (successors_of kernel horizon st)
     done
   with Exit -> ());
  let n = !n_states in
  let states_arr =
    Array.make n
      { ts_index = 0; ts_marking = [||]; ts_in_flight = []; ts_pending = [];
        ts_env = [] }
  in
  List.iter (fun s -> states_arr.(s.ts_index) <- s) !states;
  let succ = Array.make n [] in
  Hashtbl.iter (fun i l -> succ.(i) <- List.rev l) succ_acc;
  let g =
    { net; states = states_arr; succ;
      complete = (not !truncated) && !budget_stop = None;
      n_edges = !n_edges }
  in
  match !budget_stop with
  | Some reason ->
    Pnut_exec.Supervisor.Degraded
      {
        reason;
        partial = g;
        progress =
          Pnut_exec.Supervisor.snapshot monitor ~visited:n
            ~frontier:!frontier_left;
      }
  | None ->
    if !truncated then
      Pnut_exec.Supervisor.Degraded
        {
          reason = Pnut_exec.Supervisor.States n;
          partial = g;
          progress = Pnut_exec.Supervisor.snapshot monitor ~visited:n ~frontier:0;
        }
    else Pnut_exec.Supervisor.Complete g

let build ?max_states ?horizon net =
  Pnut_exec.Supervisor.value (build_supervised ?max_states ?horizon net)

let deadlocks g =
  let acc = ref [] in
  for i = num_states g - 1 downto 0 do
    if g.succ.(i) = [] then acc := i :: !acc
  done;
  !acc

(* Earliest accumulated time to reach each state: Dijkstra with Tick
   weights (Fire/Complete edges cost nothing). *)
let earliest_times g =
  let n = num_states g in
  let dist = Array.make n infinity in
  dist.(0) <- 0.0;
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0.0, 0)) in
  while not (Pq.is_empty !pq) do
    let ((d, i) as top) = Pq.min_elt !pq in
    pq := Pq.remove top !pq;
    if d <= dist.(i) then
      List.iter
        (fun e ->
          let w = match e.e_label with Tick dt -> dt | Fire _ | Complete _ -> 0.0 in
          let d' = d +. w in
          if d' < dist.(e.e_to) then begin
            dist.(e.e_to) <- d';
            pq := Pq.add (d', e.e_to) !pq
          end)
        g.succ.(i)
  done;
  dist

let min_cycle_time g tid =
  let dist = earliest_times g in
  let best = ref infinity in
  Array.iteri
    (fun i edges ->
      List.iter
        (fun e ->
          match e.e_label with
          | Fire t when t = tid -> best := Float.min !best dist.(i)
          | Fire _ | Complete _ | Tick _ -> ())
        edges)
    g.succ;
  if Float.is_finite !best then Some !best else None

let max_tokens g p =
  Array.fold_left (fun acc s -> max acc s.ts_marking.(p)) 0 g.states

let pp_summary ppf g =
  Format.fprintf ppf
    "@[<v>timed reachability graph of %s@,states: %d%s@,edges: %d@,timed \
     deadlocks: %d@]"
    (Net.name g.net) (num_states g)
    (if g.complete then "" else " (truncated)")
    (num_edges g)
    (List.length (deadlocks g))
