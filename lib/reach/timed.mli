(** Timed reachability graphs [RP84].

    Exhaustive exploration of a timed net with {e deterministic} delays:
    each state carries the marking, the residual firing times of in-flight
    firings, and the residual enabling times of enabled transitions.
    Edges are:
    - [Fire t] — a fireable transition starts firing (and completes
      immediately if its firing time is zero),
    - [Complete t] — an in-flight firing whose residual time reached zero
      deposits its outputs,
    - [Tick d] — time advances by [d], the minimum residual delay, when
      nothing can happen at the current instant.

    All delays must be deterministic (constants, degenerate choices, or
    deterministic [Dynamic] expressions); stochastic nets have infinite
    timed state spaces and are rejected.  Conflict resolution remains
    nondeterministic — every fireable transition gets its own branch, so
    the graph covers {e all} timings the simulator could exhibit. *)

type label =
  | Fire of Pnut_core.Net.transition_id
  | Complete of Pnut_core.Net.transition_id
  | Tick of float

type state = {
  ts_index : int;
  ts_marking : int array;
  ts_in_flight : (Pnut_core.Net.transition_id * float) list;
      (** residual firing times, sorted *)
  ts_pending : (Pnut_core.Net.transition_id * float) list;
      (** residual enabling times of enabled transitions, sorted *)
  ts_env : (string * Pnut_core.Value.t) list;
}

type edge = {
  e_from : int;
  e_label : label;
  e_to : int;
}

type t

val build : ?max_states:int -> ?jobs:int -> ?horizon:float -> Pnut_core.Net.t -> t
(** [horizon] bounds accumulated time along any path (default: none);
    [max_states] defaults to 50_000.  Raises [Invalid_argument] on
    stochastic delays, predicates or actions.

    [jobs] (resolved by {!Pnut_exec.Pool.resolve}) expands the BFS
    frontier on that many domains; the resulting graph is identical for
    every [jobs] value. *)

val build_supervised :
  ?max_states:int ->
  ?jobs:int ->
  ?horizon:float ->
  ?budget:Pnut_exec.Budget.t ->
  Pnut_core.Net.t ->
  t Pnut_exec.Supervisor.outcome
(** {!build} under a budget, polled on the layer boundary;
    [budget.max_states] tightens [max_states].  A tripped limit —
    including the state cap — yields [Degraded] with the partial graph
    (a valid prefix) and visited/frontier counts; a budgeted build that
    completes returns a graph identical to {!build}'s. *)

val complete : t -> bool
val num_states : t -> int
val num_edges : t -> int
val state : t -> int -> state
val initial : t -> int
val successors : t -> int -> edge list

val deadlocks : t -> int list
(** Timed-dead states: nothing fireable, nothing in flight, nothing
    pending. *)

val min_cycle_time : t -> Pnut_core.Net.transition_id -> float option
(** Shortest accumulated time before the transition first starts firing
    on any path (a best-case latency measure); [None] if it never
    fires. *)

val max_tokens : t -> Pnut_core.Net.place_id -> int

(** Steady-state cycle of a deterministic timed net ([RP84]-style
    performance analysis without simulation). *)
type cycle = {
  cy_transient : float;   (** time before the periodic regime starts *)
  cy_period : float;      (** cycle length in time units *)
  cy_firings : int array; (** firings of each transition per cycle *)
}

val steady_cycle : ?max_steps:int -> Pnut_core.Net.t -> cycle option
(** Follows one deterministic execution (conflicts resolved by the lowest
    transition id — any fixed rule yields {e a} steady cycle) until a
    state repeats; [None] if the net dies or no repeat is found within
    [max_steps] (default 100_000) steps.  Exact transition throughputs of
    that execution are [firings.(t) / period].  Delays must be
    deterministic, as for {!build}. *)

val pp_summary : Format.formatter -> t -> unit
