(** Timed reachability as a state-class graph [RP84, BM83-style].

    Exhaustive exploration of a timed net with {e deterministic} delays.
    Rather than enumerating concrete clock valuations (the frozen
    {!Timed_explicit} oracle), states here are {e classes}: a marking,
    an environment, and the multiset of transitions currently in
    flight, annotated with the canonical firing-interval domain — the
    per-timer [lo, hi] envelope over every residual vector that reaches
    the class.  Residual vectors are shift-normalized at creation, so
    the oracle's explicit [Tick] edges are folded into the [Fire] /
    [Complete] edges that precede them and never appear in the graph.

    The class graph preserves exactly what the analyses here consume:
    the reachable (marking, environment) set, the deadlock set, and
    per-place token bounds all coincide with the explicit expansion's
    (asserted by the qcheck differential suite).  Per-path accumulated
    time is the one thing folded away; {!min_cycle_time} recovers it
    with a dedicated search over the vector space, and time-bounded
    ([horizon]) exploration remains on the oracle only.

    The construction is unified onto the packed/supervised/parallel
    graph stack: with [packed], classes encode into the {!Store} arena
    (marking fields plus the interned (env, in-flight domain) in the
    extra-id field) and the class sweep shards across domains with a
    byte-identical-for-any-[jobs] merge.  The boxed representation is
    serial-only — [jobs] takes effect with [packed].

    All delays must be deterministic (constants, degenerate choices, or
    deterministic [Dynamic] expressions); stochastic nets have infinite
    timed state spaces and are rejected.  Conflict resolution remains
    nondeterministic — every fireable transition gets its own branch, so
    the graph covers {e all} timings the simulator could exhibit. *)

type label =
  | Fire of Pnut_core.Net.transition_id
      (** a fireable transition starts firing (and completes immediately
          if its firing time is zero) *)
  | Complete of Pnut_core.Net.transition_id
      (** an in-flight firing deposits its outputs *)

type state = {
  ts_index : int;
  ts_marking : int array;
  ts_flight : Pnut_core.Net.transition_id list;
      (** in-flight transition multiset, sorted *)
  ts_pending : Pnut_core.Net.transition_id list;
      (** enabled transitions (enabling timers), sorted *)
  ts_flight_iv : (float * float) list;
      (** residual firing-interval domain, one [lo, hi] per
          [ts_flight] entry *)
  ts_pending_iv : (float * float) list;
      (** residual enabling-interval domain, one per [ts_pending]
          entry *)
  ts_env : (string * Pnut_core.Value.t) list;
}

type edge = {
  e_from : int;
  e_label : label;
  e_to : int;
}

type t

val build :
  ?max_states:int -> ?jobs:int -> ?packed:bool -> Pnut_core.Net.t -> t
(** Build the state-class graph; [max_states] (a cap on {e classes})
    defaults to 50_000.  Raises [Invalid_argument] on stochastic
    delays, predicates or actions.

    With [packed] the graph lives in a bit-packed {!Store} arena and
    [jobs] (resolved by {!Pnut_exec.Pool.resolve}) shards the class
    sweep across that many domains; the packed arrays are byte-identical
    for every [jobs] value.  Without [packed] the build is serial and
    boxed. *)

val build_supervised :
  ?max_states:int ->
  ?jobs:int ->
  ?packed:bool ->
  ?budget:Pnut_exec.Budget.t ->
  Pnut_core.Net.t ->
  t Pnut_exec.Supervisor.outcome
(** {!build} under a budget, polled on the vector-dequeue boundary;
    [budget.max_states] tightens [max_states].  A tripped limit —
    including the class cap — yields [Degraded] with the partial graph
    (a valid prefix of classes) and visited/frontier counts; a budgeted
    build that completes returns a graph identical to {!build}'s. *)

val net : t -> Pnut_core.Net.t
val complete : t -> bool
val num_states : t -> int
val num_edges : t -> int

val num_vectors : t -> int
(** Residual vectors explored to close the classes — the unit of work;
    the explicit oracle's state count for the same net lies between
    this and this plus its Tick interpolation. *)

val state : t -> int -> state
val initial : t -> int
val successors : t -> int -> edge list
val predecessors : t -> int -> edge list

val packed_bytes_per_state : t -> float option
(** Arena bytes per class for a packed graph; [None] when boxed. *)

val packed_arrays : t -> (int array * int array * int array * int array) option
(** [(arena, index, edge offsets, edge data)] of a packed graph —
    byte-identical across [jobs] values; [None] when boxed. *)

val domain_arrays : t -> int array * int array * float array * float array
(** [(off, sup, lo, hi)]: for class [i], slots [off.(i) .. off.(i+1)-1]
    hold its timer support — [2*t] an in-flight timer of transition
    [t], [2*t+1] its enabling timer — with the interval domain in
    [lo]/[hi].  Identical across [jobs] and representations. *)

val deadlocks : t -> int list
(** Timed-dead classes: nothing fireable, nothing in flight, nothing
    pending — equivalently, classes with no outgoing edge.  Coincides
    with the explicit expansion's deadlock set. *)

val min_cycle_time :
  ?max_states:int -> Pnut_core.Net.t -> Pnut_core.Net.transition_id -> float option
(** Shortest accumulated time before the transition first starts firing
    on any path (a best-case latency measure); [None] if it never
    fires.  Runs a uniform-cost search over residual vectors (edge
    weight = folded Tick duration) rather than the class graph, which
    merges vectors reached at different times; [max_states] bounds the
    settled vectors (default 50_000). *)

val max_tokens : t -> Pnut_core.Net.place_id -> int

(** Steady-state cycle of a deterministic timed net ([RP84]-style
    performance analysis without simulation). *)
type cycle = {
  cy_transient : float;   (** time before the periodic regime starts *)
  cy_period : float;      (** cycle length in time units *)
  cy_firings : int array; (** firings of each transition per cycle *)
}

val steady_cycle : ?max_steps:int -> Pnut_core.Net.t -> cycle option
(** Follows one deterministic execution (conflicts resolved by the lowest
    transition id — any fixed rule yields {e a} steady cycle) until a
    state repeats; [None] if the net dies or no repeat is found within
    [max_steps] (default 100_000) steps.  Exact transition throughputs of
    that execution are [firings.(t) / period].  Delays must be
    deterministic, as for {!build}. *)

val pp_summary : Format.formatter -> t -> unit
