(* Deadlock-preserving stubborn-set reduction.

   At a marking [m] a set S of transitions is stubborn when (D1) no
   sequence of transitions outside S can change whether or how a member
   fires — outside transitions commute with every member — and (D2)
   some enabled member stays enabled under any outside sequence.
   Firing only the enabled members of a stubborn set at every state
   then reaches exactly the deadlock markings of the full graph: any
   full run into a deadlock can be reordered, stubborn set by stubborn
   set, into a run the reduced graph contains.

   The static closure rules implement D1/D2 through the relations
   precomputed by {!Pnut_core.Incidence}:

   - an {e enabled} member pulls in its [conflicts] — every transition
     touching a common place.  Whatever is left outside S shares no
     place with any enabled member, so it can neither disable one
     (consume its inputs, feed its inhibitor places) nor race it to a
     shared place; the coarse any-shared-place relation additionally
     keeps both interleavings of every place-sharing pair, which is
     what preserves exact place bounds on terminating nets (see
     PERFORMANCE.md for what is and is not preserved).
   - a {e disabled} member pulls in the [enablers] of one insufficient
     input place, or the [consumers] of one over-threshold inhibitor
     place (the first such place in arc order — deterministic).  No
     outside sequence can then enable it, so it commutes vacuously.

   The seed is always enabled, giving D2's key transition.  Determinism
   matters more than cleverness here: the chosen set is a function of
   the marking alone (fixed seed candidates, fixed scapegoat choice,
   fixed iteration order), so every builder — serial, layered, sharded —
   computes the same reduced graph for any worker count. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Kernel = Pnut_core.Kernel
module Incidence = Pnut_core.Incidence

type unsupported_feature =
  | Predicate
  | Action
  | Variables

type rejection = {
  r_transition : string option;
  r_feature : unsupported_feature;
}

exception Unsupported of rejection

let feature_name = function
  | Predicate -> "a predicate"
  | Action -> "an action"
  | Variables -> "variables or tables"

let rejection_message r =
  match r.r_transition with
  | Some t ->
    Printf.sprintf
      "partial-order reduction: transition %s carries %s, which makes \
       firings visible beyond the marking; rerun with --por off"
      t (feature_name r.r_feature)
  | None ->
    Printf.sprintf
      "partial-order reduction: the net declares %s, which make state \
       identity richer than the marking; rerun with --por off"
      (feature_name r.r_feature)

(* The reduction reasons about markings only, so anything that makes a
   firing visible beyond the marking — a predicate reading the
   environment, an action writing it, or declared variables/tables that
   become part of state identity — is out of fragment. *)
let unsupported net =
  if Net.variables net <> [] || Net.tables net <> [] then
    Some { r_transition = None; r_feature = Variables }
  else
    Array.fold_left
      (fun acc tr ->
        match acc with
        | Some _ -> acc
        | None ->
          if tr.Net.t_predicate <> None then
            Some { r_transition = Some tr.Net.t_name; r_feature = Predicate }
          else if tr.Net.t_action <> [] then
            Some { r_transition = Some tr.Net.t_name; r_feature = Action }
          else None)
      None (Net.transitions net)

type t = {
  trans : Kernel.ctrans array;
  nt : int;
  conflicts : int array array;
  producers : int array array;  (* per place: net-delta > 0 *)
  consumers : int array array;  (* per place: net-delta < 0 *)
}

let create kernel =
  let net = Kernel.net kernel in
  (match unsupported net with
  | None -> ()
  | Some r -> raise (Unsupported r));
  {
    trans = Kernel.transitions kernel;
    nt = Kernel.num_transitions kernel;
    conflicts = Incidence.conflicts net;
    producers = Incidence.enablers net;
    consumers = Incidence.consumers net;
  }

(* Mutable per-worker workspace: closures stamp membership with a round
   counter instead of clearing, so one [fired] call is O(|S| + |E|)
   beyond the enabling scan. *)
type scratch = {
  enabled : int array;  (* enabled tids, ascending, prefix of length n *)
  stamp : int array;    (* stamp.(t) = round when t joined that round's S *)
  stack : int array;    (* closure worklist; each tid pushed once per round *)
  mutable round : int;
}

let scratch t =
  let n = max 1 t.nt in
  { enabled = Array.make n 0; stamp = Array.make n 0; stack = Array.make n 0;
    round = 0 }

(* The disabling condition the closure commits to for a disabled
   transition: the first insufficient input place in arc order, else the
   first over-threshold inhibitor place.  One of the two exists, or the
   transition would be enabled. *)
let scapegoat_relation t (c : Kernel.ctrans) m =
  let n = Array.length c.Kernel.s_in_place in
  let rec inputs i =
    if i >= n then inhibitors 0
    else if Marking.get m c.Kernel.s_in_place.(i) < c.Kernel.s_in_weight.(i)
    then t.producers.(c.Kernel.s_in_place.(i))
    else inputs (i + 1)
  and inhibitors i =
    if i >= Array.length c.Kernel.s_inh_place then [||]
    else if Marking.get m c.Kernel.s_inh_place.(i) >= c.Kernel.s_inh_weight.(i)
    then t.consumers.(c.Kernel.s_inh_place.(i))
    else inhibitors (i + 1)
  in
  inputs 0

let fired t sc m =
  let ne = ref 0 in
  for tid = 0 to t.nt - 1 do
    if Kernel.token_enabled t.trans.(tid) m then begin
      sc.enabled.(!ne) <- tid;
      incr ne
    end
  done;
  let ne = !ne in
  if ne <= 1 then Array.sub sc.enabled 0 ne
  else begin
    (* Close one seed under the relations; returns how many enabled
       transitions its stubborn set captured.  Membership in round [r]
       is [stamp.(tid) = r], so successive closures need no clearing. *)
    let closure seed =
      sc.round <- sc.round + 1;
      let round = sc.round in
      let sp = ref 0 in
      let push tid =
        if sc.stamp.(tid) <> round then begin
          sc.stamp.(tid) <- round;
          sc.stack.(!sp) <- tid;
          incr sp
        end
      in
      push seed;
      while !sp > 0 do
        decr sp;
        let tid = sc.stack.(!sp) in
        let c = t.trans.(tid) in
        if Kernel.token_enabled c m then Array.iter push t.conflicts.(tid)
        else Array.iter push (scapegoat_relation t c m)
      done;
      let cnt = ref 0 in
      for i = 0 to ne - 1 do
        if sc.stamp.(sc.enabled.(i)) = round then incr cnt
      done;
      !cnt
    in
    (* Smallest-result heuristic over a few spread-out seeds; stop early
       on a singleton, the best any stubborn set can do. *)
    let best_cnt = ref max_int in
    let best_seed = ref (-1) in
    let try_seed i =
      if !best_cnt > 1 then begin
        let seed = sc.enabled.(i) in
        let cnt = closure seed in
        if cnt < !best_cnt then begin
          best_cnt := cnt;
          best_seed := seed
        end
      end
    in
    try_seed 0;
    try_seed (ne - 1);
    try_seed (ne / 2);
    if ne > 3 then try_seed (ne / 4);
    if !best_cnt >= ne then Array.sub sc.enabled 0 ne
    else begin
      (* Later closures stamped over earlier rounds, so membership of
         the winning set must be recomputed: re-close the best seed
         (deterministic, same count) and collect that round's stamps. *)
      let cnt = closure !best_seed in
      assert (cnt = !best_cnt);
      let round = sc.round in
      let out = Array.make cnt 0 in
      let k = ref 0 in
      for i = 0 to ne - 1 do
        let tid = sc.enabled.(i) in
        if sc.stamp.(tid) = round then begin
          out.(!k) <- tid;
          incr k
        end
      done;
      out
    end
  end
