module Binary = Pnut_trace.Binary

(* Arena-backed compact state store: packed markings in one flat int
   array, an open-addressing index over arena offsets (no per-state
   boxes, no stored hashes — they are recomputed from the arena when
   the table grows), and successor/predecessor edges in CSR form built
   in one pass.  BFS interns states in ascending order and expands them
   in ascending order, so the successor offsets can be appended as the
   sweep runs; predecessors are a counting sort over the finished
   successor array, built on first use. *)

(* FIFO of state indices with a bounded in-memory footprint: indices
   accumulate in fixed-size chunks, and once the buffered middle chunks
   exceed the byte threshold, full chunks are written to an anonymous
   temp file as delta varints (ascending BFS indices make the deltas
   tiny).  Head and tail chunks always stay in memory, so the floor is
   two chunks regardless of threshold. *)
module Frontier = struct
  type chunk =
    | Mem of int array
    | Disk of { off : int; bytes : int; count : int }

  type t = {
    threshold : int;
    chunk_ints : int;
    mutable head : int array;
    mutable head_pos : int;
    mutable head_len : int;
    middle : chunk Queue.t;
    mutable mem_bytes : int;  (* bytes of Mem chunks in [middle] *)
    mutable tail : int array;
    mutable tail_len : int;
    mutable count : int;
    mutable file : (string * out_channel * in_channel) option;
    mutable file_end : int;
    mutable spilled : int;
    buf : Buffer.t;
  }

  let create ~threshold () =
    if threshold < 0 then invalid_arg "Frontier.create: negative threshold";
    let chunk_ints = max 16 (min 8192 (threshold / 32)) in
    {
      threshold;
      chunk_ints;
      head = [||];
      head_pos = 0;
      head_len = 0;
      middle = Queue.create ();
      mem_bytes = 0;
      tail = Array.make chunk_ints 0;
      tail_len = 0;
      count = 0;
      file = None;
      file_end = 0;
      spilled = 0;
      buf = Buffer.create 256;
    }

  let length t = t.count
  let is_empty t = t.count = 0
  let spilled_chunks t = t.spilled

  let channels t =
    match t.file with
    | Some (_, oc, ic) -> (oc, ic)
    | None ->
      let path = Filename.temp_file "pnut-frontier" ".spill" in
      let oc = open_out_bin path in
      let ic = open_in_bin path in
      t.file <- Some (path, oc, ic);
      (oc, ic)

  let spill_tail t =
    let oc, _ = channels t in
    Buffer.clear t.buf;
    Binary.add_varint t.buf t.tail.(0);
    for k = 1 to t.tail_len - 1 do
      Binary.add_varint t.buf (Binary.zigzag (t.tail.(k) - t.tail.(k - 1)))
    done;
    let bytes = Buffer.length t.buf in
    Buffer.output_buffer oc t.buf;
    flush oc;
    Queue.add (Disk { off = t.file_end; bytes; count = t.tail_len }) t.middle;
    t.file_end <- t.file_end + bytes;
    t.spilled <- t.spilled + 1

  let flush_tail t =
    if t.tail_len > 0 then begin
      if t.mem_bytes + (t.tail_len * 8) > t.threshold then spill_tail t
      else begin
        Queue.add (Mem (Array.sub t.tail 0 t.tail_len)) t.middle;
        t.mem_bytes <- t.mem_bytes + (t.tail_len * 8)
      end;
      t.tail_len <- 0
    end

  let push t v =
    if v < 0 then invalid_arg "Frontier.push: negative index";
    if t.tail_len >= t.chunk_ints then flush_tail t;
    t.tail.(t.tail_len) <- v;
    t.tail_len <- t.tail_len + 1;
    t.count <- t.count + 1

  let read_chunk t ~off ~bytes ~count =
    let _, ic = channels t in
    seek_in ic off;
    let s = really_input_string ic bytes in
    let a = Array.make count 0 in
    let pos = ref 0 in
    a.(0) <- Binary.get_varint s ~pos;
    for k = 1 to count - 1 do
      a.(k) <- a.(k - 1) + Binary.unzigzag (Binary.get_varint s ~pos)
    done;
    a

  let pop t =
    if t.count = 0 then invalid_arg "Frontier.pop: empty";
    if t.head_pos >= t.head_len then begin
      match Queue.take_opt t.middle with
      | Some (Mem a) ->
        t.head <- a;
        t.head_pos <- 0;
        t.head_len <- Array.length a;
        t.mem_bytes <- t.mem_bytes - (8 * Array.length a)
      | Some (Disk { off; bytes; count }) ->
        t.head <- read_chunk t ~off ~bytes ~count;
        t.head_pos <- 0;
        t.head_len <- count
      | None ->
        t.head <- t.tail;
        t.head_pos <- 0;
        t.head_len <- t.tail_len;
        t.tail <- Array.make t.chunk_ints 0;
        t.tail_len <- 0
    end;
    let v = t.head.(t.head_pos) in
    t.head_pos <- t.head_pos + 1;
    t.count <- t.count - 1;
    v

  let close t =
    match t.file with
    | None -> ()
    | Some (path, oc, ic) ->
      t.file <- None;
      close_out_noerr oc;
      close_in_noerr ic;
      (try Sys.remove path with Sys_error _ -> ())
end

(* Per-shard intern table for the sharded parallel BFS: the same
   open-addressing discipline as the main store (probe to first empty or
   equal slot, grow at load 0.7), but over raw packed words under one
   fixed layout, with no edges, no extra table and no cap — the sharded
   builder aborts to the serial path on overflow or cap instead of
   widening, so a [Words.t] never re-encodes.  Each table is owned by
   exactly one domain; cross-domain visibility comes from the channel
   atomics in the builder, never from this structure. *)
module Words = struct
  type t = {
    lay : Packed.layout;
    w : int;
    mutable arena : int array;
    mutable cap : int;
    mutable n : int;
    mutable index : int array;  (* local id + 1; 0 = empty *)
    mutable mask : int;
  }

  let create lay =
    let w = Packed.words lay in
    {
      lay;
      w;
      arena = Array.make (256 * w) 0;
      cap = 256;
      n = 0;
      index = Array.make 1024 0;
      mask = 1023;
    }

  let length t = t.n
  let arena t = t.arena

  let rehash t =
    let size = t.mask + 1 in
    let idx = Array.make size 0 in
    for i = 0 to t.n - 1 do
      let h = Packed.hash t.lay t.arena ~pos:(i * t.w) in
      let s = ref (h land t.mask) in
      while idx.(!s) <> 0 do
        s := (!s + 1) land t.mask
      done;
      idx.(!s) <- i + 1
    done;
    t.index <- idx

  let intern t src ~pos ~hash =
    let mask = t.mask in
    let s = ref (hash land mask) in
    let found = ref (-1) in
    let stop = ref false in
    while not !stop do
      match t.index.(!s) with
      | 0 -> stop := true
      | e ->
        let i = e - 1 in
        if Packed.equal t.lay t.arena ~pos:(i * t.w) src pos then begin
          found := i;
          stop := true
        end
        else s := (!s + 1) land mask
    done;
    if !found >= 0 then `Found !found
    else begin
      let i = t.n in
      if i >= t.cap then begin
        let cap = 2 * t.cap in
        let arena = Array.make (cap * t.w) 0 in
        Array.blit t.arena 0 arena 0 (i * t.w);
        t.arena <- arena;
        t.cap <- cap
      end;
      Array.blit src pos t.arena (i * t.w) t.w;
      t.index.(!s) <- i + 1;
      t.n <- i + 1;
      if (t.n + 1) * 10 > (mask + 1) * 7 then begin
        t.mask <- (2 * (mask + 1)) - 1;
        rehash t
      end;
      `Added i
    end
end

type t = {
  codec : Packed.t;
  np : int;
  mutable words : int;
  mutable arena : int array;
  mutable cap_states : int;
  mutable n : int;
  mutable index : int array;  (* state index + 1; 0 = empty *)
  mutable index_mask : int;
  mutable key_buf : int array;  (* candidate scratch, [words] long *)
  t_bits : int;
  t_mask : int;
  mutable succ_off : int array;
  mutable succ_dat : int array;  (* (target lsl t_bits) lor tid *)
  mutable n_edges : int;
  mutable last_src : int;
  mutable finalized : bool;
  mutable pred_off : int array;
  mutable pred_dat : int array;
  mutable pred_built : bool;
}

let bits_for v =
  let rec go w = if v lsr w = 0 then w else go (w + 1) in
  max 1 (go 0)

let create codec ~num_transitions =
  let lay = Packed.layout codec in
  let words = Packed.words lay in
  let t_bits = bits_for (max 0 (num_transitions - 1)) in
  {
    codec;
    np = Packed.places lay;
    words;
    arena = Array.make (256 * words) 0;
    cap_states = 256;
    n = 0;
    index = Array.make 1024 0;
    index_mask = 1023;
    key_buf = Array.make words 0;
    t_bits;
    t_mask = (1 lsl t_bits) - 1;
    succ_off = Array.make 256 0;
    succ_dat = Array.make 256 0;
    n_edges = 0;
    last_src = -1;
    finalized = false;
    pred_off = [||];
    pred_dat = [||];
    pred_built = false;
  }

let codec st = st.codec
let num_states st = st.n
let num_edges st = st.n_edges

let rehash st =
  let size = st.index_mask + 1 in
  let idx = Array.make size 0 in
  let lay = Packed.layout st.codec in
  let mask = st.index_mask in
  for i = 0 to st.n - 1 do
    let h = Packed.hash lay st.arena ~pos:(i * st.words) in
    let s = ref (h land mask) in
    while idx.(!s) <> 0 do
      s := (!s + 1) land mask
    done;
    idx.(!s) <- i + 1
  done;
  st.index <- idx

let grow_index st =
  st.index_mask <- (2 * (st.index_mask + 1)) - 1;
  rehash st

(* A field overflowed its width: install a wider layout and re-encode
   every packed state under it (the old layout still decodes the
   existing words), then rebuild the index — hashes depend on the
   words. *)
let widen st ~field ~value =
  let old = Packed.widen st.codec ~field ~value in
  let lay = Packed.layout st.codec in
  let ow = Packed.words old in
  let nw = Packed.words lay in
  let tmp = Array.make st.np 0 in
  let arena' = Array.make (st.cap_states * nw) 0 in
  for i = 0 to st.n - 1 do
    Packed.decode_into old st.arena ~pos:(i * ow) tmp;
    let ex = Packed.extra_of old st.arena ~pos:(i * ow) in
    Packed.encode lay arena' ~pos:(i * nw) tmp ~extra:ex
  done;
  st.arena <- arena';
  st.words <- nw;
  st.key_buf <- Array.make nw 0;
  rehash st

let ensure_arena st =
  if st.n >= st.cap_states then begin
    let cap = 2 * st.cap_states in
    let arena = Array.make (cap * st.words) 0 in
    Array.blit st.arena 0 arena 0 (st.n * st.words);
    st.arena <- arena;
    st.cap_states <- cap
  end

let rec intern st marking ~extra ~max_states =
  let lay = Packed.layout st.codec in
  match Packed.encode lay st.key_buf ~pos:0 marking ~extra with
  | exception Packed.Field_overflow { field; value } ->
    widen st ~field ~value;
    intern st marking ~extra ~max_states
  | () ->
    let h = Packed.hash lay st.key_buf ~pos:0 in
    let mask = st.index_mask in
    let s = ref (h land mask) in
    let found = ref (-1) in
    let stop = ref false in
    while not !stop do
      match st.index.(!s) with
      | 0 -> stop := true
      | e ->
        let i = e - 1 in
        if Packed.equal lay st.arena ~pos:(i * st.words) st.key_buf 0 then begin
          found := i;
          stop := true
        end
        else s := (!s + 1) land mask
    done;
    if !found >= 0 then `Found !found
    else if st.n >= max_states then `Capped
    else begin
      let i = st.n in
      ensure_arena st;
      Array.blit st.key_buf 0 st.arena (i * st.words) st.words;
      st.index.(!s) <- i + 1;
      st.n <- i + 1;
      (* keep the load factor under 0.7 — linear probing stays short and
         the slots cost stays well inside the bytes/state budget *)
      if (st.n + 1) * 10 > (mask + 1) * 7 then grow_index st;
      `Added i
    end

(* Append a state whose packed words already exist (in a shard arena)
   and which the caller guarantees is not yet present.  The probe is
   [intern]'s with the equality arm unreachable — fresh distinct states
   stop at the first empty slot either way — and arena/index growth
   follow the same schedules, so a merge that replays the serial
   interning order through [append_packed] reproduces the serial store's
   arrays byte for byte. *)
let append_packed st src ~pos =
  let lay = Packed.layout st.codec in
  let i = st.n in
  ensure_arena st;
  Array.blit src pos st.arena (i * st.words) st.words;
  let h = Packed.hash lay st.arena ~pos:(i * st.words) in
  let mask = st.index_mask in
  let s = ref (h land mask) in
  while st.index.(!s) <> 0 do
    s := (!s + 1) land mask
  done;
  st.index.(!s) <- i + 1;
  st.n <- i + 1;
  if (st.n + 1) * 10 > (mask + 1) * 7 then grow_index st;
  i

let marking_into st i dst =
  Packed.decode_into (Packed.layout st.codec) st.arena ~pos:(i * st.words) dst

let extra st i =
  Packed.extra_of (Packed.layout st.codec) st.arena ~pos:(i * st.words)

(* -- CSR successors, appended in sweep order -- *)

let ensure_succ_off st upto =
  if upto >= Array.length st.succ_off then begin
    let cap = max (upto + 1) (2 * Array.length st.succ_off) in
    let a = Array.make cap 0 in
    Array.blit st.succ_off 0 a 0 (st.last_src + 1);
    st.succ_off <- a
  end

let begin_source st i =
  if i <= st.last_src then invalid_arg "Store.begin_source: not ascending";
  ensure_succ_off st i;
  for j = st.last_src + 1 to i do
    st.succ_off.(j) <- st.n_edges
  done;
  st.last_src <- i

let add_edge st ~tid ~target =
  if st.n_edges >= Array.length st.succ_dat then begin
    let a = Array.make (2 * Array.length st.succ_dat) 0 in
    Array.blit st.succ_dat 0 a 0 st.n_edges;
    st.succ_dat <- a
  end;
  st.succ_dat.(st.n_edges) <- (target lsl st.t_bits) lor tid;
  st.n_edges <- st.n_edges + 1

let finalize st =
  if not st.finalized then begin
    ensure_succ_off st st.n;
    for j = st.last_src + 1 to st.n do
      st.succ_off.(j) <- st.n_edges
    done;
    st.last_src <- st.n;
    st.succ_off <- Array.sub st.succ_off 0 (st.n + 1);
    st.succ_dat <- Array.sub st.succ_dat 0 st.n_edges;
    if st.n * st.words < Array.length st.arena then begin
      st.arena <- Array.sub st.arena 0 (st.n * st.words);
      st.cap_states <- st.n
    end;
    st.finalized <- true
  end

let out_degree st i = st.succ_off.(i + 1) - st.succ_off.(i)

let successors st i =
  let acc = ref [] in
  for k = st.succ_off.(i + 1) - 1 downto st.succ_off.(i) do
    let v = st.succ_dat.(k) in
    acc := (v land st.t_mask, v lsr st.t_bits) :: !acc
  done;
  !acc

let iter_edges st f =
  for i = 0 to st.n - 1 do
    for k = st.succ_off.(i) to st.succ_off.(i + 1) - 1 do
      let v = st.succ_dat.(k) in
      f i (v land st.t_mask) (v lsr st.t_bits)
    done
  done

(* -- predecessor CSR: counting sort over the successor array, stable
      in sweep order so per-target slices match the boxed builder's
      traversal -- *)

let build_pred st =
  if not st.pred_built then begin
    let n = st.n in
    let off = Array.make (n + 1) 0 in
    for k = 0 to st.n_edges - 1 do
      let tgt = st.succ_dat.(k) lsr st.t_bits in
      off.(tgt + 1) <- off.(tgt + 1) + 1
    done;
    for i = 1 to n do
      off.(i) <- off.(i) + off.(i - 1)
    done;
    let cursor = Array.sub off 0 n in
    let dat = Array.make st.n_edges 0 in
    for src = 0 to n - 1 do
      for k = st.succ_off.(src) to st.succ_off.(src + 1) - 1 do
        let v = st.succ_dat.(k) in
        let tgt = v lsr st.t_bits in
        dat.(cursor.(tgt)) <- (src lsl st.t_bits) lor (v land st.t_mask);
        cursor.(tgt) <- cursor.(tgt) + 1
      done
    done;
    st.pred_off <- off;
    st.pred_dat <- dat;
    st.pred_built <- true
  end

(* Reverse sweep order, matching the boxed builder (which prepends while
   walking sources ascending). *)
let predecessors st j =
  build_pred st;
  let acc = ref [] in
  for k = st.pred_off.(j) to st.pred_off.(j + 1) - 1 do
    let v = st.pred_dat.(k) in
    acc := (v lsr st.t_bits, v land st.t_mask) :: !acc
  done;
  !acc

let iter_pred_sources st j f =
  build_pred st;
  for k = st.pred_off.(j) to st.pred_off.(j + 1) - 1 do
    f (st.pred_dat.(k) lsr st.t_bits)
  done

let store_words st = (Array.length st.arena, Array.length st.index)

let internal_arrays st = (st.arena, st.index, st.succ_off, st.succ_dat)

let bytes_per_state st =
  if st.n = 0 then 0.0
  else
    let arena, index = store_words st in
    float_of_int ((arena + index) * (Sys.word_size / 8)) /. float_of_int st.n
