module Net = Pnut_core.Net
module Kernel = Pnut_core.Kernel

type token =
  | Finite of int
  | Omega

type node = {
  n_index : int;
  n_marking : token array;
}

type edge = {
  e_from : int;
  e_transition : Net.transition_id;
  e_to : int;
}

type t = {
  nodes : node array;
  succ : edge list array;
  complete : bool;
}

type unsupported_feature =
  | Inhibitor_arcs
  | Predicate
  | Action

type rejection = {
  r_transition : string;
  r_feature : unsupported_feature;
}

exception Unsupported of rejection

let feature_name = function
  | Inhibitor_arcs -> "inhibitor arcs"
  | Predicate -> "a predicate"
  | Action -> "an action"

let rejection_message { r_transition; r_feature } =
  Printf.sprintf
    "coverability: transition %s has %s; the Karp-Miller construction needs \
     plain monotone nets (weighted input/output arcs only)"
    r_transition (feature_name r_feature)

let check_plain net =
  Array.iter
    (fun tr ->
      let reject r_feature =
        raise (Unsupported { r_transition = tr.Net.t_name; r_feature })
      in
      if tr.Net.t_inhibitors <> [] then reject Inhibitor_arcs;
      if tr.Net.t_predicate <> None then reject Predicate;
      if tr.Net.t_action <> [] then reject Action)
    (Net.transitions net)

let token_ge a b =
  match a, b with
  | Omega, _ -> true
  | Finite _, Omega -> false
  | Finite x, Finite y -> x >= y

let token_gt a b =
  match a, b with
  | Omega, Omega -> false
  | Omega, Finite _ -> true
  | Finite _, Omega -> false
  | Finite x, Finite y -> x > y

let marking_ge a b =
  let ok = ref true in
  Array.iteri (fun i t -> if not (token_ge t b.(i)) then ok := false) a;
  !ok

(* ω-markings keyed structurally: no string rendering, and a hash that
   folds over every place (the generic [Hashtbl.hash] only samples a
   prefix). *)
module Mark_tbl = Hashtbl.Make (struct
  type t = token array

  (* monomorphic loop — interning compares on every collision *)
  let equal (a : t) b =
    a == b
    || (Array.length a = Array.length b
       &&
       let n = Array.length a in
       let rec go i =
         i >= n
         || ((match a.(i), b.(i) with
             | Finite x, Finite y -> x = y
             | Omega, Omega -> true
             | Finite _, Omega | Omega, Finite _ -> false)
            && go (i + 1))
       in
       go 0)

  let hash (m : t) =
    let h = ref (Array.length m) in
    Array.iter
      (fun t ->
        h := (!h * 31) + (match t with Finite n -> n | Omega -> -1))
      m;
    !h land max_int
end)

(* The transition relation lifted to ω-markings, over the kernel's arc
   arrays (the only lifting any tool defines: everything on concrete
   markings lives in {!Pnut_core.Kernel}). *)
let enabled (c : Kernel.ctrans) marking =
  let n = Array.length c.Kernel.s_in_place in
  let rec go i =
    i >= n
    || (token_ge marking.(c.Kernel.s_in_place.(i))
          (Finite c.Kernel.s_in_weight.(i))
       && go (i + 1))
  in
  go 0

let fire (c : Kernel.ctrans) marking =
  let m = Array.copy marking in
  for k = 0 to Array.length c.Kernel.s_in_place - 1 do
    match m.(c.Kernel.s_in_place.(k)) with
    | Finite n -> m.(c.Kernel.s_in_place.(k)) <- Finite (n - c.Kernel.s_in_weight.(k))
    | Omega -> ()
  done;
  for k = 0 to Array.length c.Kernel.s_out_place - 1 do
    match m.(c.Kernel.s_out_place.(k)) with
    | Finite n -> m.(c.Kernel.s_out_place.(k)) <- Finite (n + c.Kernel.s_out_weight.(k))
    | Omega -> ()
  done;
  m

(* Accelerate: if the new marking strictly dominates an ancestor, the
   strictly-larger places grow without bound. *)
let accelerate ancestors m =
  let m = Array.copy m in
  List.iter
    (fun anc ->
      if marking_ge m anc then begin
        let strictly = ref false in
        Array.iteri (fun i t -> if token_gt t anc.(i) then strictly := true) m;
        if !strictly then
          Array.iteri
            (fun i t -> if token_gt t anc.(i) then m.(i) <- Omega)
            m
      end)
    ancestors;
  m

let build_supervised ?(max_states = 100_000) ?(budget = Pnut_exec.Budget.none)
    net =
  check_plain net;
  let monitor = Pnut_exec.Supervisor.start budget in
  let monitored = Pnut_exec.Supervisor.active monitor in
  let max_states =
    match Pnut_exec.Supervisor.max_states monitor with
    | Some cap -> min cap max_states
    | None -> max_states
  in
  let budget_stop = ref None in
  let frontier_left = ref 0 in
  let pops = ref 0 in
  let kernel = Kernel.of_net net in
  let initial =
    Array.map (fun c -> Finite c)
      (Pnut_core.Marking.to_array (Net.initial_marking net))
  in
  let index = Mark_tbl.create 256 in
  let nodes = ref [] in
  let n = ref 0 in
  let truncated = ref false in
  let edge_acc = ref [] in
  (* work items carry the node index and the ancestor chain of
     ω-markings *)
  let intern marking =
    match Mark_tbl.find_opt index marking with
    | Some i -> (i, false)
    | None ->
      let i = !n in
      let marking = Array.copy marking in
      Mark_tbl.replace index marking i;
      nodes := { n_index = i; n_marking = marking } :: !nodes;
      incr n;
      (i, true)
  in
  let i0, _ = intern initial in
  let stack = ref [ (i0, initial, []) ] in
  (* Budget checks ride the DFS pop, every 256 nodes, so a budgeted
     build that completes is identical to an unbudgeted one. *)
  let rec loop () =
    match !stack with
    | [] -> ()
    | (i, marking, ancestors) :: rest ->
      incr pops;
      if
        monitored && !pops land 255 = 0
        && (match Pnut_exec.Supervisor.check monitor with
           | Some r ->
             budget_stop := Some r;
             frontier_left := List.length !stack;
             true
           | None -> false)
      then ()
      else begin
        stack := rest;
        if !n >= max_states then begin
          truncated := true;
          frontier_left := 1 + List.length rest
        end
        else begin
          Array.iter
            (fun (c : Kernel.ctrans) ->
              if enabled c marking then begin
                let m' = accelerate (marking :: ancestors) (fire c marking) in
                let j, fresh = intern m' in
                edge_acc := { e_from = i; e_transition = c.Kernel.s_id; e_to = j } :: !edge_acc;
                if fresh then stack := (j, m', marking :: ancestors) :: !stack
              end)
            (Kernel.transitions kernel);
          loop ()
        end
      end
  in
  loop ();
  let arr = Array.make !n { n_index = 0; n_marking = [||] } in
  List.iter (fun nd -> arr.(nd.n_index) <- nd) !nodes;
  let succ = Array.make !n [] in
  List.iter (fun e -> succ.(e.e_from) <- e :: succ.(e.e_from)) !edge_acc;
  Array.iteri (fun i l -> succ.(i) <- List.rev l) succ;
  let complete = not !truncated && !budget_stop = None in
  let g = { nodes = arr; succ; complete } in
  match !budget_stop with
  | Some reason ->
    Pnut_exec.Supervisor.Degraded
      {
        reason;
        partial = g;
        progress =
          Pnut_exec.Supervisor.snapshot monitor ~visited:!n
            ~frontier:!frontier_left;
      }
  | None ->
    if !truncated then
      Pnut_exec.Supervisor.Degraded
        {
          reason = Pnut_exec.Supervisor.States !n;
          partial = g;
          progress =
            Pnut_exec.Supervisor.snapshot monitor ~visited:!n
              ~frontier:!frontier_left;
        }
    else Pnut_exec.Supervisor.Complete g

let build ?max_states net =
  Pnut_exec.Supervisor.value (build_supervised ?max_states net)

let num_nodes g = Array.length g.nodes
let node g i = g.nodes.(i)
let successors g i = g.succ.(i)
let edges g = List.concat (Array.to_list g.succ)
let complete g = g.complete

let is_bounded g =
  Array.for_all
    (fun nd -> Array.for_all (fun t -> t <> Omega) nd.n_marking)
    g.nodes

let place_bound g p =
  let bound = ref 0 in
  let unbounded = ref false in
  Array.iter
    (fun nd ->
      match nd.n_marking.(p) with
      | Omega -> unbounded := true
      | Finite c -> bound := max !bound c)
    g.nodes;
  if !unbounded then None else Some !bound

let unbounded_places g =
  match g.nodes with
  | [||] -> []
  | _ ->
    let np = Array.length g.nodes.(0).n_marking in
    List.init np (fun p -> p)
    |> List.filter (fun p -> place_bound g p = None)

let covers g target =
  Array.exists
    (fun nd ->
      let ok = ref true in
      Array.iteri
        (fun i want ->
          if not (token_ge nd.n_marking.(i) (Finite want)) then ok := false)
        target;
      !ok)
    g.nodes

let pp_token ppf = function
  | Finite n -> Format.pp_print_int ppf n
  | Omega -> Format.pp_print_string ppf "ω"

let pp_summary net ppf g =
  Format.fprintf ppf "@[<v>coverability graph of %s@,nodes: %d%s@,bounded: %b"
    (Net.name net) (num_nodes g)
    (if g.complete then "" else " (truncated)")
    (is_bounded g);
  (match unbounded_places g with
  | [] -> ()
  | l ->
    Format.fprintf ppf "@,unbounded places: %s"
      (String.concat ", " (List.map (fun p -> (Net.place net p).Net.p_name) l)));
  Format.fprintf ppf "@]"
