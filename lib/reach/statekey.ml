module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Value = Pnut_core.Value

type t = {
  k_hash : int;
  k_marking : int array;
  k_bindings : (string * Value.t) list;
  k_tables : (string * Value.t array) list;
  k_clocks : string;
}

let make ?(clocks = "") marking env =
  let km = Marking.to_array marking in
  let kb = Env.bindings env in
  let kt = Env.tables env in
  let h = ref (Array.length km) in
  let mix v = h := (!h * 31) lxor v in
  Array.iter mix km;
  List.iter
    (fun (k, v) ->
      mix (Hashtbl.hash k);
      mix (Value.hash v))
    kb;
  List.iter
    (fun (k, arr) ->
      mix (Hashtbl.hash k);
      Array.iter (fun v -> mix (Value.hash v)) arr)
    kt;
  if clocks <> "" then mix (Hashtbl.hash clocks);
  { k_hash = !h land max_int; k_marking = km; k_bindings = kb;
    k_tables = kt; k_clocks = clocks }

let bindings_equal a b =
  List.equal
    (fun (ka, va) (kb, vb) -> String.equal ka kb && Value.equal va vb)
    a b

let tables_equal a b =
  List.equal
    (fun (ka, va) (kb, vb) ->
      String.equal ka kb
      && Array.length va = Array.length vb
      && Array.for_all2 Value.equal va vb)
    a b

(* Monomorphic int-array loop: interning compares keys on every hash
   collision, and the generic [caml_compare] walk is a C call. *)
let marking_equal (a : int array) b =
  a == b
  || (Array.length a = Array.length b
     &&
     let n = Array.length a in
     let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
     go 0)

let equal a b =
  a.k_hash = b.k_hash
  && marking_equal a.k_marking b.k_marking
  && String.equal a.k_clocks b.k_clocks
  && bindings_equal a.k_bindings b.k_bindings
  && tables_equal a.k_tables b.k_tables

let hash k = k.k_hash

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
