(** Deadlock-preserving stubborn-set partial-order reduction.

    At each expansion, instead of firing every enabled transition, fire
    only the enabled members of a {e stubborn set}: a set closed so that
    no transition outside it can interfere with a member (Valmari's D1)
    and containing an enabled transition that stays enabled under any
    outside firing sequence (D2).  The reduced graph reaches {e exactly}
    the deadlock markings of the full graph, and — because the conflict
    relation used here links any two transitions sharing a place — the
    exact per-place bounds on terminating nets.  Intermediate
    interleavings are {e not} preserved: CTL over the full graph, state
    or edge counts, and path-sensitive queries must use the full build.

    The chosen set is a deterministic function of the marking, so every
    builder (serial, layered, sharded) produces the same reduced graph
    at any [--jobs] level. *)

(** Why a net falls outside the reduction's fragment. *)
type unsupported_feature =
  | Predicate  (** a transition guard reads the environment *)
  | Action     (** a transition firing writes the environment *)
  | Variables  (** declared variables/tables enrich state identity *)

type rejection = {
  r_transition : string option;
      (** offending transition, when the feature is per-transition *)
  r_feature : unsupported_feature;
}

exception Unsupported of rejection

val rejection_message : rejection -> string
(** One-line human-readable explanation, suitable for [die]. *)

val unsupported : Pnut_core.Net.t -> rejection option
(** [None] when the net is plain (no variables, tables, predicates or
    actions) and the reduction is sound; the first offending feature
    otherwise.  This is what [--por auto] consults. *)

type t
(** Per-net static structure: the compiled transitions plus the
    {!Pnut_core.Incidence.conflicts} / [enablers] / [consumers]
    relations the closure walks.  Immutable; share freely across
    workers. *)

val create : Pnut_core.Kernel.t -> t
(** Precomputes the relations.  @raise Unsupported when
    {!unsupported} is [Some _] for the kernel's net. *)

type scratch
(** Mutable per-worker workspace ([O(num_transitions)] words).  Not
    thread-safe; give each domain its own. *)

val scratch : t -> scratch

val fired : t -> scratch -> Pnut_core.Marking.t -> int array
(** The transition ids to fire at this marking: the enabled members of
    the smallest stubborn set found over a few candidate seeds, sorted
    ascending.  Empty iff the marking is a deadlock; equal to the full
    enabled set when no reduction applies.  All returned transitions
    are token-enabled at the marking. *)
