(** Bit-packed marking encoding for the compact reachability store.

    A codec maps one net's states to fixed-width bitfields in a short
    run of 63-bit words: each place gets a field sized from
    {!Pnut_core.Incidence.place_bounds} (declared capacities tightened
    by P-invariants; fields never straddle words), and everything that
    is not a token count — the environment and an optional clock
    rendering — is interned once in a side table and referenced by a
    small id field.  Variable-free nets have no id field and pay zero
    env bytes per state.

    Bounds are advisory: a capacity may lie and unbounded places start
    at a guessed width, so {!encode} raises {!Field_overflow} on a
    value that does not fit and {!widen} rebuilds the layout — the
    store re-encodes its arena under the new layout and the old one
    stays valid for decoding the existing words.  Packing is therefore
    never unsound, only occasionally re-laid-out. *)

type t
(** A codec: the current layout plus the env/clock side table. *)

type layout
(** An immutable field layout.  The codec's current layout changes on
    {!widen}; encode/decode take the layout explicitly so states packed
    under a superseded layout can still be read. *)

exception Field_overflow of { field : int; value : int }
(** [field] is the place id, or [-1] for the side-table id field. *)

val create :
  ?bounds:int option array -> ?with_extra:bool -> Pnut_core.Net.t -> t
(** [bounds] defaults to {!Pnut_core.Incidence.place_bounds};
    [with_extra] forces the side-table id field on or off (default: on
    iff the net has variables or tables).  An extra field appears on
    demand via {!widen} either way. *)

val bounds_known : Pnut_core.Net.t -> bool
(** Every place has a known bound — the condition under which the CLI
    turns the packed store on by default. *)

val layout : t -> layout
val words : layout -> int
(** Words per state. *)

val places : layout -> int
val has_extra : t -> bool

(** {2 Codec} *)

val encode :
  layout -> int array -> pos:int -> int array -> extra:int -> unit
(** Pack a marking (token counts by place) and a side-table id at
    [pos..pos+words-1] of the destination.  Raises {!Field_overflow}
    when a count or the id does not fit its field. *)

val decode_into : layout -> int array -> pos:int -> int array -> unit
val decode : layout -> int array -> pos:int -> int array

val extra_of : layout -> int array -> pos:int -> int
(** The packed side-table id ([0] when the layout has no id field). *)

val hash : layout -> int array -> pos:int -> int
(** Hash of the packed words (FNV-1a, non-negative).  Nothing is
    stored: the index recomputes hashes from the arena when it grows. *)

val equal : layout -> int array -> pos:int -> int array -> int -> bool
(** Word-for-word equality of two packed states. *)

val widen : t -> field:int -> value:int -> layout
(** Grow [field] (a place id, or [-1] for the id field) to fit [value],
    install the new layout, and return the previous one for decoding
    states packed under it. *)

(** {2 The env/clock side table} *)

val intern_extra : t -> ?clocks:string -> Pnut_core.Env.t -> int
(** Intern an environment snapshot (plus an optional canonical clock
    rendering) and return its dense id.  Identity is structural, via
    {!Statekey} on a zero-length marking; the same (env, clocks) pair
    always gets the same id.  The environment object is retained and
    must not be mutated afterwards (the graph builders copy before
    running actions, so sharing is safe there). *)

val num_extra : t -> int
val extra_env : t -> int -> Pnut_core.Env.t
val extra_key : t -> int -> Statekey.t
(** The interned snapshot: bindings, tables and clocks of the id. *)

val extra_bindings : t -> int -> (string * Pnut_core.Value.t) list
