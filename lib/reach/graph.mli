(** Untimed reachability graphs [MR87].

    Classical interleaving semantics: any fully enabled transition (token
    conditions and predicate) may fire atomically, consuming, producing
    and running its action.  Timing is ignored.  Interpreted nets are
    supported as long as every predicate, action and duration involved is
    deterministic (no [irand]); the environment is part of the state.

    Construction is breadth-first with a state cap; a capped graph is
    flagged [complete = false] and all analyses on it are reported as
    bounds, not facts. *)

type state = {
  s_index : int;
  s_marking : int array;
  s_env : (string * Pnut_core.Value.t) list;  (** scalar bindings *)
}

type edge = {
  e_from : int;
  e_transition : Pnut_core.Net.transition_id;
  e_to : int;
}

type t

val build :
  ?max_states:int ->
  ?jobs:int ->
  ?packed:bool ->
  ?por:bool ->
  Pnut_core.Net.t ->
  t
(** Default cap: 100_000 states.  Raises [Invalid_argument] if the net
    has stochastic predicates or actions.

    [jobs] (resolved by {!Pnut_exec.Pool.resolve}) expands the BFS
    frontier on that many domains; interning stays sequential in
    frontier order, so the resulting graph — state numbering, edge
    order, truncation — is identical for every [jobs] value.

    [packed] (default [false]) builds into the {!Store} compact arena:
    states are bit-packed (fields sized from
    {!Pnut_core.Incidence.place_bounds} with a checked widen path) and
    edges CSR-encoded, cutting memory by an order of magnitude at the
    10^6+-state scale.  With [jobs > 1] the packed sweep runs sharded:
    each domain owns the states hashing into its shard, interns them
    lock-free and forwards cross-shard successors through SPSC
    channels, and a deterministic merge renumbers the result — the
    store is byte-identical to the serial sweep's for every [jobs]
    value (nets with variables, layout overflows and cap hits fall back
    to the serial sweep transparently).

    [por] (default [false]) applies the deadlock-preserving stubborn-set
    reduction of {!Stubborn}: at each state only the enabled members of
    a stubborn set fire, shrinking wide concurrent graphs by orders of
    magnitude while reaching exactly the same deadlock markings (and,
    on terminating nets, the same per-place bounds).  State and edge
    counts, CTL over the full graph and path-sensitive queries are not
    preserved — build without [por] for those.  The reduced set is a
    deterministic function of the marking, so the graph is still
    identical across [jobs] values and across the boxed/packed/sharded
    builders' shared numbering.  Raises {!Stubborn.Unsupported} when
    the net has variables, tables, predicates or actions (pre-check
    with {!Stubborn.unsupported}). *)

val build_supervised :
  ?max_states:int ->
  ?jobs:int ->
  ?budget:Pnut_exec.Budget.t ->
  ?packed:bool ->
  ?frontier_spill:int ->
  ?por:bool ->
  Pnut_core.Net.t ->
  t Pnut_exec.Supervisor.outcome
(** {!build} under a budget.  Wall, heap and cancellation are polled on
    the interning cadence (every 256 dequeues serially, every layer in
    parallel); [budget.max_states] tightens [max_states].  A tripped
    limit — including the state cap — yields [Degraded] carrying the
    partial graph (a valid prefix: every interned state is present, only
    the unexpanded frontier is missing outgoing edges) plus a progress
    snapshot with visited and frontier counts.  A budgeted build that
    completes returns a graph identical to {!build}'s.

    With [packed], [frontier_spill] caps the bytes of frontier buffered
    in memory before full chunks spill to a temp file (default:
    {!Pnut_exec.Budget.spill_threshold_bytes} of [budget]). *)

val net : t -> Pnut_core.Net.t
val complete : t -> bool
val num_states : t -> int
val num_edges : t -> int
val state : t -> int -> state
val initial : t -> int
val successors : t -> int -> edge list
val predecessors : t -> int -> edge list
val edges : t -> edge list

val find_state : t -> int array -> int option
(** Look up a marking (ignores the environment if several states share
    the marking — returns the first). *)

val packed_bytes_per_state : t -> float option
(** Store footprint (arena + index bytes over states) for a packed
    graph; [None] for the boxed representation. *)

val packed_arrays : t -> (int array * int array * int array * int array) option
(** The packed store's physical [(arena, index, succ_off, succ_dat)]
    arrays ([None] for the boxed representation), exposed so the
    jobs-sweep determinism tests and the bench identity gate can assert
    byte-for-byte equality across builders.  Read only. *)

(** {2 Analyses} *)

val deadlocks : t -> int list
(** States with no enabled transition. *)

val bound : t -> Pnut_core.Net.place_id -> int
(** Max token count of the place over all reachable states. *)

val is_safe : t -> bool
(** Every place holds at most one token in every reachable state. *)

val live_transitions : t -> Pnut_core.Net.transition_id list
(** Transitions that fire on at least one edge (L1-live). *)

val dead_transitions : t -> Pnut_core.Net.transition_id list

val is_reversible : t -> bool
(** The initial state is reachable from every reachable state. *)

val home_states : t -> int list
(** States reachable from every reachable state. *)

val check_invariant : t -> (state -> bool) -> int option
(** First state violating a predicate, if any. *)

val pp_summary : Format.formatter -> t -> unit
