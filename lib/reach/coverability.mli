(** Coverability analysis (Karp-Miller).

    Ordinary reachability exploration of an unbounded net just hits the
    state cap without a verdict.  The Karp-Miller construction
    accelerates unbounded growth into [ω] ("arbitrarily many tokens"),
    always terminates, and decides boundedness per place: a place is
    unbounded iff some coverability node marks it [ω].

    Restrictions: nets with inhibitor arcs or predicates are rejected
    with {!Unsupported} — the acceleration argument needs plain monotone
    firing (more tokens never disable a transition), which inhibitors
    break.  Actions are likewise rejected (the environment is not part
    of the covering order).  The CLI maps {!Unsupported} to its
    documented exit code 2 (specification errors). *)

type token =
  | Finite of int
  | Omega

(** {2 Structured rejection}

    Which extended-net feature puts a net outside the Karp-Miller
    fragment. *)

type unsupported_feature =
  | Inhibitor_arcs
  | Predicate
  | Action

type rejection = {
  r_transition : string;  (** name of the offending transition *)
  r_feature : unsupported_feature;
}

exception Unsupported of rejection
(** Raised by {!build} before any exploration. *)

val rejection_message : rejection -> string
(** One-line human-readable rendering for CLI error reporting. *)

type node = {
  n_index : int;
  n_marking : token array;
}

type edge = {
  e_from : int;
  e_transition : Pnut_core.Net.transition_id;
  e_to : int;
}

type t

val build : ?max_states:int -> Pnut_core.Net.t -> t
(** [max_states] (default 100_000) is a safety net; genuine Karp-Miller
    trees are finite but can be huge.  Raises {!Unsupported} on nets
    with inhibitors, predicates or actions. *)

val build_supervised :
  ?max_states:int ->
  ?budget:Pnut_exec.Budget.t ->
  Pnut_core.Net.t ->
  t Pnut_exec.Supervisor.outcome
(** {!build} under a budget, polled every 256 DFS pops;
    [budget.max_states] tightens [max_states].  A tripped limit —
    including the state cap — yields [Degraded] with the partial graph
    and visited/frontier counts; a budgeted build that completes
    returns a graph identical to {!build}'s.  Still raises
    {!Unsupported} on out-of-fragment nets (a structural rejection, not
    a resource condition). *)

val num_nodes : t -> int
val node : t -> int -> node
val edges : t -> edge list
val successors : t -> int -> edge list
val complete : t -> bool

val is_bounded : t -> bool
(** No [ω] anywhere: the net is bounded. *)

val place_bound : t -> Pnut_core.Net.place_id -> int option
(** Maximum token count over all coverability nodes; [None] when the
    place is unbounded. *)

val unbounded_places : t -> Pnut_core.Net.place_id list

val covers : t -> int array -> bool
(** [covers g m] — is some reachable marking (in the covering sense)
    at least [m]?  This is the classical coverability question, e.g.
    "can two tokens ever sit on the critical section place". *)

val pp_token : Format.formatter -> token -> unit
val pp_summary : Pnut_core.Net.t -> Format.formatter -> t -> unit
