module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Trace = Pnut_trace.Trace

type phase =
  | Consume
  | Transit
  | Produce

type frame = {
  f_time : float;
  f_step : int;
  f_phase : phase;
  f_caption : string;
  f_text : string;
}

let gauge count =
  let shown = min count 12 in
  let dots = String.concat "" (List.init shown (fun _ -> "o")) in
  if count > shown then dots ^ "+" else dots

let selected_places ?places net =
  let all = Array.to_list (Net.places net) in
  match places with
  | None -> all
  | Some names ->
    List.filter_map (fun name -> Net.find_place net name) names
    |> fun found ->
    if found = [] then all else found

let render_state_rows ?places net marking ~highlight =
  let rows = selected_places ?places net in
  let width =
    List.fold_left (fun acc p -> max acc (String.length p.Net.p_name)) 4 rows
  in
  List.map
    (fun p ->
      let count = Marking.get marking p.Net.p_id in
      let mark =
        match List.assoc_opt p.Net.p_id highlight with
        | Some `Out -> " <-"
        | Some `In -> " ->"
        | None -> ""
      in
      Printf.sprintf "  %-*s [%2d] %s%s" width p.Net.p_name count (gauge count)
        mark)
    rows

let render_state ?places net marking =
  String.concat "\n" (render_state_rows ?places net marking ~highlight:[]) ^ "\n"

let arc_list net arcs =
  String.concat ", "
    (List.map
       (fun { Net.a_place; a_weight } ->
         let name = (Net.place net a_place).Net.p_name in
         if a_weight = 1 then name else Printf.sprintf "%d x %s" a_weight name)
       arcs)

let frame_for ?places net marking d phase =
  let tr = Net.transition net d.Trace.d_transition in
  let name = tr.Net.t_name in
  let caption, arrow, highlight =
    match d.Trace.d_kind, phase with
    | Trace.Fire_start, Consume ->
      ( Printf.sprintf "%s takes %s" name (arc_list net tr.Net.t_inputs),
        Printf.sprintf "( %s ) ==> [ %s ]" (arc_list net tr.Net.t_inputs) name,
        List.map (fun a -> (a.Net.a_place, `Out)) tr.Net.t_inputs )
    | Trace.Fire_start, (Transit | Produce) ->
      ( Printf.sprintf "%s is firing" name,
        Printf.sprintf "[ %s ] (tokens in transit)" name,
        [] )
    | Trace.Fire_end, (Consume | Transit) ->
      ( Printf.sprintf "%s completes" name,
        Printf.sprintf "[ %s ] (about to release)" name,
        [] )
    | Trace.Fire_end, Produce ->
      ( Printf.sprintf "%s puts %s" name (arc_list net tr.Net.t_outputs),
        Printf.sprintf "[ %s ] ==> ( %s )" name (arc_list net tr.Net.t_outputs),
        List.map (fun a -> (a.Net.a_place, `In)) tr.Net.t_outputs )
  in
  let rows = render_state_rows ?places net marking ~highlight in
  let text =
    Printf.sprintf "t=%-10g %s\n%s\n%s\n" d.Trace.d_time caption arrow
      (String.concat "\n" rows)
  in
  (caption, text)

let check_header net (h : Trace.header) =
  let places_match =
    Array.length h.Trace.h_places = Net.num_places net
    && Array.for_all
         (fun name -> Option.is_some (Net.find_place net name))
         h.Trace.h_places
  in
  let transitions_match =
    Array.length h.Trace.h_transitions = Net.num_transitions net
    && Array.for_all
         (fun name -> Option.is_some (Net.find_transition net name))
         h.Trace.h_transitions
  in
  if not (places_match && transitions_match) then
    invalid_arg "Animator: trace does not match the net"

let sink ?places net emit =
  let marking = ref (Net.initial_marking net) in
  let step = ref 0 in
  {
    Trace.on_header =
      (fun h ->
        check_header net h;
        marking := Net.initial_marking net);
    on_delta =
      (fun d ->
        let marking = !marking in
        (* pre-state frame: tokens about to move *)
        let pre_phase =
          match d.Trace.d_kind with
          | Trace.Fire_start -> Consume
          | Trace.Fire_end -> Transit
        in
        let caption_pre, text_pre = frame_for ?places net marking d pre_phase in
        emit
          {
            f_time = d.Trace.d_time;
            f_step = !step;
            f_phase = pre_phase;
            f_caption = caption_pre;
            f_text = text_pre;
          };
        (* apply the delta *)
        List.iter (fun (p, dm) -> Marking.add marking p dm) d.Trace.d_marking;
        let post_phase =
          match d.Trace.d_kind with
          | Trace.Fire_start -> Transit
          | Trace.Fire_end -> Produce
        in
        let caption_post, text_post =
          frame_for ?places net marking d post_phase
        in
        emit
          {
            f_time = d.Trace.d_time;
            f_step = !step;
            f_phase = post_phase;
            f_caption = caption_post;
            f_text = text_post;
          };
        incr step);
    on_finish = (fun _ -> ());
  }

let frames ?places net trace =
  let out = ref [] in
  Trace.replay trace (sink ?places net (fun f -> out := f :: !out));
  List.rev !out

let play ?(delay_s = 0.0) oc frame_list =
  List.iter
    (fun f ->
      output_string oc f.f_text;
      output_string oc "----------------------------------------\n";
      flush oc;
      if delay_s > 0.0 then Unix.sleepf delay_s)
    frame_list
