(** The animator, as a textual visual discrete-event simulation.

    The original P-NUT animator "deliberately animates the flow of tokens
    over arcs in order to give the user time to understand the effect of
    state transitions" (Figure 6).  This ASCII substitution renders each
    trace event as a short sequence of frames: tokens leave the input
    places, travel over the arcs into the transition, and emerge onto the
    output places.  Frames can be played to a channel (optionally paced)
    or single-stepped.

    It is a {e visual discrete-event simulation}, not a true animation:
    the simulation clock jumps between frames exactly as the paper
    cautions. *)

type phase =
  | Consume  (** input tokens leave their places onto the arcs *)
  | Transit  (** tokens are inside the firing transition *)
  | Produce  (** output tokens arrive on the output places *)

type frame = {
  f_time : float;
  f_step : int;          (** index of the trace delta *)
  f_phase : phase;
  f_caption : string;    (** e.g. "Start_prefetch consumes Bus_free" *)
  f_text : string;       (** fully rendered frame *)
}

val sink :
  ?places:string list ->
  Pnut_core.Net.t ->
  (frame -> unit) ->
  Pnut_trace.Trace.sink
(** Streaming renderer: calls the callback with each frame as trace
    records arrive, holding only the current marking — suitable for
    animating an unbounded piped trace.  [places] restricts the state
    panel (default all).  [on_header] raises [Invalid_argument] if the
    trace was not produced from (a net isomorphic to) [net] —
    place/transition name tables must match. *)

val frames :
  ?places:string list ->
  Pnut_core.Net.t ->
  Pnut_trace.Trace.t ->
  frame list
(** Renders the whole trace; [places] restricts the state panel (default
    all).  Raises [Invalid_argument] if the trace was not produced from
    (a net isomorphic to) [net] — place/transition name tables must
    match. *)

val render_state :
  ?places:string list -> Pnut_core.Net.t -> Pnut_core.Marking.t -> string
(** Just the state panel: one row per place with a token gauge. *)

val play : ?delay_s:float -> out_channel -> frame list -> unit
(** Prints frames in order, separated by rules; [delay_s] paces the
    playback (default 0: as fast as possible, for tests and piping). *)
