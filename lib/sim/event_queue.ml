type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Filler for unused slots so they never retain a popped payload.  The
   value is an immediate int masquerading as an entry; it is only ever
   stored, never read: every heap access is bounds-checked against
   [size]. *)
let blank : unit -> 'a entry = fun () -> Obj.magic 0

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let before a b = a.time < b.time || (Float.equal a.time b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let capacity = max 16 (2 * q.size) in
    let bigger = Array.make capacity (blank ()) in
    Array.blit q.heap 0 bigger 0 q.size;
    q.heap <- bigger
  end;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* blank the vacated slot: a long-lived queue must not pin the
         moved entry (or, on the last pop, the popped payload) *)
      q.heap.(q.size) <- blank ();
      sift_down q 0
    end
    else q.heap.(0) <- blank ();
    Some (top.time, top.payload)
  end

let to_sorted_list q =
  let entries = Array.sub q.heap 0 q.size in
  Array.sort (fun a b -> if before a b then -1 else 1) entries;
  Array.to_list (Array.map (fun e -> (e.time, e.payload)) entries)

let clear q =
  q.heap <- [||];
  q.size <- 0;
  q.next_seq <- 0
