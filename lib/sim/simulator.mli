(** The P-NUT simulation engine.

    "The P-NUT simulator is a simple simulation engine which pushes tokens
    around a Timed Petri Net. [...] The simulator simply generates a
    trace."  Analysis is left to downstream tools consuming the trace
    through a {!Pnut_trace.Trace.sink}.

    {2 Semantics}

    - A transition is {e enabled} when every input place holds at least
      the arc weight, every inhibitor place holds fewer tokens than the
      arc weight, and its predicate (if any) evaluates to true.
    - {e Enabling time}: when a transition becomes enabled its enabling
      delay is sampled; it becomes {e fireable} after remaining
      continuously enabled for that long.  Disabling or firing resets the
      clock (restart policy, single enabling clock per transition).
    - {e Firing time}: at fire-start the input tokens are consumed
      (a [Fire_start] delta); at fire-end, after the sampled firing
      duration, output tokens are produced and the action runs (a
      [Fire_end] delta).  During firing, tokens are on neither side, as in
      the paper.  Zero firing time produces both deltas at the same
      instant.  A transition may accumulate several in-flight firings.
    - {e Conflicts} among simultaneously fireable transitions are resolved
      probabilistically: each is chosen with probability proportional to
      its relative firing frequency among the currently fireable set,
      recomputed after every firing (the dynamic semantics of [WPS86]).
    - Actions may assign scalars ([x = e]) and table slots
      ([tbl[i] = e]); both are recorded in the trace ([tbl[i]] appears as
      a variable named ["tbl[3]"]).

    A per-instant firing cap (default [10_000]) turns zero-delay livelocks
    into a [Sim_error] instead of a hang. *)

type t
(** Simulation state: net, marking, environment, clock, future events. *)

(** {2 Structured errors}

    Every way a simulation can abort carries its context: the clock, the
    offending transition or place, and the limit that was breached. *)

type error =
  | Livelock of { clock : float; firings : int }
      (** more than [max_instant_firings] firings at one instant *)
  | Capacity_violation of {
      place : string;
      tokens : int;
      capacity : int;
      transition : string;  (** the transition whose firing overflowed *)
      clock : float;
    }
  | Action_error of { transition : string; clock : float; message : string }
      (** a transition action failed (unbound table, index out of bounds) *)
  | Watchdog of { wall_seconds : float; clock : float; started : int }
      (** the optional wall-clock budget of {!run} was exhausted *)
  | Fault_error of string
      (** a fault specification refers to unknown names or is malformed *)
  | Restore_error of string
      (** a checkpoint does not match the net it is restored into *)

exception Sim_error of error

val error_message : error -> string
(** One-line human-readable rendering of an {!error}. *)

(** {2 Fault-injection hooks}

    Hooks let an external layer (see [Pnut_fault]) perturb a running
    simulation without the engine knowing about fault specs: vetoing
    firings (a stuck stage), rescaling sampled delays (memory jitter),
    and announcing future instants at which a veto may lapse so the
    clock advances across fault windows instead of declaring the net
    dead. *)

type delay_kind = Enabling_delay | Firing_delay

type hooks = {
  hk_veto : clock:float -> Pnut_core.Net.transition -> bool;
      (** [true] forbids the transition from starting a firing now;
          its enabling clock keeps running. *)
  hk_delay :
    clock:float -> kind:delay_kind -> Pnut_core.Net.transition ->
    float -> float;
      (** Transforms a freshly sampled delay; the result is clamped to
          be non-negative. *)
  hk_wakeup : clock:float -> float option;
      (** Earliest future instant at which a veto verdict may change
          (e.g. a fault window boundary); [None] when no such instant
          exists.  Ignored unless strictly greater than [clock]. *)
}

val no_hooks : hooks
(** Identity hooks: never veto, never rescale, never wake. *)

val create :
  ?seed:int ->
  ?prng:Pnut_core.Prng.t ->
  ?sink:Pnut_trace.Trace.sink ->
  ?max_instant_firings:int ->
  ?check_capacities:bool ->
  ?hooks:hooks ->
  Pnut_core.Net.t -> t
(** Builds the initial state and emits the trace header to [sink].
    [prng] overrides [seed] (default seed 1).  With [check_capacities]
    (default false), exceeding a place's declared capacity raises
    [Sim_error] naming the place and the culprit transition — capacity
    declarations are otherwise documentation checked only by static and
    reachability analyses. *)

val net : t -> Pnut_core.Net.t
val clock : t -> float
val marking : t -> Pnut_core.Marking.t
(** A copy of the current marking. *)

val tokens : t -> string -> int
(** Current token count of a place by name. Raises [Not_found]. *)

val env : t -> Pnut_core.Env.t
(** The live environment (mutating it affects the run). *)

val in_flight : t -> int array
(** Current number of unfinished firings per transition id. *)

val events_started : t -> int
val events_finished : t -> int

val last_activity : t -> float
(** Clock value of the most recent firing start or completion (the
    initial clock if nothing fired yet).  After a [Dead] outcome this is
    when the net actually died, even though the final clock was
    fast-forwarded to the horizon. *)

val perturb_tokens : t -> Pnut_core.Net.place_id -> int -> int
(** [perturb_tokens st p delta] force-adds [delta] tokens to place [p]
    (negative to drop), clamping at zero, and re-evaluates the
    enabledness of the transitions reading [p].  Returns the delta
    actually applied.  This is the fault-injection primitive behind
    [Drop_tokens]/[Spurious_tokens]; the change happens outside any
    transition so it is {e not} visible as a trace delta. *)

(** One micro-step of the engine. *)
type step_result =
  | Fired of Pnut_core.Net.transition_id
      (** a firing started (and, for zero firing time, also ended) *)
  | Completed of Pnut_core.Net.transition_id
      (** an in-flight firing ended *)
  | Advanced of float  (** clock moved to the given time; nothing fired *)
  | Quiescent
      (** no enabled transition and no pending event: the net is dead *)

val step : t -> step_result

val fireable_transitions : t -> Pnut_core.Net.transition_id list
(** Transitions that could start firing at the current instant (enabled
    with their enabling delay elapsed). *)

val fire_transition : t -> Pnut_core.Net.transition_id -> unit
(** Manually resolve the current conflict: start firing this specific
    transition instead of drawing one probabilistically (interactive
    state-space exploration).  Raises [Invalid_argument] if it is not
    currently fireable. *)

(** Why a run stopped. *)
type stop_reason =
  | Horizon     (** the [until] time was reached *)
  | Dead        (** quiescence: deadlock or terminated net *)
  | Event_limit (** [max_events] firings started *)
  | Budget_exhausted of Pnut_exec.Supervisor.reason
      (** a [?budget] limit tripped; the run stopped gracefully at the
          current clock with a well-formed partial trace *)

type outcome = {
  stop : stop_reason;
  final_clock : float;
  started : int;
  finished : int;
}

val run :
  ?until:float -> ?max_events:int -> ?wall_limit_s:float ->
  ?budget:Pnut_exec.Budget.t -> ?finish:bool ->
  t -> outcome
(** Runs until the horizon, the event limit, or quiescence; emits
    [on_finish] to the sink.  When the horizon is hit, the final clock is
    exactly [until] (in-flight events beyond it stay unprocessed).  At
    least one of [until], [max_events] and [budget.max_events] must be
    given.

    [budget] supervises the run: wall, heap and cancellation are polled
    on the 256-step watchdog slot, the event cap per step.  A tripped
    limit does not raise — the run stops at the current clock, emits
    [on_finish] (so the partial trace is well-formed) and returns
    [stop = Budget_exhausted _].  A budgeted run that completes is
    byte-identical to an unbudgeted one.

    [wall_limit_s] is the historical watchdog, kept as a deprecated
    alias for [budget] with only a wall limit — except that it
    {e raises} [Sim_error (Watchdog _)] instead of degrading.  New code
    should pass a budget.

    [finish] (default [true]) controls whether [on_finish] is emitted
    when this call stops at its horizon; pass [false] to pause a run
    that will be continued with a later horizon (segmented runs,
    fault-pulse injection, checkpointing). *)

val run_supervised :
  ?until:float -> ?max_events:int -> ?budget:Pnut_exec.Budget.t ->
  ?finish:bool -> t -> outcome Pnut_exec.Supervisor.outcome
(** {!run}, wrapped in a structured verdict: [Complete outcome] when the
    horizon/event-limit/quiescence was reached, [Degraded _] (carrying
    the same partial outcome plus a progress snapshot) when the budget
    tripped. *)

val simulate :
  ?seed:int ->
  ?prng:Pnut_core.Prng.t ->
  ?max_instant_firings:int ->
  ?until:float ->
  ?max_events:int ->
  ?sink:Pnut_trace.Trace.sink ->
  Pnut_core.Net.t -> outcome
(** [create] + [run] in one call. *)

val trace :
  ?seed:int ->
  ?until:float ->
  ?max_events:int ->
  Pnut_core.Net.t -> Pnut_trace.Trace.t * outcome
(** Convenience: simulate into an in-memory trace. *)

val replications :
  ?seed:int ->
  ?jobs:int ->
  runs:int ->
  ?until:float ->
  ?max_events:int ->
  Pnut_core.Net.t ->
  (int -> Pnut_trace.Trace.sink) -> outcome list
(** Independent replications: run [runs] experiments with split random
    streams; the callback provides a sink per run index (the paper's
    "one or more simulation experiments").

    Runs are distributed over [jobs] worker domains through
    {!Pnut_exec.Pool} ([0]/absent: honour [PNUT_JOBS], else auto-detect;
    [1]: sequential).  Results are bit-identical whatever [jobs] is:
    every run's random stream is split from the master seed up front in
    run order, and all sinks are created by [make_sink] in the calling
    domain, in run order, before any worker starts.  Sinks themselves
    must tolerate being {e written} from a worker domain; sinks that
    mutate shared state (collectors, accumulators) are safe only because
    each run owns its own sink. *)

(** {2 Deadlock diagnosis}

    When a run ends [Dead], the quiescence has a concrete, explainable
    cause: every transition is blocked by specific places, inhibitors,
    predicates or fault vetoes.  [diagnose] computes that explanation
    from the current state. *)

type block_reason =
  | Missing_tokens of { place : string; have : int; need : int }
  | Inhibited of { place : string; have : int; limit : int }
  | Predicate_false of string  (** the predicate in concrete syntax *)
  | Awaiting_enabling of { ready_at : float }
      (** enabled but its enabling delay has not elapsed *)
  | Vetoed_by_fault

type transition_diagnosis = {
  td_name : string;
  td_reasons : block_reason list;
      (** empty means the transition is fireable right now *)
}

type diagnosis = {
  dg_clock : float;
  dg_last_activity : float;
  dg_marking : (string * int) list;  (** places with a nonzero count *)
  dg_transitions : transition_diagnosis list;
}

val diagnose : t -> diagnosis
(** Never mutates the state (predicates are evaluated against a copy of
    the random stream). *)

val pp_diagnosis : Format.formatter -> diagnosis -> unit

(** {2 Checkpoint / restore} *)

val checkpoint : t -> Checkpoint.t
(** Snapshot of the full engine state (marking, environment, clock,
    random stream, enabling deadlines, in-flight firings, pending
    events, counters).  The trace sink is {e not} part of the snapshot;
    supply a fresh one on restore. *)

val restore :
  ?sink:Pnut_trace.Trace.sink ->
  ?max_instant_firings:int ->
  ?check_capacities:bool ->
  ?hooks:hooks ->
  Pnut_core.Net.t -> Checkpoint.t -> t
(** Rebuilds a simulator mid-flight from a checkpoint taken on the same
    net.  Continuing the restored state produces exactly the same event
    sequence as the uninterrupted run (the header is re-emitted to the
    new [sink]; deltas then continue from the checkpointed instant).
    Raises [Sim_error (Restore_error _)] if the checkpoint does not
    match the net (name, place or transition count). *)
