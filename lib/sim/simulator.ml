(* The optimized simulation engine.

   The per-event critical path scales with the *locality* of a firing —
   how many transitions share places with it — not with the size of the
   net:

   - Enabling state is incremental.  [refresh_after] visits only the
     transitions reading a touched place (plus the predicated ones when
     the environment changed), deduplicated through a generation-stamped
     scratch array instead of a fresh per-event boolean array.
   - The fireable set is maintained, not recomputed.  Transitions whose
     enabling deadline is at or before the clock sit in a sorted dense
     [ready] array; strictly-future deadlines sit in an indexed min-heap
     ([Dheap]) keyed by deadline, so disabling a transition retracts its
     deadline in O(log n) and [next_instant] reads the earliest deadline
     in O(1) instead of sweeping every transition.
   - Predicates, delay distributions and actions are compiled once at
     [create]/[restore] into closures over pre-resolved environment
     cells ([Expr.compile], [Net.compile_duration]); the hot loop never
     walks an AST or looks up a name.
   - Trace deltas for consumed/produced tokens are precomputed per
     transition ([merge_changes] of constant arc lists).

   Everything observable — trace deltas, random draw order, checkpoints,
   errors, outcomes — is bit-for-bit identical to the straightforward
   engine preserved in [Reference]; the differential test suite holds
   the two against each other on random nets. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Prng = Pnut_core.Prng
module Kernel = Pnut_core.Kernel
module Trace = Pnut_trace.Trace

type error =
  | Livelock of { clock : float; firings : int }
  | Capacity_violation of {
      place : string;
      tokens : int;
      capacity : int;
      transition : string;
      clock : float;
    }
  | Action_error of { transition : string; clock : float; message : string }
  | Watchdog of { wall_seconds : float; clock : float; started : int }
  | Fault_error of string
  | Restore_error of string

exception Sim_error of error

let error_message = function
  | Livelock { clock; firings } ->
    Printf.sprintf
      "livelock: more than %d firings at time %g (zero-delay loop?)" firings
      clock
  | Capacity_violation { place; tokens; capacity; transition; clock } ->
    Printf.sprintf
      "capacity violation: place %s holds %d tokens (capacity %d) after %s \
       fired at t=%g"
      place tokens capacity transition clock
  | Action_error { transition; clock; message } ->
    Printf.sprintf "action of %s failed at t=%g: %s" transition clock message
  | Watchdog { wall_seconds; clock; started } ->
    Printf.sprintf
      "watchdog: simulation exceeded %g s of wall clock at t=%g (%d events \
       started)"
      wall_seconds clock started
  | Fault_error msg -> Printf.sprintf "fault specification error: %s" msg
  | Restore_error msg -> Printf.sprintf "checkpoint restore error: %s" msg

let sim_error e = raise (Sim_error e)

type delay_kind = Enabling_delay | Firing_delay

type hooks = {
  hk_veto : clock:float -> Net.transition -> bool;
  hk_delay : clock:float -> kind:delay_kind -> Net.transition -> float -> float;
  hk_wakeup : clock:float -> float option;
}

let no_hooks =
  {
    hk_veto = (fun ~clock:_ _ -> false);
    hk_delay = (fun ~clock:_ ~kind:_ _ d -> d);
    hk_wakeup = (fun ~clock:_ -> None);
  }

type pending = {
  pe_transition : Net.transition_id;
  pe_firing : int;
}

type t = {
  net : Net.t;
  prng : Prng.t;
  sink : Trace.sink;
  max_instant_firings : int;
  check_capacities : bool;
  hooks : hooks;
  marking : Marking.t;
  env : Env.t;
  mutable clock : float;
  queue : pending Event_queue.t;
  (* the net's transitions compiled against this instance's environment
     and random stream by the shared semantics kernel *)
  ctrans : Kernel.compiled array;
  (* enabling bookkeeping: a transition with a deadline ([active]) is
     either in [ready] (deadline at or before the clock, so it may fire
     now) or in [heap] (strictly future deadline) — never both *)
  active : bool array;
  deadline : float array;  (* meaningful only where [active] *)
  heap : Dheap.t;
  ready : int array;       (* ascending ids, dense prefix of length ready_n *)
  mutable ready_n : int;
  in_flight : int array;
  (* incremental-refresh indexes: which transitions read each place
     (input or inhibitor arcs), and which carry predicates (affected by
     any environment change) *)
  readers : int array array;  (* per place, ascending *)
  predicated : int array;     (* ascending *)
  (* reusable scratch: refresh_after's touched set (deduplicated by
     generation stamp, no per-event allocation) and the veto-filtered
     selection of one step *)
  touched_stamp : int array;
  touched : int array;
  mutable touched_n : int;
  mutable generation : int;
  sel : int array;
  mutable next_firing_id : int;
  mutable started : int;
  mutable finished : int;
  mutable instant_firings : int;  (* firings at the current clock value *)
  mutable last_activity : float;  (* clock of the latest start/completion *)
  mutable finished_emitted : bool;
}

let net st = st.net
let clock st = st.clock
let marking st = Marking.copy st.marking
let env st = st.env
let in_flight st = Array.copy st.in_flight
let events_started st = st.started
let events_finished st = st.finished
let last_activity st = st.last_activity

let tokens st name = Marking.get st.marking (Net.place_id st.net name)

(* -- the ready set (sorted dense array of fire-ready transition ids) --

   Kept in ascending id order so that iterating it enumerates candidates
   exactly as the full O(T) scan of the straightforward engine does;
   conflict resolution then walks the same weighted list and draws the
   same random number.  The set is the handful of transitions fireable
   at one instant, so linear insertion is cheap. *)

let ready_add st tid =
  let a = st.ready in
  let i = ref st.ready_n in
  while !i > 0 && a.(!i - 1) > tid do
    a.(!i) <- a.(!i - 1);
    decr i
  done;
  a.(!i) <- tid;
  st.ready_n <- st.ready_n + 1

let ready_remove st tid =
  let a = st.ready in
  let n = st.ready_n in
  let i = ref 0 in
  while a.(!i) <> tid do
    incr i
  done;
  while !i < n - 1 do
    a.(!i) <- a.(!i + 1);
    incr i
  done;
  st.ready_n <- n - 1

(* Retract a transition's enabling deadline, wherever it lives. *)
let deactivate st tid =
  st.active.(tid) <- false;
  if Dheap.mem st.heap tid then Dheap.remove st.heap tid
  else ready_remove st tid

(* Re-evaluate enabledness and maintain the enabling deadline for one
   transition: newly enabled transitions sample their enabling delay,
   newly disabled ones lose their deadline, continuously enabled ones
   keep it. *)
let refresh_one st (c : Kernel.compiled) =
  let id = c.c_id in
  let is_enabled = Kernel.compiled_enabled c st.marking in
  if st.active.(id) then begin
    if not is_enabled then deactivate st id
  end
  else if is_enabled then begin
    let d = c.c_enabling () in
    let d =
      Float.max 0.0
        (st.hooks.hk_delay ~clock:st.clock ~kind:Enabling_delay c.c_tr d)
    in
    let dl = st.clock +. d in
    st.active.(id) <- true;
    st.deadline.(id) <- dl;
    if dl <= st.clock then ready_add st id else Dheap.insert st.heap id dl
  end

let refresh_enabling st = Array.iter (refresh_one st) st.ctrans

let touch st tid =
  if st.touched_stamp.(tid) <> st.generation then begin
    st.touched_stamp.(tid) <- st.generation;
    st.touched.(st.touched_n) <- tid;
    st.touched_n <- st.touched_n + 1
  end

(* Incremental refresh after a firing touched only [places] (and, when
   [env_changed], the model variables): only transitions reading a
   touched place or carrying a predicate can change enabledness.
   Processed in ascending id order — the same order as a full scan — so
   the random enabling-delay draws are identical to a full refresh and
   traces are bit-for-bit reproducible either way. *)
let refresh_after st ~places ~env_changed =
  st.generation <- st.generation + 1;
  st.touched_n <- 0;
  Array.iter
    (fun p -> Array.iter (fun tid -> touch st tid) st.readers.(p))
    places;
  if env_changed then Array.iter (fun tid -> touch st tid) st.predicated;
  let a = st.touched in
  let n = st.touched_n in
  (* insertion sort: the touched set is small and nearly sorted *)
  for i = 1 to n - 1 do
    let v = a.(i) in
    let j = ref i in
    while !j > 0 && a.(!j - 1) > v do
      a.(!j) <- a.(!j - 1);
      decr j
    done;
    a.(!j) <- v
  done;
  for k = 0 to n - 1 do
    refresh_one st st.ctrans.(a.(k))
  done

let make ~prng ~sink ~max_instant_firings ~check_capacities ~hooks ~marking
    ~env ~clock ~queue net =
  let nt = Net.num_transitions net in
  let kernel = Kernel.of_net net in
  {
    net;
    prng;
    sink;
    max_instant_firings;
    check_capacities;
    hooks;
    marking;
    env;
    clock;
    queue;
    ctrans = Kernel.compile ~prng env kernel;
    active = Array.make nt false;
    deadline = Array.make nt 0.0;
    heap = Dheap.create nt;
    ready = Array.make (max nt 1) 0;
    ready_n = 0;
    in_flight = Array.make nt 0;
    readers = Kernel.readers kernel;
    predicated = Kernel.predicated kernel;
    touched_stamp = Array.make nt 0;
    touched = Array.make (max nt 1) 0;
    touched_n = 0;
    generation = 0;
    sel = Array.make (max nt 1) 0;
    next_firing_id = 0;
    started = 0;
    finished = 0;
    instant_firings = 0;
    last_activity = 0.0;
    finished_emitted = false;
  }

let create ?(seed = 1) ?prng ?(sink = Trace.null_sink)
    ?(max_instant_firings = 10_000) ?(check_capacities = false)
    ?(hooks = no_hooks) net =
  let prng = match prng with Some g -> g | None -> Prng.create seed in
  let st =
    make ~prng ~sink ~max_instant_firings ~check_capacities ~hooks
      ~marking:(Net.initial_marking net) ~env:(Net.initial_env net) ~clock:0.0
      ~queue:(Event_queue.create ()) net
  in
  sink.Trace.on_header (Trace.header_of_net net);
  refresh_enabling st;
  st

(* Transitions that are enabled, past their enabling deadline, and not
   vetoed by an active fault (the ready set minus vetoes). *)
let fireable st =
  let acc = ref [] in
  for k = st.ready_n - 1 downto 0 do
    let c = st.ctrans.(st.ready.(k)) in
    if not (st.hooks.hk_veto ~clock:st.clock c.c_tr) then acc := c.c_tr :: !acc
  done;
  !acc

(* Fill [sel] with the veto-filtered ready ids (ascending); returns how
   many.  The allocation-free spine of [step] and [run]. *)
let collect_fireable st =
  let m = ref 0 in
  for k = 0 to st.ready_n - 1 do
    let tid = st.ready.(k) in
    if not (st.hooks.hk_veto ~clock:st.clock st.ctrans.(tid).c_tr) then begin
      st.sel.(!m) <- tid;
      incr m
    end
  done;
  !m

(* Weighted conflict resolution over sel[0..m-1], replicating
   [Prng.choose_weighted] on the same stream: total weight first, one
   unit draw, cumulative walk, last element as the rounding fallback.
   Frequencies are validated positive by the net builder, so the
   argument checks of [choose_weighted] can never fire here. *)
let select_weighted st m =
  let total = ref 0.0 in
  for k = 0 to m - 1 do
    total := !total +. st.ctrans.(st.sel.(k)).c_frequency
  done;
  let target = Prng.float st.prng !total in
  let rec pick acc k =
    if k >= m - 1 then st.sel.(m - 1)
    else
      let acc = acc +. st.ctrans.(st.sel.(k)).c_frequency in
      if target < acc then st.sel.(k) else pick acc (k + 1)
  in
  pick 0.0 0

(* Run a compiled action, collecting every assignment for the trace
   delta.  Failures surface as structured [Action_error]s naming the
   transition. *)
let run_action st (c : Kernel.compiled) =
  if not c.c_has_action then []
  else begin
    let changes = ref [] in
    (try Array.iter (fun f -> changes := f () :: !changes) c.c_action
     with Kernel.Action_failed message ->
       sim_error
         (Action_error
            { transition = c.c_tr.Net.t_name; clock = st.clock; message }));
    List.rev !changes
  end

let emit_delta st kind tr firing marking_changes env_changes =
  st.sink.Trace.on_delta
    {
      Trace.d_time = st.clock;
      d_kind = kind;
      d_transition = tr.Net.t_id;
      d_firing = firing;
      d_marking = marking_changes;
      d_env = env_changes;
    }

(* Capacity declarations are documentation by default; with
   [check_capacities] the simulator turns an overflow into a loud
   modeling-bug report at the moment it happens. *)
let enforce_capacities st tr =
  if st.check_capacities then
    List.iter
      (fun { Net.a_place; _ } ->
        let p = Net.place st.net a_place in
        match p.Net.p_capacity with
        | Some cap when Marking.get st.marking a_place > cap ->
          sim_error
            (Capacity_violation
               {
                 place = p.Net.p_name;
                 tokens = Marking.get st.marking a_place;
                 capacity = cap;
                 transition = tr.Net.t_name;
                 clock = st.clock;
               })
        | Some _ | None -> ())
      tr.Net.t_outputs

let complete_firing ?(zero = false) st (c : Kernel.compiled) firing =
  for k = 0 to Array.length c.c_out_place - 1 do
    Marking.add st.marking c.c_out_place.(k) c.c_out_weight.(k)
  done;
  enforce_capacities st c.c_tr;
  let env_changes = run_action st c in
  st.in_flight.(c.c_id) <- st.in_flight.(c.c_id) - 1;
  st.finished <- st.finished + 1;
  st.last_activity <- st.clock;
  emit_delta st Trace.Fire_end c.c_tr firing
    (if zero then c.c_net_delta else c.c_out_delta)
    env_changes;
  refresh_after st ~places:c.c_out_places ~env_changed:c.c_has_action

(* Starting a firing consumes the input tokens.  For a positive firing
   time this is observable (tokens are on neither side while the
   transition fires) so the Fire_start delta reports the consumption; a
   zero firing time is atomic in the paper's semantics, so the Fire_start
   delta is empty and the paired Fire_end delta carries the net marking
   change — no intermediate trace state ever violates invariants such as
   Bus_free + Bus_busy = 1. *)
let start_firing st (c : Kernel.compiled) =
  (* the transition is fireable, hence token-enabled: consume without
     the redundant recheck of [Net.consume] *)
  for k = 0 to Array.length c.c_in_place - 1 do
    Marking.add st.marking c.c_in_place.(k) (-c.c_in_weight.(k))
  done;
  let firing = st.next_firing_id in
  st.next_firing_id <- st.next_firing_id + 1;
  st.started <- st.started + 1;
  st.in_flight.(c.c_id) <- st.in_flight.(c.c_id) + 1;
  st.last_activity <- st.clock;
  (* The fired transition's own enabling clock restarts. *)
  deactivate st c.c_id;
  let duration = c.c_firing () in
  let duration =
    Float.max 0.0
      (st.hooks.hk_delay ~clock:st.clock ~kind:Firing_delay c.c_tr duration)
  in
  if duration <= 0.0 then begin
    emit_delta st Trace.Fire_start c.c_tr firing [] [];
    refresh_after st ~places:c.c_in_places ~env_changed:false;
    complete_firing ~zero:true st c firing
  end
  else begin
    emit_delta st Trace.Fire_start c.c_tr firing c.c_consumed [];
    Event_queue.push st.queue (st.clock +. duration)
      { pe_transition = c.c_id; pe_firing = firing };
    refresh_after st ~places:c.c_in_places ~env_changed:false
  end;
  c.c_id

type step_result =
  | Fired of Net.transition_id
  | Completed of Net.transition_id
  | Advanced of float
  | Quiescent

(* Earliest instant at which something can happen after the current one:
   the next scheduled fire-end, the earliest pending enabling deadline
   (the heap holds exactly the strictly-future ones), or a fault-window
   boundary announced by the hooks.  O(1). *)
let next_instant st =
  let best = ref infinity in
  let found = ref false in
  (match Event_queue.peek_time st.queue with
  | Some t ->
    found := true;
    if t < !best then best := t
  | None -> ());
  (match st.hooks.hk_wakeup ~clock:st.clock with
  | Some t when t > st.clock ->
    found := true;
    if t < !best then best := t
  | Some _ | None -> ());
  if not (Dheap.is_empty st.heap) then begin
    found := true;
    let d = Dheap.min_key st.heap in
    if d < !best then best := d
  end;
  if !found then Some !best else None

(* Move the clock and promote every deadline that has come due from the
   heap into the ready set. *)
let advance st t =
  st.clock <- t;
  st.instant_firings <- 0;
  while (not (Dheap.is_empty st.heap)) && Dheap.min_key st.heap <= t do
    ready_add st (Dheap.pop_min st.heap)
  done

let fire_from_sel st m =
  if st.instant_firings >= st.max_instant_firings then
    sim_error (Livelock { clock = st.clock; firings = st.max_instant_firings });
  st.instant_firings <- st.instant_firings + 1;
  let chosen = select_weighted st m in
  start_firing st st.ctrans.(chosen)

let step st =
  let m = collect_fireable st in
  if m > 0 then Fired (fire_from_sel st m)
  else
    match Event_queue.peek_time st.queue with
    | Some time when Float.equal time st.clock ->
      let pe =
        match Event_queue.pop st.queue with
        | Some (_, pe) -> pe
        | None -> assert false
      in
      complete_firing st st.ctrans.(pe.pe_transition) pe.pe_firing;
      Completed pe.pe_transition
    | Some _ -> (
      (* head strictly in the future: advance the clock, leaving the
         entry in place *)
      match next_instant st with
      | Some t ->
        assert (t > st.clock);
        advance st t;
        Advanced t
      | None -> assert false)
    | None -> (
      match next_instant st with
      | Some t when t > st.clock ->
        advance st t;
        Advanced t
      | Some _ ->
        (* a deadline at the current instant with nothing fireable can
           only be a vetoed transition; with no other activity and no
           wakeup the net is stuck for good *)
        Quiescent
      | None -> Quiescent)

let fireable_transitions st = List.map (fun tr -> tr.Net.t_id) (fireable st)

let fire_transition st tid =
  let present =
    let rec mem k = k < st.ready_n && (st.ready.(k) = tid || mem (k + 1)) in
    mem 0
  in
  if present && not (st.hooks.hk_veto ~clock:st.clock st.ctrans.(tid).c_tr)
  then ignore (start_firing st st.ctrans.(tid) : Net.transition_id)
  else
    invalid_arg
      (Printf.sprintf "Simulator.fire_transition: %s is not fireable now"
         (Net.transition st.net tid).Net.t_name)

let perturb_tokens st p delta =
  let have = Marking.get st.marking p in
  let applied = if delta < 0 then -(min have (-delta)) else delta in
  if applied <> 0 then begin
    Marking.add st.marking p applied;
    refresh_after st ~places:[| p |] ~env_changed:false
  end;
  applied

type stop_reason =
  | Horizon
  | Dead
  | Event_limit
  | Budget_exhausted of Pnut_exec.Supervisor.reason

type outcome = {
  stop : stop_reason;
  final_clock : float;
  started : int;
  finished : int;
}

exception Budget_trip of Pnut_exec.Supervisor.reason

let run ?until ?max_events ?wall_limit_s ?budget ?(finish = true) (st : t) =
  if until = None && max_events = None
     && (match budget with
         | Some b -> b.Pnut_exec.Budget.max_events = None
         | None -> true)
  then invalid_arg "Simulator.run: needs a horizon or an event limit";
  let horizon = Option.value until ~default:infinity in
  let limit = Option.value max_events ~default:max_int in
  let monitor =
    Pnut_exec.Supervisor.start
      (Option.value budget ~default:Pnut_exec.Budget.none)
  in
  let monitored = Pnut_exec.Supervisor.active monitor in
  (* Fold the budget's event cap into the engine's own limit: the hot
     loop keeps a single comparison per event, and the stop site sorts
     out which cap was hit. *)
  let budget_events =
    Option.value (Pnut_exec.Supervisor.max_events monitor) ~default:max_int
  in
  let eff_limit = min limit budget_events in
  let emit_finish t = if finish then begin
    if not st.finished_emitted then begin
      st.finished_emitted <- true;
      st.sink.Trace.on_finish t
    end
  end in
  (* The watchdog costs one [Unix.gettimeofday] every 256 engine steps —
     cheap enough to leave armed on production runs.  Budget checks ride
     the same slot, so a budgeted run pays nothing extra per event. *)
  let wall_start =
    match wall_limit_s with Some _ -> Unix.gettimeofday () | None -> 0.0
  in
  let steps = ref 0 in
  let check_watchdog () =
    incr steps;
    if !steps land 255 = 0 then begin
      (match wall_limit_s with
      | Some limit_s ->
        if Unix.gettimeofday () -. wall_start > limit_s then
          sim_error
            (Watchdog
               { wall_seconds = limit_s; clock = st.clock;
                 started = st.started })
      | None -> ());
      if monitored then
        match Pnut_exec.Supervisor.check monitor with
        | Some reason -> raise_notrace (Budget_trip reason)
        | None -> ()
    end
  in
  let stop_budget reason =
    emit_finish st.clock;
    { stop = Budget_exhausted reason; final_clock = st.clock;
      started = st.started; finished = st.finished }
  in
  let rec loop () =
    check_watchdog ();
    if st.started >= eff_limit then begin
      if st.started >= limit then begin
        emit_finish st.clock;
        { stop = Event_limit; final_clock = st.clock; started = st.started;
          finished = st.finished }
      end
      else stop_budget (Pnut_exec.Supervisor.Events st.started)
    end
    else begin
      let m = collect_fireable st in
      if m > 0 then begin
        ignore (fire_from_sel st m : Net.transition_id);
        loop ()
      end
      else
        (* Peek whether the next instant would overshoot the horizon. *)
        match next_instant st with
        | Some t when t > horizon ->
          st.clock <- horizon;
          st.instant_firings <- 0;
          emit_finish horizon;
          { stop = Horizon; final_clock = horizon; started = st.started;
            finished = st.finished }
        | Some t -> (
          match Event_queue.peek_time st.queue with
          | Some time when Float.equal time st.clock ->
            let pe =
              match Event_queue.pop st.queue with
              | Some (_, pe) -> pe
              | None -> assert false
            in
            complete_firing st st.ctrans.(pe.pe_transition) pe.pe_firing;
            loop ()
          | _ ->
            assert (t > st.clock);
            advance st t;
            loop ())
        | None ->
          let final =
            if Float.is_finite horizon then horizon else st.clock
          in
          st.clock <- final;
          st.instant_firings <- 0;
          emit_finish final;
          { stop = Dead; final_clock = final; started = st.started;
            finished = st.finished }
    end
  in
  try loop () with Budget_trip reason -> stop_budget reason

let run_supervised ?until ?max_events ?budget ?finish (st : t) =
  let monitor =
    Pnut_exec.Supervisor.start
      (Option.value budget ~default:Pnut_exec.Budget.none)
  in
  let outcome = run ?until ?max_events ?budget ?finish st in
  match outcome.stop with
  | Budget_exhausted reason ->
    Pnut_exec.Supervisor.Degraded
      {
        reason;
        partial = outcome;
        progress =
          Pnut_exec.Supervisor.snapshot monitor ~visited:outcome.started
            ~frontier:0;
      }
  | Horizon | Dead | Event_limit -> Pnut_exec.Supervisor.Complete outcome

let simulate ?seed ?prng ?max_instant_firings ?until ?max_events ?sink net =
  let st = create ?seed ?prng ?sink ?max_instant_firings net in
  run ?until ?max_events st

let trace ?seed ?until ?max_events net =
  let sink, get = Trace.collector () in
  let outcome = simulate ?seed ?until ?max_events ~sink net in
  (get (), outcome)

let replications ?(seed = 1) ?jobs ~runs ?until ?max_events net make_sink =
  if runs <= 0 then invalid_arg "Simulator.replications: runs must be positive";
  let master = Prng.create seed in
  (* Split every stream up front, in run order: [Prng.split] mutates the
     master, so each run's stream is the same regardless of how the runs
     are later scheduled across workers. *)
  let streams = Array.init runs (fun _ -> Prng.split master) in
  (* Sinks are also created up front in the main domain, in run order —
     sink constructors routinely capture shared state (collectors,
     report accumulators) that must not be touched from workers. *)
  let sinks = Array.init runs make_sink in
  let outcomes =
    Pnut_exec.Pool.init ?jobs runs (fun i ->
        simulate ~prng:streams.(i) ?until ?max_events ~sink:sinks.(i) net)
  in
  Array.to_list outcomes

(* -- deadlock diagnosis -- *)

type block_reason =
  | Missing_tokens of { place : string; have : int; need : int }
  | Inhibited of { place : string; have : int; limit : int }
  | Predicate_false of string
  | Awaiting_enabling of { ready_at : float }
  | Vetoed_by_fault

type transition_diagnosis = {
  td_name : string;
  td_reasons : block_reason list;
}

type diagnosis = {
  dg_clock : float;
  dg_last_activity : float;
  dg_marking : (string * int) list;
  dg_transitions : transition_diagnosis list;
}

let diagnose st =
  let place_name p = (Net.place st.net p).Net.p_name in
  let diagnose_transition tr =
    let token_blocks =
      List.filter_map
        (fun { Net.a_place; a_weight } ->
          let have = Marking.get st.marking a_place in
          if have < a_weight then
            Some
              (Missing_tokens
                 { place = place_name a_place; have; need = a_weight })
          else None)
        tr.Net.t_inputs
      @ List.filter_map
          (fun { Net.a_place; a_weight } ->
            let have = Marking.get st.marking a_place in
            if have >= a_weight then
              Some
                (Inhibited { place = place_name a_place; have; limit = a_weight })
            else None)
          tr.Net.t_inhibitors
    in
    let predicate_blocks =
      match tr.Net.t_predicate with
      | Some p
        when token_blocks = []
             (* predicates may call irand: evaluate against a copy so
                diagnosis never perturbs the simulation stream *)
             && not (Expr.eval_bool ~prng:(Prng.copy st.prng) st.env p) ->
        [ Predicate_false (Expr.to_string p) ]
      | Some _ | None -> []
    in
    let timing_blocks =
      if token_blocks <> [] || predicate_blocks <> [] then []
      else if st.active.(tr.Net.t_id) then
        if st.deadline.(tr.Net.t_id) > st.clock then
          [ Awaiting_enabling { ready_at = st.deadline.(tr.Net.t_id) } ]
        else if st.hooks.hk_veto ~clock:st.clock tr then [ Vetoed_by_fault ]
        else []
      else []
    in
    { td_name = tr.Net.t_name;
      td_reasons = token_blocks @ predicate_blocks @ timing_blocks }
  in
  {
    dg_clock = st.clock;
    dg_last_activity = st.last_activity;
    dg_marking =
      Array.to_list (Net.places st.net)
      |> List.filter_map (fun p ->
             let n = Marking.get st.marking p.Net.p_id in
             if n > 0 then Some (p.Net.p_name, n) else None);
    dg_transitions =
      Array.to_list (Net.transitions st.net) |> List.map diagnose_transition;
  }

let pp_reason ppf = function
  | Missing_tokens { place; have; need } ->
    Format.fprintf ppf "input %s has %d token%s, needs %d" place have
      (if have = 1 then "" else "s")
      need
  | Inhibited { place; have; limit } ->
    Format.fprintf ppf "inhibitor %s holds %d (fires only below %d)" place
      have limit
  | Predicate_false p -> Format.fprintf ppf "predicate is false: %s" p
  | Awaiting_enabling { ready_at } ->
    Format.fprintf ppf "enabled, fireable at t=%g" ready_at
  | Vetoed_by_fault -> Format.fprintf ppf "vetoed by an injected fault"

let pp_diagnosis ppf d =
  Format.fprintf ppf "@[<v>deadlock diagnosis at t=%g (last event at t=%g)@,"
    d.dg_clock d.dg_last_activity;
  (match d.dg_marking with
  | [] -> Format.fprintf ppf "marking: empty (every place holds 0 tokens)@,"
  | m ->
    Format.fprintf ppf "marking: %s@,"
      (String.concat ", "
         (List.map (fun (p, n) -> Printf.sprintf "%s=%d" p n) m)));
  List.iter
    (fun td ->
      match td.td_reasons with
      | [] -> Format.fprintf ppf "  %s: fireable@," td.td_name
      | reasons ->
        Format.fprintf ppf "  %s: %a@," td.td_name
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
             pp_reason)
          reasons)
    d.dg_transitions;
  Format.fprintf ppf "@]"

(* -- checkpoint / restore -- *)

let checkpoint st =
  {
    Checkpoint.ck_net = Net.name st.net;
    ck_clock = st.clock;
    ck_prng = Prng.state st.prng;
    ck_marking = Marking.to_array st.marking;
    ck_deadlines =
      (let acc = ref [] in
       for tid = Array.length st.active - 1 downto 0 do
         if st.active.(tid) then acc := (tid, st.deadline.(tid)) :: !acc
       done;
       !acc);
    ck_in_flight =
      (let acc = ref [] in
       Array.iteri
         (fun tid n -> if n <> 0 then acc := (tid, n) :: !acc)
         st.in_flight;
       List.rev !acc);
    ck_pending =
      List.map
        (fun (time, pe) -> (time, pe.pe_transition, pe.pe_firing))
        (Event_queue.to_sorted_list st.queue);
    ck_variables = Env.bindings st.env;
    ck_tables = Env.tables st.env;
    ck_next_firing_id = st.next_firing_id;
    ck_started = st.started;
    ck_finished = st.finished;
    ck_instant_firings = st.instant_firings;
  }

let restore ?(sink = Trace.null_sink) ?(max_instant_firings = 10_000)
    ?(check_capacities = false) ?(hooks = no_hooks) net ck =
  let restore_error fmt =
    Printf.ksprintf (fun s -> sim_error (Restore_error s)) fmt
  in
  if Net.name net <> ck.Checkpoint.ck_net then
    restore_error "checkpoint is for net %S, not %S" ck.Checkpoint.ck_net
      (Net.name net);
  if Array.length ck.Checkpoint.ck_marking <> Net.num_places net then
    restore_error "checkpoint has %d places, net has %d"
      (Array.length ck.Checkpoint.ck_marking)
      (Net.num_places net);
  let check_tid what tid =
    if tid < 0 || tid >= Net.num_transitions net then
      restore_error "%s entry names transition id %d (net has %d)" what tid
        (Net.num_transitions net)
  in
  List.iter (fun (tid, _) -> check_tid "deadline" tid) ck.Checkpoint.ck_deadlines;
  List.iter (fun (tid, _) -> check_tid "inflight" tid) ck.Checkpoint.ck_in_flight;
  List.iter
    (fun (_, tid, _) -> check_tid "pending" tid)
    ck.Checkpoint.ck_pending;
  let marking =
    try Marking.of_array ck.Checkpoint.ck_marking
    with Invalid_argument msg -> restore_error "bad marking: %s" msg
  in
  let env =
    try
      Env.of_bindings ~tables:ck.Checkpoint.ck_tables
        ck.Checkpoint.ck_variables
    with Invalid_argument msg -> restore_error "bad environment: %s" msg
  in
  let queue = Event_queue.create () in
  List.iter
    (fun (time, tid, fid) ->
      Event_queue.push queue time { pe_transition = tid; pe_firing = fid })
    ck.Checkpoint.ck_pending;
  let st =
    make ~prng:(Prng.of_state ck.Checkpoint.ck_prng) ~sink
      ~max_instant_firings ~check_capacities ~hooks ~marking ~env
      ~clock:ck.Checkpoint.ck_clock ~queue net
  in
  st.next_firing_id <- ck.Checkpoint.ck_next_firing_id;
  st.started <- ck.Checkpoint.ck_started;
  st.finished <- ck.Checkpoint.ck_finished;
  st.instant_firings <- ck.Checkpoint.ck_instant_firings;
  st.last_activity <- ck.Checkpoint.ck_clock;
  List.iter (fun (tid, n) -> st.in_flight.(tid) <- n) ck.Checkpoint.ck_in_flight;
  (* The deadlines were captured live, so no [refresh_enabling] here:
     re-sampling enabling delays would fork the random stream and break
     the identical-suffix guarantee.  Deadlines at or before the
     restored clock go straight into the ready set; later ones into the
     heap. *)
  List.iter
    (fun (tid, t) ->
      if st.active.(tid) then deactivate st tid;
      st.active.(tid) <- true;
      st.deadline.(tid) <- t;
      if t <= st.clock then ready_add st tid else Dheap.insert st.heap tid t)
    ck.Checkpoint.ck_deadlines;
  sink.Trace.on_header (Trace.header_of_net net);
  st
