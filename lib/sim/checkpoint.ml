module Value = Pnut_core.Value

exception Parse_error of int * string

type t = {
  ck_net : string;
  ck_clock : float;
  ck_prng : int64;
  ck_marking : int array;
  ck_deadlines : (int * float) list;
  ck_in_flight : (int * int) list;
  ck_pending : (float * int * int) list;
  ck_variables : (string * Value.t) list;
  ck_tables : (string * Value.t array) list;
  ck_next_firing_id : int;
  ck_started : int;
  ck_finished : int;
  ck_instant_firings : int;
}

(* Floats are written in hexadecimal so the restored run continues from
   bit-identical times; [float_of_string] reads the notation back. *)
let float_str f = Printf.sprintf "%h" f

let to_string ck =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%%pnut-checkpoint 1";
  line "net %s" ck.ck_net;
  line "clock %s" (float_str ck.ck_clock);
  line "prng 0x%Lx" ck.ck_prng;
  line "counters %d %d %d %d" ck.ck_next_firing_id ck.ck_started
    ck.ck_finished ck.ck_instant_firings;
  line "marking %s"
    (String.concat " " (Array.to_list (Array.map string_of_int ck.ck_marking)));
  List.iter (fun (tid, d) -> line "deadline %d %s" tid (float_str d)) ck.ck_deadlines;
  List.iter (fun (tid, n) -> line "inflight %d %d" tid n) ck.ck_in_flight;
  List.iter
    (fun (time, tid, fid) -> line "pending %s %d %d" (float_str time) tid fid)
    ck.ck_pending;
  let value_tokens = function
    | Value.Int i -> [ "i"; string_of_int i ]
    | Value.Float f -> [ "f"; float_str f ]
    | Value.Bool v -> [ "b"; string_of_bool v ]
  in
  List.iter
    (fun (name, v) -> line "var %s %s" name (String.concat " " (value_tokens v)))
    ck.ck_variables;
  List.iter
    (fun (name, arr) ->
      line "table %s %s" name
        (String.concat " "
           (List.concat_map value_tokens (Array.to_list arr))))
    ck.ck_tables;
  line "end";
  Buffer.contents b

let of_string text =
  let fail ln fmt = Printf.ksprintf (fun s -> raise (Parse_error (ln, s))) fmt in
  let parse_float ln s =
    try float_of_string s with Failure _ -> fail ln "bad float %S" s
  in
  let parse_int ln s =
    try int_of_string s with Failure _ -> fail ln "bad integer %S" s
  in
  let rec parse_values ln acc = function
    | [] -> List.rev acc
    | "i" :: v :: rest -> parse_values ln (Value.Int (parse_int ln v) :: acc) rest
    | "f" :: v :: rest -> parse_values ln (Value.Float (parse_float ln v) :: acc) rest
    | "b" :: v :: rest ->
      let v =
        try bool_of_string v with Invalid_argument _ -> fail ln "bad bool %S" v
      in
      parse_values ln (Value.Bool v :: acc) rest
    | tok :: _ -> fail ln "bad value tag %S" tok
  in
  let net = ref None
  and clock = ref None
  and prng = ref None
  and marking = ref None
  and counters = ref None
  and deadlines = ref []
  and in_flight = ref []
  and pending = ref []
  and variables = ref []
  and tables = ref []
  and saw_end = ref false in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let line = String.trim raw in
      if line <> "" && not !saw_end then
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "%pnut-checkpoint"; "1" ] -> ()
        | "%pnut-checkpoint" :: v :: _ -> fail ln "unsupported version %s" v
        | [ "net"; name ] -> net := Some name
        | [ "clock"; f ] -> clock := Some (parse_float ln f)
        | [ "prng"; s ] ->
          prng := (try Some (Int64.of_string s) with Failure _ -> fail ln "bad prng state %S" s)
        | [ "counters"; a; b; c; d ] ->
          counters :=
            Some (parse_int ln a, parse_int ln b, parse_int ln c, parse_int ln d)
        | "marking" :: counts ->
          marking := Some (Array.of_list (List.map (parse_int ln) counts))
        | [ "deadline"; tid; d ] ->
          deadlines := (parse_int ln tid, parse_float ln d) :: !deadlines
        | [ "inflight"; tid; n ] ->
          in_flight := (parse_int ln tid, parse_int ln n) :: !in_flight
        | [ "pending"; time; tid; fid ] ->
          pending :=
            (parse_float ln time, parse_int ln tid, parse_int ln fid) :: !pending
        | [ "var"; name; tag; v ] -> (
          match parse_values ln [] [ tag; v ] with
          | [ v ] -> variables := (name, v) :: !variables
          | _ -> fail ln "bad variable line")
        | "table" :: name :: rest ->
          tables := (name, Array.of_list (parse_values ln [] rest)) :: !tables
        | [ "end" ] -> saw_end := true
        | keyword :: _ -> fail ln "unknown checkpoint line %S" keyword
        | [] -> ())
    lines;
  if not !saw_end then raise (Parse_error (List.length lines, "truncated checkpoint (no end line)"));
  let require what = function
    | Some v -> v
    | None -> raise (Parse_error (0, "missing " ^ what ^ " line"))
  in
  let next_firing_id, started, finished, instant_firings =
    require "counters" !counters
  in
  {
    ck_net = require "net" !net;
    ck_clock = require "clock" !clock;
    ck_prng = require "prng" !prng;
    ck_marking = require "marking" !marking;
    ck_deadlines = List.rev !deadlines;
    ck_in_flight = List.rev !in_flight;
    ck_pending = List.rev !pending;
    ck_variables = List.rev !variables;
    ck_tables = List.rev !tables;
    ck_next_firing_id = next_firing_id;
    ck_started = started;
    ck_finished = finished;
    ck_instant_firings = instant_firings;
  }

let save path ck =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ck))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
