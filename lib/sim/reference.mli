(** The pre-optimization simulation engine, frozen as a differential
    baseline.

    Semantically equivalent to {!Simulator} — same trace deltas, random
    draw order, checkpoints, errors and outcomes on the same seed — but
    implemented the straightforward way: every step rescans all
    transitions, [next_instant] sweeps every deadline, and predicates,
    delays and actions are interpreted AST walks.  The differential test
    suite runs both engines on random nets and asserts bit-identical
    results; [pnut sim --engine interpreted] exposes it for
    cross-checking in the field.

    All result types are re-exported from {!Simulator}; only the state
    type [t] is distinct. *)

type t

val create :
  ?seed:int ->
  ?prng:Pnut_core.Prng.t ->
  ?sink:Pnut_trace.Trace.sink ->
  ?max_instant_firings:int ->
  ?check_capacities:bool ->
  ?hooks:Simulator.hooks ->
  Pnut_core.Net.t -> t

val net : t -> Pnut_core.Net.t
val clock : t -> float
val marking : t -> Pnut_core.Marking.t
val tokens : t -> string -> int
val env : t -> Pnut_core.Env.t
val in_flight : t -> int array
val events_started : t -> int
val events_finished : t -> int
val last_activity : t -> float

val perturb_tokens : t -> Pnut_core.Net.place_id -> int -> int

val step : t -> Simulator.step_result

val fireable_transitions : t -> Pnut_core.Net.transition_id list
val fire_transition : t -> Pnut_core.Net.transition_id -> unit

val run :
  ?until:float -> ?max_events:int -> ?wall_limit_s:float ->
  ?budget:Pnut_exec.Budget.t -> ?finish:bool ->
  t -> Simulator.outcome

val run_supervised :
  ?until:float -> ?max_events:int -> ?budget:Pnut_exec.Budget.t ->
  ?finish:bool -> t -> Simulator.outcome Pnut_exec.Supervisor.outcome

val simulate :
  ?seed:int ->
  ?prng:Pnut_core.Prng.t ->
  ?max_instant_firings:int ->
  ?until:float ->
  ?max_events:int ->
  ?sink:Pnut_trace.Trace.sink ->
  Pnut_core.Net.t -> Simulator.outcome

val diagnose : t -> Simulator.diagnosis

val checkpoint : t -> Checkpoint.t

val restore :
  ?sink:Pnut_trace.Trace.sink ->
  ?max_instant_firings:int ->
  ?check_capacities:bool ->
  ?hooks:Simulator.hooks ->
  Pnut_core.Net.t -> Checkpoint.t -> t
