(* Indexed binary min-heap over transition ids keyed by enabling
   deadline.  The [pos] array maps each id to its heap slot, so the
   engine can delete or move an arbitrary transition's deadline in
   O(log n) when an incremental refresh disables it — the operation the
   plain event queue cannot do.  Capacity is fixed at creation (one slot
   per transition), so no operation allocates.

   Ties between equal keys are broken arbitrarily: the engine only ever
   reads the minimum *key* (next_instant) or drains every entry up to a
   time bound, and re-sorts the drained ids itself. *)

type t = {
  mutable size : int;
  keys : float array;  (* keys.(i): key at heap slot i, i < size *)
  ids : int array;     (* ids.(i): transition at heap slot i *)
  pos : int array;     (* pos.(id): heap slot of id, or -1 *)
}

let create n =
  { size = 0; keys = Array.make (max n 1) 0.0; ids = Array.make (max n 1) (-1);
    pos = Array.make (max n 1) (-1) }

let is_empty h = h.size = 0

let mem h id = h.pos.(id) >= 0

let min_key h = if h.size = 0 then infinity else h.keys.(0)

let place h slot id key =
  h.keys.(slot) <- key;
  h.ids.(slot) <- id;
  h.pos.(id) <- slot

let rec sift_up h slot =
  if slot > 0 then begin
    let parent = (slot - 1) / 2 in
    if h.keys.(slot) < h.keys.(parent) then begin
      let k = h.keys.(slot) and id = h.ids.(slot) in
      place h slot h.ids.(parent) h.keys.(parent);
      place h parent id k;
      sift_up h parent
    end
  end

let rec sift_down h slot =
  let l = (2 * slot) + 1 in
  let r = l + 1 in
  let smallest = ref slot in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> slot then begin
    let s = !smallest in
    let k = h.keys.(slot) and id = h.ids.(slot) in
    place h slot h.ids.(s) h.keys.(s);
    place h s id k;
    sift_down h s
  end

let insert h id key =
  if h.pos.(id) >= 0 then invalid_arg "Dheap.insert: id already present";
  let slot = h.size in
  h.size <- slot + 1;
  place h slot id key;
  sift_up h slot

let remove h id =
  let slot = h.pos.(id) in
  if slot < 0 then invalid_arg "Dheap.remove: id not present";
  h.pos.(id) <- -1;
  h.size <- h.size - 1;
  let last = h.size in
  if slot <> last then begin
    place h slot h.ids.(last) h.keys.(last);
    sift_down h slot;
    sift_up h slot
  end

let pop_min h =
  if h.size = 0 then invalid_arg "Dheap.pop_min: empty heap";
  let id = h.ids.(0) in
  remove h id;
  id

let clear h =
  for slot = 0 to h.size - 1 do
    h.pos.(h.ids.(slot)) <- -1
  done;
  h.size <- 0
