module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Value = Pnut_core.Value

(* State-changing commands are logged so that [back] can rebuild the
   state by deterministic replay from the initial state (the random
   stream is seeded, so replay is exact). *)
type mutation =
  | M_fire of Net.transition_id
  | M_step
  | M_run of float

type session = {
  net : Net.t;
  seed : int;
  mutable sim : Simulator.t;
  mutable history : mutation list;  (* most recent first *)
}

let out_line oc fmt =
  Printf.ksprintf
    (fun s ->
      output_string oc s;
      output_char oc '\n';
      flush oc)
    fmt

let show session oc =
  let sim = session.sim in
  out_line oc "clock: %g" (Simulator.clock sim);
  let marking = Simulator.marking sim in
  Array.iter
    (fun p ->
      let count = Marking.get marking p.Net.p_id in
      if count > 0 then out_line oc "  %-32s %d" p.Net.p_name count)
    (Net.places session.net);
  let bindings = Env.bindings (Simulator.env sim) in
  if bindings <> [] then begin
    out_line oc "variables:";
    List.iter
      (fun (name, v) -> out_line oc "  %-32s %s" name (Value.to_string v))
      bindings
  end;
  let in_flight = Simulator.in_flight sim in
  Array.iteri
    (fun tid count ->
      if count > 0 then
        out_line oc "  firing: %s (x%d)"
          (Net.transition session.net tid).Net.t_name count)
    in_flight

let enabled session oc =
  match Simulator.fireable_transitions session.sim with
  | [] -> out_line oc "nothing fireable at t=%g" (Simulator.clock session.sim)
  | ready ->
    List.iter
      (fun tid ->
        out_line oc "  fireable: %s" (Net.transition session.net tid).Net.t_name)
      ready

let replay_mutation session m =
  match m with
  | M_fire tid -> Simulator.fire_transition session.sim tid
  | M_step -> ignore (Simulator.step session.sim : Simulator.step_result)
  | M_run d ->
    ignore
      (Simulator.run ~until:(Simulator.clock session.sim +. d) session.sim
        : Simulator.outcome)

let record session m = session.history <- m :: session.history

let fire session oc name =
  match Net.find_transition session.net name with
  | None -> out_line oc "error: no transition named %s" name
  | Some tr -> (
    match Simulator.fire_transition session.sim tr.Net.t_id with
    | () ->
      record session (M_fire tr.Net.t_id);
      out_line oc "fired %s at t=%g" name (Simulator.clock session.sim)
    | exception Invalid_argument msg -> out_line oc "error: %s" msg)

let mutation_label session = function
  | M_fire tid -> "fire " ^ (Net.transition session.net tid).Net.t_name
  | M_step -> "step"
  | M_run d -> Printf.sprintf "run %g" d

let back session oc =
  match session.history with
  | [] -> out_line oc "error: nothing to undo"
  | undone :: rest ->
    session.sim <- Simulator.create ~seed:session.seed session.net;
    session.history <- [];
    List.iter
      (fun m ->
        replay_mutation session m;
        record session m)
      (List.rev rest);
    out_line oc "undid %S; back at t=%g"
      (mutation_label session undone)
      (Simulator.clock session.sim)

let show_history session oc =
  match List.rev session.history with
  | [] -> out_line oc "(no state-changing commands yet)"
  | l -> List.iteri (fun i m -> out_line oc "%3d  %s" (i + 1) (mutation_label session m)) l

let step session oc =
  record session M_step;
  match Simulator.step session.sim with
  | Simulator.Fired tid ->
    out_line oc "fired %s at t=%g"
      (Net.transition session.net tid).Net.t_name
      (Simulator.clock session.sim)
  | Simulator.Completed tid ->
    out_line oc "completed %s at t=%g"
      (Net.transition session.net tid).Net.t_name
      (Simulator.clock session.sim)
  | Simulator.Advanced t -> out_line oc "time advances to %g" t
  | Simulator.Quiescent -> out_line oc "the net is dead (no activity possible)"

let run_for session oc duration =
  if duration <= 0.0 then out_line oc "error: run needs a positive duration"
  else begin
    record session (M_run duration);
    let target = Simulator.clock session.sim +. duration in
    let outcome = Simulator.run ~until:target session.sim in
    out_line oc "ran to t=%g (%d events started, %s)"
      outcome.Simulator.final_clock outcome.Simulator.started
      (match outcome.Simulator.stop with
      | Simulator.Horizon -> "still alive"
      | Simulator.Dead -> "net died"
      | Simulator.Event_limit -> "event limit"
      | Simulator.Budget_exhausted r -> Pnut_exec.Supervisor.reason_message r)
  end

let help oc =
  List.iter (out_line oc "%s")
    [
      "commands:";
      "  show         clock, marking, variables, in-flight firings";
      "  enabled      transitions fireable right now";
      "  fire NAME    fire a specific fireable transition";
      "  step         one engine micro-step (random resolution)";
      "  run T        simulate T more time units";
      "  back         undo the last state-changing command";
      "  history      list the state-changing commands so far";
      "  reset        back to the initial state";
      "  help         this summary";
      "  quit         leave";
    ]

let run ?(seed = 1) net ic oc =
  let session =
    { net; seed; sim = Simulator.create ~seed net; history = [] }
  in
  out_line oc "exploring %s (seed %d); 'help' lists commands" (Net.name net) seed;
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      (match words with
      | [] -> loop ()
      | cmd :: _ when String.length cmd > 0 && cmd.[0] = '#' -> loop ()
      | [ "quit" ] | [ "exit" ] -> ()
      | [ "show" ] ->
        show session oc;
        loop ()
      | [ "enabled" ] ->
        enabled session oc;
        loop ()
      | [ "fire"; name ] ->
        fire session oc name;
        loop ()
      | [ "step" ] ->
        step session oc;
        loop ()
      | [ "run"; t ] ->
        (match float_of_string_opt t with
        | Some d -> run_for session oc d
        | None -> out_line oc "error: run expects a number, got %s" t);
        loop ()
      | [ "back" ] ->
        back session oc;
        loop ()
      | [ "history" ] ->
        show_history session oc;
        loop ()
      | [ "reset" ] ->
        session.sim <- Simulator.create ~seed:session.seed net;
        session.history <- [];
        out_line oc "reset to the initial state";
        loop ()
      | [ "help" ] ->
        help oc;
        loop ()
      | _ ->
        out_line oc "error: unknown command %S ('help' lists commands)" line;
        loop ())
  in
  loop ()
