(** Serializable simulator snapshots.

    A checkpoint captures everything the engine needs to continue a run
    exactly where it left off: marking, environment, clock, random-stream
    state, enabling deadlines, in-flight firings and the pending event
    queue.  Restoring a checkpoint into a fresh {!Simulator.t} (see
    {!Simulator.checkpoint} / {!Simulator.restore}) and continuing
    produces the same trace suffix as the uninterrupted run — long
    simulations and fault campaigns survive crashes and budget
    exhaustion.

    The textual form is line-based and versioned ([%pnut-checkpoint 1]);
    floats round-trip exactly through hexadecimal notation. *)

type t = {
  ck_net : string;  (** net name, verified on restore *)
  ck_clock : float;
  ck_prng : int64;  (** SplitMix64 state *)
  ck_marking : int array;  (** token count per place id *)
  ck_deadlines : (int * float) list;
      (** (transition id, absolute fire-ready time) for enabled transitions *)
  ck_in_flight : (int * int) list;
      (** (transition id, unfinished firings), nonzero entries only *)
  ck_pending : (float * int * int) list;
      (** (completion time, transition id, firing id) in FIFO pop order *)
  ck_variables : (string * Pnut_core.Value.t) list;
  ck_tables : (string * Pnut_core.Value.t array) list;
  ck_next_firing_id : int;
  ck_started : int;
  ck_finished : int;
  ck_instant_firings : int;
}

val to_string : t -> string

val of_string : string -> t
(** Raises [Parse_error (line, message)] on malformed input. *)

val save : string -> t -> unit
(** [save path ck] writes the textual form to [path]. *)

val load : string -> t
(** Raises [Parse_error] or [Sys_error]. *)

exception Parse_error of int * string
