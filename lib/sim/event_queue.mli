(** Future-event list: a binary min-heap keyed by (time, insertion order).

    Events with equal timestamps pop in insertion (FIFO) order, which makes
    simulation runs deterministic for a given random seed. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q time payload] schedules [payload] at [time]. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time, if any. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event (FIFO among equal times). *)

val to_sorted_list : 'a t -> (float * 'a) list
(** All pending events in pop order, without disturbing the queue.
    Re-pushing them in this order into a fresh queue preserves the FIFO
    tie-breaking — the basis of checkpoint/restore. *)

val clear : 'a t -> unit
(** Drops all entries (releasing their payloads) and resets the
    insertion counter, restoring the queue to its freshly-created
    state. *)
