(* The pre-optimization simulation engine, kept as a frozen baseline.

   This is the straightforward O(T)-per-event engine the optimized
   [Simulator] replaced: every step rescans all transitions for
   fireability, [next_instant] sweeps every deadline, and predicates,
   delay distributions and actions are interpreted AST walks.  It is
   retained verbatim so the differential test suite (and `pnut sim
   --engine interpreted`) can check that the optimized engine produces
   bit-for-bit identical traces, checkpoints and outcomes on the same
   seeds.

   The single deliberate deviation from the pre-optimization code is
   shared with [Simulator]: the future-completion branch of [step] peeks
   at the event queue instead of popping and re-pushing the head entry.
   The old pop/re-push allotted the entry a fresh tie-break sequence
   number, which rotated the completion order of simultaneous fire-ends
   every time the clock advanced; both engines now complete
   simultaneous events in firing-start order.

   Types are re-exported from [Simulator], so errors, hooks, outcomes
   and diagnoses interoperate. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Expr = Pnut_core.Expr
module Prng = Pnut_core.Prng
module Trace = Pnut_trace.Trace

type error = Simulator.error =
  | Livelock of { clock : float; firings : int }
  | Capacity_violation of {
      place : string;
      tokens : int;
      capacity : int;
      transition : string;
      clock : float;
    }
  | Action_error of { transition : string; clock : float; message : string }
  | Watchdog of { wall_seconds : float; clock : float; started : int }
  | Fault_error of string
  | Restore_error of string

let sim_error e = raise (Simulator.Sim_error e)

type delay_kind = Simulator.delay_kind = Enabling_delay | Firing_delay

type hooks = Simulator.hooks = {
  hk_veto : clock:float -> Net.transition -> bool;
  hk_delay : clock:float -> kind:delay_kind -> Net.transition -> float -> float;
  hk_wakeup : clock:float -> float option;
}

let no_hooks = Simulator.no_hooks

type pending = {
  pe_transition : Net.transition_id;
  pe_firing : int;
}

type t = {
  net : Net.t;
  prng : Prng.t;
  sink : Trace.sink;
  max_instant_firings : int;
  check_capacities : bool;
  hooks : hooks;
  marking : Marking.t;
  env : Env.t;
  mutable clock : float;
  queue : pending Event_queue.t;
  (* enabling bookkeeping *)
  deadline : float option array;  (* per transition: time it may fire *)
  in_flight : int array;
  (* incremental-refresh indexes: which transitions read each place
     (input or inhibitor arcs), and which carry predicates (affected by
     any environment change) *)
  readers : Net.transition_id list array;  (* per place, ascending *)
  predicated : Net.transition_id list;     (* ascending *)
  mutable next_firing_id : int;
  mutable started : int;
  mutable finished : int;
  mutable instant_firings : int;  (* firings at the current clock value *)
  mutable last_activity : float;  (* clock of the latest start/completion *)
  mutable finished_emitted : bool;
}

let net st = st.net
let clock st = st.clock
let marking st = Marking.copy st.marking
let env st = st.env
let in_flight st = Array.copy st.in_flight
let events_started st = st.started
let events_finished st = st.finished
let last_activity st = st.last_activity

let tokens st name = Marking.get st.marking (Net.place_id st.net name)

(* Re-evaluate enabledness and maintain enabling deadlines for one
   transition: newly enabled transitions sample their enabling delay,
   newly disabled ones lose their deadline, continuously enabled ones
   keep it. *)
let refresh_one st tr =
  let id = tr.Net.t_id in
  let is_enabled = Net.enabled st.net st.marking st.env tr in
  match st.deadline.(id), is_enabled with
  | Some _, true -> ()
  | Some _, false -> st.deadline.(id) <- None
  | None, false -> ()
  | None, true ->
    let d = Net.sample_duration ~prng:st.prng st.env tr.Net.t_enabling in
    let d =
      Float.max 0.0
        (st.hooks.hk_delay ~clock:st.clock ~kind:Enabling_delay tr d)
    in
    st.deadline.(id) <- Some (st.clock +. d)

let refresh_enabling st =
  Array.iter (refresh_one st) (Net.transitions st.net)

(* Incremental refresh after a firing touched only [places] (and, when
   [env_changed], the model variables): only transitions reading a
   touched place or carrying a predicate can change enabledness.
   Processed in ascending id order — the same order as the full scan —
   so the random enabling-delay draws are identical to a full refresh
   and traces are bit-for-bit reproducible either way. *)
let refresh_after st ~places ~env_changed =
  let affected = Array.make (Net.num_transitions st.net) false in
  List.iter
    (fun p -> List.iter (fun tid -> affected.(tid) <- true) st.readers.(p))
    places;
  if env_changed then
    List.iter (fun tid -> affected.(tid) <- true) st.predicated;
  Array.iteri
    (fun tid hit -> if hit then refresh_one st (Net.transition st.net tid))
    affected

(* Which transitions read each place (input or inhibitor arcs), per
   place, in ascending transition order. *)
let build_readers net =
  let idx = Array.make (Net.num_places net) [] in
  (* build in descending id order so each list ends up ascending *)
  for i = Net.num_transitions net - 1 downto 0 do
    let tr = Net.transition net i in
    let note { Net.a_place; _ } =
      match idx.(a_place) with
      | hd :: _ when hd = i -> ()
      | l -> idx.(a_place) <- i :: l
    in
    List.iter note tr.Net.t_inputs;
    List.iter note tr.Net.t_inhibitors
  done;
  idx

let build_predicated net =
  Array.to_list (Net.transitions net)
  |> List.filter_map (fun tr ->
         if tr.Net.t_predicate <> None then Some tr.Net.t_id else None)

let create ?(seed = 1) ?prng ?(sink = Trace.null_sink)
    ?(max_instant_firings = 10_000) ?(check_capacities = false)
    ?(hooks = no_hooks) net =
  let prng = match prng with Some g -> g | None -> Prng.create seed in
  let st =
    {
      net;
      prng;
      sink;
      max_instant_firings;
      check_capacities;
      hooks;
      marking = Net.initial_marking net;
      env = Net.initial_env net;
      clock = 0.0;
      queue = Event_queue.create ();
      deadline = Array.make (Net.num_transitions net) None;
      in_flight = Array.make (Net.num_transitions net) 0;
      readers = build_readers net;
      predicated = build_predicated net;
      next_firing_id = 0;
      started = 0;
      finished = 0;
      instant_firings = 0;
      last_activity = 0.0;
      finished_emitted = false;
    }
  in
  sink.Trace.on_header (Trace.header_of_net net);
  refresh_enabling st;
  st

(* Transitions that are enabled, past their enabling deadline, and not
   vetoed by an active fault. *)
let fireable st =
  let acc = ref [] in
  Array.iter
    (fun tr ->
      match st.deadline.(tr.Net.t_id) with
      | Some d when d <= st.clock ->
        if not (st.hooks.hk_veto ~clock:st.clock tr) then acc := tr :: !acc
      | Some _ | None -> ())
    (Net.transitions st.net);
  List.rev !acc

(* Run an action, recording every assignment for the trace delta.  Table
   writes are recorded under the pseudo-variable name "tbl[i]".  Failures
   surface as structured [Action_error]s naming the transition. *)
let run_action st tr stmts =
  let action_error message =
    sim_error
      (Action_error { transition = tr.Net.t_name; clock = st.clock; message })
  in
  let changes = ref [] in
  let record name v = changes := (name, v) :: !changes in
  let run = function
    | Expr.Assign (name, e) ->
      let v = Expr.eval ~prng:st.prng st.env e in
      Env.set st.env name v;
      record name v
    | Expr.Table_assign (tbl, ie, e) -> (
      let i = Expr.eval_int ~prng:st.prng st.env ie in
      let v = Expr.eval ~prng:st.prng st.env e in
      try
        Env.table_set st.env tbl i v;
        record (Printf.sprintf "%s[%d]" tbl i) v
      with
      | Env.Unbound name ->
        action_error (Printf.sprintf "action writes unbound table %s" name)
      | Invalid_argument msg -> action_error msg)
  in
  List.iter run stmts;
  List.rev !changes

let emit_delta st kind tr firing marking_changes env_changes =
  st.sink.Trace.on_delta
    {
      Trace.d_time = st.clock;
      d_kind = kind;
      d_transition = tr.Net.t_id;
      d_firing = firing;
      d_marking = marking_changes;
      d_env = env_changes;
    }

(* Merge (place, delta) lists, summing deltas per place and dropping
   zero entries (self-loops). *)
let merge_changes a b =
  let tbl = Hashtbl.create 8 in
  let add (p, d) =
    Hashtbl.replace tbl p (d + try Hashtbl.find tbl p with Not_found -> 0)
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun p d acc -> if d = 0 then acc else (p, d) :: acc) tbl []
  |> List.sort compare

(* Capacity declarations are documentation by default; with
   [check_capacities] the simulator turns an overflow into a loud
   modeling-bug report at the moment it happens. *)
let enforce_capacities st tr =
  if st.check_capacities then
    List.iter
      (fun { Net.a_place; _ } ->
        let p = Net.place st.net a_place in
        match p.Net.p_capacity with
        | Some cap when Marking.get st.marking a_place > cap ->
          sim_error
            (Capacity_violation
               {
                 place = p.Net.p_name;
                 tokens = Marking.get st.marking a_place;
                 capacity = cap;
                 transition = tr.Net.t_name;
                 clock = st.clock;
               })
        | Some _ | None -> ())
      tr.Net.t_outputs

let complete_firing ?(extra_changes = []) st tr firing =
  Net.produce st.net st.marking tr;
  enforce_capacities st tr;
  let env_changes = run_action st tr tr.Net.t_action in
  let produced =
    List.map (fun { Net.a_place; a_weight } -> (a_place, a_weight)) tr.Net.t_outputs
  in
  st.in_flight.(tr.Net.t_id) <- st.in_flight.(tr.Net.t_id) - 1;
  st.finished <- st.finished + 1;
  st.last_activity <- st.clock;
  emit_delta st Trace.Fire_end tr firing (merge_changes extra_changes produced)
    env_changes;
  refresh_after st
    ~places:(List.map (fun a -> a.Net.a_place) tr.Net.t_outputs)
    ~env_changed:(tr.Net.t_action <> [])

(* Starting a firing consumes the input tokens.  For a positive firing
   time this is observable (tokens are on neither side while the
   transition fires) so the Fire_start delta reports the consumption; a
   zero firing time is atomic in the paper's semantics, so the Fire_start
   delta is empty and the paired Fire_end delta carries the net marking
   change — no intermediate trace state ever violates invariants such as
   Bus_free + Bus_busy = 1. *)
let start_firing st tr =
  Net.consume st.net st.marking tr;
  let firing = st.next_firing_id in
  st.next_firing_id <- st.next_firing_id + 1;
  st.started <- st.started + 1;
  st.in_flight.(tr.Net.t_id) <- st.in_flight.(tr.Net.t_id) + 1;
  st.last_activity <- st.clock;
  let consumed =
    List.map
      (fun { Net.a_place; a_weight } -> (a_place, -a_weight))
      tr.Net.t_inputs
  in
  (* The fired transition's own enabling clock restarts. *)
  st.deadline.(tr.Net.t_id) <- None;
  let consumed_places = List.map (fun a -> a.Net.a_place) tr.Net.t_inputs in
  let duration = Net.sample_duration ~prng:st.prng st.env tr.Net.t_firing in
  let duration =
    Float.max 0.0
      (st.hooks.hk_delay ~clock:st.clock ~kind:Firing_delay tr duration)
  in
  if duration <= 0.0 then begin
    emit_delta st Trace.Fire_start tr firing [] [];
    refresh_after st ~places:consumed_places ~env_changed:false;
    complete_firing ~extra_changes:consumed st tr firing
  end
  else begin
    emit_delta st Trace.Fire_start tr firing consumed [];
    Event_queue.push st.queue (st.clock +. duration)
      { pe_transition = tr.Net.t_id; pe_firing = firing };
    refresh_after st ~places:consumed_places ~env_changed:false
  end;
  tr.Net.t_id

type step_result = Simulator.step_result =
  | Fired of Net.transition_id
  | Completed of Net.transition_id
  | Advanced of float
  | Quiescent

(* Earliest instant at which something can happen after the current one:
   the next scheduled fire-end, the earliest pending enabling deadline,
   or a fault-window boundary announced by the hooks. *)
let next_instant st =
  let candidates = ref [] in
  (match Event_queue.peek_time st.queue with
  | Some t -> candidates := t :: !candidates
  | None -> ());
  (match st.hooks.hk_wakeup ~clock:st.clock with
  | Some t when t > st.clock -> candidates := t :: !candidates
  | Some _ | None -> ());
  Array.iter
    (fun deadline ->
      match deadline with
      | Some d when d > st.clock -> candidates := d :: !candidates
      | Some _ | None -> ())
    st.deadline;
  match !candidates with
  | [] -> None
  | first :: rest -> Some (List.fold_left Float.min first rest)

let step st =
  match fireable st with
  | _ :: _ as ready ->
    if st.instant_firings >= st.max_instant_firings then
      sim_error
        (Livelock { clock = st.clock; firings = st.max_instant_firings });
    st.instant_firings <- st.instant_firings + 1;
    let weighted = List.map (fun tr -> (tr, tr.Net.t_frequency)) ready in
    let chosen = Prng.choose_weighted st.prng weighted in
    Fired (start_firing st chosen)
  | [] -> (
    match Event_queue.peek_time st.queue with
    | Some time when Float.equal time st.clock ->
      let pe =
        match Event_queue.pop st.queue with
        | Some (_, pe) -> pe
        | None -> assert false
      in
      let tr = Net.transition st.net pe.pe_transition in
      complete_firing st tr pe.pe_firing;
      Completed pe.pe_transition
    | Some _ ->
      (* head strictly in the future: advance the clock, leaving the
         entry in place (peek, not pop/re-push — see the header note) *)
      (match next_instant st with
      | Some t ->
        assert (t > st.clock);
        st.clock <- t;
        st.instant_firings <- 0;
        Advanced t
      | None -> assert false)
    | None -> (
      match next_instant st with
      | Some t when t > st.clock ->
        st.clock <- t;
        st.instant_firings <- 0;
        Advanced t
      | Some _ ->
        (* a deadline at the current instant with nothing fireable can
           only be a vetoed transition; with no other activity and no
           wakeup the net is stuck for good *)
        Quiescent
      | None -> Quiescent))

let fireable_transitions st = List.map (fun tr -> tr.Net.t_id) (fireable st)

let fire_transition st tid =
  let ready = fireable st in
  match List.find_opt (fun tr -> tr.Net.t_id = tid) ready with
  | Some tr -> ignore (start_firing st tr : Net.transition_id)
  | None ->
    invalid_arg
      (Printf.sprintf "Simulator.fire_transition: %s is not fireable now"
         (Net.transition st.net tid).Net.t_name)

let perturb_tokens st p delta =
  let have = Marking.get st.marking p in
  let applied = if delta < 0 then -(min have (-delta)) else delta in
  if applied <> 0 then begin
    Marking.add st.marking p applied;
    refresh_after st ~places:[ p ] ~env_changed:false
  end;
  applied

type stop_reason = Simulator.stop_reason =
  | Horizon
  | Dead
  | Event_limit
  | Budget_exhausted of Pnut_exec.Supervisor.reason

type outcome = Simulator.outcome = {
  stop : stop_reason;
  final_clock : float;
  started : int;
  finished : int;
}

exception Budget_trip of Pnut_exec.Supervisor.reason

let run ?until ?max_events ?wall_limit_s ?budget ?(finish = true) (st : t) =
  if until = None && max_events = None
     && (match budget with
         | Some b -> b.Pnut_exec.Budget.max_events = None
         | None -> true)
  then invalid_arg "Simulator.run: needs a horizon or an event limit";
  let horizon = Option.value until ~default:infinity in
  let limit = Option.value max_events ~default:max_int in
  let monitor =
    Pnut_exec.Supervisor.start
      (Option.value budget ~default:Pnut_exec.Budget.none)
  in
  let monitored = Pnut_exec.Supervisor.active monitor in
  (* Fold the budget's event cap into the engine's own limit: one
     comparison per event, mirroring the optimized engine. *)
  let budget_events =
    Option.value (Pnut_exec.Supervisor.max_events monitor) ~default:max_int
  in
  let eff_limit = min limit budget_events in
  let emit_finish t = if finish then begin
    if not st.finished_emitted then begin
      st.finished_emitted <- true;
      st.sink.Trace.on_finish t
    end
  end in
  (* The watchdog costs one [Unix.gettimeofday] every 256 engine steps —
     cheap enough to leave armed on production runs.  Budget checks ride
     the same slot, mirroring the optimized engine exactly. *)
  let wall_start =
    match wall_limit_s with Some _ -> Unix.gettimeofday () | None -> 0.0
  in
  let steps = ref 0 in
  let check_watchdog () =
    incr steps;
    if !steps land 255 = 0 then begin
      (match wall_limit_s with
      | Some limit_s ->
        if Unix.gettimeofday () -. wall_start > limit_s then
          sim_error
            (Watchdog
               { wall_seconds = limit_s; clock = st.clock;
                 started = st.started })
      | None -> ());
      if monitored then
        match Pnut_exec.Supervisor.check monitor with
        | Some reason -> raise_notrace (Budget_trip reason)
        | None -> ()
    end
  in
  let stop_budget reason =
    emit_finish st.clock;
    { stop = Budget_exhausted reason; final_clock = st.clock;
      started = st.started; finished = st.finished }
  in
  let rec loop () =
    check_watchdog ();
    if st.started >= eff_limit then begin
      if st.started >= limit then begin
        emit_finish st.clock;
        { stop = Event_limit; final_clock = st.clock; started = st.started;
          finished = st.finished }
      end
      else stop_budget (Pnut_exec.Supervisor.Events st.started)
    end
    else
      (* Peek whether the next instant would overshoot the horizon. *)
      match fireable st with
      | _ :: _ ->
        ignore (step st);
        loop ()
      | [] -> (
        match next_instant st with
        | Some t when t > horizon ->
          st.clock <- horizon;
          st.instant_firings <- 0;
          emit_finish horizon;
          { stop = Horizon; final_clock = horizon; started = st.started;
            finished = st.finished }
        | Some _ ->
          ignore (step st);
          loop ()
        | None ->
          let final =
            if Float.is_finite horizon then horizon else st.clock
          in
          st.clock <- final;
          st.instant_firings <- 0;
          emit_finish final;
          { stop = Dead; final_clock = final; started = st.started;
            finished = st.finished })
  in
  try loop () with Budget_trip reason -> stop_budget reason

let run_supervised ?until ?max_events ?budget ?finish (st : t) =
  let monitor =
    Pnut_exec.Supervisor.start
      (Option.value budget ~default:Pnut_exec.Budget.none)
  in
  let outcome = run ?until ?max_events ?budget ?finish st in
  match outcome.stop with
  | Budget_exhausted reason ->
    Pnut_exec.Supervisor.Degraded
      {
        reason;
        partial = outcome;
        progress =
          Pnut_exec.Supervisor.snapshot monitor ~visited:outcome.started
            ~frontier:0;
      }
  | Horizon | Dead | Event_limit -> Pnut_exec.Supervisor.Complete outcome

let simulate ?seed ?prng ?max_instant_firings ?until ?max_events ?sink net =
  let st = create ?seed ?prng ?sink ?max_instant_firings net in
  run ?until ?max_events st

(* -- deadlock diagnosis -- *)

type block_reason = Simulator.block_reason =
  | Missing_tokens of { place : string; have : int; need : int }
  | Inhibited of { place : string; have : int; limit : int }
  | Predicate_false of string
  | Awaiting_enabling of { ready_at : float }
  | Vetoed_by_fault

type transition_diagnosis = Simulator.transition_diagnosis = {
  td_name : string;
  td_reasons : block_reason list;
}

type diagnosis = Simulator.diagnosis = {
  dg_clock : float;
  dg_last_activity : float;
  dg_marking : (string * int) list;
  dg_transitions : transition_diagnosis list;
}

let diagnose st =
  let place_name p = (Net.place st.net p).Net.p_name in
  let diagnose_transition tr =
    let token_blocks =
      List.filter_map
        (fun { Net.a_place; a_weight } ->
          let have = Marking.get st.marking a_place in
          if have < a_weight then
            Some
              (Missing_tokens
                 { place = place_name a_place; have; need = a_weight })
          else None)
        tr.Net.t_inputs
      @ List.filter_map
          (fun { Net.a_place; a_weight } ->
            let have = Marking.get st.marking a_place in
            if have >= a_weight then
              Some
                (Inhibited { place = place_name a_place; have; limit = a_weight })
            else None)
          tr.Net.t_inhibitors
    in
    let predicate_blocks =
      match tr.Net.t_predicate with
      | Some p
        when token_blocks = []
             (* predicates may call irand: evaluate against a copy so
                diagnosis never perturbs the simulation stream *)
             && not (Expr.eval_bool ~prng:(Prng.copy st.prng) st.env p) ->
        [ Predicate_false (Expr.to_string p) ]
      | Some _ | None -> []
    in
    let timing_blocks =
      if token_blocks <> [] || predicate_blocks <> [] then []
      else
        match st.deadline.(tr.Net.t_id) with
        | Some d when d > st.clock -> [ Awaiting_enabling { ready_at = d } ]
        | Some _ when st.hooks.hk_veto ~clock:st.clock tr -> [ Vetoed_by_fault ]
        | Some _ | None -> []
    in
    { td_name = tr.Net.t_name;
      td_reasons = token_blocks @ predicate_blocks @ timing_blocks }
  in
  {
    dg_clock = st.clock;
    dg_last_activity = st.last_activity;
    dg_marking =
      Array.to_list (Net.places st.net)
      |> List.filter_map (fun p ->
             let n = Marking.get st.marking p.Net.p_id in
             if n > 0 then Some (p.Net.p_name, n) else None);
    dg_transitions =
      Array.to_list (Net.transitions st.net) |> List.map diagnose_transition;
  }

(* -- checkpoint / restore -- *)

let checkpoint st =
  {
    Checkpoint.ck_net = Net.name st.net;
    ck_clock = st.clock;
    ck_prng = Prng.state st.prng;
    ck_marking = Marking.to_array st.marking;
    ck_deadlines =
      (let acc = ref [] in
       Array.iteri
         (fun tid d ->
           match d with Some t -> acc := (tid, t) :: !acc | None -> ())
         st.deadline;
       List.rev !acc);
    ck_in_flight =
      (let acc = ref [] in
       Array.iteri
         (fun tid n -> if n <> 0 then acc := (tid, n) :: !acc)
         st.in_flight;
       List.rev !acc);
    ck_pending =
      List.map
        (fun (time, pe) -> (time, pe.pe_transition, pe.pe_firing))
        (Event_queue.to_sorted_list st.queue);
    ck_variables = Env.bindings st.env;
    ck_tables = Env.tables st.env;
    ck_next_firing_id = st.next_firing_id;
    ck_started = st.started;
    ck_finished = st.finished;
    ck_instant_firings = st.instant_firings;
  }

let restore ?(sink = Trace.null_sink) ?(max_instant_firings = 10_000)
    ?(check_capacities = false) ?(hooks = no_hooks) net ck =
  let restore_error fmt =
    Printf.ksprintf (fun s -> sim_error (Restore_error s)) fmt
  in
  if Net.name net <> ck.Checkpoint.ck_net then
    restore_error "checkpoint is for net %S, not %S" ck.Checkpoint.ck_net
      (Net.name net);
  if Array.length ck.Checkpoint.ck_marking <> Net.num_places net then
    restore_error "checkpoint has %d places, net has %d"
      (Array.length ck.Checkpoint.ck_marking)
      (Net.num_places net);
  let check_tid what tid =
    if tid < 0 || tid >= Net.num_transitions net then
      restore_error "%s entry names transition id %d (net has %d)" what tid
        (Net.num_transitions net)
  in
  List.iter (fun (tid, _) -> check_tid "deadline" tid) ck.Checkpoint.ck_deadlines;
  List.iter (fun (tid, _) -> check_tid "inflight" tid) ck.Checkpoint.ck_in_flight;
  List.iter
    (fun (_, tid, _) -> check_tid "pending" tid)
    ck.Checkpoint.ck_pending;
  let marking =
    try Marking.of_array ck.Checkpoint.ck_marking
    with Invalid_argument msg -> restore_error "bad marking: %s" msg
  in
  let env =
    try
      Env.of_bindings ~tables:ck.Checkpoint.ck_tables
        ck.Checkpoint.ck_variables
    with Invalid_argument msg -> restore_error "bad environment: %s" msg
  in
  let deadline = Array.make (Net.num_transitions net) None in
  List.iter
    (fun (tid, t) -> deadline.(tid) <- Some t)
    ck.Checkpoint.ck_deadlines;
  let in_flight = Array.make (Net.num_transitions net) 0 in
  List.iter (fun (tid, n) -> in_flight.(tid) <- n) ck.Checkpoint.ck_in_flight;
  let queue = Event_queue.create () in
  List.iter
    (fun (time, tid, fid) ->
      Event_queue.push queue time { pe_transition = tid; pe_firing = fid })
    ck.Checkpoint.ck_pending;
  let st =
    {
      net;
      prng = Prng.of_state ck.Checkpoint.ck_prng;
      sink;
      max_instant_firings;
      check_capacities;
      hooks;
      marking;
      env;
      clock = ck.Checkpoint.ck_clock;
      queue;
      deadline;
      in_flight;
      readers = build_readers net;
      predicated = build_predicated net;
      next_firing_id = ck.Checkpoint.ck_next_firing_id;
      started = ck.Checkpoint.ck_started;
      finished = ck.Checkpoint.ck_finished;
      instant_firings = ck.Checkpoint.ck_instant_firings;
      last_activity = ck.Checkpoint.ck_clock;
      finished_emitted = false;
    }
  in
  (* The deadlines were captured live, so no [refresh_enabling] here:
     re-sampling enabling delays would fork the random stream and break
     the identical-suffix guarantee. *)
  sink.Trace.on_header (Trace.header_of_net net);
  st
