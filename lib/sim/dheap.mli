(** Indexed binary min-heap over dense integer ids (transition ids)
    keyed by float deadlines.

    Unlike {!Event_queue}, entries can be removed or re-keyed by id in
    O(log n) via an id→slot index — what the simulator needs to retract
    an enabling deadline the moment an incremental refresh disables the
    transition.  Capacity is one slot per id, fixed at {!create}; no
    operation allocates.  Ties between equal keys are broken
    arbitrarily. *)

type t

val create : int -> t
(** [create n] accepts ids [0..n-1], initially empty. *)

val is_empty : t -> bool

val mem : t -> int -> bool

val min_key : t -> float
(** Smallest key, or [infinity] when empty (use {!is_empty} to tell an
    empty heap from an entry keyed [infinity]). *)

val insert : t -> int -> float -> unit
(** Raises [Invalid_argument] if the id is already present. *)

val remove : t -> int -> unit
(** Raises [Invalid_argument] if the id is not present. *)

val pop_min : t -> int
(** Removes and returns an id with the smallest key.  Raises
    [Invalid_argument] on an empty heap. *)

val clear : t -> unit
