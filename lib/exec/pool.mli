(** Deterministic multicore execution.

    A small [Domain]-based worker pool for the embarrassingly parallel
    hot paths (independent replications, fault campaigns, frontier
    expansion in reachability).  Work is assigned statically: task [i]
    always runs the same computation regardless of how many workers
    exist, and results are collected into an array indexed by task
    number, so the output of every pool operation is {e bit-identical}
    for any [jobs] value.  Parallelism changes wall-clock time only.

    Jobs resolution, everywhere a [?jobs] argument appears in the
    library:
    - [Some n] with [n >= 1]: exactly [n] workers;
    - [Some 0]: auto — [PNUT_JOBS] if set, else
      [Domain.recommended_domain_count ()];
    - [None]: [PNUT_JOBS] if set, else [1] (serial).  The conservative
      library default keeps embedders single-domain unless they, or the
      environment, opt in. *)

val auto : unit -> int
(** [PNUT_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()] (at least 1).  Either way the
    result is clamped to [Domain.recommended_domain_count ()]:
    auto-detection never oversubscribes the machine. *)

val resolve : ?jobs:int -> unit -> int
(** Resolve a [?jobs] argument to a concrete worker count (see the
    table above).  Raises [Invalid_argument] on a negative count.
    The result is clamped to at most 64 workers.  An {e explicitly}
    requested count above the core count is honoured — useful in tests —
    but prints one warning per process to stderr, since extra domains
    only contend for CPU. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [[| f 0; ...; f (n-1) |]], computed by [jobs]
    domains with a static round-robin assignment (worker [d] runs the
    tasks [i] with [i mod jobs = d]).  [f] must not depend on shared
    mutable state.  If several tasks raise, the exception of the
    {e lowest-numbered} task is re-raised after all workers join — with
    its original backtrace — so failures are deterministic too.  With
    one worker (or fewer than two tasks) everything runs inline in the
    calling domain — no spawns. *)

type 'a task_outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }

val init_supervised : ?jobs:int -> int -> (int -> 'a) -> 'a task_outcome array
(** Like {!init}, but no exception is re-raised: the merge reports a
    per-index outcome instead, each failure carrying the backtrace
    captured in the worker domain.  If a worker dies outside the
    per-task handler (a failed spawn, an asynchronous exception), the
    un-attempted remainder of its stripe is retried once on the calling
    domain after the join — results stay bit-identical because stripes
    are index-deterministic. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f l] maps [f] over [l] in parallel, preserving
    order; same guarantees as {!init}. *)
