(** Deterministic multicore execution on a persistent domain pool.

    Worker domains are spawned {e once per process}, lazily sized by
    {!resolve}, and parked on a condition variable between calls —
    entering a parallel region costs a mutex handshake, not a round of
    [Domain.spawn].  Work arrives as chunked batches claimed off a
    shared cursor (dynamic load balance), but task [i]'s result always
    lands in slot [i], so the output of every pool operation is
    {e bit-identical} for any [jobs] value.  Parallelism changes
    wall-clock time only.

    A batch runs one at a time: a nested call (a task that itself fans
    out) or a concurrent call from another domain falls back to inline
    serial execution with the same results.

    Jobs resolution, everywhere a [?jobs] argument appears in the
    library:
    - [Some n] with [n >= 1]: exactly [n] workers;
    - [Some 0]: auto — [PNUT_JOBS] if set, else
      [Domain.recommended_domain_count ()];
    - [None]: [PNUT_JOBS] if set, else [1] (serial).  The conservative
      library default keeps embedders single-domain unless they, or the
      environment, opt in.

    [PNUT_JOBS] is auto-detection on both paths, so it is always
    clamped to the core count — only an {e explicit} [?jobs] override
    can oversubscribe the machine. *)

val auto : unit -> int
(** [PNUT_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()] (at least 1).  Either way the
    result is clamped to [Domain.recommended_domain_count ()]:
    auto-detection never oversubscribes the machine. *)

val resolve : ?jobs:int -> unit -> int
(** Resolve a [?jobs] argument to a concrete worker count (see the
    table above).  Raises [Invalid_argument] on a negative count.
    The result is clamped to at most 64 workers.  An {e explicitly}
    requested count above the core count is honoured — useful in tests —
    but warns on stderr, once per distinct count (a later, larger
    request warns again; repeating or shrinking stays quiet), since
    extra domains only contend for CPU. *)

val set_warning_printer : (string -> unit) -> unit
(** Replace the stderr printer for pool warnings (tests capture it,
    embedders can route it to their logger). *)

val reset_oversubscription_latch : unit -> unit
(** Forget which counts have already been warned about (tests only). *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [[| f 0; ...; f (n-1) |]], computed by up to
    [jobs] domains (the caller plus parked pool workers) claiming
    chunks of the index range dynamically.  [f] must not depend on
    shared mutable state.  If several tasks raise, the exception of the
    {e lowest-numbered} task is re-raised after the batch completes —
    with its original backtrace — so failures are deterministic too.
    With one worker (or fewer than two tasks) everything runs inline in
    the calling domain. *)

type 'a task_outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }

val init_supervised : ?jobs:int -> int -> (int -> 'a) -> 'a task_outcome array
(** Like {!init}, but no exception is re-raised: the merge reports a
    per-index outcome instead, each failure carrying the backtrace
    captured in the domain that ran it. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f l] maps [f] over [l] in parallel, preserving
    order; same guarantees as {!init}. *)

(** {2 Co-scheduled teams}

    {!init} tasks must be independent; team members may communicate.
    A team of [j] members runs each member on its own domain
    simultaneously (member 0 on the caller, member [m] pinned to
    persistent worker [m]), so members can busy-wait on data published
    by other members — the sharded reachability BFS runs its shard
    loops this way. *)

val team_size : ?jobs:int -> unit -> int
(** Resolve [jobs] and make sure enough persistent workers exist to
    co-schedule that many members; the achievable team size ([>= 1],
    smaller than the request when domains cannot be spawned). *)

val run_team : int -> (int -> unit) -> bool
(** [run_team j member] runs [member 0 .. member (j - 1)] concurrently,
    one per domain, and returns [true] once all have finished (the
    lowest member's exception, if any, is re-raised after the join).
    Returns [false] — running nothing — when the pool is busy or the
    workers are missing; the caller must then take its serial path.
    [run_team 1 member] runs [member 0] inline and returns [true]. *)

val relax : int -> unit
(** Backoff helper for busy-wait loops inside team members: spin for
    small counts, sleep a fraction of a millisecond beyond that so
    oversubscribed boxes can schedule the member being waited on.
    Call with an attempt counter that resets on progress. *)

val quiesce : unit -> unit
(** Retire the parked worker domains and join them; the next parallel
    call respawns the pool.  On OCaml 5 every live domain takes part in
    every stop-the-world minor collection, so a parked pool taxes a
    long serial allocation-heavy phase that follows a parallel one —
    ~2x on serial simulation throughput on a single-core box.  Call
    this between a parallel phase and sustained serial work (the bench
    does, around its serial measurement sections); a process that
    exits after its parallel phase never needs to.  No-op when a batch
    is in flight. *)
