(** Supervised execution: structured outcomes for budgeted work.

    Every long-running entry point in the library (simulation,
    reachability, coverability, GSPN exploration, replication sweeps,
    fault campaigns) accepts a {!Budget.t} and reports back through the
    {!outcome} type below: either the computation ran to completion, or
    it was stopped early by a tripped limit and a {e usable partial
    result} is returned together with the reason and a progress
    snapshot.  Nothing hangs, nothing OOM-kills the process, nothing
    raises a bare [Invalid_argument] for running out of room. *)

type reason =
  | Wall of float    (** wall-clock limit hit; payload = elapsed seconds *)
  | Heap of int      (** major-heap limit hit; payload = heap words *)
  | States of int    (** state cap hit; payload = states interned *)
  | Events of int    (** event cap hit; payload = events executed *)
  | Cancelled        (** the budget's cancellation token was raised *)

type progress = {
  elapsed_s : float;  (** wall-clock seconds since the monitor started *)
  heap_words : int;   (** major-heap words at the time of the snapshot *)
  visited : int;      (** states explored / events executed so far *)
  frontier : int;     (** unexplored frontier size (0 where meaningless) *)
}

type 'a outcome =
  | Complete of 'a
  | Degraded of { reason : reason; partial : 'a; progress : progress }

val value : 'a outcome -> 'a
(** The payload, complete or partial. *)

val map : ('a -> 'b) -> 'a outcome -> 'b outcome

val degraded : 'a outcome -> bool

val reason_message : reason -> string
(** One-line human-readable description, e.g.
    ["wall-clock budget exhausted after 0.052 s"]. *)

val pp_progress : Format.formatter -> progress -> unit
(** e.g. [visited 614 states (frontier 12) in 0.05 s, heap 2.1 Mw]. *)

(** {1 Monitors}

    A monitor is the active side of a budget: it remembers when work
    started and answers "has anything tripped?" cheaply enough to be
    polled every few hundred steps of a hot loop. *)

type monitor

val start : Budget.t -> monitor
(** Start the clock.  [start Budget.none] yields a monitor whose checks
    are branch-cheap no-ops. *)

val active : monitor -> bool
(** [false] iff the underlying budget is {!Budget.none} — callers may
    hoist this test out of their hot loop. *)

val check : monitor -> reason option
(** Poll cancellation, wall clock and heap (in that order).  Intended
    for existing cheap cadences; a call costs one [Atomic.get], at most
    one [Unix.gettimeofday] and one [Gc.quick_stat]. *)

val states_over : monitor -> int -> reason option
(** [states_over m n] is [Some (States n)] when the budget caps states
    at or below [n]. *)

val events_over : monitor -> int -> reason option
(** [events_over m n] is [Some (Events n)] when the budget caps events
    at or below [n]. *)

val max_states : monitor -> int option
val max_events : monitor -> int option

val elapsed : monitor -> float
(** Wall-clock seconds since {!start}. *)

val snapshot : monitor -> visited:int -> frontier:int -> progress
(** Progress record at this instant. *)
