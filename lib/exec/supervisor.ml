type reason =
  | Wall of float
  | Heap of int
  | States of int
  | Events of int
  | Cancelled

type progress = {
  elapsed_s : float;
  heap_words : int;
  visited : int;
  frontier : int;
}

type 'a outcome =
  | Complete of 'a
  | Degraded of { reason : reason; partial : 'a; progress : progress }

let value = function Complete v -> v | Degraded { partial; _ } -> partial

let map f = function
  | Complete v -> Complete (f v)
  | Degraded { reason; partial; progress } ->
    Degraded { reason; partial = f partial; progress }

let degraded = function Complete _ -> false | Degraded _ -> true

let reason_message = function
  | Wall s -> Printf.sprintf "wall-clock budget exhausted after %.3f s" s
  | Heap w ->
    Printf.sprintf "heap budget exhausted at %.1f Mw (%d MB)"
      (float_of_int w /. 1e6)
      (w * (Sys.word_size / 8) / 1024 / 1024)
  | States n -> Printf.sprintf "state budget exhausted at %d states" n
  | Events n -> Printf.sprintf "event budget exhausted at %d events" n
  | Cancelled -> "cancelled"

let pp_progress ppf p =
  Format.fprintf ppf "visited %d (frontier %d) in %.3f s, heap %.1f Mw"
    p.visited p.frontier p.elapsed_s
    (float_of_int p.heap_words /. 1e6)

type monitor = { budget : Budget.t; started : float; is_active : bool }

let start budget =
  let is_active = not (Budget.is_none budget) in
  let started = if is_active then Unix.gettimeofday () else 0.0 in
  { budget; started; is_active }

let active m = m.is_active

let elapsed m = if m.is_active then Unix.gettimeofday () -. m.started else 0.0

let check m =
  if not m.is_active then None
  else
    let b = m.budget in
    match b.Budget.cancel with
    | Some tok when Budget.cancelled tok -> Some Cancelled
    | _ -> (
      let wall_hit =
        match b.Budget.wall_s with
        | Some limit ->
          let e = Unix.gettimeofday () -. m.started in
          if e >= limit then Some (Wall e) else None
        | None -> None
      in
      match wall_hit with
      | Some _ as r -> r
      | None -> (
        match b.Budget.heap_words with
        | Some limit ->
          let w = (Gc.quick_stat ()).Gc.heap_words in
          if w >= limit then Some (Heap w) else None
        | None -> None))

let max_states m = m.budget.Budget.max_states
let max_events m = m.budget.Budget.max_events

let states_over m n =
  match m.budget.Budget.max_states with
  | Some cap when n >= cap -> Some (States n)
  | _ -> None

let events_over m n =
  match m.budget.Budget.max_events with
  | Some cap when n >= cap -> Some (Events n)
  | _ -> None

let snapshot m ~visited ~frontier =
  {
    elapsed_s = elapsed m;
    heap_words = (Gc.quick_stat ()).Gc.heap_words;
    visited;
    frontier;
  }
