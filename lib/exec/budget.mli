(** Resource budgets for long-running computations.

    A budget is a passive record of limits — wall-clock seconds,
    major-heap words, explored-state and executed-event caps, and an
    optional cooperative cancellation token.  It does nothing by
    itself; consumers hand it to {!Supervisor.start} and poll the
    resulting monitor on their existing cheap cadences (the simulator's
    256-step watchdog slot, the reachability interning loop).

    All limits are optional and independent; {!none} is the empty
    budget, under which every check is a near-free no-op. *)

type token
(** A cooperative cancellation token, safe to share across domains. *)

val token : unit -> token
(** A fresh, un-cancelled token. *)

val cancel : token -> unit
(** Request cancellation.  Idempotent; takes effect at the consumer's
    next budget check. *)

val cancelled : token -> bool

type t = {
  wall_s : float option;      (** wall-clock limit in seconds *)
  heap_words : int option;    (** major-heap limit, in words
                                  ([Gc.quick_stat]) *)
  max_states : int option;    (** explored-state cap (reach, gspn) *)
  max_events : int option;    (** executed-event cap (sim) *)
  cancel : token option;      (** cooperative cancellation *)
}

val none : t
(** No limits at all. *)

val make :
  ?wall_s:float ->
  ?heap_mb:int ->
  ?heap_words:int ->
  ?max_states:int ->
  ?max_events:int ->
  ?cancel:token ->
  unit ->
  t
(** Build a budget from whichever limits are given.  [heap_mb] is a
    convenience spelling of [heap_words] (it wins if both are given);
    limits must be positive ([Invalid_argument] otherwise). *)

val is_none : t -> bool
(** No limit is set — consumers may skip monitoring entirely. *)

val words_of_mb : int -> int
(** Megabytes to OCaml heap words on this platform. *)

val spill_threshold_bytes : t -> int
(** Byte budget for in-memory BFS frontiers before they spill to disk:
    1/16 of the heap limit when one is set (never below 4 KB), 64 MB
    otherwise.  Consumed by the packed reachability store. *)
