type token = bool Atomic.t

let token () = Atomic.make false
let cancel t = Atomic.set t true
let cancelled t = Atomic.get t

type t = {
  wall_s : float option;
  heap_words : int option;
  max_states : int option;
  max_events : int option;
  cancel : token option;
}

let none =
  { wall_s = None; heap_words = None; max_states = None; max_events = None;
    cancel = None }

let words_of_mb mb = mb * 1024 * 1024 / (Sys.word_size / 8)

let positive what = function
  | Some v when v <= 0 ->
    invalid_arg (Printf.sprintf "Budget: %s must be positive" what)
  | o -> o

let positive_f what = function
  | Some v when v <= 0.0 ->
    invalid_arg (Printf.sprintf "Budget: %s must be positive" what)
  | o -> o

let make ?wall_s ?heap_mb ?heap_words ?max_states ?max_events ?cancel () =
  let heap_words =
    match heap_mb with
    | Some mb -> Some (words_of_mb mb)
    | None -> heap_words
  in
  {
    wall_s = positive_f "wall_s" wall_s;
    heap_words = positive "heap_words" heap_words;
    max_states = positive "max_states" max_states;
    max_events = positive "max_events" max_events;
    cancel;
  }

(* Frontier-spill threshold for the packed reachability store: keep the
   in-memory frontier within a sliver (1/16) of the heap budget so the
   closed-set arena gets the rest, or within a fixed 64 MB when no heap
   limit is set. *)
let spill_threshold_bytes b =
  match b.heap_words with
  | Some w -> max 4096 (w * (Sys.word_size / 8) / 16)
  | None -> 64 * 1024 * 1024

let is_none b =
  b.wall_s = None && b.heap_words = None && b.max_states = None
  && b.max_events = None && b.cancel = None
