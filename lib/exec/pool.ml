let max_workers = 64

let env_jobs () =
  match Sys.getenv_opt "PNUT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let cores () = max 1 (Domain.recommended_domain_count ())

(* Auto-detection never oversubscribes: an absurd [PNUT_JOBS] is clamped
   to the machine.  Explicitly requested counts are honoured (tests
   deliberately run 4 workers on 1 core to exercise scheduling), but
   oversubscription is worth one warning per process — domains are real
   OS threads and contention makes runs slower, not faster. *)
let auto () =
  match env_jobs () with Some n -> min n (cores ()) | None -> cores ()

let warned_oversubscribed = Atomic.make false

let warn_if_oversubscribed n =
  let c = cores () in
  if n > c && not (Atomic.exchange warned_oversubscribed true) then
    Printf.eprintf
      "pnut: warning: %d jobs requested but only %d core%s available; extra \
       workers will contend for CPU\n%!"
      n c
      (if c = 1 then "" else "s")

let resolve ?jobs () =
  let n =
    match jobs with
    | Some n when n >= 1 -> n
    | Some 0 -> auto ()
    | Some n -> invalid_arg (Printf.sprintf "Pool: jobs must be >= 0, got %d" n)
    | None -> ( match env_jobs () with Some n -> n | None -> 1)
  in
  let n = min n max_workers in
  warn_if_oversubscribed n;
  n

type 'a task_outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }

(* Worker [d] computes tasks d, d+jobs, d+2*jobs, ...  Results and
   exceptions (with their backtraces) land in per-index slots, so no
   two domains ever write the same cell and the merge is a plain
   in-order scan.  A slot left [None] after the join means its worker
   died outside the per-task handler (or never spawned); those indices
   are retried once, inline, which preserves bit-identical results
   because stripes are index-deterministic. *)
let run_striped_supervised jobs n f =
  let slots = Array.make n None in
  let attempt i =
    match f i with
    | v -> slots.(i) <- Some (Done v)
    | exception e ->
      let backtrace = Printexc.get_raw_backtrace () in
      slots.(i) <- Some (Failed { exn = e; backtrace })
  in
  let worker d =
    let i = ref d in
    while !i < n do
      (match slots.(!i) with Some _ -> () | None -> attempt !i);
      i := !i + jobs
    done
  in
  let spawned =
    List.init (jobs - 1) (fun k ->
        try Some (Domain.spawn (fun () -> worker (k + 1)))
        with _ -> None)
  in
  worker 0;
  List.iter (function Some d -> (try Domain.join d with _ -> ()) | None -> ())
    spawned;
  (* Retry-once pass for any stripe abandoned by a dead worker. *)
  for i = 0 to n - 1 do
    if slots.(i) = None then attempt i
  done;
  Array.map
    (function Some o -> o | None -> assert false (* retried above *))
    slots

let run_striped jobs n f =
  let slots = run_striped_supervised jobs n f in
  Array.iter
    (function
      | Failed { exn; backtrace } ->
        (* lowest-numbered failure wins, with its original backtrace *)
        Printexc.raise_with_backtrace exn backtrace
      | Done _ -> ())
    slots;
  Array.map (function Done v -> v | Failed _ -> assert false) slots

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  let jobs = min (resolve ?jobs ()) (max 1 n) in
  if jobs <= 1 then Array.init n f else run_striped jobs n f

let init_supervised ?jobs n f =
  if n < 0 then invalid_arg "Pool.init_supervised: negative size";
  let jobs = min (resolve ?jobs ()) (max 1 n) in
  if jobs <= 1 then
    Array.init n (fun i ->
        match f i with
        | v -> Done v
        | exception e ->
          Failed { exn = e; backtrace = Printexc.get_raw_backtrace () })
  else run_striped_supervised jobs n f

let map_list ?jobs f l =
  let arr = Array.of_list l in
  Array.to_list (init ?jobs (Array.length arr) (fun i -> f arr.(i)))
