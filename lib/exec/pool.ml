let max_workers = 64

let env_jobs () =
  match Sys.getenv_opt "PNUT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let auto () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

let resolve ?jobs () =
  let n =
    match jobs with
    | Some n when n >= 1 -> n
    | Some 0 -> auto ()
    | Some n -> invalid_arg (Printf.sprintf "Pool: jobs must be >= 0, got %d" n)
    | None -> ( match env_jobs () with Some n -> n | None -> 1)
  in
  min n max_workers

(* Worker [d] computes tasks d, d+jobs, d+2*jobs, ...  Results and
   exceptions land in per-index slots, so no two domains ever write the
   same cell and the merge is a plain in-order scan. *)
let run_striped jobs n f =
  let results = Array.make n None in
  let errors = Array.make n None in
  let worker d =
    let i = ref d in
    while !i < n do
      (try results.(!i) <- Some (f !i) with e -> errors.(!i) <- Some e);
      i := !i + jobs
    done
  in
  let spawned =
    List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  for i = 0 to n - 1 do
    match errors.(i) with Some e -> raise e | None -> ()
  done;
  Array.map
    (function Some v -> v | None -> assert false (* no error, so filled *))
    results

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  let jobs = min (resolve ?jobs ()) (max 1 n) in
  if jobs <= 1 then Array.init n f else run_striped jobs n f

let map_list ?jobs f l =
  let arr = Array.of_list l in
  Array.to_list (init ?jobs (Array.length arr) (fun i -> f arr.(i)))
