let max_workers = 64

let env_jobs () =
  match Sys.getenv_opt "PNUT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let cores () = max 1 (Domain.recommended_domain_count ())

(* Auto-detection never oversubscribes: [PNUT_JOBS] is clamped to the
   machine whether it arrives through [auto] ([jobs = Some 0]) or
   through the [None] library default — the environment variable is
   auto-detection, not an explicit override.  Only an explicit [?jobs]
   count above the core count is honoured (tests deliberately run 4
   workers on 1 core to exercise scheduling), and oversubscription is
   worth a warning — domains are real OS threads and contention makes
   runs slower, not faster. *)
let auto () =
  match env_jobs () with Some n -> min n (cores ()) | None -> cores ()

let warning_printer = ref (fun msg -> Printf.eprintf "%s\n%!" msg)
let set_warning_printer f = warning_printer := f

(* The oversubscription latch is per-resolved-count, not a process-wide
   one-shot: with a persistent pool a process can first resolve 4
   workers and later 8, and the larger request deserves its own
   warning.  The latch keeps the largest count already warned about, so
   repeating a count (or shrinking) stays quiet while growing warns
   again. *)
let warned_up_to = Atomic.make 0

let reset_oversubscription_latch () = Atomic.set warned_up_to 0

let warn_if_oversubscribed n =
  let c = cores () in
  if n > c then begin
    let rec latch () =
      let prev = Atomic.get warned_up_to in
      if n <= prev then false
      else if Atomic.compare_and_set warned_up_to prev n then true
      else latch ()
    in
    if latch () then
      !warning_printer
        (Printf.sprintf
           "pnut: warning: %d jobs requested but only %d core%s available; \
            extra workers will contend for CPU"
           n c
           (if c = 1 then "" else "s"))
  end

let resolve ?jobs () =
  let n =
    match jobs with
    | Some n when n >= 1 -> n
    | Some 0 -> auto ()
    | Some n -> invalid_arg (Printf.sprintf "Pool: jobs must be >= 0, got %d" n)
    | None -> ( match env_jobs () with Some n -> min n (cores ()) | None -> 1)
  in
  let n = min n max_workers in
  warn_if_oversubscribed n;
  n

type 'a task_outcome =
  | Done of 'a
  | Failed of { exn : exn; backtrace : Printexc.raw_backtrace }

(* -- the persistent pool --

   Worker domains are spawned once per process, lazily, and parked on a
   condition variable between batches.  A batch is either:

   - chunked: tasks [0..n-1] are claimed in chunks off a shared atomic
     cursor by up to [b_limit] participants (the calling domain plus
     however many parked workers wake in time) — dynamic load balance,
     still deterministic because task [i]'s result lands in slot [i]
     whoever computes it; or

   - team: exactly [b_n] members, member [m] pinned to worker [m] (the
     caller is member 0).  Members are guaranteed their own domain, so
     they may busy-wait on each other — the sharded reachability BFS
     runs its co-routined shard loops this way.

   [b_attempt] never raises (callers wrap task bodies), so a worker's
   loop is total and the pool never loses a domain.  Completion is a
   per-batch done-counter: the participant finishing the last task
   broadcasts [idle] and the caller, waiting under the same mutex,
   wakes.  Atomic increments publish the slot writes (the OCaml memory
   model orders plain writes before a subsequent atomic that another
   domain reads). *)

type batch = {
  b_n : int;
  b_chunk : int;
  b_team : bool;
  b_limit : int;  (* max participants, caller included; chunked only *)
  b_attempt : int -> unit;  (* must not raise *)
  b_next : int Atomic.t;
  b_done : int Atomic.t;
  mutable b_joined : int;  (* under [mutex] *)
}

type pool = {
  mutex : Mutex.t;
  work : Condition.t;
  idle : Condition.t;
  mutable batch : batch option;
  mutable generation : int;
  mutable size : int;  (* persistent workers spawned so far *)
  mutable domains : unit Domain.t list;  (* handles, for [quiesce] *)
  mutable quit : bool;  (* workers retire on wake; set by [quiesce] *)
}

let pool =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    batch = None;
    generation = 0;
    size = 0;
    domains = [];
    quit = false;
  }

(* One batch in flight at a time; a nested or concurrent [init] (a task
   that itself fans out, or a second embedder domain) falls back to
   inline serial execution instead of corrupting the shared batch. *)
let busy = Atomic.make false

let signal_done () =
  Mutex.lock pool.mutex;
  Condition.broadcast pool.idle;
  Mutex.unlock pool.mutex

let finish_task (b : batch) =
  if Atomic.fetch_and_add b.b_done 1 = b.b_n - 1 then signal_done ()

let run_chunks (b : batch) =
  let continue_ = ref true in
  while !continue_ do
    let start = Atomic.fetch_and_add b.b_next b.b_chunk in
    if start >= b.b_n then continue_ := false
    else
      for i = start to min b.b_n (start + b.b_chunk) - 1 do
        b.b_attempt i;
        finish_task b
      done
  done

let run_member (b : batch) m =
  b.b_attempt m;
  finish_task b

(* Worker [w] (1-based, stable) parks between batches.  A chunked batch
   is joined by any worker while participant slots remain; a team batch
   only by the workers pinned to its members. *)
let worker_loop w =
  Mutex.lock pool.mutex;
  (* A batch may have been published between this worker's spawn and its
     first lock of the mutex; starting from a sentinel generation makes
     the worker examine the in-flight batch immediately instead of
     parking until the next one (which, for a team batch pinned to this
     worker, would never come). *)
  let my_gen = ref (-1) in
  let running = ref true in
  while !running do
    while pool.generation = !my_gen && not pool.quit do
      Condition.wait pool.work pool.mutex
    done;
    if pool.quit then running := false
    else begin
      my_gen := pool.generation;
      match pool.batch with
      | None -> ()
      | Some b ->
        if b.b_team then begin
          if w < b.b_n then begin
            Mutex.unlock pool.mutex;
            run_member b w;
            Mutex.lock pool.mutex
          end
        end
        else if b.b_joined < b.b_limit then begin
          b.b_joined <- b.b_joined + 1;
          Mutex.unlock pool.mutex;
          run_chunks b;
          Mutex.lock pool.mutex
        end
    end
  done;
  Mutex.unlock pool.mutex

(* Spawn persistent workers until [k] exist (or spawning fails — the
   pool then simply runs with fewer); returns the current size. *)
let ensure_workers k =
  let k = min k (max_workers - 1) in
  Mutex.lock pool.mutex;
  (try
     while (not pool.quit) && pool.size < k do
       let w = pool.size + 1 in
       let d = Domain.spawn (fun () -> worker_loop w) in
       pool.domains <- d :: pool.domains;
       pool.size <- w
     done
   with _ -> ());
  let n = pool.size in
  Mutex.unlock pool.mutex;
  n

(* Publish a batch, participate from the calling domain, then wait for
   the done-counter under the mutex.  The caller re-checks the counter
   before every wait, so a completion signalled before it parks is
   never missed. *)
let run_batch b =
  Mutex.lock pool.mutex;
  pool.batch <- Some b;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  (if b.b_team then run_member b 0 else run_chunks b);
  Mutex.lock pool.mutex;
  while Atomic.get b.b_done < b.b_n do
    Condition.wait pool.idle pool.mutex
  done;
  pool.batch <- None;
  Mutex.unlock pool.mutex

(* Chunk size: small enough for dynamic balance across uneven tasks,
   large enough to amortize the shared-cursor fetch-and-add. *)
let chunk_for workers n = max 1 (min 32 (n / (workers * 8)))

let init_outcomes ~jobs n f =
  let slots = Array.make n None in
  let attempt i =
    match f i with
    | v -> slots.(i) <- Some (Done v)
    | exception e ->
      let backtrace = Printexc.get_raw_backtrace () in
      slots.(i) <- Some (Failed { exn = e; backtrace })
  in
  let inline () =
    for i = 0 to n - 1 do
      if slots.(i) = None then attempt i
    done
  in
  (if jobs > 1 && n >= 2 then begin
     let workers = min jobs (1 + ensure_workers (jobs - 1)) in
     if workers > 1 && not (Atomic.exchange busy true) then
       Fun.protect
         ~finally:(fun () -> Atomic.set busy false)
         (fun () ->
           run_batch
             {
               b_n = n;
               b_chunk = chunk_for workers n;
               b_team = false;
               b_limit = workers;
               b_attempt = attempt;
               b_next = Atomic.make 0;
               b_done = Atomic.make 0;
               b_joined = 1;
             })
   end);
  (* Serial fallback doubles as a safety net: any slot not filled by the
     parallel batch (pool busy, no workers, or nothing ran) is computed
     inline, so the result is complete and deterministic regardless. *)
  inline ();
  Array.map
    (function Some o -> o | None -> assert false (* filled above *))
    slots

let reraise_lowest slots =
  Array.iter
    (function
      | Failed { exn; backtrace } ->
        (* lowest-numbered failure wins, with its original backtrace *)
        Printexc.raise_with_backtrace exn backtrace
      | Done _ -> ())
    slots

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  let jobs = min (resolve ?jobs ()) (max 1 n) in
  let slots = init_outcomes ~jobs n f in
  reraise_lowest slots;
  Array.map (function Done v -> v | Failed _ -> assert false) slots

let init_supervised ?jobs n f =
  if n < 0 then invalid_arg "Pool.init_supervised: negative size";
  let jobs = min (resolve ?jobs ()) (max 1 n) in
  init_outcomes ~jobs n f

let map_list ?jobs f l =
  let arr = Array.of_list l in
  Array.to_list (init ?jobs (Array.length arr) (fun i -> f arr.(i)))

(* -- co-scheduled teams -- *)

let team_size ?jobs () =
  let jobs = resolve ?jobs () in
  if jobs <= 1 then 1 else min jobs (1 + ensure_workers (jobs - 1))

let run_team j member =
  if j < 1 then invalid_arg "Pool.run_team: team size must be >= 1";
  if j = 1 then begin
    member 0;
    true
  end
  else if 1 + ensure_workers (j - 1) < j then false
  else if Atomic.exchange busy true then false
  else begin
    let slots = Array.make j None in
    let attempt m =
      match member m with
      | () -> slots.(m) <- Some (Done ())
      | exception e ->
        let backtrace = Printexc.get_raw_backtrace () in
        slots.(m) <- Some (Failed { exn = e; backtrace })
    in
    Fun.protect
      ~finally:(fun () -> Atomic.set busy false)
      (fun () ->
        run_batch
          {
            b_n = j;
            b_chunk = 1;
            b_team = true;
            b_limit = j;
            b_attempt = attempt;
            b_next = Atomic.make 0;
            b_done = Atomic.make 0;
            b_joined = 1;
          });
    reraise_lowest
      (Array.map (function Some o -> o | None -> assert false) slots);
    true
  end

(* Retiring the pool matters on OCaml 5 because *every* live domain
   participates in every stop-the-world minor collection: a process
   that finished its parallel phase and entered a long serial,
   allocation-heavy phase pays a cross-domain synchronization per
   minor GC for workers that are doing nothing — measured at ~2x on
   serial simulation throughput on a single-core container.  The next
   parallel call simply respawns the workers. *)
let quiesce () =
  if not (Atomic.exchange busy true) then
    Fun.protect
      ~finally:(fun () -> Atomic.set busy false)
      (fun () ->
        Mutex.lock pool.mutex;
        let ds = pool.domains in
        pool.domains <- [];
        pool.size <- 0;
        pool.quit <- true;
        Condition.broadcast pool.work;
        Mutex.unlock pool.mutex;
        List.iter Domain.join ds;
        Mutex.lock pool.mutex;
        pool.quit <- false;
        Mutex.unlock pool.mutex)

(* Backoff for busy-wait loops inside team members: stay on the CPU for
   a short burst (another member is usually about to publish), then
   yield real time so an oversubscribed box can schedule the member
   being waited on. *)
let relax spins =
  if spins < 512 then Domain.cpu_relax () else Unix.sleepf 0.0002
