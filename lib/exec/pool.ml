let max_workers = 64

let env_jobs () =
  match Sys.getenv_opt "PNUT_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let cores () = max 1 (Domain.recommended_domain_count ())

(* Auto-detection never oversubscribes: an absurd [PNUT_JOBS] is clamped
   to the machine.  Explicitly requested counts are honoured (tests
   deliberately run 4 workers on 1 core to exercise scheduling), but
   oversubscription is worth one warning per process — domains are real
   OS threads and contention makes runs slower, not faster. *)
let auto () =
  match env_jobs () with Some n -> min n (cores ()) | None -> cores ()

let warned_oversubscribed = Atomic.make false

let warn_if_oversubscribed n =
  let c = cores () in
  if n > c && not (Atomic.exchange warned_oversubscribed true) then
    Printf.eprintf
      "pnut: warning: %d jobs requested but only %d core%s available; extra \
       workers will contend for CPU\n%!"
      n c
      (if c = 1 then "" else "s")

let resolve ?jobs () =
  let n =
    match jobs with
    | Some n when n >= 1 -> n
    | Some 0 -> auto ()
    | Some n -> invalid_arg (Printf.sprintf "Pool: jobs must be >= 0, got %d" n)
    | None -> ( match env_jobs () with Some n -> n | None -> 1)
  in
  let n = min n max_workers in
  warn_if_oversubscribed n;
  n

(* Worker [d] computes tasks d, d+jobs, d+2*jobs, ...  Results and
   exceptions land in per-index slots, so no two domains ever write the
   same cell and the merge is a plain in-order scan. *)
let run_striped jobs n f =
  let results = Array.make n None in
  let errors = Array.make n None in
  let worker d =
    let i = ref d in
    while !i < n do
      (try results.(!i) <- Some (f !i) with e -> errors.(!i) <- Some e);
      i := !i + jobs
    done
  in
  let spawned =
    List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  for i = 0 to n - 1 do
    match errors.(i) with Some e -> raise e | None -> ()
  done;
  Array.map
    (function Some v -> v | None -> assert false (* no error, so filled *))
    results

let init ?jobs n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  let jobs = min (resolve ?jobs ()) (max 1 n) in
  if jobs <= 1 then Array.init n f else run_striped jobs n f

let map_list ?jobs f l =
  let arr = Array.of_list l in
  Array.to_list (init ?jobs (Array.length arr) (fun i -> f arr.(i)))
