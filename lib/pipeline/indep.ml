module Net = Pnut_core.Net
module B = Pnut_core.Net.Builder

(* N disjoint copies of a K-stage pipeline: pipeline [i] is a chain of
   K+1 slot places (token starts in slot 0, capacity 1 everywhere) with
   K advance transitions moving it forward one stage.  The copies share
   no place, so their advances are pairwise independent — the full
   interleaving graph has (K+1)^N states while any single serialization
   has N*K+1, which is exactly the gap stubborn-set reduction closes. *)
let net ~pipelines ~stages =
  if pipelines < 1 then invalid_arg "Indep.net: pipelines must be >= 1";
  if stages < 1 then invalid_arg "Indep.net: stages must be >= 1";
  let b = B.create (Printf.sprintf "indep%dx%d" pipelines stages) in
  for i = 1 to pipelines do
    let slot k =
      Printf.sprintf "P%d_s%d" i k
    in
    let prev = ref (B.add_place b (slot 0) ~initial:1 ~capacity:1) in
    for k = 1 to stages do
      let next = B.add_place b (slot k) ~capacity:1 in
      let (_ : Net.transition_id) =
        B.add_transition b
          (Printf.sprintf "P%d_adv%d" i k)
          ~inputs:[ (!prev, 1) ]
          ~outputs:[ (next, 1) ]
      in
      prev := next
    done
  done;
  B.build b

let parse_name s =
  match Scanf.sscanf s "indep%dx%d%!" (fun n k -> (n, k)) with
  | (n, k) when n >= 1 && k >= 1 -> Some (n, k)
  | _ -> None
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None
