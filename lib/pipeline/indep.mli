(** Synthetic width-scalable concurrency benchmark nets.

    [indep<N>x<K>] is N fully independent K-stage pipelines: per
    pipeline a chain of K+1 one-bounded slot places with a single token
    advancing through K transitions.  Nothing is shared between
    pipelines, so the full reachability graph has (K+1)^N markings —
    the pure interleaving explosion — while a stubborn-set reduced
    build needs only ~N*K+1.  The unique deadlock (every token in its
    final slot) and the all-ones place bounds are the same either way,
    which is what the bench's identity gate checks. *)

val net : pipelines:int -> stages:int -> Pnut_core.Net.t
(** Raises [Invalid_argument] unless both arguments are [>= 1]. *)

val parse_name : string -> (int * int) option
(** [parse_name "indep6x4"] is [Some (6, 4)]; [None] for anything that
    is not exactly [indep<N>x<K>] with both counts [>= 1]. *)
