(** Analytical (non-simulation) performance evaluation.

    The paper's conclusion notes that "other tools support analytical (as
    opposed to simulation) performance evaluation".  This module is that
    tool for the classical GSPN subclass: every transition is either

    - {b immediate} — zero firing and enabling time; conflicts among
      simultaneously enabled immediate transitions are resolved by their
      relative frequencies, exactly as in simulation; or
    - {b timed} — an [Exponential mean] enabling delay (rate [1/mean]).
      Exponential {e firing} times are rejected: their in-flight phases
      would need state expansion, and the memoryless enabling form
      expresses the same distribution.

    The reachability graph is built with atomic firings; markings enabling
    an immediate transition are {e vanishing} (zero sojourn) and are
    eliminated exactly (dense linear algebra), giving a continuous-time
    Markov chain over the tangible markings.  Its stationary distribution
    is computed by uniformized power iteration.

    Restrictions (checked, [Invalid_argument] otherwise): no predicates or
    actions (the state must be the marking alone), single-server semantics
    (a timed transition's rate does not scale with its enabling degree),
    bounded nets within [max_states].

    Results are exact up to the linear-algebra tolerance, so they serve as
    an oracle for the simulator on exponential models (and vice versa). *)

type result = {
  tangible_states : int;
  vanishing_states : int;
  place_means : float array;
      (** expected token count per place id (time average) *)
  throughputs : float array;
      (** firings per unit time per transition id, timed and immediate *)
}

type rejection = {
  rj_explored : int;  (** states interned when the cap was hit *)
  rj_cap : int;       (** the effective [max_states] *)
}

exception Too_many_states of rejection
(** Raised by {!analyze}/{!analyze_supervised} when exploration exceeds
    the state cap — typically an unbounded net, for which no stationary
    analysis exists.  A structural rejection like
    {!Pnut_reach.Coverability.Unsupported}, not a resource trip. *)

val rejection_message : rejection -> string
(** One-line human-readable rendering for CLI error reporting. *)

val analyze :
  ?max_states:int ->
  ?tolerance:float ->
  ?max_iterations:int ->
  Pnut_core.Net.t -> result
(** [max_states] caps the reachability exploration (default 2000;
    raises {!Too_many_states} past it); [tolerance] is the
    stationary-iteration stopping criterion (default 1e-12);
    [max_iterations] bounds the power iteration (default 100_000). *)

val analyze_supervised :
  ?max_states:int ->
  ?tolerance:float ->
  ?max_iterations:int ->
  ?budget:Pnut_exec.Budget.t ->
  Pnut_core.Net.t -> result Pnut_exec.Supervisor.outcome
(** {!analyze} under a budget, polled on the exploration dequeue
    cadence; [budget.max_states] tightens [max_states].  A wall, heap
    or cancellation trip yields [Degraded] with the analysis restricted
    to the explored prefix (unexpanded states act as absorbing, and the
    stationary vector is re-normalized); the state cap still raises
    {!Too_many_states}. *)

val place_mean : result -> Pnut_core.Net.t -> string -> float
(** Lookup by place name; raises [Not_found]. *)

val throughput : result -> Pnut_core.Net.t -> string -> float
(** Lookup by transition name; raises [Not_found]. *)

val exponential_variant : Pnut_core.Net.t -> Pnut_core.Net.t
(** Rebuild a net for analytical evaluation: every deterministic delay
    (constant firing or enabling time [d > 0]) becomes an [Exponential d]
    enabling delay with the same mean, zero-delay transitions stay
    immediate.  Raises [Invalid_argument] on nets that already use other
    stochastic durations, predicates or actions. *)
