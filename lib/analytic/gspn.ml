module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Kernel = Pnut_core.Kernel
module Budget = Pnut_exec.Budget
module Supervisor = Pnut_exec.Supervisor

type rejection = {
  rj_explored : int;
  rj_cap : int;
}

exception Too_many_states of rejection

let rejection_message { rj_explored; rj_cap } =
  Printf.sprintf
    "Gspn: state space exceeds max_states (%d states explored, cap %d) — the \
     net may be unbounded; raise the cap or bound the offending places"
    rj_explored rj_cap

type kind =
  | Immediate of float  (* conflict weight *)
  | Timed of float      (* rate = 1 / mean *)

type result = {
  tangible_states : int;
  vanishing_states : int;
  place_means : float array;
  throughputs : float array;
}

let classify net =
  Array.map
    (fun tr ->
      let fail fmt =
        Printf.ksprintf
          (fun s -> invalid_arg (Printf.sprintf "Gspn: transition %s %s" tr.Net.t_name s))
          fmt
      in
      if tr.Net.t_predicate <> None then fail "has a predicate";
      if tr.Net.t_action <> [] then fail "has an action";
      match tr.Net.t_firing, tr.Net.t_enabling with
      | Net.Zero, Net.Zero -> Immediate tr.Net.t_frequency
      | Net.Zero, Net.Exponential mean ->
        if mean <= 0.0 then fail "has a non-positive exponential mean";
        Timed (1.0 /. mean)
      | Net.Exponential _, _ ->
        fail "has an exponential firing time (use an enabling time)"
      | (Net.Const _ | Net.Uniform _ | Net.Choice _ | Net.Dynamic _), _
      | _, (Net.Const _ | Net.Uniform _ | Net.Choice _ | Net.Dynamic _) ->
        fail "has a non-exponential delay (analyze the exponential_variant)")
    (Net.transitions net)

(* -- state space -- *)

type state = {
  marking : int array;
  (* outgoing edges: immediate (probability) for vanishing states, timed
     (rate) for tangible ones; targets are state indices *)
  mutable edges : (int * float * int) list;  (* transition id, weight, target *)
  vanishing : bool;
}

let explore ?(max_states = 2000) ~monitor net kinds =
  let monitored = Supervisor.active monitor in
  let max_states =
    match Supervisor.max_states monitor with
    | Some cap -> min cap max_states
    | None -> max_states
  in
  let kernel = Kernel.of_net net in
  let trans = Kernel.transitions kernel in
  let readers = Kernel.readers kernel in
  let index = Hashtbl.create 512 in
  let states = ref [] in  (* reversed; index !n - 1 is the head *)
  let n = ref 0 in
  let queue = Queue.create () in
  (* The enabled set (ascending transition ids) is carried along with
     each queued marking and maintained incrementally: firing [tid]
     touches only its input/output places, so only the kernel's readers
     of those places can change enabledness — everything else is
     inherited from the parent marking without a rescan. *)
  let affected =
    Array.map
      (fun (c : Kernel.ctrans) ->
        let acc = ref [] in
        let note p = acc := Array.to_list readers.(p) @ !acc in
        Array.iter note c.Kernel.s_in_places;
        Array.iter note c.Kernel.s_out_places;
        Array.of_list (List.sort_uniq compare !acc))
      trans
  in
  let full_scan m =
    Array.to_list trans
    |> List.filter_map (fun (c : Kernel.ctrans) ->
           if Kernel.token_enabled c m then Some c.Kernel.s_id else None)
  in
  let update_enabled parent_enabled fired m' =
    let cand = affected.(fired) in
    let is_cand tid = Array.exists (fun x -> x = tid) cand in
    let kept = List.filter (fun tid -> not (is_cand tid)) parent_enabled in
    let added =
      Array.to_list cand
      |> List.filter (fun tid -> Kernel.token_enabled trans.(tid) m')
    in
    List.merge compare kept added
  in
  let is_immediate tid =
    match kinds.(tid) with Immediate _ -> true | Timed _ -> false
  in
  let intern m enabled =
    let key = Marking.to_key m in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      if !n >= max_states then
        raise (Too_many_states { rj_explored = !n; rj_cap = max_states });
      let vanishing = List.exists is_immediate enabled in
      let state =
        { marking = Marking.to_array m; edges = []; vanishing }
      in
      let i = !n in
      incr n;
      Hashtbl.replace index key i;
      states := state :: !states;
      Queue.add (state, m, enabled) queue;
      i
  in
  let m0 = Net.initial_marking net in
  let _ = intern m0 (full_scan m0) in
  let trip = ref None in
  let processed = ref 0 in
  (* Budget checks ride the dequeue boundary every 256 states.  A trip
     leaves already-interned states with empty edge lists; downstream
     they behave as absorbing states, which uniformization tolerates. *)
  (try
  while not (Queue.is_empty queue) do
    incr processed;
    if monitored && !processed land 255 = 0 then begin
      match Supervisor.check monitor with
      | Some r ->
        trip := Some r;
        raise_notrace Exit
      | None -> ()
    end;
    let state, m, enabled = Queue.pop queue in
    let fire tid =
      let c = trans.(tid) in
      let m' = Marking.copy m in
      Kernel.consume c m';
      Kernel.produce c m';
      intern m' (update_enabled enabled tid m')
    in
    let immediates = List.filter is_immediate enabled in
    let edges =
      if immediates <> [] then begin
        let weight tid =
          match kinds.(tid) with
          | Immediate w -> w
          | Timed _ -> assert false
        in
        let total =
          List.fold_left (fun acc tid -> acc +. weight tid) 0.0 immediates
        in
        List.map (fun tid -> (tid, weight tid /. total, fire tid)) immediates
      end
      else
        List.filter_map
          (fun tid ->
            match kinds.(tid) with
            | Timed rate -> Some (tid, rate, fire tid)
            | Immediate _ -> None)
          enabled
    in
    state.edges <- edges
  done
  with Exit -> ());
  (* the list is reversed relative to the indices *)
  (Array.of_list (List.rev !states), !trip, Queue.length queue)

(* -- vanishing elimination (Jacobi over absorption vectors) -- *)

(* For each vanishing state v: [absorb.(v)] maps tangible index -> absorption
   probability, and [fires.(v)] maps transition id -> expected immediate
   firings before absorption. *)
let eliminate_vanishing ~monitor states tangible_index nt n_transitions =
  let n = Array.length states in
  let monitored = Supervisor.active monitor in
  let tripped = ref None in
  let absorb = Array.map (fun s -> if s.vanishing then Array.make nt 0.0 else [||]) states in
  let fires =
    Array.map (fun s -> if s.vanishing then Array.make n_transitions 0.0 else [||]) states
  in
  let max_sweeps = 100_000 in
  let rec sweep k =
    if k >= max_sweeps then
      invalid_arg "Gspn: vanishing elimination did not converge (immediate loop?)";
    let delta = ref 0.0 in
    for v = 0 to n - 1 do
      if states.(v).vanishing then begin
        let new_absorb = Array.make nt 0.0 in
        let new_fires = Array.make n_transitions 0.0 in
        List.iter
          (fun (tid, prob, target) ->
            new_fires.(tid) <- new_fires.(tid) +. prob;
            if states.(target).vanishing then begin
              let a = absorb.(target) and f = fires.(target) in
              for j = 0 to nt - 1 do
                new_absorb.(j) <- new_absorb.(j) +. (prob *. a.(j))
              done;
              for u = 0 to n_transitions - 1 do
                new_fires.(u) <- new_fires.(u) +. (prob *. f.(u))
              done
            end
            else begin
              let j = tangible_index.(target) in
              new_absorb.(j) <- new_absorb.(j) +. prob
            end)
          states.(v).edges;
        for j = 0 to nt - 1 do
          delta := Float.max !delta (Float.abs (new_absorb.(j) -. absorb.(v).(j)))
        done;
        absorb.(v) <- new_absorb;
        fires.(v) <- new_fires
      end
    done;
    if !delta > 1e-14 then begin
      (* A sweep visits every vanishing state, so polling once per sweep
         bounds post-trip work to a single pass over the chain. *)
      match if monitored then Supervisor.check monitor else None with
      | Some reason -> tripped := Some reason
      | None -> sweep (k + 1)
    end
  in
  sweep 0;
  (absorb, fires, !tripped)

let analyze_supervised ?(max_states = 2000) ?(tolerance = 1e-12)
    ?(max_iterations = 100_000) ?(budget = Budget.none) net =
  let monitor = Supervisor.start budget in
  let kinds = classify net in
  let states, trip, frontier = explore ~max_states ~monitor net kinds in
  let n = Array.length states in
  let n_transitions = Net.num_transitions net in
  (* index tangible states *)
  let tangible_index = Array.make n (-1) in
  let nt = ref 0 in
  Array.iteri
    (fun i s ->
      if not s.vanishing then begin
        tangible_index.(i) <- !nt;
        incr nt
      end)
    states;
  let nt = !nt in
  if nt = 0 then invalid_arg "Gspn: no tangible states (immediate livelock)";
  let tangible_of = Array.make nt 0 in
  Array.iteri (fun i s -> if not s.vanishing then tangible_of.(tangible_index.(i)) <- i) states;
  let absorb, fires, elim_trip =
    eliminate_vanishing ~monitor states tangible_index nt n_transitions
  in
  let solve_trip = ref elim_trip in
  let monitored = Supervisor.active monitor in
  (* tangible CTMC: rows of (target tangible, rate), plus per-row exit rate *)
  let rows = Array.make nt [] in
  let exit = Array.make nt 0.0 in
  for ti = 0 to nt - 1 do
    let i = tangible_of.(ti) in
    let acc = Hashtbl.create 8 in
    let add j rate =
      Hashtbl.replace acc j (rate +. try Hashtbl.find acc j with Not_found -> 0.0)
    in
    List.iter
      (fun (_, rate, target) ->
        exit.(ti) <- exit.(ti) +. rate;
        if states.(target).vanishing then
          Array.iteri
            (fun j p -> if p > 0.0 then add j (rate *. p))
            absorb.(target)
        else add tangible_index.(target) rate)
      states.(i).edges;
    rows.(ti) <- Hashtbl.fold (fun j r acc -> (j, r) :: acc) acc []
  done;
  (* uniformized power iteration *)
  let lambda = Array.fold_left Float.max 1e-9 exit in
  let pi = Array.make nt (1.0 /. float_of_int nt) in
  let next = Array.make nt 0.0 in
  let rec iterate k =
    if k >= max_iterations then ()
    else begin
      Array.fill next 0 nt 0.0;
      for i = 0 to nt - 1 do
        let stay = 1.0 -. (exit.(i) /. lambda) in
        next.(i) <- next.(i) +. (pi.(i) *. stay);
        List.iter
          (fun (j, rate) -> next.(j) <- next.(j) +. (pi.(i) *. rate /. lambda))
          rows.(i)
      done;
      let delta = ref 0.0 in
      for i = 0 to nt - 1 do
        delta := !delta +. Float.abs (next.(i) -. pi.(i));
        pi.(i) <- next.(i)
      done;
      if !delta > tolerance then begin
        (* Each iteration sweeps the whole tangible chain, so a per-iteration
           poll keeps the solve responsive even on a huge partial chain left
           behind by a tripped exploration; the unconverged iterate is still
           emitted as the partial result. *)
        match if monitored then Supervisor.check monitor else None with
        | Some reason -> if !solve_trip = None then solve_trip := Some reason
        | None -> iterate (k + 1)
      end
    end
  in
  if !solve_trip = None then iterate 0;
  (* normalize (guards drift) *)
  let total = Array.fold_left ( +. ) 0.0 pi in
  Array.iteri (fun i v -> pi.(i) <- v /. total) pi;
  (* outputs *)
  let np = Net.num_places net in
  let place_means = Array.make np 0.0 in
  for ti = 0 to nt - 1 do
    let m = states.(tangible_of.(ti)).marking in
    for p = 0 to np - 1 do
      place_means.(p) <- place_means.(p) +. (pi.(ti) *. float_of_int m.(p))
    done
  done;
  let throughputs = Array.make n_transitions 0.0 in
  for ti = 0 to nt - 1 do
    let i = tangible_of.(ti) in
    List.iter
      (fun (tid, rate, target) ->
        (* the timed firing itself *)
        throughputs.(tid) <- throughputs.(tid) +. (pi.(ti) *. rate);
        (* immediate firings in the vanishing excursion it triggers *)
        if states.(target).vanishing then
          Array.iteri
            (fun u f ->
              if f > 0.0 then
                throughputs.(u) <- throughputs.(u) +. (pi.(ti) *. rate *. f))
            fires.(target))
      states.(i).edges
  done;
  let result =
    {
      tangible_states = nt;
      vanishing_states = n - nt;
      place_means;
      throughputs;
    }
  in
  (* An exploration trip outranks a solve trip: it is the first budget
     violation and explains why the chain is a prefix at all. *)
  let trip = match trip with Some _ -> trip | None -> !solve_trip in
  match trip with
  | None -> Supervisor.Complete result
  | Some reason ->
    Supervisor.Degraded
      {
        reason;
        partial = result;
        progress = Supervisor.snapshot monitor ~visited:n ~frontier;
      }

let analyze ?max_states ?tolerance ?max_iterations net =
  Supervisor.value
    (analyze_supervised ?max_states ?tolerance ?max_iterations net)

let place_mean r net name =
  r.place_means.(Net.place_id net name)

let throughput r net name =
  r.throughputs.(Net.transition_id net name)

(* -- deterministic -> exponential rebuild -- *)

module B = Net.Builder

let exponential_variant net =
  let b =
    B.create (Net.name net ^ "_exp") ~variables:(Net.variables net)
      ~tables:(Net.tables net)
  in
  Array.iter
    (fun p ->
      ignore
        (match p.Net.p_capacity with
        | Some c -> B.add_place b p.Net.p_name ~initial:p.Net.p_initial ~capacity:c
        | None -> B.add_place b p.Net.p_name ~initial:p.Net.p_initial
          : Net.place_id))
    (Net.places net);
  Array.iter
    (fun tr ->
      if tr.Net.t_predicate <> None || tr.Net.t_action <> [] then
        invalid_arg
          (Printf.sprintf
             "Gspn.exponential_variant: transition %s has a predicate or action"
             tr.Net.t_name);
      let mean =
        match tr.Net.t_firing, tr.Net.t_enabling with
        | Net.Zero, Net.Zero -> None
        | Net.Const d, Net.Zero | Net.Zero, Net.Const d -> Some d
        | Net.Const d1, Net.Const d2 -> Some (d1 +. d2)
        | Net.Zero, Net.Exponential m | Net.Exponential m, Net.Zero -> Some m
        | (Net.Uniform _ | Net.Choice _ | Net.Dynamic _ | Net.Exponential _ | Net.Const _), _
        | Net.Zero, (Net.Uniform _ | Net.Choice _ | Net.Dynamic _) ->
          invalid_arg
            (Printf.sprintf
               "Gspn.exponential_variant: transition %s has an unsupported \
                delay shape"
               tr.Net.t_name)
      in
      let arcs l = List.map (fun a -> (a.Net.a_place, a.Net.a_weight)) l in
      let enabling =
        match mean with
        | Some m when m > 0.0 -> Net.Exponential m
        | Some _ | None -> Net.Zero
      in
      ignore
        (B.add_transition b tr.Net.t_name ~inputs:(arcs tr.Net.t_inputs)
           ~inhibitors:(arcs tr.Net.t_inhibitors)
           ~outputs:(arcs tr.Net.t_outputs) ~enabling
           ~frequency:tr.Net.t_frequency
          : Net.transition_id))
    (Net.transitions net);
  B.build b
