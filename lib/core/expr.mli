(** The expression language for transition predicates, actions and
    data-dependent timing.

    This is the "predicates and actions" extension of the paper
    (Sections 1 and 3): predicates are data-dependent pre-conditions
    evaluated over the model environment; actions are sequences of
    assignments run when a transition completes firing.  The same
    expressions drive data-dependent firing/enabling times in table-driven
    instruction-set models, and are reused by tracertool for user-defined
    signal functions. *)

type unop =
  | Neg  (** arithmetic negation *)
  | Not  (** boolean negation *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Const of Value.t
  | Var of string              (** model variable *)
  | Index of string * t        (** table lookup [tbl\[e\]] *)
  | Unop of unop * t
  | Binop of binop * t * t
  | If of t * t * t            (** conditional expression *)
  | Call of string * t list    (** builtin: irand, min, max, abs, floor, ceil, int, float *)

type stmt =
  | Assign of string * t           (** [x = e] *)
  | Table_assign of string * t * t (** [tbl\[i\] = e] *)

(** Convenience constructors. *)

val int : int -> t
val float : float -> t
val bool : bool -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t
val irand : t -> t -> t
val index : string -> t -> t

(** Evaluation. [prng] is required only if the expression calls [irand];
    evaluating [irand] without one raises [Eval_error]. *)

val eval : ?prng:Prng.t -> Env.t -> t -> Value.t
val eval_bool : ?prng:Prng.t -> Env.t -> t -> bool
val eval_float : ?prng:Prng.t -> Env.t -> t -> float
val eval_int : ?prng:Prng.t -> Env.t -> t -> int

val run_stmt : ?prng:Prng.t -> Env.t -> stmt -> unit
val run_stmts : ?prng:Prng.t -> Env.t -> stmt list -> unit

(** {2 Compilation}

    [compile] specializes an expression to one environment (and
    optionally one random stream), returning a closure that evaluates it
    without any AST walk or name lookup: variables and tables resolve to
    their live {!Env} cells on first use and stay cached ([Env.set]
    mutates cells in place, so the cache never goes stale).  Evaluation
    order, random draws and [Eval_error] messages are identical to
    {!eval} — the simulator relies on this to keep traces bit-for-bit
    reproducible across the interpreted and compiled paths. *)

val compile : ?prng:Prng.t -> Env.t -> t -> (unit -> Value.t)
val compile_bool : ?prng:Prng.t -> Env.t -> t -> (unit -> bool)
val compile_float : ?prng:Prng.t -> Env.t -> t -> (unit -> float)
val compile_int : ?prng:Prng.t -> Env.t -> t -> (unit -> int)

val variables : t -> string list
(** Free variables (not tables), sorted, deduplicated. *)

val is_deterministic : t -> bool
(** [false] if the expression (transitively) calls [irand]. *)

val pp : Format.formatter -> t -> unit
(** Prints in the concrete syntax accepted by [Pnut_lang]. *)

val pp_stmt : Format.formatter -> stmt -> unit

val to_string : t -> string

exception Eval_error of string
