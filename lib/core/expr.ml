type unop =
  | Neg
  | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type t =
  | Const of Value.t
  | Var of string
  | Index of string * t
  | Unop of unop * t
  | Binop of binop * t * t
  | If of t * t * t
  | Call of string * t list

type stmt =
  | Assign of string * t
  | Table_assign of string * t * t

exception Eval_error of string

let eval_error fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let bool b = Const (Value.Bool b)
let var name = Var name
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( <> ) a b = Binop (Ne, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let not_ a = Unop (Not, a)
let irand lo hi = Call ("irand", [ lo; hi ])
let index tbl i = Index (tbl, i)

(* Arithmetic on values: int op int stays int; any float promotes. *)
let arith name int_op float_op a b =
  match a, b with
  | Value.Int x, Value.Int y -> Value.Int (int_op x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (float_op (Value.to_float a) (Value.to_float b))
  | (Value.Bool _, _ | _, Value.Bool _) ->
    eval_error "operator %s applied to a boolean" name

(* One binop application over already-evaluated operands; shared between
   the interpreter and the closure compiler so the two can never drift. *)
let apply_binop op va vb =
  let cmp op = Value.Bool (op (Value.compare_num va vb) 0) in
  match op with
  | Add -> arith "+" Stdlib.( + ) Stdlib.( +. ) va vb
  | Sub -> arith "-" Stdlib.( - ) Stdlib.( -. ) va vb
  | Mul -> arith "*" Stdlib.( * ) Stdlib.( *. ) va vb
  | Div -> (
    match va, vb with
    | Value.Int _, Value.Int 0 -> eval_error "integer division by zero"
    | _ -> arith "/" Stdlib.( / ) Stdlib.( /. ) va vb)
  | Mod -> (
    match va, vb with
    | Value.Int _, Value.Int 0 -> eval_error "modulo by zero"
    | Value.Int x, Value.Int y -> Value.Int (x mod y)
    | _ -> eval_error "%% requires integer operands")
  | Eq -> Value.Bool (Value.equal va vb)
  | Ne -> Value.Bool (Stdlib.not (Value.equal va vb))
  | Lt -> cmp Stdlib.( < )
  | Le -> cmp Stdlib.( <= )
  | Gt -> cmp Stdlib.( > )
  | Ge -> cmp Stdlib.( >= )
  | And | Or -> assert false (* handled in [eval] for short-circuiting *)

let rec eval ?prng env expr =
  match expr with
  | Const v -> v
  | Var name -> (
    try Env.get env name
    with Env.Unbound name -> eval_error "unbound variable %s" name)
  | Index (tbl, e) -> (
    let i = Value.to_int (eval ?prng env e) in
    try Env.table_get env tbl i
    with
    | Env.Unbound name -> eval_error "unbound table %s" name
    | Invalid_argument msg -> eval_error "%s" msg)
  | Unop (Neg, e) -> (
    match eval ?prng env e with
    | Value.Int i -> Value.Int (Stdlib.( - ) 0 i)
    | Value.Float f -> Value.Float (-.f)
    | Value.Bool _ -> eval_error "negation applied to a boolean")
  | Unop (Not, e) -> Value.Bool (Stdlib.not (eval_bool ?prng env e))
  | Binop (And, a, b) ->
    (* short-circuit *)
    Value.Bool (if eval_bool ?prng env a then eval_bool ?prng env b else false)
  | Binop (Or, a, b) ->
    Value.Bool (if eval_bool ?prng env a then true else eval_bool ?prng env b)
  | Binop (op, a, b) -> eval_binop ?prng env op a b
  | If (c, th, el) ->
    if eval_bool ?prng env c then eval ?prng env th else eval ?prng env el
  | Call (fn, args) -> eval_call ?prng env fn args

and eval_binop ?prng env op a b =
  let va = eval ?prng env a in
  let vb = eval ?prng env b in
  apply_binop op va vb

and eval_call ?prng env fn args =
  let values () = List.map (eval ?prng env) args in
  let unary name f =
    match values () with
    | [ v ] -> f v
    | vs -> eval_error "%s expects 1 argument, got %d" name (List.length vs)
  in
  let binary name f =
    match values () with
    | [ a; b ] -> f a b
    | vs -> eval_error "%s expects 2 arguments, got %d" name (List.length vs)
  in
  match fn with
  | "irand" -> (
    match prng with
    | None -> eval_error "irand used in a context without a random stream"
    | Some g ->
      binary "irand" (fun a b ->
          let lo = Value.to_int a and hi = Value.to_int b in
          if Stdlib.( > ) lo hi then
            eval_error "irand: empty range [%d,%d]" lo hi;
          Value.Int (Prng.int_range g lo hi)))
  | "min" ->
    binary "min" (fun a b ->
        if Stdlib.( <= ) (Value.compare_num a b) 0 then a else b)
  | "max" ->
    binary "max" (fun a b ->
        if Stdlib.( >= ) (Value.compare_num a b) 0 then a else b)
  | "abs" ->
    unary "abs" (function
      | Value.Int i -> Value.Int (Stdlib.abs i)
      | Value.Float f -> Value.Float (Float.abs f)
      | Value.Bool _ -> eval_error "abs applied to a boolean")
  | "floor" -> unary "floor" (fun v -> Value.Float (Float.floor (Value.to_float v)))
  | "ceil" -> unary "ceil" (fun v -> Value.Float (Float.ceil (Value.to_float v)))
  | "int" -> unary "int" (fun v -> Value.Int (Value.to_int v))
  | "float" -> unary "float" (fun v -> Value.Float (Value.to_float v))
  | other -> eval_error "unknown function %s" other

and eval_bool ?prng env e =
  match eval ?prng env e with
  | Value.Bool b -> b
  | (Value.Int _ | Value.Float _) as v ->
    eval_error "expected a boolean, got %s" (Value.to_string v)

let eval_float ?prng env e = Value.to_float (eval ?prng env e)
let eval_int ?prng env e = Value.to_int (eval ?prng env e)

let run_stmt ?prng env = function
  | Assign (name, e) -> Env.set env name (eval ?prng env e)
  | Table_assign (tbl, ie, e) -> (
    let i = eval_int ?prng env ie in
    let v = eval ?prng env e in
    try Env.table_set env tbl i v
    with
    | Env.Unbound name -> eval_error "unbound table %s" name
    | Invalid_argument msg -> eval_error "%s" msg)

let run_stmts ?prng env stmts = List.iter (run_stmt ?prng env) stmts

(* -- compilation to closures --

   [compile] turns an expression into a [unit -> Value.t] closure bound
   to one environment (and optionally one random stream).  Variable and
   table names resolve to their live [Env] cells on first use and are
   cached — [Env.set] mutates cells in place and never removes them, so
   a cached cell stays valid for the environment's lifetime.  The
   compiled closure evaluates sub-expressions in exactly the order the
   interpreter does (left to right, short-circuiting [and]/[or],
   arguments before arity checks) and raises the same [Eval_error]
   messages, so random draws and failure behaviour are identical — a
   trace produced through compiled expressions is bit-for-bit the trace
   the interpreter produces. *)

let compile ?prng env expr =
  let rec comp e =
    match e with
    | Const v -> fun () -> v
    | Var name ->
      let slot = ref None in
      fun () -> (
        match !slot with
        | Some cell -> !cell
        | None -> (
          match Env.find_ref env name with
          | Some cell ->
            slot := Some cell;
            !cell
          | None -> eval_error "unbound variable %s" name))
    | Index (tbl, ie) ->
      let ci = comp ie in
      let slot = ref None in
      fun () ->
        let i = Value.to_int (ci ()) in
        let arr =
          match !slot with
          | Some arr -> arr
          | None -> (
            match Env.find_table env tbl with
            | Some arr ->
              slot := Some arr;
              arr
            | None -> eval_error "unbound table %s" tbl)
        in
        let len = Array.length arr in
        if Stdlib.( && ) (Stdlib.( <= ) 0 i) (Stdlib.( < ) i len) then arr.(i)
        else
          eval_error "Env.table_get: index %d out of bounds for %s[%d]" i tbl
            len
    | Unop (Neg, e) ->
      let c = comp e in
      fun () -> (
        match c () with
        | Value.Int i -> Value.Int (Stdlib.( - ) 0 i)
        | Value.Float f -> Value.Float (-.f)
        | Value.Bool _ -> eval_error "negation applied to a boolean")
    | Unop (Not, e) ->
      let c = comp_bool e in
      fun () -> Value.Bool (Stdlib.not (c ()))
    | Binop (And, a, b) ->
      let ca = comp_bool a in
      let cb = comp_bool b in
      fun () -> Value.Bool (if ca () then cb () else false)
    | Binop (Or, a, b) ->
      let ca = comp_bool a in
      let cb = comp_bool b in
      fun () -> Value.Bool (if ca () then true else cb ())
    | Binop (op, a, b) ->
      let ca = comp a in
      let cb = comp b in
      fun () ->
        let va = ca () in
        let vb = cb () in
        apply_binop op va vb
    | If (c, th, el) ->
      let cc = comp_bool c in
      let cth = comp th in
      let cel = comp el in
      fun () -> if cc () then cth () else cel ()
    | Call (fn, args) -> comp_call fn args
  and comp_bool e =
    let c = comp e in
    fun () -> (
      match c () with
      | Value.Bool b -> b
      | (Value.Int _ | Value.Float _) as v ->
        eval_error "expected a boolean, got %s" (Value.to_string v))
  and comp_call fn args =
    (* like [eval_call]'s [values ()]: arguments are evaluated left to
       right before the arity check, so their side effects (random
       draws, errors) happen even when the call is malformed *)
    let rec force = function
      | [] -> []
      | c :: rest ->
        let v = c () in
        v :: force rest
    in
    let unary name f =
      let cs = List.map comp args in
      match cs with
      | [ c ] -> fun () -> f (c ())
      | _ ->
        fun () ->
          eval_error "%s expects 1 argument, got %d" name
            (List.length (force cs))
    in
    let binary name f =
      let cs = List.map comp args in
      match cs with
      | [ ca; cb ] ->
        fun () ->
          let a = ca () in
          let b = cb () in
          f a b
      | _ ->
        fun () ->
          eval_error "%s expects 2 arguments, got %d" name
            (List.length (force cs))
    in
    match fn with
    | "irand" -> (
      match prng with
      | None ->
        fun () -> eval_error "irand used in a context without a random stream"
      | Some g ->
        binary "irand" (fun a b ->
            let lo = Value.to_int a and hi = Value.to_int b in
            if Stdlib.( > ) lo hi then
              eval_error "irand: empty range [%d,%d]" lo hi;
            Value.Int (Prng.int_range g lo hi)))
    | "min" ->
      binary "min" (fun a b ->
          if Stdlib.( <= ) (Value.compare_num a b) 0 then a else b)
    | "max" ->
      binary "max" (fun a b ->
          if Stdlib.( >= ) (Value.compare_num a b) 0 then a else b)
    | "abs" ->
      unary "abs" (function
        | Value.Int i -> Value.Int (Stdlib.abs i)
        | Value.Float f -> Value.Float (Float.abs f)
        | Value.Bool _ -> eval_error "abs applied to a boolean")
    | "floor" ->
      unary "floor" (fun v -> Value.Float (Float.floor (Value.to_float v)))
    | "ceil" ->
      unary "ceil" (fun v -> Value.Float (Float.ceil (Value.to_float v)))
    | "int" -> unary "int" (fun v -> Value.Int (Value.to_int v))
    | "float" -> unary "float" (fun v -> Value.Float (Value.to_float v))
    | other -> fun () -> eval_error "unknown function %s" other
  in
  comp expr

let compile_bool ?prng env e =
  let c = compile ?prng env e in
  fun () -> (
    match c () with
    | Value.Bool b -> b
    | (Value.Int _ | Value.Float _) as v ->
      eval_error "expected a boolean, got %s" (Value.to_string v))

let compile_float ?prng env e =
  let c = compile ?prng env e in
  fun () -> Value.to_float (c ())

let compile_int ?prng env e =
  let c = compile ?prng env e in
  fun () -> Value.to_int (c ())

let variables expr =
  let rec go acc = function
    | Const _ -> acc
    | Var name -> name :: acc
    | Index (_, e) | Unop (_, e) -> go acc e
    | Binop (_, a, b) -> go (go acc a) b
    | If (a, b, c) -> go (go (go acc a) b) c
    | Call (_, args) -> List.fold_left go acc args
  in
  go [] expr |> List.sort_uniq String.compare

let rec is_deterministic = function
  | Const _ | Var _ -> true
  | Index (_, e) | Unop (_, e) -> is_deterministic e
  | Binop (_, a, b) -> Stdlib.( && ) (is_deterministic a) (is_deterministic b)
  | If (a, b, c) -> List.for_all is_deterministic [ a; b; c ]
  | Call ("irand", _) -> false
  | Call (_, args) -> List.for_all is_deterministic args

(* Pretty-printing in the concrete syntax of Pnut_lang.  Precedence levels:
   0 or, 1 and, 2 comparison, 3 add/sub, 4 mul/div/mod, 5 unary, 6 atom.
   Operand levels must mirror the parser's associativity so that printed
   text re-parses to the same tree: +,-,*,/,% are left-associative
   (right operand one level up), and/or right-associative (left operand
   one level up), comparisons non-associative (both one level up). *)
let binop_info = function
  | Or -> ("or", 0, `Right)
  | And -> ("and", 1, `Right)
  | Eq -> ("==", 2, `None)
  | Ne -> ("!=", 2, `None)
  | Lt -> ("<", 2, `None)
  | Le -> ("<=", 2, `None)
  | Gt -> (">", 2, `None)
  | Ge -> (">=", 2, `None)
  | Add -> ("+", 3, `Left)
  | Sub -> ("-", 3, `Left)
  | Mul -> ("*", 4, `Left)
  | Div -> ("/", 4, `Left)
  | Mod -> ("%", 4, `Left)

let rec pp_prec level ppf expr =
  match expr with
  | Const v -> Value.pp ppf v
  | Var name -> Format.pp_print_string ppf name
  | Index (tbl, e) -> Format.fprintf ppf "%s[%a]" tbl (pp_prec 0) e
  | Unop (op, e) ->
    let sym = match op with Neg -> "-" | Not -> "not " in
    if Stdlib.( > ) 5 level then Format.fprintf ppf "%s%a" sym (pp_prec 5) e
    else Format.fprintf ppf "(%s%a)" sym (pp_prec 5) e
  | Binop (op, a, b) ->
    let sym, prec, assoc = binop_info op in
    let left_level, right_level =
      let next = Stdlib.( + ) prec 1 in
      match assoc with
      | `Left -> (prec, next)
      | `Right -> (next, prec)
      | `None -> (next, next)
    in
    let body ppf () =
      Format.fprintf ppf "%a %s %a" (pp_prec left_level) a sym
        (pp_prec right_level) b
    in
    if Stdlib.( >= ) prec level then body ppf ()
    else Format.fprintf ppf "(%a)" body ()
  | If (c, th, el) ->
    Format.fprintf ppf "(if %a then %a else %a)" (pp_prec 0) c (pp_prec 0) th
      (pp_prec 0) el
  | Call (fn, args) ->
    Format.fprintf ppf "%s(%a)" fn
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_prec 0))
      args

let pp ppf expr = pp_prec 0 ppf expr

let pp_stmt ppf = function
  | Assign (name, e) -> Format.fprintf ppf "%s = %a" name pp e
  | Table_assign (tbl, i, e) -> Format.fprintf ppf "%s[%a] = %a" tbl pp i pp e

let to_string e = Format.asprintf "%a" pp e
