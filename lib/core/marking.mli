(** Markings: the token state of a net, indexed by place id.

    A marking assigns a non-negative token count to every place.  In the
    paper's terms, boolean conditions are modeled by presence/absence of a
    token and counted resources (buffer slots, bus) by multiple tokens. *)

type t
(** Mutable token-count vector. *)

val create : int -> t
(** [create n] is the zero marking over [n] places. *)

val of_array : int array -> t
(** Copies the array; raises [Invalid_argument] on negative counts. *)

val to_array : t -> int array
(** Fresh copy of the counts. *)

val size : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit
(** Raises [Invalid_argument] on a negative count. *)

val add : t -> int -> int -> unit
(** [add m p k] adds [k] (possibly negative) tokens to place [p];
    raises [Invalid_argument] if the result would be negative, or a
    distinct [Invalid_argument] if it would overflow [max_int]. *)

val copy : t -> t

val unsafe_wrap : int array -> t
(** The array itself as a marking — no copy, no validation.  For
    decoders that already guarantee non-negative counts and need a
    zero-cost view (the packed reachability store); mutations of the
    array are visible through the marking and vice versa. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val total : t -> int
(** Total number of tokens across all places. *)

val pp : Format.formatter -> t -> unit

val to_key : t -> string
(** Compact canonical string, usable as a hash key. *)
