(** Incidence matrices and classical structural analysis.

    These give the algebraic counterpart of the paper's informal invariants
    — e.g. the Bus_free/Bus_busy pair of Section 4.2 whose token sum must
    always be one is exactly a P-invariant with weight 1 on both places.
    P-invariants found here are also used by tests to cross-check the
    simulator (token conservation along any firing sequence). *)

type t
(** Integer incidence matrix [C] with [C.(p).(t) = W(t,p) - W(p,t)].
    Inhibitor arcs do not move tokens and do not appear. *)

val of_net : Net.t -> t

val effect : t -> Net.transition_id -> int array
(** Column of the matrix: net token change per place for one firing. *)

val entry : t -> Net.place_id -> Net.transition_id -> int

val num_places : t -> int
val num_transitions : t -> int

val apply : t -> int array -> Net.transition_id -> unit
(** In-place marking update by one firing (no enabledness check). *)

val p_invariants : t -> int array list
(** Minimal-support non-negative place invariants (Farkas' algorithm):
    vectors [y >= 0], [y <> 0] with [y^T C = 0].  For every reachable
    marking [m], [y . m = y . m0]. *)

val t_invariants : t -> int array list
(** Non-negative transition invariants: [C x = 0]; firing each transition
    [x(t)] times reproduces the marking. *)

val conserved : t -> int array -> bool
(** [conserved c y] checks [y^T C = 0]. *)

val covered_by_p_invariants : t -> bool
(** Every place has a positive entry in some P-invariant; implies the net
    is structurally bounded. *)

val weighted_sum : int array -> int array -> int
(** [weighted_sum y m] is the invariant value [y . m]. *)

val place_bounds : Net.t -> int option array
(** Per-place upper bound on the token count over all reachable
    markings, or [None] when no bound is known.  Combines the declared
    capacities with the P-invariant bounds [(y . M0) / y_p] for every
    invariant with [y_p > 0]; invariants are skipped on nets larger
    than 200 places or transitions (Farkas can explode), falling back
    to capacities alone.  A declared capacity is taken at face value —
    callers that size storage from these bounds must keep a checked
    overflow path. *)

(** {2 Static dependency relations}

    The per-net structure the stubborn-set reduction of
    [Reach.Graph.build ~por:true] closes over; precomputed once from
    the arc lists, no marking involved. *)

val conflicts : Net.t -> int array array
(** [(conflicts net).(t)]: the transitions [t' <> t] that touch a
    common place with [t] through {e any} arc — a shared input place
    (token competition), an inhibitor arc on a place the other reads or
    moves (either direction), or a shared output place (interleaving
    order decides the place's intermediate peaks).  Sorted ascending.
    Symmetric: [t' ∈ conflicts(t)] iff [t ∈ conflicts(t')].
    Transitions touching disjoint place sets never conflict — the
    reduction exploits exactly that independence. *)

val enablers : Net.t -> int array array
(** [(enablers net).(p)]: the transitions whose firing strictly
    increases the token count of place [p] (net arc delta [> 0]) — the
    only candidates that can cure an insufficient input place of a
    disabled transition.  A self-loop returning what it takes appears
    in neither this nor {!consumers}.  Sorted ascending. *)

val consumers : Net.t -> int array array
(** [(consumers net).(p)]: the transitions whose firing strictly
    decreases the token count of place [p] (net arc delta [< 0]) — the
    only candidates that can release an over-threshold inhibitor place
    of a disabled transition.  Sorted ascending. *)

val pp_vector : Net.t -> [ `Place | `Transition ] -> Format.formatter ->
  int array -> unit
(** Renders e.g. [Bus_free + Bus_busy] with names from the net. *)
