type t = {
  matrix : int array array;  (* places x transitions *)
  np : int;
  nt : int;
}

let of_net net =
  let np = Net.num_places net in
  let nt = Net.num_transitions net in
  let matrix = Array.make_matrix np nt 0 in
  Array.iter
    (fun tr ->
      let j = tr.Net.t_id in
      List.iter
        (fun { Net.a_place; a_weight } ->
          matrix.(a_place).(j) <- matrix.(a_place).(j) - a_weight)
        tr.Net.t_inputs;
      List.iter
        (fun { Net.a_place; a_weight } ->
          matrix.(a_place).(j) <- matrix.(a_place).(j) + a_weight)
        tr.Net.t_outputs)
    (Net.transitions net);
  { matrix; np; nt }

let num_places c = c.np
let num_transitions c = c.nt

let entry c p t = c.matrix.(p).(t)

let effect c t = Array.init c.np (fun p -> c.matrix.(p).(t))

let apply c marking t =
  for p = 0 to c.np - 1 do
    marking.(p) <- marking.(p) + c.matrix.(p).(t)
  done

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let vector_gcd v = Array.fold_left (fun acc x -> gcd acc x) 0 v

let normalize v =
  let g = vector_gcd v in
  if g > 1 then Array.map (fun x -> x / g) v else Array.copy v

let support v =
  let s = ref [] in
  Array.iteri (fun i x -> if x <> 0 then s := i :: !s) v;
  !s

let support_subset a b =
  (* support(a) subset-of support(b)? *)
  let ok = ref true in
  Array.iteri (fun i x -> if x <> 0 && b.(i) = 0 then ok := false) a;
  !ok

(* Farkas' algorithm.  [rows] is a list of (coeff vector over the original
   rows, residual matrix row).  Eliminates one column at a time, combining
   positive and negative rows; rows already zero in the column survive. *)
let farkas ~rows ~cols matrix =
  let max_rows = 20000 in
  let initial =
    List.init rows (fun i ->
        let coeff = Array.make rows 0 in
        coeff.(i) <- 1;
        (coeff, Array.copy matrix.(i)))
  in
  let eliminate col current =
    let zero, nonzero =
      List.partition (fun (_, row) -> row.(col) = 0) current
    in
    let pos = List.filter (fun (_, row) -> row.(col) > 0) nonzero in
    let neg = List.filter (fun (_, row) -> row.(col) < 0) nonzero in
    let combos =
      List.concat_map
        (fun (cp, rp) ->
          List.map
            (fun (cn, rn) ->
              let a = rp.(col) and b = -rn.(col) in
              let g = gcd a b in
              let ka = b / g and kb = a / g in
              let coeff =
                Array.init rows (fun i -> (ka * cp.(i)) + (kb * cn.(i)))
              in
              let row =
                Array.init cols (fun j -> (ka * rp.(j)) + (kb * rn.(j)))
              in
              (coeff, row))
            neg)
        pos
    in
    let merged = zero @ combos in
    if List.length merged > max_rows then
      invalid_arg "Incidence: invariant computation exceeded row limit";
    merged
  in
  let rec go col current =
    if col >= cols then current else go (col + 1) (eliminate col current)
  in
  let final = go 0 initial in
  let candidates =
    List.filter_map
      (fun (coeff, _) ->
        if Array.exists (fun x -> x <> 0) coeff then Some (normalize coeff)
        else None)
    final
  in
  (* keep minimal-support, deduplicated vectors *)
  let minimal v others =
    not
      (List.exists
         (fun w -> w != v && support_subset w v && support w <> support v)
         others)
  in
  let dedup =
    List.fold_left
      (fun acc v -> if List.exists (fun w -> w = v) acc then acc else v :: acc)
      [] candidates
    |> List.rev
  in
  List.filter (fun v -> minimal v dedup) dedup

let p_invariants c = farkas ~rows:c.np ~cols:c.nt c.matrix

let t_invariants c =
  let transposed =
    Array.init c.nt (fun j -> Array.init c.np (fun i -> c.matrix.(i).(j)))
  in
  farkas ~rows:c.nt ~cols:c.np transposed

let conserved c y =
  let ok = ref true in
  for j = 0 to c.nt - 1 do
    let sum = ref 0 in
    for i = 0 to c.np - 1 do
      sum := !sum + (y.(i) * c.matrix.(i).(j))
    done;
    if !sum <> 0 then ok := false
  done;
  !ok

let covered_by_p_invariants c =
  let invs = p_invariants c in
  let covered = Array.make c.np false in
  List.iter
    (fun y -> Array.iteri (fun i x -> if x > 0 then covered.(i) <- true) y)
    invs;
  Array.for_all (fun b -> b) covered

let weighted_sum y m =
  let sum = ref 0 in
  Array.iteri (fun i x -> sum := !sum + (x * m.(i))) y;
  !sum

(* Upper bounds on reachable token counts: the declared capacity (if
   any) tightened by every P-invariant — for an invariant [y >= 0] with
   [y_p > 0], [y.M = y.M0] along any firing sequence, so
   [M(p) <= (y.M0) / y_p].  Farkas can blow up combinatorially, so
   invariants are only consulted under a size guard and its row-limit
   trip is treated as "no invariants". *)
let place_bounds net =
  let np = Net.num_places net in
  let m0 = Marking.to_array (Net.initial_marking net) in
  let bounds = Array.init np (fun p -> (Net.place net p).Net.p_capacity) in
  let tighten p b =
    match bounds.(p) with
    | Some c when c <= b -> ()
    | Some _ | None -> bounds.(p) <- Some b
  in
  if np <= 200 && Net.num_transitions net <= 200 then begin
    let invs =
      try p_invariants (of_net net) with Invalid_argument _ -> []
    in
    List.iter
      (fun y ->
        let total = weighted_sum y m0 in
        Array.iteri (fun p yp -> if yp > 0 then tighten p (total / yp)) y)
      invs
  end;
  bounds

(* -- static dependency relations for stubborn-set reduction --

   [conflicts] links two transitions whenever they touch a common place
   through any arc (input, inhibitor or output).  This is deliberately
   coarser than the minimal "shared input place" conflict: besides token
   competition it covers both inhibitor directions (t may raise or
   lower a place t' tests, and vice versa) and shared outputs, whose
   interleavings are what give a place its intermediate peaks — so a
   reduction closed under this relation never fires two place-sharing
   transitions in only one order, which is what keeps the reduced
   graph's deadlock set exact and its place bounds exact on terminating
   nets.  Transitions in different place-connected components stay
   unrelated, which is where the reduction wins.

   [enablers]/[consumers] are per place: the transitions whose firing
   strictly raises (resp. lowers) its token count, by net arc delta —
   a self-loop that returns what it takes moves nothing and appears in
   neither.  They answer the closure's question for a disabled
   transition: who could cure an insufficient input place (producers),
   who could release an over-threshold inhibitor place (consumers). *)

let arc_places tr =
  let ps arcs = List.map (fun a -> a.Net.a_place) arcs in
  List.sort_uniq compare
    (ps tr.Net.t_inputs @ ps tr.Net.t_inhibitors @ ps tr.Net.t_outputs)

let conflicts net =
  let np = Net.num_places net in
  let nt = Net.num_transitions net in
  let touching = Array.make np [] in
  (* descending build per place so each list ends up ascending *)
  for i = nt - 1 downto 0 do
    List.iter
      (fun p -> touching.(p) <- i :: touching.(p))
      (arc_places (Net.transition net i))
  done;
  let seen = Array.make nt false in
  Array.map
    (fun tr ->
      let t = tr.Net.t_id in
      let acc = ref [] in
      List.iter
        (fun p ->
          List.iter
            (fun t' ->
              if t' <> t && not seen.(t') then begin
                seen.(t') <- true;
                acc := t' :: !acc
              end)
            touching.(p))
        (arc_places tr);
      let l = List.sort compare !acc in
      List.iter (fun t' -> seen.(t') <- false) l;
      Array.of_list l)
    (Net.transitions net)

let net_deltas net =
  let np = Net.num_places net in
  let prod = Array.make np [] in
  let cons = Array.make np [] in
  for i = Net.num_transitions net - 1 downto 0 do
    let tr = Net.transition net i in
    let delta = Hashtbl.create 8 in
    let add sign { Net.a_place; a_weight } =
      let d = try Hashtbl.find delta a_place with Not_found -> 0 in
      Hashtbl.replace delta a_place (d + (sign * a_weight))
    in
    List.iter (add (-1)) tr.Net.t_inputs;
    List.iter (add 1) tr.Net.t_outputs;
    (* iterate places in sorted order so the per-place lists stay
       deterministic (Hashtbl.iter order is not) *)
    Hashtbl.fold (fun p d acc -> (p, d) :: acc) delta []
    |> List.sort compare
    |> List.iter (fun (p, d) ->
           if d > 0 then prod.(p) <- i :: prod.(p)
           else if d < 0 then cons.(p) <- i :: cons.(p))
  done;
  (prod, cons)

let enablers net = Array.map Array.of_list (fst (net_deltas net))
let consumers net = Array.map Array.of_list (snd (net_deltas net))

let pp_vector net kind ppf v =
  let name i =
    match kind with
    | `Place -> (Net.place net i).Net.p_name
    | `Transition -> (Net.transition net i).Net.t_name
  in
  let terms =
    Array.to_list v
    |> List.mapi (fun i x -> (i, x))
    |> List.filter (fun (_, x) -> x <> 0)
    |> List.map (fun (i, x) ->
           if x = 1 then name i else Printf.sprintf "%d*%s" x (name i))
  in
  Format.pp_print_string ppf (String.concat " + " terms)
