exception Unbound of string

(* Variables are stored behind a [ref] cell so that a compiled expression
   (see {!Expr.compile}) can resolve a name to its cell once and then read
   or write it without any further hashtable lookup.  [set] mutates the
   existing cell in place, so cached cells stay valid for the lifetime of
   the environment.  Cells are never removed. *)
type t = {
  vars : (string, Value.t ref) Hashtbl.t;
  tbls : (string, Value.t array) Hashtbl.t;
}

let create () = { vars = Hashtbl.create 16; tbls = Hashtbl.create 4 }

let of_bindings ?(tables = []) vars =
  let env = create () in
  let add_var (name, v) =
    if Hashtbl.mem env.vars name then
      invalid_arg ("Env.of_bindings: duplicate variable " ^ name);
    Hashtbl.replace env.vars name (ref v)
  in
  let add_table (name, arr) =
    if Hashtbl.mem env.tbls name then
      invalid_arg ("Env.of_bindings: duplicate table " ^ name);
    Hashtbl.replace env.tbls name (Array.copy arr)
  in
  List.iter add_var vars;
  List.iter add_table tables;
  env

let copy env =
  let vars = Hashtbl.create (Hashtbl.length env.vars) in
  Hashtbl.iter (fun k cell -> Hashtbl.replace vars k (ref !cell)) env.vars;
  let tbls = Hashtbl.create (Hashtbl.length env.tbls) in
  Hashtbl.iter (fun k v -> Hashtbl.replace tbls k (Array.copy v)) env.tbls;
  { vars; tbls }

let get env name =
  match Hashtbl.find_opt env.vars name with
  | Some cell -> !cell
  | None -> raise (Unbound name)

let set env name v =
  match Hashtbl.find_opt env.vars name with
  | Some cell -> cell := v
  | None -> Hashtbl.replace env.vars name (ref v)

let mem env name = Hashtbl.mem env.vars name

let find_ref env name = Hashtbl.find_opt env.vars name

let find_table env name = Hashtbl.find_opt env.tbls name

let get_table env name =
  match Hashtbl.find_opt env.tbls name with
  | Some arr -> arr
  | None -> raise (Unbound name)

let table_get env name i =
  let arr = get_table env name in
  if i < 0 || i >= Array.length arr then
    invalid_arg
      (Printf.sprintf "Env.table_get: index %d out of bounds for %s[%d]" i name
         (Array.length arr));
  arr.(i)

let table_set env name i v =
  let arr = get_table env name in
  if i < 0 || i >= Array.length arr then
    invalid_arg
      (Printf.sprintf "Env.table_set: index %d out of bounds for %s[%d]" i name
         (Array.length arr));
  arr.(i) <- v

let bindings env =
  Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) env.vars []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let tables env =
  Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) env.tbls []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot env =
  let buf = Buffer.create 64 in
  let add_var (k, v) =
    Buffer.add_string buf k;
    Buffer.add_char buf '=';
    Buffer.add_string buf (Value.to_string v);
    Buffer.add_char buf ';'
  in
  let add_table (k, arr) =
    Buffer.add_string buf k;
    Buffer.add_string buf "=[";
    Array.iter
      (fun v ->
        Buffer.add_string buf (Value.to_string v);
        Buffer.add_char buf ',')
      arr;
    Buffer.add_string buf "];"
  in
  List.iter add_var (bindings env);
  List.iter add_table (tables env);
  Buffer.contents buf

(* Structural equality over the canonical (sorted) views.  The previous
   snapshot-string comparison aliased distinct environments whose names
   contain the separator characters — e.g. the single binding
   ["a=1;b" = 2] against the pair [a = 1; b = 2]. *)

let bindings_equal a b =
  List.equal
    (fun (ka, va) (kb, vb) -> String.equal ka kb && Value.equal va vb)
    a b

let tables_equal a b =
  List.equal
    (fun (ka, va) (kb, vb) ->
      String.equal ka kb
      && Array.length va = Array.length vb
      && Array.for_all2 Value.equal va vb)
    a b

let equal a b =
  bindings_equal (bindings a) (bindings b) && tables_equal (tables a) (tables b)

let hash env =
  let h = ref 17 in
  let mix v = h := (!h * 31) lxor v in
  List.iter
    (fun (k, v) ->
      mix (Hashtbl.hash k);
      mix (Value.hash v))
    (bindings env);
  List.iter
    (fun (k, arr) ->
      mix (Hashtbl.hash k);
      Array.iter (fun v -> mix (Value.hash v)) arr)
    (tables env);
  !h land max_int
