(* Deterministic-delay helpers shared by the timed builders.  A timed
   reachability construction only terminates when every delay resolves
   to one concrete value per environment; these helpers classify the
   duration kinds once so the state-class builder and the frozen
   explicit oracle agree to the letter on what is accepted and on the
   error text for what is not. *)

let det ~who env = function
  | Net.Zero -> 0.0
  | Net.Const d -> d
  | Net.Uniform (lo, hi) when Float.equal lo hi -> lo
  | Net.Choice ((v, _) :: rest)
    when List.for_all (fun (v', _) -> Float.equal v v') rest ->
    v
  | Net.Dynamic e when Expr.is_deterministic e -> Expr.eval_float env e
  | Net.Uniform _ | Net.Exponential _ | Net.Choice _ | Net.Dynamic _ ->
    invalid_arg (who ^ ": stochastic duration in a timed reachability net")

let deterministic = function
  | Net.Zero | Net.Const _ -> true
  | Net.Uniform (lo, hi) when Float.equal lo hi -> true
  | Net.Choice ((v, _) :: rest)
    when List.for_all (fun (v', _) -> Float.equal v v') rest ->
    true
  | Net.Dynamic e when Expr.is_deterministic e -> true
  | Net.Uniform _ | Net.Exponential _ | Net.Choice _ | Net.Dynamic _ -> false

let check_net ~who net =
  Array.iter
    (fun tr ->
      let check_dur what d =
        if not (deterministic d) then
          invalid_arg
            (Printf.sprintf "%s: stochastic %s time on transition %s" who what
               tr.Net.t_name)
      in
      check_dur "firing" tr.Net.t_firing;
      check_dur "enabling" tr.Net.t_enabling;
      (match tr.Net.t_predicate with
      | Some p when not (Expr.is_deterministic p) ->
        invalid_arg (who ^ ": stochastic predicate on transition " ^ tr.Net.t_name)
      | Some _ | None -> ());
      if
        List.exists
          (fun s ->
            match s with
            | Expr.Assign (_, e) -> not (Expr.is_deterministic e)
            | Expr.Table_assign (_, i, e) ->
              not (Expr.is_deterministic i && Expr.is_deterministic e))
          tr.Net.t_action
      then
        invalid_arg (who ^ ": stochastic action on transition " ^ tr.Net.t_name))
    (Net.transitions net)
