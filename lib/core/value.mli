(** Runtime values carried by model variables, tables, predicates and
    actions (the interpreted-net extension of Section 3 of the paper). *)

type t =
  | Int of int
  | Float of float
  | Bool of bool

val equal : t -> t -> bool
(** Structural equality with numeric promotion: [Int 1] equals [Float 1.]. *)

val hash : t -> int
(** Compatible with {!equal}: numerically equal values hash alike
    ([Int 1] and [Float 1.] collide on purpose). *)

val compare_num : t -> t -> int
(** Numeric comparison; raises [Type_error] on booleans. *)

val to_float : t -> float
(** Numeric coercion; raises [Type_error] on booleans. *)

val to_int : t -> int
(** [Int] passes through, [Float] truncates; raises [Type_error] on booleans. *)

val to_bool : t -> bool
(** Raises [Type_error] unless the value is a boolean. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

exception Type_error of string
