(* SplitMix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014.  State advances by the golden-gamma constant;
   outputs are a finalizer of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let state g = g.state

let of_state s = { state = s }

let copy g = { state = g.state }

let bits64 g =
  let z = Int64.add g.state golden_gamma in
  g.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let s = bits64 g in
  { state = s }

(* Non-negative 62-bit value, cheap and unbiased enough for modulo use
   after rejection sampling below. *)
let bits62 g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let bound = 0x3FFFFFFFFFFFFFFF in
  let limit = bound - (bound mod n) in
  let rec draw () =
    let v = bits62 g in
    if v >= limit then draw () else v mod n
  in
  draw ()

let int_range g lo hi =
  if lo > hi then invalid_arg "Prng.int_range: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 random bits into [0,1) *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  v *. (1.0 /. 9007199254740992.0)

let float g x = unit_float g *. x

let uniform g lo hi =
  if lo > hi then invalid_arg "Prng.uniform: empty range";
  lo +. (unit_float g *. (hi -. lo))

let exponential g mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = unit_float g in
  (* 1 - u is in (0,1], so log is finite *)
  -.mean *. log (1.0 -. u)

let choose_weighted g items =
  let total =
    List.fold_left
      (fun acc (_, w) ->
        if w < 0.0 then invalid_arg "Prng.choose_weighted: negative weight";
        acc +. w)
      0.0 items
  in
  if total <= 0.0 then invalid_arg "Prng.choose_weighted: non-positive total weight";
  let target = unit_float g *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.choose_weighted: empty list"
    | [ (x, _) ] -> x
    | (x, w) :: rest ->
      let acc = acc +. w in
      if target < acc then x else pick acc rest
  in
  pick 0.0 items
