(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the system (conflict resolution, duration
    sampling, [irand] in actions) flows from a single seeded stream so that
    every simulation experiment is exactly reproducible.  The generator is
    SplitMix64, which has a 64-bit state, passes BigCrush, and supports
    cheap stream splitting for independent experiments. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val state : t -> int64
(** The raw 64-bit internal state, for checkpointing a stream
    mid-flight. *)

val of_state : int64 -> t
(** Rebuilds a generator from a saved {!state}; the restored stream
    continues exactly where the captured one left off. *)

val copy : t -> t
(** Independent copy sharing no future state with the original. *)

val split : t -> t
(** [split g] advances [g] and returns a statistically independent
    generator; used to give each run of a multi-run experiment its own
    stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform on [0, n-1]. [n] must be positive. *)

val int_range : t -> int -> int -> int
(** [int_range g lo hi] is uniform on the inclusive range [lo, hi];
    this is the paper's [irand(lo, hi)]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform on [0, x). *)

val uniform : t -> float -> float -> float
(** [uniform g lo hi] is uniform on [lo, hi). *)

val exponential : t -> float -> float
(** [exponential g mean] samples an exponential with the given mean. *)

val choose_weighted : t -> ('a * float) list -> 'a
(** [choose_weighted g items] picks an item with probability proportional
    to its (strictly positive) weight.  Raises [Invalid_argument] on an
    empty list or non-positive total weight. *)
