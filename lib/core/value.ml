type t =
  | Int of int
  | Float of float
  | Bool of bool

exception Type_error of string

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Bool _ -> "bool"

let type_error want v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" want (type_name v)))

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool _ as v -> type_error "number" v

let to_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | Bool _ as v -> type_error "number" v

let to_bool = function
  | Bool b -> b
  | (Int _ | Float _) as v -> type_error "bool" v

let equal a b =
  match a, b with
  | Bool x, Bool y -> x = y
  | Bool _, (Int _ | Float _) | (Int _ | Float _), Bool _ -> false
  | Int x, Int y -> x = y
  | (Int _ | Float _), (Int _ | Float _) -> Float.equal (to_float a) (to_float b)

(* Must agree with [equal]: numerically equal Int/Float values hash the
   same, so hash via the float image. *)
let hash = function
  | Bool false -> 0x2545F491
  | Bool true -> 0x4F6CDD1D
  | (Int _ | Float _) as v ->
    Int64.to_int (Int64.bits_of_float (to_float v)) land max_int

let compare_num a b =
  match a, b with
  | Int x, Int y -> compare x y
  | (Int _ | Float _), (Int _ | Float _) -> compare (to_float a) (to_float b)
  | (Bool _, _ | _, Bool _) ->
    raise (Type_error "cannot order boolean values")

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v
