type place_id = int
type transition_id = int

type place = {
  p_id : place_id;
  p_name : string;
  p_initial : int;
  p_capacity : int option;
}

type arc = {
  a_place : place_id;
  a_weight : int;
}

type duration =
  | Zero
  | Const of float
  | Uniform of float * float
  | Exponential of float
  | Choice of (float * float) list
  | Dynamic of Expr.t

type transition = {
  t_id : transition_id;
  t_name : string;
  t_inputs : arc list;
  t_inhibitors : arc list;
  t_outputs : arc list;
  t_firing : duration;
  t_enabling : duration;
  t_frequency : float;
  t_predicate : Expr.t option;
  t_action : Expr.stmt list;
}

type t = {
  name : string;
  places : place array;
  transitions : transition array;
  variables : (string * Value.t) list;
  tables : (string * Value.t array) list;
  place_index : (string, place_id) Hashtbl.t;
  transition_index : (string, transition_id) Hashtbl.t;
}

let name net = net.name
let places net = net.places
let transitions net = net.transitions
let num_places net = Array.length net.places
let num_transitions net = Array.length net.transitions
let place net id = net.places.(id)
let transition net id = net.transitions.(id)

let find_place net nm =
  Option.map (fun id -> net.places.(id)) (Hashtbl.find_opt net.place_index nm)

let find_transition net nm =
  Option.map
    (fun id -> net.transitions.(id))
    (Hashtbl.find_opt net.transition_index nm)

let place_id net nm =
  match Hashtbl.find_opt net.place_index nm with
  | Some id -> id
  | None -> raise Not_found

let transition_id net nm =
  match Hashtbl.find_opt net.transition_index nm with
  | Some id -> id
  | None -> raise Not_found

let initial_marking net =
  let m = Marking.create (num_places net) in
  Array.iter (fun p -> Marking.set m p.p_id p.p_initial) net.places;
  m

let variables net = net.variables
let tables net = net.tables

let initial_env net = Env.of_bindings ~tables:net.tables net.variables

let marking_enabled _net marking t =
  let input_ok { a_place; a_weight } = Marking.get marking a_place >= a_weight in
  let inhibitor_ok { a_place; a_weight } =
    Marking.get marking a_place < a_weight
  in
  List.for_all input_ok t.t_inputs && List.for_all inhibitor_ok t.t_inhibitors

let enabled ?prng net marking env t =
  marking_enabled net marking t
  &&
  match t.t_predicate with
  | None -> true
  | Some p -> Expr.eval_bool ?prng env p

let consume net marking t =
  if not (marking_enabled net marking t) then
    invalid_arg
      (Printf.sprintf "Net.consume: transition %s is not enabled" t.t_name);
  List.iter
    (fun { a_place; a_weight } -> Marking.add marking a_place (-a_weight))
    t.t_inputs

let produce _net marking t =
  List.iter
    (fun { a_place; a_weight } -> Marking.add marking a_place a_weight)
    t.t_outputs

let sample_duration ?prng env dur =
  let need_prng what =
    match prng with
    | Some g -> g
    | None ->
      invalid_arg
        (Printf.sprintf "Net.sample_duration: %s requires a random stream" what)
  in
  let check d =
    if d < 0.0 then invalid_arg "Net.sample_duration: negative delay" else d
  in
  match dur with
  | Zero -> 0.0
  | Const d -> check d
  | Uniform (lo, hi) -> check (Prng.uniform (need_prng "uniform") lo hi)
  | Exponential mean -> check (Prng.exponential (need_prng "exponential") mean)
  | Choice items ->
    let values = List.map (fun (v, w) -> (v, w)) items in
    check (Prng.choose_weighted (need_prng "choice") values)
  | Dynamic e -> check (Expr.eval_float ?prng env e)

(* Compiled counterpart of [sample_duration]: distribution parameters,
   the random stream and (for [Dynamic]) the compiled expression are
   resolved once, so sampling in the simulator's hot loop is a single
   closure call.  Draw order, results and error messages are identical
   to [sample_duration] on the same stream. *)
let compile_duration ?prng env dur =
  let no_prng what () =
    invalid_arg
      (Printf.sprintf "Net.sample_duration: %s requires a random stream" what)
  in
  let check d =
    if d < 0.0 then invalid_arg "Net.sample_duration: negative delay" else d
  in
  match dur with
  | Zero -> fun () -> 0.0
  | Const d -> fun () -> check d
  | Uniform (lo, hi) -> (
    match prng with
    | Some g -> fun () -> check (Prng.uniform g lo hi)
    | None -> no_prng "uniform")
  | Exponential mean -> (
    match prng with
    | Some g -> fun () -> check (Prng.exponential g mean)
    | None -> no_prng "exponential")
  | Choice items -> (
    let values = List.map (fun (v, w) -> (v, w)) items in
    match prng with
    | Some g -> fun () -> check (Prng.choose_weighted g values)
    | None -> no_prng "choice")
  | Dynamic e ->
    let c = Expr.compile ?prng env e in
    fun () -> check (Value.to_float (c ()))

let duration_is_deterministic = function
  | Zero | Const _ -> true
  | Uniform (lo, hi) -> Float.equal lo hi
  | Exponential _ -> false
  | Choice items -> (
    match items with
    | [] -> true
    | (v, _) :: rest -> List.for_all (fun (v', _) -> Float.equal v v') rest)
  | Dynamic e -> Expr.is_deterministic e

let max_duration = function
  | Zero -> Some 0.0
  | Const d -> Some d
  | Uniform (_, hi) -> Some hi
  | Exponential _ -> None
  | Choice items ->
    Some (List.fold_left (fun acc (v, _) -> Float.max acc v) 0.0 items)
  | Dynamic _ -> None

(* -- printing in the textual model language -- *)

let pp_duration ppf = function
  | Zero -> Format.pp_print_string ppf "0"
  | Const d -> Format.fprintf ppf "%g" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%g, %g)" lo hi
  | Exponential mean -> Format.fprintf ppf "exponential(%g)" mean
  | Choice items ->
    let pp_item ppf (v, w) = Format.fprintf ppf "%g:%g" v w in
    Format.fprintf ppf "choice(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_item)
      items
  | Dynamic e -> Format.fprintf ppf "expr(%a)" Expr.pp e

let pp_place ppf p =
  Format.fprintf ppf "place %s" p.p_name;
  if p.p_initial <> 0 then Format.fprintf ppf " init %d" p.p_initial;
  (match p.p_capacity with
  | Some c -> Format.fprintf ppf " capacity %d"c
  | None -> ())

let pp_arcs net ppf arcs =
  let pp_arc ppf { a_place; a_weight } =
    if a_weight = 1 then Format.pp_print_string ppf net.places.(a_place).p_name
    else Format.fprintf ppf "%s * %d" net.places.(a_place).p_name a_weight
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_arc ppf arcs

let pp_transition_in net ppf t =
  Format.fprintf ppf "@[<v 2>transition %s" t.t_name;
  if t.t_inputs <> [] then Format.fprintf ppf "@,in %a" (pp_arcs net) t.t_inputs;
  if t.t_inhibitors <> [] then
    Format.fprintf ppf "@,inhibit %a" (pp_arcs net) t.t_inhibitors;
  if t.t_outputs <> [] then
    Format.fprintf ppf "@,out %a" (pp_arcs net) t.t_outputs;
  (match t.t_firing with
  | Zero -> ()
  | d -> Format.fprintf ppf "@,firing %a" pp_duration d);
  (match t.t_enabling with
  | Zero -> ()
  | d -> Format.fprintf ppf "@,enabling %a" pp_duration d);
  if not (Float.equal t.t_frequency 1.0) then
    Format.fprintf ppf "@,frequency %g" t.t_frequency;
  (match t.t_predicate with
  | Some p -> Format.fprintf ppf "@,predicate %a" Expr.pp p
  | None -> ());
  List.iter (fun s -> Format.fprintf ppf "@,action %a" Expr.pp_stmt s) t.t_action;
  Format.fprintf ppf "@]"

(* Used by tools that print a transition without net context (arc names
   unavailable); prints ids. *)
let pp_transition ppf t =
  Format.fprintf ppf "transition %s (%d in, %d out, %d inhibit)" t.t_name
    (List.length t.t_inputs) (List.length t.t_outputs)
    (List.length t.t_inhibitors)

let pp ppf net =
  Format.fprintf ppf "@[<v>net %s@," net.name;
  List.iter
    (fun (nm, v) -> Format.fprintf ppf "var %s = %a@," nm Value.pp v)
    net.variables;
  List.iter
    (fun (nm, arr) ->
      Format.fprintf ppf "table %s = [%a]@," nm
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Value.pp)
        (Array.to_list arr))
    net.tables;
  Array.iter (fun p -> Format.fprintf ppf "%a@," pp_place p) net.places;
  Array.iter
    (fun t -> Format.fprintf ppf "%a@," (pp_transition_in net) t)
    net.transitions;
  Format.fprintf ppf "@]"

module Builder = struct
  type net = t

  type t = {
    b_name : string;
    mutable b_places : place list;  (* reversed *)
    mutable b_transitions : transition list;  (* reversed *)
    mutable b_variables : (string * Value.t) list;  (* reversed *)
    mutable b_tables : (string * Value.t array) list;  (* reversed *)
    b_place_index : (string, place_id) Hashtbl.t;
    b_transition_index : (string, transition_id) Hashtbl.t;
  }

  let create ?(variables = []) ?(tables = []) nm =
    {
      b_name = nm;
      b_places = [];
      b_transitions = [];
      b_variables = List.rev variables;
      b_tables = List.rev tables;
      b_place_index = Hashtbl.create 16;
      b_transition_index = Hashtbl.create 16;
    }

  let add_place ?(initial = 0) ?capacity b nm =
    if Hashtbl.mem b.b_place_index nm then
      invalid_arg ("Net.Builder.add_place: duplicate place " ^ nm);
    if initial < 0 then
      invalid_arg ("Net.Builder.add_place: negative initial marking for " ^ nm);
    (match capacity with
    | Some c when c < initial ->
      invalid_arg ("Net.Builder.add_place: capacity below initial for " ^ nm)
    | Some _ | None -> ());
    let id = Hashtbl.length b.b_place_index in
    let p = { p_id = id; p_name = nm; p_initial = initial; p_capacity = capacity } in
    b.b_places <- p :: b.b_places;
    Hashtbl.replace b.b_place_index nm id;
    id

  let check_arcs b what nm arcs =
    let n = Hashtbl.length b.b_place_index in
    List.map
      (fun (pid, w) ->
        if pid < 0 || pid >= n then
          invalid_arg
            (Printf.sprintf "Net.Builder: %s arc of %s names unknown place %d"
               what nm pid);
        if w <= 0 then
          invalid_arg
            (Printf.sprintf "Net.Builder: %s arc of %s has weight %d" what nm w);
        { a_place = pid; a_weight = w })
      arcs

  let add_transition ?(inputs = []) ?(inhibitors = []) ?(outputs = [])
      ?(firing = Zero) ?(enabling = Zero) ?(frequency = 1.0) ?predicate
      ?(action = []) b nm =
    if Hashtbl.mem b.b_transition_index nm then
      invalid_arg ("Net.Builder.add_transition: duplicate transition " ^ nm);
    if frequency <= 0.0 then
      invalid_arg ("Net.Builder.add_transition: non-positive frequency for " ^ nm);
    let id = Hashtbl.length b.b_transition_index in
    let t =
      {
        t_id = id;
        t_name = nm;
        t_inputs = check_arcs b "input" nm inputs;
        t_inhibitors = check_arcs b "inhibitor" nm inhibitors;
        t_outputs = check_arcs b "output" nm outputs;
        t_firing = firing;
        t_enabling = enabling;
        t_frequency = frequency;
        t_predicate = predicate;
        t_action = action;
      }
    in
    b.b_transitions <- t :: b.b_transitions;
    Hashtbl.replace b.b_transition_index nm id;
    id

  let set_variable b nm v =
    b.b_variables <- (nm, v) :: List.remove_assoc nm b.b_variables

  let set_table b nm arr =
    b.b_tables <- (nm, Array.copy arr) :: List.remove_assoc nm b.b_tables

  let build b =
    if b.b_places = [] && b.b_transitions = [] then
      invalid_arg "Net.Builder.build: empty net";
    {
      name = b.b_name;
      places = Array.of_list (List.rev b.b_places);
      transitions = Array.of_list (List.rev b.b_transitions);
      variables = List.rev b.b_variables;
      tables = List.rev b.b_tables;
      place_index = Hashtbl.copy b.b_place_index;
      transition_index = Hashtbl.copy b.b_transition_index;
    }
end
