(* The compiled firing-semantics kernel.

   One implementation of the paper's extended-net transition relation —
   weighted input/output arcs, inhibitors, predicates, actions — shared
   by the simulator, the reachability builders, the Karp-Miller
   construction and the GSPN analyzer.  The static layer ([ctrans],
   [of_net]) is immutable and environment-free; the compiled layer
   ([compiled], [compile]) binds predicates, delay distributions and
   actions to closures over one environment and random stream. *)

type ctrans = {
  s_tr : Net.transition;
  s_id : Net.transition_id;
  s_in_place : int array;
  s_in_weight : int array;
  s_inh_place : int array;
  s_inh_weight : int array;
  s_out_place : int array;
  s_out_weight : int array;
  s_frequency : float;
  s_consumed : (int * int) list;
  s_out_delta : (int * int) list;
  s_net_delta : (int * int) list;
  s_delta_place : int array;
  s_delta_weight : int array;
  s_in_places : int array;
  s_out_places : int array;
  s_has_action : bool;
}

type t = {
  k_net : Net.t;
  k_trans : ctrans array;
  k_readers : int array array;
  k_predicated : int array;
}

(* Merge (place, delta) lists, summing deltas per place and dropping
   zero entries (self-loops).  Only runs at kernel-construction time;
   the results for a transition's constant arc lists are cached in its
   [ctrans]. *)
let merge_changes a b =
  let tbl = Hashtbl.create 8 in
  let add (p, d) =
    Hashtbl.replace tbl p (d + try Hashtbl.find tbl p with Not_found -> 0)
  in
  List.iter add a;
  List.iter add b;
  Hashtbl.fold (fun p d acc -> if d = 0 then acc else (p, d) :: acc) tbl []
  |> List.sort compare

let static_of_transition tr =
  let places arcs = Array.of_list (List.map (fun a -> a.Net.a_place) arcs) in
  let weights arcs = Array.of_list (List.map (fun a -> a.Net.a_weight) arcs) in
  let consumed =
    List.map (fun { Net.a_place; a_weight } -> (a_place, -a_weight))
      tr.Net.t_inputs
  in
  let produced =
    List.map (fun { Net.a_place; a_weight } -> (a_place, a_weight))
      tr.Net.t_outputs
  in
  let net_delta = merge_changes consumed produced in
  {
    s_tr = tr;
    s_id = tr.Net.t_id;
    s_in_place = places tr.Net.t_inputs;
    s_in_weight = weights tr.Net.t_inputs;
    s_inh_place = places tr.Net.t_inhibitors;
    s_inh_weight = weights tr.Net.t_inhibitors;
    s_out_place = places tr.Net.t_outputs;
    s_out_weight = weights tr.Net.t_outputs;
    s_frequency = tr.Net.t_frequency;
    s_consumed = consumed;
    s_out_delta = merge_changes [] produced;
    s_net_delta = net_delta;
    s_delta_place = Array.of_list (List.map fst net_delta);
    s_delta_weight = Array.of_list (List.map snd net_delta);
    s_in_places = places tr.Net.t_inputs;
    s_out_places = places tr.Net.t_outputs;
    s_has_action = tr.Net.t_action <> [];
  }

(* Which transitions read each place (input or inhibitor arcs), per
   place, in ascending transition order. *)
let build_readers net =
  let idx = Array.make (Net.num_places net) [] in
  (* build in descending id order so each list ends up ascending *)
  for i = Net.num_transitions net - 1 downto 0 do
    let tr = Net.transition net i in
    let note { Net.a_place; _ } =
      match idx.(a_place) with
      | hd :: _ when hd = i -> ()
      | l -> idx.(a_place) <- i :: l
    in
    List.iter note tr.Net.t_inputs;
    List.iter note tr.Net.t_inhibitors
  done;
  Array.map Array.of_list idx

let build_predicated net =
  Array.to_list (Net.transitions net)
  |> List.filter_map (fun tr ->
         if tr.Net.t_predicate <> None then Some tr.Net.t_id else None)
  |> Array.of_list

let of_net net =
  {
    k_net = net;
    k_trans = Array.map static_of_transition (Net.transitions net);
    k_readers = build_readers net;
    k_predicated = build_predicated net;
  }

let net k = k.k_net
let num_transitions k = Array.length k.k_trans
let transitions k = k.k_trans
let transition k tid = k.k_trans.(tid)
let readers k = k.k_readers
let predicated k = k.k_predicated

(* -- the transition relation over the static arrays -- *)

let token_enabled c m =
  let n = Array.length c.s_in_place in
  let rec inputs i =
    i >= n
    || (Marking.get m c.s_in_place.(i) >= c.s_in_weight.(i) && inputs (i + 1))
  in
  let ni = Array.length c.s_inh_place in
  let rec inhibitors i =
    i >= ni
    || (Marking.get m c.s_inh_place.(i) < c.s_inh_weight.(i)
        && inhibitors (i + 1))
  in
  inputs 0 && inhibitors 0

let enabled ?prng c m env =
  token_enabled c m
  && (match c.s_tr.Net.t_predicate with
     | None -> true
     | Some p -> Expr.eval_bool ?prng env p)

let consume c m =
  for k = 0 to Array.length c.s_in_place - 1 do
    Marking.add m c.s_in_place.(k) (-c.s_in_weight.(k))
  done

let produce c m =
  for k = 0 to Array.length c.s_out_place - 1 do
    Marking.add m c.s_out_place.(k) c.s_out_weight.(k)
  done

let apply c m =
  for k = 0 to Array.length c.s_delta_place - 1 do
    Marking.add m c.s_delta_place.(k) c.s_delta_weight.(k)
  done

let run_action env c = Expr.run_stmts env c.s_tr.Net.t_action

(* -- the compiled instance view -- *)

exception Action_failed of string

type compiled = {
  c_tr : Net.transition;
  c_id : Net.transition_id;
  c_in_place : int array;
  c_in_weight : int array;
  c_inh_place : int array;
  c_inh_weight : int array;
  c_out_place : int array;
  c_out_weight : int array;
  c_pred : (unit -> bool) option;
  c_enabling : unit -> float;
  c_firing : unit -> float;
  c_action : (unit -> string * Value.t) array;
  c_has_action : bool;
  c_frequency : float;
  c_consumed : (int * int) list;
  c_out_delta : (int * int) list;
  c_net_delta : (int * int) list;
  c_in_places : int array;
  c_out_places : int array;
}

(* Compile one action statement.  Mirrors the interpreted runner: the
   index and value are evaluated first (their errors — unbound names,
   type errors — propagate as-is), then the table write is attempted and
   its failures surface as [Action_failed] for the engine to wrap. *)
let compile_stmt ?prng env = function
  | Expr.Assign (name, e) ->
    let ce = Expr.compile ?prng env e in
    let slot = ref None in
    fun () ->
      let v = ce () in
      (match !slot with
      | Some cell -> cell := v
      | None ->
        Env.set env name v;
        slot := Env.find_ref env name);
      (name, v)
  | Expr.Table_assign (tbl, ie, e) ->
    let ci = Expr.compile_int ?prng env ie in
    let ce = Expr.compile ?prng env e in
    let slot = ref None in
    fun () ->
      let i = ci () in
      let v = ce () in
      let arr =
        match !slot with
        | Some arr -> arr
        | None -> (
          match Env.find_table env tbl with
          | Some arr ->
            slot := Some arr;
            arr
          | None ->
            raise
              (Action_failed
                 (Printf.sprintf "action writes unbound table %s" tbl)))
      in
      if i < 0 || i >= Array.length arr then
        raise
          (Action_failed
             (Printf.sprintf "Env.table_set: index %d out of bounds for %s[%d]"
                i tbl (Array.length arr)));
      arr.(i) <- v;
      (Printf.sprintf "%s[%d]" tbl i, v)

let compile_one ?prng env c =
  let tr = c.s_tr in
  {
    c_tr = tr;
    c_id = c.s_id;
    c_in_place = c.s_in_place;
    c_in_weight = c.s_in_weight;
    c_inh_place = c.s_inh_place;
    c_inh_weight = c.s_inh_weight;
    c_out_place = c.s_out_place;
    c_out_weight = c.s_out_weight;
    c_pred = Option.map (Expr.compile_bool env) tr.Net.t_predicate;
    c_enabling = Net.compile_duration ?prng env tr.Net.t_enabling;
    c_firing = Net.compile_duration ?prng env tr.Net.t_firing;
    c_action =
      Array.of_list (List.map (compile_stmt ?prng env) tr.Net.t_action);
    c_has_action = c.s_has_action;
    c_frequency = c.s_frequency;
    c_consumed = c.s_consumed;
    c_out_delta = c.s_out_delta;
    c_net_delta = c.s_net_delta;
    c_in_places = c.s_in_places;
    c_out_places = c.s_out_places;
  }

let compile ?prng env k = Array.map (compile_one ?prng env) k.k_trans

let compiled_token_enabled c m =
  let n = Array.length c.c_in_place in
  let rec inputs i =
    i >= n
    || (Marking.get m c.c_in_place.(i) >= c.c_in_weight.(i) && inputs (i + 1))
  in
  let ni = Array.length c.c_inh_place in
  let rec inhibitors i =
    i >= ni
    || (Marking.get m c.c_inh_place.(i) < c.c_inh_weight.(i)
        && inhibitors (i + 1))
  in
  inputs 0 && inhibitors 0

let compiled_enabled c m =
  compiled_token_enabled c m
  && (match c.c_pred with None -> true | Some p -> p ())

let compiled_consume c m =
  for k = 0 to Array.length c.c_in_place - 1 do
    Marking.add m c.c_in_place.(k) (-c.c_in_weight.(k))
  done

let compiled_produce c m =
  for k = 0 to Array.length c.c_out_place - 1 do
    Marking.add m c.c_out_place.(k) c.c_out_weight.(k)
  done
