(** The compiled firing-semantics kernel — the single source of truth
    for the transition relation of extended timed nets.

    Every tool that steps a net (the optimized simulator, the untimed
    and timed reachability builders, the Karp-Miller construction, the
    GSPN analyzer) consumes the same per-transition view built here:
    arc lists flattened to parallel [int] arrays, the weight/inhibitor
    enabledness test, the firing effect (consume/produce), precomputed
    trace deltas, and the per-place reader index used for incremental
    enabled-set maintenance.  The only deliberate exception is
    {!Pnut_sim.Reference}, the frozen interpreted engine kept verbatim
    as a differential oracle.

    The kernel has two layers:

    - the {e static} view ({!ctrans}, built once per net by {!of_net})
      is environment-independent and immutable, so exploration layers
      can share it across worker domains and evaluate predicates and
      actions against per-state environments with {!enabled} and
      {!run_action};
    - the {e compiled} view ({!compiled}, built per engine instance by
      {!compile}) additionally binds the predicate, the delay
      distributions and the action statements to closures over one
      environment's resolved cells and one random stream
      ([Expr.compile], [Net.compile_duration]), so a simulator's hot
      loop never walks an AST or looks up a name. *)

(** Static per-transition view: arc lists as parallel arrays plus the
    constant parts of the transition's trace deltas. *)
type ctrans = {
  s_tr : Net.transition;
  s_id : Net.transition_id;
  s_in_place : int array;
  s_in_weight : int array;
  s_inh_place : int array;
  s_inh_weight : int array;
  s_out_place : int array;
  s_out_weight : int array;
  s_frequency : float;
  s_consumed : (int * int) list;
      (** marking delta of consuming the inputs (negative weights) *)
  s_out_delta : (int * int) list;
      (** marking delta of producing the outputs *)
  s_net_delta : (int * int) list;
      (** merged consume+produce delta of an atomic firing *)
  s_delta_place : int array;
  s_delta_weight : int array;
      (** [s_net_delta] flattened to parallel arrays for {!apply} *)
  s_in_places : int array;  (** places touched by consuming *)
  s_out_places : int array; (** places touched by producing *)
  s_has_action : bool;
}

type t

val of_net : Net.t -> t
(** Build the static kernel: one {!ctrans} per transition (indexed by
    id) plus the reader and predicate indexes. *)

val net : t -> Net.t
val num_transitions : t -> int

val transitions : t -> ctrans array
(** Indexed by transition id, i.e. ascending-id iteration order. *)

val transition : t -> Net.transition_id -> ctrans

val readers : t -> int array array
(** [readers k.(p)] — ids of the transitions whose enabledness depends
    on place [p] (input or inhibitor arc), ascending.  After a firing
    touches a set of places, only the readers of those places can have
    changed enabledness. *)

val predicated : t -> Net.transition_id array
(** Ids of the transitions carrying a predicate, ascending: the ones
    whose enabledness can change when only the environment changes. *)

(** {2 The transition relation (static view)} *)

val token_enabled : ctrans -> Marking.t -> bool
(** Token conditions only: every input place holds at least its arc
    weight, every inhibitor place fewer than its. *)

val enabled : ?prng:Prng.t -> ctrans -> Marking.t -> Env.t -> bool
(** Full enabledness: token conditions, then the predicate interpreted
    against [env] — same evaluation order, draws and errors as
    [Net.enabled]. *)

val consume : ctrans -> Marking.t -> unit
(** Remove the input tokens of one firing.  The caller has already
    established token-enabledness (unlike [Net.consume], no redundant
    recheck). *)

val produce : ctrans -> Marking.t -> unit
(** Deposit the output tokens of one firing. *)

val apply : ctrans -> Marking.t -> unit
(** [consume] and [produce] in one pass over the merged net delta —
    for callers that fire atomically and never observe the intermediate
    marking (reachability expansion). *)

val run_action : Env.t -> ctrans -> unit
(** Interpret the action statements against [env] (same order and
    errors as [Expr.run_stmts]). *)

(** {2 The compiled instance view} *)

exception Action_failed of string
(** Raised by a compiled table-assignment on a write failure; engines
    convert it to their structured action-error naming the transition. *)

(** A transition bound to one engine instance: the static arrays plus
    predicate/delays/action compiled to closures over the instance's
    environment and random stream. *)
type compiled = {
  c_tr : Net.transition;
  c_id : Net.transition_id;
  c_in_place : int array;
  c_in_weight : int array;
  c_inh_place : int array;
  c_inh_weight : int array;
  c_out_place : int array;
  c_out_weight : int array;
  c_pred : (unit -> bool) option;
      (** compiled without a random stream, like the enabledness test of
          the interpreted engine: [irand] in a predicate raises *)
  c_enabling : unit -> float;
  c_firing : unit -> float;
  c_action : (unit -> string * Value.t) array;
      (** each statement returns the (name, value) pair for the trace
          delta; table writes report as ["tbl[i]"] *)
  c_has_action : bool;
  c_frequency : float;
  c_consumed : (int * int) list;
  c_out_delta : (int * int) list;
  c_net_delta : (int * int) list;
  c_in_places : int array;
  c_out_places : int array;
}

val compile : ?prng:Prng.t -> Env.t -> t -> compiled array
(** Bind every transition to [env] (and [prng] for stochastic delays
    and action expressions), indexed by transition id.  Compilation
    resolves names once; the closures read and write the environment's
    live cells thereafter. *)

val compiled_token_enabled : compiled -> Marking.t -> bool
val compiled_enabled : compiled -> Marking.t -> bool
(** Token conditions and the compiled predicate closure. *)

val compiled_consume : compiled -> Marking.t -> unit
val compiled_produce : compiled -> Marking.t -> unit
