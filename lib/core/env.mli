(** Variable/table environments for interpreted nets.

    The paper's Figure-4 model manipulates global model variables
    ([number-of-operands-needed]) and lookup tables ([operands\[type\]]).
    An environment holds both.  Environments are mutable; [snapshot] and
    [restore] support state-space exploration over interpreted nets. *)

type t

val create : unit -> t

val of_bindings :
  ?tables:(string * Value.t array) list -> (string * Value.t) list -> t
(** Initial environment from variable bindings and (optionally) tables.
    Raises [Invalid_argument] on duplicate names. *)

val copy : t -> t
(** Deep copy (tables included). *)

val get : t -> string -> Value.t
(** Raises [Unbound of name] if the variable was never set. *)

val set : t -> string -> Value.t -> unit
(** Sets or creates a variable. *)

val mem : t -> string -> bool

val find_ref : t -> string -> Value.t ref option
(** The live cell holding a variable, if bound.  [set] mutates the cell
    in place and cells are never removed, so a compiled expression can
    resolve a name once and hold the cell for the lifetime of the
    environment. *)

val find_table : t -> string -> Value.t array option
(** The live table array, if bound (tables are created only at
    {!of_bindings} time and never resized, so the array is stable). *)

val get_table : t -> string -> Value.t array
(** The live table array (not a copy). Raises [Unbound]. *)

val table_get : t -> string -> int -> Value.t
(** [table_get env name i] with bounds checking; raises [Unbound] or
    [Invalid_argument] on a bad index. *)

val table_set : t -> string -> int -> Value.t -> unit

val bindings : t -> (string * Value.t) list
(** Current scalar bindings, sorted by name (stable for hashing and
    trace output). *)

val tables : t -> (string * Value.t array) list
(** Current tables, sorted by name; arrays are copies. *)

val snapshot : t -> string
(** Human-readable serialization of the full environment state (trace
    and debug output).  {b Not} injective — names containing [=], [;]
    or [,] can make distinct environments render alike — so state-space
    exploration keys on {!hash}/{!equal}, not on this string. *)

val equal : t -> t -> bool
(** Structural equality over sorted bindings and tables (values compared
    with {!Value.equal}). *)

val hash : t -> int
(** Structural hash compatible with {!equal}; folds over every binding
    and table cell. *)

exception Unbound of string
