(** Extended Timed Petri Nets — the paper's modeling formalism.

    A net is a set of places and transitions connected by weighted input,
    output and inhibitor arcs.  Transitions optionally carry:
    - a {e firing time} (tokens are on neither inputs nor outputs while
      the transition fires),
    - an {e enabling time} (the transition must be continuously enabled
      for the delay before it may fire),
    - a relative {e firing frequency} used for probabilistic conflict
      resolution,
    - a {e predicate} (data-dependent pre-condition) and an {e action}
      (data transformation run at completion of firing).

    Nets are immutable once built; use {!Builder} to construct them. *)

type place_id = int
type transition_id = int

type place = {
  p_id : place_id;
  p_name : string;
  p_initial : int;       (** tokens in the initial marking *)
  p_capacity : int option;
      (** optional documentation bound, checked by {!Validate} analyses *)
}

type arc = {
  a_place : place_id;
  a_weight : int;  (** strictly positive *)
}

(** Time delays attached to transitions.  [Dynamic] delays are evaluated
    against the model environment when sampled, enabling table-driven
    instruction timing (Section 3 of the paper). *)
type duration =
  | Zero
  | Const of float
  | Uniform of float * float
  | Exponential of float            (** mean *)
  | Choice of (float * float) list  (** (value, weight) pairs *)
  | Dynamic of Expr.t

type transition = {
  t_id : transition_id;
  t_name : string;
  t_inputs : arc list;
  t_inhibitors : arc list;  (** enabled only if tokens < weight *)
  t_outputs : arc list;
  t_firing : duration;
  t_enabling : duration;
  t_frequency : float;      (** conflict-resolution weight, > 0 *)
  t_predicate : Expr.t option;
  t_action : Expr.stmt list;
}

type t

val name : t -> string
val places : t -> place array
val transitions : t -> transition array
val num_places : t -> int
val num_transitions : t -> int
val place : t -> place_id -> place
val transition : t -> transition_id -> transition
val find_place : t -> string -> place option
val find_transition : t -> string -> transition option
val place_id : t -> string -> place_id
(** Raises [Not_found]. *)

val transition_id : t -> string -> transition_id
(** Raises [Not_found]. *)

val initial_marking : t -> Marking.t
val initial_env : t -> Env.t
val variables : t -> (string * Value.t) list
val tables : t -> (string * Value.t array) list

(** {2 Semantics helpers} *)

val marking_enabled : t -> Marking.t -> transition -> bool
(** Token conditions only: inputs have enough tokens, inhibitors are
    below their weights.  Ignores the predicate. *)

val enabled : ?prng:Prng.t -> t -> Marking.t -> Env.t -> transition -> bool
(** Full enabledness: token conditions and predicate. *)

val consume : t -> Marking.t -> transition -> unit
(** Removes the input tokens of one firing.  Raises [Invalid_argument]
    if the transition is not token-enabled. *)

val produce : t -> Marking.t -> transition -> unit
(** Deposits the output tokens of one firing. *)

val sample_duration : ?prng:Prng.t -> Env.t -> duration -> float
(** Samples a delay.  Stochastic durations require [prng].  The result is
    always >= 0; a negative sampled value raises [Invalid_argument]. *)

val compile_duration :
  ?prng:Prng.t -> Env.t -> duration -> (unit -> float)
(** Compiled counterpart of {!sample_duration}: resolves the
    distribution, the random stream and (for [Dynamic]) the compiled
    expression once; each call of the returned closure draws one sample
    with the same results, draw order and errors as
    {!sample_duration} on the same stream. *)

val duration_is_deterministic : duration -> bool

val max_duration : duration -> float option
(** Upper bound of the delay if statically known ([None] for [Dynamic]). *)

val pp_duration : Format.formatter -> duration -> unit
(** Prints in the textual model syntax (e.g. [choice(1:0.5, 2:0.5)]). *)

val pp_place : Format.formatter -> place -> unit
val pp_transition : Format.formatter -> transition -> unit
val pp : Format.formatter -> t -> unit
(** Renders the net in the textual model language (parseable by
    [Pnut_lang]). *)

(** Mutable net-under-construction. *)
module Builder : sig
  type net = t
  type t

  val create : ?variables:(string * Value.t) list ->
    ?tables:(string * Value.t array) list -> string -> t

  val add_place : ?initial:int -> ?capacity:int -> t -> string -> place_id
  (** Raises [Invalid_argument] on duplicate names or negative initial
      counts. *)

  val add_transition :
    ?inputs:(place_id * int) list ->
    ?inhibitors:(place_id * int) list ->
    ?outputs:(place_id * int) list ->
    ?firing:duration ->
    ?enabling:duration ->
    ?frequency:float ->
    ?predicate:Expr.t ->
    ?action:Expr.stmt list ->
    t -> string -> transition_id
  (** Raises [Invalid_argument] on duplicate names, unknown place ids,
      non-positive weights or frequencies. *)

  val set_variable : t -> string -> Value.t -> unit
  val set_table : t -> string -> Value.t array -> unit

  val build : t -> net
  (** Freezes the builder.  Raises [Invalid_argument] if the net has no
      places and no transitions. *)
end
