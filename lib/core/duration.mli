(** Deterministic-delay helpers for the timed reachability builders.

    Timed state-space constructions only terminate when every delay
    resolves to a single concrete value in a given environment.  These
    helpers classify {!Net.duration} values once, so every timed
    builder accepts exactly the same nets and rejects the rest with
    identical error text. *)

val det : who:string -> Env.t -> Net.duration -> float
(** Resolve a duration to its unique value in [env]: [Zero], [Const],
    degenerate [Uniform]/[Choice], and deterministic [Dynamic]
    expressions.  Raises [Invalid_argument] ("[who]: stochastic
    duration in a timed reachability net") on genuinely random
    kinds. *)

val deterministic : Net.duration -> bool
(** Whether {!det} would accept the duration (environment-independent
    check; [Dynamic] counts as deterministic when its expression
    is). *)

val check_net : who:string -> Net.t -> unit
(** Raise [Invalid_argument] (messages prefixed with [who]) if any
    transition of the net carries a stochastic firing time, enabling
    time, predicate, or action. *)
