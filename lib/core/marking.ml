type t = int array

let create n =
  if n < 0 then invalid_arg "Marking.create: negative size";
  Array.make n 0

let of_array counts =
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Marking.of_array: negative count")
    counts;
  Array.copy counts

let to_array m = Array.copy m

let size = Array.length

let get m p = m.(p)

let set m p count =
  if count < 0 then invalid_arg "Marking.set: negative count";
  m.(p) <- count

let add m p k =
  let c = m.(p) in
  (* Two large positives wrap negative under native addition, which used
     to surface as a bogus "would hold -N tokens"; test the overflow on
     the operands instead, before any arithmetic. *)
  if k > 0 && c > max_int - k then
    invalid_arg
      (Printf.sprintf
         "Marking.add: place %d token count overflows max_int (%d + %d)" p c k);
  let count = c + k in
  if count < 0 then
    invalid_arg
      (Printf.sprintf "Marking.add: place %d would hold %d tokens" p count);
  m.(p) <- count

let copy = Array.copy

let unsafe_wrap (a : int array) : t = a

(* Monomorphic element loop: the generic [caml_compare] walk costs a C
   call per comparison on the exploration hot paths. *)
let equal (a : t) b =
  a == b
  || (Array.length a = Array.length b
     &&
     let n = Array.length a in
     let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
     go 0)

let compare (a : t) b = Stdlib.compare a b

(* Fold over every place: [Hashtbl.hash] only samples a prefix of the
   array, which collides badly on large nets during state-space
   exploration. *)
let hash (m : t) =
  let h = ref (Array.length m) in
  Array.iter (fun c -> h := (!h * 31) + c) m;
  !h land max_int

let total m = Array.fold_left ( + ) 0 m

let pp ppf m =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_list m)

let to_key m =
  let buf = Buffer.create (2 * Array.length m) in
  Array.iter
    (fun c ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf ',')
    m;
  Buffer.contents buf
