module Net = Pnut_core.Net
module Prng = Pnut_core.Prng
module Simulator = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat
module Budget = Pnut_exec.Budget
module Supervisor = Pnut_exec.Supervisor

type run_class =
  | Completed
  | Deadlocked of float
  | Errored of string
  | Exhausted of Supervisor.reason

type run_result = {
  rr_run : int;
  rr_class : run_class;
  rr_throughput : float;
  rr_started : int;
  rr_diagnosis : string option;
}

type report = {
  cr_net : string;
  cr_observe : string;
  cr_until : float;
  cr_runs : int;
  cr_specs : Fault.spec list;
  cr_baseline : run_result list;
  cr_faulty : run_result list;
  cr_tokens_dropped : int;
  cr_tokens_injected : int;
}

(* Result of one simulation before the observed transition is known. *)
type raw_run = {
  raw_class : run_class;
  raw_stats : Stat.report option;  (* None when the run errored *)
  raw_started : int;
  raw_diagnosis : string option;
}

(* One experiment: plain when [compiled] is None, segmented around the
   fault token pulses otherwise.  [finish:false] keeps the stat sink
   open across segments; the final call closes it. *)
let one_run ?wall_limit_s ?budget ~prng ~until ~compiled net =
  let stat_sink, stat_get = Stat.sink () in
  let hooks =
    match compiled with
    | Some c -> Fault.hooks c
    | None -> Simulator.no_hooks
  in
  let st = Simulator.create ~prng ~sink:stat_sink ~hooks net in
  match
    let rec segments () =
      match compiled with
      | None -> Simulator.run ~until ?wall_limit_s ?budget st
      | Some c -> (
        match Fault.next_pulse c ~after:(Simulator.clock st) with
        | Some t when t < until ->
          let tripped =
            if t > Simulator.clock st then
              let seg =
                Simulator.run ~until:t ?wall_limit_s ?budget ~finish:false st
              in
              match seg.Simulator.stop with
              | Simulator.Budget_exhausted _ -> Some seg
              | _ -> None
            else None
          in
          (match tripped with
          | Some seg -> seg
          | None ->
            Fault.apply_pulses c ~at:t st;
            segments ())
        | Some _ | None -> Simulator.run ~until ?wall_limit_s ?budget st)
    in
    segments ()
  with
  | outcome ->
    let raw_class =
      match outcome.Simulator.stop with
      | Simulator.Horizon | Simulator.Event_limit -> Completed
      | Simulator.Dead -> Deadlocked (Simulator.last_activity st)
      | Simulator.Budget_exhausted r -> Exhausted r
    in
    let raw_diagnosis =
      match raw_class with
      | Deadlocked _ ->
        Some (Format.asprintf "%a" Simulator.pp_diagnosis (Simulator.diagnose st))
      | Completed | Errored _ | Exhausted _ -> None
    in
    {
      raw_class;
      raw_stats = Some (stat_get ());
      raw_started = outcome.Simulator.started;
      raw_diagnosis;
    }
  | exception Simulator.Sim_error e ->
    {
      raw_class = Errored (Simulator.error_message e);
      raw_stats = None;
      raw_started = Simulator.events_started st;
      raw_diagnosis = None;
    }

let pick_observe net = function
  | Some stats ->
    let best = ref None in
    Array.iter
      (fun ts ->
        match !best with
        | Some b when b.Stat.ts_ends >= ts.Stat.ts_ends -> ()
        | _ -> best := Some ts)
      stats.Stat.transitions;
    (match !best with
    | Some b -> b.Stat.ts_name
    | None -> (Net.transition net 0).Net.t_name)
  | None -> (Net.transition net 0).Net.t_name

let finalize ~observe run raw =
  {
    rr_run = run;
    rr_class = raw.raw_class;
    rr_throughput =
      (match raw.raw_stats with
      | Some stats -> ( try Stat.throughput stats observe with Not_found -> 0.0)
      | None -> 0.0);
    rr_started = raw.raw_started;
    rr_diagnosis = raw.raw_diagnosis;
  }

let fault_error fmt =
  Printf.ksprintf
    (fun s -> raise (Simulator.Sim_error (Simulator.Fault_error s)))
    fmt

let run_core ?(seed = 1) ?(runs = 5) ?(until = 10_000.0) ?observe ?wall_limit_s
    ?jobs ~budget ~monitor net specs =
  if runs <= 0 then invalid_arg "Campaign.run: runs must be positive";
  if until <= 0.0 then invalid_arg "Campaign.run: horizon must be positive";
  Fault.validate net specs;
  (match observe with
  | Some name when Net.find_transition net name = None ->
    fault_error "net %s has no transition %S to observe" (Net.name net) name
  | Some _ | None -> ());
  let master = Prng.create seed in
  (* Per run: one stream for the experiment randomness (shared by the
     baseline and the faulty twin so they are comparable) and an
     independent one for fault activation and jitter.  All streams are
     split from the master up front, in run order, so the campaign is
     bit-identical for every [jobs] value. *)
  let streams =
    Array.init runs (fun _ ->
        let sim_stream = Prng.split master in
        let fault_stream = Prng.split master in
        (sim_stream, fault_stream))
  in
  (* The campaign-level wall budget is a shared absolute deadline: each
     run starts with whatever wall time is left, so once the deadline
     passes every in-flight twin (on any worker domain) degrades at its
     next watchdog slot instead of running to its own full horizon. *)
  let run_budget () =
    if Budget.is_none budget then None
    else
      Some
        { budget with
          Budget.wall_s =
            (match budget.Budget.wall_s with
            | Some w -> Some (Float.max 1e-6 (w -. Supervisor.elapsed monitor))
            | None -> None);
          max_states = None }
  in
  let results =
    Pnut_exec.Pool.init ?jobs runs (fun i ->
        let sim_stream, fault_stream = streams.(i) in
        let budget = run_budget () in
        let baseline =
          one_run ?wall_limit_s ?budget ~prng:(Prng.copy sim_stream) ~until
            ~compiled:None net
        in
        let compiled = Fault.compile ~prng:fault_stream net specs in
        let faulty =
          one_run ?wall_limit_s ?budget ~prng:(Prng.copy sim_stream) ~until
            ~compiled:(Some compiled) net
        in
        (* The hooks mutate [compiled] during the run; read the counters
           here, on the worker, once the faulty twin is done. *)
        ( baseline,
          faulty,
          Fault.tokens_dropped compiled,
          Fault.tokens_injected compiled ))
  in
  (* A baseline failure aborts the campaign; check in run order so the
     reported run matches the serial behaviour.  A budget-degraded
     baseline is not a model error — it stays in the report. *)
  Array.iteri
    (fun i (baseline, _, _, _) ->
      match baseline.raw_class with
      | Errored msg ->
        fault_error "baseline run %d failed without any fault: %s" (i + 1) msg
      | Completed | Deadlocked _ | Exhausted _ -> ())
    results;
  let dropped = ref 0 and injected = ref 0 in
  Array.iter
    (fun (_, _, d, j) ->
      dropped := !dropped + d;
      injected := !injected + j)
    results;
  let pairs =
    Array.to_list (Array.map (fun (b, f, _, _) -> (b, f)) results)
  in
  let observe =
    match observe with
    | Some name -> name
    | None -> pick_observe net (fst (List.hd pairs)).raw_stats
  in
  {
    cr_net = Net.name net;
    cr_observe = observe;
    cr_until = until;
    cr_runs = runs;
    cr_specs = specs;
    cr_baseline =
      List.mapi (fun i (b, _) -> finalize ~observe (i + 1) b) pairs;
    cr_faulty = List.mapi (fun i (_, f) -> finalize ~observe (i + 1) f) pairs;
    cr_tokens_dropped = !dropped;
    cr_tokens_injected = !injected;
  }

let run ?seed ?runs ?until ?observe ?wall_limit_s ?jobs net specs =
  run_core ?seed ?runs ?until ?observe ?wall_limit_s ?jobs
    ~budget:Budget.none
    ~monitor:(Supervisor.start Budget.none)
    net specs

(* First budget-tripped twin, in run order (baseline before faulty). *)
let first_exhausted report =
  let scan results =
    List.find_map
      (fun r ->
        match r.rr_class with Exhausted reason -> Some reason | _ -> None)
      results
  in
  let rec zip = function
    | b :: bs, f :: fs -> (
      match scan [ b; f ] with Some r -> Some r | None -> zip (bs, fs))
    | _ -> None
  in
  zip (report.cr_baseline, report.cr_faulty)

let run_supervised ?seed ?runs ?until ?observe ?wall_limit_s ?jobs ?budget net
    specs =
  let budget = Option.value budget ~default:Budget.none in
  let monitor = Supervisor.start budget in
  let report =
    run_core ?seed ?runs ?until ?observe ?wall_limit_s ?jobs ~budget ~monitor
      net specs
  in
  match first_exhausted report with
  | None -> Supervisor.Complete report
  | Some reason ->
    let intact =
      List.length
        (List.filter
           (fun r -> match r.rr_class with Exhausted _ -> false | _ -> true)
           report.cr_faulty)
    in
    Supervisor.Degraded
      {
        reason;
        partial = report;
        progress =
          Supervisor.snapshot monitor ~visited:intact
            ~frontier:(report.cr_runs - intact);
      }

let mean_throughput results =
  match results with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc r -> acc +. r.rr_throughput) 0.0 results
    /. float_of_int (List.length results)

let degradation r =
  let base = mean_throughput r.cr_baseline in
  if base <= 0.0 then 0.0 else 1.0 -. (mean_throughput r.cr_faulty /. base)

let count f results = List.length (List.filter f results)

let deadlocks r =
  count (fun x -> match x.rr_class with Deadlocked _ -> true | _ -> false)
    r.cr_faulty

let errors r =
  count (fun x -> match x.rr_class with Errored _ -> true | _ -> false)
    r.cr_faulty

let class_label = function
  | Completed -> "completed"
  | Deadlocked t -> Printf.sprintf "deadlocked at t=%g" t
  | Errored msg -> "error: " ^ msg
  | Exhausted reason -> "degraded: " ^ Supervisor.reason_message reason

let delta_pct baseline faulty =
  if baseline <= 0.0 then 0.0 else 100.0 *. (faulty -. baseline) /. baseline

let render r =
  let b = Buffer.create 2048 in
  Printf.bprintf b "FAULT CAMPAIGN  net %s, %d run%s x %g cycles, observing %s\n"
    r.cr_net r.cr_runs
    (if r.cr_runs = 1 then "" else "s")
    r.cr_until r.cr_observe;
  Printf.bprintf b "faults:\n";
  List.iter
    (fun s -> Printf.bprintf b "  %s\n" (Format.asprintf "%a" Fault.pp_spec s))
    r.cr_specs;
  Printf.bprintf b "\n%4s %14s %14s %9s  %s\n" "run" "baseline thr"
    "faulty thr" "delta" "outcome";
  List.iter2
    (fun base faulty ->
      Printf.bprintf b "%4d %14.6f %14.6f %8.1f%%  %s\n" base.rr_run
        base.rr_throughput faulty.rr_throughput
        (delta_pct base.rr_throughput faulty.rr_throughput)
        (class_label faulty.rr_class))
    r.cr_baseline r.cr_faulty;
  let base = mean_throughput r.cr_baseline in
  let faulty = mean_throughput r.cr_faulty in
  Printf.bprintf b "%4s %14.6f %14.6f %8.1f%%\n" "mean" base faulty
    (delta_pct base faulty);
  Printf.bprintf b
    "\ndeadlocked %d/%d, errored %d/%d, tokens dropped %d, injected %d\n"
    (deadlocks r) r.cr_runs (errors r) r.cr_runs r.cr_tokens_dropped
    r.cr_tokens_injected;
  Buffer.contents b

let render_csv r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "run,baseline_throughput,faulty_throughput,delta_pct,outcome,detail\n";
  List.iter2
    (fun base faulty ->
      let outcome, detail =
        match faulty.rr_class with
        | Completed -> ("completed", "")
        | Deadlocked t -> ("deadlocked", Printf.sprintf "t=%g" t)
        | Errored msg -> ("error", msg)
        | Exhausted reason -> ("degraded", Supervisor.reason_message reason)
      in
      Printf.bprintf b "%d,%.6f,%.6f,%.2f,%s,%S\n" base.rr_run
        base.rr_throughput faulty.rr_throughput
        (delta_pct base.rr_throughput faulty.rr_throughput)
        outcome detail)
    r.cr_baseline r.cr_faulty;
  Buffer.contents b
