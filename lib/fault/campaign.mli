(** Fault-injection campaigns.

    A campaign sweeps a fault set across [runs] independent random
    streams (the split-stream discipline of
    {!Pnut_sim.Simulator.replications}) and, for every stream, runs the
    {e same} underlying experiment twice: once fault-free (the
    baseline) and once with the faults compiled in.  The report pairs
    the two, so throughput degradation is measured run-by-run on
    identical randomness rather than against an unrelated experiment. *)

type run_class =
  | Completed  (** reached the horizon (or the event limit) *)
  | Deadlocked of float  (** quiescent; the payload is the death time *)
  | Errored of string  (** livelock, capacity violation, watchdog, ... *)
  | Exhausted of Pnut_exec.Supervisor.reason
      (** the campaign budget tripped mid-run; throughput and firing
          counts cover the simulated prefix *)

type run_result = {
  rr_run : int;  (** 1-based run number *)
  rr_class : run_class;
  rr_throughput : float;
      (** throughput of the observed transition over the full horizon
          (a deadlocked run keeps its partial firings, so degradation
          is still meaningful) *)
  rr_started : int;
  rr_diagnosis : string option;
      (** rendered deadlock diagnosis for [Deadlocked] runs *)
}

type report = {
  cr_net : string;
  cr_observe : string;  (** the transition whose throughput is compared *)
  cr_until : float;
  cr_runs : int;
  cr_specs : Fault.spec list;
  cr_baseline : run_result list;
  cr_faulty : run_result list;  (** same order and streams as baseline *)
  cr_tokens_dropped : int;  (** across all faulty runs *)
  cr_tokens_injected : int;
}

val run :
  ?seed:int ->
  ?runs:int ->
  ?until:float ->
  ?observe:string ->
  ?wall_limit_s:float ->
  ?jobs:int ->
  Pnut_core.Net.t ->
  Fault.spec list ->
  report
(** Runs the campaign (defaults: seed 1, 5 runs, horizon 10000).
    [observe] names the transition whose throughput is compared; when
    omitted, the transition with the most completed firings in the
    first baseline run is picked.  [wall_limit_s] arms the per-run
    watchdog.  Simulation errors in faulty runs are caught and reported
    as [Errored]; an error in a {e baseline} run propagates, since it
    means the model is broken without any fault.

    [jobs] (resolved by {!Pnut_exec.Pool.resolve}) distributes the runs
    over that many domains.  All random streams are split from the
    master before any run starts and results are merged in run order,
    so the report is bit-identical for every [jobs] value. *)

val run_supervised :
  ?seed:int ->
  ?runs:int ->
  ?until:float ->
  ?observe:string ->
  ?wall_limit_s:float ->
  ?jobs:int ->
  ?budget:Pnut_exec.Budget.t ->
  Pnut_core.Net.t ->
  Fault.spec list ->
  report Pnut_exec.Supervisor.outcome
(** {!run} under a campaign-wide budget.  The wall limit acts as an
    absolute deadline shared by every twin (each run starts with the
    remaining wall time); heap limits, event caps and cancellation are
    applied per run.  Runs cut short by the budget are classed
    [Exhausted] and keep their partial throughput; if any run was cut
    short the whole campaign is reported [Degraded] with the first
    tripped reason in run order.  A campaign that completes within the
    budget returns [Complete] with a report byte-identical to {!run}'s. *)

val mean_throughput : run_result list -> float
(** Mean over all runs (deadlocked runs count with their degraded
    throughput; errored runs count as 0). *)

val degradation : report -> float
(** [1 - mean faulty / mean baseline]; 0 when the baseline mean is 0. *)

val deadlocks : report -> int
(** Number of faulty runs that ended [Deadlocked]. *)

val errors : report -> int
(** Number of faulty runs that ended [Errored]. *)

val render : report -> string
(** Aligned plain-text campaign table with per-run pairing and summary. *)

val render_csv : report -> string
(** One line per run: [run,baseline,faulty,delta_pct,outcome,detail]. *)
