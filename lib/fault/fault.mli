(** Fault injection for Timed Petri Net simulations.

    Razouk's pitch is that timed nets make "what if the timing
    assumptions break?" questions cheap to ask.  This module makes the
    question first-class: a {!spec} describes a perturbation of a
    running simulation — a stalled transition, lost or spurious tokens,
    or scaled/jittered delays — active inside a time window and gated by
    an activation probability.  Specs compile against a net into
    {!Pnut_sim.Simulator.hooks} plus a schedule of token pulses; the
    campaign runner ({!Campaign}) sweeps them across seeds and compares
    against the fault-free baseline.

    {2 Spec syntax}

    One fault per line; [#] starts a comment.  Times default to
    [from 0], windows are half-open [\[from, until)], and [p] is the
    per-run activation probability (default 1):

    {v
    stuck End_prefetch from 100 until 500
    drop Full_I_buffers 2 at 250
    drop Full_I_buffers 1 at 100 every 50 until 1000
    spurious Bus_free 1 at 300 p 0.5
    delay-scale End_prefetch factor 3.0 from 200
    delay-scale * factor 1.5 jitter 0.2
    v} *)

type window = {
  w_from : float;
  w_until : float;  (** [infinity] for an open-ended fault *)
}

val always : window

type kind =
  | Stuck_transition of string
      (** the transition cannot start firing while the fault is active;
          in-flight firings still complete *)
  | Drop_tokens of { place : string; count : int; period : float option }
      (** remove up to [count] tokens at the window start and, with
          [period], every period after that while the window lasts *)
  | Spurious_tokens of { place : string; count : int; period : float option }
      (** inject [count] tokens on the same schedule *)
  | Delay_scale of {
      transition : string option;  (** [None] applies to every transition *)
      factor : float;
      jitter : float;
          (** relative uniform jitter: each affected delay is multiplied
              by [factor * (1 + u)], [u ~ U(-jitter, jitter)] *)
    }

type spec = {
  fs_kind : kind;
  fs_window : window;
  fs_probability : float;  (** per-run activation probability in [0, 1] *)
}

val pp_spec : Format.formatter -> spec -> unit
(** Prints a spec back in the textual syntax. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> spec list
(** Parses the textual spec format above; raises {!Parse_error}. *)

val validate : Pnut_core.Net.t -> spec list -> unit
(** Checks that every named place/transition exists and counts/factors
    are sane.  Raises
    [Pnut_sim.Simulator.Sim_error (Fault_error _)] otherwise. *)

(** {2 Compiled faults} *)

type compiled
(** Fault specs bound to a net and an activation stream.  Activation
    draws (one per probabilistic spec) happen at compile time, so a
    campaign re-compiles per run to re-roll them. *)

val compile :
  prng:Pnut_core.Prng.t -> Pnut_core.Net.t -> spec list -> compiled
(** Validates and compiles.  [prng] drives activation draws and delay
    jitter; give it a stream independent of the simulator's so the
    underlying experiment randomness stays comparable to the
    baseline. *)

val hooks : compiled -> Pnut_sim.Simulator.hooks
(** Veto (stuck), delay rescaling and window-boundary wakeups. *)

val active_specs : compiled -> spec list
(** The specs that survived their activation draw for this run. *)

val next_pulse : compiled -> after:float -> float option
(** Earliest still-due token pulse at or after the given time. *)

val apply_pulses : compiled -> at:float -> Pnut_sim.Simulator.t -> unit
(** Applies every drop/spurious pulse scheduled at exactly [at] to the
    simulator state (clamped at zero tokens).  Counts the moved tokens
    (see {!tokens_dropped}/{!tokens_injected}). *)

val tokens_dropped : compiled -> int
val tokens_injected : compiled -> int
