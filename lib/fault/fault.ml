module Net = Pnut_core.Net
module Prng = Pnut_core.Prng
module Simulator = Pnut_sim.Simulator

type window = {
  w_from : float;
  w_until : float;
}

let always = { w_from = 0.0; w_until = infinity }

let in_window w t = t >= w.w_from && t < w.w_until

type kind =
  | Stuck_transition of string
  | Drop_tokens of { place : string; count : int; period : float option }
  | Spurious_tokens of { place : string; count : int; period : float option }
  | Delay_scale of {
      transition : string option;
      factor : float;
      jitter : float;
    }

type spec = {
  fs_kind : kind;
  fs_window : window;
  fs_probability : float;
}

let pp_spec ppf s =
  let window ppf w =
    if w.w_from > 0.0 then Format.fprintf ppf " from %g" w.w_from;
    if w.w_until < infinity then Format.fprintf ppf " until %g" w.w_until
  in
  let prob ppf p = if p < 1.0 then Format.fprintf ppf " p %g" p in
  (match s.fs_kind with
  | Stuck_transition t -> Format.fprintf ppf "stuck %s%a" t window s.fs_window
  | Drop_tokens { place; count; period }
  | Spurious_tokens { place; count; period } ->
    let verb =
      match s.fs_kind with Drop_tokens _ -> "drop" | _ -> "spurious"
    in
    Format.fprintf ppf "%s %s %d at %g" verb place count s.fs_window.w_from;
    (match period with
    | Some p ->
      Format.fprintf ppf " every %g" p;
      if s.fs_window.w_until < infinity then
        Format.fprintf ppf " until %g" s.fs_window.w_until
    | None -> ())
  | Delay_scale { transition; factor; jitter } ->
    Format.fprintf ppf "delay-scale %s factor %g"
      (Option.value transition ~default:"*")
      factor;
    if jitter > 0.0 then Format.fprintf ppf " jitter %g" jitter;
    window ppf s.fs_window);
  prob ppf s.fs_probability

(* -- textual spec parsing -- *)

exception Parse_error of int * string

let parse_line ln line =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error (ln, s))) fmt in
  let num what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail "%s: expected a number, got %S" what s
  in
  let nat what s =
    match int_of_string_opt s with
    | Some i when i > 0 -> i
    | Some _ | None -> fail "%s: expected a positive count, got %S" what s
  in
  (* Trailing [key value] pairs shared by every fault form. *)
  let rec options ~verb acc = function
    | [] -> acc
    | [ key ] -> fail "%s: option %S is missing its value" verb key
    | key :: v :: rest ->
      let acc =
        match key with
        | "from" -> (`From (num "from" v), ln) :: acc
        | "until" -> (`Until (num "until" v), ln) :: acc
        | "at" -> (`At (num "at" v), ln) :: acc
        | "every" -> (`Every (num "every" v), ln) :: acc
        | "factor" -> (`Factor (num "factor" v), ln) :: acc
        | "jitter" -> (`Jitter (num "jitter" v), ln) :: acc
        | "p" -> (`P (num "p" v), ln) :: acc
        | _ -> fail "%s: unknown option %S" verb key
      in
      options ~verb acc rest
  in
  let find f opts = List.find_map (fun (o, _) -> f o) opts in
  let window ?(start = `From) opts =
    let from =
      match start with
      | `From -> find (function `From t -> Some t | _ -> None) opts
      | `At -> find (function `At t -> Some t | _ -> None) opts
    in
    {
      w_from = Option.value from ~default:0.0;
      w_until =
        Option.value
          (find (function `Until t -> Some t | _ -> None) opts)
          ~default:infinity;
    }
  in
  let probability opts =
    Option.value (find (function `P p -> Some p | _ -> None) opts) ~default:1.0
  in
  let reject verb opts allowed =
    List.iter
      (fun (o, _) ->
        let name =
          match o with
          | `From _ -> "from" | `Until _ -> "until" | `At _ -> "at"
          | `Every _ -> "every" | `Factor _ -> "factor"
          | `Jitter _ -> "jitter" | `P _ -> "p"
        in
        if not (List.mem name allowed) then
          fail "%s does not take option %S" verb name)
      opts
  in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> None
  | "stuck" :: name :: rest ->
    let opts = options ~verb:"stuck" [] rest in
    reject "stuck" opts [ "from"; "until"; "p" ];
    Some
      {
        fs_kind = Stuck_transition name;
        fs_window = window opts;
        fs_probability = probability opts;
      }
  | (("drop" | "spurious") as verb) :: name :: count :: rest ->
    let opts = options ~verb [] rest in
    reject verb opts [ "at"; "every"; "until"; "p" ];
    let count = nat verb count in
    let period = find (function `Every p -> Some (Some p) | _ -> None) opts in
    let period = Option.value period ~default:None in
    let kind =
      if verb = "drop" then Drop_tokens { place = name; count; period }
      else Spurious_tokens { place = name; count; period }
    in
    Some
      {
        fs_kind = kind;
        fs_window = window ~start:`At opts;
        fs_probability = probability opts;
      }
  | "delay-scale" :: name :: rest ->
    let opts = options ~verb:"delay-scale" [] rest in
    reject "delay-scale" opts [ "factor"; "jitter"; "from"; "until"; "p" ];
    let factor =
      match find (function `Factor f -> Some f | _ -> None) opts with
      | Some f -> f
      | None -> fail "delay-scale needs a factor"
    in
    let jitter =
      Option.value
        (find (function `Jitter j -> Some j | _ -> None) opts)
        ~default:0.0
    in
    Some
      {
        fs_kind =
          Delay_scale
            {
              transition = (if name = "*" then None else Some name);
              factor;
              jitter;
            };
        fs_window = window opts;
        fs_probability = probability opts;
      }
  | verb :: _ ->
    fail "unknown fault kind %S (expected stuck, drop, spurious or delay-scale)"
      verb

let parse text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         parse_line (i + 1) (String.trim line))
  |> List.filter_map Fun.id

(* -- validation -- *)

let fault_error fmt =
  Printf.ksprintf
    (fun s -> raise (Simulator.Sim_error (Simulator.Fault_error s)))
    fmt

let validate net specs =
  let check_transition name =
    if Net.find_transition net name = None then
      fault_error "net %s has no transition %S" (Net.name net) name
  in
  let check_place name =
    if Net.find_place net name = None then
      fault_error "net %s has no place %S" (Net.name net) name
  in
  List.iter
    (fun s ->
      if s.fs_probability < 0.0 || s.fs_probability > 1.0 then
        fault_error "activation probability %g is not in [0, 1]"
          s.fs_probability;
      if s.fs_window.w_from > s.fs_window.w_until then
        fault_error "fault window [%g, %g) is empty" s.fs_window.w_from
          s.fs_window.w_until;
      match s.fs_kind with
      | Stuck_transition t -> check_transition t
      | Drop_tokens { place; count; period }
      | Spurious_tokens { place; count; period } ->
        check_place place;
        if count <= 0 then fault_error "token count must be positive";
        (match period with
        | Some p when p <= 0.0 -> fault_error "pulse period must be positive"
        | Some _ | None -> ())
      | Delay_scale { transition; factor; jitter } ->
        Option.iter check_transition transition;
        if factor < 0.0 then fault_error "delay factor must be non-negative";
        if jitter < 0.0 || jitter > 1.0 then
          fault_error "jitter %g is not in [0, 1]" jitter)
    specs

(* -- compilation -- *)

type pulse = {
  p_place : Net.place_id;
  p_delta : int;  (* negative = drop *)
  p_until : float;
  p_period : float option;
  mutable p_next : float;  (* infinity once exhausted *)
}

type veto_rule = { v_transition : Net.transition_id; v_window : window }

type scale_rule = {
  s_transition : Net.transition_id option;
  s_window : window;
  s_factor : float;
  s_jitter : float;
}

type compiled = {
  c_prng : Prng.t;
  c_active : spec list;
  c_pulses : pulse list;
  c_vetoes : veto_rule list;
  c_scales : scale_rule list;
  mutable c_dropped : int;
  mutable c_injected : int;
}

let compile ~prng net specs =
  validate net specs;
  let active =
    List.filter
      (fun s -> s.fs_probability >= 1.0 || Prng.float prng 1.0 < s.fs_probability)
      specs
  in
  let pulses =
    List.filter_map
      (fun s ->
        match s.fs_kind with
        | Drop_tokens { place; count; period }
        | Spurious_tokens { place; count; period } ->
          let delta =
            match s.fs_kind with Drop_tokens _ -> -count | _ -> count
          in
          Some
            {
              p_place = Net.place_id net place;
              p_delta = delta;
              p_until = s.fs_window.w_until;
              p_period = period;
              p_next = s.fs_window.w_from;
            }
        | Stuck_transition _ | Delay_scale _ -> None)
      active
  in
  let vetoes =
    List.filter_map
      (fun s ->
        match s.fs_kind with
        | Stuck_transition t ->
          Some { v_transition = Net.transition_id net t; v_window = s.fs_window }
        | _ -> None)
      active
  in
  let scales =
    List.filter_map
      (fun s ->
        match s.fs_kind with
        | Delay_scale { transition; factor; jitter } ->
          Some
            {
              s_transition = Option.map (Net.transition_id net) transition;
              s_window = s.fs_window;
              s_factor = factor;
              s_jitter = jitter;
            }
        | _ -> None)
      active
  in
  {
    c_prng = prng;
    c_active = active;
    c_pulses = pulses;
    c_vetoes = vetoes;
    c_scales = scales;
    c_dropped = 0;
    c_injected = 0;
  }

let active_specs c = c.c_active

let hooks c =
  let hk_veto ~clock tr =
    List.exists
      (fun v ->
        v.v_transition = tr.Net.t_id && in_window v.v_window clock)
      c.c_vetoes
  in
  let hk_delay ~clock ~kind:_ tr d =
    List.fold_left
      (fun d s ->
        let applies =
          (match s.s_transition with
          | Some tid -> tid = tr.Net.t_id
          | None -> true)
          && in_window s.s_window clock
        in
        if not applies then d
        else
          let wobble =
            if s.s_jitter > 0.0 then
              Prng.uniform c.c_prng (-.s.s_jitter) s.s_jitter
            else 0.0
          in
          d *. s.s_factor *. (1.0 +. wobble))
      d c.c_scales
  in
  let hk_wakeup ~clock =
    (* The only verdict that changes spontaneously with time is a veto
       window opening or closing. *)
    List.fold_left
      (fun best v ->
        let consider best t =
          if Float.is_finite t && t > clock then
            match best with Some b -> Some (Float.min b t) | None -> Some t
          else best
        in
        consider (consider best v.v_window.w_from) v.v_window.w_until)
      None c.c_vetoes
  in
  { Simulator.hk_veto; hk_delay; hk_wakeup }

let next_pulse c ~after =
  List.fold_left
    (fun best p ->
      if p.p_next >= after && Float.is_finite p.p_next then
        match best with
        | Some b -> Some (Float.min b p.p_next)
        | None -> Some p.p_next
      else best)
    None c.c_pulses

let apply_pulses c ~at st =
  List.iter
    (fun p ->
      if Float.equal p.p_next at then begin
        let applied = Simulator.perturb_tokens st p.p_place p.p_delta in
        if applied < 0 then c.c_dropped <- c.c_dropped - applied
        else c.c_injected <- c.c_injected + applied;
        p.p_next <-
          (match p.p_period with
          | Some period ->
            let next = at +. period in
            if next < p.p_until then next else infinity
          | None -> infinity)
      end)
    c.c_pulses

let tokens_dropped c = c.c_dropped
let tokens_injected c = c.c_injected
