exception Parse_error of int * string

let float_str f =
  (* Shortest representation that round-trips a double. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* -- name escaping --

   The line format separates fields with spaces, sections with ';' and
   classifies delta entries by ':' / '='.  A name containing any of
   those (or '%', the escape char itself, or control bytes) would alias
   a different trace, so such bytes are percent-encoded on emit and
   decoded on read.  Ordinary identifiers are untouched, keeping old
   traces and external producers working unchanged. *)

let must_escape c = c <= ' ' || c = ';' || c = ':' || c = '=' || c = '%' || c = '\x7f'

let escape_name name =
  if name = "" then
    invalid_arg "Codec: empty names cannot be written to a text trace"
  else if String.exists must_escape name then begin
    let buf = Buffer.create (String.length name + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      name;
    Buffer.contents buf
  end
  else name

let hex_digit line_no c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | _ -> raise (Parse_error (line_no, Printf.sprintf "bad escape digit %c" c))

let unescape_name line_no s =
  if not (String.contains s '%') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (if s.[!i] <> '%' then Buffer.add_char buf s.[!i]
       else if !i + 2 >= n then
         raise (Parse_error (line_no, "truncated %-escape in name " ^ s))
       else begin
         Buffer.add_char buf
           (Char.chr ((16 * hex_digit line_no s.[!i + 1]) + hex_digit line_no s.[!i + 2]));
         i := !i + 2
       end);
      incr i
    done;
    Buffer.contents buf
  end

let value_str v =
  match v with
  | Pnut_core.Value.Int i -> Printf.sprintf "i%d" i
  | Pnut_core.Value.Float f -> Printf.sprintf "f%s" (float_str f)
  | Pnut_core.Value.Bool b -> if b then "btrue" else "bfalse"

let value_of_string line_no s =
  let fail msg = raise (Parse_error (line_no, msg)) in
  if String.length s < 2 then fail ("bad value: " ^ s)
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> (
      match int_of_string_opt body with
      | Some i -> Pnut_core.Value.Int i
      | None -> fail ("bad int value: " ^ s))
    | 'f' -> (
      match float_of_string_opt body with
      | Some f -> Pnut_core.Value.Float f
      | None -> fail ("bad float value: " ^ s))
    | 'b' -> (
      match body with
      | "true" -> Pnut_core.Value.Bool true
      | "false" -> Pnut_core.Value.Bool false
      | _ -> fail ("bad bool value: " ^ s))
    | _ -> fail ("bad value tag: " ^ s)

let emit_header out (h : Trace.header) =
  out "%pnut-trace 1\n";
  out (Printf.sprintf "net %s\n" (escape_name h.Trace.h_net));
  Array.iteri
    (fun i name ->
      out
        (Printf.sprintf "place %d %s %d\n" i (escape_name name)
           h.Trace.h_initial.(i)))
    h.Trace.h_places;
  Array.iteri
    (fun i name -> out (Printf.sprintf "transition %d %s\n" i (escape_name name)))
    h.Trace.h_transitions;
  List.iter
    (fun (name, v) ->
      out (Printf.sprintf "var %s %s\n" (escape_name name) (value_str v)))
    h.Trace.h_variables;
  out "begin\n"

let emit_delta out (d : Trace.delta) =
  let kind = match d.Trace.d_kind with Trace.Fire_start -> "S" | Trace.Fire_end -> "E" in
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "@ %s %s %d %d" (float_str d.Trace.d_time) kind
       d.Trace.d_transition d.Trace.d_firing);
  if d.Trace.d_marking <> [] then begin
    Buffer.add_string buf " ;";
    List.iter
      (fun (p, dm) -> Buffer.add_string buf (Printf.sprintf " %d:%d" p dm))
      d.Trace.d_marking
  end;
  if d.Trace.d_env <> [] then begin
    Buffer.add_string buf " ;";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf
          (Printf.sprintf " %s=%s" (escape_name name) (value_str v)))
      d.Trace.d_env
  end;
  Buffer.add_char buf '\n';
  out (Buffer.contents buf)

let emit_finish out time = out (Printf.sprintf "end %s\n" (float_str time))

let sink_of_out out =
  {
    Trace.on_header = emit_header out;
    on_delta = emit_delta out;
    on_finish = emit_finish out;
  }

let writer_sink buf = sink_of_out (Buffer.add_string buf)
let channel_sink oc = sink_of_out (output_string oc)

let write buf tr = Trace.replay tr (writer_sink buf)

let to_string tr =
  let buf = Buffer.create 4096 in
  write buf tr;
  Buffer.contents buf

let write_channel oc tr = Trace.replay tr (channel_sink oc)

(* -- parsing -- *)

(* Header accumulation state; deltas are never stored, they flow to the
   sink as they are parsed. *)
type header_state = {
  mutable net : string option;
  mutable places : (int * string * int) list;  (* reversed *)
  mutable transitions : (int * string) list;   (* reversed *)
  mutable vars : (string * Pnut_core.Value.t) list;  (* reversed *)
}

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_int line_no s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Parse_error (line_no, "expected integer, got " ^ s))

let parse_float line_no s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Parse_error (line_no, "expected float, got " ^ s))

(* "@ time kind tid fid ; p:d p:d ; v=x v=x" -- the two ';' sections are
   optional but ordered: a section containing ':' entries is marking, '='
   entries env (unambiguous because ':' and '=' are escaped inside
   names). *)
let parse_delta line_no rest =
  let sections =
    String.split_on_char ';' rest |> List.map String.trim
  in
  match sections with
  | [] -> raise (Parse_error (line_no, "empty delta"))
  | head :: extra ->
    let time, kind, tid, fid =
      match split_ws head with
      | [ t; k; tr; f ] ->
        let kind =
          match k with
          | "S" -> Trace.Fire_start
          | "E" -> Trace.Fire_end
          | _ -> raise (Parse_error (line_no, "bad event kind " ^ k))
        in
        (parse_float line_no t, kind, parse_int line_no tr, parse_int line_no f)
      | _ -> raise (Parse_error (line_no, "bad delta header: " ^ head))
    in
    let marking = ref [] in
    let env = ref [] in
    let parse_entry tok =
      match String.index_opt tok ':' with
      | Some i ->
        let p = parse_int line_no (String.sub tok 0 i) in
        let d =
          parse_int line_no (String.sub tok (i + 1) (String.length tok - i - 1))
        in
        marking := (p, d) :: !marking
      | None -> (
        match String.index_opt tok '=' with
        | Some i ->
          let name = unescape_name line_no (String.sub tok 0 i) in
          let v =
            value_of_string line_no
              (String.sub tok (i + 1) (String.length tok - i - 1))
          in
          env := (name, v) :: !env
        | None -> raise (Parse_error (line_no, "bad delta entry " ^ tok)))
    in
    List.iter (fun sec -> List.iter parse_entry (split_ws sec)) extra;
    {
      Trace.d_time = time;
      d_kind = kind;
      d_transition = tid;
      d_firing = fid;
      d_marking = List.rev !marking;
      d_env = List.rev !env;
    }

let build_header line_no st =
  let net =
    match st.net with
    | Some n -> n
    | None -> raise (Parse_error (line_no, "missing net line"))
  in
  let order l = List.sort (fun (a, _, _) (b, _, _) -> compare a b) l in
  let places = order st.places in
  List.iteri
    (fun expect (got, _, _) ->
      if expect <> got then
        raise (Parse_error (line_no, "place ids not contiguous")))
    places;
  let transitions =
    List.sort (fun (a, _) (b, _) -> compare a b) st.transitions
  in
  List.iteri
    (fun expect (got, _) ->
      if expect <> got then
        raise (Parse_error (line_no, "transition ids not contiguous")))
    transitions;
  {
    Trace.h_net = net;
    h_places = Array.of_list (List.map (fun (_, n, _) -> n) places);
    h_transitions = Array.of_list (List.map snd transitions);
    h_initial = Array.of_list (List.map (fun (_, _, v) -> v) places);
    h_variables = List.rev st.vars;
  }

(* -- incremental reader -- *)

type reader = {
  r_sink : Trace.sink;
  r_st : header_state;
  mutable r_line : int;
  mutable r_in_body : bool;
  mutable r_finished : bool;
}

let reader sink =
  {
    r_sink = sink;
    r_st = { net = None; places = []; transitions = []; vars = [] };
    r_line = 0;
    r_in_body = false;
    r_finished = false;
  }

let finished r = r.r_finished

let feed_line r line =
  r.r_line <- r.r_line + 1;
  let line_no = r.r_line in
  let st = r.r_st in
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else if r.r_finished then
    raise (Parse_error (line_no, "unexpected body line: " ^ line))
  else if not r.r_in_body then begin
    match split_ws line with
    | [ "%pnut-trace"; "1" ] -> ()
    | "%pnut-trace" :: v :: _ ->
      raise (Parse_error (line_no, "unsupported trace version " ^ v))
    | [ "net"; name ] -> st.net <- Some (unescape_name line_no name)
    | [ "place"; id; name; init ] ->
      st.places <-
        (parse_int line_no id, unescape_name line_no name, parse_int line_no init)
        :: st.places
    | [ "transition"; id; name ] ->
      st.transitions <- (parse_int line_no id, unescape_name line_no name) :: st.transitions
    | [ "var"; name; v ] ->
      st.vars <- (unescape_name line_no name, value_of_string line_no v) :: st.vars
    | [ "begin" ] ->
      r.r_in_body <- true;
      r.r_sink.Trace.on_header (build_header line_no st)
    | _ -> raise (Parse_error (line_no, "unexpected header line: " ^ line))
  end
  else if String.length line >= 1 && line.[0] = '@' then
    let rest = String.sub line 1 (String.length line - 1) in
    r.r_sink.Trace.on_delta (parse_delta line_no rest)
  else
    match split_ws line with
    | [ "end"; t ] ->
      r.r_finished <- true;
      r.r_sink.Trace.on_finish (parse_float line_no t)
    | _ -> raise (Parse_error (line_no, "unexpected body line: " ^ line))

let check_finished r =
  if not r.r_finished then begin
    (* distinguish the two "truncated input" flavours for error parity
       with the stored-trace parser *)
    if (not r.r_in_body) && r.r_st.net = None then
      raise (Parse_error (r.r_line, "missing net line"));
    raise (Parse_error (r.r_line, "missing end line"))
  end

let parse text =
  let sink, get = Trace.collector () in
  let r = reader sink in
  List.iter (feed_line r) (String.split_on_char '\n' text);
  check_finished r;
  get ()

(* -- channel streaming with format auto-detection -- *)

let stream_text_channel ?first_line ic sink =
  let r = reader sink in
  (match first_line with Some l -> feed_line r l | None -> ());
  let rec go () =
    if not r.r_finished then
      match input_line ic with
      | line ->
        feed_line r line;
        go ()
      | exception End_of_file -> check_finished r
  in
  go ()

let stream_channel ic sink =
  match input_char ic with
  | exception End_of_file -> raise (Parse_error (0, "empty trace"))
  | '\x00' -> Binary.stream_channel ~skip_first_byte:true ic sink
  | c ->
    let first_line =
      match input_line ic with
      | rest -> String.make 1 c ^ rest
      | exception End_of_file -> String.make 1 c
    in
    stream_text_channel ~first_line ic sink

let read_channel ic =
  let sink, get = Trace.collector () in
  stream_channel ic sink;
  get ()
