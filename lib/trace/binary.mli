(** Compact binary trace serialization.

    Same trace model as the textual {!Codec}, a fraction of the bytes:
    a length-prefixed record stream with varint-encoded ids and deltas,
    an interned variable-name table, and a per-transition marking
    dictionary (most transitions move the same tokens every firing, so
    repeated marking lists collapse to one flag bit).  Because every
    string is length-prefixed, names may contain any byte — the
    separator-aliasing pitfalls of the text format cannot occur here by
    construction.

    Layout (all integers are unsigned LEB128 varints; signed quantities
    are zigzag-encoded first; floats are raw IEEE-754 doubles,
    little-endian):

    {v
    magic   "\x00pnut-bin"          9 bytes; the NUL first byte is what
                                    read-side auto-detection keys on
    version 0x01                    1 byte
    header  net-name : string       string = varint length + bytes
            nplaces  : varint
              per place:      name : string, initial : zigzag varint
            ntransitions : varint
              per transition: name : string
            nvariables   : varint
              per variable:   name : string, value
    body    delta records, then one end record
    v}

    A delta record starts with a head byte [0000 EMMK]: [K] = kind
    (0 start / 1 end), [MM] = marking mode (0 empty, 1 same list as the
    previous record of this transition and kind, 2 explicit: varint
    count + (place varint, zigzag token-delta) pairs follow), [E] = an
    env section follows.  Then: the time as a zigzag varint of
    8·(t − previous t) when that is an exact integer (the common case —
    model delays are usually multiples of 1/8 cycle), or the escape
    varint [1] followed by the absolute time as a raw double; the
    transition id varint; the firing id, delta-coded against the last
    start record's id (zigzag); the marking per [MM]; and the env
    entries as (name-ref, value) pairs where name-ref [k+1] means entry
    [k] of the name table and [0] introduces a new name (string follows,
    appended to the table).  Values are a tag byte (0 int, 1 float,
    2 false, 3 true) plus a zigzag varint or raw double payload.

    The end record is the byte [0xFF] followed by the final clock as a
    raw double. *)

exception Parse_error of int * string
(** Byte offset and message. *)

val magic : string
(** ["\x00pnut-bin"] — the first byte of every binary trace is [0x00],
    which can never begin a textual trace. *)

(** {2 Varint primitives}

    The LEB128/zigzag machinery of the codec, exposed for other compact
    encoders (the reachability frontier spill files). *)

val zigzag : int -> int
(** Signed to unsigned, small magnitudes staying small:
    [0 -1 1 -2 2 ... -> 0 1 2 3 4 ...]. *)

val unzigzag : int -> int

val add_varint : Buffer.t -> int -> unit
(** Append a non-negative int as an unsigned LEB128 varint. *)

val get_varint : string -> pos:int ref -> int
(** Read one varint at [!pos], advancing the position.  Raises
    {!Parse_error} on truncation or overflow. *)

(** {2 Writing} *)

val buffer_sink : Buffer.t -> Trace.sink
(** Streaming writer: each record is appended as it arrives. *)

val channel_sink : out_channel -> Trace.sink
(** Streaming writer with bounded buffering; records are flushed to the
    channel as they are produced. *)

val write_channel : out_channel -> Trace.t -> unit

val to_string : Trace.t -> string

(** {2 Reading} *)

val stream_channel :
  ?skip_first_byte:bool -> in_channel -> Trace.sink -> unit
(** Streams a binary trace into a sink in O(1) memory (no intermediate
    trace is built).  Stops after the end record, leaving any trailing
    channel content unread.  [skip_first_byte] is for callers that
    already consumed the leading magic byte during format
    auto-detection.  Raises {!Parse_error} on malformed input. *)

val read_channel : in_channel -> Trace.t

val parse : string -> Trace.t
