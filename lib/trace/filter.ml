type spec = {
  keep_places : string list option;
  keep_transitions : string list option;
  keep_vars : bool;
}

let all = { keep_places = None; keep_transitions = None; keep_vars = true }

let make_spec ?places ?transitions ?(vars = true) () =
  { keep_places = places; keep_transitions = transitions; keep_vars = vars }

(* Renumbering maps computed from a header: old id -> new id (or -1). *)
type maps = {
  place_map : int array;
  trans_map : int array;
}

let build_maps spec (h : Trace.header) =
  let select keep names =
    match keep with
    | None -> Array.map (fun _ -> true) names
    | Some wanted -> Array.map (fun n -> List.mem n wanted) names
  in
  let renumber mask =
    let next = ref 0 in
    Array.map
      (fun keep ->
        if keep then begin
          let id = !next in
          incr next;
          id
        end
        else -1)
      mask
  in
  let place_map = renumber (select spec.keep_places h.Trace.h_places) in
  let trans_map = renumber (select spec.keep_transitions h.Trace.h_transitions) in
  { place_map; trans_map }

(* Deltas from dropped transitions that still change kept places or
   variables are preserved so that place signals stay exact; they are
   attributed to a reserved pseudo-transition named below, appended after
   the kept transitions. *)
let other_name = "_filtered"

let keep_by map arr =
  Array.to_list arr
  |> List.filteri (fun i _ -> map.(i) >= 0)
  |> Array.of_list

let needs_other maps =
  Array.exists (fun id -> id < 0) maps.trans_map

let filter_header maps spec (h : Trace.header) =
  let transitions = keep_by maps.trans_map h.Trace.h_transitions in
  let transitions =
    if needs_other maps then Array.append transitions [| other_name |]
    else transitions
  in
  {
    Trace.h_net = h.Trace.h_net;
    h_places = keep_by maps.place_map h.Trace.h_places;
    h_transitions = transitions;
    h_initial = keep_by maps.place_map h.Trace.h_initial;
    h_variables = (if spec.keep_vars then h.Trace.h_variables else []);
  }

(* An orphaned delta (dropped transition, surviving changes) cannot keep
   its original Fire_start/Fire_end kind: its partner record may be
   dropped (no surviving changes), leaving the pseudo-transition with
   unbalanced starts/ends and negative concurrency in [stat].  Each
   orphan is therefore re-emitted as a self-contained zero-duration
   firing of [_filtered] — an empty start immediately followed by an end
   carrying the changes, the documented convention for instantaneous
   firings — with firing ids drawn from a dedicated counter. *)
let filter_delta maps spec (d : Trace.delta) =
  let marking =
    List.filter_map
      (fun (p, dm) ->
        let p' = maps.place_map.(p) in
        if p' >= 0 then Some (p', dm) else None)
      d.Trace.d_marking
  in
  let env = if spec.keep_vars then d.Trace.d_env else [] in
  let t' = maps.trans_map.(d.Trace.d_transition) in
  if t' >= 0 then
    `Keep { d with Trace.d_transition = t'; d_marking = marking; d_env = env }
  else if marking <> [] || env <> [] then `Orphan (marking, env)
  else `Drop

let sink spec downstream =
  let maps = ref None in
  let other = ref (-1) in
  let other_fid = ref 0 in
  {
    Trace.on_header =
      (fun h ->
        let m = build_maps spec h in
        maps := Some m;
        let h' = filter_header m spec h in
        if needs_other m then
          other := Array.length h'.Trace.h_transitions - 1;
        downstream.Trace.on_header h');
    on_delta =
      (fun d ->
        match !maps with
        | None -> invalid_arg "Filter.sink: delta before header"
        | Some m -> (
          match filter_delta m spec d with
          | `Keep d' -> downstream.Trace.on_delta d'
          | `Orphan (marking, env) ->
            let fid = !other_fid in
            incr other_fid;
            let base =
              {
                Trace.d_time = d.Trace.d_time;
                d_kind = Trace.Fire_start;
                d_transition = !other;
                d_firing = fid;
                d_marking = [];
                d_env = [];
              }
            in
            downstream.Trace.on_delta base;
            downstream.Trace.on_delta
              { base with Trace.d_kind = Trace.Fire_end; d_marking = marking;
                d_env = env }
          | `Drop -> ()));
    on_finish = (fun t -> downstream.Trace.on_finish t);
  }

let apply spec tr =
  let s, get = Trace.collector () in
  Trace.replay tr (sink spec s);
  get ()
