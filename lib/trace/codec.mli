(** Textual trace serialization.

    Line-oriented, human-inspectable, and producer-agnostic: the format
    references places and transitions by id with a name table in the
    header, so any simulation tool (the paper names SIMSCRIPT) can emit it.

    Grammar (one record per line):
    {v
    %pnut-trace 1
    net <name>
    place <id> <name> <initial-tokens>
    transition <id> <name>
    var <name> <value>
    begin
    @ <time> S|E <transition-id> <firing-id> [; <place>:<delta> ...] [; <var>=<value> ...]
    end <final-time>
    v}
    Floats are written in round-trippable precision.

    Names must be non-empty; bytes that would collide with the format's
    separators (space and control characters, [';'], [':'], ['='],
    ['%']) are percent-encoded as [%XX] on emit and decoded on read, so
    arbitrary names round-trip instead of aliasing a different trace.
    Plain identifiers are written verbatim — traces from older emitters
    and external producers parse unchanged. *)

val write : Buffer.t -> Trace.t -> unit

val to_string : Trace.t -> string

val write_channel : out_channel -> Trace.t -> unit

val writer_sink : Buffer.t -> Trace.sink
(** Streaming writer: serializes records as they arrive. *)

val channel_sink : out_channel -> Trace.sink

val parse : string -> Trace.t
(** Raises [Parse_error (line, message)] on malformed input. *)

val read_channel : in_channel -> Trace.t
(** Reads a stored trace from a channel, auto-detecting the format
    (textual, or binary via {!Binary}).  Stops after the end record.
    Prefer {!stream_channel} when the consumer is a sink: it runs in
    O(1) memory instead of materializing the trace. *)

(** {2 Streaming}

    The incremental reader drives a {!Trace.sink} record-by-record: the
    header is emitted once [begin] is seen, every delta line flows
    straight to the sink, and the trace is never materialized.  This is
    what makes [pnut sim - | pnut filter - | pnut stat -] run in
    constant memory regardless of trace length. *)

type reader

val reader : Trace.sink -> reader
(** A fresh incremental parser for the textual format feeding [sink]. *)

val feed_line : reader -> string -> unit
(** Feeds one line (without its newline).  Raises [Parse_error] on
    malformed input, including any non-blank line after [end]. *)

val finished : reader -> bool
(** Whether the [end] record has been seen. *)

val stream_channel : in_channel -> Trace.sink -> unit
(** Streams a whole trace from a channel into a sink in O(1) memory,
    auto-detecting the format: a leading [0x00] byte selects the binary
    codec (see {!Binary.magic}), anything else the textual one.  Stops
    reading after the end record, so trailing unrelated bytes (or a
    still-open pipe) are left untouched.  Raises [Parse_error] (or
    [Binary.Parse_error]) on malformed input, including truncation. *)

exception Parse_error of int * string
