exception Parse_error of int * string

let magic = "\x00pnut-bin"
let version = '\x01'

(* zigzag maps signed to unsigned so that small-magnitude values stay
   small: 0 -1 1 -2 2 ... -> 0 1 2 3 4 ... *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

(* Time deltas scaled by 8 cover every multiple of 1/8 cycle with a
   varint; anything else falls back to the raw double (escape varint 1,
   which zigzag·shift can never produce: it would need x = 0 with the
   low bit set). *)
let time_scale = 8.0

let max_scaled = float_of_int (1 lsl 59)

(* -- writing -- *)

let add_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

(* A pure companion reader over a string for other compact encoders
   (the reachability frontier spill); the trace reader below streams
   from a channel instead. *)
let get_varint s ~pos =
  let rec go shift acc =
    if shift > 62 then raise (Parse_error (!pos, "varint overflow"));
    if !pos >= String.length s then
      raise (Parse_error (!pos, "truncated varint"));
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_value buf v =
  match v with
  | Pnut_core.Value.Int i ->
    Buffer.add_char buf '\x00';
    add_varint buf (zigzag i)
  | Pnut_core.Value.Float f ->
    Buffer.add_char buf '\x01';
    add_f64 buf f
  | Pnut_core.Value.Bool false -> Buffer.add_char buf '\x02'
  | Pnut_core.Value.Bool true -> Buffer.add_char buf '\x03'

type wstate = {
  buf : Buffer.t;
  flush : unit -> unit;  (* drains [buf] when it grows past the cap *)
  names : (string, int) Hashtbl.t;     (* interned env-variable names *)
  mutable n_names : int;
  last_marking : (int, (int * int) list) Hashtbl.t;  (* tid*2+kind *)
  mutable prev_time : float;
  mutable prev_start_fid : int;
}

let intern w name =
  match Hashtbl.find_opt w.names name with
  | Some i -> add_varint w.buf (i + 1)
  | None ->
    add_varint w.buf 0;
    add_string w.buf name;
    Hashtbl.replace w.names name w.n_names;
    w.n_names <- w.n_names + 1

let emit_header w (h : Trace.header) =
  let buf = w.buf in
  Buffer.add_string buf magic;
  Buffer.add_char buf version;
  add_string buf h.Trace.h_net;
  add_varint buf (Array.length h.Trace.h_places);
  Array.iteri
    (fun i name ->
      add_string buf name;
      add_varint buf (zigzag h.Trace.h_initial.(i)))
    h.Trace.h_places;
  add_varint buf (Array.length h.Trace.h_transitions);
  Array.iter (fun name -> add_string buf name) h.Trace.h_transitions;
  add_varint buf (List.length h.Trace.h_variables);
  List.iter
    (fun (name, v) ->
      add_string buf name;
      add_value buf v;
      if not (Hashtbl.mem w.names name) then begin
        Hashtbl.replace w.names name w.n_names;
        w.n_names <- w.n_names + 1
      end)
    h.Trace.h_variables;
  w.flush ()

let add_time w time =
  let dt = time -. w.prev_time in
  let scaled = dt *. time_scale in
  if Float.is_integer scaled && Float.abs scaled < max_scaled then
    add_varint w.buf (zigzag (int_of_float scaled) lsl 1)
  else begin
    add_varint w.buf 1;
    add_f64 w.buf time
  end;
  w.prev_time <- time

let emit_delta w (d : Trace.delta) =
  let buf = w.buf in
  let kind = match d.Trace.d_kind with Trace.Fire_start -> 0 | Trace.Fire_end -> 1 in
  let mkey = (d.Trace.d_transition * 2) + kind in
  let mark_mode =
    if d.Trace.d_marking = [] then 0
    else if Hashtbl.find_opt w.last_marking mkey = Some d.Trace.d_marking then 1
    else begin
      Hashtbl.replace w.last_marking mkey d.Trace.d_marking;
      2
    end
  in
  let has_env = d.Trace.d_env <> [] in
  Buffer.add_char buf
    (Char.chr (kind lor (mark_mode lsl 1) lor (if has_env then 8 else 0)));
  add_time w d.Trace.d_time;
  add_varint buf d.Trace.d_transition;
  (match d.Trace.d_kind with
  | Trace.Fire_start ->
    add_varint buf (zigzag (d.Trace.d_firing - w.prev_start_fid - 1));
    w.prev_start_fid <- d.Trace.d_firing
  | Trace.Fire_end ->
    add_varint buf (zigzag (w.prev_start_fid - d.Trace.d_firing)));
  if mark_mode = 2 then begin
    add_varint buf (List.length d.Trace.d_marking);
    List.iter
      (fun (p, dm) ->
        add_varint buf p;
        add_varint buf (zigzag dm))
      d.Trace.d_marking
  end;
  if has_env then begin
    add_varint buf (List.length d.Trace.d_env);
    List.iter
      (fun (name, v) ->
        intern w name;
        add_value buf v)
      d.Trace.d_env
  end;
  w.flush ()

let emit_finish w time =
  Buffer.add_char w.buf '\xff';
  add_f64 w.buf time;
  w.flush ()

let make_sink ~flush buf =
  let w =
    {
      buf;
      flush;
      names = Hashtbl.create 16;
      n_names = 0;
      last_marking = Hashtbl.create 64;
      prev_time = 0.0;
      prev_start_fid = -1;
    }
  in
  {
    Trace.on_header = emit_header w;
    on_delta = emit_delta w;
    on_finish = emit_finish w;
  }

let buffer_sink buf = make_sink ~flush:(fun () -> ()) buf

let channel_sink oc =
  let buf = Buffer.create 65536 in
  let drain () =
    if Buffer.length buf >= 65536 then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  let sink = make_sink ~flush:drain buf in
  {
    sink with
    Trace.on_finish =
      (fun t ->
        sink.Trace.on_finish t;
        Buffer.output_buffer oc buf;
        Buffer.clear buf;
        Stdlib.flush oc);
  }

let write_channel oc tr =
  Trace.replay tr (channel_sink oc)

let to_string tr =
  let buf = Buffer.create 65536 in
  Trace.replay tr (buffer_sink buf);
  Buffer.contents buf

(* -- reading -- *)

(* A pull source over a channel or a string; [pos] feeds error
   offsets. *)
type src = {
  next : unit -> int;  (* raises End_of_file *)
  mutable pos : int;
}

let src_of_channel ic = { next = (fun () -> input_byte ic); pos = 0 }

let src_of_string s =
  let i = ref 0 in
  {
    next =
      (fun () ->
        if !i >= String.length s then raise End_of_file
        else begin
          let c = Char.code s.[!i] in
          incr i;
          c
        end);
    pos = 0;
  }

let fail src msg = raise (Parse_error (src.pos, msg))

let read_byte src =
  match src.next () with
  | b ->
    src.pos <- src.pos + 1;
    b
  | exception End_of_file -> fail src "unexpected end of binary trace"

let read_varint src =
  let rec go shift acc =
    if shift > 62 then fail src "varint overflow";
    let b = read_byte src in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_string src =
  let len = read_varint src in
  if len > 0x10000000 then fail src "string length out of range";
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.chr (read_byte src))
  done;
  Bytes.unsafe_to_string b

let read_f64 src =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte src)) (i * 8))
  done;
  Int64.float_of_bits !bits

let read_value src =
  match read_byte src with
  | 0 -> Pnut_core.Value.Int (unzigzag (read_varint src))
  | 1 -> Pnut_core.Value.Float (read_f64 src)
  | 2 -> Pnut_core.Value.Bool false
  | 3 -> Pnut_core.Value.Bool true
  | t -> fail src (Printf.sprintf "bad value tag %d" t)

type rstate = {
  src : src;
  mutable r_names : string array;   (* growable interned name table *)
  mutable r_n_names : int;
  r_last_marking : (int, (int * int) list) Hashtbl.t;
  mutable r_prev_time : float;
  mutable r_prev_start_fid : int;
}

let table_add r name =
  if r.r_n_names >= Array.length r.r_names then begin
    let bigger = Array.make (max 16 (2 * Array.length r.r_names)) "" in
    Array.blit r.r_names 0 bigger 0 r.r_n_names;
    r.r_names <- bigger
  end;
  r.r_names.(r.r_n_names) <- name;
  r.r_n_names <- r.r_n_names + 1

let read_name r =
  match read_varint r.src with
  | 0 ->
    let name = read_string r.src in
    table_add r name;
    name
  | k ->
    if k - 1 >= r.r_n_names then fail r.src "name-table reference out of range";
    r.r_names.(k - 1)

let read_header r =
  let src = r.src in
  let net = read_string src in
  let nplaces = read_varint src in
  let places = Array.make nplaces "" in
  let initial = Array.make nplaces 0 in
  for i = 0 to nplaces - 1 do
    places.(i) <- read_string src;
    initial.(i) <- unzigzag (read_varint src)
  done;
  let ntrans = read_varint src in
  let transitions = Array.init ntrans (fun _ -> read_string src) in
  let nvars = read_varint src in
  let vars =
    List.init nvars (fun _ ->
        let name = read_string src in
        let v = read_value src in
        table_add r name;
        (name, v))
  in
  {
    Trace.h_net = net;
    h_places = places;
    h_transitions = transitions;
    h_initial = initial;
    h_variables = vars;
  }

let read_time r =
  match read_varint r.src with
  | 1 ->
    let t = read_f64 r.src in
    r.r_prev_time <- t;
    t
  | u when u land 1 = 1 -> fail r.src "bad time encoding"
  | u ->
    let t = r.r_prev_time +. (float_of_int (unzigzag (u lsr 1)) /. time_scale) in
    r.r_prev_time <- t;
    t

let read_delta r head =
  let src = r.src in
  let kind_bit = head land 1 in
  let kind = if kind_bit = 0 then Trace.Fire_start else Trace.Fire_end in
  let mark_mode = (head lsr 1) land 3 in
  let has_env = head land 8 <> 0 in
  if head land 0xf0 <> 0 || mark_mode = 3 then
    fail src (Printf.sprintf "bad record head byte %#x" head);
  let time = read_time r in
  let tid = read_varint src in
  let fid =
    let e = unzigzag (read_varint src) in
    match kind with
    | Trace.Fire_start ->
      let fid = r.r_prev_start_fid + 1 + e in
      r.r_prev_start_fid <- fid;
      fid
    | Trace.Fire_end -> r.r_prev_start_fid - e
  in
  let mkey = (tid * 2) + kind_bit in
  let marking =
    match mark_mode with
    | 0 -> []
    | 1 -> (
      match Hashtbl.find_opt r.r_last_marking mkey with
      | Some m -> m
      | None -> fail src "marking back-reference before any explicit marking")
    | _ ->
      let n = read_varint src in
      let m =
        List.init n (fun _ ->
            let p = read_varint src in
            let dm = unzigzag (read_varint src) in
            (p, dm))
      in
      Hashtbl.replace r.r_last_marking mkey m;
      m
  in
  let env =
    if not has_env then []
    else
      let n = read_varint src in
      List.init n (fun _ ->
          let name = read_name r in
          let v = read_value src in
          (name, v))
  in
  {
    Trace.d_time = time;
    d_kind = kind;
    d_transition = tid;
    d_firing = fid;
    d_marking = marking;
    d_env = env;
  }

let stream ?(skip_first_byte = false) src (sink : Trace.sink) =
  let from = if skip_first_byte then 1 else 0 in
  String.iteri
    (fun i expected ->
      if i >= from then
        if read_byte src <> Char.code expected then
          fail src "bad magic: not a binary pnut trace")
    magic;
  (match read_byte src with
  | 1 -> ()
  | v -> fail src (Printf.sprintf "unsupported binary trace version %d" v));
  let r =
    {
      src;
      r_names = [||];
      r_n_names = 0;
      r_last_marking = Hashtbl.create 64;
      r_prev_time = 0.0;
      r_prev_start_fid = -1;
    }
  in
  sink.Trace.on_header (read_header r);
  let rec loop () =
    match read_byte src with
    | 0xff -> sink.Trace.on_finish (read_f64 src)
    | head ->
      sink.Trace.on_delta (read_delta r head);
      loop ()
  in
  loop ()

let stream_channel ?skip_first_byte ic sink =
  stream ?skip_first_byte (src_of_channel ic) sink

let read_channel ic =
  let sink, get = Trace.collector () in
  stream_channel ic sink;
  get ()

let parse s =
  let sink, get = Trace.collector () in
  stream (src_of_string s) sink;
  get ()
